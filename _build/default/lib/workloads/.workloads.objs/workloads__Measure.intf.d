lib/workloads/measure.mli: Kernel_sim Perf Ppc
