let cache_hit_cycles = 1
let tlb_miss_trap_cycles = 32
let htab_miss_trap_cycles = 91

(* A full hardware search touches 16 PTEs; with a ~35-cycle memory and the
   first PTEG typically missing the cache, total lands in the neighborhood
   of the measured "up to 120 instruction cycles". *)
let hw_search_overhead_cycles = 24

let sw_reload_fast_instr = 20
let sw_hash_setup_instr = 24
let sw_reload_slow_instr = 160
let sw_reload_slow_stack_refs = 16

let htab_insert_fast_instr = 30
let htab_insert_slow_instr = 190
let htab_insert_slow_stack_refs = 16

(* SMP shootdown/IPI model.  The PPC 603/604 have no broadcast tlbie
   snooping in our configuration, so a cross-CPU invalidate is a
   software IPI round: the initiator writes the interrupt controller
   and spins for acknowledgements; each remote CPU takes an external
   interrupt, runs a short handler and executes the invalidate
   locally.  Charged on the single serialized clock. *)
let ipi_send_cycles = 40
let ipi_ack_wait_cycles = 24
let ipi_handler_instr = 36

let dcbz_cycles = 2
let prefetch_cycles = 2
let zombie_check_instr = 40
let page_fault_instr = 450

let us_of_cycles ~mhz c = float_of_int c /. float_of_int mhz

let mb_per_s ~bytes ~mhz ~cycles =
  if cycles = 0 then 0.0
  else
    let seconds = float_of_int cycles /. (float_of_int mhz *. 1e6) in
    float_of_int bytes /. 1e6 /. seconds
