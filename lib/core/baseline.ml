type doc = {
  d_seed : int;
  d_tolerance : float option;
  d_tolerances : (string * float) list;
  d_entries : (string * Experiments.table) list;
}

let schema = "mmu-tricks/results-v1"

let doc_to_json ?tolerance ?(observability = []) ?(failures = []) ~seed entries =
  let entry (id, t) =
    let j =
      match Experiments.find id with
      | Some s -> Experiments.to_json ~id ~section:s.Experiments.section ~what:s.Experiments.what t
      | None -> Experiments.to_json ~id t
    in
    (* Distribution data rides along in a field the checker never reads,
       so baselines with and without it stay interchangeable. *)
    match (List.assoc_opt id observability, j) with
    | Some obs, Json.Obj fields ->
        Json.Obj (fields @ [ ("observability", obs) ])
    | _ -> j
  in
  Json.Obj
    ([ ("schema", Json.String schema); ("seed", Json.Int seed) ]
    @ (match tolerance with
      | Some tol -> [ ("tolerance", Json.Float tol) ]
      | None -> [])
    @ [ ("experiments", Json.List (List.map entry entries)) ]
    (* Emitted only when non-empty: a clean run's document is
       byte-identical whether or not the runner supervises failures. *)
    @
    match failures with
    | [] -> []
    | fs ->
        [ ( "failures",
            Json.List
              (List.map
                 (fun (id, detail) ->
                   Json.Obj
                     [ ("id", Json.String id);
                       ("detail", Json.String detail) ])
                 fs) ) ])

let doc_of_json j =
  let ( let* ) r f = Result.bind r f in
  let* entries_j =
    match Json.member "experiments" j with
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "\"experiments\" is not a list"
    | None -> Error "missing \"experiments\""
  in
  let* entries =
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
          match Option.bind (Json.member "id" e) Json.to_string_opt with
          | None -> Error "experiment entry without an \"id\""
          | Some id ->
              let* t = Experiments.of_json e in
              conv ((id, t) :: acc) rest)
    in
    conv [] entries_j
  in
  let d_seed =
    match Option.bind (Json.member "seed" j) Json.to_int_opt with
    | Some s -> s
    | None -> 42
  in
  let d_tolerance = Option.bind (Json.member "tolerance" j) Json.to_float_opt in
  let d_tolerances =
    match Json.member "tolerances" j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v))
          fields
    | _ -> []
  in
  Ok { d_seed; d_tolerance; d_tolerances; d_entries = entries }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok j -> (
          match doc_of_json j with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok d -> Ok d))

(* -------------------------------------------------- numeric extraction *)

let is_digit c = c >= '0' && c <= '9'

let numbers_of_cell cell =
  let n = String.length cell in
  let out = ref [] in
  let i = ref 0 in
  let buf = Buffer.create 16 in
  while !i < n do
    let c = cell.[!i] in
    if is_digit c || (c = '-' && !i + 1 < n && is_digit cell.[!i + 1]) then begin
      Buffer.clear buf;
      if c = '-' then (Buffer.add_char buf '-'; incr i);
      let continue = ref true in
      while !continue && !i < n do
        let c = cell.[!i] in
        if is_digit c then (Buffer.add_char buf c; incr i)
        else if
          (* a thousands separator: comma gluing a group of exactly 3 *)
          c = ','
          && !i + 3 < n
          && is_digit cell.[!i + 1]
          && is_digit cell.[!i + 2]
          && is_digit cell.[!i + 3]
          && (!i + 4 >= n || not (is_digit cell.[!i + 4]))
        then incr i (* drop the comma, keep consuming digits *)
        else if c = '.' && !i + 1 < n && is_digit cell.[!i + 1] then
          (Buffer.add_char buf '.'; incr i)
        else continue := false
      done;
      match float_of_string_opt (Buffer.contents buf) with
      | Some f -> out := f :: !out
      | None -> ()
    end
    else incr i
  done;
  List.rev !out

(* ----------------------------------------------------------- checking *)

type check = {
  c_id : string;
  c_ok : bool;
  c_numbers : int;
  c_max_rel : float;
  c_detail : string option;
}

let rel_dev a b =
  let m = Float.max (Float.abs a) (Float.abs b) in
  if m = 0.0 then 0.0 else Float.abs (a -. b) /. m

let check_table ~id ~tol ~baseline ~current =
  let fail detail ~numbers ~max_rel =
    { c_id = id; c_ok = false; c_numbers = numbers; c_max_rel = max_rel;
      c_detail = Some detail }
  in
  if baseline.Experiments.header <> current.Experiments.header then
    fail "header changed since the baseline was recorded" ~numbers:0
      ~max_rel:0.0
  else if
    List.length baseline.Experiments.rows
    <> List.length current.Experiments.rows
  then
    fail
      (Printf.sprintf "row count %d, baseline has %d"
         (List.length current.Experiments.rows)
         (List.length baseline.Experiments.rows))
      ~numbers:0 ~max_rel:0.0
  else begin
    let numbers = ref 0 and max_rel = ref 0.0 and first_bad = ref None in
    List.iteri
      (fun r (brow, crow) ->
        if List.length brow <> List.length crow then (
          if !first_bad = None then
            first_bad :=
              Some (Printf.sprintf "row %d: cell count changed" (r + 1)))
        else
          List.iteri
            (fun c (bcell, ccell) ->
              let bn = numbers_of_cell bcell
              and cn = numbers_of_cell ccell in
              if List.length bn <> List.length cn then (
                if !first_bad = None then
                  first_bad :=
                    Some
                      (Printf.sprintf
                         "row %d col %d: %S has %d numeric tokens, baseline \
                          %S has %d"
                         (r + 1) (c + 1) ccell (List.length cn) bcell
                         (List.length bn)))
              else
                List.iter2
                  (fun b cur ->
                    incr numbers;
                    let d = rel_dev b cur in
                    if d > !max_rel then max_rel := d;
                    if d > tol && !first_bad = None then
                      first_bad :=
                        Some
                          (Printf.sprintf
                             "row %d col %d: %g vs baseline %g (rel %.4f > \
                              tol %.4f)"
                             (r + 1) (c + 1) cur b d tol))
                  bn cn)
            (List.combine brow crow))
      (List.combine baseline.Experiments.rows current.Experiments.rows);
    { c_id = id; c_ok = !first_bad = None; c_numbers = !numbers;
      c_max_rel = !max_rel; c_detail = !first_bad }
  end

let tolerance_for ?(default = 0.02) doc id =
  match List.assoc_opt id doc.d_tolerances with
  | Some t -> t
  | None -> ( match doc.d_tolerance with Some t -> t | None -> default)
