open Ppc
module Kernel = Kernel_sim.Kernel
module Sched = Kernel_sim.Sched
module Mm = Kernel_sim.Mm
module Vfs = Kernel_sim.Vfs

type params = {
  jobs : int;
  jobserver : int;
  text_pages : int;
  data_pages : int;
  source_pages : int;
  compute_rounds : int;
}

let default_params =
  { jobs = 12;
    jobserver = 2;
    text_pages = 48;
    data_pages = 120;
    source_pages = 24;
    compute_rounds = 10 }

(* One compile job as a state machine over scheduler slices: read the
   source (sleeping on cold pages — that is where parallelism pays),
   compute, emit the object, exit. *)
type phase =
  | Reading of int       (* next source page to request *)
  | Computing of int     (* compute rounds left *)
  | Emitting
  | Exiting

let job_step p (gen : Refgen.t) source buf =
  let state = ref (Reading 0) in
  fun k ->
    match !state with
    | Reading from when from >= p.source_pages ->
        state := Computing p.compute_rounds;
        Sched.Yield
    | Reading from ->
        let n = min 4 (p.source_pages - from) in
        let cold =
          Kernel.sys_file_read_async k source ~from_page:from ~pages:n ~buf
        in
        state := Reading (from + n);
        if cold > 0 then Sched.Sleep (cold * Kernel.disk_wait_cycles)
        else Sched.Yield
    | Computing 0 ->
        state := Emitting;
        Sched.Yield
    | Computing n ->
        Kernel.user_run k ~instrs:2500;
        let rng = Kernel.rng k in
        for _ = 1 to 150 do
          let ea = Refgen.next gen in
          let kind = if Rng.int rng 4 = 0 then Mmu.Store else Mmu.Load in
          Kernel.touch k kind (Addr.page_base ea)
        done;
        state := Computing (n - 1);
        Sched.Yield
    | Emitting ->
        let obj = Kernel.sys_mmap k ~pages:16 ~writable:true in
        for i = 0 to 15 do
          let page = obj + (i lsl Addr.page_shift) in
          for line = 0 to 31 do
            Kernel.touch k Mmu.Store (page + (line * Addr.line_size))
          done
        done;
        Kernel.sys_munmap k ~ea:obj ~pages:16;
        state := Exiting;
        Sched.Yield
    | Exiting ->
        Kernel.sys_exit k;
        Sched.Done

type result = {
  perf : Perf.t;
  wall_us : float;
  busy_us : float;
  idle_fraction : float;
}

let run k ~params:p =
  if p.jobs < 1 || p.jobserver < 1 then
    invalid_arg "Parmake.run: jobs and jobserver must be positive";
  let sched = Sched.create k in
  let enroll i =
    let job =
      Kernel.spawn k ~text_pages:p.text_pages ~data_pages:p.data_pages
        ~stack_pages:8 ()
    in
    let data_ea = Mm.user_text_base + (p.text_pages lsl Addr.page_shift) in
    let gen =
      Refgen.create ~rng:(Kernel.rng k) ~base_ea:data_ea ~pages:p.data_pages
        ~hot_fraction:0.4 ~locality:0.85 ()
    in
    let source =
      Vfs.create_file (Kernel.vfs k)
        ~name:(Printf.sprintf "pm-src-%d-%d" i job.Kernel_sim.Task.pid)
        ~pages:p.source_pages
    in
    (* each job reads into the head of its own data segment *)
    Sched.add sched job (job_step p gen source data_ea)
  in
  (* "make -jN": a supervisor admits a new job whenever the jobserver has
     a free slot, and the scheduler interleaves whatever is runnable *)
  let first = min p.jobserver p.jobs in
  for i = 0 to first - 1 do
    enroll i
  done;
  let admitted = ref first in
  let supervisor = Kernel.spawn k ~text_pages:8 ~data_pages:8 () in
  Sched.add sched supervisor (fun k ->
      (* live includes this supervisor itself *)
      if !admitted < p.jobs && Sched.live sched - 1 < p.jobserver then begin
        enroll !admitted;
        incr admitted
      end;
      Kernel.user_run k ~instrs:200;
      if !admitted >= p.jobs then begin
        Kernel.sys_exit k;
        Sched.Done
      end
      else Sched.Sleep 5_000);
  Sched.run sched

let measure ~machine ~policy ~params ?(seed = 42) () =
  let k = Kernel.boot ~machine ~policy ~seed () in
  let before = Perf.snapshot (Kernel.perf k) in
  run k ~params;
  let perf = Perf.diff ~after:(Perf.snapshot (Kernel.perf k)) ~before in
  let mhz = machine.Machine.mhz in
  { perf;
    wall_us = Cost.us_of_cycles ~mhz perf.Perf.cycles;
    busy_us = Cost.us_of_cycles ~mhz (Perf.busy_cycles perf);
    idle_fraction =
      (if perf.Perf.cycles = 0 then 0.0
       else
         float_of_int perf.Perf.idle_cycles /. float_of_int perf.Perf.cycles)
  }
