(** Regression baselines: the machine-readable results document and the
    tolerance comparison behind [mmu_sim check --baseline].

    A results document is what [mmu_sim experiment --json] emits and
    what lives committed under [baselines/]: the seed plus every
    experiment's {!Experiments.table}, optionally with per-experiment
    relative tolerances.  Checking reruns the experiments named by the
    baseline at the baseline's seed and compares every numeric token of
    every cell within tolerance — the experiments are deterministic per
    seed, so the tolerance only absorbs float-formatting differences
    across platforms, not real drift. *)

type doc = {
  d_seed : int;
  d_tolerance : float option;  (** doc-level default tolerance, if any *)
  d_tolerances : (string * float) list;  (** per-experiment overrides *)
  d_entries : (string * Experiments.table) list;  (** id, results *)
}

val doc_to_json :
  ?tolerance:float ->
  ?observability:(string * Json.t) list ->
  ?failures:(string * string) list ->
  seed:int ->
  (string * Experiments.table) list ->
  Json.t
(** Build the results document.  Experiment ids found in
    {!Experiments.registry} carry their section/description along for
    human readers of the JSON.  [observability] attaches per-experiment
    trace documents (from {!Trace.observability_json}) under an
    ["observability"] key the checker ignores, so traced and untraced
    baselines stay interchangeable.  [failures] records experiments
    that produced no table (id, human-readable detail from
    {!Runner.describe}) under a ["failures"] key, emitted only when
    non-empty — a fully clean run's document is byte-identical with or
    without supervision. *)

val doc_of_json : Json.t -> (doc, string) result

val load : string -> (doc, string) result
(** Read and decode a results document from a file. *)

val numbers_of_cell : string -> float list
(** Every numeric token in a rendered cell, in order: ["1.63/1.60"]
    yields [[1.63; 1.60]], ["-10% (219,000,000)"] yields
    [[-10.; 219000000.]].  Thousands separators are folded; a comma is
    only part of a number when it glues groups of three digits. *)

val rel_dev : float -> float -> float
(** Relative deviation [|a-b| / max |a| |b|] (0 when both are 0) — the
    measure both {!check_table} and [Explain] rank by. *)

(** Result of checking one experiment against its baseline entry. *)
type check = {
  c_id : string;
  c_ok : bool;
  c_numbers : int;  (** numeric tokens compared *)
  c_max_rel : float;  (** worst relative deviation seen *)
  c_detail : string option;  (** first mismatch, human-readable *)
}

val check_table :
  id:string ->
  tol:float ->
  baseline:Experiments.table ->
  current:Experiments.table ->
  check
(** Structural comparison (header, row count, per-cell numeric token
    count) plus numeric comparison: relative deviation
    [|a-b| / max |a| |b|] must stay within [tol] for every token. *)

val tolerance_for : ?default:float -> doc -> string -> float
(** Effective tolerance for one experiment id: per-experiment override,
    else the doc-level tolerance, else [default] (0.02 if omitted). *)
