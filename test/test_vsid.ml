(* VSID allocation: strategies, zombies, scatter. *)
open Ppc
module V = Kernel_sim.Vsid_alloc

let test_pid_based () =
  let v = V.create ~source:V.Pid_based ~multiplier:1 in
  let c = V.new_context v ~pid:7 in
  Alcotest.(check int) "ctx is pid" 7 c;
  Alcotest.(check bool) "vsid live" true (V.is_live v (V.vsid v ~ctx:c ~sr:0))

let test_counter_monotonic () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let a = V.new_context v ~pid:10 in
  let b = V.new_context v ~pid:10 in
  Alcotest.(check bool) "fresh ids" true (a <> b);
  Alcotest.(check int) "two live contexts" 2 (V.live_contexts v)

let test_renew_creates_zombie () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let c = V.new_context v ~pid:1 in
  let old_vsid = V.vsid v ~ctx:c ~sr:3 in
  let c' = V.renew_context v ~old_ctx:c ~pid:1 in
  Alcotest.(check bool) "new id" true (c <> c');
  Alcotest.(check bool) "old vsid is zombie" true (V.is_zombie v old_vsid);
  Alcotest.(check bool) "new vsid live" true
    (V.is_live v (V.vsid v ~ctx:c' ~sr:3));
  Alcotest.(check int) "still one live context" 1 (V.live_contexts v)

let test_pid_cannot_renew () =
  let v = V.create ~source:V.Pid_based ~multiplier:1 in
  let c = V.new_context v ~pid:1 in
  match V.renew_context v ~old_ctx:c ~pid:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Pid_based renew must fail"

let test_retire () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let c = V.new_context v ~pid:1 in
  let vsid = V.vsid v ~ctx:c ~sr:0 in
  V.retire_context v c;
  Alcotest.(check bool) "zombie after retire" true (V.is_zombie v vsid);
  Alcotest.(check int) "no live contexts" 0 (V.live_contexts v)

let test_kernel_always_live () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  for sr = 12 to 15 do
    let kv = V.kernel_vsid ~sr in
    Alcotest.(check bool) "kernel vsid live" true (V.is_live v kv);
    Alcotest.(check bool) "is_kernel" true (V.is_kernel kv)
  done;
  Alcotest.(check bool) "user vsid is not kernel" false
    (V.is_kernel (V.vsid v ~ctx:(V.new_context v ~pid:1) ~sr:0))

let test_vsid_encodes_segment () =
  let v = V.create ~source:V.Context_counter ~multiplier:097 in
  let c = V.new_context v ~pid:1 in
  let v0 = V.vsid v ~ctx:c ~sr:0 in
  for sr = 0 to 15 do
    Alcotest.(check int) "segment selects the top nibble"
      ((sr lsl 20) lor v0)
      (V.vsid v ~ctx:c ~sr)
  done;
  (* different contexts get different low bits *)
  let c2 = V.new_context v ~pid:2 in
  Alcotest.(check bool) "contexts disjoint" true
    (V.vsid v ~ctx:c2 ~sr:0 <> v0)

(* §5.2: hash-scatter quality.  Many processes with identical address
   layouts: the tuned multiplier must spread their PTEs across far more
   PTEGs than the naive one. *)
let pteg_coverage ~multiplier ~n_procs ~pages =
  let v = V.create ~source:V.Pid_based ~multiplier in
  let n_ptegs = 2048 in
  let seen = Hashtbl.create 1024 in
  for pid = 1 to n_procs do
    let ctx = V.new_context v ~pid in
    for page = 0 to pages - 1 do
      (* pages in segment 0, identical layout in every process *)
      let vsid = V.vsid v ~ctx ~sr:0 in
      let h = Pte.hash_primary ~n_ptegs ~vsid ~page_index:page in
      Hashtbl.replace seen h ()
    done
  done;
  Hashtbl.length seen

let test_scatter_beats_naive () =
  let naive = pteg_coverage ~multiplier:1 ~n_procs:32 ~pages:32 in
  let tuned =
    pteg_coverage ~multiplier:V.scatter_multiplier ~n_procs:32 ~pages:32
  in
  Alcotest.(check bool)
    (Printf.sprintf "tuned (%d PTEGs) covers >2x naive (%d)" tuned naive)
    true
    (tuned > 2 * naive)

let prop_vsid_liveness_consistent =
  QCheck.Test.make ~name:"issued vsids are live until retired" ~count:200
    QCheck.(int_bound 1000)
    (fun pid ->
      let v = V.create ~source:V.Context_counter ~multiplier:097 in
      let c = V.new_context v ~pid in
      let ok = ref true in
      for sr = 0 to 11 do
        if not (V.is_live v (V.vsid v ~ctx:c ~sr)) then ok := false
      done;
      V.retire_context v c;
      for sr = 0 to 11 do
        if V.is_live v (V.vsid v ~ctx:c ~sr) then ok := false
      done;
      !ok)

let test_multiplier_validation () =
  match V.create ~source:V.Pid_based ~multiplier:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive multiplier must be rejected"

(* --- the 20-bit context wrap (§7's escape hatch) --------------------- *)

(* Churn through more contexts than the 20-bit space holds, keeping a
   rolling window live: the counter must wrap (firing the escape hatch),
   every issued id must be fresh VSID territory, and no two live
   contexts may ever share a vsid0. *)
let test_wrap_churn () =
  let v = V.create ~source:V.Context_counter ~multiplier:V.scatter_multiplier in
  let hatch = ref 0 in
  V.set_on_wrap v (fun () -> incr hatch);
  let window = Queue.create () in
  let churn = V.ctx_space + 4096 in
  for pid = 1 to churn do
    let c = V.new_context v ~pid in
    Queue.add c window;
    if Queue.length window > 16 then V.retire_context v (Queue.pop window)
  done;
  Alcotest.(check bool) "wrapped at least once" true (V.wraps v >= 1);
  Alcotest.(check int) "escape hatch fired per wrap" (V.wraps v) !hatch;
  Alcotest.(check int) "window is the live set" (Queue.length window)
    (V.live_contexts v);
  (* no two live contexts share a vsid0 *)
  let seen = Hashtbl.create 32 in
  Queue.iter
    (fun c ->
      let v0 = V.vsid v ~ctx:c ~sr:0 in
      Alcotest.(check bool) "live vsid0s distinct" false (Hashtbl.mem seen v0);
      Hashtbl.replace seen v0 ())
    window

(* A wrapped counter must skip ids whose VSIDs are still live. *)
let test_wrap_skips_live () =
  let v = V.create ~source:V.Context_counter ~multiplier:1 in
  let c1 = V.new_context v ~pid:1 in
  Alcotest.(check int) "first id" 1 c1;
  V.unsafe_set_next v (V.ctx_space - 1);
  let tail = V.new_context v ~pid:2 in
  Alcotest.(check int) "last pre-wrap id" (V.ctx_space - 1) tail;
  Alcotest.(check int) "wrap happened" 1 (V.wraps v);
  (* ctx 1 is still live: the first post-wrap allocation must skip it *)
  let c2 = V.new_context v ~pid:3 in
  Alcotest.(check int) "live id skipped on reissue" 2 c2;
  Alcotest.(check bool) "original still live" true
    (V.is_live v (V.vsid v ~ctx:c1 ~sr:0));
  Alcotest.(check int) "three live contexts" 3 (V.live_contexts v)

(* The pre-fix counter (test-only plant): ctx and ctx + 2^20 silently
   share every VSID, so retiring one zombifies the other — the aliasing
   bug, observable at the allocator level. *)
let test_prefix_aliasing_plant () =
  V.test_unsafe_no_wrap := true;
  Fun.protect
    ~finally:(fun () -> V.test_unsafe_no_wrap := false)
    (fun () ->
      let v = V.create ~source:V.Context_counter ~multiplier:1 in
      let c1 = V.new_context v ~pid:1 in
      V.unsafe_set_next v (V.ctx_space + 1);
      let c2 = V.new_context v ~pid:2 in
      Alcotest.(check bool) "distinct ids" true (c1 <> c2);
      Alcotest.(check int) "but aliased vsid0s"
        (V.vsid v ~ctx:c1 ~sr:0)
        (V.vsid v ~ctx:c2 ~sr:0);
      (* the exactness assert in live_contexts catches the under-count *)
      (match V.live_contexts v with
      | exception Assert_failure _ -> ()
      | n -> Alcotest.failf "alias slipped past live_contexts: %d" n);
      (* retiring one resurrects nothing for the other: its VSIDs die *)
      V.retire_context v c1;
      Alcotest.(check bool) "alias victim's vsid is zombie" true
        (V.is_zombie v (V.vsid v ~ctx:c2 ~sr:0)))

(* Pid_based ids whose munge lands in the kernel VSID block must be
   remapped, not issued. *)
let test_pid_kernel_collision_remapped () =
  let v = V.create ~source:V.Pid_based ~multiplier:1 in
  (* pids 0xF0000..0xF000F munge straight into the kernel window *)
  let c = V.new_context v ~pid:0xF0005 in
  Alcotest.(check bool) "collision remapped" true (c <> 0xF0005);
  for sr = 0 to 15 do
    Alcotest.(check bool) "no segment is a kernel vsid" false
      (V.is_kernel (V.vsid v ~ctx:c ~sr))
  done;
  (* re-requesting the same pid reuses its remapped id *)
  let c' = V.new_context v ~pid:0xF0005 in
  Alcotest.(check int) "same pid, same id" c c'

(* Even multipliers are not bijections mod 2^20: two pids can munge to
   the same vsid0 before any wrap.  The allocator must give the second
   one fresh VSIDs and count both exactly. *)
let test_pid_even_mult_alias_skipped () =
  let v = V.create ~source:V.Pid_based ~multiplier:16 in
  let c1 = V.new_context v ~pid:1 in
  (* 65537 * 16 = 1 * 16 (mod 2^20): same vsid0 as pid 1 *)
  let c2 = V.new_context v ~pid:65537 in
  Alcotest.(check bool) "aliasing pid remapped" true
    (V.vsid v ~ctx:c1 ~sr:0 <> V.vsid v ~ctx:c2 ~sr:0);
  Alcotest.(check int) "exactly two live contexts" 2 (V.live_contexts v)

let suite =
  [ Alcotest.test_case "pid based" `Quick test_pid_based;
    Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
    Alcotest.test_case "renew creates zombie" `Quick
      test_renew_creates_zombie;
    Alcotest.test_case "pid cannot renew" `Quick test_pid_cannot_renew;
    Alcotest.test_case "retire" `Quick test_retire;
    Alcotest.test_case "kernel vsids always live" `Quick
      test_kernel_always_live;
    Alcotest.test_case "segment in vsid" `Quick test_vsid_encodes_segment;
    Alcotest.test_case "scatter beats naive (§5.2)" `Quick
      test_scatter_beats_naive;
    Alcotest.test_case "multiplier validation" `Quick
      test_multiplier_validation;
    Alcotest.test_case "wrap churn > 2^20 (§7)" `Slow test_wrap_churn;
    Alcotest.test_case "wrap skips live ids" `Quick test_wrap_skips_live;
    Alcotest.test_case "pre-fix aliasing plant" `Quick
      test_prefix_aliasing_plant;
    Alcotest.test_case "pid kernel collision remapped" `Quick
      test_pid_kernel_collision_remapped;
    Alcotest.test_case "pid even-mult alias skipped" `Quick
      test_pid_even_mult_alias_skipped;
    QCheck_alcotest.to_alcotest prop_vsid_liveness_consistent ]
