(* Test runner: one alcotest section per module suite. *)

let () =
  Alcotest.run "mmu-tricks"
    [ ("rng", Test_rng.suite);
      ("addr", Test_addr.suite);
      ("pte", Test_pte.suite);
      ("bat", Test_bat.suite);
      ("segment", Test_segment.suite);
      ("tlb", Test_tlb.suite);
      ("cache", Test_cache.suite);
      ("htab", Test_htab.suite);
      ("perf", Test_perf.suite);
      ("trace", Test_trace.suite);
      ("machine-cost", Test_machine.suite);
      ("memsys", Test_memsys.suite);
      ("mmu", Test_mmu.suite);
      ("shadow", Test_shadow.suite);
      ("profile", Test_profile.suite);
      ("span", Test_span.suite);
      ("physmem", Test_physmem.suite);
      ("pagetable", Test_pagetable.suite);
      ("vsid", Test_vsid.suite);
      ("pagepool", Test_pagepool.suite);
      ("mm", Test_mm.suite);
      ("pipe-vfs", Test_pipe_vfs.suite);
      ("kernel", Test_kernel.suite);
      ("oracle", Test_oracle.suite);
      ("invariants", Test_invariants.suite);
      ("kparams", Test_kparams.suite);
      ("features", Test_features.suite);
      ("workloads", Test_workloads.suite);
      ("sched", Test_sched.suite);
      ("recorder", Test_recorder.suite);
      ("flight", Test_flight.suite);
      ("smp", Test_smp.suite);
      ("core", Test_core.suite);
      ("policy", Test_policy.suite);
      ("harness", Test_harness.suite);
      ("tuning", Test_tuning.suite);
      ("tuner", Test_tuner.suite);
      ("edges", Test_edges.suite);
      ("flat-equiv", Test_flat_equiv.suite);
      ("reproduction", Test_reproduction.suite) ]
