(** The first-class policy layer.

    Every MM decision the mechanism layers used to hardcode — the VSID
    scatter multiplier, the precise-vs-lazy flush cutoff, the
    zombie-reclaim cadence, the pre-zero list depth, the TLB and htab
    replacement choices, the fast/slow path-length selection, SMP
    shootdown batching — is a named knob over {!Kernel_sim.Policy.t}
    here, with a uniform string get/set (the CLI's [--policy KEY=VALUE]),
    a JSON round-trip (policy files, tuner documents) that rejects
    unknown keys, and the origin/paper-section catalog the docs and the
    {!Tuner} render.

    The type is an alias, not a wrapper: a policy built here threads
    through {!Kernel_sim.Kernel.boot} unchanged, and
    {!Kernel_sim.Policy.optimized} {e is} {!paper_default}. *)

type t = Kernel_sim.Policy.t

val paper_default : t
(** The paper's final constants: {!Kernel_sim.Policy.optimized}. *)

(** One row of the knob catalog (for docs and [--help] style listings). *)
type knob_info = {
  ki_key : string;      (** the [--policy] key *)
  ki_origin : string;   (** module the decision was extracted from *)
  ki_section : string;  (** paper section that tuned it *)
  ki_values : string;   (** accepted value syntax, e.g. ["lru|fifo|random"] *)
  ki_doc : string;
}

val catalog : knob_info list
(** Every knob, in canonical (JSON field) order. *)

val knob_keys : string list

val get : t -> string -> (string, string) result
(** Current value of one knob, rendered in [--policy] syntax. *)

val set : t -> string -> string -> (t, string) result
(** [set p key value] — rejects unknown keys and malformed values. *)

val apply_kv : t -> string -> (t, string) result
(** One [--policy] argument: either [KEY=VALUE] applied over [p], or a
    bare preset name from {!Config.all_named} which {e replaces} [p] as
    the new base. *)

val equal : t -> t -> bool

val diff : t -> t -> (string * string * string) list
(** [(key, value_in_a, value_in_b)] for every knob that differs. *)

val to_json : t -> Json.t
(** All knobs, in catalog order. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} ([of_json (to_json p) = Ok p]).  An optional
    ["base"] member names a {!Config} preset to start from (default
    {!paper_default}); every other member must be a known knob —
    unknown keys are errors, not warnings. *)

val of_string : string -> (t, string) result

val load_file : string -> (t, string) result
(** Read and parse a policy JSON file. *)
