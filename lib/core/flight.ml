open Ppc

(* ------------------------------------------------------------- views *)

type view = {
  v_cycle : int;
  v_perf : (string * int) list;
  v_gauges : (string * int array) list;
}

let view_of_sample (s : Recorder.sample) =
  { v_cycle = s.Recorder.s_cycle;
    v_perf = Perf.fields s.Recorder.s_perf;
    v_gauges = s.Recorder.s_gauges }

let pfield v name =
  match List.assoc_opt name v.v_perf with Some x -> x | None -> 0

let gauge v name = List.assoc_opt name v.v_gauges

(* ----------------------------------------------------------- metrics *)

type metric = {
  m_name : string;
  m_doc : string;
  m_fn : prev:view option -> view -> float option;
}

let d ~prev cur name =
  match prev with
  | None -> None
  | Some p -> Some (pfield cur name - pfield p name)

let d2 ~prev cur a b =
  match (d ~prev cur a, d ~prev cur b) with
  | Some x, Some y -> Some (x + y)
  | _ -> None

let per ?(scale = 1.) num den =
  match (num, den) with
  | Some n, Some dn ->
      if dn <= 0 then Some 0.
      else Some (scale *. float_of_int n /. float_of_int dn)
  | _ -> None

let metrics =
  [ { m_name = "tlb_miss_rate";
      m_doc = "TLB misses per 1k lookups over the sample interval";
      m_fn =
        (fun ~prev cur ->
          per ~scale:1000.
            (d2 ~prev cur "itlb_misses" "dtlb_misses")
            (d2 ~prev cur "itlb_lookups" "dtlb_lookups")) };
    { m_name = "idle_fraction";
      m_doc = "idle cycles / cycles over the sample interval";
      m_fn =
        (fun ~prev cur ->
          per (d ~prev cur "idle_cycles") (d ~prev cur "cycles")) };
    { m_name = "vsid_wrap_delta";
      m_doc = "context-counter wraps in the sample interval";
      m_fn =
        (fun ~prev cur ->
          match d ~prev cur "vsid_wraps" with
          | Some x -> Some (float_of_int x)
          | None -> None) };
    { m_name = "ctxsw_per_mcycle";
      m_doc = "context switches per million cycles over the interval";
      m_fn =
        (fun ~prev cur ->
          per ~scale:1_000_000.
            (d ~prev cur "context_switches")
            (d ~prev cur "cycles")) };
    { m_name = "pteg_max_chain";
      m_doc = "longest PTEG collision chain right now (0..8)";
      m_fn =
        (fun ~prev:_ cur ->
          match gauge cur "htab_chains" with
          | None -> None
          | Some h ->
              let best = ref 0 in
              Array.iteri (fun k n -> if n > 0 then best := k) h;
              Some (float_of_int !best)) };
    { m_name = "htab_occupancy_pct";
      m_doc = "valid PTEs as % of htab capacity right now";
      m_fn =
        (fun ~prev:_ cur ->
          match gauge cur "htab" with
          | Some [| occ; cap; _ |] when cap > 0 ->
              Some (100. *. float_of_int occ /. float_of_int cap)
          | _ -> None) };
    { m_name = "htab_zombie_pct";
      m_doc = "zombie PTEs as % of valid PTEs right now";
      m_fn =
        (fun ~prev:_ cur ->
          match gauge cur "htab" with
          | Some [| occ; _; zombie |] when occ > 0 ->
              Some (100. *. float_of_int zombie /. float_of_int occ)
          | _ -> None) };
    { m_name = "runq_imbalance";
      m_doc = "max - min run-queue depth across CPUs right now";
      m_fn =
        (fun ~prev:_ cur ->
          match gauge cur "runq" with
          | Some q when Array.length q > 0 ->
              let mx = Array.fold_left max q.(0) q in
              let mn = Array.fold_left min q.(0) q in
              Some (float_of_int (mx - mn))
          | _ -> None) };
    { m_name = "span_p99_cycles";
      m_doc = "p99 request latency so far (cycles), when spans are armed";
      m_fn =
        (fun ~prev:_ cur ->
          match gauge cur "span" with
          | Some [| completed; _; p99 |] when completed > 0 ->
              Some (float_of_int p99)
          | _ -> None) } ]

let metric_names = List.map (fun m -> m.m_name) metrics
let metric_doc name =
  match List.find_opt (fun m -> m.m_name = name) metrics with
  | Some m -> Some m.m_doc
  | None -> None

let compute name ~prev cur =
  match List.find_opt (fun m -> m.m_name = name) metrics with
  | Some m -> m.m_fn ~prev cur
  | None -> None

(* ------------------------------------------------------------- rules *)

type trigger =
  | Above of float
  | Below of float
  | Step of float
  | Drop of float

type rule = {
  rl_id : string;
  rl_metric : string;
  rl_trigger : trigger;
  rl_window : int;
  rl_cooldown : int;
}

let trigger_text = function
  | Above v -> Printf.sprintf "> %g" v
  | Below v -> Printf.sprintf "< %g" v
  | Step f -> Printf.sprintf "step x%g" f
  | Drop f -> Printf.sprintf "drop /%g" f

let rule ?(window = 8) ?(cooldown = 8) id metric trigger =
  if window < 1 then invalid_arg "Flight.rule: window must be >= 1";
  if cooldown < 0 then invalid_arg "Flight.rule: cooldown must be >= 0";
  if not (List.mem metric metric_names) then
    invalid_arg
      (Printf.sprintf "Flight.rule %s: unknown metric %S (know: %s)" id metric
         (String.concat ", " metric_names));
  { rl_id = id;
    rl_metric = metric;
    rl_trigger = trigger;
    rl_window = window;
    rl_cooldown = cooldown }

let default_rules =
  [ rule "htab-chain-spike" "pteg_max_chain" (Above 7.5);
    rule ~window:32 ~cooldown:64 "tlb-miss-step" "tlb_miss_rate" (Step 6.);
    rule "vsid-wrap-burst" "vsid_wrap_delta" (Above 0.5);
    rule "runq-imbalance" "runq_imbalance" (Above 12.5);
    rule ~window:16 ~cooldown:64 "idle-collapse" "idle_fraction" (Drop 20.) ]

let rule_to_json r =
  let trig =
    match r.rl_trigger with
    | Above v -> ("above", Json.Float v)
    | Below v -> ("below", Json.Float v)
    | Step f -> ("step", Json.Float f)
    | Drop f -> ("drop", Json.Float f)
  in
  Json.Obj
    [ ("id", Json.String r.rl_id);
      ("metric", Json.String r.rl_metric);
      trig;
      ("window", Json.Int r.rl_window);
      ("cooldown", Json.Int r.rl_cooldown) ]

let rules_to_json rules =
  Json.Obj [ ("rules", Json.List (List.map rule_to_json rules)) ]

let rule_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  let int_def k dflt =
    match Option.bind (Json.member k j) Json.to_int_opt with
    | Some n -> n
    | None -> dflt
  in
  match str "id" with
  | None -> Error "rule without an \"id\""
  | Some id -> (
      match str "metric" with
      | None -> Error (Printf.sprintf "rule %s: missing \"metric\"" id)
      | Some metric -> (
          let triggers =
            List.filter_map
              (fun (k, mk) ->
                match num k with Some v -> Some (mk v) | None -> None)
              [ ("above", fun v -> Above v);
                ("below", fun v -> Below v);
                ("step", fun v -> Step v);
                ("drop", fun v -> Drop v) ]
          in
          match triggers with
          | [ trigger ] -> (
              try
                Ok
                  (rule ~window:(int_def "window" 8)
                     ~cooldown:(int_def "cooldown" 8) id metric trigger)
              with Invalid_argument m -> Error m)
          | [] ->
              Error
                (Printf.sprintf
                   "rule %s: needs exactly one of above/below/step/drop" id)
          | _ ->
              Error
                (Printf.sprintf
                   "rule %s: more than one of above/below/step/drop" id)))

let rules_of_json j =
  match Option.bind (Json.member "rules" j) Json.to_list_opt with
  | None -> Error "expected {\"rules\": [...]}"
  | Some l ->
      let rec walk acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match rule_of_json r with
            | Ok r -> walk (r :: acc) rest
            | Error _ as e -> e)
      in
      walk [] l

let load_rules path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | body -> (
      match Json.of_string body with
      | Error m -> Error (Printf.sprintf "%s: %s" path m)
      | Ok j -> rules_of_json j)

(* --------------------------------------------------------- incidents *)

type incident = {
  i_run : int;
  i_label : string;
  i_cycle : int;
  i_rule : string;
  i_metric : string;
  i_value : float;
  i_trigger : string;
  i_attr : (int * int * int * int * int) list;
}

(* the "attribution" gauge is the profiler's top accounts flattened at
   stride 5 (pid, seg, kind, count, cost); empty unless --profile armed *)
let attr_of_view v =
  match gauge v "attribution" with
  | None -> []
  | Some a ->
      let rows = Array.length a / 5 in
      List.init rows (fun i ->
          let b = i * 5 in
          (a.(b), a.(b + 1), a.(b + 2), a.(b + 3), a.(b + 4)))

let incident_json i =
  Json.Obj
    [ ("t", Json.String "i");
      ("run", Json.Int i.i_run);
      ("label", Json.String i.i_label);
      ("c", Json.Int i.i_cycle);
      ("rule", Json.String i.i_rule);
      ("metric", Json.String i.i_metric);
      ("value", Json.Float i.i_value);
      ("trigger", Json.String i.i_trigger);
      ("attr",
       Json.List
         (List.map
            (fun (pid, seg, kind, count, cost) ->
              Json.List
                [ Json.Int pid; Json.Int seg; Json.Int kind; Json.Int count;
                  Json.Int cost ])
            i.i_attr)) ]

let incident_of_json j =
  let str k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_string_opt) in
  let int k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_int_opt) in
  let attr =
    match Option.bind (Json.member "attr" j) Json.to_list_opt with
    | None -> []
    | Some l ->
        List.filter_map
          (fun row ->
            match Json.to_list_opt row with
            | Some [ a; b; c; d; e ] -> (
                match List.map Json.to_int_opt [ a; b; c; d; e ] with
                | [ Some a; Some b; Some c; Some d; Some e ] ->
                    Some (a, b, c, d, e)
                | _ -> None)
            | _ -> None)
          l
  in
  { i_run = int "run" 0;
    i_label = str "label" "";
    i_cycle = int "c" 0;
    i_rule = str "rule" "?";
    i_metric = str "metric" "?";
    i_value =
      Option.value ~default:0.
        (Option.bind (Json.member "value" j) Json.to_float_opt);
    i_trigger = str "trigger" "";
    i_attr = attr }

let describe_incident i =
  Printf.sprintf "[%s] %s at cycle %d: %s = %g (%s)"
    (if i.i_label = "" then string_of_int i.i_run else i.i_label)
    i.i_rule i.i_cycle i.i_metric i.i_value i.i_trigger

(* ---------------------------------------------------------- detector *)

type dcell = {
  dc_rule : rule;
  mutable dc_window : float list; (* newest first, at most rl_window *)
  mutable dc_cooldown : int;
}

type detector = dcell list

let detector rules =
  List.map (fun r -> { dc_rule = r; dc_window = []; dc_cooldown = 0 }) rules

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let detector_step det ~run ~label ~prev cur =
  List.filter_map
    (fun dc ->
      let r = dc.dc_rule in
      match compute r.rl_metric ~prev cur with
      | None -> None
      | Some x ->
          let warm = List.length dc.dc_window >= r.rl_window in
          let fired =
            if dc.dc_cooldown > 0 then begin
              dc.dc_cooldown <- dc.dc_cooldown - 1;
              false
            end
            else
              match r.rl_trigger with
              | Above th -> x > th
              | Below th -> warm && x < th
              | Step f ->
                  warm
                  &&
                  let m = mean dc.dc_window in
                  m > 0. && x > f *. m
              | Drop f ->
                  warm
                  &&
                  let m = mean dc.dc_window in
                  m > 0. && x < m /. f
          in
          (* the trailing window never includes the current sample, so a
             Step baseline is what came before the spike *)
          dc.dc_window <- take r.rl_window (x :: dc.dc_window);
          if not fired then None
          else begin
            dc.dc_cooldown <- r.rl_cooldown;
            Some
              { i_run = run;
                i_label = label;
                i_cycle = cur.v_cycle;
                i_rule = r.rl_id;
                i_metric = r.rl_metric;
                i_value = x;
                i_trigger = trigger_text r.rl_trigger;
                i_attr = attr_of_view cur }
          end)
    det

(* ---------------------------------------------------- line encoding *)

let zero_perf = Perf.fields (Perf.create ())

let changed_perf last cur =
  match last with
  | None -> List.filter (fun (_, v) -> v <> 0) cur.v_perf
  | Some p ->
      List.filter (fun (k, v) -> pfield p k <> v) cur.v_perf

let changed_gauges last cur =
  match last with
  | None -> cur.v_gauges
  | Some p ->
      List.filter
        (fun (k, a) ->
          match gauge p k with Some b -> a <> b | None -> true)
        cur.v_gauges

let begin_json ~run ~label ~every =
  Json.Obj
    [ ("t", Json.String "begin");
      ("run", Json.Int run);
      ("label", Json.String label);
      ("every", Json.Int every) ]

let sample_json ~run ?label ~last cur =
  let p = changed_perf last cur in
  let g = changed_gauges last cur in
  Json.Obj
    (List.concat
       [ [ ("t", Json.String "s"); ("run", Json.Int run);
           ("c", Json.Int cur.v_cycle) ];
         (match label with Some l -> [ ("label", Json.String l) ] | None -> []);
         (if p = [] then []
          else [ ("p", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) p)) ]);
         (if g = [] then []
          else
            [ ("g",
               Json.Obj
                 (List.map
                    (fun (k, a) ->
                      (k,
                       Json.List
                         (Array.to_list (Array.map (fun x -> Json.Int x) a))))
                    g)) ]) ])

let end_json rcd =
  Json.Obj
    [ ("t", Json.String "end");
      ("run", Json.Int (Recorder.run_id rcd));
      ("label", Json.String (Recorder.label rcd));
      ("c", Json.Int rcd.Recorder.perf.Perf.cycles);
      ("samples", Json.Int (Recorder.total rcd));
      ("retained", Json.Int (Recorder.length rcd));
      ("every", Json.Int (Recorder.every rcd)) ]

(* ------------------------------------------------------------ decode *)

type timeline = {
  tl_run : int;
  tl_label : string;
  tl_every : int;
  tl_final_every : int;
  tl_total : int;
  tl_ended : bool;
  tl_views : view list;
  tl_incidents : incident list;
}

type open_run = {
  o_run : int;
  mutable o_label : string;
  o_every : int;
  mutable o_final_every : int;
  mutable o_total : int; (* -1 until an end line arrives *)
  mutable o_perf : (string * int) list;
  mutable o_gauges : (string * int array) list;
  mutable o_views_rev : view list;
  mutable o_incidents_rev : incident list;
}

let close_run o =
  let streamed = List.length o.o_views_rev in
  { tl_run = o.o_run;
    tl_label = o.o_label;
    tl_every = o.o_every;
    tl_final_every = o.o_final_every;
    tl_total = (if o.o_total >= 0 then o.o_total else streamed);
    tl_ended = o.o_total >= 0;
    tl_views = List.rev o.o_views_rev;
    tl_incidents = List.rev o.o_incidents_rev }

let decode_lines lines =
  let opens = ref [] (* newest first *) in
  let finished_rev = ref [] in
  let find run = List.assoc_opt run !opens in
  let close run =
    match find run with
    | None -> ()
    | Some o ->
        finished_rev := close_run o :: !finished_rev;
        opens := List.remove_assoc run !opens
  in
  let err ln msg = Error (Printf.sprintf "line %d: %s" ln msg) in
  let rec walk ln = function
    | [] ->
        (* runs the stream never closed (a crashed or still-running
           producer) are returned with what was streamed so far *)
        List.iter (fun (_, o) -> finished_rev := close_run o :: !finished_rev)
          (List.rev !opens);
        Ok (List.rev !finished_rev)
    | line :: rest when String.trim line = "" -> walk (ln + 1) rest
    | line :: rest -> (
        match Json.of_string line with
        | Error m -> err ln m
        | Ok j -> (
            let str k = Option.bind (Json.member k j) Json.to_string_opt in
            let int k = Option.bind (Json.member k j) Json.to_int_opt in
            match str "t" with
            | Some "begin" -> (
                match int "run" with
                | None -> err ln "begin without \"run\""
                | Some run ->
                    close run;
                    let every = Option.value ~default:0 (int "every") in
                    opens :=
                      (run,
                       { o_run = run;
                         o_label = Option.value ~default:"" (str "label");
                         o_every = every;
                         o_final_every = every;
                         o_total = -1;
                         o_perf = zero_perf;
                         o_gauges = [];
                         o_views_rev = [];
                         o_incidents_rev = [] })
                      :: !opens;
                    walk (ln + 1) rest)
            | Some "s" -> (
                match Option.bind (int "run") find with
                | None -> err ln "sample for a run with no begin"
                | Some o ->
                    (match str "label" with
                    | Some l -> o.o_label <- l
                    | None -> ());
                    (match Json.member "p" j with
                    | Some (Json.Obj changes) ->
                        o.o_perf <-
                          List.map
                            (fun (k, v) ->
                              match List.assoc_opt k changes with
                              | Some (Json.Int n) -> (k, n)
                              | _ -> (k, v))
                            o.o_perf
                    | _ -> ());
                    (match Json.member "g" j with
                    | Some (Json.Obj changes) ->
                        List.iter
                          (fun (k, v) ->
                            match Json.to_list_opt v with
                            | None -> ()
                            | Some l ->
                                let a =
                                  Array.of_list
                                    (List.map
                                       (fun x ->
                                         Option.value ~default:0
                                           (Json.to_int_opt x))
                                       l)
                                in
                                if List.mem_assoc k o.o_gauges then
                                  o.o_gauges <-
                                    List.map
                                      (fun (k', a') ->
                                        if k' = k then (k, a) else (k', a'))
                                      o.o_gauges
                                else o.o_gauges <- o.o_gauges @ [ (k, a) ])
                          changes
                    | _ -> ());
                    o.o_views_rev <-
                      { v_cycle = Option.value ~default:0 (int "c");
                        v_perf = o.o_perf;
                        v_gauges = o.o_gauges }
                      :: o.o_views_rev;
                    walk (ln + 1) rest)
            | Some "i" -> (
                match Option.bind (int "run") find with
                | None -> err ln "incident for a run with no begin"
                | Some o ->
                    o.o_incidents_rev <-
                      incident_of_json j :: o.o_incidents_rev;
                    walk (ln + 1) rest)
            | Some "end" -> (
                match Option.bind (int "run") find with
                | None -> err ln "end for a run with no begin"
                | Some o ->
                    (match str "label" with
                    | Some l -> o.o_label <- l
                    | None -> ());
                    (match int "samples" with
                    | Some n -> o.o_total <- n
                    | None -> ());
                    (match int "every" with
                    | Some n -> o.o_final_every <- n
                    | None -> ());
                    close o.o_run;
                    walk (ln + 1) rest)
            | Some other -> err ln (Printf.sprintf "unknown record %S" other)
            | None -> err ln "record without a \"t\" tag"))
  in
  walk 1 lines

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let read_file path =
  match read_lines path with
  | exception Sys_error m -> Error m
  | lines -> decode_lines lines

(* batch detection over a decoded timeline (replay --detect) *)
let detect ?(rules = default_rules) tl =
  let det = detector rules in
  let _, incidents_rev =
    List.fold_left
      (fun (prev, acc) v ->
        let incs =
          detector_step det ~run:tl.tl_run ~label:tl.tl_label ~prev v
        in
        (Some v, List.rev_append incs acc))
      (None, []) tl.tl_views
  in
  List.rev incidents_rev

(* metric time series, for the replay tables and the Perfetto export *)
let series tl =
  List.filter_map
    (fun m ->
      let _, pts_rev =
        List.fold_left
          (fun (prev, acc) v ->
            match m.m_fn ~prev v with
            | Some x -> (Some v, (v.v_cycle, x) :: acc)
            | None -> (Some v, acc))
          (None, []) tl.tl_views
      in
      match pts_rev with [] -> None | l -> Some (m.m_name, List.rev l))
    metrics

(* ------------------------------------------------------------- sink *)

type sstate = {
  mutable ss_last : view option;
  mutable ss_label : string;
  ss_det : detector;
}

type sink = {
  sk_rules : rule list;
  sk_write : string -> unit;
  mutable sk_states : (int * sstate) list;
  mutable sk_incidents_rev : incident list;
}

let sink ?(rules = default_rules) ~write () =
  { sk_rules = rules; sk_write = write; sk_states = []; sk_incidents_rev = [] }

let emit sk j = sk.sk_write (Json.to_string ~compact:true j)

let on_sample sk st rcd (s : Recorder.sample) =
  let run = Recorder.run_id rcd in
  let v = view_of_sample s in
  let label = Recorder.label rcd in
  let label_opt = if label = st.ss_label then None else Some label in
  emit sk (sample_json ~run ?label:label_opt ~last:st.ss_last v);
  st.ss_label <- label;
  let incs = detector_step st.ss_det ~run ~label ~prev:st.ss_last v in
  List.iter
    (fun i ->
      emit sk (incident_json i);
      sk.sk_incidents_rev <- i :: sk.sk_incidents_rev)
    incs;
  st.ss_last <- Some v

let attach sk rcd =
  let run = Recorder.run_id rcd in
  let st =
    { ss_last = None; ss_label = Recorder.label rcd; ss_det = detector sk.sk_rules }
  in
  sk.sk_states <- (run, st) :: List.remove_assoc run sk.sk_states;
  emit sk (begin_json ~run ~label:st.ss_label ~every:(Recorder.every rcd));
  Recorder.set_on_sample rcd (fun r s -> on_sample sk st r s)

let finish sk rcd = emit sk (end_json rcd)

let incidents sk = List.rev sk.sk_incidents_rev

(* ------------------------------------------------------ session glue *)

let arm ?(every = Recorder.default_every) ?(cap = Recorder.default_cap) sk =
  Recorder.set_boot_defaults ~every ~cap ~enabled:true ();
  Recorder.set_boot_attach (Some (fun rcd -> attach sk rcd))

let disarm () =
  Recorder.set_boot_defaults ~enabled:false ();
  Recorder.set_boot_attach None

let drain_into sk =
  List.iter (fun rcd -> finish sk rcd) (Recorder.drain_registered ())

(* ---------------------------------------------------------- Perfetto *)

let to_chrome ?(mhz = 100) ?(name = "mmu_sim flight") tls =
  let mhzf = float_of_int mhz in
  let ts cycle = Json.Float (float_of_int cycle /. mhzf) in
  let events = ref [] in
  let emit e = events := e :: !events in
  List.iteri
    (fun pi tl ->
      let pid = pi + 1 in
      let pname = if tl.tl_label = "" then Printf.sprintf "run %d" tl.tl_run else tl.tl_label in
      emit
        (Json.Obj
           [ ("ph", Json.String "M");
             ("pid", Json.Int pid);
             ("tid", Json.Int 0);
             ("name", Json.String "process_name");
             ("args", Json.Obj [ ("name", Json.String (name ^ ": " ^ pname)) ]) ]);
      List.iter
        (fun (metric, points) ->
          List.iter
            (fun (cycle, value) ->
              emit
                (Json.Obj
                   [ ("ph", Json.String "C");
                     ("pid", Json.Int pid);
                     ("name", Json.String metric);
                     ("ts", ts cycle);
                     ("args", Json.Obj [ ("value", Json.Float value) ]) ]))
            points)
        (series tl);
      List.iter
        (fun i ->
          emit
            (Json.Obj
               [ ("ph", Json.String "i");
                 ("s", Json.String "p");
                 ("pid", Json.Int pid);
                 ("tid", Json.Int 0);
                 ("name", Json.String i.i_rule);
                 ("ts", ts i.i_cycle);
                 ("args",
                  Json.Obj
                    [ ("metric", Json.String i.i_metric);
                      ("value", Json.Float i.i_value);
                      ("trigger", Json.String i.i_trigger) ]) ]))
        tl.tl_incidents)
    tls;
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms") ]
