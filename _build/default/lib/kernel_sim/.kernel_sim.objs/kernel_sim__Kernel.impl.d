lib/kernel_sim/kernel.ml: Addr Array Bat Cache Cost Hashtbl Htab Kparams List Machine Memsys Mm Mmu Pagepool Pagetable Perf Physmem Pipe Policy Ppc Pte Rng Segment Task Vfs Vsid_alloc
