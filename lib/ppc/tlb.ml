type entry = {
  vpn : Addr.vpn;
  rpn : int;
  inhibited : bool;
  writable : bool;
}

type replacement = Lru | Fifo | Rand

let replacement_name = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Rand -> "random"

(* The store is four parallel flat int arrays rather than an
   [entry option array]: a VPN of -1 marks an invalid way (real VPNs are
   tag-encoded and never negative), [flags] packs the two booleans, and
   [stamps] implements LRU via a global tick.  The layout makes
   [lookup_slot]/[insert_flat] — the MMU's hot path — allocation-free;
   the [entry]-returning functions below are wrappers kept for probing,
   tests and the trace layer. *)
type t = {
  n_sets : int;
  n_ways : int;
  vpns : int array;    (* set-major: slot = set * ways + way; -1 invalid *)
  rpns : int array;
  flags : int array;   (* bit 0 = inhibited, bit 1 = writable *)
  stamps : int array;
  mutable tick : int;
  repl : replacement;
  lru_touch : bool;    (* = (repl = Lru), precomputed for the warm path *)
  mutable rand_state : int;  (* xorshift state for [Rand] victim picks *)
}

let flag_inhibited = 1
let flag_writable = 2

let create ?(replacement = Lru) ~sets ~ways () =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Tlb.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Tlb.create: ways must be positive";
  { n_sets = sets;
    n_ways = ways;
    vpns = Array.make (sets * ways) (-1);
    rpns = Array.make (sets * ways) 0;
    flags = Array.make (sets * ways) 0;
    stamps = Array.make (sets * ways) 0;
    tick = 0;
    repl = replacement;
    lru_touch = replacement = Lru;
    rand_state = 0x2545F49 lxor (sets * ways) }

let replacement t = t.repl

let sets t = t.n_sets
let ways t = t.n_ways
let capacity t = t.n_sets * t.n_ways

let set_of t vpn = vpn land (t.n_sets - 1)

(* --- the flat (allocation-free) interface --------------------------- *)

(* The scans are top-level recursions over explicit arguments, not inner
   [let rec] loops: without flambda an inner loop that captures its
   environment is a fresh heap closure on every call — the very
   allocation this layout exists to avoid. *)

(* [int array] annotations keep the scans monomorphic: unconstrained
   parameters would generalize to ['a array] and compile [=] into a
   [caml_equal] C call per way. *)
let rec scan_vpn (vpns : int array) (vpn : int) base w n =
  if w >= n then -1
  else if vpns.(base + w) = vpn then base + w
  else scan_vpn vpns vpn base (w + 1) n

(* Every TLB in [Machine.all] is 2-way; the unrolled probe saves the
   per-way loop cost on the hottest comparison in the simulator.
   [unsafe_get] is in bounds by construction: [base = set * n_ways] with
   [set < n_sets], so [base + 1 < n_sets * n_ways]. *)
let[@inline always] find_slot t vpn =
  let base = set_of t vpn * t.n_ways in
  if t.n_ways = 2 then
    if Array.unsafe_get t.vpns base = vpn then base
    else if Array.unsafe_get t.vpns (base + 1) = vpn then base + 1
    else -1
  else scan_vpn t.vpns vpn base 0 t.n_ways

let lookup_slot t vpn =
  let i = find_slot t vpn in
  if i >= 0 && t.lru_touch then begin
    t.tick <- t.tick + 1;
    t.stamps.(i) <- t.tick
  end;
  i

let peek_slot t vpn = find_slot t vpn

let slot_vpn t i = t.vpns.(i)
let slot_rpn t i = t.rpns.(i)
let slot_inhibited t i = t.flags.(i) land flag_inhibited <> 0
let slot_writable t i = t.flags.(i) land flag_writable <> 0

(* Victim way for an insert: a same-VPN slot (update in place,
   unconditionally preferred), else the first invalid way, else the LRU
   way (strict [<] on stamps, so the first minimal index wins ties).
   Written as a recursion over ints so the scan allocates nothing. *)
let rec victim_scan (vpns : int array) (stamps : int array) (vpn : int) base
    w n victim lru lru_way =
  if w >= n then if victim >= 0 then victim else lru_way
  else begin
    let v = vpns.(base + w) in
    let victim =
      if v = vpn then w else if v < 0 && victim < 0 then w else victim
    in
    let s = stamps.(base + w) in
    if s < lru then victim_scan vpns stamps vpn base (w + 1) n victim s w
    else victim_scan vpns stamps vpn base (w + 1) n victim lru lru_way
  end

(* For [Rand]: the same-VPN / first-invalid preference, with no stamp
   scan behind it. *)
let rec pref_scan (vpns : int array) (vpn : int) base w n inv =
  if w >= n then inv
  else
    let v = vpns.(base + w) in
    if v = vpn then w
    else if v < 0 && inv < 0 then pref_scan vpns vpn base (w + 1) n w
    else pref_scan vpns vpn base (w + 1) n inv

(* Deterministic per-TLB xorshift stream, seeded at [create]: random
   replacement stays reproducible per boot. *)
let next_rand t =
  let s = t.rand_state in
  let s = s lxor ((s lsl 13) land 0x3FFFFFFF) in
  let s = s lxor (s lsr 17) in
  let s = s lxor ((s lsl 5) land 0x3FFFFFFF) in
  t.rand_state <- s;
  s

let victim_way t base vpn =
  match t.repl with
  | Lru | Fifo ->
      (* stamps are bumped on every hit under LRU but only on insert
         under FIFO, so one scan serves both orders *)
      victim_scan t.vpns t.stamps vpn base 0 t.n_ways (-1) max_int 0
  | Rand ->
      let w = pref_scan t.vpns vpn base 0 t.n_ways (-1) in
      if w >= 0 then w else next_rand t mod t.n_ways

let insert_flat t ~vpn ~rpn ~inhibited ~writable =
  let base = set_of t vpn * t.n_ways in
  let i = base + victim_way t base vpn in
  let old = t.vpns.(i) in
  let displaced = if old = vpn then -1 else old in
  t.tick <- t.tick + 1;
  t.vpns.(i) <- vpn;
  t.rpns.(i) <- rpn;
  t.flags.(i) <-
    (if inhibited then flag_inhibited else 0)
    lor if writable then flag_writable else 0;
  t.stamps.(i) <- t.tick;
  displaced

(* --- the entry-record interface ------------------------------------- *)

let entry_of_slot t i =
  { vpn = t.vpns.(i);
    rpn = t.rpns.(i);
    inhibited = slot_inhibited t i;
    writable = slot_writable t i }

let lookup t vpn =
  let i = lookup_slot t vpn in
  if i < 0 then None else Some (entry_of_slot t i)

let peek t vpn =
  let i = peek_slot t vpn in
  if i < 0 then None else Some (entry_of_slot t i)

let insert_replacing t e =
  let base = set_of t e.vpn * t.n_ways in
  let i = base + victim_way t base e.vpn in
  let displaced =
    if t.vpns.(i) >= 0 && t.vpns.(i) <> e.vpn then Some (entry_of_slot t i)
    else None
  in
  t.tick <- t.tick + 1;
  t.vpns.(i) <- e.vpn;
  t.rpns.(i) <- e.rpn;
  t.flags.(i) <-
    (if e.inhibited then flag_inhibited else 0)
    lor if e.writable then flag_writable else 0;
  t.stamps.(i) <- t.tick;
  displaced

let insert t e =
  ignore
    (insert_flat t ~vpn:e.vpn ~rpn:e.rpn ~inhibited:e.inhibited
       ~writable:e.writable
      : int)

let invalidate_page t vpn =
  let base = set_of t vpn * t.n_ways in
  for w = 0 to t.n_ways - 1 do
    if t.vpns.(base + w) = vpn then t.vpns.(base + w) <- -1
  done

let invalidate_all t = Array.fill t.vpns 0 (Array.length t.vpns) (-1)

let occupancy t =
  let n = ref 0 in
  for i = 0 to Array.length t.vpns - 1 do
    if t.vpns.(i) >= 0 then incr n
  done;
  !n

let count_matching t p =
  let n = ref 0 in
  for i = 0 to Array.length t.vpns - 1 do
    if t.vpns.(i) >= 0 && p t.vpns.(i) then incr n
  done;
  !n

let iter t f =
  for i = 0 to Array.length t.vpns - 1 do
    if t.vpns.(i) >= 0 then f (entry_of_slot t i)
  done
