lib/workloads/lmbench.mli: Kernel_sim Ppc
