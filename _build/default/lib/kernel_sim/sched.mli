(** A cooperative round-robin scheduler.

    The microbenchmarks drive {!Kernel.switch_to} directly (they {e are}
    the schedule); macro workloads with real blocking — compile jobs
    sleeping on disk while others compute — need an actual scheduler.
    Processes are step functions: each call runs one bounded slice on the
    current task and says what happens next ([Yield] back to the queue,
    [Sleep] until a deadline, or [Done]).  When every process is asleep
    the machine runs the idle task until the earliest wake-up — which is
    exactly when the §7/§9 idle work (zombie reclaim, page clearing)
    happens on a loaded system. *)

(** What a process slice reports back. *)
type outcome =
  | Yield          (** runnable again immediately *)
  | Sleep of int   (** blocked for this many cycles (disk, timer) *)
  | Done           (** the process exited (the step called [sys_exit]) *)

type t

val create : Kernel.t -> t

val add : t -> Task.t -> (Kernel.t -> outcome) -> unit
(** [add t task step] enrolls a process.  The scheduler switches to
    [task] before every [step] call. *)

val live : t -> int
(** Enrolled processes not yet [Done]. *)

val run : t -> unit
(** Round-robin until every process is [Done].  Context switches are
    charged only when the running task actually changes; sleeping with
    nothing else runnable charges idle time.  (Timer interrupts fire
    inside the kernel's own operations — see {!Kernel.timer_tick}.) *)
