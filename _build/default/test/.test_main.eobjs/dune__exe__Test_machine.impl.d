test/test_machine.ml: Alcotest Cost List Machine Ppc
