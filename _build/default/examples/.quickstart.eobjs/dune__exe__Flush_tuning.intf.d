examples/flush_tuning.mli:
