lib/ppc/rng.ml: Array
