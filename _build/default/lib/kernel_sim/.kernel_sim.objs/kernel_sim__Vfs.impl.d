lib/kernel_sim/vfs.ml: Array Hashtbl Physmem
