lib/ppc/machine.ml: Format
