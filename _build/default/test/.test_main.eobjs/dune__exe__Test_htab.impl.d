test/test_htab.ml: Addr Alcotest Array Gen Htab List Ppc Pte QCheck QCheck_alcotest Rng
