open Ppc
module Kernel = Kernel_sim.Kernel
module Mm = Kernel_sim.Mm

type params = {
  rounds : int;
  clients : int;
  fb_pages : int;
  draws_per_round : int;
}

let default_params =
  { rounds = 60; clients = 3; fb_pages = 1024; draws_per_round = 48 }

(* clients use the standard 16-page text image; the server's is larger *)
let client_data = Mm.user_text_base + (16 lsl Addr.page_shift)
let server_data = Mm.user_text_base + (48 lsl Addr.page_shift)

let run k ~params:p =
  if p.clients < 1 || p.rounds < 1 || p.fb_pages < 1 then
    invalid_arg "Xserver.run: params must be positive";
  let rng = Kernel.rng k in
  let server = Kernel.spawn k ~text_pages:48 ~data_pages:32 () in
  let clients = Array.init p.clients (fun _ -> Kernel.spawn k ()) in
  let to_server = Kernel.new_pipe k in
  let to_client = Kernel.new_pipe k in
  (* The server maps the aperture and warms its own code/data. *)
  Kernel.switch_to k server;
  let fb = Kernel.sys_map_framebuffer k ~pages:p.fb_pages in
  Kernel.user_run k ~instrs:4000;
  Array.iter
    (fun c ->
      Kernel.switch_to k c;
      Kernel.user_run k ~instrs:1000)
    clients;
  for round = 0 to p.rounds - 1 do
    (* a client builds a request and sends it *)
    let c = clients.(round mod p.clients) in
    Kernel.switch_to k c;
    Kernel.user_run k ~instrs:600;
    for i = 0 to 5 do
      Kernel.touch k Mmu.Store (client_data + (i lsl Addr.page_shift))
    done;
    ignore (Kernel.sys_pipe_write k to_server ~buf:client_data ~bytes:64 : int);
    (* the server wakes, parses, and draws: scanline batches scattered
       across the aperture *)
    Kernel.switch_to k server;
    ignore (Kernel.sys_pipe_read k to_server ~buf:server_data ~bytes:64 : int);
    Kernel.user_run k ~instrs:1200;
    for _ = 1 to p.draws_per_round do
      let page = Rng.int rng p.fb_pages in
      let base = fb + (page lsl Addr.page_shift) in
      (* one scanline burst: four lines within the page *)
      for line = 0 to 3 do
        Kernel.touch k Mmu.Store (base + (line * Addr.line_size))
      done
    done;
    ignore (Kernel.sys_pipe_write k to_client ~buf:server_data ~bytes:32 : int);
    Kernel.switch_to k c;
    ignore (Kernel.sys_pipe_read k to_client ~buf:client_data ~bytes:32 : int)
  done;
  Array.iter
    (fun c ->
      Kernel.switch_to k c;
      Kernel.sys_exit k)
    clients;
  Kernel.switch_to k server;
  Kernel.sys_exit k

type result = {
  perf : Perf.t;
  wall_us : float;
  us_per_round : float;
}

let measure ~machine ~policy ?(params = default_params) ?(seed = 42) () =
  let k = Kernel.boot ~machine ~policy ~seed () in
  let perf = Measure.perf k (fun () -> run k ~params) in
  let wall_us =
    Cost.us_of_cycles ~mhz:machine.Machine.mhz perf.Perf.cycles
  in
  { perf; wall_us; us_per_round = wall_us /. float_of_int params.rounds }
