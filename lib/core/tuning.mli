(** The VSID-multiplier tuning methodology of §5.2.

    "We tuned the VSID generation algorithm by making Linux keep a hash
    table miss histogram and adjusting the constant until hot-spots
    disappeared."  This module is that tool: score a multiplier by the
    hot-spot structure it produces on a canonical multiprogrammed
    workload, sweep candidate constants, and report the ranking — the
    process that ended, historically, at 897.

    Scores derive from {!Ppc.Htab.histogram}: a {e hot spot} is a full
    PTEG (8/8 valid), since only full primary+overflow groups force
    evictions.  Lower is better. *)

type score = {
  multiplier : int;
  full_ptegs : int;      (** PTEGs at 8/8 — the hot-spot count *)
  evictions : int;       (** overflow evictions the workload suffered *)
  occupancy_pct : float; (** htab use achieved *)
  hit_rate : float;      (** htab hit rate on TLB misses *)
}

val score_multiplier :
  ?machine:Ppc.Machine.t ->
  ?procs:int ->
  ?pages:int ->
  ?seed:int ->
  int ->
  score
(** Boot a baseline kernel whose only varied policy is the VSID
    multiplier, run [procs] identical-layout processes over
    [pages]-page working sets (defaults 20 x 320 on the 604/185, the
    E2 configuration), and collect the histogram-derived score. *)

val sweep :
  ?machine:Ppc.Machine.t ->
  ?procs:int ->
  ?pages:int ->
  ?seed:int ->
  ?jobs:int ->
  int list ->
  score list
(** Score each candidate, returned best (fewest full PTEGs, then fewest
    evictions) first.  Candidates run as supervised {!Tuner.fan_out}
    tasks: [jobs > 1] forks workers, and the ranking is identical
    regardless of the job count. *)

val default_candidates : int list
(** The constants someone would plausibly try: small primes and odd
    composites, the powers of two that look tempting and fail, and the
    historical 897. *)

val to_table : score list -> Experiments.table
(** Render a sweep as a printable table. *)
