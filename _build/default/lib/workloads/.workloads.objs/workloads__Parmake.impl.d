lib/workloads/parmake.ml: Addr Cost Kernel_sim Machine Mmu Perf Ppc Printf Refgen Rng
