open Ppc

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let tlb_miss_rate p = ratio (Perf.tlb_misses p) (Perf.tlb_lookups p)

let htab_hit_rate p = ratio p.Perf.htab_hits p.Perf.htab_searches

let evict_ratio p = ratio p.Perf.htab_evicts p.Perf.htab_reloads

let dcache_miss_rate p = ratio p.Perf.dcache_misses p.Perf.dcache_accesses

let icache_miss_rate p = ratio p.Perf.icache_misses p.Perf.icache_accesses

let idle_fraction p = ratio p.Perf.idle_cycles p.Perf.cycles

let wall_us ~machine p =
  Cost.us_of_cycles ~mhz:machine.Machine.mhz p.Perf.cycles

let wall_s ~machine p = wall_us ~machine p /. 1e6

let occupancy_pct ~occupancy ~capacity =
  if capacity = 0 then 0.0
  else 100.0 *. float_of_int occupancy /. float_of_int capacity

let pct_change ~from_v ~to_v =
  if from_v = 0.0 then 0.0 else 100.0 *. (to_v -. from_v) /. from_v

let speedup ~from_v ~to_v = if to_v = 0.0 then infinity else from_v /. to_v
