lib/ppc/htab.mli: Addr Pte Rng
