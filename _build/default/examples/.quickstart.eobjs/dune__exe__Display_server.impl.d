examples/display_server.ml: Kernel_sim Machine Mmu_tricks Perf Ppc Workloads
