(** The Linux two-level page tables.

    The "machine independent" Linux core mandates x86-style page tables:
    a page global directory (pgd) of 1024 entries, each covering 4 MB via
    a page of 1024 four-byte PTEs.  On Linux/PPC this tree is the
    authoritative source of translations and the hashed page table is
    merely a cache of it (§8) — which is why the 603 can skip the htab
    entirely and walk this tree in its TLB-miss handler: "searching for a
    PTE in the tree can be done conveniently ... taking three loads in the
    worst case" (§6.1).  The three loads are: the pgd pointer in the
    context structure, the pgd entry, and the PTE itself; [walk] reports
    their physical addresses so the MMU charges them through the cache.

    Directory pages live in real physical frames taken from {!Physmem},
    so walks touch genuinely distinct cache lines, as on hardware. *)

open Ppc

exception Out_of_frames
(** Raised when a directory page cannot be allocated. *)

type entry = {
  rpn : int;           (** physical frame *)
  writable : bool;
  inhibited : bool;    (** cache-inhibited mapping *)
  shared : bool;       (** frame owned elsewhere (page cache, device
                           aperture): never freed with the address space *)
  cow : bool;          (** copy-on-write: mapped read-only and possibly
                           referenced by several address spaces; a store
                           breaks the sharing *)
}

type t

val create : physmem:Physmem.t -> ctx_pa:Addr.pa -> t
(** [create ~physmem ~ctx_pa] allocates the pgd frame.  [ctx_pa] is the
    physical address of the context structure holding the pgd pointer —
    the first load of every walk. *)

val pgd_rpn : t -> int

val map :
  t -> physmem:Physmem.t -> ea:Addr.ea -> entry -> unit
(** [map t ~physmem ~ea e] installs a translation for the page containing
    [ea], allocating the PTE page on demand.
    @raise Out_of_frames when a directory frame cannot be allocated. *)

val unmap : t -> ea:Addr.ea -> entry option
(** [unmap t ~ea] removes and returns the translation, if any. *)

val find : t -> ea:Addr.ea -> entry option
(** Side-effect-free lookup (no reference reporting). *)

val walk : t -> ea:Addr.ea -> entry option * Addr.pa array
(** [walk t ~ea] is the hardware-visible walk: the result plus the
    physical addresses of the loads performed (2 when the pgd entry is
    empty, 3 otherwise). *)

val mapped_count : t -> int
(** Number of installed translations. *)

val iter : t -> (Addr.ea -> entry -> unit) -> unit
(** [iter t f] calls [f] on every mapping (page-aligned EA). *)

val destroy : t -> physmem:Physmem.t -> unit
(** Free every directory frame.  The mapped data frames themselves are
    the caller's to release. *)
