lib/kernel_sim/pagepool.mli: Physmem Policy Ppc
