(* Exporters for Ppc.Span recorders: the machine-readable spans
   document embedded in experiment results, Perfetto per-request
   tracks, and the slowest-request text table.  This module depends on
   Ppc.Span; the recorder itself knows nothing about JSON. *)

open Ppc

(* Integer percentiles (Hist.percentile, bucket upper bounds) on
   purpose: the spans document is diffed byte-for-byte across --jobs
   counts and gated by check --slo, so every number in it must be
   exactly reproducible. *)
let hist_json h =
  Json.Obj
    [ ("count", Json.Int (Hist.count h));
      ("sum", Json.Int (Hist.sum h));
      ("max", Json.Int (Hist.max_value h));
      ("p50", Json.Int (Hist.percentile h 0.50));
      ("p99", Json.Int (Hist.percentile h 0.99));
      ("p999", Json.Int (Hist.percentile h 0.999));
      ("buckets",
       Json.List
         (List.map
            (fun (lo, hi, n) ->
              Json.List [ Json.Int lo; Json.Int hi; Json.Int n ])
            (Hist.buckets h))) ]

let request_json sp (r : Span.request) =
  Json.Obj
    [ ("rid", Json.Int r.Span.q_rid);
      ("class", Json.String (Span.class_name sp r.Span.q_cls));
      ("arrival", Json.Int r.Span.q_arrival);
      ("latency", Json.Int r.Span.q_latency);
      ("syscalls", Json.Int r.Span.q_syscalls);
      ("syscall_cost", Json.Int r.Span.q_syscall_cost);
      ("reloads", Json.Int r.Span.q_reloads);
      ("reload_cost", Json.Int r.Span.q_reload_cost);
      ("htab_misses", Json.Int r.Span.q_htab_misses);
      ("htab_cost", Json.Int r.Span.q_htab_cost);
      ("ctxsw", Json.Int r.Span.q_ctxsw);
      ("ctxsw_cost", Json.Int r.Span.q_ctxsw_cost);
      ("run_cost", Json.Int r.Span.q_run_cost) ]

let recorder_json ?(top = 5) sp =
  let t = Span.totals sp in
  let classes =
    Array.to_list
      (Array.mapi
         (fun i name ->
           match Span.class_hist sp i with
           | Some h ->
               (match hist_json h with
               | Json.Obj fields ->
                   Json.Obj (("class", Json.String name) :: fields)
               | j -> j)
           | None -> Json.Obj [ ("class", Json.String name) ])
         (Span.class_names sp))
  in
  let comp ~count ~cost =
    Json.Obj [ ("count", Json.Int count); ("cost", Json.Int cost) ]
  in
  Json.Obj
    [ ("config", Json.String (Span.label sp));
      ("requests", Json.Int (Span.requests sp));
      ("completed", Json.Int (Span.completed sp));
      ("overall", hist_json (Span.hist_latency sp));
      ("classes", Json.List classes);
      ("components",
       Json.Obj
         [ ("syscall",
            comp ~count:t.Span.t_syscalls ~cost:t.Span.t_syscall_cost);
           ("tlb_reload",
            comp ~count:t.Span.t_reloads ~cost:t.Span.t_reload_cost);
           ("htab_miss",
            comp ~count:t.Span.t_htab_misses ~cost:t.Span.t_htab_cost);
           ("ctxsw", comp ~count:t.Span.t_ctxsw ~cost:t.Span.t_ctxsw_cost);
           ("run", comp ~count:0 ~cost:t.Span.t_run_cost) ]);
      ("slowest",
       Json.List (List.map (request_json sp) (Span.slowest sp ~top))) ]

let interesting sp = Span.requests sp > 0

let to_json ?top recorders =
  Json.List (List.map (recorder_json ?top) recorders)

(* ----------------------------------------------------------- Perfetto *)

(* One Perfetto process per recorder (named by its config label), one
   thread per request, one complete ("X") slice from arrival to finish
   with the component breakdown in args — queued requests show as
   overlapping slices, which is exactly what a fat tail looks like. *)
let to_chrome ?(mhz = 100) ?(name = "mmu_sim spans") recorders =
  let mhzf = float_of_int mhz in
  let ts cycle = Json.Float (float_of_int cycle /. mhzf) in
  let events = ref [] in
  let emit e = events := e :: !events in
  List.iteri
    (fun pi sp ->
      let pid = pi + 1 in
      emit
        (Json.Obj
           [ ("ph", Json.String "M");
             ("pid", Json.Int pid);
             ("tid", Json.Int 0);
             ("name", Json.String "process_name");
             ("args",
              Json.Obj
                [ ("name",
                   Json.String (name ^ ": " ^ Span.label sp)) ]) ]);
      Span.iter sp (fun r ->
          if r.Span.q_finish >= 0 then begin
            let tid = r.Span.q_rid + 1 in
            emit
              (Json.Obj
                 [ ("ph", Json.String "M");
                   ("pid", Json.Int pid);
                   ("tid", Json.Int tid);
                   ("name", Json.String "thread_name");
                   ("args",
                    Json.Obj
                      [ ("name",
                         Json.String
                           (Printf.sprintf "req %d (%s)" r.Span.q_rid
                              (Span.class_name sp r.Span.q_cls))) ]) ]);
            emit
              (Json.Obj
                 [ ("name",
                    Json.String (Span.class_name sp r.Span.q_cls));
                   ("cat", Json.String "request");
                   ("ph", Json.String "X");
                   ("pid", Json.Int pid);
                   ("tid", Json.Int tid);
                   ("ts", ts r.Span.q_arrival);
                   ("dur",
                    Json.Float (float_of_int r.Span.q_latency /. mhzf));
                   ("args", request_json sp r) ])
          end))
    recorders;
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms") ]

(* -------------------------------------------------------- text tables *)

let slowest_table ?(top = 10) sp =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-5s %-18s %10s %10s %9s %9s %8s %9s\n" "rid" "class"
       "latency" "syscall" "reload" "htab" "ctxsw" "run");
  List.iter
    (fun (r : Span.request) ->
      Buffer.add_string b
        (Printf.sprintf "%-5d %-18s %10d %10d %9d %9d %8d %9d\n"
           r.Span.q_rid
           (Span.class_name sp r.Span.q_cls)
           r.Span.q_latency r.Span.q_syscall_cost r.Span.q_reload_cost
           r.Span.q_htab_cost r.Span.q_ctxsw_cost r.Span.q_run_cost))
    (Span.slowest sp ~top);
  Buffer.contents b

let summary sp =
  let h = Span.hist_latency sp in
  Printf.sprintf
    "%s: %d requests (%d completed), latency cycles p50=%d p99=%d p999=%d \
     max=%d\n"
    (Span.label sp) (Span.requests sp) (Span.completed sp)
    (Hist.percentile h 0.50) (Hist.percentile h 0.99)
    (Hist.percentile h 0.999) (Hist.max_value h)
