type t = {
  ptegs : int;
  base : Addr.pa;
  entries : Pte.t array;  (* pteg-major: entries.(pteg * 8 + slot) *)
  mutable cursor : int;   (* reclaim scan position *)
}

let slots_per_pteg = 8
let pte_bytes = 8

let create ?(base_pa = 0x00100000) ~n_ptes () =
  let ptegs = n_ptes / slots_per_pteg in
  if ptegs <= 0 || ptegs land (ptegs - 1) <> 0 then
    invalid_arg "Htab.create: n_ptes/8 must be a positive power of two";
  { ptegs;
    base = base_pa;
    entries = Array.init n_ptes (fun _ -> Pte.invalid ());
    cursor = 0 }

let n_ptegs t = t.ptegs
let capacity t = Array.length t.entries
let base_pa t = t.base

let pte_pa t ~pteg ~slot =
  t.base + (((pteg * slots_per_pteg) + slot) * pte_bytes)

let hash1 t ~vsid ~page_index =
  Pte.hash_primary ~n_ptegs:t.ptegs ~vsid ~page_index

let hash2 t ~primary = Pte.hash_secondary ~n_ptegs:t.ptegs ~primary

(* Search one PTEG for a matching entry, reporting each slot examined. *)
let search_pteg t ~pteg ~vsid ~page_index ~on_ref =
  let base = pteg * slots_per_pteg in
  let rec loop slot =
    if slot >= slots_per_pteg then None
    else begin
      on_ref (pte_pa t ~pteg ~slot);
      let pte = t.entries.(base + slot) in
      if Pte.matches pte ~vsid ~page_index then Some pte else loop (slot + 1)
    end
  in
  loop 0

let search t ~vsid ~page_index ~on_ref =
  let p = hash1 t ~vsid ~page_index in
  match search_pteg t ~pteg:p ~vsid ~page_index ~on_ref with
  | Some _ as hit -> hit
  | None ->
      let s = hash2 t ~primary:p in
      search_pteg t ~pteg:s ~vsid ~page_index ~on_ref

let search_counted t ~vsid ~page_index ~on_ref =
  let n = ref 0 in
  let on_ref pa =
    incr n;
    on_ref pa
  in
  let hit = search t ~vsid ~page_index ~on_ref in
  (hit, !n)

type replacement =
  | Arbitrary
  | Second_chance
  | Prefer_zombie of (int -> bool)

type insert_outcome =
  | Filled_empty
  | Replaced of Pte.t

(* Find a reusable slot in a PTEG: an entry with the same tag (update in
   place) or an invalid slot.  Reports references. *)
let find_free t ~pteg ~vsid ~page_index ~on_ref =
  let base = pteg * slots_per_pteg in
  let free = ref (-1) in
  let same = ref (-1) in
  for slot = 0 to slots_per_pteg - 1 do
    on_ref (pte_pa t ~pteg ~slot);
    let pte = t.entries.(base + slot) in
    if Pte.matches pte ~vsid ~page_index then same := slot
    else if (not pte.Pte.valid) && !free < 0 then free := slot
  done;
  if !same >= 0 then Some !same else if !free >= 0 then Some !free else None

let write_entry t ~pteg ~slot ~secondary ~vsid ~page_index ~rpn ~wimg
    ~protection =
  let e = t.entries.((pteg * slots_per_pteg) + slot) in
  e.Pte.valid <- true;
  e.Pte.vsid <- vsid land 0xFFFFFF;
  e.Pte.page_index <- page_index land 0xFFFF;
  e.Pte.rpn <- rpn land 0xFFFFF;
  e.Pte.secondary <- secondary;
  e.Pte.referenced <- true;
  e.Pte.changed <- false;
  e.Pte.wimg <- wimg;
  e.Pte.protection <- protection

(* Second-chance victim selection over the 16 candidate slots: an
   unreferenced entry if one exists, else strip every R bit and choose
   arbitrarily. *)
let pick_victim_second_chance t ~rng ~primary ~secondary ~on_ref =
  let candidate = ref None in
  let examine pteg =
    for slot = 0 to slots_per_pteg - 1 do
      on_ref (pte_pa t ~pteg ~slot);
      let pte = t.entries.((pteg * slots_per_pteg) + slot) in
      if (not pte.Pte.referenced) && !candidate = None then
        candidate := Some (pteg, slot)
    done
  in
  examine primary;
  (match !candidate with None -> examine secondary | Some _ -> ());
  match !candidate with
  | Some c -> c
  | None ->
      (* everyone was referenced: second chance for all *)
      List.iter
        (fun pteg ->
          for slot = 0 to slots_per_pteg - 1 do
            t.entries.((pteg * slots_per_pteg) + slot).Pte.referenced <- false
          done)
        [ primary; secondary ];
      let in_secondary = Rng.bool rng in
      ((if in_secondary then secondary else primary), Rng.int rng slots_per_pteg)

(* Zombie-aware victim selection: the first entry whose VSID the
   predicate marks dead; arbitrary if the 16 candidates are all live. *)
let pick_victim_zombie t ~rng ~is_zombie ~primary ~secondary ~on_ref =
  let candidate = ref None in
  let examine pteg =
    for slot = 0 to slots_per_pteg - 1 do
      if !candidate = None then begin
        on_ref (pte_pa t ~pteg ~slot);
        let pte = t.entries.((pteg * slots_per_pteg) + slot) in
        if is_zombie pte.Pte.vsid then candidate := Some (pteg, slot)
      end
    done
  in
  examine primary;
  (match !candidate with None -> examine secondary | Some _ -> ());
  match !candidate with
  | Some c -> c
  | None ->
      let in_secondary = Rng.bool rng in
      ((if in_secondary then secondary else primary), Rng.int rng slots_per_pteg)

let insert ?(policy = Arbitrary) t ~rng ~vsid ~page_index ~rpn ~wimg
    ~protection ~on_ref =
  let p = hash1 t ~vsid ~page_index in
  match find_free t ~pteg:p ~vsid ~page_index ~on_ref with
  | Some slot ->
      write_entry t ~pteg:p ~slot ~secondary:false ~vsid ~page_index ~rpn
        ~wimg ~protection;
      Filled_empty
  | None -> begin
      let s = hash2 t ~primary:p in
      match find_free t ~pteg:s ~vsid ~page_index ~on_ref with
      | Some slot ->
          write_entry t ~pteg:s ~slot ~secondary:true ~vsid ~page_index ~rpn
            ~wimg ~protection;
          Filled_empty
      | None ->
          (* Both PTEGs full: pick a victim without checking whether its
             VSID is live (the hardware view cannot tell). *)
          let pteg, slot =
            match policy with
            | Arbitrary ->
                let in_secondary = Rng.bool rng in
                ((if in_secondary then s else p), Rng.int rng slots_per_pteg)
            | Second_chance ->
                pick_victim_second_chance t ~rng ~primary:p ~secondary:s
                  ~on_ref
            | Prefer_zombie is_zombie ->
                pick_victim_zombie t ~rng ~is_zombie ~primary:p ~secondary:s
                  ~on_ref
          in
          let in_secondary = pteg = s in
          let victim = t.entries.((pteg * slots_per_pteg) + slot) in
          let victim_copy =
            Pte.make ~secondary:victim.Pte.secondary ~wimg:victim.Pte.wimg
              ~protection:victim.Pte.protection ~vsid:victim.Pte.vsid
              ~page_index:victim.Pte.page_index ~rpn:victim.Pte.rpn ()
          in
          on_ref (pte_pa t ~pteg ~slot);
          write_entry t ~pteg ~slot ~secondary:in_secondary ~vsid ~page_index
            ~rpn ~wimg ~protection;
          Replaced victim_copy
    end

let invalidate_page t ~vsid ~page_index ~on_ref =
  match search t ~vsid ~page_index ~on_ref with
  | Some pte ->
      pte.Pte.valid <- false;
      true
  | None -> false

let reclaim_zombies t ~is_zombie ~max_ptes ~on_ref =
  let total = capacity t in
  let budget = min max_ptes total in
  let reclaimed = ref 0 in
  for _ = 1 to budget do
    let i = t.cursor in
    t.cursor <- (t.cursor + 1) mod total;
    let pteg = i / slots_per_pteg and slot = i mod slots_per_pteg in
    on_ref (pte_pa t ~pteg ~slot);
    let pte = t.entries.(i) in
    if pte.Pte.valid && is_zombie pte.Pte.vsid then begin
      pte.Pte.valid <- false;
      incr reclaimed
    end
  done;
  !reclaimed

let occupancy t =
  Array.fold_left
    (fun n pte -> if pte.Pte.valid then n + 1 else n)
    0 t.entries

let count_valid t ~f =
  Array.fold_left
    (fun n pte -> if pte.Pte.valid && f pte then n + 1 else n)
    0 t.entries

let iter_valid t ~f =
  Array.iter (fun pte -> if pte.Pte.valid then f pte) t.entries

let clear t =
  Array.iter (fun pte -> pte.Pte.valid <- false) t.entries;
  t.cursor <- 0

let histogram t =
  let h = Array.make (slots_per_pteg + 1) 0 in
  for pteg = 0 to t.ptegs - 1 do
    let valid = ref 0 in
    for slot = 0 to slots_per_pteg - 1 do
      if t.entries.((pteg * slots_per_pteg) + slot).Pte.valid then incr valid
    done;
    h.(!valid) <- h.(!valid) + 1
  done;
  h
