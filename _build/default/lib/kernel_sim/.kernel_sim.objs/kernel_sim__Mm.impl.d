lib/kernel_sim/mm.ml: Addr Kparams List Pagetable Ppc Vfs Vsid_alloc
