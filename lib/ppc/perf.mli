(** Performance counters, in the style of the 604 hardware monitor.

    The paper instruments the system with the 604's hardware performance
    monitor (and software counters on the 603) to count "every TLB and
    cache miss, whether data or instruction".  This module is that monitor:
    a flat record of mutable counters charged by the MMU, caches, kernel
    and workloads.  [snapshot] and [diff] let an experiment isolate the
    events of one measured region. *)

type t = {
  mutable cycles : int;            (** total simulated CPU cycles *)
  mutable idle_cycles : int;       (** cycles spent in the idle task *)
  mutable instructions : int;      (** instructions executed (path lengths) *)
  mutable mem_refs : int;          (** memory references issued by table
                                       searches, walks and flushes *)
  (* TLB *)
  mutable itlb_lookups : int;
  mutable itlb_misses : int;
  mutable dtlb_lookups : int;
  mutable dtlb_misses : int;
  (* hashed page table *)
  mutable htab_searches : int;     (** table searches after a TLB miss *)
  mutable htab_hits : int;
  mutable htab_misses : int;
  mutable htab_reloads : int;      (** PTEs inserted into the htab *)
  mutable htab_evicts : int;       (** reloads that displaced a valid PTE *)
  mutable htab_evicts_live : int;  (** ... whose victim had a live VSID *)
  mutable htab_evicts_zombie : int;(** ... whose victim was a zombie *)
  (* caches *)
  mutable icache_accesses : int;
  mutable icache_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable dcache_bypasses : int;   (** cache-inhibited accesses *)
  mutable dcache_writebacks : int; (** dirty lines written back on eviction *)
  (* kernel events *)
  mutable page_faults : int;
  mutable flush_pte_searches : int;(** per-PTE precise flush searches *)
  mutable flush_context_resets : int; (** lazy whole-context VSID resets *)
  mutable context_switches : int;
  mutable syscalls : int;
  (* idle-task work *)
  mutable zombies_reclaimed : int;
  mutable pages_cleared_idle : int;
  mutable prezeroed_hits : int;    (** get_free_page served pre-zeroed *)
  mutable get_free_page_calls : int;
  (* SMP: shootdowns, IPIs, load balancing *)
  mutable ipis_sent : int;         (** IPIs sent by shootdown initiators *)
  mutable tlb_shootdowns : int;    (** remote shootdown rounds issued *)
  mutable shootdowns_deferred : int;(** remote invalidations elided because
                                       lazy flushing retired the VSID *)
  mutable remote_tlb_invalidates : int; (** invalidates run in remote
                                            IPI handlers *)
  mutable shootdown_batch_pages : int; (** pages invalidated by batched
                                           (one-IPI-per-range) shootdown
                                           rounds *)
  mutable work_steals : int;       (** runnable tasks migrated by idle CPUs *)
  mutable vsid_wraps : int;        (** 20-bit context-counter wraps (§7
                                       escape hatch firings) *)
}

val create : unit -> t
(** All counters zero. *)

val reset : t -> unit
(** Zero every counter in place. *)

val snapshot : t -> t
(** An immutable-by-convention copy of the current counts. *)

val diff : after:t -> before:t -> t
(** [diff ~after ~before] subtracts counter-wise; the events of the region
    between the two snapshots. *)

val fields : t -> (string * int) list
(** Every counter as [(name, value)] in declaration order — the
    reflection the timeline exporter and the exhaustiveness tests use.
    Must list exactly the record's fields. *)

val tlb_misses : t -> int
(** Instruction + data TLB misses. *)

val tlb_lookups : t -> int
(** Instruction + data TLB lookups. *)

val cache_misses : t -> int
(** Instruction + data cache misses. *)

val busy_cycles : t -> int
(** [cycles - idle_cycles]: cycles charged to real work. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump of all non-zero counters. *)
