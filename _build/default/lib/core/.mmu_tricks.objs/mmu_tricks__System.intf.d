lib/core/system.mli: Format Kernel_sim Machine Perf Ppc
