test/test_core.ml: Alcotest Array Kernel_sim List Machine Mmu Mmu_tricks Perf Ppc String
