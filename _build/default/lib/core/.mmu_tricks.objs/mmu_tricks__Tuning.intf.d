lib/core/tuning.mli: Experiments Ppc
