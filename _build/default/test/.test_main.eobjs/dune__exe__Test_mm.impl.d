test/test_mm.ml: Addr Alcotest Kernel_sim Option Ppc
