test/test_invariants.ml: Addr Alcotest Kernel_sim Machine Mmu Mmu_tricks Perf Ppc QCheck QCheck_alcotest
