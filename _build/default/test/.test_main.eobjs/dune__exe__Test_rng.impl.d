test/test_rng.ml: Alcotest Array Ppc Rng
