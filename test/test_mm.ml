(* Address spaces: vmas, mmap arena, context ids. *)
open Ppc
module Physmem = Kernel_sim.Physmem
module Mm = Kernel_sim.Mm
module V = Kernel_sim.Vsid_alloc

let mk () =
  let pm = Physmem.create ~ram_bytes:(8 * 1024 * 1024) ~reserved_bytes:4096 in
  let v = V.create ~source:V.Context_counter ~multiplier:897 in
  (Mm.create ~physmem:pm ~vsid_alloc:v ~pid:1 (), pm, v)

let vma ?(writable = true) start pages =
  { Mm.va_start = start; va_pages = pages; va_writable = writable;
    va_backing = Mm.Anonymous }

let test_vma_add_find () =
  let mm, _, _ = mk () in
  Mm.add_vma mm (vma 0x01800000 4);
  (match Mm.find_vma mm 0x01802FFF with
  | Some v -> Alcotest.(check int) "found" 0x01800000 v.Mm.va_start
  | None -> Alcotest.fail "expected vma");
  Alcotest.(check bool) "below misses" true
    (Mm.find_vma mm 0x017FFFFF = None);
  Alcotest.(check bool) "past end misses" true
    (Mm.find_vma mm 0x01804000 = None)

let test_vma_overlap_rejected () =
  let mm, _, _ = mk () in
  Mm.add_vma mm (vma 0x01800000 4);
  (match Mm.add_vma mm (vma 0x01802000 4) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overlap must be rejected");
  (* adjacent is fine *)
  Mm.add_vma mm (vma 0x01804000 4)

let test_vma_validation () =
  let mm, _, _ = mk () in
  (match Mm.add_vma mm (vma 0x01800001 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unaligned must be rejected");
  match Mm.add_vma mm (vma 0x01800000 0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "empty must be rejected"

let test_remove_vma () =
  let mm, _, _ = mk () in
  Mm.add_vma mm (vma 0x01800000 4);
  (match Mm.remove_vma mm ~start:0x01800000 with
  | Some v -> Alcotest.(check int) "removed" 4 v.Mm.va_pages
  | None -> Alcotest.fail "expected removal");
  Alcotest.(check bool) "gone" true (Mm.find_vma mm 0x01800000 = None);
  Alcotest.(check bool) "remove again none" true
    (Mm.remove_vma mm ~start:0x01800000 = None)

let test_mmap_arena () =
  let mm, _, _ = mk () in
  let a = Mm.alloc_mmap_range mm ~pages:4 in
  let b = Mm.alloc_mmap_range mm ~pages:8 in
  Alcotest.(check int) "arena base" Mm.user_mmap_base a;
  Alcotest.(check int) "bump allocated" (a + (4 * Addr.page_size)) b;
  Mm.reset_vmas mm;
  Alcotest.(check int) "reset rewinds arena" Mm.user_mmap_base
    (Mm.alloc_mmap_range mm ~pages:1)

let test_grow_vma () =
  let mm, _, _ = mk () in
  Mm.add_vma mm (vma 0x01800000 4);
  let grown = Mm.grow_vma mm ~start:0x01800000 ~extra_pages:2 in
  Alcotest.(check int) "six pages now" 6 grown.Mm.va_pages;
  Alcotest.(check bool) "new tail addressable" true
    (Mm.find_vma mm 0x01805FFF <> None);
  (* growing into a neighbour is refused *)
  Mm.add_vma mm (vma 0x01806000 2);
  (match Mm.grow_vma mm ~start:0x01800000 ~extra_pages:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlap growth must fail");
  match Mm.grow_vma mm ~start:0x09999000 ~extra_pages:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "growing a missing vma must fail"

let test_vsids () =
  let mm, _, v = mk () in
  let s0 = Mm.vsid_for_sr mm ~vsid_alloc:v 0 in
  let s1 = Mm.vsid_for_sr mm ~vsid_alloc:v 1 in
  Alcotest.(check bool) "distinct per segment" true (s0 <> s1);
  Alcotest.(check bool) "live" true (V.is_live v s0);
  let old_ctx = Mm.ctx mm in
  Mm.set_ctx mm (V.renew_context v ~old_ctx ~pid:(Mm.pid mm));
  Alcotest.(check bool) "old vsid now zombie" true (V.is_zombie v s0);
  Alcotest.(check bool) "new vsid differs" true
    (Mm.vsid_for_sr mm ~vsid_alloc:v 0 <> s0)

let test_destroy () =
  let pm = Physmem.create ~ram_bytes:(8 * 1024 * 1024) ~reserved_bytes:4096 in
  let v = V.create ~source:V.Context_counter ~multiplier:897 in
  let before = Physmem.free_frames pm in
  let mm = Mm.create ~physmem:pm ~vsid_alloc:v ~pid:1 () in
  let pt = Mm.pagetable mm in
  let frame = Option.get (Physmem.alloc pm) in
  Kernel_sim.Pagetable.map pt ~physmem:pm ~ea:0x01800000
    { Kernel_sim.Pagetable.rpn = frame; writable = true; inhibited = false;
      shared = false; cow = false };
  let freed = ref [] in
  Mm.destroy mm ~physmem:pm ~vsid_alloc:v ~free_frame:(fun rpn ->
      freed := rpn :: !freed;
      Physmem.free pm rpn);
  Alcotest.(check (list int)) "mapped frame released" [ frame ] !freed;
  Alcotest.(check int) "all frames back" before (Physmem.free_frames pm);
  Alcotest.(check int) "context retired" 0 (V.live_contexts v)

let suite =
  [ Alcotest.test_case "vma add/find" `Quick test_vma_add_find;
    Alcotest.test_case "overlap rejected" `Quick test_vma_overlap_rejected;
    Alcotest.test_case "vma validation" `Quick test_vma_validation;
    Alcotest.test_case "remove vma" `Quick test_remove_vma;
    Alcotest.test_case "mmap arena" `Quick test_mmap_arena;
    Alcotest.test_case "grow vma (brk)" `Quick test_grow_vma;
    Alcotest.test_case "per-segment vsids and renew" `Quick test_vsids;
    Alcotest.test_case "destroy releases everything" `Quick test_destroy ]
