lib/core/system.ml: Format Htab Kernel_sim Mmu Perf Ppc Tlb
