type id_source =
  | Pid_based
  | Context_counter

let scatter_multiplier = 897

(* The 24-bit VSID for segment [sr] of context [ctx] is
   [sr << 20 | (ctx * multiplier mod 2^20)]: the segment selects the top
   nibble and the munged context supplies the 20 low bits the PTEG hash
   folds on.  Multiplier 1 is the naive "derive VSIDs from the process
   identifier" scheme: processes with similar layouts then pile their
   PTEs into the same narrow band of PTEGs (the §5.2 hot spots); an odd
   non-power-of-two multiplier (897) scatters the bands across the whole
   table. *)
let kernel_base = 0xFF000

(* Context ids live in 20 bits: beyond [ctx_space] the munged vsid0
   repeats, so the counter must wrap and re-issue ids — skipping any
   whose VSIDs are still live (§7's escape hatch fires on each wrap to
   purge whatever the retired ids left behind in TLBs and the htab). *)
let ctx_space = 1 lsl 20

(* Test-only: restore the pre-fix counter behavior (no wrap, no
   live-id skipping) so the aliasing bug the wrap fix addresses can be
   planted and shown observable by the shadow oracle. *)
let test_unsafe_no_wrap = ref false

type t = {
  src : id_source;
  mult : int;
  live : (int, unit) Hashtbl.t;      (* keyed by each issued VSID *)
  live_ctx : (int, unit) Hashtbl.t;  (* keyed by live context id *)
  by_pid : (int, int) Hashtbl.t;     (* Pid_based: pid -> issued ctx *)
  owner : (int, int) Hashtbl.t;      (* Pid_based: ctx -> owning pid *)
  mutable next : int;
  mutable wraps : int;
  mutable on_wrap : unit -> unit;
}

let create ~source ~multiplier =
  if multiplier <= 0 then
    invalid_arg "Vsid_alloc.create: multiplier must be positive";
  { src = source; mult = multiplier;
    live = Hashtbl.create 64; live_ctx = Hashtbl.create 64;
    by_pid = Hashtbl.create 64; owner = Hashtbl.create 64;
    next = 1; wraps = 0; on_wrap = (fun () -> ()) }

let multiplier t = t.mult
let source t = t.src

let vsid0_of t ctx = ctx * t.mult land 0xFFFFF

let vsid_of t ctx sr = ((sr land 0xF) lsl 20) lor vsid0_of t ctx

let kernel_vsid ~sr = (kernel_base lsl 4) lor (sr land 0xF)

let is_kernel vsid = vsid lsr 4 = kernel_base

(* A context collides with the kernel VSIDs when one of its segments
   lands in the kernel block [0xFF0000, 0xFF0010) — i.e. segment 15 with
   a munged context in [0xF0000, 0xF0010); both id sources skip such
   ids. *)
let collides_with_kernel t ctx =
  let v0 = vsid0_of t ctx in
  v0 >= 0xF0000 && v0 < 0xF0010

let ctx_is_live t ctx = Hashtbl.mem t.live_ctx ctx

(* Would issuing [ctx] alias a VSID some other live context already
   owns?  With an odd multiplier the munge is a bijection mod 2^20, so
   this only triggers once the counter wraps; even multipliers (the
   mult-16 ablation) can alias earlier, and the same check covers
   them. *)
let vsid_taken t ctx = Hashtbl.mem t.live (vsid_of t ctx 0)

let set_on_wrap t f = t.on_wrap <- f
let wraps t = t.wraps

let mark_live t ctx =
  if not (ctx_is_live t ctx) then begin
    for sr = 0 to 15 do
      Hashtbl.replace t.live (vsid_of t ctx sr) ()
    done;
    Hashtbl.replace t.live_ctx ctx ()
  end

let new_context t ~pid =
  let ctx =
    match t.src with
    | Pid_based ->
        (* The id is the pid — unless its munge collides with the kernel
           VSID block or (under an even multiplier) aliases another live
           context, in which case linear-probe to the nearest safe id.
           A pid's id is stable: re-issuing returns the same ctx it got
           last time, as long as no other pid has claimed it since. *)
        let start = pid land (ctx_space - 1) in
        let cached =
          match Hashtbl.find_opt t.by_pid start with
          | Some c when Hashtbl.find_opt t.owner c = Some start -> Some c
          | Some _ | None -> None
        in
        let ctx =
          match cached with
          | Some c -> c
          | None ->
              let rec probe c =
                let c = c land (ctx_space - 1) in
                if
                  collides_with_kernel t c || ctx_is_live t c
                  || vsid_taken t c
                then probe (c + 1)
                else c
              in
              probe start
        in
        Hashtbl.replace t.by_pid start ctx;
        Hashtbl.replace t.owner ctx start;
        ctx
    | Context_counter when !test_unsafe_no_wrap ->
        (* Pre-fix behavior: monotonic, never wraps, never checks
           liveness — ctx and ctx + 2^20 silently share a vsid0. *)
        let rec pick () =
          let c = t.next in
          t.next <- t.next + 1;
          if collides_with_kernel t c then pick () else c
        in
        pick ()
    | Context_counter ->
        let rec pick tries =
          if tries > ctx_space then
            invalid_arg "Vsid_alloc.new_context: context space exhausted";
          let c = t.next in
          t.next <- t.next + 1;
          if t.next >= ctx_space then begin
            (* 20-bit wrap: restart after 0 (ctx 0 is never issued) and
               fire the escape hatch — the caller flushes every TLB and
               purges zombie PTEs so any non-live id is safe to reuse. *)
            t.next <- 1;
            t.wraps <- t.wraps + 1;
            t.on_wrap ()
          end;
          if collides_with_kernel t c || ctx_is_live t c || vsid_taken t c
          then pick (tries + 1)
          else c
        in
        pick 0
  in
  mark_live t ctx;
  ctx

let retire_context t ctx =
  if ctx_is_live t ctx then begin
    for sr = 0 to 15 do
      Hashtbl.remove t.live (vsid_of t ctx sr)
    done;
    Hashtbl.remove t.live_ctx ctx
  end
  else
    (* Pre-fix aliased ids (test-only path) still drop their VSIDs. *)
    for sr = 0 to 15 do
      Hashtbl.remove t.live (vsid_of t ctx sr)
    done

let renew_context t ~old_ctx ~pid =
  match t.src with
  | Pid_based ->
      invalid_arg "Vsid_alloc.renew_context: Pid_based ids cannot be renewed"
  | Context_counter ->
      retire_context t old_ctx;
      new_context t ~pid

let vsid t ~ctx ~sr = vsid_of t ctx sr

let is_live t vsid = is_kernel vsid || Hashtbl.mem t.live vsid

let is_zombie t vsid = not (is_live t vsid)

let live_contexts t =
  let n = Hashtbl.length t.live_ctx in
  (* Post-fix invariant: no two live contexts share a vsid0, so the VSID
     table holds exactly 16 entries per context.  The pre-fix
     [Hashtbl.length t.live / 16] silently under-counted on alias. *)
  assert (Hashtbl.length t.live = 16 * n);
  n

let unsafe_set_next t n =
  if n < 1 then invalid_arg "Vsid_alloc.unsafe_set_next";
  t.next <- n

(* Long-horizon aging: advance the counter as if [contexts] short-lived
   address spaces had come and gone before the measured run, without
   simulating them — O(1), no charges, no liveness changes.  Clamped to
   just below the wrap point so the wrap itself (and its escape hatch)
   still fires on a real allocation, exactly as it would have. *)
let age t ~contexts =
  if contexts < 0 then invalid_arg "Vsid_alloc.age";
  match t.src with
  | Pid_based -> invalid_arg "Vsid_alloc.age: Context_counter only"
  | Context_counter -> t.next <- min (ctx_space - 1) (t.next + contexts)
