(* The cooperative scheduler and the parallel-make workload. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Sched = Kernel_sim.Sched
module Mm = Kernel_sim.Mm
module Pm = Workloads.Parmake

let boot () =
  Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:7 ()

let data_base = Mm.user_text_base + (16 lsl Addr.page_shift)

let test_round_robin_interleaves () =
  let k = boot () in
  let sched = Sched.create k in
  let order = ref [] in
  let counted name limit =
    let n = ref 0 in
    fun k ->
      order := name :: !order;
      Kernel.user_run k ~instrs:100;
      incr n;
      if !n >= limit then begin
        Kernel.sys_exit k;
        Sched.Done
      end
      else Sched.Yield
  in
  Sched.add sched (Kernel.spawn k ()) (counted "a" 3);
  Sched.add sched (Kernel.spawn k ()) (counted "b" 3);
  Sched.run sched;
  Alcotest.(check (list string)) "strict alternation"
    [ "a"; "b"; "a"; "b"; "a"; "b" ]
    (List.rev !order);
  Alcotest.(check int) "all done" 0 (Sched.live sched)

let test_sleep_wakes_on_time () =
  let k = boot () in
  let sched = Sched.create k in
  let woke_at = ref 0 in
  let slept_at = ref 0 in
  let state = ref `Start in
  Sched.add sched (Kernel.spawn k ()) (fun k ->
      match !state with
      | `Start ->
          slept_at := Kernel.cycles k;
          state := `Slept;
          Sched.Sleep 50_000
      | `Slept ->
          woke_at := Kernel.cycles k;
          Kernel.sys_exit k;
          Sched.Done);
  Sched.run sched;
  Alcotest.(check bool) "woke after the deadline" true
    (!woke_at - !slept_at >= 50_000);
  Alcotest.(check bool) "did not oversleep wildly" true
    (!woke_at - !slept_at < 80_000)

let test_sleep_runs_idle_task () =
  let k = boot () in
  let sched = Sched.create k in
  let state = ref `Start in
  Sched.add sched (Kernel.spawn k ()) (fun k ->
      match !state with
      | `Start ->
          state := `Slept;
          Sched.Sleep 40_000
      | `Slept ->
          Kernel.sys_exit k;
          Sched.Done);
  let idle0 = (Kernel.perf k).Perf.idle_cycles in
  Sched.run sched;
  Alcotest.(check bool) "sleeping alone means idle time" true
    ((Kernel.perf k).Perf.idle_cycles - idle0 >= 40_000)

let test_sleep_overlaps_with_runnable () =
  let k = boot () in
  let sched = Sched.create k in
  let sleeper_state = ref `Start in
  Sched.add sched (Kernel.spawn k ()) (fun k ->
      match !sleeper_state with
      | `Start ->
          sleeper_state := `Slept;
          Sched.Sleep 30_000
      | `Slept ->
          Kernel.sys_exit k;
          Sched.Done);
  let rounds = ref 0 in
  Sched.add sched (Kernel.spawn k ()) (fun k ->
      Kernel.user_run k ~instrs:2_000;
      Kernel.touch k Mmu.Store data_base;
      incr rounds;
      if !rounds >= 40 then begin
        Kernel.sys_exit k;
        Sched.Done
      end
      else Sched.Yield);
  let idle0 = (Kernel.perf k).Perf.idle_cycles in
  Sched.run sched;
  (* the worker filled the sleeper's gap: little to no idle time *)
  Alcotest.(check bool) "compute hides the sleep" true
    ((Kernel.perf k).Perf.idle_cycles - idle0 < 10_000)

let test_no_redundant_switches () =
  (* a single runnable process must not pay a context switch per slice *)
  let k = boot () in
  let sched = Sched.create k in
  let n = ref 0 in
  Sched.add sched (Kernel.spawn k ()) (fun k ->
      Kernel.user_run k ~instrs:100;
      incr n;
      if !n >= 20 then begin
        Kernel.sys_exit k;
        Sched.Done
      end
      else Sched.Yield);
  let sw0 = (Kernel.perf k).Perf.context_switches in
  Sched.run sched;
  Alcotest.(check bool) "one switch for twenty slices" true
    ((Kernel.perf k).Perf.context_switches - sw0 <= 2)

let test_timer_ticks_fire () =
  let k = boot () in
  let sched = Sched.create k in
  let state = ref `Start in
  Sched.add sched (Kernel.spawn k ()) (fun k ->
      match !state with
      | `Start ->
          state := `Slept;
          (* sleep long enough for several timer periods *)
          Sched.Sleep (3 * Kernel_sim.Kparams.timer_tick_cycles)
      | `Slept ->
          Kernel.sys_exit k;
          Sched.Done);
  let sys0 = (Kernel.perf k).Perf.instructions in
  Sched.run sched;
  (* each tick charges at least tick_fast instructions *)
  Alcotest.(check bool) "ticks charged work" true
    ((Kernel.perf k).Perf.instructions - sys0
    >= 3 * Kernel_sim.Kparams.tick_fast)

let test_timer_tick_direct () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let c0 = Kernel.cycles k in
  Kernel.timer_tick k;
  Alcotest.(check bool) "tick costs cycles" true (Kernel.cycles k > c0);
  (* slow path costs more *)
  let k2 =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.baseline ~seed:7 ()
  in
  let t2 = Kernel.spawn k2 () in
  Kernel.switch_to k2 t2;
  let c2 = Kernel.cycles k2 in
  Kernel.timer_tick k2;
  Alcotest.(check bool) "slow tick costs more" true
    (Kernel.cycles k2 - c2 > Kernel.cycles k - c0)

let small_pm =
  { Pm.jobs = 3;
    jobserver = 2;
    text_pages = 16;
    data_pages = 32;
    source_pages = 8;
    compute_rounds = 3 }

let test_parmake_completes_and_cleans_up () =
  let k = boot () in
  Pm.run k ~params:small_pm;
  Alcotest.(check int) "all jobs exited" 0 (List.length (Kernel.tasks k));
  Alcotest.(check bool) "file reads happened" true
    ((Kernel.perf k).Perf.syscalls > 0)

let test_parmake_overlap_beats_serial () =
  let wall jobserver =
    (Pm.measure ~machine:Machine.ppc604_185 ~policy:Policy.optimized
       ~params:{ small_pm with Pm.jobserver; jobs = 4 } ())
      .Pm.wall_us
  in
  let j1 = wall 1 and j2 = wall 2 in
  Alcotest.(check bool)
    (Printf.sprintf "-j2 (%.0fus) beats -j1 (%.0fus)" j2 j1)
    true (j2 < j1)

let test_parmake_idle_shrinks_with_width () =
  let idle jobserver =
    (Pm.measure ~machine:Machine.ppc604_185 ~policy:Policy.optimized
       ~params:{ small_pm with Pm.jobserver; jobs = 4 } ())
      .Pm.idle_fraction
  in
  Alcotest.(check bool) "overlap cuts idle share" true (idle 4 <= idle 1)

let suite =
  [ Alcotest.test_case "round robin interleaves" `Quick
      test_round_robin_interleaves;
    Alcotest.test_case "sleep wakes on time" `Quick test_sleep_wakes_on_time;
    Alcotest.test_case "lone sleeper runs idle task" `Quick
      test_sleep_runs_idle_task;
    Alcotest.test_case "sleep overlaps with runnable work" `Quick
      test_sleep_overlaps_with_runnable;
    Alcotest.test_case "no redundant switches" `Quick
      test_no_redundant_switches;
    Alcotest.test_case "timer ticks fire" `Quick test_timer_ticks_fire;
    Alcotest.test_case "timer tick path costs" `Quick test_timer_tick_direct;
    Alcotest.test_case "parmake completes and cleans up" `Quick
      test_parmake_completes_and_cleans_up;
    Alcotest.test_case "parmake overlap beats serial" `Slow
      test_parmake_overlap_beats_serial;
    Alcotest.test_case "parmake idle shrinks with width" `Slow
      test_parmake_idle_shrinks_with_width ]
