lib/ppc/pte.mli: Addr Format
