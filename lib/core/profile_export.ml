(* Exporters for Ppc.Profile: folded stacks (flamegraph-compatible),
   the attribution JSON embedded in results documents, and a text
   heatmap.  Pure functions of finished profilers — no charging paths
   live here.  A run can boot several kernels (E1 compares policies);
   miss accounts and hot pages merge across them, while the TLB census
   and htab occupancy map stay per-kernel (they describe one machine's
   structures), listed in boot order. *)

open Ppc

let kind_idx = function
  | Profile.Itlb -> 0
  | Profile.Dtlb -> 1
  | Profile.Htab_miss -> 2

(* --- merging ---------------------------------------------------------- *)

(* (pid, seg, kind index) -> (count, cost), deterministic order *)
let merged_attribution profiles =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun pr ->
      List.iter
        (fun r ->
          let k = (r.Profile.r_pid, r.Profile.r_seg, kind_idx r.Profile.r_kind) in
          let count, cost =
            match Hashtbl.find_opt tbl k with
            | Some (n, c) -> (n, c)
            | None -> (0, 0)
          in
          Hashtbl.replace tbl k
            (count + r.Profile.r_count, cost + r.Profile.r_cost))
        (Profile.attribution pr))
    profiles;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let merged_hot_pages profiles kind ~top =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun pr ->
      List.iter
        (fun (page, count, cost) ->
          let n, c =
            match Hashtbl.find_opt tbl page with
            | Some (n, c) -> (n, c)
            | None -> (0, 0)
          in
          Hashtbl.replace tbl page (n + count, c + cost))
        (* max_int: merge everything, cut after merging *)
        (Profile.hot_pages pr kind ~top:max_int))
    profiles;
  let rows = Hashtbl.fold (fun p (n, c) acc -> (p, n, c) :: acc) tbl [] in
  let sorted =
    List.sort
      (fun (pa, _, ca) (pb, _, cb) ->
        match compare cb ca with 0 -> compare pa pb | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < top) sorted

(* --- folded stacks ---------------------------------------------------- *)

let kind_frame = function
  | 0 -> "itlb"
  | 1 -> "dtlb"
  | _ -> "htab"

(* One line per account, `pid_N;seg_0xS;kind cost` — feed to
   flamegraph.pl / inferno / speedscope as collapsed stacks, with
   attributed reload cycles as the sample weight. *)
let folded profiles =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ((pid, seg, kind), (_count, cost)) ->
      Buffer.add_string buf
        (Printf.sprintf "pid_%d;seg_0x%X;%s %d\n" pid seg (kind_frame kind)
           cost))
    (merged_attribution profiles);
  Buffer.contents buf

(* --- JSON ------------------------------------------------------------- *)

let hex n = Printf.sprintf "0x%08x" n

let pct ~part ~whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let htab_json pr =
  (* periodic samples plus a final end-of-run snapshot; [None] when the
     machine has no htab *)
  match Profile.snapshot_htab pr with
  | None -> None
  | Some final ->
      let sample_row (s : Profile.htab_sample) =
        Json.List
          [ Json.Int s.Profile.h_cycle;
            Json.Int s.Profile.h_valid;
            Json.Int s.Profile.h_zombie ]
      in
      let samples = Profile.samples pr in
      let peak =
        List.fold_left
          (fun m (s : Profile.htab_sample) -> max m s.Profile.h_valid)
          final.Profile.h_valid samples
      in
      Some
        (Json.Obj
           [ ("capacity", Json.Int final.Profile.h_capacity);
             ("final_valid", Json.Int final.Profile.h_valid);
             ("final_occupancy_pct",
              Json.Float
                (pct ~part:final.Profile.h_valid
                   ~whole:final.Profile.h_capacity));
             ("peak_occupancy_pct",
              Json.Float (pct ~part:peak ~whole:final.Profile.h_capacity));
             ("final_zombie_pct",
              Json.Float
                (pct ~part:final.Profile.h_zombie
                   ~whole:(max 1 final.Profile.h_valid)));
             ("chain_histogram",
              Json.List
                (Array.to_list
                   (Array.map (fun n -> Json.Int n) final.Profile.h_chains)));
             ("sample_fields",
              Json.List
                [ Json.String "cycle"; Json.String "valid";
                  Json.String "zombie" ]);
             ("samples", Json.List (List.map sample_row samples)) ])

let census_json pr =
  let c = Profile.census pr in
  if c.Profile.n_samples = 0 then None
  else
    Some
      (Json.Obj
         [ ("samples", Json.Int c.Profile.n_samples);
           ("avg_kernel_share_pct", Json.Float c.Profile.avg_share_pct);
           ("kernel_high_water", Json.Int c.Profile.kernel_high_water);
           ("kernel_now", Json.Int c.Profile.kernel_now);
           ("occupied_now", Json.Int c.Profile.occupied_now);
           ("slot_capacity", Json.Int c.Profile.slot_capacity) ])

let to_json ?(top = 20) profiles =
  let attribution =
    Json.List
      (List.map
         (fun ((pid, seg, kind), (count, cost)) ->
           Json.Obj
             [ ("pid", Json.Int pid);
               ("segment", Json.Int seg);
               ("kind", Json.String (kind_frame kind));
               ("count", Json.Int count);
               ("cost", Json.Int cost) ])
         (merged_attribution profiles))
  in
  let hot kind =
    Json.List
      (List.map
         (fun (page, count, cost) ->
           Json.Obj
             [ ("page", Json.String (hex page));
               ("count", Json.Int count);
               ("cost", Json.Int cost) ])
         (merged_hot_pages profiles kind ~top))
  in
  Json.Obj
    [ ("attribution", attribution);
      ("hot_pages",
       Json.Obj
         [ ("itlb", hot Profile.Itlb);
           ("dtlb", hot Profile.Dtlb);
           ("htab", hot Profile.Htab_miss) ]);
      ("tlb_census", Json.List (List.filter_map census_json profiles));
      ("htab", Json.List (List.filter_map htab_json profiles)) ]

(* --- text heatmap ----------------------------------------------------- *)

(* cost share of the hottest cell, rendered on a 9-step ramp *)
let ramp = [| '.'; ':'; '-'; '='; '+'; 'x'; '*'; '%'; '@' |]

let shade ~cost ~hottest =
  if cost <= 0 then ' '
  else begin
    let i = cost * Array.length ramp / max 1 hottest in
    ramp.(min (Array.length ramp - 1) i)
  end

let summary ?(top = 10) profiles =
  let buf = Buffer.create 2048 in
  let rows = merged_attribution profiles in
  let total_cost =
    List.fold_left (fun a (_, (_, cost)) -> a + cost) 0 rows
  in
  let total_misses =
    List.fold_left (fun a (_, (count, _)) -> a + count) 0 rows
  in
  Buffer.add_string buf
    (Printf.sprintf
       "profile: %d misses attributed, %d reload cycles across %d account(s)\n"
       total_misses total_cost (List.length rows));
  (* heatmap: one row per PID, one column per segment-register index,
     cell shade = that (pid, seg)'s share of all attributed cost *)
  let pids = List.sort_uniq compare (List.map (fun ((p, _, _), _) -> p) rows) in
  if pids <> [] then begin
    let cell_cost pid seg =
      List.fold_left
        (fun a ((p, s, _), (_, cost)) ->
          if p = pid && s = seg then a + cost else a)
        0 rows
    in
    let hottest =
      List.fold_left
        (fun m pid ->
          List.fold_left (fun m seg -> max m (cell_cost pid seg)) m
            (List.init 16 Fun.id))
        1 pids
    in
    Buffer.add_string buf
      "attribution heatmap (reload cycles; rows = PIDs, cols = segments):\n";
    Buffer.add_string buf
      ("         " ^ String.concat " "
         (List.init 16 (fun s -> Printf.sprintf "%X" s)) ^ "\n");
    List.iter
      (fun pid ->
        Buffer.add_string buf (Printf.sprintf "  pid %-4d " pid);
        for seg = 0 to 15 do
          Buffer.add_char buf (shade ~cost:(cell_cost pid seg) ~hottest);
          if seg < 15 then Buffer.add_char buf ' '
        done;
        Buffer.add_char buf '\n')
      pids
  end;
  (* per-kind hot pages *)
  List.iter
    (fun kind ->
      match merged_hot_pages profiles kind ~top with
      | [] -> ()
      | pages ->
          Buffer.add_string buf
            (Printf.sprintf "top %s pages (misses, reload cycles):\n"
               (Profile.kind_name kind));
          List.iter
            (fun (page, count, cost) ->
              Buffer.add_string buf
                (Printf.sprintf "  %s %8d %10d\n" (hex page) count cost))
            pages)
    Profile.all_kinds;
  (* per-kernel TLB census *)
  List.iteri
    (fun i pr ->
      let c = Profile.census pr in
      if c.Profile.n_samples > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "tlb census [kernel %d]: avg kernel share %.1f%% of occupied \
              slots, high water %d of %d slots (%d censuses)\n"
             i c.Profile.avg_share_pct c.Profile.kernel_high_water
             c.Profile.slot_capacity c.Profile.n_samples))
    profiles;
  (* per-kernel htab occupancy trajectory *)
  List.iteri
    (fun i pr ->
      match Profile.snapshot_htab pr with
      | None -> ()
      | Some final ->
          let occ (s : Profile.htab_sample) =
            pct ~part:s.Profile.h_valid ~whole:s.Profile.h_capacity
          in
          let traj =
            match Profile.samples pr with
            | [] -> Printf.sprintf "%.0f%%" (occ final)
            | samples ->
                (* at most a dozen points, evenly thinned *)
                let n = List.length samples in
                let step = max 1 ((n + 11) / 12) in
                let thinned =
                  List.filteri (fun i _ -> i mod step = 0) samples
                in
                String.concat " -> "
                  (List.map (fun s -> Printf.sprintf "%.0f%%" (occ s)) thinned
                  @ [ Printf.sprintf "%.0f%%" (occ final) ])
          in
          Buffer.add_string buf
            (Printf.sprintf
               "htab [kernel %d]: occupancy %s; %d/%d valid at end (%.1f%% \
                zombie); PTEG chains: %s\n"
               i traj final.Profile.h_valid final.Profile.h_capacity
               (pct ~part:final.Profile.h_zombie
                  ~whole:(max 1 final.Profile.h_valid))
               (String.concat " "
                  (Array.to_list
                     (Array.mapi
                        (fun len n -> Printf.sprintf "%d:%d" len n)
                        final.Profile.h_chains)))))
    profiles;
  Buffer.contents buf
