type reload_style =
  | Hardware_search
  | Software_trap

type tlb_geometry = {
  tlb_sets : int;
  tlb_ways : int;
}

type cache_geometry = {
  cache_bytes : int;
  cache_ways : int;
}

type t = {
  name : string;
  mhz : int;
  reload : reload_style;
  itlb : tlb_geometry;
  dtlb : tlb_geometry;
  icache : cache_geometry;
  dcache : cache_geometry;
  mem_latency : int;
  ram_bytes : int;
  htab_ptes : int;
}

let tlb_entries t =
  (t.itlb.tlb_sets * t.itlb.tlb_ways) + (t.dtlb.tlb_sets * t.dtlb.tlb_ways)

let n_ptegs t = t.htab_ptes / 8

let mb n = n * 1024 * 1024
let kb n = n * 1024

(* 603: 64-entry 2-way I and D TLBs (128 total), 16K 4-way caches. *)
let tlb_603 = { tlb_sets = 32; tlb_ways = 2 }
let cache_603 = { cache_bytes = kb 16; cache_ways = 4 }

(* 604: 128-entry 2-way I and D TLBs (256 total), 32K 4-way caches. *)
let tlb_604 = { tlb_sets = 64; tlb_ways = 2 }
let cache_604 = { cache_bytes = kb 32; cache_ways = 4 }

let base_603 =
  { name = "603";
    mhz = 133;
    reload = Software_trap;
    itlb = tlb_603;
    dtlb = tlb_603;
    icache = cache_603;
    dcache = cache_603;
    mem_latency = 30;
    ram_bytes = mb 32;
    htab_ptes = 16384 }

let base_604 =
  { base_603 with
    name = "604";
    reload = Hardware_search;
    itlb = tlb_604;
    dtlb = tlb_604;
    icache = cache_604;
    dcache = cache_604 }

let ppc603_133 = { base_603 with name = "603 133MHz"; mhz = 133 }

(* Faster core on the same slow memory system: higher relative latency. *)
let ppc603_180 = { base_603 with name = "603 180MHz"; mhz = 180; mem_latency = 40 }

let ppc604_133 = { base_604 with name = "604 133MHz"; mhz = 133; mem_latency = 30 }
let ppc604_185 = { base_604 with name = "604 185MHz"; mhz = 185; mem_latency = 32 }

(* "significantly faster main memory and a better board design" *)
let ppc604_200 = { base_604 with name = "604 200MHz"; mhz = 200; mem_latency = 26 }

(* 601: hardware-reload like the 604; its unified 32K 8-way cache is
   approximated as a 16K+16K split.  750: hardware-reload, 32K+32K 8-way,
   fast core on slow memory. *)
let ppc601_80 =
  { base_604 with
    name = "601 80MHz";
    mhz = 80;
    itlb = tlb_604;
    dtlb = tlb_604;
    icache = { cache_bytes = kb 16; cache_ways = 8 };
    dcache = { cache_bytes = kb 16; cache_ways = 8 };
    mem_latency = 18 }

let ppc750_233 =
  { base_604 with
    name = "750 233MHz";
    mhz = 233;
    itlb = { tlb_sets = 64; tlb_ways = 2 };
    dtlb = { tlb_sets = 64; tlb_ways = 2 };
    icache = { cache_bytes = kb 32; cache_ways = 8 };
    dcache = { cache_bytes = kb 32; cache_ways = 8 };
    mem_latency = 50 }

let all =
  [ ppc601_80; ppc603_133; ppc603_180; ppc604_133; ppc604_185; ppc604_200;
    ppc750_233 ]

(* "603 133MHz" -> "603-133": lowercase, spaces to dashes, the
   redundant frequency unit dropped. *)
let slug t =
  let s = String.lowercase_ascii t.name in
  let s =
    if String.length s > 3 && String.sub s (String.length s - 3) 3 = "mhz"
    then String.sub s 0 (String.length s - 3)
    else s
  in
  String.map (fun c -> if c = ' ' then '-' else c) (String.trim s)

let find_by_slug s = List.find_opt (fun m -> slug m = s) all

let pp fmt t =
  let style =
    match t.reload with
    | Hardware_search -> "hw-reload"
    | Software_trap -> "sw-reload"
  in
  Format.fprintf fmt "%s (%d MHz, %s, %d TLB entries, %dK+%dK L1)" t.name
    t.mhz style (tlb_entries t)
    (t.icache.cache_bytes / 1024)
    (t.dcache.cache_bytes / 1024)
