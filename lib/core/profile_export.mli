(** Exporters for {!Ppc.Profile}: folded stacks, attribution JSON, and
    a text heatmap.

    Pure functions of finished profilers.  A run can boot several
    kernels (E1 boots one per policy), so every entry point takes a
    list, in boot order: miss accounts and hot pages are merged across
    kernels, while the TLB census and htab occupancy map — descriptions
    of one machine's structures — stay per-kernel. *)

val folded : Ppc.Profile.t list -> string
(** Flamegraph-collapsed stacks, one line per (PID, segment, kind)
    account: [pid_3;seg_0x2;dtlb 412170].  The weight is attributed
    reload cycles; feed to flamegraph.pl, inferno or speedscope.
    Deterministic order (by pid, segment, kind). *)

val to_json : ?top:int -> Ppc.Profile.t list -> Json.t
(** The attribution document embedded per experiment in results JSON
    (under [observability.profile]): merged accounts, the [top]
    (default 20) hot pages per kind, one TLB census object per kernel
    that recorded one, and one htab occupancy map (periodic samples +
    end-of-run snapshot with chain histogram and zombie fraction) per
    kernel with an htab. *)

val summary : ?top:int -> Ppc.Profile.t list -> string
(** Human-readable rendering: a PID × segment cost heatmap, the [top]
    (default 10) hot pages per kind, and one census / occupancy
    trajectory line per kernel. *)
