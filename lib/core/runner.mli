(** Parallel experiment execution.

    Every experiment is deterministic in its seed and boots its own
    isolated kernel, so a run of the suite is embarrassingly parallel:
    fork N workers, deal the experiments round-robin, marshal each
    finished {!Experiments.table} back over a pipe, and merge in
    registry order.  The merged output is byte-identical to a serial
    run — parallelism changes wall-clock only, never results.

    [jobs = 1] (the default) runs in-process with no fork, so the
    runner is also the one code path the CLI and bench harness use for
    serial runs. *)

type outcome =
  | Done of Experiments.table
  | Failed of string
      (** the experiment raised; the exception text crossed the pipe *)

val run :
  ?jobs:int ->
  ?seed:int ->
  (string * (?seed:int -> unit -> Experiments.table)) list ->
  (string * outcome) list
(** [run ~jobs ~seed selected] executes every [(id, fn)] pair and
    returns [(id, outcome)] in the input's order.  [jobs] is clamped to
    [1 .. length selected].  An experiment that raises becomes [Failed]
    (in-process or in a worker) rather than aborting the batch; a worker
    that dies without delivering marks its remaining experiments
    [Failed]. *)

val default_jobs : unit -> int
(** Number of online cores, probed via [getconf _NPROCESSORS_ONLN] and
    falling back to [nproc] when getconf is missing or unhelpful;
    clamped to [min_jobs .. max_jobs]; [min_jobs] when neither probe
    works. *)

val min_jobs : int
val max_jobs : int

val clamp_jobs : int -> int
(** Clamp a requested job count to [min_jobs .. max_jobs] — the single
    authority on worker-count bounds ([run] additionally never forks
    more workers than it has experiments). *)
