open Ppc

exception Segfault of Addr.ea
exception Kernel_fault of Addr.ea

(* internal: a COW break serviced the fault; retry the access *)
exception Cow_broken

type t = {
  k_machine : Machine.t;
  k_policy : Policy.t;
  k_perf : Perf.t;
  k_memsys : Memsys.t;
  k_mmu : Mmu.t;
  k_physmem : Physmem.t;
  k_vsid : Vsid_alloc.t;
  k_pagepool : Pagepool.t;
  k_vfs : Vfs.t;
  k_rng : Rng.t;
  kernel_pt : Pagetable.t;
  mutable k_tasks : Task.t list;
  (* SMP: one current task per CPU; [k_cpu] is the CPU whose point of
     view the kernel paths execute from ([set_active_cpu] moves it and
     swaps the MMU onto that CPU's registers/TLBs).  At [cpus = 1] this
     is exactly the old single [k_current]. *)
  k_cpus : int;
  mutable k_cpu : int;
  k_currents : Task.t option array;
  mutable next_pid : int;
  mutable next_pipe : int;
  mutable idle_count : int;
  mutable next_tick : int;
  (* frames shared copy-on-write between address spaces: rpn -> number of
     referencing address spaces (absent = exclusively owned) *)
  cow_refs : (int, int) Hashtbl.t;
}

let disk_wait_cycles = 25_000

(* --- accessors -------------------------------------------------------- *)

let machine t = t.k_machine
let policy t = t.k_policy
let perf t = t.k_perf
let memsys t = t.k_memsys
let mmu t = t.k_mmu
let shadow t = Mmu.shadow t.k_mmu
let physmem t = t.k_physmem
let vsid_alloc t = t.k_vsid
let pagepool t = t.k_pagepool
let vfs t = t.k_vfs
let rng t = t.k_rng
let trace t = Memsys.trace t.k_memsys
let profile t = Memsys.profile t.k_memsys
let span t = Memsys.span t.k_memsys
let recorder t = Memsys.recorder t.k_memsys

(* Long-horizon aging (ROADMAP item 3): advance the VSID context counter
   as if [contexts] address spaces had already come and gone, so a run
   of feasible length still crosses the 20-bit wrap the paper
   hand-waves.  Delegates to the allocator; O(1), observation-safe. *)
let age_address_spaces t ~contexts = Vsid_alloc.age t.k_vsid ~contexts
let cycles t = t.k_perf.Perf.cycles
let us t = Cost.us_of_cycles ~mhz:t.k_machine.Machine.mhz (cycles t)
let tasks t = t.k_tasks
let current t = t.k_currents.(t.k_cpu)
let cpus t = t.k_cpus
let active_cpu t = t.k_cpu
let current_on t ~cpu = t.k_currents.(cpu)

(* Move the kernel's (and the MMU's) point of view to another CPU.
   Pure bookkeeping — no charge; at [cpus = 1] this is a no-op, so the
   single-CPU scheduler loop stays byte-identical. *)
let set_active_cpu t cpu =
  if cpu < 0 || cpu >= t.k_cpus then invalid_arg "Kernel.set_active_cpu";
  if cpu <> t.k_cpu then begin
    t.k_cpu <- cpu;
    Mmu.set_cpu t.k_mmu cpu;
    Trace.set_current_pid
      (Memsys.trace t.k_memsys)
      (match t.k_currents.(cpu) with
      | Some task -> task.Task.pid
      | None -> 0)
  end

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* Remote CPUs that may cache translations of [mm]: every CPU the
   address space has ever run on, minus the one doing the flushing.
   Conservative, like Linux's mm_cpumask.  Always 0 at [cpus = 1]. *)
let remote_targets t mm =
  if t.k_cpus = 1 then 0
  else Mm.cpumask mm land lnot (1 lsl t.k_cpu) land ((1 lsl t.k_cpus) - 1)

(* --- boot ------------------------------------------------------------- *)

let lazy_flush_available t =
  t.k_policy.Policy.lazy_flush
  && Vsid_alloc.source t.k_vsid = Vsid_alloc.Context_counter

(* Boot-default CPU count, mirroring the Shadow/Trace registry pattern:
   the experiment driver cannot reach the kernels the registry boots, so
   [experiment --cpus N] arms the default process-wide.  Kernels booted
   with more than one CPU register themselves so the driver can drain
   their SMP counters afterwards. *)
let max_cpus = 30

let boot_cpus_default = ref 1

let set_boot_cpus n =
  if n < 1 || n > max_cpus then invalid_arg "Kernel.set_boot_cpus";
  boot_cpus_default := n

let boot_cpus () = !boot_cpus_default

let smp_registered_rev : t list ref = ref []

(* [experiment] wants the SMP counters of every kernel the registry
   boots even at one CPU (the baseline document carries the smp object
   at [--cpus 1]); tests and benches boot thousands of kernels and must
   not accumulate them.  So registration at [cpus = 1] is opt-in,
   process-wide, like the other boot defaults. *)
let smp_register_always = ref false

let set_smp_register b = smp_register_always := b

let drain_smp_registered () =
  let l = List.rev !smp_registered_rev in
  smp_registered_rev := [];
  l

let boot ~machine ~policy ?(seed = 42) ?shadow ?cpus () =
  let cpus = match cpus with Some n -> n | None -> !boot_cpus_default in
  if cpus < 1 || cpus > max_cpus then invalid_arg "Kernel.boot: cpus";
  let perf = Perf.create () in
  let memsys = Memsys.create ~machine ~perf in
  let rng = Rng.create ~seed in
  (* the MMU's eviction choices draw from their own stream so that two
     policies compared at the same seed see byte-identical workloads *)
  let mmu_rng = Rng.create ~seed:(seed lxor 0x5DEECE66D) in
  let physmem =
    Physmem.create ~ram_bytes:machine.Machine.ram_bytes
      ~reserved_bytes:Kparams.reserved_bytes
  in
  let vsid =
    Vsid_alloc.create ~source:policy.Policy.vsid_source
      ~multiplier:policy.Policy.vsid_multiplier
  in
  (* Kernel context structure sits at the head of kernel data. *)
  let kernel_pt =
    Pagetable.create ~physmem ~ctx_pa:(Kparams.data_pa + 0x80)
  in
  let dummy_backing = { Mmu.walk = (fun _ -> Mmu.Unmapped { pt_refs = [||] }) } in
  let mmu =
    Mmu.create ~htab_base_pa:Kparams.htab_pa ~cpus ~machine ~memsys
      ~knobs:(Policy.mmu_knobs policy) ~backing:dummy_backing ~rng:mmu_rng ()
  in
  (* Shadow checking: explicit request wins; otherwise honour the
     process-wide boot default (set by [experiment --shadow], which
     cannot reach the kernels the registry boots).  Checkers created via
     the default are registered so the driver can drain them. *)
  (match shadow with
  | Some false -> ()
  | Some true -> Mmu.attach_shadow mmu (Shadow.create ())
  | None ->
      if Shadow.boot_enabled () then begin
        let sh = Shadow.create () in
        Shadow.register sh;
        Mmu.attach_shadow mmu sh
      end);
  let t =
    { k_machine = machine;
      k_policy = policy;
      k_perf = perf;
      k_memsys = memsys;
      k_mmu = mmu;
      k_physmem = physmem;
      k_vsid = vsid;
      k_pagepool =
        Pagepool.create ~physmem ~memsys ~clearing:policy.Policy.idle_clearing
          ~use_list:policy.Policy.idle_clear_list
          ~list_limit:policy.Policy.prezero_list_limit ();
      k_vfs = Vfs.create ~physmem;
      k_rng = rng;
      kernel_pt;
      k_tasks = [];
      k_cpus = cpus;
      k_cpu = 0;
      k_currents = Array.make cpus None;
      next_pid = 1;
      next_pipe = 0;
      idle_count = 0;
      next_tick = Kparams.timer_tick_cycles;
      cow_refs = Hashtbl.create 64 }
  in
  (* Linear kernel map: every RAM frame is visible at
     [kernel_base + physical].  With the BAT optimization one block
     register covers it all and the pages never enter TLB or htab;
     without it, kernel references page-fault through these PTEs like any
     others — the 33%-of-the-TLB footprint of §5.1. *)
  let frames = Physmem.total_frames physmem in
  for rpn = 0 to frames - 1 do
    Pagetable.map kernel_pt ~physmem
      ~ea:(Kparams.kernel_virt_of_phys (rpn lsl Addr.page_shift))
      { Pagetable.rpn; writable = true; inhibited = false; shared = false;
        cow = false }
  done;
  (* Every CPU gets the same kernel view: BAT banks and kernel segment
     registers are programmed per CPU at boot (cost-free bookkeeping, so
     the [cpus = 1] boot charges exactly what it always did). *)
  for cpu = 0 to cpus - 1 do
    if policy.Policy.bat_kernel_mapping then begin
      (* BAT blocks are power-of-two sized; round an odd RAM size up (the
         excess maps nothing the workloads can reach) *)
      let rec pow2 n =
        if n >= machine.Machine.ram_bytes then n else pow2 (n * 2)
      in
      let length = max Bat.min_block (pow2 Bat.min_block) in
      Bat.set (Mmu.ibat_of mmu ~cpu) ~index:0 ~base_ea:Kparams.kernel_base
        ~length ~phys_base:0;
      Bat.set (Mmu.dbat_of mmu ~cpu) ~index:0 ~base_ea:Kparams.kernel_base
        ~length ~phys_base:0
    end;
    if policy.Policy.bat_io_mapping then
      (* I/O space: present for fidelity; no benchmark touches it, matching
         the paper's finding that it does not matter. *)
      Bat.set (Mmu.dbat_of mmu ~cpu) ~index:1 ~base_ea:0xF0000000
        ~length:(128 * 1024) ~phys_base:0x10000000;
    (* Kernel segment registers hold fixed VSIDs, loaded once. *)
    Segment.load_kernel (Mmu.segments_of mmu ~cpu) (fun sr ->
        Vsid_alloc.kernel_vsid ~sr)
  done;
  (* The MMU resolves kernel EAs against the linear map and user EAs
     against the current task. *)
  let walk ea =
    let pt =
      if Segment.is_kernel_ea ea then Some t.kernel_pt
      else
        (* the active CPU's current task — the reference translator must
           judge each CPU's accesses against that CPU's address space *)
        match t.k_currents.(t.k_cpu) with
        | None -> None
        | Some task -> Some (Mm.pagetable task.Task.mm)
    in
    match pt with
    | None -> Mmu.Unmapped { pt_refs = [||] }
    | Some pt -> begin
        match Pagetable.walk pt ~ea with
        | None, refs -> Mmu.Unmapped { pt_refs = refs }
        | Some e, refs ->
            Mmu.Mapped
              { rpn = e.Pagetable.rpn;
                wimg =
                  (if e.Pagetable.inhibited then Pte.wimg_uncached
                   else Pte.wimg_default);
                protection =
                  (if e.Pagetable.writable then Pte.Read_write
                   else Pte.Read_only);
                pt_refs = refs }
      end
  in
  Mmu.set_backing mmu { Mmu.walk };
  Mmu.set_vsid_is_zombie mmu (Vsid_alloc.is_zombie vsid);
  (* The attribution profiler's TLB census classifies slots with the
     same ownership test as the §5.1 footprint measurement.  Like Trace,
     the profiler itself was created (and, if [Profile.set_boot_defaults]
     armed process-wide profiling, enabled and registered) inside
     [Memsys.create] above. *)
  Mmu.set_vsid_is_kernel mmu Vsid_alloc.is_kernel;
  (* The §7 escape hatch at the 20-bit context-counter wrap: before any
     wrapped id is re-issued, flush every TLB on every CPU and purge the
     htab of zombie PTEs, so a retired id's stale translations — local
     or cached in a remote TLB — cannot resurrect.  Live ids are skipped
     by the allocator itself. *)
  Vsid_alloc.set_on_wrap vsid (fun () ->
      perf.Perf.vsid_wraps <- perf.Perf.vsid_wraps + 1;
      Memsys.instructions memsys Kparams.vsid_wrap_instr;
      Mmu.invalidate_all_cpus mmu;
      match Mmu.htab mmu with
      | None -> ()
      | Some h ->
          ignore (Mmu.reclaim_zombies mmu ~max_ptes:(Htab.capacity h) : int));
  if cpus > 1 || !smp_register_always then
    smp_registered_rev := t :: !smp_registered_rev;
  t

(* --- kernel path execution ------------------------------------------- *)

(* A kernel access must always resolve; the linear map covers all RAM. *)
let kaccess t kind ea =
  if Mmu.access_pa t.k_mmu kind ea < 0 then raise (Kernel_fault ea)

(* Run a kernel code path: [instrs] cycles of instructions with one
   I-fetch per 8 instructions from the path's text region, plus the given
   kernel data references.  Long paths loop (register save/restore,
   copy loops), so their static text footprint is bounded: fetches cycle
   within at most [max_path_lines] distinct lines. *)
let max_path_lines = 48 (* 1.5 KB of text per kernel path *)

let run_path t ~off ~instrs ~data =
  let code_ea = Kparams.kernel_virt_of_phys (Kparams.text_pa + off) in
  Memsys.instructions t.k_memsys instrs;
  let lines = max 1 (instrs / 8) in
  let distinct = min lines max_path_lines in
  for i = 0 to lines - 1 do
    kaccess t Mmu.Fetch (code_ea + (i mod distinct * Addr.line_size))
  done;
  List.iter
    (fun (write, ea) ->
      kaccess t (if write then Mmu.Store else Mmu.Load) ea)
    data

let current_task_refs t =
  match t.k_currents.(t.k_cpu) with
  | None -> [ (false, Kparams.runqueue_ea) ]
  | Some task ->
      [ (false, Kparams.runqueue_ea);
        (false, Task.task_struct_ea task);
        (true, Task.kstack_ea task) ]

(* Stack save/restore traffic of the original C entry paths. *)
let stack_refs t n =
  match t.k_currents.(t.k_cpu) with
  | None -> []
  | Some task ->
      List.init n (fun i ->
          (true, Task.kstack_ea task + (i * Addr.line_size mod 1024)))

(* set once timer_tick is defined below; syscall entry is where the
   kernel notices a pending tick *)
let tick_hook : (t -> unit) ref = ref (fun _ -> ())

let syscall_entry t =
  !tick_hook t;
  t.k_perf.Perf.syscalls <- t.k_perf.Perf.syscalls + 1;
  (* span attribution: stamp the kernel-entry cycle before the entry
     path charges, so the request's syscall window covers all of it *)
  Span.syscall_begin (span t);
  let fast = t.k_policy.Policy.fast_paths in
  let instrs =
    if fast then Kparams.syscall_fast else Kparams.syscall_slow
  in
  let extra =
    if fast then [] else stack_refs t Kparams.syscall_slow_stack_refs
  in
  run_path t ~off:Kparams.off_syscall ~instrs
    ~data:(current_task_refs t @ extra)

(* The matching syscall return, called at the end of every [sys_*] body:
   closes the current request's syscall window. *)
let syscall_ret t = Span.syscall_end (span t)

(* --- flushing --------------------------------------------------------- *)

let vsid_of_ea t ~mm ea =
  Vsid_alloc.vsid t.k_vsid ~ctx:(Mm.ctx mm) ~sr:(Addr.sr_index ea)

let load_user_segments t mm =
  Memsys.stall t.k_memsys Kparams.segment_load_cycles;
  Segment.load_user (Mmu.segments t.k_mmu) (fun sr ->
      Mm.vsid_for_sr mm ~vsid_alloc:t.k_vsid sr)

let context_reset t ~mm =
  t.k_perf.Perf.flush_context_resets <-
    t.k_perf.Perf.flush_context_resets + 1;
  let old_ctx = Mm.ctx mm in
  let fresh =
    Vsid_alloc.renew_context t.k_vsid ~old_ctx ~pid:(Mm.pid mm)
  in
  Mm.set_ctx mm fresh;
  (match Mmu.shadow t.k_mmu with
  | None -> ()
  | Some sh -> Shadow.note_flush sh ~what:"context-reset" ~vsid:old_ctx ~ea:0);
  let tr = trace t in
  if Trace.enabled tr then
    Trace.emit tr Trace.Flush_context ~a:old_ctx ~b:fresh;
  Memsys.instructions t.k_memsys 40;
  (* The lazy reset is also the SMP win: remote TLBs keep the retired
     VSID's entries as zombies instead of being shot down — count every
     remote invalidation the reset just elided.  But a CPU {e currently
     running} this address space must reload its segment registers now,
     which costs an IPI round; the local CPU reloads directly. *)
  let remote = remote_targets t mm in
  if remote <> 0 then
    t.k_perf.Perf.shootdowns_deferred <-
      t.k_perf.Perf.shootdowns_deferred + popcount remote;
  for cpu = 0 to t.k_cpus - 1 do
    match t.k_currents.(cpu) with
    | Some task when task.Task.mm == mm ->
        if cpu = t.k_cpu then load_user_segments t mm
        else begin
          t.k_perf.Perf.ipis_sent <- t.k_perf.Perf.ipis_sent + 1;
          Memsys.stall t.k_memsys Cost.ipi_send_cycles;
          Memsys.instructions t.k_memsys Cost.ipi_handler_instr;
          Memsys.stall t.k_memsys Kparams.segment_load_cycles;
          Segment.load_user (Mmu.segments_of t.k_mmu ~cpu) (fun sr ->
              Mm.vsid_for_sr mm ~vsid_alloc:t.k_vsid sr);
          Memsys.stall t.k_memsys Cost.ipi_ack_wait_cycles
        end
    | Some _ | None -> ()
  done

(* One precise page flush plus, on SMP, the broadcast shootdown to every
   remote CPU that may cache the translation.  [targets = 0] (always, at
   [cpus = 1]) makes the shootdown a complete no-op. *)
let flush_page_mm t ~mm ~targets pea =
  let vsid = vsid_of_ea t ~mm pea in
  Mmu.flush_page_for_vsid t.k_mmu ~vsid pea;
  if targets <> 0 then Mmu.shootdown_page t.k_mmu ~vsid ~targets pea

(* Precise flush of one range with the shootdowns batched: flush every
   page locally while collecting the (vsid, ea) pairs, then one IPI
   round covers the whole range on each remote CPU.  The legacy
   round-per-page behavior stays available as the [shootdown_batch]
   policy knob (off), so the tuner can price the difference.  At
   [targets = 0] — always, at one CPU — both paths charge byte-identical
   costs. *)
let precise_flush_pages t ~mm ~targets ~each =
  if targets <> 0 && t.k_policy.Policy.shootdown_batch then begin
    let flushed = ref [] in
    each (fun pea ->
        let vsid = vsid_of_ea t ~mm pea in
        Mmu.flush_page_for_vsid t.k_mmu ~vsid pea;
        flushed := (vsid, pea) :: !flushed);
    Mmu.shootdown_range t.k_mmu ~targets (List.rev !flushed)
  end
  else each (fun pea -> flush_page_mm t ~mm ~targets pea)

let precise_flush_range t ~mm ~ea ~pages =
  let targets = remote_targets t mm in
  precise_flush_pages t ~mm ~targets ~each:(fun flush ->
      for i = 0 to pages - 1 do
        flush (ea + (i lsl Addr.page_shift))
      done)

let flush_range t ~mm ~ea ~pages =
  match t.k_policy.Policy.flush_cutoff with
  | Some cutoff when lazy_flush_available t && pages > cutoff ->
      context_reset t ~mm
  | Some _ | None -> precise_flush_range t ~mm ~ea ~pages

let flush_whole_mm t ~mm =
  if lazy_flush_available t then context_reset t ~mm
  else begin
    let targets = remote_targets t mm in
    precise_flush_pages t ~mm ~targets ~each:(fun flush ->
        Pagetable.iter (Mm.pagetable mm) (fun ea _entry -> flush ea))
  end

(* --- processes -------------------------------------------------------- *)

let standard_vmas ~text_pages ~data_pages ~stack_pages =
  [ { Mm.va_start = Mm.user_text_base; va_pages = text_pages;
      va_writable = false; va_backing = Mm.Anonymous };
    { Mm.va_start =
        Mm.user_text_base + (text_pages lsl Addr.page_shift);
      va_pages = data_pages;
      va_writable = true;
      va_backing = Mm.Anonymous };
    { Mm.va_start = Mm.user_stack_top - (stack_pages lsl Addr.page_shift);
      va_pages = stack_pages;
      va_writable = true;
      va_backing = Mm.Anonymous } ]

let spawn t ?(text_pages = 16) ?(data_pages = 16) ?(stack_pages = 8) () =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let mm =
    Mm.create ~trace:(trace t) ~physmem:t.k_physmem ~vsid_alloc:t.k_vsid ~pid
      ()
  in
  List.iter (Mm.add_vma mm) (standard_vmas ~text_pages ~data_pages ~stack_pages);
  let task = Task.create ~pid ~mm in
  t.k_tasks <- task :: t.k_tasks;
  task

(* A thread-like task: its own pid, task_struct and kernel stack, but
   the same address space (mm, page table, VSIDs) as [peer] — the
   clone(CLONE_VM) shape a shared-mm server pool uses.  Threads must not
   [sys_exit] (that would tear down the shared address space); a server
   parks them instead. *)
let spawn_thread t ~peer =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  Memsys.instructions t.k_memsys Kparams.fork_base;
  let task = Task.create ~pid ~mm:peer.Task.mm in
  task.Task.code_cursor <- peer.Task.code_cursor;
  t.k_tasks <- task :: t.k_tasks;
  task

(* The frame-buffer aperture lives outside RAM in physical space. *)
let framebuffer_phys_base = 0x0800_0000
let framebuffer_rpn = framebuffer_phys_base lsr Addr.page_shift
let framebuffer_bat_index = 2

let switch_to t task =
  let switch_start = t.k_perf.Perf.cycles in
  t.k_perf.Perf.context_switches <- t.k_perf.Perf.context_switches + 1;
  let fast = t.k_policy.Policy.fast_paths in
  let instrs = if fast then Kparams.switch_fast else Kparams.switch_slow in
  let extra =
    if fast then [] else stack_refs t Kparams.switch_slow_stack_refs
  in
  let data =
    (false, Kparams.runqueue_ea)
    :: (false, Task.task_struct_ea task)
    :: (true, Task.kstack_ea task)
    :: ((match t.k_currents.(t.k_cpu) with
        | Some old -> [ (true, Task.task_struct_ea old) ]
        | None -> [])
       @ extra)
  in
  run_path t ~off:Kparams.off_sched ~instrs ~data;
  load_user_segments t task.Task.mm;
  (* §5.1's proposal: the frame-buffer BAT belongs to the process and is
     switched with it. *)
  if t.k_policy.Policy.bat_framebuffer then begin
    if task.Task.maps_framebuffer then
      Bat.set (Mmu.dbat t.k_mmu) ~index:framebuffer_bat_index
        ~base_ea:Mm.framebuffer_base ~length:(4 * 1024 * 1024)
        ~phys_base:framebuffer_phys_base
    else Bat.clear (Mmu.dbat t.k_mmu) ~index:framebuffer_bat_index
  end;
  (* §10.2: prefetch the incoming task's hot kernel lines while the
     switch completes. *)
  if t.k_policy.Policy.cache_preload then begin
    let m = t.k_memsys in
    let ts = Kparams.kernel_phys_of_virt (Task.task_struct_ea task) in
    let ks = Kparams.kernel_phys_of_virt (Task.kstack_ea task) in
    for i = 0 to 1 do
      Memsys.prefetch m ~source:Cache.Kernel (ts + (i * Addr.line_size))
    done;
    for i = 0 to 3 do
      Memsys.prefetch m ~source:Cache.Kernel (ks + (i * Addr.line_size))
    done
  end;
  task.Task.state <- Task.Ready;
  t.k_currents.(t.k_cpu) <- Some task;
  (* Linux-style mm_cpumask: this CPU may now cache translations of the
     task's address space; flushes must include it until the mask is
     reset (we never narrow it — conservative, like the real thing). *)
  Mm.note_running task.Task.mm ~cpu:t.k_cpu;
  let tr = trace t in
  Trace.set_current_pid tr task.Task.pid;
  if Trace.enabled tr then
    Trace.emit_context_switch tr ~pid:task.Task.pid
      ~cost:(t.k_perf.Perf.cycles - switch_start);
  (* span attribution: the incoming pid names the request now being
     served; the switch cost is part of its critical path *)
  Span.note_context_switch (span t) ~pid:task.Task.pid
    ~cost:(t.k_perf.Perf.cycles - switch_start)

let require_current t =
  match t.k_currents.(t.k_cpu) with
  | Some task -> task
  | None -> invalid_arg "Kernel: no current task"

(* The frame-buffer BAT belongs to the mapping: dropping the mapping
   must drop the register too, or stale translations outlive munmap. *)
let drop_framebuffer t task =
  if task.Task.maps_framebuffer then begin
    task.Task.maps_framebuffer <- false;
    if t.k_policy.Policy.bat_framebuffer then
      Bat.clear (Mmu.dbat t.k_mmu) ~index:framebuffer_bat_index
  end

let sys_map_framebuffer t ~pages =
  syscall_entry t;
  let task = require_current t in
  let mm = task.Task.mm in
  run_path t ~off:Kparams.off_mm
    ~instrs:(Kparams.mmap_base_cost + (pages * Kparams.mmap_per_page))
    ~data:(current_task_refs t);
  let ea = Mm.framebuffer_base in
  Mm.add_vma mm
    { Mm.va_start = ea; va_pages = pages; va_writable = true;
      va_backing = Mm.Phys_window framebuffer_rpn };
  task.Task.maps_framebuffer <- true;
  if t.k_policy.Policy.bat_framebuffer then
    Bat.set (Mmu.dbat t.k_mmu) ~index:framebuffer_bat_index ~base_ea:ea
      ~length:(4 * 1024 * 1024) ~phys_base:framebuffer_phys_base;
  syscall_ret t;
  ea

let timer_tick t =
  t.next_tick <- t.k_perf.Perf.cycles + Kparams.timer_tick_cycles;
  let fast = t.k_policy.Policy.fast_paths in
  let instrs = if fast then Kparams.tick_fast else Kparams.tick_slow in
  let extra =
    if fast then [] else stack_refs t Kparams.tick_slow_stack_refs
  in
  run_path t ~off:Kparams.off_sched ~instrs
    ~data:(current_task_refs t @ extra);
  if t.k_policy.Policy.cache_preload then
    match t.k_currents.(t.k_cpu) with
    | None -> ()
    | Some task ->
        let ts = Kparams.kernel_phys_of_virt (Task.task_struct_ea task) in
        for i = 0 to 1 do
          Memsys.prefetch t.k_memsys ~source:Cache.Kernel
            (ts + (i * Addr.line_size))
        done

(* The clock ticks no matter what the workload is doing; checked at the
   operation boundaries (syscalls, user references, idle turns). *)
let maybe_tick t =
  if t.k_perf.Perf.cycles >= t.next_tick then timer_tick t

let () = tick_hook := maybe_tick

(* --- idle task -------------------------------------------------------- *)

(* One turn around the idle loop.  The loop itself polls the scheduler
   (a few dozen instructions); every [reclaim_interval]-th turn scans a
   chunk of the htab for zombie PTEs (§7) — the policy sets the cadence
   and chunk, throttled so a sweep of the whole table takes many idle
   windows, as a background scavenger should — and otherwise one free
   page is cleared if clearing is configured (§9). *)
let idle_slice t =
  maybe_tick t;
  Memsys.set_idle t.k_memsys true;
  if t.k_policy.Policy.idle_cache_lock then
    Memsys.set_cache_locked t.k_memsys true;
  Memsys.instructions t.k_memsys Kparams.idle_loop_slice;
  t.idle_count <- t.idle_count + 1;
  if
    t.k_policy.Policy.idle_zombie_reclaim
    && t.idle_count mod t.k_policy.Policy.reclaim_interval = 0
  then
    ignore
      (Mmu.reclaim_zombies t.k_mmu
         ~max_ptes:t.k_policy.Policy.reclaim_chunk
        : int)
  else ignore (Pagepool.idle_clear_one t.k_pagepool : bool);
  if t.k_policy.Policy.idle_cache_lock then
    Memsys.set_cache_locked t.k_memsys false;
  Memsys.set_idle t.k_memsys false

let idle_for t ~cycles:n =
  let start = cycles t in
  let target = start + n in
  while cycles t < target do
    idle_slice t
  done;
  let tr = trace t in
  if Trace.enabled tr then
    Trace.emit_for tr Trace.Idle_window ~pid:0 ~a:0 ~b:(cycles t - start)

(* An idle CPU pulled a runnable task off another CPU's queue: charge the
   run-queue lock + migration bookkeeping and count it.  The scheduler
   calls this; queue surgery itself lives there. *)
let note_work_steal t =
  t.k_perf.Perf.work_steals <- t.k_perf.Perf.work_steals + 1;
  Memsys.instructions t.k_memsys Kparams.steal_instr

(* Release one mapping's frame: page-cache/device frames are not ours;
   a copy-on-write frame is freed only by its last referent. *)
let release_frame t (entry : Pagetable.entry) =
  if not entry.Pagetable.shared then begin
    match Hashtbl.find_opt t.cow_refs entry.Pagetable.rpn with
    | Some n when n > 2 -> Hashtbl.replace t.cow_refs entry.Pagetable.rpn (n - 1)
    | Some _ -> Hashtbl.remove t.cow_refs entry.Pagetable.rpn
    | None -> Pagepool.free_page t.k_pagepool entry.Pagetable.rpn
  end

(* --- faults and user execution --------------------------------------- *)

let charge_pt_update t pt ~ea =
  let _entry, refs = Pagetable.walk pt ~ea in
  Array.iter
    (fun pa ->
      Memsys.data_ref t.k_memsys ~source:Cache.Page_table
        ~inhibited:t.k_policy.Policy.cache_inhibit_pagetables ~write:true pa)
    refs

let handle_user_fault t kind ea =
  let task = require_current t in
  t.k_perf.Perf.page_faults <- t.k_perf.Perf.page_faults + 1;
  let tr = trace t in
  if Trace.enabled tr then
    Trace.emit tr Trace.Page_fault ~a:ea
      ~b:(match kind with Mmu.Fetch -> 0 | Mmu.Load -> 1 | Mmu.Store -> 2);
  run_path t ~off:Kparams.off_fault ~instrs:Kparams.fault_service
    ~data:(current_task_refs t);
  let mm = task.Task.mm in
  match Mm.find_vma mm ea with
  | None -> raise (Segfault ea)
  | Some vma ->
      if kind = Mmu.Store && not vma.Mm.va_writable then raise (Segfault ea);
      let pt = Mm.pagetable mm in
      (match Pagetable.find pt ~ea with
      | Some entry
        when entry.Pagetable.cow && kind = Mmu.Store
             && vma.Mm.va_writable -> begin
          (* Copy-on-write break: give this address space its own frame
             (or reclaim exclusivity if everyone else is gone). *)
          let upgraded =
            match Hashtbl.find_opt t.cow_refs entry.Pagetable.rpn with
            | Some n -> begin
                match Pagepool.get_page t.k_pagepool with
                | None -> raise Pagetable.Out_of_frames
                | Some rpn ->
                    Memsys.copy_lines t.k_memsys ~source:Cache.Kernel
                      ~src:(entry.Pagetable.rpn lsl Addr.page_shift)
                      ~dst:(rpn lsl Addr.page_shift) ~bytes:Addr.page_size;
                    if n > 2 then
                      Hashtbl.replace t.cow_refs entry.Pagetable.rpn (n - 1)
                    else Hashtbl.remove t.cow_refs entry.Pagetable.rpn;
                    { entry with Pagetable.rpn; writable = true; cow = false }
              end
            | None ->
                (* sole surviving referent: upgrade in place *)
                { entry with Pagetable.writable = true; cow = false }
          in
          Pagetable.map pt ~physmem:t.k_physmem ~ea upgraded;
          charge_pt_update t pt ~ea;
          (* the stale read-only translation must die before the retry —
             on every CPU that may cache it, or a sibling thread keeps
             writing the shared frame through the old mapping *)
          flush_page_mm t ~mm ~targets:(remote_targets t mm) ea;
          raise Cow_broken
        end
      | Some _ ->
          (* Translation exists but faulted anyway: a protection error. *)
          raise (Segfault ea)
      | None -> ());
      let rpn, shared =
        match vma.Mm.va_backing with
        | Mm.Anonymous -> begin
            match Pagepool.get_zeroed_page t.k_pagepool with
            | Some rpn -> (rpn, false)
            | None -> raise Pagetable.Out_of_frames
          end
        | Mm.File_pages (file, from_page) -> begin
            let page =
              from_page
              + ((ea - vma.Mm.va_start) lsr Addr.page_shift)
            in
            match Vfs.page_frame t.k_vfs file ~page with
            | None -> raise Pagetable.Out_of_frames
            | Some (rpn, cold) ->
                if cold then idle_for t ~cycles:disk_wait_cycles;
                (rpn, true)
          end
        | Mm.Phys_window base_rpn ->
            (* a device aperture: the frame is the window's, not ours *)
            (base_rpn + ((ea - vma.Mm.va_start) lsr Addr.page_shift), true)
      in
      Pagetable.map pt ~physmem:t.k_physmem ~ea
        { Pagetable.rpn; writable = vma.Mm.va_writable; inhibited = false;
          shared; cow = false };
      charge_pt_update t pt ~ea

let touch t kind ea =
  maybe_tick t;
  if Segment.is_kernel_ea ea then kaccess t kind ea
  else if Mmu.access_pa t.k_mmu kind ea < 0 then begin
    (match handle_user_fault t kind ea with
    | () -> ()
    | exception Cow_broken -> ());
    if Mmu.access_pa t.k_mmu kind ea < 0 then raise (Segfault ea)
  end

let user_run t ~instrs =
  let task = require_current t in
  let run_start = t.k_perf.Perf.cycles in
  Memsys.instructions t.k_memsys instrs;
  let mm = task.Task.mm in
  let text =
    match Mm.find_vma mm Mm.user_text_base with
    | Some vma -> Some vma
    | None -> Mm.find_vma mm task.Task.code_cursor
  in
  (match text with
  | None -> ()
  | Some vma ->
      let text_end = vma.Mm.va_start + (vma.Mm.va_pages lsl Addr.page_shift) in
      let lines = max 1 (instrs / 8) in
      for _ = 1 to lines do
        if
          task.Task.code_cursor < vma.Mm.va_start
          || task.Task.code_cursor >= text_end
        then task.Task.code_cursor <- vma.Mm.va_start;
        touch t Mmu.Fetch task.Task.code_cursor;
        task.Task.code_cursor <- task.Task.code_cursor + Addr.line_size
      done);
  (* span attribution: the whole slice (fetches, faults and reloads
     included) ran on the current request's behalf *)
  Span.note_run (span t) ~cost:(t.k_perf.Perf.cycles - run_start)

(* --- syscalls --------------------------------------------------------- *)

let sys_null t =
  syscall_entry t;
  syscall_ret t

let sys_mmap t ~pages ~writable =
  syscall_entry t;
  let task = require_current t in
  let mm = task.Task.mm in
  run_path t ~off:Kparams.off_mm
    ~instrs:(Kparams.mmap_base_cost + (pages * Kparams.mmap_per_page))
    ~data:(current_task_refs t);
  let ea = Mm.alloc_mmap_range mm ~pages in
  Mm.add_vma mm
    { Mm.va_start = ea; va_pages = pages; va_writable = writable;
      va_backing = Mm.Anonymous };
  (* New mappings for this range must be the only ones visible: flush the
     range from TLB and htab (the expensive part §7 attacks). *)
  flush_range t ~mm ~ea ~pages;
  syscall_ret t;
  ea

let sys_munmap t ~ea ~pages =
  syscall_entry t;
  let task = require_current t in
  let mm = task.Task.mm in
  (match Mm.remove_vma mm ~start:ea with
  | None -> invalid_arg "Kernel.sys_munmap: no vma at address"
  | Some vma ->
      if vma.Mm.va_pages <> pages then
        invalid_arg "Kernel.sys_munmap: size mismatch";
      match vma.Mm.va_backing with
      | Mm.Phys_window _ -> drop_framebuffer t task
      | Mm.Anonymous | Mm.File_pages _ -> ());
  run_path t ~off:Kparams.off_mm ~instrs:Kparams.munmap_base_cost
    ~data:(current_task_refs t);
  let pt = Mm.pagetable mm in
  for i = 0 to pages - 1 do
    let pea = ea + (i lsl Addr.page_shift) in
    match Pagetable.unmap pt ~ea:pea with
    | None -> ()
    | Some entry ->
        Memsys.instructions t.k_memsys Kparams.munmap_per_mapped_page;
        charge_pt_update t pt ~ea:pea;
        release_frame t entry
  done;
  flush_range t ~mm ~ea ~pages;
  syscall_ret t

let sys_mmap_file t file ~from_page ~pages ~writable =
  syscall_entry t;
  let task = require_current t in
  let mm = task.Task.mm in
  run_path t ~off:Kparams.off_mm
    ~instrs:(Kparams.mmap_base_cost + (pages * Kparams.mmap_per_page))
    ~data:(current_task_refs t);
  let ea = Mm.alloc_mmap_range mm ~pages in
  Mm.add_vma mm
    { Mm.va_start = ea; va_pages = pages; va_writable = writable;
      va_backing = Mm.File_pages (file, from_page) };
  flush_range t ~mm ~ea ~pages;
  syscall_ret t;
  ea

(* The data vma is the one starting right after the text vma. *)
let data_vma_start mm =
  match Mm.find_vma mm Mm.user_text_base with
  | Some text -> text.Mm.va_start + (text.Mm.va_pages lsl Addr.page_shift)
  | None -> invalid_arg "Kernel.sys_brk: no text vma"

let sys_brk t ~pages =
  syscall_entry t;
  let task = require_current t in
  let mm = task.Task.mm in
  run_path t ~off:Kparams.off_mm ~instrs:Kparams.mmap_base_cost
    ~data:(current_task_refs t);
  let start = data_vma_start mm in
  let grown = Mm.grow_vma mm ~start ~extra_pages:pages in
  let old_end =
    grown.Mm.va_start + ((grown.Mm.va_pages - pages) lsl Addr.page_shift)
  in
  flush_range t ~mm ~ea:old_end ~pages;
  syscall_ret t;
  grown.Mm.va_start + (grown.Mm.va_pages lsl Addr.page_shift)

let sys_fork t =
  syscall_entry t;
  let parent = require_current t in
  let pmm = parent.Task.mm in
  run_path t ~off:Kparams.off_exec ~instrs:Kparams.fork_base
    ~data:(current_task_refs t);
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let cmm =
    Mm.create ~trace:(trace t) ~physmem:t.k_physmem ~vsid_alloc:t.k_vsid ~pid
      ()
  in
  List.iter (fun vma -> Mm.add_vma cmm vma) (Mm.vmas pmm);
  let cpt = Mm.pagetable cmm in
  let ppt = Mm.pagetable pmm in
  (* Copy-on-write: both sides reference the same frame read-only; the
     first store to either copy breaks the sharing. *)
  Pagetable.iter ppt (fun ea entry ->
      Memsys.instructions t.k_memsys Kparams.fork_per_page;
      if entry.Pagetable.shared then begin
        Pagetable.map cpt ~physmem:t.k_physmem ~ea entry;
        charge_pt_update t cpt ~ea
      end
      else begin
        let downgraded = { entry with Pagetable.writable = false; cow = true } in
        Pagetable.map ppt ~physmem:t.k_physmem ~ea downgraded;
        Pagetable.map cpt ~physmem:t.k_physmem ~ea downgraded;
        charge_pt_update t cpt ~ea;
        let refs =
          match Hashtbl.find_opt t.cow_refs entry.Pagetable.rpn with
          | Some n -> n + 1
          | None -> 2
        in
        Hashtbl.replace t.cow_refs entry.Pagetable.rpn refs
      end);
  (* The parent's writable translations are now stale: flush its whole
     context (real fork flushed the parent's TLB for the same reason). *)
  flush_whole_mm t ~mm:pmm;
  let child = Task.create ~pid ~mm:cmm in
  child.Task.code_cursor <- parent.Task.code_cursor;
  t.k_tasks <- child :: t.k_tasks;
  syscall_ret t;
  child

let release_address_space t mm =
  let pt = Mm.pagetable mm in
  let mapped = ref [] in
  Pagetable.iter pt (fun ea entry -> mapped := (ea, entry) :: !mapped);
  List.iter
    (fun (ea, (entry : Pagetable.entry)) ->
      ignore (Pagetable.unmap pt ~ea : Pagetable.entry option);
      Memsys.instructions t.k_memsys Kparams.munmap_per_mapped_page;
      release_frame t entry)
    !mapped

let sys_exec t ~text_pages ~data_pages ~stack_pages =
  syscall_entry t;
  let task = require_current t in
  let mm = task.Task.mm in
  run_path t ~off:Kparams.off_exec ~instrs:Kparams.exec_base
    ~data:(current_task_refs t);
  (* The old image's translations must all die: the classic whole-mm
     flush. *)
  drop_framebuffer t task;
  flush_whole_mm t ~mm;
  release_address_space t mm;
  Mm.reset_vmas mm;
  List.iter (Mm.add_vma mm)
    (standard_vmas ~text_pages ~data_pages ~stack_pages);
  task.Task.code_cursor <- Mm.user_text_base;
  syscall_ret t

let sys_exit t =
  syscall_entry t;
  let task = require_current t in
  run_path t ~off:Kparams.off_sched ~instrs:Kparams.proc_exit
    ~data:(current_task_refs t);
  let mm = task.Task.mm in
  drop_framebuffer t task;
  if not (lazy_flush_available t) then flush_whole_mm t ~mm;
  release_address_space t mm;
  Mm.destroy mm ~physmem:t.k_physmem ~vsid_alloc:t.k_vsid
    ~free_frame:(fun _ -> () (* frames already released above *));
  task.Task.state <- Task.Exited;
  t.k_tasks <- List.filter (fun other -> other != task) t.k_tasks;
  t.k_currents.(t.k_cpu) <- None;
  syscall_ret t

(* --- pipes ------------------------------------------------------------ *)

let new_pipe t =
  let index = t.next_pipe in
  t.next_pipe <- t.next_pipe + 1;
  Pipe.create ~index

let copy_user_kernel t ~user ~kernel ~bytes ~to_kernel =
  let lines = (bytes + Addr.line_size - 1) / Addr.line_size in
  Memsys.instructions t.k_memsys (bytes / 4 * Kparams.copy_cycles_per_word);
  for i = 0 to lines - 1 do
    let off = i * Addr.line_size in
    let kea = kernel + (off land (Pipe.capacity - 1)) in
    if to_kernel then begin
      touch t Mmu.Load (user + off);
      kaccess t Mmu.Store kea
    end
    else begin
      kaccess t Mmu.Load kea;
      touch t Mmu.Store (user + off)
    end
  done

let sys_pipe_write t pipe ~buf ~bytes =
  syscall_entry t;
  run_path t ~off:Kparams.off_pipe ~instrs:Kparams.pipe_op
    ~data:(current_task_refs t);
  let n = Pipe.write pipe ~bytes in
  if n > 0 then
    copy_user_kernel t ~user:buf
      ~kernel:(Kparams.pipe_buf_ea ~index:(Pipe.index pipe))
      ~bytes:n ~to_kernel:true;
  syscall_ret t;
  n

let sys_pipe_read t pipe ~buf ~bytes =
  syscall_entry t;
  run_path t ~off:Kparams.off_pipe ~instrs:Kparams.pipe_op
    ~data:(current_task_refs t);
  let n = Pipe.read pipe ~bytes in
  if n > 0 then
    copy_user_kernel t ~user:buf
      ~kernel:(Kparams.pipe_buf_ea ~index:(Pipe.index pipe))
      ~bytes:n ~to_kernel:false;
  syscall_ret t;
  n

(* --- file reads ------------------------------------------------------- *)

(* Shared body of the waiting and non-waiting reads: [on_cold] decides
   what a cold page costs the caller. *)
let file_read_body t file ~from_page ~pages ~buf ~on_cold =
  syscall_entry t;
  run_path t ~off:Kparams.off_vfs ~instrs:Kparams.read_op
    ~data:(current_task_refs t);
  for p = 0 to pages - 1 do
    match Vfs.page_frame t.k_vfs file ~page:(from_page + p) with
    | None -> raise Pagetable.Out_of_frames
    | Some (rpn, cold) ->
        if cold then on_cold ();
        let kea = Kparams.kernel_virt_of_phys (rpn lsl Addr.page_shift) in
        let lines = Addr.page_size / Addr.line_size in
        Memsys.instructions t.k_memsys
          ((Addr.page_size / 4 * Kparams.copy_cycles_per_word)
          + Kparams.vfs_per_page);
        for i = 0 to lines - 1 do
          let off = i * Addr.line_size in
          kaccess t Mmu.Load (kea + off);
          touch t Mmu.Store (buf + (p * Addr.page_size) + off)
        done
  done;
  syscall_ret t

let sys_file_read t file ~from_page ~pages ~buf =
  file_read_body t file ~from_page ~pages ~buf ~on_cold:(fun () ->
      idle_for t ~cycles:disk_wait_cycles)

let sys_file_read_async t file ~from_page ~pages ~buf =
  let cold = ref 0 in
  file_read_body t file ~from_page ~pages ~buf ~on_cold:(fun () -> incr cold);
  !cold

let sys_file_write t file ~from_page ~pages ~buf =
  syscall_entry t;
  run_path t ~off:Kparams.off_vfs ~instrs:Kparams.read_op
    ~data:(current_task_refs t);
  for p = 0 to pages - 1 do
    match Vfs.page_frame t.k_vfs file ~page:(from_page + p) with
    | None -> raise Pagetable.Out_of_frames
    | Some (rpn, _cold) ->
        (* a fresh page-cache frame needs no disk read before being
           overwritten; the data is copied user -> cache and written
           behind *)
        let kea = Kparams.kernel_virt_of_phys (rpn lsl Addr.page_shift) in
        let lines = Addr.page_size / Addr.line_size in
        Memsys.instructions t.k_memsys
          ((Addr.page_size / 4 * Kparams.copy_cycles_per_word)
          + Kparams.vfs_per_page);
        for i = 0 to lines - 1 do
          let off = i * Addr.line_size in
          touch t Mmu.Load (buf + (p * Addr.page_size) + off);
          kaccess t Mmu.Store (kea + off)
        done
  done;
  syscall_ret t

(* --- measurement helpers ---------------------------------------------- *)

let kernel_tlb_entries t =
  Mmu.kernel_tlb_entries t.k_mmu ~is_kernel_vsid:Vsid_alloc.is_kernel

let htab_occupancy t =
  match Mmu.htab t.k_mmu with
  | None -> 0
  | Some h -> Htab.occupancy h

let htab_live_and_zombie t =
  match Mmu.htab t.k_mmu with
  | None -> (0, 0)
  | Some h ->
      let live =
        Htab.count_valid h ~f:(fun pte ->
            Vsid_alloc.is_live t.k_vsid pte.Pte.vsid)
      in
      (live, Htab.occupancy h - live)
