(* Declarative latency SLOs over the spans document.

   A budgets file names (experiment, config, class, metric) coordinates
   and gives each a cycle budget; evaluation reads the measured value
   out of the spans document Span_export produced for the same run.
   Budgets are cycles, not microseconds: the simulation is exact, so
   the gate can be too. *)

type metric = P50 | P99 | P999

let metric_name = function P50 -> "p50" | P99 -> "p99" | P999 -> "p999"

let metric_of_string = function
  | "p50" -> Some P50
  | "p99" -> Some P99
  | "p999" -> Some P999
  | _ -> None

type objective = {
  s_experiment : string;
  s_config : string;
  s_class : string;  (* "overall" or a class name *)
  s_metric : metric;
  s_budget : int;  (* cycles *)
}

type doc = { d_seed : int; d_objectives : objective list }

let objective_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match (str "experiment", str "config", int "budget_cycles") with
  | Some s_experiment, Some s_config, Some s_budget -> (
      let s_class = Option.value (str "class") ~default:"overall" in
      match
        metric_of_string
          (Option.value (str "metric") ~default:"p99")
      with
      | Some s_metric ->
          Ok { s_experiment; s_config; s_class; s_metric; s_budget }
      | None ->
          Error
            (Printf.sprintf "unknown metric %S"
               (Option.value (str "metric") ~default:"")))
  | _ -> Error "objective needs \"experiment\", \"config\", \"budget_cycles\""

let of_json j =
  match Option.bind (Json.member "slos" j) Json.to_list_opt with
  | None -> Error "budgets document needs a \"slos\" list"
  | Some l ->
      let rec walk i acc = function
        | [] -> Ok { d_seed = 42; d_objectives = List.rev acc }
        | o :: rest -> (
            match objective_of_json o with
            | Ok obj -> walk (i + 1) (obj :: acc) rest
            | Error msg ->
                Error (Printf.sprintf "slos[%d]: %s" i msg))
      in
      let seed =
        Option.value
          (Option.bind (Json.member "seed" j) Json.to_int_opt)
          ~default:42
      in
      Result.map
        (fun d -> { d with d_seed = seed })
        (walk 0 [] l)

let load path =
  match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
  | Error msg -> Error (path ^ ": " ^ msg)
  | Ok j -> ( match of_json j with Ok d -> Ok d | Error m -> Error (path ^ ": " ^ m))

let to_json d =
  Json.Obj
    [ ("seed", Json.Int d.d_seed);
      ("slos",
       Json.List
         (List.map
            (fun o ->
              Json.Obj
                [ ("experiment", Json.String o.s_experiment);
                  ("config", Json.String o.s_config);
                  ("class", Json.String o.s_class);
                  ("metric", Json.String (metric_name o.s_metric));
                  ("budget_cycles", Json.Int o.s_budget) ])
            d.d_objectives)) ]

(* ----------------------------------------------------------- verdicts *)

type verdict = {
  v_objective : objective;
  v_measured : int option;  (* None: coordinates absent from the run *)
  v_ok : bool;
}

(* Dig the measured value out of a spans document (the Json.List of
   per-config objects Span_export.to_json emits). *)
let measure_in_spans spans o =
  let ( let* ) = Option.bind in
  let* recorders = Json.to_list_opt spans in
  let* recorder =
    List.find_opt
      (fun r ->
        Option.bind (Json.member "config" r) Json.to_string_opt
        = Some o.s_config)
      recorders
  in
  let* hist =
    if o.s_class = "overall" then Json.member "overall" recorder
    else
      let* classes =
        Option.bind (Json.member "classes" recorder) Json.to_list_opt
      in
      List.find_opt
        (fun c ->
          Option.bind (Json.member "class" c) Json.to_string_opt
          = Some o.s_class)
        classes
  in
  Option.bind (Json.member (metric_name o.s_metric) hist) Json.to_int_opt

let evaluate ~spans d =
  List.map
    (fun o ->
      let measured =
        Option.bind (List.assoc_opt o.s_experiment spans) (fun s ->
            measure_in_spans s o)
      in
      { v_objective = o;
        v_measured = measured;
        (* a missing measurement fails: an SLO you cannot evaluate is
           not met *)
        v_ok = (match measured with Some m -> m <= o.s_budget | None -> false)
      })
    d.d_objectives

let all_ok = List.for_all (fun v -> v.v_ok)

let experiments d =
  List.sort_uniq compare (List.map (fun o -> o.s_experiment) d.d_objectives)
