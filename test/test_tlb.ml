(* TLB structure: lookup, LRU, invalidation, capacity. *)
open Ppc

let entry ?(rpn = 0x100) vpn =
  { Tlb.vpn; rpn; inhibited = false; writable = true }

let test_insert_lookup () =
  let t = Tlb.create ~sets:32 ~ways:2 () in
  Tlb.insert t (entry 0x1234);
  (match Tlb.lookup t 0x1234 with
  | Some e -> Alcotest.(check int) "rpn" 0x100 e.Tlb.rpn
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "other vpn misses" true (Tlb.lookup t 0x1235 = None)

let test_update_in_place () =
  let t = Tlb.create ~sets:32 ~ways:2 () in
  Tlb.insert t (entry ~rpn:1 0x40);
  Tlb.insert t (entry ~rpn:2 0x40);
  Alcotest.(check int) "one entry" 1 (Tlb.occupancy t);
  match Tlb.lookup t 0x40 with
  | Some e -> Alcotest.(check int) "latest rpn" 2 e.Tlb.rpn
  | None -> Alcotest.fail "expected hit"

let test_lru_replacement () =
  let t = Tlb.create ~sets:1 ~ways:2 () in
  Tlb.insert t (entry ~rpn:1 0x10);
  Tlb.insert t (entry ~rpn:2 0x20);
  (* touch 0x10 so 0x20 is LRU *)
  ignore (Tlb.lookup t 0x10 : Tlb.entry option);
  Tlb.insert t (entry ~rpn:3 0x30);
  Alcotest.(check bool) "0x10 survives" true (Tlb.lookup t 0x10 <> None);
  Alcotest.(check bool) "0x20 evicted" true (Tlb.lookup t 0x20 = None);
  Alcotest.(check bool) "0x30 present" true (Tlb.lookup t 0x30 <> None)

let test_invalidate_page () =
  let t = Tlb.create ~sets:32 ~ways:2 () in
  Tlb.insert t (entry 0x77);
  Tlb.invalidate_page t 0x77;
  Alcotest.(check bool) "gone" true (Tlb.lookup t 0x77 = None);
  (* invalidating an absent page is a no-op *)
  Tlb.invalidate_page t 0x78

let test_invalidate_all () =
  let t = Tlb.create ~sets:32 ~ways:2 () in
  for i = 0 to 19 do
    Tlb.insert t (entry i)
  done;
  Alcotest.(check int) "filled" 20 (Tlb.occupancy t);
  Tlb.invalidate_all t;
  Alcotest.(check int) "flushed" 0 (Tlb.occupancy t)

let test_peek_no_lru_effect () =
  let t = Tlb.create ~sets:1 ~ways:2 () in
  Tlb.insert t (entry ~rpn:1 0x10);
  Tlb.insert t (entry ~rpn:2 0x20);
  (* peek at 0x10: must NOT refresh it, so it stays LRU and is evicted *)
  ignore (Tlb.peek t 0x10 : Tlb.entry option);
  Tlb.insert t (entry ~rpn:3 0x30);
  Alcotest.(check bool) "peeked entry evicted (LRU untouched)" true
    (Tlb.lookup t 0x10 = None)

let test_count_matching () =
  let t = Tlb.create ~sets:32 ~ways:2 () in
  Tlb.insert t (entry ((0xFF lsl 16) lor 1));
  Tlb.insert t (entry ((0xFF lsl 16) lor 2));
  Tlb.insert t (entry ((0x01 lsl 16) lor 3));
  Alcotest.(check int) "matching vsid 0xFF" 2
    (Tlb.count_matching t (fun vpn -> Addr.vsid_of_vpn vpn = 0xFF))

let test_geometry_validation () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "sets must be power of two" true
    (raises (fun () -> Tlb.create ~sets:33 ~ways:2 ()));
  Alcotest.(check bool) "ways positive" true
    (raises (fun () -> Tlb.create ~sets:32 ~ways:0 ()))

let prop_capacity_never_exceeded =
  QCheck.Test.make ~name:"occupancy never exceeds capacity" ~count:100
    QCheck.(list_of_size (Gen.return 300) (int_bound 0xFFFFF))
    (fun vpns ->
      let t = Tlb.create ~sets:8 ~ways:2 () in
      List.iter (fun vpn -> Tlb.insert t (entry vpn)) vpns;
      Tlb.occupancy t <= Tlb.capacity t)

let prop_insert_then_lookup =
  QCheck.Test.make ~name:"freshly inserted entry is found" ~count:500
    QCheck.(int_bound 0xFFFFFF)
    (fun vpn ->
      let t = Tlb.create ~sets:32 ~ways:2 () in
      Tlb.insert t (entry vpn);
      Tlb.lookup t vpn <> None)

let prop_iter_consistent =
  QCheck.Test.make ~name:"iter visits exactly occupancy entries" ~count:100
    QCheck.(list_of_size (Gen.return 100) (int_bound 0xFFFF))
    (fun vpns ->
      let t = Tlb.create ~sets:16 ~ways:2 () in
      List.iter (fun vpn -> Tlb.insert t (entry vpn)) vpns;
      let n = ref 0 in
      Tlb.iter t (fun _ -> incr n);
      !n = Tlb.occupancy t)

let suite =
  [ Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "update in place" `Quick test_update_in_place;
    Alcotest.test_case "LRU replacement" `Quick test_lru_replacement;
    Alcotest.test_case "invalidate page" `Quick test_invalidate_page;
    Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
    Alcotest.test_case "peek has no LRU effect" `Quick test_peek_no_lru_effect;
    Alcotest.test_case "count matching" `Quick test_count_matching;
    Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
    QCheck_alcotest.to_alcotest prop_capacity_never_exceeded;
    QCheck_alcotest.to_alcotest prop_insert_then_lookup;
    QCheck_alcotest.to_alcotest prop_iter_consistent ]
