(* Request spans: recording is free (Perf counters and experiment tables
   identical with spans armed), Hist.merge is lawful (commutative,
   associative, percentile-stable), the request lifecycle attributes
   costs deterministically, and SLO verdicts gate on the exported
   document. *)
open Ppc
module Policy = Kernel_sim.Policy
module Server = Workloads.Server
module Experiments = Mmu_tricks.Experiments
module Span_export = Mmu_tricks.Span_export
module Slo = Mmu_tricks.Slo
module Json = Mmu_tricks.Json

(* --- Hist.merge -------------------------------------------------------- *)

let hist_of values =
  let h = Hist.create () in
  List.iter (Hist.observe h) values;
  h

(* Everything observable about a histogram. *)
let signature h =
  (Hist.count h, Hist.sum h, Hist.max_value h, Hist.buckets h)

let test_merge_laws () =
  let a = hist_of [ 1; 5; 9; 120; 4096; 4097 ]
  and b = hist_of [ 0; 2; 77; 100_000 ]
  and c = hist_of [ 3; 3; 3 ] in
  let sig_a = signature a in
  Alcotest.(check bool) "commutative" true
    (signature (Hist.merge a b) = signature (Hist.merge b a));
  Alcotest.(check bool) "associative" true
    (signature (Hist.merge (Hist.merge a b) c)
    = signature (Hist.merge a (Hist.merge b c)));
  Alcotest.(check bool) "empty is identity" true
    (signature (Hist.merge a (Hist.create ())) = sig_a);
  Alcotest.(check bool) "inputs untouched" true (signature a = sig_a);
  let m = Hist.merge a b in
  Alcotest.(check int) "counts add" (Hist.count a + Hist.count b)
    (Hist.count m);
  Alcotest.(check int) "sums add" (Hist.sum a + Hist.sum b) (Hist.sum m);
  Alcotest.(check int) "max of maxima"
    (max (Hist.max_value a) (Hist.max_value b))
    (Hist.max_value m)

let test_merge_percentile_stability () =
  (* The percentiles of [merge a b] equal those of a histogram that
     observed the union directly — what lets Runner workers record
     independently and the parent report as if it saw every request. *)
  let rng = Rng.create ~seed:9 in
  let draw () = Rng.int rng 1_000_000 in
  let xs = List.init 500 (fun _ -> draw ()) in
  let ys = List.init 300 (fun _ -> draw ()) in
  let merged = Hist.merge (hist_of xs) (hist_of ys) in
  let union = hist_of (xs @ ys) in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%g stable" (p *. 100.))
        (Hist.percentile union p) (Hist.percentile merged p);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g interpolated stable" (p *. 100.))
        (Hist.percentile_interpolated union p)
        (Hist.percentile_interpolated merged p))
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ]

(* --- the request lifecycle --------------------------------------------- *)

(* Drive a recorder by hand, advancing the perf clock directly, and
   check every charge lands on the request the scheduler is serving. *)
let test_request_lifecycle () =
  let perf = Perf.create () in
  let sp = Span.create ~perf in
  (* disabled: inert, ids are -1, nothing records *)
  Alcotest.(check int) "disabled begin" (-1)
    (Span.request_begin sp ~cls:0 ~arrival:0);
  Span.note_run sp ~cost:100;
  Alcotest.(check int) "disabled records nothing" 0 (Span.requests sp);
  Span.enable sp;
  Span.set_classes sp [| "m/compute"; "m/file" |];
  perf.Perf.cycles <- 1_000;
  let r0 = Span.request_begin sp ~cls:0 ~arrival:400 in
  Span.set_current_request sp r0;
  Span.syscall_begin sp;
  perf.Perf.cycles <- 1_300;
  Span.charge_reload sp ~cost:50 ~htab_missed:false;
  Span.charge_reload sp ~cost:80 ~htab_missed:true;
  Span.syscall_end sp;
  Span.note_run sp ~cost:200;
  (* a second request served by pid 7 after a context switch *)
  let r1 = Span.request_begin sp ~cls:1 ~arrival:1_300 in
  Span.bind_pid sp ~pid:7 ~rid:r1;
  Span.note_context_switch sp ~pid:7 ~cost:90;
  Alcotest.(check int) "switch rebinds current" r1
    (Span.current_request sp);
  Span.note_run sp ~cost:10;
  perf.Perf.cycles <- 2_000;
  Span.request_end sp r1;
  Span.note_context_switch sp ~pid:0 ~cost:60;  (* pid 0 unbound: -1 *)
  Alcotest.(check int) "unbound pid clears current" (-1)
    (Span.current_request sp);
  perf.Perf.cycles <- 2_400;
  Span.request_end sp r0;
  Span.request_end sp r0;  (* idempotent *)
  Alcotest.(check int) "requests" 2 (Span.requests sp);
  Alcotest.(check int) "completed" 2 (Span.completed sp);
  let q0 = Span.request sp r0 and q1 = Span.request sp r1 in
  Alcotest.(check int) "r0 latency includes queueing" 2_000
    q0.Span.q_latency;
  Alcotest.(check int) "r0 syscalls" 1 q0.Span.q_syscalls;
  Alcotest.(check int) "r0 syscall window" 300 q0.Span.q_syscall_cost;
  Alcotest.(check int) "r0 reloads" 2 q0.Span.q_reloads;
  Alcotest.(check int) "r0 reload cost" 130 q0.Span.q_reload_cost;
  Alcotest.(check int) "r0 htab subset" 1 q0.Span.q_htab_misses;
  Alcotest.(check int) "r0 htab cost" 80 q0.Span.q_htab_cost;
  Alcotest.(check int) "r0 run cost" 200 q0.Span.q_run_cost;
  Alcotest.(check int) "r1 latency" 700 q1.Span.q_latency;
  Alcotest.(check int) "r1 charged its switch" 1 q1.Span.q_ctxsw;
  Alcotest.(check int) "r1 switch cost" 90 q1.Span.q_ctxsw_cost;
  Alcotest.(check int) "r1 run cost" 10 q1.Span.q_run_cost;
  let t = Span.totals sp in
  Alcotest.(check int) "totals reload cost" 130 t.Span.t_reload_cost;
  Alcotest.(check int) "totals run cost" 210 t.Span.t_run_cost;
  (* slowest: latency descending, rid breaks ties *)
  (match Span.slowest sp ~top:5 with
  | [ s0; s1 ] ->
      Alcotest.(check int) "slowest first" r0 s0.Span.q_rid;
      Alcotest.(check int) "slowest second" r1 s1.Span.q_rid
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 2 slowest, got %d" (List.length l)));
  Alcotest.(check int) "overall hist saw both" 2
    (Hist.count (Span.hist_latency sp));
  match Span.class_hist sp 1 with
  | Some h -> Alcotest.(check int) "class hist saw r1" 1 (Hist.count h)
  | None -> Alcotest.fail "class 1 has no hist"

(* --- recording is free ------------------------------------------------- *)

let perf_signature p =
  ( p.Perf.cycles,
    p.Perf.idle_cycles,
    p.Perf.mem_refs,
    Perf.tlb_misses p,
    p.Perf.htab_searches,
    Perf.cache_misses p,
    p.Perf.instructions,
    p.Perf.context_switches )

let small_params model =
  { Server.default_params with Server.model; Server.requests = 60 }

let test_spans_are_free () =
  (* Every service model, spans armed vs not, same seed: the Perf
     counters are byte-identical — observation only. *)
  List.iter
    (fun model ->
      let run armed =
        if armed then Span.set_boot_defaults ~enabled:true ();
        Fun.protect
          ~finally:(fun () ->
            Span.set_boot_defaults ~enabled:false ();
            ignore (Span.drain_registered () : Span.t list))
          (fun () ->
            let r =
              Server.measure ~machine:Machine.ppc604_185
                ~policy:Policy.optimized ~params:(small_params model)
                ~seed:11 ()
            in
            perf_signature r.Server.perf)
      in
      Alcotest.(check bool)
        (Server.model_name model ^ ": counters identical with spans on")
        true
        (run false = run true))
    [ Server.Fork_exec; Server.Pool; Server.Shared_mm ]

let test_server_table_identical_under_boot_defaults () =
  (* End to end through the registry: E18's rendered table is unchanged
     when the CLI arms process-wide spans, and the recorders drained
     afterwards actually saw the requests. *)
  let e18 = Option.get (Experiments.find "E18") in
  let plain = e18.Experiments.run ~seed:42 () in
  Span.set_boot_defaults ~enabled:true ();
  let spanned, recorders =
    Fun.protect
      ~finally:(fun () ->
        Span.set_boot_defaults ~enabled:false ();
        ignore (Span.drain_registered () : Span.t list))
      (fun () ->
        let t = e18.Experiments.run ~seed:42 () in
        (t, Span.drain_registered ()))
  in
  Alcotest.(check bool) "table identical" true (plain = spanned);
  let interesting = List.filter Span_export.interesting recorders in
  Alcotest.(check bool) "recorders saw requests" true (interesting <> []);
  List.iter
    (fun sp ->
      Alcotest.(check int)
        (Span.label sp ^ ": every request completed")
        (Span.requests sp) (Span.completed sp))
    interesting

(* --- SLO gating -------------------------------------------------------- *)

let spans_fixture () =
  (* One small armed server run, exported the way `experiment --spans`
     embeds it. *)
  Span.set_boot_defaults ~enabled:true ();
  Fun.protect
    ~finally:(fun () -> Span.set_boot_defaults ~enabled:false ())
    (fun () ->
      ignore
        (Server.measure ~machine:Machine.ppc604_185
           ~policy:Policy.optimized ~params:(small_params Server.Pool)
           ~seed:42 ~label:"optimized" ()
          : Server.result);
      Span_export.to_json
        (List.filter Span_export.interesting (Span.drain_registered ())))

let objective ?(cls = "overall") ?(metric = Slo.P99) ~budget () =
  { Slo.s_experiment = "E18"; s_config = "optimized"; s_class = cls;
    s_metric = metric; s_budget = budget }

let test_slo_verdicts () =
  let spans = [ ("E18", spans_fixture ()) ] in
  let eval objs =
    Slo.evaluate ~spans { Slo.d_seed = 42; d_objectives = objs }
  in
  (* generous budget passes and carries the measurement *)
  (match eval [ objective ~budget:max_int () ] with
  | [ v ] ->
      Alcotest.(check bool) "generous budget ok" true v.Slo.v_ok;
      Alcotest.(check bool) "measured present" true
        (match v.Slo.v_measured with Some m -> m > 0 | None -> false)
  | l -> Alcotest.fail (Printf.sprintf "1 verdict expected, got %d"
                          (List.length l)));
  (* a 1-cycle budget fails *)
  (match eval [ objective ~budget:1 ~metric:Slo.P999 () ] with
  | [ v ] -> Alcotest.(check bool) "tight budget fails" false v.Slo.v_ok
  | _ -> Alcotest.fail "1 verdict expected");
  (* coordinates the run never produced: fails with no measurement *)
  match
    eval
      [ { (objective ~budget:max_int ()) with Slo.s_config = "no-such" } ]
  with
  | [ v ] ->
      Alcotest.(check bool) "missing measurement fails" false v.Slo.v_ok;
      Alcotest.(check bool) "nothing measured" true
        (v.Slo.v_measured = None);
      Alcotest.(check bool) "so all_ok is false" false
        (Slo.all_ok [ v ])
  | _ -> Alcotest.fail "1 verdict expected"

let test_slo_doc_roundtrip () =
  let doc =
    { Slo.d_seed = 7;
      d_objectives =
        [ objective ~budget:123_000 ();
          objective ~cls:"pool/file" ~metric:Slo.P999 ~budget:9 () ] }
  in
  (match Slo.of_json (Slo.to_json doc) with
  | Ok doc' -> Alcotest.(check bool) "roundtrips" true (doc = doc')
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "experiments" [ "E18" ]
    (Slo.experiments doc)

let suite =
  [ Alcotest.test_case "Hist.merge laws" `Quick test_merge_laws;
    Alcotest.test_case "Hist.merge percentile stability" `Quick
      test_merge_percentile_stability;
    Alcotest.test_case "request lifecycle" `Quick test_request_lifecycle;
    Alcotest.test_case "spans are free (all models)" `Slow
      test_spans_are_free;
    Alcotest.test_case "experiment table identical under boot defaults"
      `Slow test_server_table_identical_under_boot_defaults;
    Alcotest.test_case "SLO verdicts" `Quick test_slo_verdicts;
    Alcotest.test_case "SLO document roundtrip" `Quick
      test_slo_doc_roundtrip ]
