type outcome =
  | Yield
  | Sleep of int
  | Done

type entry = {
  task : Task.t;
  step : Kernel.t -> outcome;
  mutable wake_at : int;  (* absolute cycle; 0 = runnable *)
  mutable finished : bool;
}

type t = {
  kernel : Kernel.t;
  mutable entries : entry list;  (* round-robin order *)
}

let create kernel = { kernel; entries = [] }

let add t task step =
  t.entries <- t.entries @ [ { task; step; wake_at = 0; finished = false } ]

let live t = List.length (List.filter (fun e -> not e.finished) t.entries)

(* The earliest wake-up among sleeping processes, if any. *)
let next_wake t =
  List.fold_left
    (fun acc e ->
      if e.finished then acc
      else
        match acc with
        | None -> Some e.wake_at
        | Some w -> Some (min w e.wake_at))
    None t.entries

let same_task a b = a.Task.pid = b.Task.pid

let run t =
  let k = t.kernel in
  let rec loop () =
    let now = Kernel.cycles k in
    let runnable =
      List.filter (fun e -> (not e.finished) && e.wake_at <= now) t.entries
    in
    match runnable with
    | e :: _ ->
        (* rotate: served entries go to the back of the queue *)
        t.entries <- List.filter (fun e' -> e' != e) t.entries @ [ e ];
        (match Kernel.current k with
        | Some cur when same_task cur e.task -> ()
        | Some _ | None -> Kernel.switch_to k e.task);
        let tr = Kernel.trace k in
        let traced = Ppc.Trace.enabled tr in
        let slice_start = if traced then Kernel.cycles k else 0 in
        (match e.step k with
        | Yield -> ()
        | Sleep n -> e.wake_at <- Kernel.cycles k + n
        | Done -> e.finished <- true);
        if traced then
          Ppc.Trace.emit_for tr Ppc.Trace.Run_slice ~pid:e.task.Task.pid ~a:0
            ~b:(Kernel.cycles k - slice_start);
        loop ()
    | [] -> begin
        match next_wake t with
        | None -> ()  (* everyone finished *)
        | Some wake ->
            (* nothing runnable: the idle task gets the CPU *)
            Kernel.idle_for k ~cycles:(max 1 (wake - Kernel.cycles k));
            loop ()
      end
  in
  loop ()
