test/test_tlb.ml: Addr Alcotest Gen List Ppc QCheck QCheck_alcotest Tlb
