lib/kernel_sim/kparams.mli: Addr Ppc
