(** Exporters for {!Ppc.Trace} — the half of the observability layer
    that formats, as opposed to records.

    {!Ppc.Trace} owns the hot-path API (ring buffer, timeline sampler,
    histograms) because the MMU and kernel instrumentation live below
    this library in the dependency order; this module turns a finished
    trace into Chrome trace-event JSON (loadable in Perfetto or
    [chrome://tracing]), machine-readable distribution documents for
    experiment results, and a human-readable text summary. *)

open Ppc

val to_chrome : ?mhz:int -> ?name:string -> Trace.t -> Json.t
(** [to_chrome tr] renders the retained events as a Chrome trace-event
    document ([{"traceEvents": [...]}]).  Timestamps are microseconds:
    simulated cycles divided by [mhz] (default 100, the paper's 604e
    clock).  Span kinds (TLB reloads, context switches, run slices, idle
    windows) become complete events (ph ["X"]) with durations; the rest
    are instants (ph ["i"]).  Events carry the owning task's PID as the
    thread id (0 = kernel/idle) and decoded payloads in [args]; timeline
    samples, when present, add counter tracks (ph ["C"]) of per-interval
    deltas. *)

val hist_to_json : Hist.t -> Json.t
(** Count/sum/max/mean, p50/p90/p99, and the non-empty buckets as
    [[lo, hi, count]] triples. *)

val hists_to_json : Trace.t -> Json.t
(** The trace's three latency histograms keyed by name. *)

val timeline_to_json : Trace.t -> Json.t
(** The sampled counter timeline as [{"fields": [...], "samples":
    [[cycle, v, ...], ...]}] with one column per {!Ppc.Perf} counter —
    [Null] when sampling never fired. *)

val kind_counts_json : Trace.t -> Json.t
(** Event totals by kind (wrap-immune), zero kinds omitted. *)

val observability_json : Trace.t list -> Json.t
(** The per-run document embedded in experiment results when tracing is
    armed: event totals and merged histograms across every kernel the
    run booted, plus one timeline per kernel that sampled. *)

val summary : Trace.t -> string
(** Flamegraph-flavoured text report: event counts with bars, latency
    distributions with percentiles, timeline sample count. *)
