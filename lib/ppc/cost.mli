(** Cycle cost constants for the MMU paths.

    The fixed costs are the ones the paper reports from measurement:

    - a 603 software TLB-miss trap costs 32 cycles just to invoke and
      return from the handler;
    - a 604 hardware table search costs up to 120 cycles and 16 memory
      accesses (we charge a fixed overhead plus the actual memory-access
      costs so short searches are cheaper, long ones approach 120);
    - a 604 hash-table-miss interrupt adds at least 91 cycles before the
      software handler runs.

    Path lengths for the two generations of handler code (original C
    handlers vs the hand-scheduled assembly of §6.1) are also defined
    here; which one a simulation uses is a kernel-configuration choice.
    Kernel-proper path lengths (syscall entry, scheduler, ...) live in the
    kernel simulator, not here. *)

val cache_hit_cycles : int
(** Cycles for a memory reference that hits in L1 (1). *)

val tlb_miss_trap_cycles : int
(** 603: invoke + return overhead of the software TLB-miss handler (32). *)

val htab_miss_trap_cycles : int
(** 604: interrupt overhead when the hardware search misses (91). *)

val hw_search_overhead_cycles : int
(** 604: hardware table-search overhead excluding its memory accesses;
    chosen so a full double-PTEG search with cold PTEs approaches the
    measured 120 cycles. *)

val sw_reload_fast_instr : int
(** Instructions in the hand-optimized assembly TLB reload handler (§6.1):
    uses only the four swapped registers, three loads worst case. *)

val sw_hash_setup_instr : int
(** Extra instructions the software TLB-miss handler needs to emulate the
    604's hash-table search on a 603: computing the primary/secondary
    hash and forming PTEG addresses — the "level of indirection" §6.2
    removes. *)

val sw_reload_slow_instr : int
(** Instructions in the original C reload handler. *)

val sw_reload_slow_stack_refs : int
(** Extra state save/restore memory references of the C handler. *)

val htab_insert_fast_instr : int
(** Instructions to place a PTE into the htab, optimized path. *)

val htab_insert_slow_instr : int
(** Instructions to place a PTE into the htab, original C path. *)

val htab_insert_slow_stack_refs : int
(** Extra state save/restore memory references of the C insert path. *)

val ipi_send_cycles : int
(** Cycles for the shootdown initiator to post one IPI (interrupt
    controller write + ordering). *)

val ipi_ack_wait_cycles : int
(** Cycles the initiator spins waiting for one remote acknowledgement. *)

val ipi_handler_instr : int
(** Instructions of the remote external-interrupt handler around the
    invalidate itself (entry, decode, ack, rfi). *)

val dcbz_cycles : int
(** Cycles for a [dcbz] (data cache block zero): the line is allocated
    and zeroed in the cache with {e no} memory fetch — fast, but it
    evicts whatever lived there.  This is how the kernel's [clear_page]
    zeroes frames (§9 notes the authors avoided dcbz for user [bzero]
    because of exactly this pollution). *)

val prefetch_cycles : int
(** Cycles to issue a software prefetch hint (the fill overlaps
    execution). *)

val zombie_check_instr : int
(** Instructions to run VSID-liveness checks over an overflowing PTEG
    pair during a reload — the in-line cost of the zombie-aware
    replacement the paper rejected in favour of idle-time reclaim. *)

val page_fault_instr : int
(** Instructions on the (C) demand-fault service path, excluding the
    memory references it performs. *)

val us_of_cycles : mhz:int -> int -> float
(** [us_of_cycles ~mhz c] converts a cycle count to microseconds. *)

val mb_per_s : bytes:int -> mhz:int -> cycles:int -> float
(** [mb_per_s ~bytes ~mhz ~cycles] is throughput in MB/s (decimal MB, as
    LmBench reports). *)
