(* Memory system: cycle charging and counter routing. *)
open Ppc

let mk () =
  let machine = Machine.ppc604_185 in
  let perf = Perf.create () in
  (Memsys.create ~machine ~perf, perf, machine)

let test_miss_then_hit_costs () =
  let m, p, machine = mk () in
  Memsys.data_ref m ~source:Cache.User ~inhibited:false ~write:false 0x5000;
  Alcotest.(check int) "miss costs memory latency"
    machine.Machine.mem_latency p.Perf.cycles;
  Alcotest.(check int) "one miss" 1 p.Perf.dcache_misses;
  Memsys.data_ref m ~source:Cache.User ~inhibited:false ~write:false 0x5004;
  Alcotest.(check int) "hit costs one cycle"
    (machine.Machine.mem_latency + 1)
    p.Perf.cycles;
  Alcotest.(check int) "two accesses" 2 p.Perf.dcache_accesses

let test_bypass_costs_latency () =
  let m, p, machine = mk () in
  Memsys.data_ref m ~source:Cache.User ~inhibited:true ~write:true 0x5000;
  Alcotest.(check int) "bypass costs latency" machine.Machine.mem_latency
    p.Perf.cycles;
  Alcotest.(check int) "counted as bypass" 1 p.Perf.dcache_bypasses;
  Alcotest.(check int) "not a miss" 0 p.Perf.dcache_misses

let test_inst_ref () =
  let m, p, _ = mk () in
  Memsys.inst_ref m 0xC0010000;
  Memsys.inst_ref m 0xC0010004;
  Alcotest.(check int) "icache accesses" 2 p.Perf.icache_accesses;
  Alcotest.(check int) "one icache miss" 1 p.Perf.icache_misses

let test_instructions () =
  let m, p, _ = mk () in
  Memsys.instructions m 100;
  Alcotest.(check int) "instructions counted" 100 p.Perf.instructions;
  Alcotest.(check int) "one cycle each" 100 p.Perf.cycles

let test_idle_routing () =
  let m, p, _ = mk () in
  Memsys.instructions m 10;
  Memsys.set_idle m true;
  Memsys.instructions m 7;
  Memsys.set_idle m false;
  Memsys.instructions m 3;
  Alcotest.(check int) "total cycles" 20 p.Perf.cycles;
  Alcotest.(check int) "idle cycles" 7 p.Perf.idle_cycles;
  Alcotest.(check int) "busy" 13 (Perf.busy_cycles p)

let test_copy_lines () =
  let m, p, _ = mk () in
  Memsys.copy_lines m ~source:Cache.Kernel ~src:0x10000 ~dst:0x20000
    ~bytes:4096;
  (* 128 reads + 128 writes *)
  Alcotest.(check int) "256 data references" 256 p.Perf.dcache_accesses

let test_separate_caches () =
  let m, p, _ = mk () in
  (* same physical line through I and D caches: both must miss once *)
  Memsys.inst_ref m 0x7000;
  Memsys.data_ref m ~source:Cache.Kernel ~inhibited:false ~write:false 0x7000;
  Alcotest.(check int) "icache miss" 1 p.Perf.icache_misses;
  Alcotest.(check int) "dcache miss" 1 p.Perf.dcache_misses

let suite =
  [ Alcotest.test_case "miss then hit costs" `Quick test_miss_then_hit_costs;
    Alcotest.test_case "bypass costs latency" `Quick
      test_bypass_costs_latency;
    Alcotest.test_case "instruction fetch" `Quick test_inst_ref;
    Alcotest.test_case "instruction charging" `Quick test_instructions;
    Alcotest.test_case "idle routing" `Quick test_idle_routing;
    Alcotest.test_case "copy lines" `Quick test_copy_lines;
    Alcotest.test_case "split I/D caches" `Quick test_separate_caches ]
