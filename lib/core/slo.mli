(** Declarative tail-latency SLOs over the spans document.

    A budgets file gives cycle budgets to (experiment, config, class,
    metric) coordinates:

    {v
    { "seed": 42,
      "slos": [ { "experiment": "E17", "config": "optimized",
                  "class": "overall", "metric": "p99",
                  "budget_cycles": 400000 } ] }
    v}

    [mmu_sim check --slo FILE] reruns the named experiments with span
    recording armed and evaluates each objective against the measured
    percentile from {!Span_export.to_json}'s document.  Budgets are in
    cycles — the simulation is deterministic per seed, so the gate is
    exact, not statistical.  ["class"] defaults to ["overall"],
    ["metric"] to ["p99"]. *)

type metric = P50 | P99 | P999

val metric_name : metric -> string
val metric_of_string : string -> metric option

type objective = {
  s_experiment : string;
  s_config : string;   (** recorder label, e.g. ["optimized"] *)
  s_class : string;    (** ["overall"] or a class name *)
  s_metric : metric;
  s_budget : int;      (** cycles *)
}

type doc = { d_seed : int; d_objectives : objective list }

val load : string -> (doc, string) result
val of_json : Json.t -> (doc, string) result
val to_json : doc -> Json.t

type verdict = {
  v_objective : objective;
  v_measured : int option;
      (** [None]: the run produced no value at those coordinates *)
  v_ok : bool;  (** measured within budget; a missing measurement fails *)
}

val evaluate : spans:(string * Json.t) list -> doc -> verdict list
(** [spans] maps experiment id to its spans document (the list
    {!Span_export.to_json} returns). *)

val all_ok : verdict list -> bool

val experiments : doc -> string list
(** The distinct experiment ids the objectives name, sorted. *)
