lib/core/report.ml: Array Buffer Float List Printf String
