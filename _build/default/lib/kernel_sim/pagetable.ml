open Ppc

exception Out_of_frames

type entry = {
  rpn : int;
  writable : bool;
  inhibited : bool;
  shared : bool;
  cow : bool;
}

type pte_page = {
  frame : int;                   (* physical frame holding this table *)
  slots : entry option array;    (* 1024 PTEs *)
  mutable live : int;            (* occupied slots *)
}

type t = {
  ctx_pa : Addr.pa;
  pgd_frame : int;
  pgd : pte_page option array;   (* 1024 pgd slots *)
  mutable mapped : int;
}

let entries_per_table = 1024
let pte_entry_bytes = 4

let pgd_index ea = (ea lsr 22) land 0x3FF
let pte_index ea = (ea lsr Addr.page_shift) land 0x3FF

let alloc_frame physmem =
  match Physmem.alloc physmem with
  | Some rpn -> rpn
  | None -> raise Out_of_frames

let create ~physmem ~ctx_pa =
  { ctx_pa;
    pgd_frame = alloc_frame physmem;
    pgd = Array.make entries_per_table None;
    mapped = 0 }

let pgd_rpn t = t.pgd_frame

let pgd_entry_pa t ea =
  (t.pgd_frame lsl Addr.page_shift) + (pgd_index ea * pte_entry_bytes)

let pte_entry_pa page ea =
  (page.frame lsl Addr.page_shift) + (pte_index ea * pte_entry_bytes)

let map t ~physmem ~ea entry =
  let i = pgd_index ea in
  let page =
    match t.pgd.(i) with
    | Some page -> page
    | None ->
        let page =
          { frame = alloc_frame physmem;
            slots = Array.make entries_per_table None;
            live = 0 }
        in
        t.pgd.(i) <- Some page;
        page
  in
  let j = pte_index ea in
  (match page.slots.(j) with
  | None ->
      page.live <- page.live + 1;
      t.mapped <- t.mapped + 1
  | Some _ -> ());
  page.slots.(j) <- Some entry

let unmap t ~ea =
  let i = pgd_index ea in
  match t.pgd.(i) with
  | None -> None
  | Some page -> begin
      let j = pte_index ea in
      match page.slots.(j) with
      | None -> None
      | Some _ as old ->
          page.slots.(j) <- None;
          page.live <- page.live - 1;
          t.mapped <- t.mapped - 1;
          old
    end

let find t ~ea =
  match t.pgd.(pgd_index ea) with
  | None -> None
  | Some page -> page.slots.(pte_index ea)

let walk t ~ea =
  match t.pgd.(pgd_index ea) with
  | None -> (None, [| t.ctx_pa; pgd_entry_pa t ea |])
  | Some page ->
      ( page.slots.(pte_index ea),
        [| t.ctx_pa; pgd_entry_pa t ea; pte_entry_pa page ea |] )

let mapped_count t = t.mapped

let iter t f =
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some page ->
          Array.iteri
            (fun j entry ->
              match entry with
              | None -> ()
              | Some e ->
                  let ea = (i lsl 22) lor (j lsl Addr.page_shift) in
                  f ea e)
            page.slots)
    t.pgd

let destroy t ~physmem =
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some page ->
          Physmem.free physmem page.frame;
          t.pgd.(i) <- None)
    t.pgd;
  Physmem.free physmem t.pgd_frame;
  t.mapped <- 0
