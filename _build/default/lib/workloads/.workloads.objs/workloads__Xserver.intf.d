lib/workloads/xserver.mli: Kernel_sim Ppc
