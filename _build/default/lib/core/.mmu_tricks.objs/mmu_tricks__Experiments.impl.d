lib/core/experiments.ml: Addr Array Config Cost Kernel_sim List Machine Metrics Mmu Os_model Perf Ppc Printf Report Rng String System Workloads
