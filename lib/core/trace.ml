(* Exporters for Ppc.Trace: Chrome trace-event JSON, timeline/histogram
   JSON, and a text summary.  Pure functions of a finished trace — no
   emission paths live here. *)

open Ppc

let span_kind = function
  | Trace.Tlb_reload | Trace.Context_switch | Trace.Run_slice
  | Trace.Idle_window ->
      true
  | _ -> false

let hex n = Printf.sprintf "0x%08x" n

(* Event-specific argument object, decoding the a/b payload. *)
let args_of (e : Trace.event) =
  match e.Trace.e_kind with
  | Trace.Itlb_miss | Trace.Dtlb_miss -> [ ("ea", Json.String (hex e.e_a)) ]
  | Trace.Tlb_reload ->
      [ ("ea", Json.String (hex e.e_a)); ("cycles", Json.Int e.e_b) ]
  | Trace.Tlb_evict ->
      [ ("victim_vpn", Json.String (hex e.e_a));
        ("victim_vsid", Json.Int e.e_b) ]
  | Trace.Htab_probe ->
      [ ("slots_examined", Json.Int e.e_a);
        ("hit", Json.Bool (e.e_b = 1)) ]
  | Trace.Htab_evict ->
      [ ("victim_vsid", Json.Int e.e_a);
        ("victim_live", Json.Bool (e.e_b = 1)) ]
  | Trace.Bat_hit -> [ ("ea", Json.String (hex e.e_a)) ]
  | Trace.Context_switch ->
      [ ("pid", Json.Int e.e_a); ("cycles", Json.Int e.e_b) ]
  | Trace.Run_slice | Trace.Idle_window -> [ ("cycles", Json.Int e.e_b) ]
  | Trace.Flush_page ->
      [ ("ea", Json.String (hex e.e_a)); ("vsid", Json.Int e.e_b) ]
  | Trace.Flush_context ->
      [ ("old_ctx", Json.Int e.e_a); ("new_ctx", Json.Int e.e_b) ]
  | Trace.Page_fault ->
      [ ("ea", Json.String (hex e.e_a));
        ("access",
         Json.String
           (match e.e_b with 0 -> "fetch" | 1 -> "load" | _ -> "store")) ]
  | Trace.Idle_prezero ->
      [ ("rpn", Json.Int e.e_a); ("kept", Json.Bool (e.e_b = 1)) ]
  | Trace.Idle_reclaim ->
      [ ("reclaimed", Json.Int e.e_a); ("slots_scanned", Json.Int e.e_b) ]
  | Trace.Vma_map | Trace.Vma_unmap ->
      [ ("start", Json.String (hex e.e_a)); ("pages", Json.Int e.e_b) ]

(* Counter timelines exported to Chrome counter tracks: per-interval
   deltas of the counters whose rates are worth eyeballing. *)
let counter_tracks =
  [ ("tlb_misses", [ "itlb_misses"; "dtlb_misses" ]);
    ("htab", [ "htab_hits"; "htab_misses" ]);
    ("cache_misses", [ "icache_misses"; "dcache_misses" ]);
    ("page_faults", [ "page_faults" ]);
    ("idle_cycles", [ "idle_cycles" ]) ]

let to_chrome ?(mhz = 100) ?(name = "mmu_sim") tr =
  let mhzf = float_of_int mhz in
  let ts cycle = Json.Float (float_of_int cycle /. mhzf) in
  let meta =
    Json.Obj
      [ ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("name", Json.String "process_name");
        ("args", Json.Obj [ ("name", Json.String name) ]) ]
  in
  (* One thread per PID seen in the ring; tid 0 is the kernel/idle task. *)
  let pids = Hashtbl.create 16 in
  Trace.iter tr (fun e -> Hashtbl.replace pids e.Trace.e_pid ());
  Hashtbl.replace pids 0 ();
  let thread_names =
    Hashtbl.fold
      (fun pid () acc ->
        let tname = if pid = 0 then "kernel/idle" else Printf.sprintf "task %d" pid in
        Json.Obj
          [ ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int pid);
            ("name", Json.String "thread_name");
            ("args", Json.Obj [ ("name", Json.String tname) ]) ]
        :: acc)
      pids []
  in
  let events = ref [] in
  Trace.iter tr (fun e ->
      let base =
        [ ("name", Json.String (Trace.kind_name e.Trace.e_kind));
          ("cat", Json.String "mmu");
          ("pid", Json.Int 1);
          ("tid", Json.Int e.Trace.e_pid) ]
      in
      let ev =
        if span_kind e.Trace.e_kind then
          (* spans are emitted at completion; the start is cycle - dur *)
          Json.Obj
            (base
            @ [ ("ph", Json.String "X");
                ("ts", ts (e.Trace.e_cycle - e.Trace.e_b));
                ("dur", Json.Float (float_of_int e.Trace.e_b /. mhzf));
                ("args", Json.Obj (args_of e)) ])
        else
          Json.Obj
            (base
            @ [ ("ph", Json.String "i");
                ("s", Json.String "t");
                ("ts", ts e.Trace.e_cycle);
                ("args", Json.Obj (args_of e)) ])
      in
      events := ev :: !events);
  (* Counter tracks from the timeline samples: each sample contributes
     the delta since the previous sample, so the track reads as a rate. *)
  let counters = ref [] in
  (match Trace.samples tr with
  | [] -> ()
  | first :: _ as samples ->
      let prev = ref (snd first) in
      let prev_cycle = ref (fst first) in
      List.iteri
        (fun i (cycle, snap) ->
          if i > 0 then begin
            let d = Perf.diff ~after:snap ~before:!prev in
            let fields = Perf.fields d in
            let value name = try List.assoc name fields with Not_found -> 0 in
            List.iter
              (fun (track, series) ->
                counters :=
                  Json.Obj
                    [ ("ph", Json.String "C");
                      ("name", Json.String track);
                      ("pid", Json.Int 1);
                      ("ts", ts !prev_cycle);
                      ("args",
                       Json.Obj
                         (List.map (fun s -> (s, Json.Int (value s))) series))
                    ]
                  :: !counters)
              counter_tracks;
            prev := snap;
            prev_cycle := cycle
          end)
        samples);
  Json.Obj
    [ ("traceEvents",
       Json.List
         ((meta :: thread_names) @ List.rev !events @ List.rev !counters));
      ("displayTimeUnit", Json.String "ms") ]

(* --- machine-readable distributions ---------------------------------- *)

let hist_to_json h =
  Json.Obj
    [ ("count", Json.Int (Hist.count h));
      ("sum", Json.Int (Hist.sum h));
      ("max", Json.Int (Hist.max_value h));
      ("mean", Json.Float (Hist.mean h));
      ("p50", Json.Int (Hist.percentile h 0.50));
      ("p90", Json.Int (Hist.percentile h 0.90));
      ("p99", Json.Int (Hist.percentile h 0.99));
      ("buckets",
       Json.List
         (List.map
            (fun (lo, hi, n) ->
              Json.List [ Json.Int lo; Json.Int hi; Json.Int n ])
            (Hist.buckets h))) ]

let hists_to_json tr =
  Json.Obj
    [ ("htab_probe_len", hist_to_json (Trace.hist_probe tr));
      ("tlb_service_cycles", hist_to_json (Trace.hist_tlb_service tr));
      ("context_switch_cycles", hist_to_json (Trace.hist_ctxsw tr)) ]

let timeline_to_json tr =
  match Trace.samples tr with
  | [] -> Json.Null
  | samples ->
      let field_names = List.map fst (Perf.fields (snd (List.hd samples))) in
      Json.Obj
        [ ("fields",
           Json.List
             (Json.String "cycle"
             :: List.map (fun n -> Json.String n) field_names));
          ("samples",
           Json.List
             (List.map
                (fun (cycle, snap) ->
                  Json.List
                    (Json.Int cycle
                    :: List.map (fun (_, v) -> Json.Int v) (Perf.fields snap)))
                samples)) ]

let kind_counts_json tr =
  Json.Obj
    (List.filter_map
       (fun k ->
         let n = Trace.kind_count tr k in
         if n = 0 then None else Some (Trace.kind_name k, Json.Int n))
       Trace.all_kinds)

(* The per-run observability document embedded in experiment results:
   merged histograms and event counts over every kernel the run booted,
   plus one timeline per kernel that sampled. *)
let observability_json traces =
  let probe = Hist.create () in
  let tlb = Hist.create () in
  let ctxsw = Hist.create () in
  let counts = Array.make (List.length Trace.all_kinds) 0 in
  List.iter
    (fun tr ->
      Hist.merge_into ~into:probe (Trace.hist_probe tr);
      Hist.merge_into ~into:tlb (Trace.hist_tlb_service tr);
      Hist.merge_into ~into:ctxsw (Trace.hist_ctxsw tr);
      List.iteri
        (fun i k -> counts.(i) <- counts.(i) + Trace.kind_count tr k)
        Trace.all_kinds)
    traces;
  let events =
    Json.Obj
      (List.filteri
         (fun i _ -> counts.(i) <> 0)
         (List.mapi
            (fun i k -> (Trace.kind_name k, Json.Int counts.(i)))
            Trace.all_kinds))
  in
  let timelines =
    List.filter_map
      (fun tr ->
        match timeline_to_json tr with Json.Null -> None | j -> Some j)
      traces
  in
  Json.Obj
    [ ("events", events);
      ("histograms",
       Json.Obj
         [ ("htab_probe_len", hist_to_json probe);
           ("tlb_service_cycles", hist_to_json tlb);
           ("context_switch_cycles", hist_to_json ctxsw) ]);
      ("timelines", Json.List timelines) ]

(* --- text summary ----------------------------------------------------- *)

let bar n max_n width =
  if max_n <= 0 then ""
  else String.make (max 0 (n * width / max_n)) '#'

let summary_hist buf name h =
  if not (Hist.is_empty h) then begin
    (* interpolated percentiles: bucket upper bounds overstate skewed
       distributions by up to a power of two *)
    Buffer.add_string buf
      (Printf.sprintf
         "  %s: n=%d mean=%.1f p50~%.1f p90~%.1f p99~%.1f max=%d\n"
         name (Hist.count h) (Hist.mean h)
         (Hist.percentile_interpolated h 0.50)
         (Hist.percentile_interpolated h 0.90)
         (Hist.percentile_interpolated h 0.99)
         (Hist.max_value h));
    let buckets = Hist.buckets h in
    let biggest =
      List.fold_left (fun m (_, _, n) -> max m n) 0 buckets
    in
    List.iter
      (fun (lo, hi, n) ->
        Buffer.add_string buf
          (Printf.sprintf "    %10d..%-10d %8d %s\n" lo hi n
             (bar n biggest 40)))
      buckets
  end

let summary tr =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d events recorded (%d retained, %d dropped)\n"
       (Trace.total tr) (Trace.length tr) (Trace.dropped tr));
  let counted =
    List.filter_map
      (fun k ->
        let n = Trace.kind_count tr k in
        if n = 0 then None else Some (k, n))
      Trace.all_kinds
  in
  let biggest = List.fold_left (fun m (_, n) -> max m n) 0 counted in
  List.iter
    (fun (k, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-16s %10d %s\n" (Trace.kind_name k) n
           (bar n biggest 40)))
    counted;
  Buffer.add_string buf "distributions (cycles unless noted):\n";
  summary_hist buf "htab probe length (PTE slots)" (Trace.hist_probe tr);
  summary_hist buf "tlb-miss service" (Trace.hist_tlb_service tr);
  summary_hist buf "context switch" (Trace.hist_ctxsw tr);
  (match Trace.samples tr with
  | [] -> ()
  | samples ->
      Buffer.add_string buf
        (Printf.sprintf "timeline: %d samples\n" (List.length samples)));
  Buffer.contents buf
