examples/parallel_make.mli:
