(* The parallel policy auto-tuner: fan candidate policies through the
   fault-tolerant Runner, score each on canonical workloads, and keep
   the Pareto front.  This is the paper's §5.2 "adjust the constant
   until hot-spots disappeared" methodology generalized to every knob
   the policy layer exposes. *)

open Ppc

(* --- generic fan-out through the Runner ------------------------------- *)

(* Each task runs in whatever process hosts the attempt; the payload is
   stashed in this process-local slot and the collect hook drains it, so
   it rides the Runner's result pipe back to the supervisor.  That is
   what keeps [--jobs N] byte-identical to a serial run: the data never
   dies with a forked worker. *)
let pending : Json.t option ref = ref None

let blank_table id =
  { Experiments.title = id; header = []; rows = []; notes = [] }

let fan_out ?jobs ?seed ?timeout ?retries tasks =
  let jobs_list =
    List.map
      (fun (id, compute) ->
        ( id,
          fun ?seed () ->
            pending := Some (compute ?seed ());
            blank_table id ))
      tasks
  in
  let saved = !Runner.collect_hook in
  (Runner.collect_hook :=
     fun _ ->
       let v = !pending in
       pending := None;
       v);
  Fun.protect
    ~finally:(fun () -> Runner.collect_hook := saved)
    (fun () ->
      List.map
        (fun (id, outcome, payload) ->
          match payload with
          | Some j -> (id, Ok j)
          | None ->
              let why =
                match outcome with
                | Runner.Done _ -> "task delivered no payload"
                | o -> Runner.describe o
              in
              (id, Error why))
        (Runner.run_collect ?jobs ?seed ?timeout ?retries jobs_list))

(* --- metrics ----------------------------------------------------------- *)

type metric = { m_name : string; m_value : float; m_unit : string }

let metric_json m =
  Json.Obj
    [ ("metric", Json.String m.m_name);
      ("value", Json.Float m.m_value);
      ("unit", Json.String m.m_unit) ]

let metrics_json ms = Json.List (List.map metric_json ms)

let metric_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let flt k = Option.bind (Json.member k j) Json.to_float_opt in
  match (str "metric", flt "value", str "unit") with
  | Some m_name, Some m_value, Some m_unit -> Some { m_name; m_value; m_unit }
  | _ -> None

let metrics_of_json = function
  | Json.List ms ->
      let parsed = List.filter_map metric_of_json ms in
      if List.length parsed = List.length ms then Some parsed else None
  | _ -> None

(* --- workloads --------------------------------------------------------- *)

type workload = {
  w_name : string;
  w_eval : policy:Kernel_sim.Policy.t -> seed:int -> metric list;
}

(* All scoring runs on the paper's main machine. *)
let machine = Machine.ppc604_185

let translation_cost perf =
  let lookups = perf.Perf.itlb_lookups + perf.Perf.dtlb_lookups in
  if lookups = 0 then 0.
  else 1000. *. float_of_int (Perf.busy_cycles perf) /. float_of_int lookups

let translation_metric perf =
  { m_name = "translation_cost";
    m_value = translation_cost perf;
    m_unit = "busy cycles per 1000 translations" }

let full_ptegs snap =
  let h = snap.System.htab_histogram in
  if Array.length h > 8 then h.(8) else 0

let hot_spot_metric perf snap =
  { m_name = "htab_hot_spots";
    m_value = float_of_int (full_ptegs snap + perf.Perf.htab_evicts_live);
    m_unit = "full PTEGs + live evictions" }

let kbuild_default =
  { Workloads.Kbuild.default_params with Workloads.Kbuild.jobs = 12 }

let kbuild ?(params = kbuild_default) () =
  { w_name = "kbuild";
    w_eval =
      (fun ~policy ~seed ->
        let k = System.boot ~machine ~policy ~seed () in
        let (), perf =
          System.measure k (fun () -> Workloads.Kbuild.run k ~params)
        in
        let snap = System.snapshot k in
        [ translation_metric perf;
          { m_name = "tail_latency";
            m_value = Metrics.wall_us ~machine perf;
            m_unit = "us wall-clock (batch: the tail IS the total)" };
          hot_spot_metric perf snap ]) }

let server ?params model =
  let params =
    let base = Option.value params ~default:Workloads.Server.default_params in
    { base with Workloads.Server.model }
  in
  { w_name = "server-" ^ Workloads.Server.model_name model;
    w_eval =
      (fun ~policy ~seed ->
        let k = System.boot ~machine ~policy ~seed () in
        let (hist, _), perf =
          System.measure k (fun () -> Workloads.Server.run k ~params)
        in
        let snap = System.snapshot k in
        [ translation_metric perf;
          { m_name = "tail_latency";
            m_value = float_of_int (Hist.percentile hist 0.99);
            m_unit = "p99 request completion cycles" };
          hot_spot_metric perf snap ]) }

let default_workloads =
  [ kbuild ();
    server Workloads.Server.Pool;
    server
      ~params:
        { Workloads.Server.default_params with Workloads.Server.requests = 120 }
      Workloads.Server.Fork_exec ]

let smoke_workloads =
  [ kbuild
      ~params:
        { Workloads.Kbuild.default_params with
          Workloads.Kbuild.jobs = 4;
          compute_rounds = 6;
          job_data_pages = 128;
          source_pages = 8;
          header_pages = 16 }
      ();
    server
      ~params:
        { Workloads.Server.default_params with Workloads.Server.requests = 80 }
      Workloads.Server.Pool ]

let all_named =
  [ ("kbuild", kbuild ());
    ("server-pool", server Workloads.Server.Pool);
    ( "server-fork_exec",
      server
        ~params:
          { Workloads.Server.default_params with
            Workloads.Server.requests = 120 }
        Workloads.Server.Fork_exec ) ]

(* --- candidates -------------------------------------------------------- *)

type axis = { a_key : string; a_values : string list }

type candidate = {
  c_label : string;
  c_assignment : (string * string) list;
  c_policy : Kernel_sim.Policy.t;
}

let label_of assignment =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) assignment)

let base_candidate ?(label = "paper_default") policy =
  { c_label = label; c_assignment = []; c_policy = policy }

let candidate_of_assignment ~base assignment =
  let policy =
    List.fold_left
      (fun p (k, v) ->
        match Policy.set p k v with
        | Ok p -> p
        | Error e -> invalid_arg ("tuner axis: " ^ e))
      base assignment
  in
  { c_label = label_of assignment; c_assignment = assignment; c_policy = policy }

let grid ~base axes =
  let assignments =
    List.fold_left
      (fun acc ax ->
        List.concat_map
          (fun assign ->
            List.map (fun v -> (ax.a_key, v) :: assign) ax.a_values)
          acc)
      [ [] ] axes
  in
  List.map (fun a -> candidate_of_assignment ~base (List.rev a)) assignments

let default_axes =
  [ { a_key = "vsid_multiplier"; a_values = [ "17"; "64"; "897" ] };
    { a_key = "flush_cutoff"; a_values = [ "4"; "20"; "none" ] };
    { a_key = "tlb_replacement"; a_values = [ "lru"; "fifo"; "random" ] } ]

let smoke_axes =
  [ { a_key = "vsid_multiplier"; a_values = [ "64"; "897" ] };
    { a_key = "flush_cutoff"; a_values = [ "0"; "20" ] };
    { a_key = "tlb_replacement"; a_values = [ "lru"; "fifo" ] } ]

(* --- evaluation -------------------------------------------------------- *)

type eval = {
  e_cand : candidate;
  e_metrics : (string * metric list) list;
}

let task_sep = " @ "

let evaluate ?jobs ?(seed = 42) ?timeout ?retries ~workloads cands =
  (* dedupe by label (the grid and explicit extras can overlap) *)
  let seen = Hashtbl.create 16 in
  let cands =
    List.filter
      (fun c ->
        if Hashtbl.mem seen c.c_label then false
        else begin
          Hashtbl.add seen c.c_label ();
          true
        end)
      cands
  in
  let tasks =
    List.concat_map
      (fun c ->
        List.map
          (fun w ->
            ( c.c_label ^ task_sep ^ w.w_name,
              fun ?seed:(job_seed : int option) () ->
                let seed = Option.value job_seed ~default:seed in
                metrics_json (w.w_eval ~policy:c.c_policy ~seed) ))
          workloads)
      cands
  in
  let results = fan_out ?jobs ~seed ?timeout ?retries tasks in
  let tbl = Hashtbl.create 64 in
  let failures = ref [] in
  List.iter
    (fun (id, r) ->
      match r with
      | Ok j -> Hashtbl.replace tbl id j
      | Error e -> failures := (id, e) :: !failures)
    results;
  let evals =
    List.filter_map
      (fun c ->
        let per_w =
          List.filter_map
            (fun w ->
              let id = c.c_label ^ task_sep ^ w.w_name in
              match Option.bind (Hashtbl.find_opt tbl id) metrics_of_json with
              | Some ms -> Some (w.w_name, ms)
              | None -> None)
            workloads
        in
        (* a candidate with any failed workload cannot be compared *)
        if List.length per_w = List.length workloads then
          Some { e_cand = c; e_metrics = per_w }
        else None)
      cands
  in
  (evals, List.rev !failures)

(* --- scoring and the Pareto front -------------------------------------- *)

let vector e =
  List.concat_map (fun (_, ms) -> List.map (fun m -> m.m_value) ms) e.e_metrics

let dominates a b =
  let va = vector a and vb = vector b in
  List.length va = List.length vb
  && List.for_all2 ( <= ) va vb
  && List.exists2 ( < ) va vb

let pareto evals =
  List.filter
    (fun e -> not (List.exists (fun o -> o != e && dominates o e) evals))
    evals

let score ~base e =
  let vb = vector base and ve = vector e in
  if List.length vb <> List.length ve || vb = [] then infinity
  else
    let ratios = List.map2 (fun v b -> (1. +. v) /. (1. +. b)) ve vb in
    List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios)

(* --- hill climbing ----------------------------------------------------- *)

let index_of v l =
  let rec go i = function
    | [] -> -1
    | x :: tl -> if String.equal x v then i else go (i + 1) tl
  in
  go 0 l

(* Every axis pinned: the candidate's assigned value, else the base
   policy's current one.  Candidates whose label matches a grid label
   are recognized as already evaluated. *)
let full_assignment ~base ~axes partial =
  List.filter_map
    (fun ax ->
      match List.assoc_opt ax.a_key partial with
      | Some v -> Some (ax.a_key, v)
      | None -> (
          match Policy.get base ax.a_key with
          | Ok v -> Some (ax.a_key, v)
          | Error _ -> None))
    axes

let neighbors ~base ~axes cand =
  let full = full_assignment ~base ~axes cand.c_assignment in
  List.concat_map
    (fun ax ->
      match List.assoc_opt ax.a_key full with
      | None -> []
      | Some cur ->
          let i = index_of cur ax.a_values in
          if i < 0 then []
          else
            List.filter_map
              (fun j ->
                if j < 0 || j >= List.length ax.a_values then None
                else
                  let v = List.nth ax.a_values j in
                  let assignment =
                    List.map
                      (fun (k, v0) ->
                        if String.equal k ax.a_key then (k, v) else (k, v0))
                      full
                  in
                  Some (candidate_of_assignment ~base assignment))
              [ i - 1; i + 1 ])
    axes

let best_of ~base evals =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some b -> if score ~base e < score ~base b then Some e else acc)
    None evals

let hill_climb ?jobs ?seed ?timeout ?retries ?(rounds = 4) ~workloads ~axes
    ~base_eval evals0 =
  let basep = base_eval.e_cand.c_policy in
  let seen = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace seen e.e_cand.c_label ()) evals0;
  let all = ref evals0 in
  let failures = ref [] in
  let continue = ref true in
  let round = ref 0 in
  while !continue && !round < rounds do
    incr round;
    match best_of ~base:base_eval !all with
    | None -> continue := false
    | Some b ->
        let prev = score ~base:base_eval b in
        let cands =
          neighbors ~base:basep ~axes b.e_cand
          |> List.filter (fun c -> not (Hashtbl.mem seen c.c_label))
        in
        if cands = [] then continue := false
        else begin
          List.iter (fun c -> Hashtbl.replace seen c.c_label ()) cands;
          let evals, fails =
            evaluate ?jobs ?seed ?timeout ?retries ~workloads cands
          in
          failures := !failures @ fails;
          all := !all @ evals;
          let now =
            match best_of ~base:base_eval !all with
            | Some b' -> score ~base:base_eval b'
            | None -> prev
          in
          if not (now < prev) then continue := false
        end
  done;
  (!all, !failures)

(* --- the whole tuning run ---------------------------------------------- *)

type result = {
  r_base : eval;
  r_evals : eval list;
  r_front : eval list;
  r_winner : eval;
  r_failures : (string * string) list;
}

let tune ?jobs ?(seed = 42) ?timeout ?retries ?rounds
    ?(base = Policy.paper_default) ?(base_label = "paper_default")
    ?(extra = []) ~workloads ~axes () =
  let cands = (base_candidate ~label:base_label base :: grid ~base axes) @ extra in
  let evals, fails = evaluate ?jobs ~seed ?timeout ?retries ~workloads cands in
  let base_eval =
    match
      List.find_opt (fun e -> String.equal e.e_cand.c_label base_label) evals
    with
    | Some e -> e
    | None ->
        failwith
          ("tuner: the base policy '" ^ base_label ^ "' failed to evaluate")
  in
  let evals, fails2 =
    hill_climb ?jobs ~seed ?timeout ?retries ?rounds ~workloads ~axes
      ~base_eval evals
  in
  let front = pareto evals in
  let winner =
    match best_of ~base:base_eval front with
    | Some w -> w
    | None -> base_eval
  in
  { r_base = base_eval;
    r_evals = evals;
    r_front = front;
    r_winner = winner;
    r_failures = fails @ fails2 }

let on_front result label =
  List.exists (fun e -> String.equal e.e_cand.c_label label) result.r_front

(* --- the committed document -------------------------------------------- *)

let schema = "mmu-tricks/tuner-v1"

let round6 f = Float.round (f *. 1e6) /. 1e6

let doc ~seed ~axes ~workloads result =
  let front_labels = List.map (fun e -> e.e_cand.c_label) result.r_front in
  let cand_json e =
    Json.Obj
      [ ("label", Json.String e.e_cand.c_label);
        ( "assignment",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.String v)) e.e_cand.c_assignment)
        );
        ("score", Json.Float (round6 (score ~base:result.r_base e)));
        ( "pareto",
          Json.Bool (List.exists (String.equal e.e_cand.c_label) front_labels)
        );
        ( "metrics",
          Json.Obj
            (List.map
               (fun (w, ms) ->
                 ( w,
                   metrics_json
                     (List.map (fun m -> { m with m_value = round6 m.m_value })
                        ms) ))
               e.e_metrics) ) ]
  in
  Json.Obj
    ([ ("schema", Json.String schema);
       ("seed", Json.Int seed);
       ("base", Json.String result.r_base.e_cand.c_label);
       ("winner", Json.String result.r_winner.e_cand.c_label);
       ( "axes",
         Json.List
           (List.map
              (fun a ->
                Json.Obj
                  [ ("key", Json.String a.a_key);
                    ( "values",
                      Json.List
                        (List.map (fun v -> Json.String v) a.a_values) ) ])
              axes) );
       ( "workloads",
         Json.List (List.map (fun w -> Json.String w.w_name) workloads) );
       ( "pareto_front",
         Json.List (List.map (fun l -> Json.String l) front_labels) );
       ("candidates", Json.List (List.map cand_json result.r_evals)) ]
    @
    if result.r_failures = [] then []
    else
      [ ( "failures",
          Json.List
            (List.map
               (fun (id, e) ->
                 Json.Obj
                   [ ("id", Json.String id); ("error", Json.String e) ])
               result.r_failures) ) ])

(* --- explaining a winner ------------------------------------------------ *)

let metric_table w_name metrics =
  { Experiments.title = "tuner workload " ^ w_name;
    header = [ "metric"; "value"; "unit" ];
    rows =
      List.map
        (fun m -> [ m.m_name; Printf.sprintf "%.6g" m.m_value; m.m_unit ])
        metrics;
    notes = [] }

(* Rerun the workloads under one policy with the attribution profiler
   armed and package the result as a results document, so the generic
   Explain machinery (the one behind [mmu_sim explain]) can rank the
   deltas and name the responsible PID/segment accounts. *)
let profiled_doc ~seed ~workloads policy =
  Profile.set_boot_defaults ~enabled:true ();
  Fun.protect
    ~finally:(fun () ->
      Profile.set_boot_defaults ~enabled:false ();
      ignore (Profile.drain_registered () : Profile.t list))
    (fun () ->
      let entries =
        List.map
          (fun w ->
            let ms = w.w_eval ~policy ~seed in
            let profs = Profile.drain_registered () in
            (w.w_name, metric_table w.w_name ms, Profile_export.to_json profs))
          workloads
      in
      let tables = List.map (fun (n, t, _) -> (n, t)) entries in
      let obs =
        List.map (fun (n, _, p) -> (n, Json.Obj [ ("profile", p) ])) entries
      in
      let json = Baseline.doc_to_json ~observability:obs ~seed tables in
      match Baseline.doc_of_json json with
      | Ok doc -> (doc, json)
      | Error e -> failwith ("tuner: internal results document invalid: " ^ e))

let explain ?top ?(seed = 42) ~workloads ~base ~candidate () =
  let a_doc, a_json = profiled_doc ~seed ~workloads base.c_policy in
  let b_doc, b_json = profiled_doc ~seed ~workloads candidate.c_policy in
  Explain.explain_docs ?top ~a_doc ~a_json ~b_doc ~b_json ()
  |> List.map Explain.render_report
