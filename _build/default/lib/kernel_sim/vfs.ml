type file = {
  fname : string;
  frames : int option array;
  mutable resident : int;
}

type t = {
  physmem : Physmem.t;
  files : (string, file) Hashtbl.t;
}

let create ~physmem = { physmem; files = Hashtbl.create 16 }

let create_file t ~name ~pages =
  if Hashtbl.mem t.files name then invalid_arg "Vfs.create_file: exists";
  if pages <= 0 then invalid_arg "Vfs.create_file: pages";
  let f = { fname = name; frames = Array.make pages None; resident = 0 } in
  Hashtbl.replace t.files name f;
  f

let lookup t name = Hashtbl.find_opt t.files name

let file_pages f = Array.length f.frames
let name f = f.fname
let resident_pages f = f.resident

let page_frame t f ~page =
  if page < 0 || page >= Array.length f.frames then None
  else
    match f.frames.(page) with
    | Some rpn -> Some (rpn, false)
    | None -> begin
        match Physmem.alloc t.physmem with
        | None -> None
        | Some rpn ->
            f.frames.(page) <- Some rpn;
            f.resident <- f.resident + 1;
            Some (rpn, true)
      end

let evict t f =
  Array.iteri
    (fun i frame ->
      match frame with
      | None -> ()
      | Some rpn ->
          Physmem.free t.physmem rpn;
          f.frames.(i) <- None)
    f.frames;
  f.resident <- 0
