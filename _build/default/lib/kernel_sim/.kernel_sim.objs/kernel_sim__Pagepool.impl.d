lib/kernel_sim/pagepool.ml: Addr Cache Kparams Memsys Perf Physmem Policy Ppc Queue
