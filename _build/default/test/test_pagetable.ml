(* Linux two-level page tables. *)
open Ppc
module Physmem = Kernel_sim.Physmem
module Pagetable = Kernel_sim.Pagetable

let mk () =
  let pm = Physmem.create ~ram_bytes:(8 * 1024 * 1024) ~reserved_bytes:4096 in
  (Pagetable.create ~physmem:pm ~ctx_pa:0x80, pm)

let entry ?(writable = true) rpn =
  { Pagetable.rpn; writable; inhibited = false; shared = false; cow = false }

let test_map_find () =
  let pt, pm = mk () in
  Pagetable.map pt ~physmem:pm ~ea:0x01800123 (entry 0x42);
  (match Pagetable.find pt ~ea:0x01800FFF with
  | Some e -> Alcotest.(check int) "same page" 0x42 e.Pagetable.rpn
  | None -> Alcotest.fail "expected mapping");
  Alcotest.(check bool) "other page unmapped" true
    (Pagetable.find pt ~ea:0x01801000 = None)

let test_walk_refs () =
  let pt, pm = mk () in
  (* empty: walk touches ctx pointer + pgd entry = 2 loads *)
  let r, refs = Pagetable.walk pt ~ea:0x01800000 in
  Alcotest.(check bool) "unmapped" true (r = None);
  Alcotest.(check int) "2 loads when pgd empty" 2 (Array.length refs);
  Alcotest.(check int) "first load is the context" 0x80 refs.(0);
  Pagetable.map pt ~physmem:pm ~ea:0x01800000 (entry 0x1);
  let r, refs = Pagetable.walk pt ~ea:0x01800000 in
  Alcotest.(check bool) "mapped" true (r <> None);
  Alcotest.(check int) "3 loads worst case" 3 (Array.length refs);
  (* the pgd entry and pte entry live in distinct frames *)
  Alcotest.(check bool) "distinct frames" true
    (Addr.rpn_of_pa refs.(1) <> Addr.rpn_of_pa refs.(2))

let test_unmap () =
  let pt, pm = mk () in
  Pagetable.map pt ~physmem:pm ~ea:0x01800000 (entry 0x9);
  (match Pagetable.unmap pt ~ea:0x01800000 with
  | Some e -> Alcotest.(check int) "returned entry" 0x9 e.Pagetable.rpn
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "gone" true (Pagetable.find pt ~ea:0x01800000 = None);
  Alcotest.(check bool) "second unmap none" true
    (Pagetable.unmap pt ~ea:0x01800000 = None);
  Alcotest.(check int) "count zero" 0 (Pagetable.mapped_count pt)

let test_remap_updates () =
  let pt, pm = mk () in
  Pagetable.map pt ~physmem:pm ~ea:0x01800000 (entry 0x1);
  Pagetable.map pt ~physmem:pm ~ea:0x01800000 (entry 0x2);
  Alcotest.(check int) "count stays 1" 1 (Pagetable.mapped_count pt);
  match Pagetable.find pt ~ea:0x01800000 with
  | Some e -> Alcotest.(check int) "updated" 0x2 e.Pagetable.rpn
  | None -> Alcotest.fail "expected mapping"

let test_iter () =
  let pt, pm = mk () in
  let eas = [ 0x01800000; 0x01801000; 0x40000000; 0x7FFFF000 ] in
  List.iteri
    (fun i ea -> Pagetable.map pt ~physmem:pm ~ea (entry i))
    eas;
  let seen = ref [] in
  Pagetable.iter pt (fun ea _ -> seen := ea :: !seen);
  Alcotest.(check (list int)) "iter visits all page bases"
    (List.sort compare eas)
    (List.sort compare !seen)

let test_destroy_frees_frames () =
  let pt, pm = mk () in
  let before = Physmem.free_frames pm in
  Pagetable.map pt ~physmem:pm ~ea:0x01800000 (entry 0x1);
  Pagetable.map pt ~physmem:pm ~ea:0x40000000 (entry 0x2);
  Alcotest.(check bool) "directory frames consumed" true
    (Physmem.free_frames pm < before);
  Pagetable.destroy pt ~physmem:pm;
  (* +1: the pgd frame allocated at create is also released *)
  Alcotest.(check int) "all directory frames back" (before + 1)
    (Physmem.free_frames pm)

let test_out_of_frames () =
  let pm = Physmem.create ~ram_bytes:(2 * 4096) ~reserved_bytes:0 in
  let pt = Pagetable.create ~physmem:pm ~ctx_pa:0 in
  (* one frame left: first map consumes it for the pte page *)
  Pagetable.map pt ~physmem:pm ~ea:0 (entry 0x1);
  match Pagetable.map pt ~physmem:pm ~ea:0x00400000 (entry 0x2) with
  | exception Pagetable.Out_of_frames -> ()
  | () -> Alcotest.fail "expected Out_of_frames"

let prop_map_walk_agree =
  QCheck.Test.make ~name:"walk returns exactly what map installed" ~count:100
    QCheck.(
      list_of_size (Gen.return 30)
        (pair (int_bound 0xBFFFF) (int_bound 0xFFFFF)))
    (fun pairs ->
      let pt, pm = mk () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (epn, rpn) ->
          let ea = epn lsl Addr.page_shift in
          Pagetable.map pt ~physmem:pm ~ea (entry rpn);
          Hashtbl.replace model epn rpn)
        pairs;
      Hashtbl.fold
        (fun epn rpn ok ->
          ok
          &&
          match Pagetable.walk pt ~ea:(epn lsl Addr.page_shift) with
          | Some e, _ -> e.Pagetable.rpn = rpn
          | None, _ -> false)
        model true)

let suite =
  [ Alcotest.test_case "map/find" `Quick test_map_find;
    Alcotest.test_case "walk reference addresses" `Quick test_walk_refs;
    Alcotest.test_case "unmap" `Quick test_unmap;
    Alcotest.test_case "remap updates in place" `Quick test_remap_updates;
    Alcotest.test_case "iter" `Quick test_iter;
    Alcotest.test_case "destroy frees directory frames" `Quick
      test_destroy_frees_frames;
    Alcotest.test_case "out of frames" `Quick test_out_of_frames;
    QCheck_alcotest.to_alcotest prop_map_walk_agree ]
