test/test_physmem.ml: Alcotest Gen Hashtbl Kernel_sim List Option QCheck QCheck_alcotest
