test/test_pagepool.ml: Alcotest Cache Kernel_sim Machine Memsys Option Perf Ppc
