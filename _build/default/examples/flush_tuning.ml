(* Tuning the range-flush cutoff (§7): how large must an mmap/munmap
   range be before resetting the whole context beats searching the hash
   table for each page?  The paper settled on 20 pages.

     dune exec examples/flush_tuning.exe *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Config = Mmu_tricks.Config
module Report = Mmu_tricks.Report
module Measure = Workloads.Measure

(* One mmap+touch+munmap cycle over [pages] pages, followed by a burst of
   working-set activity that pays for any translations the flush threw
   away. *)
let cycle k ~pages ~data_base =
  let ea = Kernel.sys_mmap k ~pages ~writable:true in
  for i = 0 to min 7 (pages - 1) do
    Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
  done;
  Kernel.sys_munmap k ~ea ~pages;
  for i = 0 to 15 do
    Kernel.touch k Mmu.Load (data_base + (i * Addr.page_size))
  done

let measure ~cutoff ~range_pages =
  let k =
    Kernel.boot ~machine:Machine.ppc603_133
      ~policy:(Config.optimized_with_cutoff cutoff) ~seed:9 ()
  in
  let t = Kernel.spawn k ~data_pages:32 () in
  Kernel.switch_to k t;
  let data_base = Kernel_sim.Mm.user_text_base + (16 * Addr.page_size) in
  (* warm up *)
  cycle k ~pages:range_pages ~data_base;
  let iters = 20 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to iters do
          cycle k ~pages:range_pages ~data_base
        done)
  in
  Cost.us_of_cycles ~mhz:133 cycles /. float_of_int iters

let () =
  print_endline
    "us per mmap+munmap cycle on a 133MHz 603, by range size and cutoff:";
  print_newline ();
  let cutoffs = [ None; Some 5; Some 20; Some 50 ] in
  let header =
    "range"
    :: List.map
         (function
           | None -> "precise"
           | Some c -> Printf.sprintf "cutoff %d" c)
         cutoffs
  in
  let rows =
    List.map
      (fun range_pages ->
        string_of_int range_pages
        :: List.map
             (fun cutoff ->
               Report.fmt_us (measure ~cutoff ~range_pages))
             cutoffs)
      [ 4; 16; 32; 64; 128 ]
  in
  Report.table ~header ~rows;
  print_newline ();
  print_endline
    "Reading: precise flushing scales with the range (16 htab references";
  print_endline
    "per page); above the cutoff a whole-context VSID reset is O(1), at";
  print_endline
    "the price of re-faulting the working set.  The paper's choice of 20";
  print_endline "pages sits where those curves cross (mmap: 3240us -> 41us)."
