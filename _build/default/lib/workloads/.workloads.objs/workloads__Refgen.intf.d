lib/workloads/refgen.mli: Addr Ppc Rng
