lib/ppc/bat.ml: Addr Array
