(** The translation engine: BATs, TLBs, hashed page table and reload paths.

    Every access first tries block address translation; a BAT hit bypasses
    the page machinery entirely.  Otherwise the segment register supplies
    the VSID, the split TLBs are consulted, and a miss triggers the
    machine's reload mechanism:

    - {b 604 (hardware search)}: the hardware searches both PTEGs of the
      htab (its PTE reads go through the data cache — the pollution of
      §8).  On a hash-table miss a 91-cycle interrupt runs the software
      fill: walk the Linux page tables, place the PTE into the htab
      (possibly displacing a valid entry), and retry.
    - {b 603 with htab} ("emulating the 604", the pre-§6.2 code): a
      32-cycle trap runs a software htab search, falling through to the
      same software fill on a miss.
    - {b 603 without htab} (§6.2, "improving hash tables away"): the trap
      handler walks the Linux PTE tree directly — three loads worst case —
      and reloads the TLB; no htab exists at all.

    The handlers come in two generations ({e fast}: the hand-scheduled
    assembly of §6.1 using only the swapped registers; {e slow}: the
    original C handlers with state save/restore), selected by [knobs].

    The reload mechanisms are pluggable backends: {!Reload_engine}
    selects one from the machine and the [use_htab] knob, and a single
    generic reload sequence here is driven by the backend's declarative
    cost row.  A {!Shadow} checker can be attached to cross-validate
    every access against the reference translator (BATs + backing page
    tables, no caches, no costs) from which {!probe} is also derived.

    The engine knows nothing about processes: the kernel supplies a
    [backing] walker resolving an effective address against the current
    address space, a VSID-liveness predicate for zombie accounting, and
    programs segments/BATs. *)

(** Reload-path configuration (the §6 optimizations). *)
type knobs = {
  use_htab : bool;
      (** on a software-reload machine, search the htab before the page
          tables (604 emulation).  Ignored (forced true) on hardware-reload
          machines, which cannot bypass the htab. *)
  fast_reload : bool;
      (** hand-optimized assembly handlers vs original C handlers. *)
  cache_inhibit_pagetables : bool;
      (** §8: make page-table and htab references cache-inhibited so
          reloads do not pollute the data cache. *)
  htab_replacement : [ `Arbitrary | `Second_chance | `Zombie_aware ];
      (** victim selection on htab overflow: the paper's arbitrary
          choice, R-bit second chance, or the rejected design that
          checks VSID liveness in the reload path ([`Zombie_aware],
          which also pays {!Cost.zombie_check_instr} per eviction). *)
  tlb_replacement : Tlb.replacement;
      (** victim selection on TLB set overflow; {!Tlb.Lru} is the
          hardware's behavior, the alternatives are policy ablations. *)
}

val default_knobs : knobs
(** htab in use, fast handlers, cacheable page tables, arbitrary htab
    replacement, LRU TLB replacement. *)

(** Result of the kernel's page-table walk for one effective address.
    [pt_refs] are the physical addresses of the page-table entries the
    walk touched (at most 3 on the Linux two-level tree); the MMU drives
    them through the data cache. *)
type walk_result =
  | Mapped of {
      rpn : int;
      wimg : Pte.wimg;
      protection : Pte.protection;
      pt_refs : Addr.pa array;
    }
  | Unmapped of { pt_refs : Addr.pa array }

type backing = { walk : Addr.ea -> walk_result }
(** The kernel-provided resolver for the {e current} address space. *)

type access_kind =
  | Fetch
  | Load
  | Store

type access_result =
  | Ok of Addr.pa
  | Fault  (** no translation (or a store to a read-only page): the caller
               must service the fault and retry *)

type t

val create :
  ?htab_base_pa:Addr.pa ->
  ?cpus:int ->
  machine:Machine.t ->
  memsys:Memsys.t ->
  knobs:knobs ->
  backing:backing ->
  rng:Rng.t ->
  unit ->
  t
(** Builds segments, BAT banks, TLBs and (unless a software-reload machine
    with [use_htab = false]) the hashed page table, located at
    [htab_base_pa] in physical memory.

    [cpus] (default 1) builds that many per-CPU segment files, BAT banks
    and split TLB pairs behind the one shared memory system and htab;
    {!set_cpu} selects whose structures the access path uses.  At
    [cpus = 1] every path is byte-identical to the single-CPU engine.
    @raise Invalid_argument when [cpus < 1]. *)

val machine : t -> Machine.t
val memsys : t -> Memsys.t
val knobs : t -> knobs

val engine : t -> Reload_engine.t
(** The reload backend selected at {!create} time. *)

val segments : t -> Segment.t
val ibat : t -> Bat.t
val dbat : t -> Bat.t
val itlb : t -> Tlb.t
val dtlb : t -> Tlb.t
(** The {e current} CPU's structures (CPU 0 until {!set_cpu}). *)

val n_cpus : t -> int

val cur_cpu : t -> int
(** The CPU whose segments/BATs/TLBs the access path currently uses. *)

val set_cpu : t -> int -> unit
(** Swap the access path onto another CPU's segment file, BAT banks and
    TLBs.  Pure bookkeeping — no cost is charged (the kernel charges
    context-switch work where it belongs).
    @raise Invalid_argument for an out-of-range CPU. *)

val segments_of : t -> cpu:int -> Segment.t
val ibat_of : t -> cpu:int -> Bat.t
val dbat_of : t -> cpu:int -> Bat.t
(** A specific CPU's structures, current or not — boot programs every
    CPU's kernel segments and BATs through these. *)

val cpu_itlb_misses : t -> cpu:int -> int
val cpu_dtlb_misses : t -> cpu:int -> int
(** Per-CPU slices of the shared [itlb_misses]/[dtlb_misses] totals. *)

val htab : t -> Htab.t option
(** [None] exactly when the htab has been "improved away" (§6.2). *)

val set_backing : t -> backing -> unit
(** Replace the walker (the kernel does this as [current] changes, or
    installs one dispatching on [current] itself). *)

val set_vsid_is_zombie : t -> (int -> bool) -> unit
(** Install the liveness predicate used to classify htab eviction victims
    and to drive idle reclaim. *)

val set_vsid_is_kernel : t -> (int -> bool) -> unit
(** Install the kernel-ownership predicate the attribution profiler's
    TLB slot census classifies entries with (defaults to
    [fun _ -> false]: everything counts as user until the kernel
    identifies its VSIDs). *)

val access : t -> access_kind -> Addr.ea -> access_result
(** [access t kind ea] translates and performs one reference, charging all
    costs (trap overheads, handler path lengths, table-search and
    page-walk cache traffic, and the final data/instruction reference). *)

val access_pa : t -> access_kind -> Addr.ea -> int
(** {!access} returning the physical address directly, or [-1] on a
    fault.  This is the allocation-free form the kernel's access loops
    use: on a TLB hit with no shadow attached, nothing is built on the
    heap.  [access] is a thin wrapper around it. *)

val probe : t -> access_kind -> Addr.ea -> Addr.pa option
(** [probe t kind ea] is the translation the architecture defines for
    [ea], computed with {e no} cost charging and {e no} state mutation —
    the test oracle.  Returns [None] when the access would fault.
    Derived from {!reference_outcome}, so it cannot disagree with the
    shadow checker: stale TLB or htab contents never leak into a probe. *)

val reference_outcome : t -> access_kind -> Addr.ea -> Shadow.outcome
(** The reference translator: resolve [ea] against the architectural
    state only (BAT registers, then the backing page-table walk),
    applying the same store-to-read-only protection rule as [access].
    Cache-free, cost-free, mutation-free. *)

val attach_shadow : t -> Shadow.t -> unit
(** Cross-validate every subsequent [access] against
    {!reference_outcome}, recording divergences in the checker. *)

val shadow : t -> Shadow.t option

val flush_page : t -> Addr.ea -> unit
(** Precise per-page flush for the {e current} segment contents: [tlbie]
    on both TLBs plus an htab search-and-invalidate (16 memory references
    worst case), charging costs.  Counts one [flush_pte_searches]. *)

val flush_page_for_vsid : t -> vsid:int -> Addr.ea -> unit
(** Like [flush_page] but for an explicit VSID (flushing another task's
    mappings). *)

val invalidate_tlbs : t -> unit
(** Drop every TLB entry on the {e current} CPU (cost-free bookkeeping;
    used at boot). *)

val shootdown_page : t -> vsid:int -> targets:int -> Addr.ea -> unit
(** One cross-CPU TLB shootdown round for one page.  [targets] is a
    bitmask of {e remote} CPUs: for each, the initiator charges
    {!Cost.ipi_send_cycles} and spins {!Cost.ipi_ack_wait_cycles}, and
    the remote charges {!Cost.ipi_handler_instr} plus the [tlbie] before
    invalidating the page in its own TLBs — all on the shared clock.
    [targets = 0] is a complete no-op, so single-CPU runs never pay
    anything here.  Counts [tlb_shootdowns], [ipis_sent] and
    [remote_tlb_invalidates]. *)

val shootdown_range : t -> targets:int -> (int * Addr.ea) list -> unit
(** Batched cross-CPU shootdown for a whole precise-flush range: one IPI
    round covers every [(vsid, ea)] page in the list.  Each remote CPU in
    the [targets] bitmask charges {!Cost.ipi_send_cycles}, one
    {!Cost.ipi_handler_instr}, a [tlbie] per page, and one
    {!Cost.ipi_ack_wait_cycles} — versus a full round {e per page} under
    {!shootdown_page}.  Counts one [tlb_shootdowns] round, [ipis_sent]
    once per remote CPU, [remote_tlb_invalidates] per (cpu, page), and
    adds the page count to [shootdown_batch_pages].  A zero [targets] or
    empty list is a complete no-op. *)

val invalidate_all_cpus : t -> unit
(** Drop every TLB entry on {e every} CPU — the §7 escape hatch the VSID
    counter wrap fires.  Cost-free bookkeeping; the caller charges its
    path. *)

val reclaim_zombies : t -> max_ptes:int -> int
(** Idle-task zombie reclaim (§7): scan up to [max_ptes] htab slots from
    the persistent cursor, invalidating zombie PTEs; charges the scan's
    memory references.  Returns the number reclaimed; 0 when no htab. *)

val kernel_tlb_entries : t -> is_kernel_vsid:(int -> bool) -> int
(** Valid TLB entries (I+D) whose VSID satisfies the predicate — the
    kernel TLB footprint measure of §5.1. *)

val tlb_occupancy : t -> int
(** Total valid TLB entries (I+D). *)

val test_skip_tlb_invalidations : int ref
(** Test-only fault injection: while nonzero, {!flush_page_for_vsid}
    charges its costs and invalidates the htab slot but {e skips} the
    TLB invalidations, planting exactly the stale-translation bug the
    shadow checker exists to catch.  Positive values count down (skip
    the next [n] page flushes); [-1] skips all.  Leave at [0] (the
    default) for correct operation. *)

val test_skip_shootdowns : int ref
(** Test-only fault injection for SMP: while nonzero, {!shootdown_page}
    charges the full IPI round but {e skips} the remote TLB
    invalidations — the stale-remote-TLB bug class the cross-CPU shadow
    checking exists to catch.  Positive values count down (skip the next
    [n] shootdown rounds); [-1] skips all.  Leave at [0] (the default)
    for correct operation. *)
