lib/core/metrics.ml: Cost Machine Perf Ppc
