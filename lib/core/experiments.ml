open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Lmbench = Workloads.Lmbench
module Kbuild = Workloads.Kbuild
module Msr = Workloads.Measure

type table = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let print t =
  Report.section t.title;
  Report.table ~header:t.header ~rows:t.rows;
  List.iter (fun n -> Printf.printf "  %s\n" n) t.notes;
  if t.notes <> [] then print_newline ()

let lm ~seed machine policy = Lmbench.run ~machine ~policy ~seed ()

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"

let vs measured paper = Printf.sprintf "%s/%s" measured paper

(* ------------------------------------------------------------- Table 1 *)

let table1 ?(seed = 42) () =
  let configs =
    [ ("603 180MHz (htab)", Machine.ppc603_180, Policy.optimized);
      ("603 180MHz (no htab)", Machine.ppc603_180, Config.optimized_no_htab);
      ("604 185MHz", Machine.ppc604_185, Policy.optimized);
      ("604 200MHz", Machine.ppc604_200, Policy.optimized) ]
  in
  let paper =
    [ (1.8, 4.0, 17.0, 69.0, 33.0);
      (1.7, 3.0, 19.0, 73.0, 36.0);
      (1.6, 4.0, 21.0, 88.0, 39.0);
      (1.6, 4.0, 20.0, 92.0, 41.0) ]
  in
  let rows =
    List.map2
      (fun (name, machine, policy) (p1, p2, p3, p4, p5) ->
        let s = lm ~seed machine policy in
        [ name;
          vs (Report.fmt_ms s.Lmbench.pstart_ms) (Report.fmt_ms p1);
          vs (Report.fmt_us s.Lmbench.ctxsw2_us) (Report.fmt_us p2);
          vs (Report.fmt_us s.Lmbench.pipe_lat_us) (Report.fmt_us p3);
          vs (Report.fmt_mbs s.Lmbench.pipe_bw_mbs) (Report.fmt_mbs p4);
          vs (Report.fmt_mbs s.Lmbench.file_reread_mbs) (Report.fmt_mbs p5) ])
      configs paper
  in
  { title = "Table 1 - LmBench summary for direct (no-htab) TLB reloads [E4]";
    header =
      [ "processor (measured/paper)"; "pstart ms"; "ctxsw us"; "pipe lat us";
        "pipe bw MB/s"; "reread MB/s" ];
    rows;
    notes = [] }

(* ------------------------------------------------------------- Table 2 *)

let table2 ?(seed = 42) () =
  let configs =
    [ ("603 133MHz", Machine.ppc603_133, Config.optimized_precise_flush);
      ("603 133MHz (lazy)", Machine.ppc603_133, Policy.optimized);
      ("604 185MHz", Machine.ppc604_185, Config.optimized_precise_flush);
      ("604 185MHz (tune)", Machine.ppc604_185, Policy.optimized) ]
  in
  let paper =
    [ (3240.0, 6.0, 34.0, 52.0, 26.0);
      (41.0, 6.0, 28.0, 57.0, 32.0);
      (2733.0, 4.0, 22.0, 90.0, 38.0);
      (33.0, 4.0, 21.0, 94.0, 41.0) ]
  in
  let results =
    List.map
      (fun (name, machine, policy) -> (name, lm ~seed machine policy))
      configs
  in
  let rows =
    List.map2
      (fun (name, s) (p1, p2, p3, p4, p5) ->
        [ name;
          vs (Report.fmt_us s.Lmbench.mmap_lat_us) (Report.fmt_us p1);
          vs (Report.fmt_us s.Lmbench.ctxsw2_us) (Report.fmt_us p2);
          vs (Report.fmt_us s.Lmbench.pipe_lat_us) (Report.fmt_us p3);
          vs (Report.fmt_mbs s.Lmbench.pipe_bw_mbs) (Report.fmt_mbs p4);
          vs (Report.fmt_mbs s.Lmbench.file_reread_mbs) (Report.fmt_mbs p5) ])
      results paper
  in
  let speedup_note =
    match results with
    | (_, precise) :: (_, lazy_) :: _ ->
        [ Printf.sprintf
            "603 mmap speedup: measured %s (paper %s: 3240 -> 41 us)"
            (Report.fmt_ratio
               (Metrics.speedup ~from_v:precise.Lmbench.mmap_lat_us
                  ~to_v:lazy_.Lmbench.mmap_lat_us))
            (Report.fmt_ratio (3240.0 /. 41.0)) ]
    | _ -> []
  in
  { title = "Table 2 - LmBench summary for tunable range flushing [E5]";
    header =
      [ "processor (measured/paper)"; "mmap lat us"; "ctxsw us";
        "pipe lat us"; "pipe bw MB/s"; "reread MB/s" ];
    rows;
    notes = speedup_note }

(* ------------------------------------------------------------- Table 3 *)

let table3 ?(seed = 42) () =
  let rows =
    List.map
      (fun p ->
        let m =
          Os_model.measure_row ~machine:Os_model.table3_machine p ~seed ()
        in
        let pr = Os_model.paper_row p in
        [ m.Os_model.r_name;
          vs (Report.fmt_us m.Os_model.null_us)
            (Report.fmt_us pr.Os_model.null_us);
          vs (Report.fmt_us m.Os_model.ctxsw_us)
            (Report.fmt_us pr.Os_model.ctxsw_us);
          vs (Report.fmt_us m.Os_model.pipe_lat_us)
            (Report.fmt_us pr.Os_model.pipe_lat_us);
          vs (Report.fmt_mbs m.Os_model.pipe_bw_mbs)
            (Report.fmt_mbs pr.Os_model.pipe_bw_mbs) ])
      Os_model.all
  in
  { title =
      "Table 3 - LmBench summary for Linux/PPC and other operating systems \
       [E9]";
    header =
      [ "OS (measured/paper)"; "null syscall us"; "ctx switch us";
        "pipe lat us"; "pipe bw MB/s" ];
    rows;
    notes =
      [ "133MHz 604; Rhapsody/MkLinux/AIX are calibrated structural";
        "models - see DESIGN.md." ] }

(* ------------------------------------------------------------------ E1 *)

let e1 ?(seed = 42) () =
  let run policy =
    let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed () in
    let samples = ref 0 and share_sum = ref 0.0 and high_water = ref 0 in
    let probe k =
      let kernel_entries = Kernel.kernel_tlb_entries k in
      let total = Mmu.tlb_occupancy (Kernel.mmu k) in
      if total > 0 then begin
        incr samples;
        share_sum :=
          !share_sum
          +. (100.0 *. float_of_int kernel_entries /. float_of_int total);
        high_water := max !high_water kernel_entries
      end
    in
    let perf =
      Msr.perf k (fun () -> Kbuild.run ~probe k ~params:Kbuild.default_params)
    in
    let share =
      if !samples = 0 then 0.0 else !share_sum /. float_of_int !samples
    in
    (perf, share, !high_water)
  in
  let base, base_share, base_hw = run Policy.baseline in
  let bat, bat_share, bat_hw = run Config.baseline_with_bat in
  let pct_of f =
    Report.fmt_pct
      (Metrics.pct_change
         ~from_v:(float_of_int (f base))
         ~to_v:(float_of_int (f bat)))
  in
  { title = "E1 (sec 5.1) - Reducing the OS TLB footprint with BATs";
    header = [ "metric"; "baseline"; "baseline+BAT"; "change"; "paper" ];
    rows =
      [ [ "TLB misses";
          Report.fmt_int (Perf.tlb_misses base);
          Report.fmt_int (Perf.tlb_misses bat);
          pct_of Perf.tlb_misses;
          "-10% (219M -> 197M)" ];
        [ "htab misses";
          Report.fmt_int base.Perf.htab_misses;
          Report.fmt_int bat.Perf.htab_misses;
          pct_of (fun p -> p.Perf.htab_misses);
          "-20% (1M -> 813k)" ];
        [ "kernel TLB share (mid-job avg, high water)";
          Printf.sprintf "%.0f%% (hw %d)" base_share base_hw;
          Printf.sprintf "%.0f%% (hw %d)" bat_share bat_hw;
          "";
          "33% -> high water 4" ];
        [ "compile busy time (ms)";
          Report.fmt_ms
            (Cost.us_of_cycles ~mhz:185 (Perf.busy_cycles base) /. 1000.);
          Report.fmt_ms
            (Cost.us_of_cycles ~mhz:185 (Perf.busy_cycles bat) /. 1000.);
          pct_of Perf.busy_cycles;
          "-20% (10 min -> 8 min)" ] ];
    notes = [] }

(* ------------------------------------------------------------------ E2 *)

let e2 ?(seed = 42) () =
  let run multiplier =
    let policy = Config.baseline_with_scatter_mult multiplier in
    let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed () in
    let tasks = List.init 20 (fun _ -> Kernel.spawn k ~data_pages:320 ()) in
    let data_base = Mm.user_text_base + (16 lsl Addr.page_shift) in
    let perf =
      Msr.perf k (fun () ->
          for _ = 1 to 2 do
            List.iter
              (fun t ->
                Kernel.switch_to k t;
                for p = 0 to 319 do
                  Kernel.touch k Mmu.Store
                    (data_base + (p lsl Addr.page_shift))
                done)
              tasks
          done)
    in
    let snap = System.snapshot k in
    let hist = snap.System.htab_histogram in
    let full_ptegs = if Array.length hist > 8 then hist.(8) else 0 in
    ( Metrics.occupancy_pct ~occupancy:snap.System.htab_valid
        ~capacity:snap.System.htab_capacity,
      Metrics.htab_hit_rate perf,
      perf.Perf.htab_evicts,
      full_ptegs )
  in
  let rows =
    List.map
      (fun (label, mult, paper) ->
        let occ, hit, evicts, full = run mult in
        [ label;
          Report.fmt_pct occ;
          Printf.sprintf "%.1f%%" (100.0 *. hit);
          Report.fmt_int evicts;
          string_of_int full;
          paper ])
      [ ("naive (mult=1)", 1, "37% use");
        ("pid shifted (mult=16)", 16, "57% use");
        ( "tuned (mult=897)",
          Kernel_sim.Vsid_alloc.scatter_multiplier,
          "75% use" ) ]
  in
  { title = "E2 (sec 5.2) - Hashed page table efficiency (VSID scatter)";
    header =
      [ "VSID scheme"; "htab use"; "hit rate"; "evictions"; "full PTEGs";
        "paper" ];
    rows;
    notes =
      [ "32 MB of RAM caps live PTEs at ~43% of the 16384-entry htab in";
        "this simulation; the hot-spot signature (evictions, full PTEGs)";
        "is the mechanism being tuned away." ] }

(* ------------------------------------------------------------------ E3 *)

let e3 ?(seed = 42) () =
  let machine = Machine.ppc603_133 in
  let base = lm ~seed machine Policy.baseline in
  let fast = lm ~seed machine Config.baseline_with_fast_reload in
  let pipe_loaded policy =
    let k = Kernel.boot ~machine ~policy ~seed () in
    Lmbench.pipe_latency_loaded_us k
  in
  let base_loaded = pipe_loaded Policy.baseline in
  let fast_loaded = pipe_loaded Config.baseline_with_fast_reload in
  let user_wall policy =
    let k = Kernel.boot ~machine ~policy ~seed () in
    let t = Kernel.spawn k ~text_pages:64 ~data_pages:256 () in
    Kernel.switch_to k t;
    let data_base = Mm.user_text_base + (64 lsl Addr.page_shift) in
    let rng = Rng.create ~seed:17 in
    Msr.us k (fun () ->
        for _ = 1 to 30_000 do
          let page = Rng.int rng 256 in
          Kernel.touch k Mmu.Load (data_base + (page lsl Addr.page_shift));
          Kernel.user_run k ~instrs:16
        done)
  in
  let base_user = user_wall Policy.baseline in
  let fast_user = user_wall Config.baseline_with_fast_reload in
  let row label b f paper =
    [ label; Report.fmt_us b; Report.fmt_us f;
      Report.fmt_pct (Metrics.pct_change ~from_v:b ~to_v:f);
      paper ]
  in
  { title = "E3 (sec 6.1) - Fast TLB reload code";
    header = [ "metric"; "slow (C)"; "fast (asm)"; "change"; "paper" ];
    rows =
      [ row "context switch (8p, us)" base.Lmbench.ctxsw8_us
          fast.Lmbench.ctxsw8_us "-33%";
        row "pipe latency, idle system (us)" base.Lmbench.pipe_lat_us
          fast.Lmbench.pipe_lat_us "(-15% on a live system)";
        row "pipe latency, loaded system (us)" base_loaded fast_loaded
          "-15%";
        row "user loop wall (us)" base_user fast_user "-15%" ];
    notes = [] }

(* ------------------------------------------------------------------ E6 *)

let e6 ?(seed = 42) () =
  let warm = { Kbuild.default_params with Kbuild.jobs = 16 } in
  let measured = { Kbuild.default_params with Kbuild.jobs = 20 } in
  let run policy =
    let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed () in
    Kbuild.run k ~params:warm;
    let live_sum = ref 0 and valid_sum = ref 0 and samples = ref 0 in
    let probe k =
      let live, zombie = Kernel.htab_live_and_zombie k in
      live_sum := !live_sum + live;
      valid_sum := !valid_sum + live + zombie;
      incr samples
    in
    let perf = Msr.perf k (fun () -> Kbuild.run ~probe k ~params:measured) in
    let n = max 1 !samples in
    (perf, !live_sum / n, !valid_sum / n)
  in
  let off, off_live, off_valid = run Config.optimized_no_reclaim in
  let on_, on_live, on_valid = run Policy.optimized in
  { title = "E6 (sec 7) - Idle-task zombie PTE reclaim";
    header = [ "metric"; "no reclaim"; "idle reclaim"; "paper" ];
    rows =
      [ [ "evict ratio (evicts/reloads)";
          Report.fmt_pct (100.0 *. Metrics.evict_ratio off);
          Report.fmt_pct (100.0 *. Metrics.evict_ratio on_);
          ">90% -> 30%" ];
        [ "htab live entries (mid-job avg)";
          string_of_int off_live;
          string_of_int on_live;
          "600-700 -> 1400-2200" ];
        [ "htab valid incl. zombies (avg)";
          Printf.sprintf "%d (%s)" off_valid
            (Report.fmt_pct
               (Metrics.occupancy_pct ~occupancy:off_valid ~capacity:16384));
          Printf.sprintf "%d (%s)" on_valid
            (Report.fmt_pct
               (Metrics.occupancy_pct ~occupancy:on_valid ~capacity:16384));
          "fills up -> zombies swept" ];
        [ "htab hit rate on TLB miss";
          Report.fmt_pct (100.0 *. Metrics.htab_hit_rate off);
          Report.fmt_pct (100.0 *. Metrics.htab_hit_rate on_);
          "85% -> 98%" ];
        [ "zombies reclaimed";
          Report.fmt_int off.Perf.zombies_reclaimed;
          Report.fmt_int on_.Perf.zombies_reclaimed;
          "-" ] ];
    notes = [] }

(* ------------------------------------------------------------------ E7 *)

let e7 ?(seed = 42) () =
  let run policy =
    Kbuild.measure ~machine:Machine.ppc604_185 ~policy ~seed ()
  in
  let off = run Config.clearing_off in
  let rows =
    List.map
      (fun (label, policy, paper) ->
        let r = run policy in
        let p = r.Kbuild.perf in
        [ label;
          Report.fmt_ms (r.Kbuild.busy_us /. 1000.);
          Printf.sprintf "%.2fx" (r.Kbuild.busy_us /. off.Kbuild.busy_us);
          Report.fmt_int (Perf.cache_misses p);
          Report.fmt_int p.Perf.prezeroed_hits;
          Report.fmt_int p.Perf.pages_cleared_idle;
          paper ])
      [ ("no idle clearing", Config.clearing_off, "baseline");
        ( "cached + list",
          Config.clearing_cached_list,
          "~2x slower, more cache misses" );
        ( "uncached, no list",
          Config.clearing_uncached_nolist,
          "no loss or gain" );
        ("uncached + list", Config.clearing_uncached_list, "much faster") ]
  in
  { title = "E7 (sec 9) - Idle-task page clearing";
    header =
      [ "design"; "busy ms"; "vs off"; "cache misses"; "prezero hits";
        "cleared"; "paper" ];
    rows;
    notes = [] }

(* ------------------------------------------------------------------ E8 *)

let e8 ?(seed = 42) () =
  let run policy =
    Kbuild.measure ~machine:Machine.ppc604_185 ~policy ~seed ()
  in
  let cached = run Policy.optimized in
  let uncached = run Config.optimized_pt_uncached in
  let row label (r : Kbuild.result) =
    let p = r.Kbuild.perf in
    [ label;
      Report.fmt_ms (r.Kbuild.busy_us /. 1000.);
      Report.fmt_int p.Perf.dcache_misses;
      Report.fmt_int p.Perf.dcache_bypasses;
      Report.fmt_int p.Perf.mem_refs ]
  in
  { title = "E8 (sec 8) - Cache pollution from caching page tables (ablation)";
    header =
      [ "page-table refs"; "busy ms"; "dcache misses"; "bypasses";
        "table-walk refs" ];
    rows = [ row "cached (default)" cached; row "cache-inhibited" uncached ];
    notes =
      [ "paper: argues caching page tables pollutes (up to 18 useless";
        "lines per reload) but measures nothing; this ablation finds the";
        "inhibited walk costs more than the pollution it avoids." ] }

(* ----------------------------------------------------------------- E10 *)

let e10 ?(seed = 42) () =
  let machine = Machine.ppc603_133 in
  let run cutoff =
    let policy = Config.optimized_with_cutoff cutoff in
    let k = Kernel.boot ~machine ~policy ~seed () in
    let t = Kernel.spawn k () in
    Kernel.switch_to k t;
    Kernel.user_run k ~instrs:2000;
    let rng = Rng.create ~seed:5 in
    let data_base = Mm.user_text_base + (16 lsl Addr.page_shift) in
    let perf =
      Msr.perf k (fun () ->
          for _ = 1 to 40 do
            let pages = 8 + Rng.int rng 104 in
            let ea = Kernel.sys_mmap k ~pages ~writable:true in
            for i = 0 to 7 do
              Kernel.touch k Mmu.Store (ea + (i lsl Addr.page_shift))
            done;
            Kernel.sys_munmap k ~ea ~pages;
            for i = 0 to 15 do
              Kernel.touch k Mmu.Load (data_base + (i lsl Addr.page_shift))
            done;
            Kernel.user_run k ~instrs:500
          done)
    in
    Kernel.sys_exit k;
    perf
  in
  let rows =
    List.map
      (fun (label, cutoff) ->
        let p = run cutoff in
        [ label;
          Report.fmt_us (Cost.us_of_cycles ~mhz:133 p.Perf.cycles /. 40.0);
          Report.fmt_int (Perf.tlb_misses p);
          Report.fmt_int p.Perf.flush_pte_searches;
          Report.fmt_int p.Perf.flush_context_resets ])
      [ ("precise (no cutoff)", None);
        ("cutoff 5", Some 5);
        ("cutoff 10", Some 10);
        ("cutoff 20 (paper)", Some 20);
        ("cutoff 40", Some 40);
        ("cutoff 120 (never)", Some 120) ]
  in
  { title = "E10 (sec 7) - Range-flush cutoff sweep (the 20-page knee)";
    header =
      [ "policy"; "us per mmap+munmap"; "TLB misses"; "PTE flush searches";
        "context resets" ];
    rows;
    notes =
      [ "paper: the 20-page cutoff brings mmap latency from 3240us to";
        "41us at no cost in TLB misses." ] }

(* ----------------------------------------------------------------- E11 *)

let e11 ?(seed = 42) () =
  let run policy =
    Workloads.Xserver.measure ~machine:Machine.ppc604_185 ~policy ~seed ()
  in
  let off = run Policy.optimized in
  let on_ = run Config.optimized_fb_bat in
  let row label (r : Workloads.Xserver.result) =
    [ label;
      Report.fmt_us r.Workloads.Xserver.us_per_round;
      Report.fmt_int (Perf.tlb_misses r.Workloads.Xserver.perf);
      Report.fmt_int r.Workloads.Xserver.perf.Perf.htab_reloads;
      Report.fmt_int (Perf.cache_misses r.Workloads.Xserver.perf) ]
  in
  { title =
      "E11 (sec 5.1 proposal) - Per-process frame-buffer BAT (implemented)";
    header =
      [ "frame buffer mapping"; "us/request"; "TLB misses"; "htab reloads";
        "cache misses" ];
    rows = [ row "page tables (status quo)" off; row "dedicated BAT" on_ ];
    notes =
      [ Printf.sprintf "request latency change: %s; TLB misses change: %s"
          (Report.fmt_pct
             (Metrics.pct_change ~from_v:off.Workloads.Xserver.us_per_round
                ~to_v:on_.Workloads.Xserver.us_per_round))
          (Report.fmt_pct
             (Metrics.pct_change
                ~from_v:
                  (float_of_int (Perf.tlb_misses off.Workloads.Xserver.perf))
                ~to_v:
                  (float_of_int (Perf.tlb_misses on_.Workloads.Xserver.perf))))
      ] }

(* ----------------------------------------------------------------- E12 *)

let e12 ?(seed = 42) () =
  let run policy =
    Kbuild.measure ~machine:Machine.ppc604_185 ~policy ~seed ()
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let r = run policy in
        let p = r.Kbuild.perf in
        [ label;
          Report.fmt_ms (r.Kbuild.busy_us /. 1000.);
          Report.fmt_int p.Perf.dcache_misses;
          Report.fmt_int p.Perf.dcache_writebacks ])
      [ ("optimized", Policy.optimized);
        ("optimized + idle cache lock", Config.optimized_idle_lock);
        ("cached clearing (no lock)", Config.clearing_cached_list);
        ( "cached clearing + lock",
          { Config.clearing_cached_list with Policy.idle_cache_lock = true }
        ) ]
  in
  { title = "E12 (sec 10.1 future work) - Locking the cache in idle";
    header = [ "policy"; "busy ms"; "dcache misses"; "write-backs" ];
    rows;
    notes =
      [ "the lock removes idle-task pollution (reclaim scans, cached";
        "clearing) at the cost of making locked-idle work uncached." ] }

(* ----------------------------------------------------------------- E13 *)

let e13 ?(seed = 42) () =
  let machine = Machine.ppc603_133 in
  let base = lm ~seed machine Policy.optimized in
  let pre = lm ~seed machine Config.optimized_preload in
  let row label b p =
    [ label; Report.fmt_us b; Report.fmt_us p;
      Report.fmt_pct (Metrics.pct_change ~from_v:b ~to_v:p) ]
  in
  { title = "E13 (sec 10.2 future work) - Cache preloads on switch";
    header = [ "metric"; "no preload"; "preload"; "change" ];
    rows =
      [ row "context switch 2p (us)" base.Lmbench.ctxsw2_us
          pre.Lmbench.ctxsw2_us;
        row "context switch 8p (us)" base.Lmbench.ctxsw8_us
          pre.Lmbench.ctxsw8_us;
        row "pipe latency (us)" base.Lmbench.pipe_lat_us
          pre.Lmbench.pipe_lat_us ];
    notes =
      [ "a (mildly) negative result: in steady-state switching the";
        "incoming task's lines are already hot, so the hints only cost." ]
  }

(* ----------------------------------------------------------------- E14 *)

let e14 ?(seed = 42) () =
  let module Mu = Workloads.Multiuser in
  let run policy =
    Mu.measure ~machine:Machine.ppc604_133 ~policy ~seed ()
  in
  let base = run Policy.baseline in
  let opt = run Policy.optimized in
  { title = "E14 (sec 1) - Aggregate multiuser wall-clock (the headline)";
    header = [ "metric"; "unoptimized"; "optimized"; "gain" ];
    rows =
      [ [ "busy time (ms)";
          Report.fmt_ms (base.Mu.busy_us /. 1000.);
          Report.fmt_ms (opt.Mu.busy_us /. 1000.);
          Report.fmt_ratio
            (Metrics.speedup ~from_v:base.Mu.busy_us ~to_v:opt.Mu.busy_us) ];
        [ "keystroke latency (us)";
          Report.fmt_us base.Mu.keystroke_us;
          Report.fmt_us opt.Mu.keystroke_us;
          Report.fmt_ratio
            (Metrics.speedup ~from_v:base.Mu.keystroke_us
               ~to_v:opt.Mu.keystroke_us) ];
        [ "shell utility start (us)";
          Report.fmt_us base.Mu.utility_us;
          Report.fmt_us opt.Mu.utility_us;
          Report.fmt_ratio
            (Metrics.speedup ~from_v:base.Mu.utility_us
               ~to_v:opt.Mu.utility_us) ];
        [ "TLB misses";
          Report.fmt_int (Perf.tlb_misses base.Mu.perf);
          Report.fmt_int (Perf.tlb_misses opt.Mu.perf);
          "" ] ];
    notes =
      [ "paper (sec 1): 10% to several orders of magnitude, workload-";
        "dependent (the orders-of-magnitude cases are mmap-bound: T2)." ]
  }

(* ----------------------------------------------------------------- E15 *)

let e15 ?(seed = 42) () =
  let run n_ptes =
    let machine = { Machine.ppc604_185 with Machine.htab_ptes = n_ptes } in
    let k = Kernel.boot ~machine ~policy:Policy.optimized ~seed () in
    let occupancy = ref 0 and samples = ref 0 in
    let probe k =
      occupancy := !occupancy + Kernel.htab_occupancy k;
      incr samples
    in
    let perf =
      Msr.perf k (fun () ->
          Kbuild.run ~probe k ~params:Kbuild.default_params)
    in
    (perf, !occupancy / max 1 !samples)
  in
  let rows =
    List.map
      (fun n_ptes ->
        let perf, occ = run n_ptes in
        [ Printf.sprintf "%d PTEs (%d KB)" n_ptes (n_ptes * 8 / 1024);
          Report.fmt_pct
            (Metrics.occupancy_pct ~occupancy:occ ~capacity:n_ptes);
          Report.fmt_pct (100.0 *. Metrics.htab_hit_rate perf);
          Report.fmt_pct (100.0 *. Metrics.evict_ratio perf);
          Report.fmt_ms
            (Cost.us_of_cycles ~mhz:185 (Perf.busy_cycles perf) /. 1000.) ])
      [ 2048; 4096; 8192; 16384; 32768 ]
  in
  { title = "E15 (sec 7 remark) - Hash table sizing sweep";
    header =
      [ "htab size"; "avg occupancy"; "hit rate"; "evict ratio"; "busy ms" ];
    rows;
    notes =
      [ "paper kept 16384 PTEs fixed; a smaller table raises the use";
        "percentage (and frees RAM) at the cost of evictions." ] }

(* ----------------------------------------------------------------- E16 *)

let e16 ?(seed = 42) () =
  let warm = { Kbuild.default_params with Kbuild.jobs = 16 } in
  let measured = { Kbuild.default_params with Kbuild.jobs = 20 } in
  let run policy =
    let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed () in
    Kbuild.run k ~params:warm;
    Msr.perf k (fun () -> Kbuild.run k ~params:measured)
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let p = run policy in
        [ label;
          Report.fmt_pct (100.0 *. Metrics.evict_ratio p);
          Report.fmt_int p.Perf.htab_evicts_live;
          Report.fmt_pct (100.0 *. Metrics.htab_hit_rate p);
          Report.fmt_ms
            (Cost.us_of_cycles ~mhz:185 (Perf.busy_cycles p) /. 1000.) ])
      [ ("arbitrary, no reclaim", Config.optimized_no_reclaim);
        ("second chance, no reclaim", Config.second_chance_no_reclaim);
        ("zombie-aware (rejected design)", Config.zombie_aware_no_reclaim);
        ("arbitrary + idle reclaim (paper)", Policy.optimized) ]
  in
  { title = "E16 (sec 7 ablation) - htab replacement policy vs idle reclaim";
    header =
      [ "policy"; "evict ratio"; "live evictions"; "hit rate"; "busy ms" ];
    rows;
    notes =
      [ "second chance avoids displacing live entries; zombie-aware";
        "eviction (the rejected design) fixes victims but pays liveness";
        "checks in the reload path; the idle task attacks the cause." ] }

(* ----------------------------------------------------- E17 / E18 / E19 *)

(* One experiment per service model: tail latency of the server-shaped
   workload across MMU configurations.  The latency histograms are the
   workload's own (always on), so these tables are byte-identical with
   and without span recording; percentiles use the integer Hist.percentile
   for the same reason.  (These were once drafted as E15-E17 — ids the
   htab sizing and replacement-policy experiments already owned, which
   is exactly the collision [check_unique] now rejects at registration
   time; the server suite registered as E17-E19 instead.) *)

let server_configs =
  [ ("baseline", Policy.baseline);
    ("optimized", Policy.optimized);
    ("precise flush", Config.optimized_precise_flush);
    ("no idle reclaim", Config.optimized_no_reclaim) ]

let server_experiment ~id ~model ~seed ~notes =
  let module Sv = Workloads.Server in
  (* request count from the process-wide --requests knob; its default is
     the historical 200, so committed baselines are byte-identical *)
  let params =
    { Sv.default_params with Sv.model; Sv.requests = Sv.boot_requests () }
  in
  let mhz = Machine.ppc604_185.Machine.mhz in
  let rows =
    List.map
      (fun (label, policy) ->
        let r =
          Sv.measure ~machine:Machine.ppc604_185 ~policy ~params ~seed
            ~label ()
        in
        let pc p = Cost.us_of_cycles ~mhz (Hist.percentile r.Sv.hist p) in
        [ label;
          Report.fmt_int r.Sv.requests;
          Report.fmt_us (pc 0.50);
          Report.fmt_us (pc 0.99);
          Report.fmt_us (pc 0.999);
          Report.fmt_us (Cost.us_of_cycles ~mhz (Hist.max_value r.Sv.hist));
          Report.fmt_ms (r.Sv.busy_us /. 1000.) ])
      server_configs
  in
  { title =
      Printf.sprintf "%s (server) - Request tail latency, %s service model"
        id (Sv.model_name model);
    header =
      [ "config"; "requests"; "p50 us"; "p99 us"; "p999 us"; "max us";
        "busy ms" ];
    rows;
    notes }

let e17 ?(seed = 42) () =
  server_experiment ~id:"E17" ~model:Workloads.Server.Fork_exec ~seed
    ~notes:
      [ "a process per request (inetd/CGI): every request pays fork +";
        "exec + exit, so flush policy and VSID recycling sit directly on";
        "the latency path and the tail amplifies them." ]

let e18 ?(seed = 42) () =
  server_experiment ~id:"E18" ~model:Workloads.Server.Pool ~seed
    ~notes:
      [ "pre-forked workers recycled every 32 requests: steady-state";
        "switching, with periodic address-space churn off the request";
        "path (the recycle happens between requests)." ]

let e19 ?(seed = 42) () =
  server_experiment ~id:"E19" ~model:Workloads.Server.Shared_mm ~seed
    ~notes:
      [ "thread-like workers share the dispatcher's address space: no";
        "exec churn at all; what remains is switch cost and the working";
        "set's TLB/htab footprint." ]

(* ------------------------------------------------------------------ E20 *)

(* The long-horizon run ROADMAP item 3 asks for: the fork/exec server
   driven across the 20-bit context-counter wrap the paper hand-waves.
   Fork_exec consumes ~2 context ids per request (the fork's new mm plus
   the exec's renewal), so reaching the wrap naturally would take ~500k
   requests; instead the counter is pre-aged (Kernel.age_address_spaces,
   an O(1) shim) to [ctx_space - requests] ids before the run, which
   puts the wrap — and its flush-everything escape hatch — near the
   midpoint of any requested length.  Run by name only, like the
   diagnostics: its request count comes from the process-wide
   --requests knob, so default sweeps and committed baselines never see
   it. *)
let e20 ?(seed = 42) () =
  let module Sv = Workloads.Server in
  let module Va = Kernel_sim.Vsid_alloc in
  let requests = Sv.boot_requests () in
  let params =
    { Sv.default_params with
      Sv.model = Workloads.Server.Fork_exec;
      Sv.requests = requests }
  in
  let machine = Machine.ppc604_185 in
  let mhz = machine.Machine.mhz in
  let rows =
    List.map
      (fun (label, policy) ->
        let k = Kernel.boot ~machine ~policy ~seed () in
        let sp = Kernel.span k in
        if Span.enabled sp then Span.set_label sp label;
        let rcd = Kernel.recorder k in
        if Recorder.enabled rcd then Recorder.set_label rcd label;
        (* pid-based allocators have no counter to wrap: they run the
           same horizon un-aged, as the no-wrap control group *)
        let counter_based =
          Va.source (Kernel.vsid_alloc k) = Va.Context_counter
        in
        if counter_based then
          Kernel.age_address_spaces k ~contexts:(Va.ctx_space - requests);
        let before = Perf.snapshot (Kernel.perf k) in
        let hist, _ = Sv.run k ~params in
        let perf = Perf.diff ~after:(Perf.snapshot (Kernel.perf k)) ~before in
        let wraps = Va.wraps (Kernel.vsid_alloc k) in
        let pc p = Cost.us_of_cycles ~mhz (Hist.percentile hist p) in
        [ label;
          Report.fmt_int requests;
          (if counter_based then Report.fmt_int wraps else "n/a (pid ids)");
          Report.fmt_us (pc 0.50);
          Report.fmt_us (pc 0.99);
          Report.fmt_us (pc 0.999);
          Report.fmt_ms
            (Cost.us_of_cycles ~mhz (Perf.busy_cycles perf) /. 1000.) ])
      server_configs
  in
  { title =
      "E20 (server) - Long-horizon fork/exec run across the context-counter \
       wrap";
    header =
      [ "config"; "requests"; "vsid wraps"; "p50 us"; "p99 us"; "p999 us";
        "busy ms" ];
    rows;
    notes =
      [ "run by name only (requests come from --requests; default 200).";
        "the context counter is pre-aged to ctx_space - requests ids, so";
        "the 20-bit wrap and its flush-everything escape hatch fire near";
        "the midpoint of the run — watch the vsid_wraps counter and the";
        "recorder's wrap-burst detector around that sample." ] }

(* ----------------------------------------------------------------- EX1 *)

let ex1 ?(seed = 42) () =
  let rows =
    List.map
      (fun machine ->
        let s = lm ~seed machine Policy.optimized in
        [ machine.Machine.name;
          Report.fmt_us s.Lmbench.null_us;
          Report.fmt_us s.Lmbench.ctxsw2_us;
          Report.fmt_us s.Lmbench.pipe_lat_us;
          Report.fmt_mbs s.Lmbench.pipe_bw_mbs;
          Report.fmt_mbs s.Lmbench.file_reread_mbs;
          Report.fmt_ms s.Lmbench.pstart_ms ])
      Machine.all
  in
  { title = "EX1 (extra) - LmBench across all modeled processors";
    header =
      [ "processor"; "null us"; "ctxsw us"; "pipe lat us"; "pipe bw MB/s";
        "reread MB/s"; "pstart ms" ];
    rows;
    notes = [] }

(* ----------------------------------------------------------------- EX2 *)

let ex2 ?(seed = 42) () =
  let module Pm = Workloads.Parmake in
  let rows =
    List.map
      (fun jobserver ->
        let params = { Pm.default_params with Pm.jobserver } in
        let r =
          Pm.measure ~machine:Machine.ppc604_185 ~policy:Policy.optimized
            ~params ~seed ()
        in
        [ Printf.sprintf "-j%d" jobserver;
          Report.fmt_ms (r.Pm.wall_us /. 1000.);
          Report.fmt_ms (r.Pm.busy_us /. 1000.);
          Report.fmt_pct (100.0 *. r.Pm.idle_fraction);
          Report.fmt_int r.Pm.perf.Perf.context_switches ])
      [ 1; 2; 4; 8 ]
  in
  { title = "EX2 (extra) - Parallel make: I/O overlap vs -jN";
    header = [ "jobserver"; "wall ms"; "busy ms"; "idle"; "switches" ];
    rows;
    notes =
      [ "-j1 serialises every disk wait into idle time; wider jobservers";
        "overlap them with computation until the CPU saturates." ] }

(* ----------------------------------------------------------------- EX4 *)

let ex4 ?(seed = 42) () =
  let cost machine size_kb =
    let k = Kernel.boot ~machine ~policy:Policy.optimized ~seed () in
    Lmbench.ctx_switch_sized_us k ~nprocs:4 ~size_kb
  in
  let sizes = [ 0; 16; 64; 128; 256 ] in
  let rows =
    List.map
      (fun size_kb ->
        [ Printf.sprintf "%d KB" size_kb;
          Report.fmt_us (cost Machine.ppc603_133 size_kb);
          Report.fmt_us (cost Machine.ppc604_133 size_kb) ])
      sizes
  in
  { title = "EX4 (extra) - lat_ctx working-set sweep (TLB reach)";
    header =
      [ "per-process working set"; "603 133MHz (128 TLB)";
        "604 133MHz (256 TLB)" ];
    rows;
    notes =
      [ "four processes re-touch their working sets between switches;";
        "once the combined footprint exceeds TLB reach, every switch";
        "pays reloads - sooner on the 603's half-size TLB." ] }

(* ----------------------------------------------------------------- EX5 *)

(* §10: "We've made these changes on a step-by-step basis so we could
   evaluate each change and study not only how it changed performance
   but why ... many optimizations did not interact as we expected them
   to and the end effect was not the sum of all the optimizations." *)
let ex5 ?(seed = 42) () =
  let module Mu = Workloads.Multiuser in
  let ladder =
    [ ("baseline", Policy.baseline);
      ( "+ BAT kernel mapping",
        { Policy.baseline with Policy.bat_kernel_mapping = true } );
      ( "+ VSID scatter (897)",
        { Policy.baseline with
          Policy.bat_kernel_mapping = true;
          vsid_multiplier = Kernel_sim.Vsid_alloc.scatter_multiplier } );
      ( "+ fast reload handlers",
        { Policy.baseline with
          Policy.bat_kernel_mapping = true;
          vsid_multiplier = Kernel_sim.Vsid_alloc.scatter_multiplier;
          fast_reload = true } );
      ( "+ fast entry paths",
        { Policy.baseline with
          Policy.bat_kernel_mapping = true;
          vsid_multiplier = Kernel_sim.Vsid_alloc.scatter_multiplier;
          fast_reload = true;
          fast_paths = true } );
      ( "+ lazy flushing (cutoff 20)",
        { Policy.baseline with
          Policy.bat_kernel_mapping = true;
          vsid_multiplier = Kernel_sim.Vsid_alloc.scatter_multiplier;
          fast_reload = true;
          fast_paths = true;
          vsid_source = Kernel_sim.Vsid_alloc.Context_counter;
          lazy_flush = true;
          flush_cutoff = Some Policy.flush_cutoff_pages } );
      ("+ idle reclaim + page clearing", Policy.optimized) ]
  in
  let base_busy = ref 0.0 in
  let rows =
    List.map
      (fun (label, policy) ->
        let r = Mu.measure ~machine:Machine.ppc604_133 ~policy ~seed () in
        if !base_busy = 0.0 then base_busy := r.Mu.busy_us;
        [ label;
          Report.fmt_ms (r.Mu.busy_us /. 1000.);
          Report.fmt_us r.Mu.keystroke_us;
          Report.fmt_ratio
            (Metrics.speedup ~from_v:!base_busy ~to_v:r.Mu.busy_us) ])
      ladder
  in
  { title = "EX5 (sec 10 method) - The optimization ladder, step by step";
    header =
      [ "kernel"; "multiuser busy ms"; "keystroke us"; "cumulative gain" ];
    rows;
    notes =
      [ "the paper's own methodology: each change evaluated on top of";
        "the previous ones (and, as they warn, the steps do not sum)." ]
  }

(* ----------------------------------------------------------------- EX6 *)

(* §4: "Each of the test results comes from more than 10 of the
   benchmark runs averaged.  We ignore benchmark differences that were
   sporadic."  The simulation is deterministic per seed, so seeds play
   the role of runs: the key conclusions must hold across them. *)
let ex6 ?(seed = 42) () =
  let seeds = List.init 5 (fun i -> seed + (i * 101)) in
  let stats xs =
    let n = float_of_int (List.length xs) in
    let mean = List.fold_left ( +. ) 0.0 xs /. n in
    let mn = List.fold_left min infinity xs in
    let mx = List.fold_left max neg_infinity xs in
    (mn, mean, mx)
  in
  let fmt (mn, mean, mx) unit_ =
    Printf.sprintf "%s / %s / %s %s" (Report.fmt_us mn) (Report.fmt_us mean)
      (Report.fmt_us mx) unit_
  in
  let machine = Machine.ppc603_133 in
  let per_seed f = List.map f seeds in
  let speedups =
    per_seed (fun seed ->
        let lat policy =
          Lmbench.mmap_latency_us (Kernel.boot ~machine ~policy ~seed ())
        in
        lat Config.optimized_precise_flush /. lat Policy.optimized)
  in
  let pipe_bw =
    per_seed (fun seed ->
        Lmbench.pipe_bandwidth_mbs
          (Kernel.boot ~machine ~policy:Policy.optimized ~seed ()))
  in
  let ctx =
    per_seed (fun seed ->
        Lmbench.ctx_switch_us
          (Kernel.boot ~machine ~policy:Policy.optimized ~seed ())
          ~nprocs:2)
  in
  let evict_off =
    per_seed (fun seed ->
        let k =
          Kernel.boot ~machine:Machine.ppc604_185
            ~policy:Config.optimized_no_reclaim ~seed ()
        in
        Kbuild.run k ~params:{ Kbuild.default_params with Kbuild.jobs = 16 };
        let p =
          Msr.perf k (fun () ->
              Kbuild.run k
                ~params:{ Kbuild.default_params with Kbuild.jobs = 8 })
        in
        100.0 *. Metrics.evict_ratio p)
  in
  { title = "EX6 (sec 4 method) - Stability across runs (seeds)";
    header = [ "metric"; "min / mean / max over 5 seeds" ];
    rows =
      [ [ "T2 mmap speedup (x)"; fmt (stats speedups) "" ];
        [ "pipe bandwidth 603/133 (MB/s)"; fmt (stats pipe_bw) "" ];
        [ "ctx switch 603/133 (us)"; fmt (stats ctx) "" ];
        [ "E6 evict ratio, no reclaim (%)"; fmt (stats evict_off) "" ] ];
    notes =
      [ "the paper averaged 10+ runs and ignored sporadic differences;";
        "here seeds are runs, and the conclusions hold across them." ] }

(* ----------------------------------------------------------------- EX7 *)

(* Interactive responsiveness under contention: the editor's
   wake-to-done latency while a compile grinds — scheduling delay plus
   the cost of re-faulting whatever the compile displaced. *)
let ex7 ?(seed = 42) () =
  let module I = Workloads.Interactive in
  let run policy =
    I.measure ~machine:Machine.ppc604_133 ~policy ~seed ()
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let r = run policy in
        [ label;
          Report.fmt_us r.I.mean_response_us;
          Report.fmt_us r.I.worst_response_us;
          Report.fmt_int (Perf.tlb_misses r.I.perf) ])
      [ ("unoptimized", Policy.baseline);
        ("optimized", Policy.optimized) ]
  in
  { title = "EX7 (extra) - Keystroke response under a background compile";
    header =
      [ "kernel"; "mean response us"; "worst response us"; "TLB misses" ];
    rows;
    notes =
      [ "wake-to-done latency of an editor burst with a compile always";
        "runnable: the user-feel number behind the sec-1 claims." ] }

(* -------------------------------------------------------- diagnostics *)

(* D1 concentrates the translation sequences a missed TLB invalidate
   corrupts: repeated store -> fork (COW downgrade + precise per-page
   flush) -> store again (COW break), plus exec image replacement over
   the same addresses, under the BAT + precise-flush policy where no
   context reset or kernel TLB churn would mask a stale entry.  It is
   correct by construction — a shadow-checked run reports zero
   divergences — until a flush bug is planted (MMU_SIM_BUG=stale-tlb),
   which makes it the smoke workload proving the shadow checker fails
   loudly.  Diagnostic only: not in the default registry, so results
   documents and baselines are unchanged. *)
let d1 ?(seed = 42) () =
  let k =
    Kernel.boot ~machine:Machine.ppc604_185
      ~policy:Config.optimized_precise_flush ~seed ()
  in
  let text_pages = 8 and data_pages = 8 and stack_pages = 4 in
  let data_base = Mm.user_text_base + (text_pages lsl Addr.page_shift) in
  let store_all () =
    for i = 0 to data_pages - 1 do
      Kernel.touch k Mmu.Store (data_base + (i lsl Addr.page_shift))
    done
  in
  let parent = Kernel.spawn k ~text_pages ~data_pages ~stack_pages () in
  Kernel.switch_to k parent;
  Kernel.user_run k ~instrs:2000;
  store_all ();
  let generations = 8 in
  for _ = 1 to generations do
    (* fork downgrades every private parent page to read-only COW and
       precise-flushes the parent's translations; the parent's next
       store must fault and break the sharing *)
    let child = Kernel.sys_fork k in
    store_all ();
    (* the child replaces its image (whole-mm precise flush) and then
       repopulates the very same effective addresses *)
    Kernel.switch_to k child;
    Kernel.sys_exec k ~text_pages ~data_pages ~stack_pages;
    Kernel.user_run k ~instrs:500;
    store_all ();
    Kernel.sys_exit k;
    Kernel.switch_to k parent
  done;
  let p = Kernel.perf k in
  { title =
      "D1 (diagnostic) - fork/COW/exec flush stress for the shadow checker";
    header = [ "metric"; "value" ];
    rows =
      [ [ "page faults"; Report.fmt_int p.Perf.page_faults ];
        [ "TLB misses"; Report.fmt_int (Perf.tlb_misses p) ];
        [ "PTE flush searches"; Report.fmt_int p.Perf.flush_pte_searches ];
        [ "context switches"; Report.fmt_int p.Perf.context_switches ] ];
    notes =
      [ "diagnostic workload (run by name only); every parent store after";
        "a fork is a COW break that a skipped TLB invalidate turns into";
        "a stale translation the shadow reference MMU must catch." ] }

(* D2 concentrates the cross-CPU sequence a skipped TLB shootdown
   corrupts: two CPUs sharing one address space (clone-style threads),
   both TLBs warmed over the same user pages; then the thread on CPU 0
   execs — under the precise-flush policy every mapped page is flushed
   locally and shot down on CPU 1 — and the sibling on CPU 1 touches
   the same addresses again.  Delivered shootdowns make those touches
   cold misses that demand-fault fresh frames; a skipped shootdown
   (MMU_SIM_BUG=skip-shootdown) leaves CPU 1's TLB answering with the
   old frame while the reference translator sees no mapping at all —
   a guaranteed divergence on the first post-exec touch.  Correct by
   construction otherwise: a shadow-checked run reports zero
   divergences.  Diagnostic only: not in the default registry, so
   results documents and baselines are unchanged. *)
let d2 ?(seed = 42) () =
  let k =
    Kernel.boot ~machine:Machine.ppc604_185
      ~policy:Config.optimized_precise_flush ~seed ~cpus:2 ()
  in
  let text_pages = 8 and data_pages = 8 and stack_pages = 4 in
  let data_base = Mm.user_text_base + (text_pages lsl Addr.page_shift) in
  let touch_all () =
    for i = 0 to data_pages - 1 do
      Kernel.touch k Mmu.Store (data_base + (i lsl Addr.page_shift))
    done
  in
  (* thread A on CPU 0 ... *)
  let a = Kernel.spawn k ~text_pages ~data_pages ~stack_pages () in
  Kernel.set_active_cpu k 0;
  Kernel.switch_to k a;
  Kernel.user_run k ~instrs:2000;
  touch_all ();
  (* ... and sibling B (same mm, own task) on CPU 1, its TLB warmed
     over the very same pages *)
  let b = Kernel.spawn_thread k ~peer:a in
  Kernel.set_active_cpu k 1;
  Kernel.switch_to k b;
  Kernel.user_run k ~instrs:2000;
  touch_all ();
  let generations = 4 in
  for _ = 1 to generations do
    (* A replaces the shared image on CPU 0: whole-mm precise flush,
       one shootdown round per mapped page to CPU 1 *)
    Kernel.set_active_cpu k 0;
    Kernel.sys_exec k ~text_pages ~data_pages ~stack_pages;
    Kernel.user_run k ~instrs:500;
    touch_all ();
    (* B touches the same addresses on CPU 1 through its own TLB *)
    Kernel.set_active_cpu k 1;
    Kernel.user_run k ~instrs:500;
    touch_all ()
  done;
  let p = Kernel.perf k in
  let mmu = Kernel.mmu k in
  let cpu_misses cpu =
    Mmu.cpu_itlb_misses mmu ~cpu + Mmu.cpu_dtlb_misses mmu ~cpu
  in
  { title =
      "D2 (diagnostic) - cross-CPU exec/shootdown stress for the shadow \
       checker";
    header = [ "metric"; "value" ];
    rows =
      [ [ "TLB shootdown rounds"; Report.fmt_int p.Perf.tlb_shootdowns ];
        [ "IPIs sent"; Report.fmt_int p.Perf.ipis_sent ];
        [ "remote TLB invalidates";
          Report.fmt_int p.Perf.remote_tlb_invalidates ];
        [ "page faults"; Report.fmt_int p.Perf.page_faults ];
        [ "TLB misses (cpu0 + cpu1)";
          Printf.sprintf "%s + %s"
            (Report.fmt_int (cpu_misses 0))
            (Report.fmt_int (cpu_misses 1)) ] ];
    notes =
      [ "diagnostic workload (run by name only); every post-exec touch on";
        "the sibling CPU relies on the exec's shootdown round having";
        "invalidated that CPU's TLB - skip it and the shadow reference";
        "MMU must catch the stale remote translation." ] }

(* ----------------------------------------------------------- registry *)

type spec = {
  id : string;
  name : string;
  section : string;
  what : string;
  run : ?seed:int -> unit -> table;
}

let spec id name section what run = { id; name; section; what; run }

let registry =
  [ spec "T1" "LmBench with direct (no-htab) TLB reloads" "sec 6.2"
      "Table 1: the four processor configs with the htab bypassed, \
       measured cells next to the paper's" table1;
    spec "T2" "LmBench with tunable range flushing" "sec 7"
      "Table 2: precise vs lazy flushing; the 3240us -> 41us mmap \
       headline" table2;
    spec "T3" "OS comparison on the 133MHz 604" "sec 4"
      "Table 3: Linux/PPC vs the Rhapsody/MkLinux/AIX personality \
       models" table3;
    spec "E1" "BAT-mapping the kernel" "sec 5.1"
      "TLB/htab miss reduction and kernel TLB share when the kernel \
       lives in BAT registers" e1;
    spec "E2" "VSID scatter vs htab hot spots" "sec 5.2"
      "naive vs pid-shifted vs tuned (897) VSID allocation: htab use, \
       hit rate, evictions, full PTEGs" e2;
    spec "E3" "Fast TLB reload code" "sec 6.1"
      "hand-tuned reload handlers: context switch, idle and loaded pipe \
       latency, user wall-clock" e3;
    spec "E6" "Idle-task zombie PTE reclaim" "sec 7"
      "evict ratio, live/zombie occupancy and hit rate with the idle \
       scavenger on and off" e6;
    spec "E7" "Idle-task page clearing designs" "sec 9"
      "the four clearing designs (cached/uncached x list/no-list) on \
       the compile workload" e7;
    spec "E8" "Cache pollution from cached page tables" "sec 8"
      "ablation: cache-inhibited page-table walks vs the pollution they \
       avoid" e8;
    spec "E10" "Range-flush cutoff sweep" "sec 7"
      "mmap+munmap latency vs flush cutoff: the 20-page knee" e10;
    spec "E11" "Per-process frame-buffer BAT" "sec 5.1"
      "the paper's proposal implemented: display-server request latency \
       with the fb in a BAT" e11;
    spec "E12" "Locking the cache in idle" "sec 10.1"
      "future work: idle-task cache lock vs pollution from reclaim \
       scans and cached clearing" e12;
    spec "E13" "Cache preloads on context switch" "sec 10.2"
      "future work: preload hints on switch (a mildly negative result)" e13;
    spec "E14" "Aggregate multiuser wall-clock" "sec 1"
      "the headline: unoptimized vs optimized busy time, keystroke and \
       utility latency" e14;
    spec "E15" "Hash table sizing sweep" "sec 7"
      "htab size 2k..32k PTEs: occupancy, hit rate, evictions, busy \
       time" e15;
    spec "E16" "htab replacement policy vs idle reclaim" "sec 7"
      "ablation: arbitrary / second-chance / zombie-aware eviction \
       against the idle-task fix" e16;
    spec "E17" "Server tail latency: fork/exec per request" "server"
      "p50/p99/p999 completion latency per MMU config when every \
       request forks, execs and exits" e17;
    spec "E18" "Server tail latency: pre-forked pool" "server"
      "tail latency per MMU config with recycled pool workers \
       (MaxRequestsPerChild churn)" e18;
    spec "E19" "Server tail latency: shared-mm threads" "server"
      "tail latency per MMU config when workers share one address \
       space" e19;
    spec "EX1" "LmBench across all modeled processors" "extra"
      "601-80 through 750-233 under the optimized kernel" ex1;
    spec "EX2" "Parallel make: I/O overlap vs -jN" "extra"
      "wall/busy/idle and context switches for -j1..8" ex2;
    spec "EX4" "lat_ctx working-set sweep (TLB reach)" "extra"
      "context-switch cost vs per-process footprint on 128- and \
       256-entry TLBs" ex4;
    spec "EX5" "The optimization ladder, step by step" "sec 10"
      "the paper's methodology: each optimization applied on top of the \
       previous ones" ex5;
    spec "EX6" "Stability across runs (seeds)" "sec 4"
      "key conclusions re-measured across five seeds, min/mean/max" ex6;
    spec "EX7" "Keystroke response under a background compile" "extra"
      "editor wake-to-done latency while a compile grinds, unoptimized \
       vs optimized" ex7 ]

(* Runnable by name but excluded from default sweeps and baselines. *)
let diagnostics =
  [ spec "D1" "fork/COW/exec flush stress (shadow diagnostic)" "diagnostic"
      "translation sequences a missed TLB invalidate corrupts; the \
       shadow-checker smoke workload" d1;
    spec "D2" "cross-CPU exec/shootdown stress (shadow diagnostic)"
      "diagnostic"
      "the two-CPU shared-mm sequence a skipped TLB shootdown corrupts; \
       the SMP shadow-checker smoke workload" d2 ]

(* Long-horizon runs: runnable by name, excluded from default sweeps and
   baselines — their request counts come from the process-wide
   --requests knob, so their tables are only comparable at a stated
   count. *)
let long_horizon =
  [ spec "E20" "Long-horizon server run across the context-counter wrap"
      "server"
      "fork/exec tail latency with the VSID counter pre-aged so the \
       20-bit wrap fires mid-run; the wrap-stress workload behind the \
       recorder's vsid-wrap detector" e20 ]

(* Ids are the join key for baselines, CLI selection and results
   documents, and lookup is case-insensitive — a colliding id would
   silently shadow one experiment behind another (the drift the E17-E19
   renumbering above narrowly avoided by hand).  Refuse duplicates the
   moment the registry loads instead. *)
let check_unique specs =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let key = String.uppercase_ascii s.id in
      match Hashtbl.find_opt seen key with
      | Some other ->
          invalid_arg
            (Printf.sprintf
               "Experiments: duplicate experiment id %S (case-insensitively \
                collides with %S); ids must be unique"
               s.id other)
      | None -> Hashtbl.add seen key s.id)
    specs

let () = check_unique (registry @ diagnostics @ long_horizon)

let find id =
  List.find_opt
    (fun s -> String.uppercase_ascii s.id = String.uppercase_ascii id)
    (registry @ diagnostics @ long_horizon)

let all = List.map (fun s -> (s.id, s.run)) registry

(* ----------------------------------------------------------- JSON I/O *)

let to_json ?id ?section ?what t =
  let opt k v rest =
    match v with Some v -> (k, Json.String v) :: rest | None -> rest
  in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.Obj
    (opt "id" id
       (opt "section" section
          (opt "what" what
             [ ("title", Json.String t.title);
               ("header", strings t.header);
               ("rows", Json.List (List.map strings t.rows));
               ("notes", strings t.notes) ])))

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field k = Option.to_result ~none:("missing field " ^ k) (Json.member k j) in
  let strings k v =
    match Json.to_list_opt v with
    | None -> Error (k ^ " is not a list")
    | Some l ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest -> (
              match Json.to_string_opt x with
              | Some s -> conv (s :: acc) rest
              | None -> Error (k ^ " has a non-string element"))
        in
        conv [] l
  in
  let* title = field "title" in
  let* title =
    Option.to_result ~none:"title is not a string" (Json.to_string_opt title)
  in
  let* header = Result.bind (field "header") (strings "header") in
  let* rows_j = field "rows" in
  let* rows =
    match Json.to_list_opt rows_j with
    | None -> Error "rows is not a list"
    | Some l ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | r :: rest ->
              let* cells = strings "row" r in
              conv (cells :: acc) rest
        in
        conv [] l
  in
  let* notes =
    match Json.member "notes" j with
    | None -> Ok []
    | Some v -> strings "notes" v
  in
  Ok { title; header; rows; notes }
