(* The first-class policy layer: knob catalog, string/JSON codecs, and
   the proof that [paper_default] carries exactly the constants that
   were extracted out of the mechanism modules. *)

module Policy = Mmu_tricks.Policy
module Config = Mmu_tricks.Config
module Json = Mmu_tricks.Json
module Kpolicy = Kernel_sim.Policy
module Vsid_alloc = Kernel_sim.Vsid_alloc

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected Error: " ^ e)

let expect_error name = function
  | Ok _ -> Alcotest.fail (name ^ ": expected Error")
  | Error e ->
      Alcotest.(check bool) (name ^ " has a message") true
        (String.length e > 0)

(* --- paper_default is the extracted constants ----------------------- *)

let test_paper_default_constants () =
  let p = Policy.paper_default in
  Alcotest.(check bool) "paper_default is Kernel_sim.Policy.optimized" true
    (Policy.equal p Kpolicy.optimized);
  Alcotest.(check int) "vsid multiplier is the tuned 897"
    Vsid_alloc.scatter_multiplier p.Kpolicy.vsid_multiplier;
  Alcotest.(check int) "...which is 897" 897 p.Kpolicy.vsid_multiplier;
  Alcotest.(check (option int)) "flush cutoff is the tuned 20 pages"
    (Some Kpolicy.flush_cutoff_pages) p.Kpolicy.flush_cutoff;
  Alcotest.(check int) "reclaim every 16th idle slice"
    Kpolicy.reclaim_interval_slices p.Kpolicy.reclaim_interval;
  Alcotest.(check int) "...which is 16" 16 p.Kpolicy.reclaim_interval;
  Alcotest.(check int) "64 htab slots per reclaim scan"
    Kpolicy.reclaim_chunk_ptes p.Kpolicy.reclaim_chunk;
  Alcotest.(check int) "pre-zeroed list capped at 64 pages"
    Kpolicy.prezero_list_pages p.Kpolicy.prezero_list_limit;
  Alcotest.(check bool) "LRU TLB replacement (the 603/604 hardware)" true
    (p.Kpolicy.tlb_replacement = Ppc.Tlb.Lru);
  Alcotest.(check bool) "shootdowns batched per flush range" true
    p.Kpolicy.shootdown_batch

(* The extraction itself: the mechanism modules must no longer hardcode
   the decisions.  Sources are build deps of the test (see test/dune),
   so they are readable relative to the test's working directory. *)

let read_source rel =
  In_channel.with_open_text rel In_channel.input_all

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_constants_live_in_policy_module () =
  let policy_src = read_source "../lib/kernel_sim/policy.ml" in
  List.iter
    (fun literal ->
      Alcotest.(check bool)
        ("kernel_sim/policy.ml defines " ^ literal)
        true
        (contains policy_src literal))
    [ "let flush_cutoff_pages = 20";
      "let reclaim_interval_slices = 16";
      "let reclaim_chunk_ptes = 64";
      "let prezero_list_pages = 64" ];
  let vsid_src = read_source "../lib/kernel_sim/vsid_alloc.ml" in
  Alcotest.(check bool) "vsid_alloc.ml defines scatter_multiplier = 897" true
    (contains vsid_src "let scatter_multiplier = 897")

let test_mechanism_modules_do_not_hardcode () =
  (* kparams is pure machine-path-length data again: no reclaim cadence,
     no pre-zero depth *)
  let kparams_src = read_source "../lib/kernel_sim/kparams.ml" in
  List.iter
    (fun banned ->
      Alcotest.(check bool)
        ("kparams.ml no longer mentions " ^ banned)
        false
        (contains kparams_src banned))
    [ "reclaim"; "prezero" ];
  (* pagepool takes its list depth from the policy, no baked-in default *)
  let pagepool_src = read_source "../lib/kernel_sim/pagepool.ml" in
  Alcotest.(check bool) "pagepool.ml takes ~list_limit" true
    (contains pagepool_src "~list_limit");
  Alcotest.(check bool) "pagepool.ml has no hardcoded 64-page default" false
    (contains pagepool_src "list_limit = 64")

(* --- catalog + string get/set --------------------------------------- *)

let test_catalog_shape () =
  Alcotest.(check int) "22 knobs" 22 (List.length Policy.catalog);
  Alcotest.(check (list string)) "knob_keys is the catalog order"
    (List.map (fun k -> k.Policy.ki_key) Policy.catalog)
    Policy.knob_keys;
  List.iter
    (fun k ->
      Alcotest.(check bool) (k.Policy.ki_key ^ " names its origin") true
        (String.length k.Policy.ki_origin > 0);
      Alcotest.(check bool) (k.Policy.ki_key ^ " cites a section") true
        (String.length k.Policy.ki_section > 0))
    Policy.catalog

let test_get_set_every_knob () =
  let p = Policy.paper_default in
  List.iter
    (fun key ->
      let v = ok (Policy.get p key) in
      let p' = ok (Policy.set p key v) in
      Alcotest.(check bool) (key ^ ": set (get p) is the identity") true
        (Policy.equal p p'))
    Policy.knob_keys

let test_set_rejects_garbage () =
  let p = Policy.paper_default in
  expect_error "unknown key" (Policy.set p "warp_drive" "on");
  expect_error "non-integer multiplier"
    (Policy.set p "vsid_multiplier" "banana");
  expect_error "bad enum" (Policy.set p "tlb_replacement" "clairvoyant");
  expect_error "bad bool" (Policy.set p "shootdown_batch" "maybe")

let test_apply_kv () =
  let p = ok (Policy.apply_kv Policy.paper_default "vsid_multiplier=64") in
  Alcotest.(check string) "assignment applied" "64"
    (ok (Policy.get p "vsid_multiplier"));
  (* a bare preset name replaces the base entirely *)
  let b = ok (Policy.apply_kv p "baseline") in
  Alcotest.(check bool) "bare preset replaces the base" true
    (Policy.equal b Config.baseline);
  expect_error "unknown preset" (Policy.apply_kv p "no-such-preset");
  expect_error "malformed assignment" (Policy.apply_kv p "vsid_multiplier=")

let test_flush_cutoff_none () =
  let p = ok (Policy.set Policy.paper_default "flush_cutoff" "none") in
  Alcotest.(check (option int)) "none parses" None p.Kpolicy.flush_cutoff;
  Alcotest.(check string) "and renders back" "none"
    (ok (Policy.get p "flush_cutoff"))

let test_diff () =
  Alcotest.(check int) "no self-diff" 0
    (List.length (Policy.diff Policy.paper_default Policy.paper_default));
  let p = ok (Policy.apply_kv Policy.paper_default "vsid_multiplier=64") in
  match Policy.diff Policy.paper_default p with
  | [ (key, a, b) ] ->
      Alcotest.(check string) "diff names the knob" "vsid_multiplier" key;
      Alcotest.(check string) "old value" "897" a;
      Alcotest.(check string) "new value" "64" b
  | l -> Alcotest.fail (Printf.sprintf "expected one diff, got %d" (List.length l))

(* --- JSON round-trip ------------------------------------------------- *)

let test_json_round_trip () =
  let check_rt name p =
    let p' = ok (Policy.of_json (Policy.to_json p)) in
    Alcotest.(check bool) (name ^ " round-trips") true (Policy.equal p p')
  in
  check_rt "paper_default" Policy.paper_default;
  check_rt "baseline" Config.baseline;
  let tweaked =
    ok
      (Policy.of_string
         "{\"vsid_multiplier\": 64, \"flush_cutoff\": \"none\", \
          \"tlb_replacement\": \"fifo\"}")
  in
  Alcotest.(check string) "of_string applies over paper_default" "fifo"
    (ok (Policy.get tweaked "tlb_replacement"));
  check_rt "tweaked" tweaked

let test_json_unknown_key_rejected () =
  expect_error "unknown member"
    (Policy.of_string "{\"vsid_multiplier\": 64, \"warp_drive\": true}");
  expect_error "unknown base preset"
    (Policy.of_string "{\"base\": \"no-such-preset\"}");
  expect_error "not an object" (Policy.of_string "[1, 2]")

let test_json_base_member () =
  let p = ok (Policy.of_string "{\"base\": \"baseline\"}") in
  Alcotest.(check bool) "base picks the preset" true
    (Policy.equal p Config.baseline);
  let p =
    ok (Policy.of_string "{\"base\": \"baseline\", \"vsid_multiplier\": 897}")
  in
  Alcotest.(check string) "members apply over the base" "897"
    (ok (Policy.get p "vsid_multiplier"));
  Alcotest.(check bool) "rest stays baseline" false
    p.Kpolicy.bat_kernel_mapping

let test_load_file () =
  let path = Filename.temp_file "policy" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Json.to_string (Policy.to_json Policy.paper_default)));
      let p = ok (Policy.load_file path) in
      Alcotest.(check bool) "file round-trips" true
        (Policy.equal p Policy.paper_default));
  expect_error "missing file" (Policy.load_file "/nonexistent/policy.json")

let suite =
  [ Alcotest.test_case "paper_default carries the paper's constants" `Quick
      test_paper_default_constants;
    Alcotest.test_case "constants live in the policy module" `Quick
      test_constants_live_in_policy_module;
    Alcotest.test_case "mechanism modules no longer hardcode" `Quick
      test_mechanism_modules_do_not_hardcode;
    Alcotest.test_case "catalog shape" `Quick test_catalog_shape;
    Alcotest.test_case "get/set round-trips every knob" `Quick
      test_get_set_every_knob;
    Alcotest.test_case "set rejects garbage" `Quick test_set_rejects_garbage;
    Alcotest.test_case "apply_kv assignments and presets" `Quick
      test_apply_kv;
    Alcotest.test_case "flush_cutoff none" `Quick test_flush_cutoff_none;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "JSON rejects unknown keys" `Quick
      test_json_unknown_key_rejected;
    Alcotest.test_case "JSON base member" `Quick test_json_base_member;
    Alcotest.test_case "policy file loading" `Quick test_load_file ]
