(** Block Address Translation registers.

    The PowerPC translates every reference through the BAT registers in
    parallel with the page lookup; a BAT hit abandons the page translation
    entirely, so BAT-mapped regions consume no TLB or hash-table entries —
    the property §5.1 exploits to remove the kernel's TLB footprint.  There
    are four instruction and four data BATs; blocks are 128 KiB to 256 MiB,
    power-of-two sized and alignment-constrained. *)

type t
(** One bank of four BAT registers (instruction or data). *)

val n_registers : int
(** 4 per bank. *)

val min_block : int
(** 128 KiB, the smallest block length. *)

val max_block : int
(** 256 MiB, the largest block length. *)

val create : unit -> t
(** All entries invalid. *)

val set :
  t -> index:int -> base_ea:Addr.ea -> length:int -> phys_base:Addr.pa -> unit
(** [set t ~index ~base_ea ~length ~phys_base] programs one register.
    [length] must be a power of two in [[min_block, max_block]] and both
    bases must be aligned to it.
    @raise Invalid_argument on a malformed block. *)

val clear : t -> index:int -> unit
(** Invalidate one register. *)

val clear_all : t -> unit
(** Invalidate the whole bank. *)

val translate : t -> Addr.ea -> Addr.pa option
(** [translate t ea] is [Some pa] when a valid BAT covers [ea] — in which
    case the page translation (TLB, htab) is bypassed. *)

val translate_pa : t -> Addr.ea -> int
(** [translate] returning the physical address directly, or [-1] when no
    valid BAT covers [ea] — the MMU's allocation-free form. *)

val covers : t -> Addr.ea -> bool
(** [covers t ea] = [translate t ea <> None]. *)

val valid_count : t -> int
(** Number of programmed registers. *)
