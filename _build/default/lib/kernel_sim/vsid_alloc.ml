type id_source =
  | Pid_based
  | Context_counter

let scatter_multiplier = 897

(* The 24-bit VSID for segment [sr] of context [ctx] is
   [sr << 20 | (ctx * multiplier mod 2^20)]: the segment selects the top
   nibble and the munged context supplies the 20 low bits the PTEG hash
   folds on.  Multiplier 1 is the naive "derive VSIDs from the process
   identifier" scheme: processes with similar layouts then pile their
   PTEs into the same narrow band of PTEGs (the §5.2 hot spots); an odd
   non-power-of-two multiplier (897) scatters the bands across the whole
   table. *)
let kernel_base = 0xFF000

type t = {
  src : id_source;
  mult : int;
  live : (int, unit) Hashtbl.t;  (* keyed by each issued VSID *)
  mutable next : int;
}

let create ~source ~multiplier =
  if multiplier <= 0 then
    invalid_arg "Vsid_alloc.create: multiplier must be positive";
  { src = source; mult = multiplier; live = Hashtbl.create 64; next = 1 }

let multiplier t = t.mult
let source t = t.src

let vsid0_of t ctx = ctx * t.mult land 0xFFFFF

let vsid_of t ctx sr = ((sr land 0xF) lsl 20) lor vsid0_of t ctx

let kernel_vsid ~sr = (kernel_base lsl 4) lor (sr land 0xF)

let is_kernel vsid = vsid lsr 4 = kernel_base

(* A context collides with the kernel VSIDs when one of its segments
   lands in the kernel block [0xFF0000, 0xFF0010) — i.e. segment 15 with
   a munged context in [0xF0000, 0xF0010); the counter skips such ids. *)
let collides_with_kernel t ctx =
  let v0 = vsid0_of t ctx in
  v0 >= 0xF0000 && v0 < 0xF0010

let new_context t ~pid =
  let ctx =
    match t.src with
    | Pid_based -> pid
    | Context_counter ->
        let rec pick () =
          let c = t.next in
          t.next <- t.next + 1;
          if collides_with_kernel t c then pick () else c
        in
        pick ()
  in
  for sr = 0 to 15 do
    Hashtbl.replace t.live (vsid_of t ctx sr) ()
  done;
  ctx

let retire_context t ctx =
  for sr = 0 to 15 do
    Hashtbl.remove t.live (vsid_of t ctx sr)
  done

let renew_context t ~old_ctx ~pid =
  match t.src with
  | Pid_based ->
      invalid_arg "Vsid_alloc.renew_context: Pid_based ids cannot be renewed"
  | Context_counter ->
      retire_context t old_ctx;
      new_context t ~pid

let vsid t ~ctx ~sr = vsid_of t ctx sr

let is_live t vsid = is_kernel vsid || Hashtbl.mem t.live vsid

let is_zombie t vsid = not (is_live t vsid)

let live_contexts t = Hashtbl.length t.live / 16
