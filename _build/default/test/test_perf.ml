(* Performance counters: snapshot, diff, derived sums. *)
open Ppc

let test_create_zero () =
  let p = Perf.create () in
  Alcotest.(check int) "cycles zero" 0 p.Perf.cycles;
  Alcotest.(check int) "tlb misses zero" 0 (Perf.tlb_misses p)

let test_snapshot_diff () =
  let p = Perf.create () in
  p.Perf.cycles <- 100;
  p.Perf.dtlb_misses <- 5;
  let before = Perf.snapshot p in
  p.Perf.cycles <- 250;
  p.Perf.dtlb_misses <- 12;
  p.Perf.itlb_misses <- 3;
  let d = Perf.diff ~after:(Perf.snapshot p) ~before in
  Alcotest.(check int) "cycle delta" 150 d.Perf.cycles;
  Alcotest.(check int) "dtlb delta" 7 d.Perf.dtlb_misses;
  Alcotest.(check int) "combined misses" 10 (Perf.tlb_misses d)

let test_snapshot_is_copy () =
  let p = Perf.create () in
  let s = Perf.snapshot p in
  p.Perf.cycles <- 42;
  Alcotest.(check int) "snapshot unaffected" 0 s.Perf.cycles

let test_reset () =
  let p = Perf.create () in
  p.Perf.cycles <- 9;
  p.Perf.htab_hits <- 3;
  p.Perf.prezeroed_hits <- 1;
  Perf.reset p;
  Alcotest.(check int) "cycles" 0 p.Perf.cycles;
  Alcotest.(check int) "htab hits" 0 p.Perf.htab_hits;
  Alcotest.(check int) "prezeroed" 0 p.Perf.prezeroed_hits

let test_busy_cycles () =
  let p = Perf.create () in
  p.Perf.cycles <- 100;
  p.Perf.idle_cycles <- 30;
  Alcotest.(check int) "busy" 70 (Perf.busy_cycles p)

let test_pp_no_crash () =
  let p = Perf.create () in
  p.Perf.cycles <- 123;
  let s = Format.asprintf "%a" Perf.pp p in
  Alcotest.(check bool) "mentions cycles" true
    (String.length s > 0)

let suite =
  [ Alcotest.test_case "create zeroed" `Quick test_create_zero;
    Alcotest.test_case "snapshot/diff" `Quick test_snapshot_diff;
    Alcotest.test_case "snapshot is a copy" `Quick test_snapshot_is_copy;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "busy cycles" `Quick test_busy_cycles;
    Alcotest.test_case "pretty printer" `Quick test_pp_no_crash ]
