open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Pipe = Kernel_sim.Pipe

type personality = {
  p_name : string;
  p_policy : Policy.t;
  extra_syscall_instr : int;
  extra_switch_instr : int;
  extra_pipe_op_instr : int;
  extra_copy_cycles_per_word : int;
}

let linux_opt =
  { p_name = "Linux/PPC";
    p_policy = Policy.optimized;
    extra_syscall_instr = 0;
    extra_switch_instr = 0;
    extra_pipe_op_instr = 0;
    extra_copy_cycles_per_word = 0 }

let linux_unopt =
  { linux_opt with p_name = "Unoptimized Linux/PPC"; p_policy = Policy.baseline }

(* Mach-based systems: the Rhapsody kernel co-locates the BSD server, so
   its per-syscall overhead is smaller than MkLinux's full RPC to the
   Linux single-server, but both pay the Mach thread machinery on every
   switch and message-copy costs on pipe data. *)
let rhapsody =
  { p_name = "Rhapsody 5.0";
    p_policy = Policy.optimized;
    extra_syscall_instr = 1700;
    extra_switch_instr = 7400;
    extra_pipe_op_instr = 3550;
    extra_copy_cycles_per_word = 16 }

let mklinux =
  { p_name = "MkLinux";
    p_policy = Policy.optimized;
    extra_syscall_instr = 2250;
    extra_switch_instr = 7400;
    extra_pipe_op_instr = 8400;
    extra_copy_cycles_per_word = 0 }

let aix =
  { p_name = "AIX";
    p_policy = Policy.optimized;
    extra_syscall_instr = 1150;
    extra_switch_instr = 2300;
    extra_pipe_op_instr = 2600;
    extra_copy_cycles_per_word = 3 }

let all = [ linux_opt; linux_unopt; rhapsody; mklinux; aix ]

type row = {
  r_name : string;
  null_us : float;
  ctxsw_us : float;
  pipe_lat_us : float;
  pipe_bw_mbs : float;
}

let table3_machine = Machine.ppc604_133

(* --- the benchmark loops, with personality charges ------------------- *)

let text_pages = 16
let data_base = Mm.user_text_base + (text_pages lsl Addr.page_shift)
let stack_base = Mm.user_stack_top - (8 lsl Addr.page_shift)

let syscall p k =
  Kernel.sys_null k;
  if p.extra_syscall_instr > 0 then
    Memsys.instructions (Kernel.memsys k) p.extra_syscall_instr

let switch p k task =
  Kernel.switch_to k task;
  if p.extra_switch_instr > 0 then
    Memsys.instructions (Kernel.memsys k) p.extra_switch_instr

let pipe_charge p k =
  if p.extra_pipe_op_instr > 0 then
    Memsys.instructions (Kernel.memsys k) p.extra_pipe_op_instr

let copy_charge p k bytes =
  if p.extra_copy_cycles_per_word > 0 then
    Memsys.instructions (Kernel.memsys k)
      (bytes / 4 * p.extra_copy_cycles_per_word)

let pipe_write p k pipe ~bytes =
  pipe_charge p k;
  copy_charge p k bytes;
  ignore (Kernel.sys_pipe_write k pipe ~buf:data_base ~bytes : int)

let pipe_read p k pipe ~bytes =
  pipe_charge p k;
  copy_charge p k bytes;
  ignore (Kernel.sys_pipe_read k pipe ~buf:data_base ~bytes : int)

let tiny_body k =
  Kernel.user_run k ~instrs:120;
  for i = 0 to 5 do
    Kernel.touch k Mmu.Load (data_base + (i lsl Addr.page_shift))
  done;
  Kernel.touch k Mmu.Store stack_base

let mhz (machine : Machine.t) = machine.Machine.mhz

let bench_null p k machine =
  let task = Kernel.spawn k () in
  Kernel.switch_to k task;
  Kernel.user_run k ~instrs:2000;
  for _ = 1 to 50 do
    syscall p k
  done;
  let iters = 400 in
  let _, d =
    System.measure k (fun () ->
        for _ = 1 to iters do
          syscall p k
        done)
  in
  Kernel.sys_exit k;
  Cost.us_of_cycles ~mhz:(mhz machine) d.Perf.cycles /. float_of_int iters

let bench_ctxsw p k machine =
  let tasks = Array.init 2 (fun _ -> Kernel.spawn k ()) in
  Array.iter
    (fun task ->
      Kernel.switch_to k task;
      Kernel.user_run k ~instrs:1000;
      tiny_body k)
    tasks;
  let rounds = 50 in
  let _, d =
    System.measure k (fun () ->
        for _ = 1 to rounds do
          Array.iter
            (fun task ->
              switch p k task;
              tiny_body k)
            tasks
        done)
  in
  Kernel.switch_to k tasks.(0);
  let _, overhead =
    System.measure k (fun () ->
        for _ = 1 to rounds * 2 do
          tiny_body k
        done)
  in
  Array.iter
    (fun task ->
      Kernel.switch_to k task;
      Kernel.sys_exit k)
    tasks;
  Cost.us_of_cycles ~mhz:(mhz machine)
    (d.Perf.cycles - overhead.Perf.cycles)
  /. float_of_int (rounds * 2)

let bench_pipe_lat p k machine =
  let a = Kernel.spawn k () and b = Kernel.spawn k () in
  let ab = Kernel.new_pipe k and ba = Kernel.new_pipe k in
  let round () =
    switch p k a;
    pipe_write p k ab ~bytes:1;
    switch p k b;
    pipe_read p k ab ~bytes:1;
    pipe_write p k ba ~bytes:1;
    switch p k a;
    pipe_read p k ba ~bytes:1
  in
  for _ = 1 to 5 do
    round ()
  done;
  let rounds = 60 in
  let _, d =
    System.measure k (fun () ->
        for _ = 1 to rounds do
          round ()
        done)
  in
  Kernel.switch_to k a;
  Kernel.sys_exit k;
  Kernel.switch_to k b;
  Kernel.sys_exit k;
  Cost.us_of_cycles ~mhz:(mhz machine) d.Perf.cycles
  /. float_of_int (rounds * 2)

let bench_pipe_bw p k machine =
  let a = Kernel.spawn k () and b = Kernel.spawn k () in
  let pipe = Kernel.new_pipe k in
  let chunk = Pipe.capacity in
  let move () =
    switch p k a;
    pipe_write p k pipe ~bytes:chunk;
    switch p k b;
    pipe_read p k pipe ~bytes:chunk
  in
  for _ = 1 to 4 do
    move ()
  done;
  let chunks = 96 in
  let _, d =
    System.measure k (fun () ->
        for _ = 1 to chunks do
          move ()
        done)
  in
  Kernel.switch_to k a;
  Kernel.sys_exit k;
  Kernel.switch_to k b;
  Kernel.sys_exit k;
  Cost.mb_per_s ~bytes:(chunks * chunk) ~mhz:(mhz machine) ~cycles:d.Perf.cycles

let measure_row ~machine p ?(seed = 42) () =
  let fresh () = Kernel.boot ~machine ~policy:p.p_policy ~seed () in
  { r_name = p.p_name;
    null_us = bench_null p (fresh ()) machine;
    ctxsw_us = bench_ctxsw p (fresh ()) machine;
    pipe_lat_us = bench_pipe_lat p (fresh ()) machine;
    pipe_bw_mbs = bench_pipe_bw p (fresh ()) machine }

let paper_row p =
  let v null ctx lat bw =
    { r_name = p.p_name; null_us = null; ctxsw_us = ctx; pipe_lat_us = lat;
      pipe_bw_mbs = bw }
  in
  if p.p_name = linux_opt.p_name then v 2.0 6.0 28.0 52.0
  else if p.p_name = linux_unopt.p_name then v 18.0 28.0 78.0 36.0
  else if p.p_name = rhapsody.p_name then v 15.0 64.0 161.0 9.0
  else if p.p_name = mklinux.p_name then v 19.0 64.0 235.0 15.0
  else v 11.0 24.0 89.0 21.0
