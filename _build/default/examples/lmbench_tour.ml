(* The LmBench tour: the paper's benchmark suite on the unoptimized and
   optimized kernels, side by side — the two Linux columns of Table 3.

     dune exec examples/lmbench_tour.exe *)

module Machine = Ppc.Machine
module Policy = Kernel_sim.Policy
module Lmbench = Workloads.Lmbench
module Report = Mmu_tricks.Report

let () =
  let machine = Machine.ppc604_133 in
  Format.printf "LmBench on a %a@.@." Machine.pp machine;
  let base = Lmbench.run ~machine ~policy:Policy.baseline () in
  let opt = Lmbench.run ~machine ~policy:Policy.optimized () in
  let speedup b o = Printf.sprintf "%.1fx" (b /. o) in
  Report.table
    ~header:[ "benchmark"; "unoptimized"; "optimized"; "gain" ]
    ~rows:
      [ [ "null syscall (us)"; Report.fmt_us base.Lmbench.null_us;
          Report.fmt_us opt.Lmbench.null_us;
          speedup base.Lmbench.null_us opt.Lmbench.null_us ];
        [ "context switch, 2p (us)"; Report.fmt_us base.Lmbench.ctxsw2_us;
          Report.fmt_us opt.Lmbench.ctxsw2_us;
          speedup base.Lmbench.ctxsw2_us opt.Lmbench.ctxsw2_us ];
        [ "context switch, 8p (us)"; Report.fmt_us base.Lmbench.ctxsw8_us;
          Report.fmt_us opt.Lmbench.ctxsw8_us;
          speedup base.Lmbench.ctxsw8_us opt.Lmbench.ctxsw8_us ];
        [ "pipe latency (us)"; Report.fmt_us base.Lmbench.pipe_lat_us;
          Report.fmt_us opt.Lmbench.pipe_lat_us;
          speedup base.Lmbench.pipe_lat_us opt.Lmbench.pipe_lat_us ];
        [ "pipe bandwidth (MB/s)"; Report.fmt_mbs base.Lmbench.pipe_bw_mbs;
          Report.fmt_mbs opt.Lmbench.pipe_bw_mbs;
          speedup opt.Lmbench.pipe_bw_mbs base.Lmbench.pipe_bw_mbs ];
        [ "file reread (MB/s)"; Report.fmt_mbs base.Lmbench.file_reread_mbs;
          Report.fmt_mbs opt.Lmbench.file_reread_mbs;
          speedup opt.Lmbench.file_reread_mbs base.Lmbench.file_reread_mbs ];
        [ "mmap+munmap 4MB (us)"; Report.fmt_us base.Lmbench.mmap_lat_us;
          Report.fmt_us opt.Lmbench.mmap_lat_us;
          speedup base.Lmbench.mmap_lat_us opt.Lmbench.mmap_lat_us ];
        [ "process start (ms)"; Report.fmt_ms base.Lmbench.pstart_ms;
          Report.fmt_ms opt.Lmbench.pstart_ms;
          speedup base.Lmbench.pstart_ms opt.Lmbench.pstart_ms ] ];
  print_newline ();
  print_endline
    "paper (Table 3, same machine): null 18 -> 2 us, ctxsw 28 -> 6 us,";
  print_endline "pipe latency 78 -> 28 us, pipe bandwidth 36 -> 52 MB/s."
