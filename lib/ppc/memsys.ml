type t = {
  machine : Machine.t;
  perf : Perf.t;
  trace : Trace.t;
  profile : Profile.t;
  span : Span.t;
  recorder : Recorder.t;
  icache : Cache.t;
  dcache : Cache.t;
  mutable idle : bool;
}

let create ~machine ~perf =
  let span = Span.create ~perf in
  let recorder = Recorder.create ~perf in
  let profile = Profile.create ~perf in
  (* Span percentiles-so-far as a recorder gauge: completed requests and
     the running p50/p99 latency.  All zeros outside server workloads. *)
  Recorder.add_source recorder ~name:"span" (fun () ->
      let h = Span.hist_latency span in
      [| Span.completed span;
         Hist.percentile h 0.50;
         Hist.percentile h 0.99 |]);
  (* Profiler attribution snapshot: the top accounts by reload cost,
     flattened at stride 5 (pid, seg, kind, count, cost) so incident
     records can say who owned the misses.  Empty until profiling is
     armed alongside recording. *)
  Recorder.add_source recorder ~name:"attribution" (fun () ->
      if not (Profile.enabled profile) then [||]
      else begin
        let rows =
          List.sort
            (fun a b ->
              compare b.Profile.r_cost a.Profile.r_cost)
            (Profile.attribution profile)
        in
        let top = ref [] and n = ref 0 in
        List.iter
          (fun r ->
            if !n < 8 then begin
              incr n;
              top := r :: !top
            end)
          rows;
        let a = Array.make (!n * 5) 0 in
        List.iteri
          (fun i r ->
            let b = (!n - 1 - i) * 5 in
            a.(b) <- r.Profile.r_pid;
            a.(b + 1) <- r.Profile.r_seg;
            a.(b + 2) <-
              (match r.Profile.r_kind with
              | Profile.Itlb -> 0
              | Profile.Dtlb -> 1
              | Profile.Htab_miss -> 2);
            a.(b + 3) <- r.Profile.r_count;
            a.(b + 4) <- r.Profile.r_cost)
          !top;
        a
      end);
  { machine;
    perf;
    trace = Trace.create ~perf;
    profile;
    span;
    recorder;
    icache =
      Cache.create ~bytes:machine.Machine.icache.Machine.cache_bytes
        ~ways:machine.Machine.icache.Machine.cache_ways;
    dcache =
      Cache.create ~bytes:machine.Machine.dcache.Machine.cache_bytes
        ~ways:machine.Machine.dcache.Machine.cache_ways;
    idle = false }

let machine t = t.machine
let perf t = t.perf
let trace t = t.trace
let profile t = t.profile
let span t = t.span
let recorder t = t.recorder
let icache t = t.icache
let dcache t = t.dcache

let set_idle t b = t.idle <- b
let in_idle t = t.idle

let charge t cycles =
  t.perf.Perf.cycles <- t.perf.Perf.cycles + cycles;
  if t.idle then t.perf.Perf.idle_cycles <- t.perf.Perf.idle_cycles + cycles;
  (* timeline sampler: [next_sample] is [max_int] unless armed, so the
     untraced cost is this one compare *)
  if t.perf.Perf.cycles >= t.trace.Trace.next_sample then
    Trace.take_sample t.trace;
  (* htab occupancy sampler, same Perf-timeline cadence discipline: one
     integer compare while profiling is off *)
  if t.perf.Perf.cycles >= t.profile.Profile.next_sample then
    Profile.take_sample t.profile;
  (* flight recorder, same discipline again *)
  if t.perf.Perf.cycles >= t.recorder.Recorder.next_sample then
    Recorder.take_sample t.recorder

(* A write-back of a dirty victim is a posted store: it overlaps with
   execution, so we charge half the memory latency. *)
let writeback_cost t = t.machine.Machine.mem_latency / 2

let charge_writeback t dirty_writeback =
  if dirty_writeback then begin
    t.perf.Perf.dcache_writebacks <- t.perf.Perf.dcache_writebacks + 1;
    charge t (writeback_cost t)
  end

let data_ref t ~source ~inhibited ~write pa =
  let p = t.perf in
  p.Perf.dcache_accesses <- p.Perf.dcache_accesses + 1;
  match Cache.access t.dcache ~source ~inhibited ~write pa with
  | Cache.Hit -> charge t Cost.cache_hit_cycles
  | Cache.Miss { dirty_writeback } ->
      p.Perf.dcache_misses <- p.Perf.dcache_misses + 1;
      charge t t.machine.Machine.mem_latency;
      charge_writeback t dirty_writeback
  | Cache.Bypass ->
      p.Perf.dcache_bypasses <- p.Perf.dcache_bypasses + 1;
      charge t t.machine.Machine.mem_latency

let inst_ref t pa =
  let p = t.perf in
  p.Perf.icache_accesses <- p.Perf.icache_accesses + 1;
  match
    Cache.access t.icache ~source:Cache.Kernel ~inhibited:false ~write:false
      pa
  with
  | Cache.Hit -> charge t Cost.cache_hit_cycles
  | Cache.Miss _ | Cache.Bypass ->
      p.Perf.icache_misses <- p.Perf.icache_misses + 1;
      charge t t.machine.Machine.mem_latency

let dcbz t ~source pa =
  let p = t.perf in
  p.Perf.dcache_accesses <- p.Perf.dcache_accesses + 1;
  match Cache.allocate_zero t.dcache ~source pa with
  | Cache.Hit -> charge t Cost.dcbz_cycles
  | Cache.Miss { dirty_writeback } ->
      charge t Cost.dcbz_cycles;
      charge_writeback t dirty_writeback
  | Cache.Bypass ->
      (* locked cache: the zeroing goes to memory *)
      p.Perf.dcache_bypasses <- p.Perf.dcache_bypasses + 1;
      charge t t.machine.Machine.mem_latency

(* A software-prefetch hint (dcbt, §10.2): starts the fill early so the
   demand access hits; the fill itself overlaps execution. *)
let prefetch t ~source pa =
  ignore (Cache.access t.dcache ~source ~inhibited:false ~write:false pa
           : Cache.result);
  charge t Cost.prefetch_cycles

let set_cache_locked t b =
  Cache.set_locked t.icache b;
  Cache.set_locked t.dcache b

let instructions t n =
  t.perf.Perf.instructions <- t.perf.Perf.instructions + n;
  charge t n

let stall t n = charge t n

(* Either timeline sampler armed?  While true, fused charges must fall
   back to the historical charge-by-charge sequence so samples keep
   firing at the same cycle counts with the same intermediate counter
   values (experiment tables average over sample contents). *)
let sampling t =
  t.trace.Trace.next_sample <> max_int
  || t.profile.Profile.next_sample <> max_int
  || t.recorder.Recorder.next_sample <> max_int

(* One fused trap charge: counters end up identical to
   [stall t stall; instructions t instr], with a single sampler check
   instead of two.  Used to batch the reload sequence's back-to-back
   stall + handler-instruction charges. *)
let instructions_stall t ~instr ~stall:stall_cycles =
  if sampling t then begin
    if stall_cycles > 0 then stall t stall_cycles;
    if instr > 0 then instructions t instr
  end
  else if instr + stall_cycles > 0 then begin
    t.perf.Perf.instructions <- t.perf.Perf.instructions + instr;
    charge t (instr + stall_cycles)
  end

(* [instructions t instr; data_ref t ... pa] fused into one charge on
   the cache-access cost — the per-slot cost of a software htab probe
   (a few compare/branch instructions riding on the PTE load). *)
let data_ref_instr t ~instr ~source ~inhibited ~write pa =
  if sampling t then begin
    instructions t instr;
    data_ref t ~source ~inhibited ~write pa
  end
  else begin
    t.perf.Perf.instructions <- t.perf.Perf.instructions + instr;
    let p = t.perf in
    p.Perf.dcache_accesses <- p.Perf.dcache_accesses + 1;
    match Cache.access t.dcache ~source ~inhibited ~write pa with
    | Cache.Hit -> charge t (instr + Cost.cache_hit_cycles)
    | Cache.Miss { dirty_writeback } ->
        p.Perf.dcache_misses <- p.Perf.dcache_misses + 1;
        charge t (instr + t.machine.Machine.mem_latency);
        charge_writeback t dirty_writeback
    | Cache.Bypass ->
        p.Perf.dcache_bypasses <- p.Perf.dcache_bypasses + 1;
        charge t (instr + t.machine.Machine.mem_latency)
  end

let copy_lines t ~source ~src ~dst ~bytes =
  let lines = (bytes + Addr.line_size - 1) / Addr.line_size in
  for i = 0 to lines - 1 do
    data_ref t ~source ~inhibited:false ~write:false
      (src + (i * Addr.line_size));
    data_ref t ~source ~inhibited:false ~write:true (dst + (i * Addr.line_size))
  done;
  (* one cycle per word moved *)
  instructions t (bytes / 4)

let us_elapsed t =
  Cost.us_of_cycles ~mhz:t.machine.Machine.mhz t.perf.Perf.cycles
