lib/kernel_sim/task.mli: Addr Mm Ppc
