(* Kernel layout invariants: the physical map must be self-consistent or
   the cache model silently aliases unrelated objects. *)
open Ppc
module K = Kernel_sim.Kparams

let regions =
  [ ("vectors", K.vectors_pa, 0x8000);
    ("text", K.text_pa, K.text_bytes);
    ("data", K.data_pa, K.data_bytes);
    ("htab", K.htab_pa, K.htab_bytes) ]

let overlap (_, a, alen) (_, b, blen) = a < b + blen && b < a + alen

let test_regions_disjoint () =
  let rec pairs = function
    | [] -> ()
    | r :: rest ->
        List.iter
          (fun r' ->
            let (n1, _, _) = r and (n2, _, _) = r' in
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s disjoint" n1 n2)
              false (overlap r r'))
          rest;
        pairs rest
  in
  pairs regions

let test_regions_within_reserved () =
  List.iter
    (fun (name, base, len) ->
      Alcotest.(check bool)
        (name ^ " inside the reserved area")
        true
        (base >= 0 && base + len <= K.reserved_bytes))
    regions

let test_htab_capacity () =
  Alcotest.(check int) "htab bytes = 16384 PTEs x 8 bytes" (16384 * 8)
    K.htab_bytes

let test_virt_phys_roundtrip () =
  let pa = K.text_pa + 0x1234 in
  Alcotest.(check int) "roundtrip" pa
    (K.kernel_phys_of_virt (K.kernel_virt_of_phys pa));
  Alcotest.(check int) "virtual base" 0xC0000000 (K.kernel_virt_of_phys 0);
  Alcotest.(check bool) "kernel virt is a kernel ea" true
    (Segment.is_kernel_ea (K.kernel_virt_of_phys K.data_pa))

(* The per-object address formulas must stay inside kernel data and not
   collide across their index ranges. *)
let test_data_objects_disjoint () =
  let data_end = K.data_pa + K.data_bytes in
  let spans =
    List.concat
      [ List.init 256 (fun pid ->
            (K.kernel_phys_of_virt (K.task_struct_ea ~pid), 1024));
        List.init 256 (fun pid ->
            (K.kernel_phys_of_virt (K.kstack_ea ~pid), 1024));
        List.init 64 (fun index ->
            (K.kernel_phys_of_virt (K.pipe_buf_ea ~index), 4096)) ]
  in
  List.iter
    (fun (base, len) ->
      Alcotest.(check bool) "object inside kernel data" true
        (base >= K.data_pa && base + len <= data_end))
    spans;
  (* distinct objects never share a byte *)
  let sorted = List.sort compare spans in
  let rec adjacent = function
    | (a, alen) :: ((b, _) :: _ as rest) ->
        Alcotest.(check bool) "no overlap between kernel objects" true
          (a + alen <= b);
        adjacent rest
    | [ _ ] | [] -> ()
  in
  adjacent sorted

let test_code_paths_disjoint () =
  (* each kernel code path gets its own text region; the longest modeled
     path footprint is 48 lines = 1.5 KB, well under the 16 KB spacing *)
  let offs =
    [ K.off_syscall; K.off_sched; K.off_fault; K.off_pipe; K.off_vfs;
      K.off_mm; K.off_idle; K.off_exec ]
  in
  let sorted = List.sort compare offs in
  let rec gaps = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "4 KB+ between path entry points" true
          (b - a >= 0x1000);
        gaps rest
    | [ _ ] | [] -> ()
  in
  gaps sorted;
  List.iter
    (fun off ->
      Alcotest.(check bool) "path inside kernel text" true
        (off >= 0 && off + 0x1000 <= K.text_bytes))
    offs

let test_path_constants_sane () =
  Alcotest.(check bool) "fast syscall shorter than slow" true
    (K.syscall_fast < K.syscall_slow);
  Alcotest.(check bool) "fast switch shorter than slow" true
    (K.switch_fast < K.switch_slow);
  (* the reclaim cadence moved from Kparams into the policy layer *)
  Alcotest.(check bool) "reclaim interval positive" true
    (Kernel_sim.Policy.reclaim_interval_slices > 0);
  Alcotest.(check bool) "reclaim chunk positive" true
    (Kernel_sim.Policy.reclaim_chunk_ptes > 0)

let suite =
  [ Alcotest.test_case "image regions disjoint" `Quick test_regions_disjoint;
    Alcotest.test_case "image inside reserved RAM" `Quick
      test_regions_within_reserved;
    Alcotest.test_case "htab capacity" `Quick test_htab_capacity;
    Alcotest.test_case "virt/phys roundtrip" `Quick test_virt_phys_roundtrip;
    Alcotest.test_case "kernel data objects disjoint" `Quick
      test_data_objects_disjoint;
    Alcotest.test_case "kernel code paths disjoint" `Quick
      test_code_paths_disjoint;
    Alcotest.test_case "path constants sane" `Quick test_path_constants_sane ]
