(* Kernel integration: boot, processes, syscalls, flush strategies. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Task = Kernel_sim.Task
module Vfs = Kernel_sim.Vfs
module V = Kernel_sim.Vsid_alloc

let boot ?(machine = Machine.ppc604_185) ?(policy = Policy.optimized) () =
  Kernel.boot ~machine ~policy ~seed:7 ()

let data_base = Mm.user_text_base + (16 lsl Addr.page_shift)

let test_boot_bat () =
  let k = boot ~policy:Policy.optimized () in
  Alcotest.(check bool) "ibat programmed" true
    (Bat.covers (Mmu.ibat (Kernel.mmu k)) 0xC0000000);
  Alcotest.(check bool) "dbat covers all ram" true
    (Bat.covers (Mmu.dbat (Kernel.mmu k)) 0xC1FFFFFF)

let test_boot_no_bat () =
  let k = boot ~policy:Policy.baseline () in
  Alcotest.(check bool) "no bat" false
    (Bat.covers (Mmu.dbat (Kernel.mmu k)) 0xC0000000)

let test_spawn_touch () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  Alcotest.(check bool) "current set" true
    (match Kernel.current k with Some cur -> cur == t | None -> false);
  Kernel.touch k Mmu.Load data_base;
  Alcotest.(check int) "demand fault serviced" 1
    (Kernel.perf k).Perf.page_faults;
  Kernel.touch k Mmu.Load data_base;
  Alcotest.(check int) "no second fault" 1 (Kernel.perf k).Perf.page_faults

let test_segfault () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  (match Kernel.touch k Mmu.Load 0x30000000 with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "expected segfault");
  (* store to the read-only text vma *)
  match Kernel.touch k Mmu.Store Mm.user_text_base with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "expected write segfault"

let test_null_syscall_counts () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  Kernel.sys_null k;
  Kernel.sys_null k;
  Alcotest.(check int) "syscalls counted" 2 (Kernel.perf k).Perf.syscalls

let test_kernel_tlb_share_bat () =
  (* §5.1: with the BAT mapping, kernel work leaves no kernel TLB entries;
     without it, the kernel competes for TLB slots. *)
  let share policy =
    let k = boot ~policy () in
    let t = Kernel.spawn k () in
    Kernel.switch_to k t;
    for _ = 1 to 20 do
      Kernel.sys_null k
    done;
    Kernel.kernel_tlb_entries k
  in
  Alcotest.(check int) "bat: zero kernel TLB entries" 0
    (share Policy.optimized);
  Alcotest.(check bool) "no bat: kernel present in TLB" true
    (share Policy.baseline > 0)

let test_mmap_munmap () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_mmap k ~pages:4 ~writable:true in
  Alcotest.(check int) "arena address" Mm.user_mmap_base ea;
  Kernel.touch k Mmu.Store ea;
  Kernel.touch k Mmu.Store (ea + Addr.page_size);
  Alcotest.(check int) "two pages mapped + faulted" 2
    (Kernel.perf k).Perf.page_faults;
  let free_before = Kernel_sim.Physmem.free_frames (Kernel.physmem k) in
  Kernel.sys_munmap k ~ea ~pages:4;
  Alcotest.(check int) "frames freed" (free_before + 2)
    (Kernel_sim.Physmem.free_frames (Kernel.physmem k));
  match Kernel.touch k Mmu.Load ea with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "unmapped range must segfault"

let test_munmap_errors () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  match Kernel.sys_munmap k ~ea:Mm.user_mmap_base ~pages:1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "munmap of nothing must fail"

let frames_of mm =
  let acc = ref [] in
  Kernel_sim.Pagetable.iter (Mm.pagetable mm) (fun _ e ->
      acc := e.Kernel_sim.Pagetable.rpn :: !acc);
  List.sort compare !acc

let frame_at mm ea =
  match Kernel_sim.Pagetable.find (Mm.pagetable mm) ~ea with
  | Some e -> e.Kernel_sim.Pagetable.rpn
  | None -> Alcotest.fail "expected a mapping"

let test_fork_cow () =
  let k = boot () in
  let parent = Kernel.spawn k () in
  Kernel.switch_to k parent;
  Kernel.touch k Mmu.Store data_base;
  Kernel.touch k Mmu.Store (data_base + Addr.page_size);
  let child = Kernel.sys_fork k in
  Alcotest.(check bool) "distinct pid" true
    (child.Task.pid <> parent.Task.pid);
  Alcotest.(check int) "mappings shared" 2 (Mm.mapped_pages child.Task.mm);
  (* copy-on-write: both sides reference the same frames, read-only *)
  Alcotest.(check (list int)) "same frames after fork"
    (frames_of parent.Task.mm)
    (frames_of child.Task.mm);
  (* reads do not break the sharing *)
  Kernel.switch_to k child;
  Kernel.touch k Mmu.Load data_base;
  Alcotest.(check int) "read keeps sharing"
    (frame_at parent.Task.mm data_base)
    (frame_at child.Task.mm data_base);
  (* a child store breaks exactly that page *)
  Kernel.touch k Mmu.Store data_base;
  Alcotest.(check bool) "store breaks sharing" true
    (frame_at child.Task.mm data_base <> frame_at parent.Task.mm data_base);
  Alcotest.(check int) "other page still shared"
    (frame_at parent.Task.mm (data_base + Addr.page_size))
    (frame_at child.Task.mm (data_base + Addr.page_size));
  (* the parent can write its (now private again) copy too *)
  Kernel.switch_to k parent;
  Kernel.touch k Mmu.Store data_base

let test_fork_cow_frame_conservation () =
  let k = boot () in
  let free0 = Kernel_sim.Physmem.free_frames (Kernel.physmem k) in
  let parent = Kernel.spawn k () in
  Kernel.switch_to k parent;
  for i = 0 to 3 do
    Kernel.touch k Mmu.Store (data_base + (i * Addr.page_size))
  done;
  let child = Kernel.sys_fork k in
  (* child writes two pages (breaking them), then everyone exits *)
  Kernel.switch_to k child;
  Kernel.touch k Mmu.Store data_base;
  Kernel.touch k Mmu.Store (data_base + Addr.page_size);
  Kernel.sys_exit k;
  Kernel.switch_to k parent;
  (* parent writes a page whose sharing died with the child *)
  Kernel.touch k Mmu.Store data_base;
  Kernel.sys_exit k;
  Alcotest.(check int) "no frame leaked or double-freed" free0
    (Kernel_sim.Physmem.free_frames (Kernel.physmem k))

let test_fork_shares_file_pages () =
  let k = boot () in
  let parent = Kernel.spawn k () in
  Kernel.switch_to k parent;
  let file = Vfs.create_file (Kernel.vfs k) ~name:"lib" ~pages:2 in
  let ea = Kernel.sys_mmap_file k file ~from_page:0 ~pages:2 ~writable:false in
  Kernel.touch k Mmu.Load ea;
  let child = Kernel.sys_fork k in
  let shared_frame mm =
    let acc = ref None in
    Kernel_sim.Pagetable.iter (Mm.pagetable mm) (fun _ e ->
        if e.Kernel_sim.Pagetable.shared then
          acc := Some e.Kernel_sim.Pagetable.rpn);
    !acc
  in
  Alcotest.(check (option int)) "same page-cache frame"
    (shared_frame parent.Task.mm)
    (shared_frame child.Task.mm)

let test_exec_resets () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  Kernel.touch k Mmu.Store data_base;
  let old_ctx = Mm.ctx t.Task.mm in
  Kernel.sys_exec k ~text_pages:4 ~data_pages:4 ~stack_pages:2;
  Alcotest.(check int) "address space emptied" 0
    (Mm.mapped_pages t.Task.mm);
  Alcotest.(check bool) "context renewed under lazy flushing" true
    (Mm.ctx t.Task.mm <> old_ctx);
  (* old image is gone; new image faults back in *)
  Kernel.touch k Mmu.Load Mm.user_text_base

let test_exit_releases () =
  let k = boot () in
  let free0 = Kernel_sim.Physmem.free_frames (Kernel.physmem k) in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  Kernel.touch k Mmu.Store data_base;
  Kernel.touch k Mmu.Store (data_base + Addr.page_size);
  Kernel.sys_exit k;
  Alcotest.(check int) "all frames back" free0
    (Kernel_sim.Physmem.free_frames (Kernel.physmem k));
  Alcotest.(check bool) "no current" true (Kernel.current k = None);
  Alcotest.(check int) "task list empty" 0 (List.length (Kernel.tasks k));
  Alcotest.(check int) "context retired" 0
    (V.live_contexts (Kernel.vsid_alloc k))

let test_brk_grows_heap () =
  let k = boot () in
  let t = Kernel.spawn k ~text_pages:16 ~data_pages:8 ~stack_pages:8 () in
  Kernel.switch_to k t;
  let old_end = data_base + (8 lsl Addr.page_shift) in
  (match Kernel.touch k Mmu.Store old_end with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "beyond the break must fault");
  let new_break = Kernel.sys_brk k ~pages:4 in
  Alcotest.(check int) "break advanced by four pages"
    (old_end + (4 lsl Addr.page_shift))
    new_break;
  (* the grown range is now usable *)
  Kernel.touch k Mmu.Store old_end;
  Kernel.touch k Mmu.Store (new_break - Addr.page_size);
  match Kernel.touch k Mmu.Store new_break with
  | exception Kernel.Segfault _ -> ()
  | () -> Alcotest.fail "beyond the new break must fault"

let test_brk_collision_rejected () =
  let k = boot () in
  let t = Kernel.spawn k ~text_pages:16 ~data_pages:8 ~stack_pages:8 () in
  Kernel.switch_to k t;
  (* grow the heap into the stack vma: must be refused *)
  let heap_to_stack_pages =
    (Mm.user_stack_top - (8 lsl Addr.page_shift) - data_base)
    lsr Addr.page_shift
  in
  match Kernel.sys_brk k ~pages:heap_to_stack_pages with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "brk into the stack must be rejected"

let test_pipe_data_flow () =
  let k = boot () in
  let a = Kernel.spawn k () and b = Kernel.spawn k () in
  let p = Kernel.new_pipe k in
  Kernel.switch_to k a;
  Alcotest.(check int) "write" 100
    (Kernel.sys_pipe_write k p ~buf:data_base ~bytes:100);
  Kernel.switch_to k b;
  Alcotest.(check int) "read" 100
    (Kernel.sys_pipe_read k p ~buf:data_base ~bytes:100);
  Alcotest.(check int) "empty read" 0
    (Kernel.sys_pipe_read k p ~buf:data_base ~bytes:1)

let test_file_write () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let file = Vfs.create_file (Kernel.vfs k) ~name:"out.o" ~pages:4 in
  Kernel.touch k Mmu.Store data_base;
  let idle0 = (Kernel.perf k).Perf.idle_cycles in
  Kernel.sys_file_write k file ~from_page:0 ~pages:4 ~buf:data_base;
  Alcotest.(check int) "writes never wait on disk" idle0
    (Kernel.perf k).Perf.idle_cycles;
  Alcotest.(check int) "pages resident afterwards" 4
    (Vfs.resident_pages file);
  (* reading back is warm *)
  let idle1 = (Kernel.perf k).Perf.idle_cycles in
  Kernel.sys_file_read k file ~from_page:0 ~pages:4 ~buf:data_base;
  Alcotest.(check int) "read-back warm" idle1 (Kernel.perf k).Perf.idle_cycles

let test_file_read_disk_wait () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let file = Vfs.create_file (Kernel.vfs k) ~name:"f" ~pages:2 in
  let buf = Kernel.sys_mmap k ~pages:2 ~writable:true in
  let idle0 = (Kernel.perf k).Perf.idle_cycles in
  Kernel.sys_file_read k file ~from_page:0 ~pages:2 ~buf;
  Alcotest.(check bool) "cold read waited on disk (idle)" true
    ((Kernel.perf k).Perf.idle_cycles
    >= idle0 + (2 * Kernel.disk_wait_cycles));
  let idle1 = (Kernel.perf k).Perf.idle_cycles in
  Kernel.sys_file_read k file ~from_page:0 ~pages:2 ~buf;
  Alcotest.(check int) "warm read has no disk wait" idle1
    (Kernel.perf k).Perf.idle_cycles

(* --- flush strategies -------------------------------------------------- *)

let test_precise_flush_searches_htab () =
  let k = boot ~policy:Mmu_tricks.Config.optimized_precise_flush () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_mmap k ~pages:4 ~writable:true in
  let before = (Kernel.perf k).Perf.flush_pte_searches in
  Kernel.sys_munmap k ~ea ~pages:4;
  Alcotest.(check int) "one search per page in range" (before + 4)
    (Kernel.perf k).Perf.flush_pte_searches

let test_lazy_flush_resets_context () =
  let k = boot ~policy:Policy.optimized () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let big = Policy.flush_cutoff_pages + 10 in
  let resets0 = (Kernel.perf k).Perf.flush_context_resets in
  let searches0 = (Kernel.perf k).Perf.flush_pte_searches in
  let ea = Kernel.sys_mmap k ~pages:big ~writable:true in
  Kernel.sys_munmap k ~ea ~pages:big;
  Alcotest.(check bool) "context resets happened" true
    ((Kernel.perf k).Perf.flush_context_resets > resets0);
  Alcotest.(check int) "no per-page searches" searches0
    (Kernel.perf k).Perf.flush_pte_searches

let test_lazy_below_cutoff_is_precise () =
  let k = boot ~policy:Policy.optimized () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let small = Policy.flush_cutoff_pages - 5 in
  let resets0 = (Kernel.perf k).Perf.flush_context_resets in
  let ea = Kernel.sys_mmap k ~pages:small ~writable:true in
  Kernel.sys_munmap k ~ea ~pages:small;
  Alcotest.(check int) "no context reset below cutoff" resets0
    (Kernel.perf k).Perf.flush_context_resets;
  Alcotest.(check bool) "precise searches instead" true
    ((Kernel.perf k).Perf.flush_pte_searches >= 2 * small)

let test_lazy_flush_correctness () =
  (* After a lazy whole-context flush, the old translations must be
     unreachable and fresh ones must be correct. *)
  let k = boot ~policy:Policy.optimized () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let big = Policy.flush_cutoff_pages + 10 in
  let ea = Kernel.sys_mmap k ~pages:big ~writable:true in
  Kernel.touch k Mmu.Store ea;
  let pa_before = Mmu.probe (Kernel.mmu k) Mmu.Load ea in
  Kernel.sys_munmap k ~ea ~pages:big;
  Alcotest.(check (option int)) "old mapping unreachable" None
    (Mmu.probe (Kernel.mmu k) Mmu.Load ea);
  (* map a new range; it must resolve to a fresh frame *)
  let ea2 = Kernel.sys_mmap k ~pages:big ~writable:true in
  Alcotest.(check bool) "arena bumps upward" true (ea2 > ea);
  Kernel.touch k Mmu.Store ea2;
  let pa_after = Mmu.probe (Kernel.mmu k) Mmu.Load ea2 in
  Alcotest.(check bool) "new mapping resolves" true (pa_after <> None);
  ignore pa_before

let test_ops_require_current_task () =
  let k = boot () in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "must require a current task"
  in
  expect_invalid (fun () -> Kernel.sys_mmap k ~pages:1 ~writable:true);
  expect_invalid (fun () -> Kernel.sys_fork k);
  expect_invalid (fun () -> Kernel.sys_exit k);
  expect_invalid (fun () -> Kernel.sys_brk k ~pages:1)

let test_oom_raises_and_recovers () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  (* exhaust memory with one huge mapping... *)
  let free = Kernel_sim.Physmem.free_frames (Kernel.physmem k) in
  let pages = free + 64 in
  let ea = Kernel.sys_mmap k ~pages ~writable:true in
  (match
     for i = 0 to pages - 1 do
       Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
     done
   with
  | exception Kernel_sim.Pagetable.Out_of_frames -> ()
  | () -> Alcotest.fail "expected Out_of_frames");
  (* ...then release it and confirm the system still works *)
  Kernel.sys_munmap k ~ea ~pages;
  let ea2 = Kernel.sys_mmap k ~pages:8 ~writable:true in
  Kernel.touch k Mmu.Store ea2;
  Kernel.sys_exit k;
  Alcotest.(check bool) "most frames recovered" true
    (Kernel_sim.Physmem.free_frames (Kernel.physmem k) >= free - 16)

let test_idle_slice_progress () =
  let k = boot () in
  let c0 = Kernel.cycles k in
  Kernel.idle_slice k;
  Alcotest.(check bool) "cycles advance" true (Kernel.cycles k > c0);
  let target = Kernel.cycles k + 5000 in
  Kernel.idle_for k ~cycles:5000;
  Alcotest.(check bool) "idle_for reaches target" true
    (Kernel.cycles k >= target)

let test_idle_reclaim_clears_zombies () =
  let k = boot ~policy:Policy.optimized () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  (* create zombies: touch pages then lazily flush them *)
  let big = Policy.flush_cutoff_pages + 20 in
  let ea = Kernel.sys_mmap k ~pages:big ~writable:true in
  for i = 0 to big - 1 do
    Kernel.touch k Mmu.Store (ea + (i lsl Addr.page_shift))
  done;
  Kernel.sys_munmap k ~ea ~pages:big;
  let _, zombies = Kernel.htab_live_and_zombie k in
  Alcotest.(check bool) "zombies exist" true (zombies > 0);
  (* run the idle task long enough to sweep the whole htab *)
  Kernel.idle_for k ~cycles:3_000_000;
  let _, zombies' = Kernel.htab_live_and_zombie k in
  Alcotest.(check int) "idle reclaim swept them" 0 zombies';
  Alcotest.(check bool) "counted" true
    ((Kernel.perf k).Perf.zombies_reclaimed >= zombies)

let test_user_run_faults_text () =
  let k = boot () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  Kernel.user_run k ~instrs:800;
  Alcotest.(check bool) "text pages faulted in" true
    ((Kernel.perf k).Perf.page_faults >= 1);
  Alcotest.(check bool) "instructions charged" true
    ((Kernel.perf k).Perf.instructions >= 800)

let suite =
  [ Alcotest.test_case "boot programs BATs" `Quick test_boot_bat;
    Alcotest.test_case "boot without BATs" `Quick test_boot_no_bat;
    Alcotest.test_case "spawn and demand fault" `Quick test_spawn_touch;
    Alcotest.test_case "segfaults" `Quick test_segfault;
    Alcotest.test_case "syscall counting" `Quick test_null_syscall_counts;
    Alcotest.test_case "kernel TLB share vs BAT (§5.1)" `Quick
      test_kernel_tlb_share_bat;
    Alcotest.test_case "mmap/munmap" `Quick test_mmap_munmap;
    Alcotest.test_case "munmap errors" `Quick test_munmap_errors;
    Alcotest.test_case "fork is copy-on-write" `Quick test_fork_cow;
    Alcotest.test_case "COW conserves frames" `Quick
      test_fork_cow_frame_conservation;
    Alcotest.test_case "fork shares page cache" `Quick
      test_fork_shares_file_pages;
    Alcotest.test_case "exec resets the image" `Quick test_exec_resets;
    Alcotest.test_case "exit releases resources" `Quick test_exit_releases;
    Alcotest.test_case "brk grows the heap" `Quick test_brk_grows_heap;
    Alcotest.test_case "brk collision rejected" `Quick
      test_brk_collision_rejected;
    Alcotest.test_case "pipe data flow" `Quick test_pipe_data_flow;
    Alcotest.test_case "file write" `Quick test_file_write;
    Alcotest.test_case "file read disk wait" `Quick test_file_read_disk_wait;
    Alcotest.test_case "precise flush searches htab" `Quick
      test_precise_flush_searches_htab;
    Alcotest.test_case "lazy flush resets context (§7)" `Quick
      test_lazy_flush_resets_context;
    Alcotest.test_case "below cutoff stays precise (§7)" `Quick
      test_lazy_below_cutoff_is_precise;
    Alcotest.test_case "lazy flush correctness (§7)" `Quick
      test_lazy_flush_correctness;
    Alcotest.test_case "ops require a current task" `Quick
      test_ops_require_current_task;
    Alcotest.test_case "OOM raises and recovers" `Quick
      test_oom_raises_and_recovers;
    Alcotest.test_case "idle slice progress" `Quick test_idle_slice_progress;
    Alcotest.test_case "idle reclaim clears zombies (§7)" `Quick
      test_idle_reclaim_clears_zombies;
    Alcotest.test_case "user_run faults text" `Quick
      test_user_run_faults_text ]
