examples/lmbench_tour.ml: Format Kernel_sim Mmu_tricks Ppc Printf Workloads
