(* Parallel make under the cooperative scheduler: compile jobs sleep on
   their cold source reads while others compute — the idle-time structure
   (§9: "a lot of I/O happens that must be waited for") made visible.

     dune exec examples/parallel_make.exe *)

module Machine = Ppc.Machine
module Policy = Kernel_sim.Policy
module Report = Mmu_tricks.Report
module Pm = Workloads.Parmake

let () =
  print_endline "Building 12 objects on a 185MHz 604, varying make -jN:";
  print_newline ();
  let rows =
    List.map
      (fun jobserver ->
        let r =
          Pm.measure ~machine:Machine.ppc604_185 ~policy:Policy.optimized
            ~params:{ Pm.default_params with Pm.jobserver }
            ()
        in
        [ Printf.sprintf "-j%d" jobserver;
          Report.fmt_ms (r.Pm.wall_us /. 1000.);
          Report.fmt_pct (100.0 *. r.Pm.idle_fraction);
          Report.fmt_int r.Pm.perf.Ppc.Perf.context_switches;
          Report.fmt_int r.Pm.perf.Ppc.Perf.zombies_reclaimed ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~header:[ "width"; "wall ms"; "idle"; "switches"; "zombies reclaimed" ]
    ~rows;
  print_newline ();
  print_endline
    "-j1 turns every disk wait into idle time; those windows are where";
  print_endline
    "the paper's idle task does its work (the zombie-reclaim column).";
  print_endline
    "Wider jobservers trade the idle windows for overlapped computation."
