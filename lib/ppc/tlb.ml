type entry = {
  vpn : Addr.vpn;
  rpn : int;
  inhibited : bool;
  writable : bool;
}

(* Slots hold [entry option]; [stamp] implements LRU via a global tick. *)
type t = {
  n_sets : int;
  n_ways : int;
  slots : entry option array;  (* set-major: slot = set * ways + way *)
  stamps : int array;
  mutable tick : int;
}

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Tlb.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Tlb.create: ways must be positive";
  { n_sets = sets;
    n_ways = ways;
    slots = Array.make (sets * ways) None;
    stamps = Array.make (sets * ways) 0;
    tick = 0 }

let sets t = t.n_sets
let ways t = t.n_ways
let capacity t = t.n_sets * t.n_ways

let set_of t vpn = vpn land (t.n_sets - 1)

let lookup t vpn =
  let base = set_of t vpn * t.n_ways in
  let rec loop w =
    if w >= t.n_ways then None
    else
      match t.slots.(base + w) with
      | Some e when e.vpn = vpn ->
          t.tick <- t.tick + 1;
          t.stamps.(base + w) <- t.tick;
          Some e
      | Some _ | None -> loop (w + 1)
  in
  loop 0

let peek t vpn =
  let base = set_of t vpn * t.n_ways in
  let rec loop w =
    if w >= t.n_ways then None
    else
      match t.slots.(base + w) with
      | Some e when e.vpn = vpn -> Some e
      | Some _ | None -> loop (w + 1)
  in
  loop 0

let insert_replacing t e =
  let base = set_of t e.vpn * t.n_ways in
  (* Prefer: same-VPN slot (update), then an invalid way, else LRU. *)
  let victim = ref (-1) in
  let lru = ref max_int in
  let lru_way = ref 0 in
  for w = 0 to t.n_ways - 1 do
    (match t.slots.(base + w) with
    | Some old when old.vpn = e.vpn -> victim := w
    | None -> if !victim < 0 then victim := w
    | Some _ -> ());
    if t.stamps.(base + w) < !lru then begin
      lru := t.stamps.(base + w);
      lru_way := w
    end
  done;
  let w = if !victim >= 0 then !victim else !lru_way in
  let displaced =
    match t.slots.(base + w) with
    | Some old when old.vpn <> e.vpn -> Some old
    | Some _ | None -> None
  in
  t.tick <- t.tick + 1;
  t.slots.(base + w) <- Some e;
  t.stamps.(base + w) <- t.tick;
  displaced

let insert t e = ignore (insert_replacing t e : entry option)

let invalidate_page t vpn =
  let base = set_of t vpn * t.n_ways in
  for w = 0 to t.n_ways - 1 do
    match t.slots.(base + w) with
    | Some e when e.vpn = vpn -> t.slots.(base + w) <- None
    | Some _ | None -> ()
  done

let invalidate_all t = Array.fill t.slots 0 (Array.length t.slots) None

let occupancy t =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 t.slots

let count_matching t p =
  Array.fold_left
    (fun n -> function Some e when p e.vpn -> n + 1 | Some _ | None -> n)
    0 t.slots

let iter t f =
  Array.iter (function Some e -> f e | None -> ()) t.slots
