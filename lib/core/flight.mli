(** The flight-recorder timeline: streaming encoder, decoder, in-run
    hot-spot detectors, and the Perfetto counter export.

    {!Ppc.Recorder} takes the bounded-memory samples; this layer turns
    them into a durable artifact and watches them as they stream:

    - {e encode}: each sample becomes one compact JSONL line,
      delta-encoded — only counters and gauge vectors that changed since
      the previous line are emitted, so a long mostly-idle run costs
      bytes proportional to what happened, not to time;
    - {e detect}: typed rules ({!Above}/{!Below}/{!Step}) over derived
      {!metrics} fire typed {!incident} records into the same stream,
      carrying the profiler's attribution snapshot when [--profile] is
      armed;
    - {e decode}: {!read_file} re-integrates the deltas into absolute
      {!timeline}s for [replay], [watch] and the tests;
    - {e export}: {!to_chrome} renders Perfetto counter tracks (one
      process per recorder, one counter per metric, instant markers for
      incidents).

    A {!sink} is the streaming state machine; {!arm} wires it into every
    kernel booted afterwards via {!Ppc.Recorder.set_boot_attach}.  The
    sink writes through a caller-supplied [write] so the serial CLI can
    stream lines to disk live (that is what [mmu_sim watch] tails) while
    parallel runner workers buffer lines and ship them through
    {!Runner.collect_hook}. *)

open Ppc

(** {1 Views} — one sample with absolute values *)

type view = {
  v_cycle : int;
  v_perf : (string * int) list;  (** {!Ppc.Perf.fields} of the snapshot *)
  v_gauges : (string * int array) list;
}

val view_of_sample : Recorder.sample -> view
val pfield : view -> string -> int
(** A perf counter by name; 0 when absent. *)

val gauge : view -> string -> int array option

(** {1 Derived metrics}

    Each metric is a [float option] over (previous view, current view):
    interval rates need a predecessor, instantaneous gauges need their
    source installed (no htab — no [pteg_max_chain]). *)

val metric_names : string list
val metric_doc : string -> string option
val compute : string -> prev:view option -> view -> float option

(** {1 Detector rules} *)

type trigger =
  | Above of float  (** fires when the metric exceeds the threshold *)
  | Below of float
      (** fires when the metric drops under the threshold, once the
          trailing window has filled (so startup can't trip it) *)
  | Step of float
      (** fires when the metric exceeds [factor x] the trailing-window
          mean (window full, mean positive) — the step-change detector *)
  | Drop of float
      (** fires when the metric falls under [mean / factor] (window
          full, mean positive) — the collapse detector; a run whose
          metric was always zero never trips it *)

type rule = {
  rl_id : string;
  rl_metric : string;  (** one of {!metric_names} *)
  rl_trigger : trigger;
  rl_window : int;  (** trailing samples behind the current one *)
  rl_cooldown : int;  (** samples suppressed after a firing *)
}

val rule : ?window:int -> ?cooldown:int -> string -> string -> trigger -> rule
(** [rule id metric trigger] with [window]/[cooldown] defaulting to 8.
    @raise Invalid_argument on an unknown metric, [window < 1] or
    [cooldown < 0]. *)

val default_rules : rule list
(** The five stock detectors: [htab-chain-spike] (a PTEG filled),
    [tlb-miss-step] (6x step in the TLB miss rate over a 32-sample
    baseline), [vsid-wrap-burst] (any context-counter wrap),
    [runq-imbalance] (run-queue depth skew across CPUs),
    [idle-collapse] (idle fraction drops to under 1/20 of its trailing
    mean — saturation onset, quiet on runs that never had idle). *)

val trigger_text : trigger -> string

val rules_to_json : rule list -> Json.t
val rules_of_json : Json.t -> (rule list, string) result
(** Codec for [--detect RULES.json]: [{"rules": [{"id", "metric", one of
    "above"/"below"/"step"/"drop", optional "window", "cooldown"},
    ...]}]. *)

val load_rules : string -> (rule list, string) result

(** {1 Incidents} *)

type incident = {
  i_run : int;  (** the firing recorder's {!Ppc.Recorder.run_id} *)
  i_label : string;
  i_cycle : int;
  i_rule : string;
  i_metric : string;
  i_value : float;
  i_trigger : string;  (** rendered threshold, e.g. ["> 7.5"] *)
  i_attr : (int * int * int * int * int) list;
      (** profiler attribution snapshot at firing time as
          [(pid, seg, kind, count, cost)] rows (kind as
          {!Ppc.Profile.all_kinds} index); empty unless profiling was
          armed *)
}

val incident_json : incident -> Json.t
val incident_of_json : Json.t -> incident
val describe_incident : incident -> string

(** {1 The detector state machine} — shared by the streaming sink and
    batch {!detect} *)

type detector

val detector : rule list -> detector
val detector_step :
  detector -> run:int -> label:string -> prev:view option -> view ->
  incident list
(** Feed one sample; returns the incidents it fired.  Per-rule trailing
    windows exclude the current sample, so a {!Step} baseline is what
    came before the spike. *)

(** {1 Timeline decoding} *)

type timeline = {
  tl_run : int;
  tl_label : string;
  tl_every : int;  (** cadence at begin *)
  tl_final_every : int;  (** cadence at end — doubled per decimation *)
  tl_total : int;  (** samples ever taken by the recorder *)
  tl_ended : bool;  (** an ["end"] line closed this run *)
  tl_views : view list;  (** streamed samples, deltas re-integrated *)
  tl_incidents : incident list;
}

val decode_lines : string list -> (timeline list, string) result
(** Re-integrate a JSONL stream.  A ["begin"] for an already-open run id
    closes the old run first (distinct runner workers can reuse ids);
    runs never closed by an ["end"] line (crashed or still-running
    producer) are returned with what was streamed.  [Error] carries the
    offending line number. *)

val read_file : string -> (timeline list, string) result

val detect : ?rules:rule list -> timeline -> incident list
(** Batch detection over a decoded timeline ([replay --detect]). *)

val series : timeline -> (string * (int * float) list) list
(** Every computable metric as [(cycle, value)] points, in
    {!metric_names} order; metrics with no points are dropped. *)

(** {1 The streaming sink} *)

type sink

val sink : ?rules:rule list -> write:(string -> unit) -> unit -> sink
(** [write] receives one complete JSONL line (no newline) per record;
    rules default to {!default_rules}. *)

val attach : sink -> Recorder.t -> unit
(** Emit the ["begin"] line and hook the recorder's
    {!Ppc.Recorder.set_on_sample} so every sample streams, is
    delta-encoded and detector-checked as it is taken. *)

val finish : sink -> Recorder.t -> unit
(** Emit the ["end"] line (final cadence, total/retained counts). *)

val incidents : sink -> incident list
(** Incidents fired through this sink, in firing order. *)

(** {1 Session glue} *)

val arm : ?every:int -> ?cap:int -> sink -> unit
(** Arm {!Ppc.Recorder.set_boot_defaults} and point
    {!Ppc.Recorder.set_boot_attach} at [attach sink]: every kernel
    booted afterwards records into this sink. *)

val disarm : unit -> unit

val drain_into : sink -> unit
(** {!finish} every boot-armed recorder created since the last drain —
    call after each experiment (the serial CLI directly, parallel
    workers from {!Runner.collect_hook}). *)

(** {1 Export} *)

val to_chrome : ?mhz:int -> ?name:string -> timeline list -> Json.t
(** Perfetto/Chrome trace JSON: one process per timeline, one counter
    track ([ph:"C"]) per derived metric, one instant event per incident.
    [mhz] converts cycles to microsecond timestamps (default 100). *)
