type t = {
  mutable cycles : int;
  mutable idle_cycles : int;
  mutable instructions : int;
  mutable mem_refs : int;
  mutable itlb_lookups : int;
  mutable itlb_misses : int;
  mutable dtlb_lookups : int;
  mutable dtlb_misses : int;
  mutable htab_searches : int;
  mutable htab_hits : int;
  mutable htab_misses : int;
  mutable htab_reloads : int;
  mutable htab_evicts : int;
  mutable htab_evicts_live : int;
  mutable htab_evicts_zombie : int;
  mutable icache_accesses : int;
  mutable icache_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable dcache_bypasses : int;
  mutable dcache_writebacks : int;
  mutable page_faults : int;
  mutable flush_pte_searches : int;
  mutable flush_context_resets : int;
  mutable context_switches : int;
  mutable syscalls : int;
  mutable zombies_reclaimed : int;
  mutable pages_cleared_idle : int;
  mutable prezeroed_hits : int;
  mutable get_free_page_calls : int;
  mutable ipis_sent : int;
  mutable tlb_shootdowns : int;
  mutable shootdowns_deferred : int;
  mutable remote_tlb_invalidates : int;
  mutable shootdown_batch_pages : int;
  mutable work_steals : int;
  mutable vsid_wraps : int;
}

let create () =
  { cycles = 0;
    idle_cycles = 0;
    instructions = 0;
    mem_refs = 0;
    itlb_lookups = 0;
    itlb_misses = 0;
    dtlb_lookups = 0;
    dtlb_misses = 0;
    htab_searches = 0;
    htab_hits = 0;
    htab_misses = 0;
    htab_reloads = 0;
    htab_evicts = 0;
    htab_evicts_live = 0;
    htab_evicts_zombie = 0;
    icache_accesses = 0;
    icache_misses = 0;
    dcache_accesses = 0;
    dcache_misses = 0;
    dcache_bypasses = 0;
    dcache_writebacks = 0;
    page_faults = 0;
    flush_pte_searches = 0;
    flush_context_resets = 0;
    context_switches = 0;
    syscalls = 0;
    zombies_reclaimed = 0;
    pages_cleared_idle = 0;
    prezeroed_hits = 0;
    get_free_page_calls = 0;
    ipis_sent = 0;
    tlb_shootdowns = 0;
    shootdowns_deferred = 0;
    remote_tlb_invalidates = 0;
    shootdown_batch_pages = 0;
    work_steals = 0;
    vsid_wraps = 0 }

let reset t =
  t.cycles <- 0;
  t.idle_cycles <- 0;
  t.instructions <- 0;
  t.mem_refs <- 0;
  t.itlb_lookups <- 0;
  t.itlb_misses <- 0;
  t.dtlb_lookups <- 0;
  t.dtlb_misses <- 0;
  t.htab_searches <- 0;
  t.htab_hits <- 0;
  t.htab_misses <- 0;
  t.htab_reloads <- 0;
  t.htab_evicts <- 0;
  t.htab_evicts_live <- 0;
  t.htab_evicts_zombie <- 0;
  t.icache_accesses <- 0;
  t.icache_misses <- 0;
  t.dcache_accesses <- 0;
  t.dcache_misses <- 0;
  t.dcache_bypasses <- 0;
  t.dcache_writebacks <- 0;
  t.page_faults <- 0;
  t.flush_pte_searches <- 0;
  t.flush_context_resets <- 0;
  t.context_switches <- 0;
  t.syscalls <- 0;
  t.zombies_reclaimed <- 0;
  t.pages_cleared_idle <- 0;
  t.prezeroed_hits <- 0;
  t.get_free_page_calls <- 0;
  t.ipis_sent <- 0;
  t.tlb_shootdowns <- 0;
  t.shootdowns_deferred <- 0;
  t.remote_tlb_invalidates <- 0;
  t.shootdown_batch_pages <- 0;
  t.work_steals <- 0;
  t.vsid_wraps <- 0

let snapshot t =
  { cycles = t.cycles;
    idle_cycles = t.idle_cycles;
    instructions = t.instructions;
    mem_refs = t.mem_refs;
    itlb_lookups = t.itlb_lookups;
    itlb_misses = t.itlb_misses;
    dtlb_lookups = t.dtlb_lookups;
    dtlb_misses = t.dtlb_misses;
    htab_searches = t.htab_searches;
    htab_hits = t.htab_hits;
    htab_misses = t.htab_misses;
    htab_reloads = t.htab_reloads;
    htab_evicts = t.htab_evicts;
    htab_evicts_live = t.htab_evicts_live;
    htab_evicts_zombie = t.htab_evicts_zombie;
    icache_accesses = t.icache_accesses;
    icache_misses = t.icache_misses;
    dcache_accesses = t.dcache_accesses;
    dcache_misses = t.dcache_misses;
    dcache_bypasses = t.dcache_bypasses;
    dcache_writebacks = t.dcache_writebacks;
    page_faults = t.page_faults;
    flush_pte_searches = t.flush_pte_searches;
    flush_context_resets = t.flush_context_resets;
    context_switches = t.context_switches;
    syscalls = t.syscalls;
    zombies_reclaimed = t.zombies_reclaimed;
    pages_cleared_idle = t.pages_cleared_idle;
    prezeroed_hits = t.prezeroed_hits;
    get_free_page_calls = t.get_free_page_calls;
    ipis_sent = t.ipis_sent;
    tlb_shootdowns = t.tlb_shootdowns;
    shootdowns_deferred = t.shootdowns_deferred;
    remote_tlb_invalidates = t.remote_tlb_invalidates;
    shootdown_batch_pages = t.shootdown_batch_pages;
    work_steals = t.work_steals;
    vsid_wraps = t.vsid_wraps }

let diff ~after ~before =
  { cycles = after.cycles - before.cycles;
    idle_cycles = after.idle_cycles - before.idle_cycles;
    instructions = after.instructions - before.instructions;
    mem_refs = after.mem_refs - before.mem_refs;
    itlb_lookups = after.itlb_lookups - before.itlb_lookups;
    itlb_misses = after.itlb_misses - before.itlb_misses;
    dtlb_lookups = after.dtlb_lookups - before.dtlb_lookups;
    dtlb_misses = after.dtlb_misses - before.dtlb_misses;
    htab_searches = after.htab_searches - before.htab_searches;
    htab_hits = after.htab_hits - before.htab_hits;
    htab_misses = after.htab_misses - before.htab_misses;
    htab_reloads = after.htab_reloads - before.htab_reloads;
    htab_evicts = after.htab_evicts - before.htab_evicts;
    htab_evicts_live = after.htab_evicts_live - before.htab_evicts_live;
    htab_evicts_zombie = after.htab_evicts_zombie - before.htab_evicts_zombie;
    icache_accesses = after.icache_accesses - before.icache_accesses;
    icache_misses = after.icache_misses - before.icache_misses;
    dcache_accesses = after.dcache_accesses - before.dcache_accesses;
    dcache_misses = after.dcache_misses - before.dcache_misses;
    dcache_bypasses = after.dcache_bypasses - before.dcache_bypasses;
    dcache_writebacks = after.dcache_writebacks - before.dcache_writebacks;
    page_faults = after.page_faults - before.page_faults;
    flush_pte_searches = after.flush_pte_searches - before.flush_pte_searches;
    flush_context_resets =
      after.flush_context_resets - before.flush_context_resets;
    context_switches = after.context_switches - before.context_switches;
    syscalls = after.syscalls - before.syscalls;
    zombies_reclaimed = after.zombies_reclaimed - before.zombies_reclaimed;
    pages_cleared_idle = after.pages_cleared_idle - before.pages_cleared_idle;
    prezeroed_hits = after.prezeroed_hits - before.prezeroed_hits;
    get_free_page_calls =
      after.get_free_page_calls - before.get_free_page_calls;
    ipis_sent = after.ipis_sent - before.ipis_sent;
    tlb_shootdowns = after.tlb_shootdowns - before.tlb_shootdowns;
    shootdowns_deferred = after.shootdowns_deferred - before.shootdowns_deferred;
    remote_tlb_invalidates = after.remote_tlb_invalidates - before.remote_tlb_invalidates;
    shootdown_batch_pages =
      after.shootdown_batch_pages - before.shootdown_batch_pages;
    work_steals = after.work_steals - before.work_steals;
    vsid_wraps = after.vsid_wraps - before.vsid_wraps }

(* Every counter as (name, value), in declaration order.  The
   exhaustiveness test checks this list against the record's arity, so a
   counter added to the type but forgotten here (or in snapshot/diff/
   reset) fails loudly instead of silently dropping out of timelines. *)
let fields t =
  [ ("cycles", t.cycles);
    ("idle_cycles", t.idle_cycles);
    ("instructions", t.instructions);
    ("mem_refs", t.mem_refs);
    ("itlb_lookups", t.itlb_lookups);
    ("itlb_misses", t.itlb_misses);
    ("dtlb_lookups", t.dtlb_lookups);
    ("dtlb_misses", t.dtlb_misses);
    ("htab_searches", t.htab_searches);
    ("htab_hits", t.htab_hits);
    ("htab_misses", t.htab_misses);
    ("htab_reloads", t.htab_reloads);
    ("htab_evicts", t.htab_evicts);
    ("htab_evicts_live", t.htab_evicts_live);
    ("htab_evicts_zombie", t.htab_evicts_zombie);
    ("icache_accesses", t.icache_accesses);
    ("icache_misses", t.icache_misses);
    ("dcache_accesses", t.dcache_accesses);
    ("dcache_misses", t.dcache_misses);
    ("dcache_bypasses", t.dcache_bypasses);
    ("dcache_writebacks", t.dcache_writebacks);
    ("page_faults", t.page_faults);
    ("flush_pte_searches", t.flush_pte_searches);
    ("flush_context_resets", t.flush_context_resets);
    ("context_switches", t.context_switches);
    ("syscalls", t.syscalls);
    ("zombies_reclaimed", t.zombies_reclaimed);
    ("pages_cleared_idle", t.pages_cleared_idle);
    ("prezeroed_hits", t.prezeroed_hits);
    ("get_free_page_calls", t.get_free_page_calls);
    ("ipis_sent", t.ipis_sent);
    ("tlb_shootdowns", t.tlb_shootdowns);
    ("shootdowns_deferred", t.shootdowns_deferred);
    ("remote_tlb_invalidates", t.remote_tlb_invalidates);
    ("shootdown_batch_pages", t.shootdown_batch_pages);
    ("work_steals", t.work_steals);
    ("vsid_wraps", t.vsid_wraps) ]

let tlb_misses t = t.itlb_misses + t.dtlb_misses
let tlb_lookups t = t.itlb_lookups + t.dtlb_lookups
let cache_misses t = t.icache_misses + t.dcache_misses
let busy_cycles t = t.cycles - t.idle_cycles

let pp fmt t =
  let field name v = if v <> 0 then Format.fprintf fmt "  %-22s %d@," name v in
  Format.fprintf fmt "@[<v>perf counters:@,";
  field "cycles" t.cycles;
  field "idle_cycles" t.idle_cycles;
  field "instructions" t.instructions;
  field "mem_refs" t.mem_refs;
  field "itlb_lookups" t.itlb_lookups;
  field "itlb_misses" t.itlb_misses;
  field "dtlb_lookups" t.dtlb_lookups;
  field "dtlb_misses" t.dtlb_misses;
  field "htab_searches" t.htab_searches;
  field "htab_hits" t.htab_hits;
  field "htab_misses" t.htab_misses;
  field "htab_reloads" t.htab_reloads;
  field "htab_evicts" t.htab_evicts;
  field "htab_evicts_live" t.htab_evicts_live;
  field "htab_evicts_zombie" t.htab_evicts_zombie;
  field "icache_accesses" t.icache_accesses;
  field "icache_misses" t.icache_misses;
  field "dcache_accesses" t.dcache_accesses;
  field "dcache_misses" t.dcache_misses;
  field "dcache_bypasses" t.dcache_bypasses;
  field "dcache_writebacks" t.dcache_writebacks;
  field "page_faults" t.page_faults;
  field "flush_pte_searches" t.flush_pte_searches;
  field "flush_context_resets" t.flush_context_resets;
  field "context_switches" t.context_switches;
  field "syscalls" t.syscalls;
  field "zombies_reclaimed" t.zombies_reclaimed;
  field "pages_cleared_idle" t.pages_cleared_idle;
  field "prezeroed_hits" t.prezeroed_hits;
  field "get_free_page_calls" t.get_free_page_calls;
  field "ipis_sent" t.ipis_sent;
  field "tlb_shootdowns" t.tlb_shootdowns;
  field "shootdowns_deferred" t.shootdowns_deferred;
  field "remote_tlb_invalidates" t.remote_tlb_invalidates;
  field "shootdown_batch_pages" t.shootdown_batch_pages;
  field "work_steals" t.work_steals;
  field "vsid_wraps" t.vsid_wraps;
  Format.fprintf fmt "@]"
