(* The flight recorder core: one-int-compare disabled cost, fixed-cadence
   sampling, deterministic decimation under the retention cap, in-place
   gauge replacement, the streaming hook, the boot-defaults registry —
   and the free-ness contract (an armed run's tables are byte-identical
   to a bare run at the same seed). *)
open Ppc
module Experiments = Mmu_tricks.Experiments

let mk () =
  let perf = Perf.create () in
  (perf, Recorder.create ~perf)

(* --- lifecycle --------------------------------------------------------- *)

let test_disabled_by_default () =
  let _, r = mk () in
  Alcotest.(check bool) "disabled" false (Recorder.enabled r);
  Alcotest.(check int) "no samples" 0 (Recorder.length r);
  (* [next_sample] is the Memsys.charge fast-path read: must be max_int *)
  Alcotest.(check int) "sentinel" max_int r.Recorder.next_sample

let test_enable_validates () =
  let _, r = mk () in
  Alcotest.check_raises "every < 1"
    (Invalid_argument "Recorder.enable: every must be >= 1") (fun () ->
      Recorder.enable ~every:0 r);
  Alcotest.check_raises "cap < 2"
    (Invalid_argument "Recorder.enable: cap must be >= 2") (fun () ->
      Recorder.enable ~cap:1 r)

let test_cadence_scheduling () =
  let perf, r = mk () in
  perf.Perf.cycles <- 250;
  Recorder.enable ~every:100 ~cap:8 r;
  Alcotest.(check bool) "enabled" true (Recorder.enabled r);
  Alcotest.(check int) "first sample at cycles + every" 350
    r.Recorder.next_sample;
  perf.Perf.cycles <- 410;
  Recorder.take_sample r;
  Alcotest.(check int) "rescheduled from the actual cycle" 510
    r.Recorder.next_sample;
  Alcotest.(check int) "one retained" 1 (Recorder.length r);
  Alcotest.(check int) "snapshot carries the cycle" 410
    (Recorder.sample r 0).Recorder.s_cycle;
  Recorder.disable r;
  Alcotest.(check int) "disable restores the sentinel" max_int
    r.Recorder.next_sample

let test_snapshot_immutable () =
  let perf, r = mk () in
  Recorder.enable ~every:10 ~cap:4 r;
  perf.Perf.cycles <- 10;
  perf.Perf.itlb_misses <- 3;
  Recorder.take_sample r;
  perf.Perf.itlb_misses <- 99;
  Alcotest.(check int) "sample is a snapshot, not the live record" 3
    (Recorder.sample r 0).Recorder.s_perf.Perf.itlb_misses

(* --- decimation -------------------------------------------------------- *)

let test_decimation () =
  let perf, r = mk () in
  Recorder.enable ~every:10 ~cap:4 r;
  for i = 1 to 9 do
    perf.Perf.cycles <- i * 10;
    Recorder.take_sample r
  done;
  (* cap 4: the stream halves (keep every other sample, double the
     cadence) each time it fills — 9 samples decimate three times *)
  Alcotest.(check int) "total counts every sample" 9 (Recorder.total r);
  Alcotest.(check int) "retained under cap" 3 (Recorder.length r);
  Alcotest.(check (list int)) "kept samples are deterministic"
    [ 10; 70; 90 ]
    (List.map (fun s -> s.Recorder.s_cycle) (Recorder.samples r));
  Alcotest.(check int) "cadence doubled per decimation" 80 (Recorder.every r)

let test_streaming_hook_sees_everything () =
  let perf, r = mk () in
  Recorder.enable ~every:10 ~cap:4 r;
  let streamed = ref [] in
  Recorder.set_on_sample r (fun rcd s ->
      Alcotest.(check int) "hook gets the owning recorder"
        (Recorder.run_id r) (Recorder.run_id rcd);
      streamed := s.Recorder.s_cycle :: !streamed);
  for i = 1 to 9 do
    perf.Perf.cycles <- i * 10;
    Recorder.take_sample r
  done;
  (* decimation coarsens retention, never the stream *)
  Alcotest.(check (list int)) "full stream at original cadence"
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (List.rev !streamed)

(* --- gauge sources ----------------------------------------------------- *)

let test_gauge_replace_in_place () =
  let perf, r = mk () in
  Recorder.add_source r ~name:"a" (fun () -> [| 1 |]);
  Recorder.add_source r ~name:"b" (fun () -> [| 2 |]);
  Recorder.add_source r ~name:"a" (fun () -> [| 111 |]);
  Alcotest.(check (list string)) "order undisturbed" [ "a"; "b" ]
    (Recorder.source_names r);
  Recorder.enable ~every:10 ~cap:4 r;
  perf.Perf.cycles <- 10;
  Recorder.take_sample r;
  Alcotest.(check bool) "replacement source is live" true
    ((Recorder.sample r 0).Recorder.s_gauges = [ ("a", [| 111 |]); ("b", [| 2 |]) ])

let test_sources_lazy () =
  let _, r = mk () in
  let calls = ref 0 in
  Recorder.add_source r ~name:"expensive" (fun () ->
      incr calls;
      [| 0 |]);
  Alcotest.(check int) "never called until a sample fires" 0 !calls

(* --- boot registry ----------------------------------------------------- *)

let test_boot_registry () =
  ignore (Recorder.drain_registered ());
  let attached = ref [] in
  Recorder.set_boot_attach
    (Some (fun r -> attached := Recorder.run_id r :: !attached));
  Recorder.set_boot_defaults ~every:77 ~cap:16 ~enabled:true ();
  Alcotest.(check bool) "armed" true (Recorder.boot_enabled ());
  let _, r1 = mk () in
  let _, r2 = mk () in
  Recorder.set_boot_defaults ~enabled:false ();
  Recorder.set_boot_attach None;
  Alcotest.(check bool) "disarmed" false (Recorder.boot_enabled ());
  let _, r3 = mk () in
  Alcotest.(check bool) "boot-armed recorders start enabled" true
    (Recorder.enabled r1 && Recorder.enabled r2);
  Alcotest.(check int) "boot cadence applied" 77 (Recorder.every r1);
  Alcotest.(check bool) "post-disarm recorders start disabled" false
    (Recorder.enabled r3);
  Alcotest.(check (list int)) "attach hook saw both, in creation order"
    [ Recorder.run_id r1; Recorder.run_id r2 ]
    (List.rev !attached);
  let drained = Recorder.drain_registered () in
  Alcotest.(check (list int)) "registry drains both, in creation order"
    [ Recorder.run_id r1; Recorder.run_id r2 ]
    (List.map Recorder.run_id drained);
  Alcotest.(check (list int)) "drain empties the registry" []
    (List.map Recorder.run_id (Recorder.drain_registered ()))

let test_run_ids_unique () =
  let _, a = mk () in
  let _, b = mk () in
  Alcotest.(check bool) "process-unique" true
    (Recorder.run_id a <> Recorder.run_id b)

(* --- observation-only -------------------------------------------------- *)

let test_recording_is_free () =
  (* the byte-identity contract: an armed run's tables equal a bare
     run's at the same seed — sampling charges no cycles and draws no
     RNG *)
  let run () = (Option.get (Experiments.find "E13")).Experiments.run ~seed:7 () in
  let bare = run () in
  Recorder.set_boot_defaults ~every:50_000 ~cap:64 ~enabled:true ();
  let recorded = run () in
  let drained = Recorder.drain_registered () in
  Recorder.set_boot_defaults ~enabled:false ();
  Alcotest.(check bool) "tables byte-identical under recording" true
    (bare = recorded);
  Alcotest.(check bool) "and the run really was recorded" true
    (drained <> [] && List.exists (fun r -> Recorder.total r > 0) drained)

let suite =
  [ Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "enable validates" `Quick test_enable_validates;
    Alcotest.test_case "cadence scheduling" `Quick test_cadence_scheduling;
    Alcotest.test_case "snapshot immutable" `Quick test_snapshot_immutable;
    Alcotest.test_case "decimation" `Quick test_decimation;
    Alcotest.test_case "streaming hook sees everything" `Quick
      test_streaming_hook_sees_everything;
    Alcotest.test_case "gauge replace in place" `Quick
      test_gauge_replace_in_place;
    Alcotest.test_case "sources lazy until armed" `Quick test_sources_lazy;
    Alcotest.test_case "boot registry" `Quick test_boot_registry;
    Alcotest.test_case "run ids unique" `Quick test_run_ids_unique;
    Alcotest.test_case "recording is free (E13)" `Slow
      test_recording_is_free ]
