lib/kernel_sim/kernel.mli: Addr Machine Memsys Mm Mmu Pagepool Perf Physmem Pipe Policy Ppc Rng Task Vfs Vsid_alloc
