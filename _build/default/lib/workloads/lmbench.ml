open Ppc
module Kernel = Kernel_sim.Kernel
module Mm = Kernel_sim.Mm
module Policy = Kernel_sim.Policy
module Vfs = Kernel_sim.Vfs

(* Standard benchmark process shape (pages). *)
let text_pages = 16
let data_pages = 16
let stack_pages = 8

let data_base = Mm.user_text_base + (text_pages lsl Addr.page_shift)
let stack_base = Mm.user_stack_top - (stack_pages lsl Addr.page_shift)

let mhz k = (Kernel.machine k).Machine.mhz

let spawn_std k =
  Kernel.spawn k ~text_pages ~data_pages ~stack_pages ()

(* A small per-iteration body: the footprint of a process that just woke
   up, checked a flag and touched its stack. *)
let tiny_body k =
  Kernel.user_run k ~instrs:120;
  for i = 0 to 5 do
    Kernel.touch k Mmu.Load (data_base + (i lsl Addr.page_shift))
  done;
  Kernel.touch k Mmu.Store stack_base;
  Kernel.touch k Mmu.Store (stack_base + Addr.page_size)

let cleanup k task =
  Kernel.switch_to k task;
  Kernel.sys_exit k

(* --- null syscall ------------------------------------------------------ *)

let null_syscall_us k =
  let task = spawn_std k in
  Kernel.switch_to k task;
  (* warm up text, stack and the syscall path *)
  Kernel.user_run k ~instrs:2000;
  for _ = 1 to 50 do
    Kernel.sys_null k
  done;
  let iters = 500 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to iters do
          Kernel.sys_null k
        done)
  in
  cleanup k task;
  Cost.us_of_cycles ~mhz:(mhz k) cycles /. float_of_int iters

(* --- context switch ---------------------------------------------------- *)

let ctx_switch_us k ~nprocs =
  if nprocs < 2 then invalid_arg "Lmbench.ctx_switch_us: nprocs >= 2";
  let tasks = Array.init nprocs (fun _ -> spawn_std k) in
  let rounds = 30 in
  (* warm: populate each task's text/stack mappings *)
  Array.iter
    (fun task ->
      Kernel.switch_to k task;
      Kernel.user_run k ~instrs:1000;
      tiny_body k)
    tasks;
  let measured =
    Measure.cycles k (fun () ->
        for _ = 1 to rounds do
          Array.iter
            (fun task ->
              Kernel.switch_to k task;
              tiny_body k)
            tasks
        done)
  in
  (* loop overhead: the same body without switching *)
  Kernel.switch_to k tasks.(0);
  let overhead =
    Measure.cycles k (fun () ->
        for _ = 1 to rounds * nprocs do
          tiny_body k
        done)
  in
  Array.iter (cleanup k) tasks;
  let per_switch =
    float_of_int (measured - overhead) /. float_of_int (rounds * nprocs)
  in
  per_switch /. float_of_int (mhz k)

let ctx_switch_sized_us k ~nprocs ~size_kb =
  if nprocs < 2 then invalid_arg "Lmbench.ctx_switch_sized_us: nprocs >= 2";
  if size_kb < 0 || size_kb > 256 then
    invalid_arg "Lmbench.ctx_switch_sized_us: size_kb in [0, 256]";
  let ws_pages = max 1 (size_kb / 4) in
  let tasks =
    Array.init nprocs (fun _ ->
        Kernel.spawn k ~text_pages ~data_pages:(max data_pages ws_pages)
          ~stack_pages ())
  in
  (* lat_ctx: each process sums its working set between token passes *)
  let body () =
    if size_kb = 0 then tiny_body k
    else
      for p = 0 to ws_pages - 1 do
        let page = data_base + (p lsl Addr.page_shift) in
        Kernel.touch k Mmu.Load page;
        Kernel.touch k Mmu.Store (page + Addr.line_size)
      done
  in
  let rounds = 20 in
  Array.iter
    (fun task ->
      Kernel.switch_to k task;
      Kernel.user_run k ~instrs:1000;
      body ())
    tasks;
  let measured =
    Measure.cycles k (fun () ->
        for _ = 1 to rounds do
          Array.iter
            (fun task ->
              Kernel.switch_to k task;
              body ())
            tasks
        done)
  in
  Kernel.switch_to k tasks.(0);
  let overhead =
    Measure.cycles k (fun () ->
        for _ = 1 to rounds * nprocs do
          body ()
        done)
  in
  Array.iter (cleanup k) tasks;
  float_of_int (measured - overhead)
  /. float_of_int (rounds * nprocs)
  /. float_of_int (mhz k)

(* --- pipes -------------------------------------------------------------- *)

let pipe_latency_us k =
  let a = spawn_std k and b = spawn_std k in
  let ab = Kernel.new_pipe k and ba = Kernel.new_pipe k in
  let round () =
    Kernel.switch_to k a;
    ignore (Kernel.sys_pipe_write k ab ~buf:data_base ~bytes:1 : int);
    Kernel.switch_to k b;
    ignore (Kernel.sys_pipe_read k ab ~buf:data_base ~bytes:1 : int);
    ignore (Kernel.sys_pipe_write k ba ~buf:data_base ~bytes:1 : int);
    Kernel.switch_to k a;
    ignore (Kernel.sys_pipe_read k ba ~buf:data_base ~bytes:1 : int)
  in
  for _ = 1 to 5 do
    round ()
  done;
  let rounds = 100 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to rounds do
          round ()
        done)
  in
  cleanup k a;
  cleanup k b;
  (* two messages per round; lat_pipe reports one-way latency *)
  Cost.us_of_cycles ~mhz:(mhz k) cycles /. float_of_int (rounds * 2)

let pipe_latency_loaded_us k =
  let a = spawn_std k and b = spawn_std k in
  (* background load: editors/daemons with real working sets *)
  let bg = Array.init 3 (fun _ -> Kernel.spawn k ~data_pages:160 ()) in
  let ab = Kernel.new_pipe k and ba = Kernel.new_pipe k in
  let rng = Rng.create ~seed:23 in
  let run_background () =
    Array.iter
      (fun t ->
        Kernel.switch_to k t;
        Kernel.user_run k ~instrs:800;
        for _ = 1 to 64 do
          let page = Rng.int rng 160 in
          Kernel.touch k Mmu.Store (data_base + (page lsl Addr.page_shift))
        done)
      bg
  in
  let round () =
    Kernel.switch_to k a;
    ignore (Kernel.sys_pipe_write k ab ~buf:data_base ~bytes:1 : int);
    Kernel.switch_to k b;
    ignore (Kernel.sys_pipe_read k ab ~buf:data_base ~bytes:1 : int);
    ignore (Kernel.sys_pipe_write k ba ~buf:data_base ~bytes:1 : int);
    Kernel.switch_to k a;
    ignore (Kernel.sys_pipe_read k ba ~buf:data_base ~bytes:1 : int)
  in
  for _ = 1 to 5 do
    run_background ();
    round ()
  done;
  let rounds = 60 in
  let background = ref 0 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to rounds do
          (* the other jobs get their timeslices between messages *)
          let c0 = Kernel.cycles k in
          run_background ();
          background := !background + (Kernel.cycles k - c0);
          round ()
        done)
  in
  cleanup k a;
  cleanup k b;
  Array.iter (cleanup k) bg;
  (* lat_pipe times only the message round trips *)
  Cost.us_of_cycles ~mhz:(mhz k) (cycles - !background)
  /. float_of_int (rounds * 2)

let pipe_bandwidth_mbs k =
  let a = spawn_std k and b = spawn_std k in
  let p = Kernel.new_pipe k in
  let chunk = Kernel_sim.Pipe.capacity in
  let move_chunk () =
    Kernel.switch_to k a;
    ignore (Kernel.sys_pipe_write k p ~buf:data_base ~bytes:chunk : int);
    Kernel.switch_to k b;
    ignore (Kernel.sys_pipe_read k p ~buf:data_base ~bytes:chunk : int)
  in
  for _ = 1 to 4 do
    move_chunk ()
  done;
  let chunks = 128 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to chunks do
          move_chunk ()
        done)
  in
  cleanup k a;
  cleanup k b;
  Cost.mb_per_s ~bytes:(chunks * chunk) ~mhz:(mhz k) ~cycles

(* --- file reread -------------------------------------------------------- *)

let file_reread_mbs k =
  let task = spawn_std k in
  Kernel.switch_to k task;
  let file_pages = 256 (* 1 MB *) in
  let file =
    Vfs.create_file (Kernel.vfs k) ~name:"bw_file_rd" ~pages:file_pages
  in
  let buf = Kernel.sys_mmap k ~pages:16 ~writable:true in
  (* bw_file_rd reads a chunk then sums it, so the user side reloads
     every line it just received *)
  let sum_chunk pages =
    Kernel.user_run k ~instrs:(pages * (Addr.page_size / 4));
    for i = 0 to (pages * Addr.page_size / Addr.line_size) - 1 do
      Kernel.touch k Mmu.Load (buf + (i * Addr.line_size land 0xFFFF))
    done
  in
  let read_whole () =
    let chunk = 16 in
    let rec loop from =
      if from < file_pages then begin
        Kernel.sys_file_read k file ~from_page:from ~pages:chunk ~buf;
        sum_chunk chunk;
        loop (from + chunk)
      end
    in
    loop 0
  in
  (* priming read: faults every page in from "disk" *)
  read_whole ();
  let rereads = 4 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to rereads do
          read_whole ()
        done)
  in
  cleanup k task;
  Cost.mb_per_s
    ~bytes:(rereads * file_pages * Addr.page_size)
    ~mhz:(mhz k) ~cycles

(* --- mmap --------------------------------------------------------------- *)

let mmap_region_pages = 1024 (* 4 MB, lat_mmap-sized *)

let mmap_latency_us k =
  let task = spawn_std k in
  Kernel.switch_to k task;
  Kernel.user_run k ~instrs:1000;
  (* lat_mmap maps a file; prime its pages so faults install warm
     page-cache frames with no zero-fill or disk wait *)
  let file =
    Vfs.create_file (Kernel.vfs k) ~name:"lat_mmap" ~pages:mmap_region_pages
  in
  let prime = Kernel.sys_mmap k ~pages:8 ~writable:true in
  let rec prime_loop from =
    if from < mmap_region_pages then begin
      Kernel.sys_file_read k file ~from_page:from ~pages:8 ~buf:prime;
      prime_loop (from + 8)
    end
  in
  prime_loop 0;
  Kernel.sys_munmap k ~ea:prime ~pages:8;
  let map_unmap () =
    let ea =
      Kernel.sys_mmap_file k file ~from_page:0 ~pages:mmap_region_pages
        ~writable:false
    in
    Kernel.touch k Mmu.Load ea;
    Kernel.sys_munmap k ~ea ~pages:mmap_region_pages
  in
  map_unmap ();
  let iters = 10 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to iters do
          map_unmap ()
        done)
  in
  cleanup k task;
  Cost.us_of_cycles ~mhz:(mhz k) cycles /. float_of_int iters

(* --- process creation ---------------------------------------------------- *)

let proc_start_ms k =
  let parent = spawn_std k in
  Kernel.switch_to k parent;
  (* parent image: ~10 text pages + 10 data pages resident, so the fork
     has a real address space to share *)
  Kernel.user_run k ~instrs:10_000;
  for i = 0 to 9 do
    Kernel.touch k Mmu.Store (data_base + (i lsl Addr.page_shift))
  done;
  (* the shared libraries every exec'd child maps and relocates against
     (warm in the page cache after the first start, like a real system) *)
  let libc =
    Vfs.create_file (Kernel.vfs k) ~name:"libc.so" ~pages:16
  in
  let one () =
    let child = Kernel.sys_fork k in
    Kernel.switch_to k child;
    Kernel.sys_exec k ~text_pages:24 ~data_pages:16 ~stack_pages:4;
    (* dynamic linking: map libc, run the relocation pass, touch the
       child's data segment *)
    let lib_ea =
      Kernel.sys_mmap_file k libc ~from_page:0 ~pages:16 ~writable:false
    in
    for i = 0 to 7 do
      Kernel.touch k Mmu.Load (lib_ea + (i lsl Addr.page_shift))
    done;
    Kernel.user_run k ~instrs:30_000;
    let child_data = Mm.user_text_base + (24 lsl Addr.page_shift) in
    for i = 0 to 11 do
      Kernel.touch k Mmu.Store (child_data + (i lsl Addr.page_shift))
    done;
    Kernel.sys_exit k;
    Kernel.switch_to k parent
  in
  one ();
  let iters = 5 in
  let cycles =
    Measure.cycles k (fun () ->
        for _ = 1 to iters do
          one ()
        done)
  in
  cleanup k parent;
  Cost.us_of_cycles ~mhz:(mhz k) cycles /. float_of_int iters /. 1000.0

(* --- summary ------------------------------------------------------------- *)

type summary = {
  null_us : float;
  ctxsw2_us : float;
  ctxsw8_us : float;
  pipe_lat_us : float;
  pipe_bw_mbs : float;
  file_reread_mbs : float;
  mmap_lat_us : float;
  pstart_ms : float;
}

let run ~machine ~policy ?(seed = 42) () =
  let fresh () = Kernel.boot ~machine ~policy ~seed () in
  { null_us = null_syscall_us (fresh ());
    ctxsw2_us = ctx_switch_us (fresh ()) ~nprocs:2;
    ctxsw8_us = ctx_switch_us (fresh ()) ~nprocs:8;
    pipe_lat_us = pipe_latency_us (fresh ());
    pipe_bw_mbs = pipe_bandwidth_mbs (fresh ());
    file_reread_mbs = file_reread_mbs (fresh ());
    mmap_lat_us = mmap_latency_us (fresh ());
    pstart_ms = proc_start_ms (fresh ()) }
