open Ppc

type state =
  | Ready
  | Blocked of int
  | Exited

type t = {
  pid : int;
  mm : Mm.t;
  mutable state : state;
  mutable code_cursor : Addr.ea;
  mutable maps_framebuffer : bool;
}

let create ~pid ~mm =
  { pid; mm; state = Ready; code_cursor = Mm.user_text_base;
    maps_framebuffer = false }

let task_struct_ea t = Kparams.task_struct_ea ~pid:t.pid

let kstack_ea t = Kparams.kstack_ea ~pid:t.pid

let is_ready t ~at_cycle =
  match t.state with
  | Ready -> true
  | Blocked wake -> wake <= at_cycle
  | Exited -> false
