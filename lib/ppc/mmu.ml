type knobs = {
  use_htab : bool;
  fast_reload : bool;
  cache_inhibit_pagetables : bool;
  htab_replacement : [ `Arbitrary | `Second_chance | `Zombie_aware ];
  tlb_replacement : Tlb.replacement;
}

let default_knobs =
  { use_htab = true;
    fast_reload = true;
    cache_inhibit_pagetables = false;
    htab_replacement = `Arbitrary;
    tlb_replacement = Tlb.Lru }

type walk_result =
  | Mapped of {
      rpn : int;
      wimg : Pte.wimg;
      protection : Pte.protection;
      pt_refs : Addr.pa array;
    }
  | Unmapped of { pt_refs : Addr.pa array }

type backing = { walk : Addr.ea -> walk_result }

type access_kind =
  | Fetch
  | Load
  | Store

type access_result =
  | Ok of Addr.pa
  | Fault

type t = {
  machine : Machine.t;
  memsys : Memsys.t;
  knobs : knobs;
  engine : Reload_engine.t;
  (* Per-CPU translation state: each CPU owns a segment-register file,
     BAT banks and split TLBs; the htab, caches and clock are shared.
     The hot path reads the current CPU's structures through the mutable
     aliases below — [set_cpu] swaps them, so at [cpus = 1] the access
     path is byte-for-byte the single-CPU one. *)
  n_cpus : int;
  mutable cur_cpu : int;
  segs : Segment.t array;
  ibats : Bat.t array;
  dbats : Bat.t array;
  itlbs : Tlb.t array;
  dtlbs : Tlb.t array;
  mutable seg : Segment.t;
  mutable ibat : Bat.t;
  mutable dbat : Bat.t;
  mutable itlb : Tlb.t;
  mutable dtlb : Tlb.t;
  (* Per-CPU miss accounting (the shared Perf totals stay authoritative;
     these split them by CPU for the SMP report). *)
  cpu_itlb_misses : int array;
  cpu_dtlb_misses : int array;
  htab : Htab.t option;
  mutable backing : backing;
  mutable is_zombie : int -> bool;
  mutable is_kernel_vsid : int -> bool;
  mutable shadow : Shadow.t option;
  rng : Rng.t;
  (* The [on_ref] callbacks the reload path hands to the htab and
     page-table walkers, built once at [create] — partially applying the
     helpers on every reload would allocate a closure per miss. *)
  mutable on_pt_ref : Addr.pa -> unit;
  mutable on_htab_ref : Addr.pa -> unit;
  mutable on_sw_htab_ref : Addr.pa -> unit;
}

(* Physical address region where the C handlers save/restore state. *)
let handler_stack_pa = 0x0000_8000

(* Test-only fault injection: a nonzero value makes [flush_page_for_vsid]
   skip its TLB invalidations — the stale-translation bug class the
   shadow checker exists to catch.  Positive = skip that many flush
   calls then disarm; negative = skip every one.  Costs are still
   charged, so an armed-but-never-triggering run stays byte-identical. *)
let test_skip_tlb_invalidations = ref 0

(* Test-only fault injection for the SMP paths: a nonzero value makes
   [shootdown_page] charge the full IPI round but skip the remote TLB
   invalidations — the stale-remote-TLB bug class.  Positive = skip that
   many shootdown rounds then disarm; negative = skip every one. *)
let test_skip_shootdowns = ref 0

let machine t = t.machine
let memsys t = t.memsys
let knobs t = t.knobs
let engine t = t.engine
let segments t = t.seg
let ibat t = t.ibat
let dbat t = t.dbat
let itlb t = t.itlb
let dtlb t = t.dtlb
let htab t = t.htab

let n_cpus t = t.n_cpus
let cur_cpu t = t.cur_cpu

let set_cpu t cpu =
  if cpu < 0 || cpu >= t.n_cpus then invalid_arg "Mmu.set_cpu";
  if cpu <> t.cur_cpu then begin
    t.cur_cpu <- cpu;
    t.seg <- t.segs.(cpu);
    t.ibat <- t.ibats.(cpu);
    t.dbat <- t.dbats.(cpu);
    t.itlb <- t.itlbs.(cpu);
    t.dtlb <- t.dtlbs.(cpu)
  end

let segments_of t ~cpu = t.segs.(cpu)
let ibat_of t ~cpu = t.ibats.(cpu)
let dbat_of t ~cpu = t.dbats.(cpu)
let cpu_itlb_misses t ~cpu = t.cpu_itlb_misses.(cpu)
let cpu_dtlb_misses t ~cpu = t.cpu_dtlb_misses.(cpu)

let set_backing t backing = t.backing <- backing
let set_vsid_is_zombie t f = t.is_zombie <- f
let set_vsid_is_kernel t f = t.is_kernel_vsid <- f

let attach_shadow t sh = t.shadow <- Some sh
let shadow t = t.shadow

let perf t = Memsys.perf t.memsys
let trace t = Memsys.trace t.memsys
let profile t = Memsys.profile t.memsys
let span t = Memsys.span t.memsys

let kernel_tlb_entries t ~is_kernel_vsid =
  let p vpn = is_kernel_vsid (Addr.vsid_of_vpn vpn) in
  Tlb.count_matching t.itlb p + Tlb.count_matching t.dtlb p

let tlb_occupancy t = Tlb.occupancy t.itlb + Tlb.occupancy t.dtlb

(* --- cost-charging reference helpers ------------------------------- *)

let pt_ref t pa =
  (perf t).Perf.mem_refs <- (perf t).Perf.mem_refs + 1;
  Memsys.data_ref t.memsys ~source:Cache.Page_table
    ~inhibited:t.knobs.cache_inhibit_pagetables ~write:false pa

let htab_ref t pa =
  (perf t).Perf.mem_refs <- (perf t).Perf.mem_refs + 1;
  Memsys.data_ref t.memsys ~source:Cache.Htab
    ~inhibited:t.knobs.cache_inhibit_pagetables ~write:false pa

(* Software examination of a PTE costs a few compare/branch instructions
   on top of the memory reference; hardware search does not.  The two
   charges ride in one fused call. *)
let sw_htab_ref t pa =
  (perf t).Perf.mem_refs <- (perf t).Perf.mem_refs + 1;
  Memsys.data_ref_instr t.memsys ~instr:4 ~source:Cache.Htab
    ~inhibited:t.knobs.cache_inhibit_pagetables ~write:false pa

let noop_ref (_ : Addr.pa) = ()

(* Handler path length: fast assembly vs original C with state save. *)
let handler t ~fast ~slow ~slow_stack_refs =
  if t.knobs.fast_reload then Memsys.instructions t.memsys fast
  else begin
    Memsys.instructions t.memsys slow;
    for i = 0 to slow_stack_refs - 1 do
      Memsys.data_ref t.memsys ~source:Cache.Kernel ~inhibited:false
        ~write:true
        (handler_stack_pa + (i * Addr.line_size))
    done
  end

let create ?(htab_base_pa = 0x0030_0000) ?(cpus = 1) ~machine ~memsys ~knobs
    ~backing ~rng () =
  if cpus < 1 then invalid_arg "Mmu.create: cpus must be at least 1";
  let engine = Reload_engine.select ~machine ~use_htab:knobs.use_htab in
  (* A hardware-reload machine cannot bypass the htab; the knob records
     what the selected backend actually does. *)
  let knobs = { knobs with use_htab = Reload_engine.uses_htab engine } in
  let tlb_of (g : Machine.tlb_geometry) =
    Tlb.create ~replacement:knobs.tlb_replacement ~sets:g.Machine.tlb_sets
      ~ways:g.Machine.tlb_ways ()
  in
  let segs = Array.init cpus (fun _ -> Segment.create ()) in
  let ibats = Array.init cpus (fun _ -> Bat.create ()) in
  let dbats = Array.init cpus (fun _ -> Bat.create ()) in
  let itlbs = Array.init cpus (fun _ -> tlb_of machine.Machine.itlb) in
  let dtlbs = Array.init cpus (fun _ -> tlb_of machine.Machine.dtlb) in
  let t =
    { machine;
      memsys;
      knobs;
      engine;
      n_cpus = cpus;
      cur_cpu = 0;
      segs;
      ibats;
      dbats;
      itlbs;
      dtlbs;
      seg = segs.(0);
      ibat = ibats.(0);
      dbat = dbats.(0);
      itlb = itlbs.(0);
      dtlb = dtlbs.(0);
      cpu_itlb_misses = Array.make cpus 0;
      cpu_dtlb_misses = Array.make cpus 0;
      htab =
        (if Reload_engine.uses_htab engine then
           Some
             (Htab.create ~base_pa:htab_base_pa
                ~n_ptes:machine.Machine.htab_ptes ())
         else None);
      backing;
      is_zombie = (fun _ -> false);
      is_kernel_vsid = (fun _ -> false);
      shadow = None;
      rng;
      on_pt_ref = noop_ref;
      on_htab_ref = noop_ref;
      on_sw_htab_ref = noop_ref }
  in
  t.on_pt_ref <- pt_ref t;
  t.on_htab_ref <- htab_ref t;
  t.on_sw_htab_ref <- sw_htab_ref t;
  (* Wire the attribution profiler's machine-shape hooks.  The closures
     read [t]'s mutable predicates at call time, so the kernel can
     install liveness/ownership tests after boot. *)
  let prof = Memsys.profile memsys in
  Profile.set_tlb_capacity prof (Tlb.capacity t.itlb + Tlb.capacity t.dtlb);
  (match t.htab with
  | None -> ()
  | Some h ->
      Profile.set_htab_source prof (fun () ->
          { Profile.h_cycle = (Memsys.perf memsys).Perf.cycles;
            h_valid = Htab.occupancy h;
            h_capacity = Htab.capacity h;
            h_zombie = Htab.count_valid h ~f:(fun p -> t.is_zombie p.Pte.vsid);
            h_chains = Htab.histogram h }));
  (* Flight-recorder gauges over the same machine state: only ever read
     inside [Recorder.take_sample], so they cost nothing unarmed. *)
  let rcd = Memsys.recorder memsys in
  (match t.htab with
  | None -> ()
  | Some h ->
      Recorder.add_source rcd ~name:"htab" (fun () ->
          [| Htab.occupancy h;
             Htab.capacity h;
             Htab.count_valid h ~f:(fun p -> t.is_zombie p.Pte.vsid) |]);
      Recorder.add_source rcd ~name:"htab_chains" (fun () ->
          Htab.histogram h));
  Recorder.add_source rcd ~name:"tlb" (fun () ->
      [| tlb_occupancy t;
         Tlb.capacity t.itlb + Tlb.capacity t.dtlb;
         kernel_tlb_entries t ~is_kernel_vsid:t.is_kernel_vsid |]);
  Recorder.add_source rcd ~name:"cpu_itlb" (fun () ->
      Array.copy t.cpu_itlb_misses);
  Recorder.add_source rcd ~name:"cpu_dtlb" (fun () ->
      Array.copy t.cpu_dtlb_misses);
  t

(* --- the reference translator ----------------------------------------- *)

(* The architectural answer for one effective address: BAT registers,
   then the backing page tables — no TLB, no htab, no cost charging, no
   state mutation.  This is what the fast path is a cache of; the shadow
   checker compares every access against it and [probe] simply returns
   its physical address. *)
let reference_outcome t kind ea =
  let ea = ea land Addr.ea_mask in
  let bat = match kind with Fetch -> t.ibat | Load | Store -> t.dbat in
  match Bat.translate bat ea with
  | Some pa -> { Shadow.pa = Some pa; inhibited = false; answered = Shadow.Bat }
  | None -> begin
      match t.backing.walk ea with
      | Unmapped _ ->
          { Shadow.pa = None;
            inhibited = false;
            answered = Shadow.No_translation }
      | Mapped { rpn; wimg; protection; _ } ->
          if kind = Store && protection <> Pte.Read_write then
            { Shadow.pa = None;
              inhibited = false;
              answered = Shadow.Page_table }
          else
            { Shadow.pa = Some (Addr.pa_of ~rpn ~ea);
              inhibited = wimg.Pte.cache_inhibited;
              answered = Shadow.Page_table }
    end

let probe t kind ea = (reference_outcome t kind ea).Shadow.pa

let shadow_kind = function
  | Fetch -> Shadow.Fetch
  | Load -> Shadow.Load
  | Store -> Shadow.Store

(* Cross-validate one finished access against the reference translator.
   [ea] is already masked; [pa] is the fast path's physical address with
   -1 meaning "faulted".  The option is only built once a shadow is
   known to be attached, so the unshadowed hit path allocates nothing. *)
let shadow_check t kind ea ~pa ~inhibited ~answered =
  match t.shadow with
  | None -> ()
  | Some sh ->
      Shadow.check sh ~cpu:t.cur_cpu
        ~pid:(Trace.current_pid (trace t))
        ~vsid:(Segment.vsid_for t.seg ea)
        ~ea ~kind:(shadow_kind kind)
        ~fast:
          { Shadow.pa = (if pa < 0 then None else Some pa);
            inhibited;
            answered }
        ~reference:(reference_outcome t kind ea)

(* --- reload paths ---------------------------------------------------- *)

(* Software fill after every faster mechanism missed: walk the Linux page
   tables and, when an htab exists, place the PTE there (possibly
   displacing a valid entry without checking VSID liveness). *)
let walk_and_fill t ~vsid ~ea ~page_index ~store =
  match t.backing.walk ea with
  | Unmapped { pt_refs } ->
      Array.iter t.on_pt_ref pt_refs;
      None
  | Mapped { rpn; wimg; protection; pt_refs } ->
      Array.iter t.on_pt_ref pt_refs;
      (match t.htab with
      | None -> ()
      | Some h ->
          handler t ~fast:Cost.htab_insert_fast_instr
            ~slow:Cost.htab_insert_slow_instr
            ~slow_stack_refs:Cost.htab_insert_slow_stack_refs;
          let p = perf t in
          p.Perf.htab_reloads <- p.Perf.htab_reloads + 1;
          let policy =
            match t.knobs.htab_replacement with
            | `Arbitrary -> Htab.Arbitrary
            | `Second_chance -> Htab.Second_chance
            | `Zombie_aware -> Htab.Prefer_zombie t.is_zombie
          in
          (match
             Htab.insert h ~policy ~rng:t.rng ~vsid ~page_index ~rpn ~wimg
               ~protection ~on_ref:t.on_htab_ref
           with
          | Htab.Filled_empty ->
              (* "we updated the page-table PTE dirty/modified bits when
                 we loaded the PTE into the hash table" (§7): R is set at
                 reload, C eagerly for stores, so a later flush is a pure
                 invalidate. *)
              if store then
                (match Htab.search h ~vsid ~page_index ~on_ref:noop_ref with
                | Some pte -> pte.Pte.changed <- true
                | None -> ())
          | Htab.Replaced victim ->
              (* the rejected design pays a software liveness check per
                 candidate right in the reload path *)
              if t.knobs.htab_replacement = `Zombie_aware then
                Memsys.instructions t.memsys Cost.zombie_check_instr;
              p.Perf.htab_evicts <- p.Perf.htab_evicts + 1;
              let victim_zombie = t.is_zombie victim.Pte.vsid in
              if victim_zombie then
                p.Perf.htab_evicts_zombie <- p.Perf.htab_evicts_zombie + 1
              else p.Perf.htab_evicts_live <- p.Perf.htab_evicts_live + 1;
              let tr = trace t in
              if Trace.enabled tr then
                Trace.emit tr Trace.Htab_evict ~a:victim.Pte.vsid
                  ~b:(if victim_zombie then 0 else 1)));
      Some (rpn, wimg, protection)

let search_htab t h ~vsid ~page_index ~software =
  let p = perf t in
  p.Perf.htab_searches <- p.Perf.htab_searches + 1;
  let on_ref = if software then t.on_sw_htab_ref else t.on_htab_ref in
  let tr = trace t in
  let hit, probe_len =
    (* the counted variant drives the same references in the same order;
       it only also reports the probe length for the histogram *)
    if Trace.enabled tr then Htab.search_counted h ~vsid ~page_index ~on_ref
    else (Htab.search h ~vsid ~page_index ~on_ref, 0)
  in
  match hit with
  | Some pte ->
      p.Perf.htab_hits <- p.Perf.htab_hits + 1;
      if Trace.enabled tr then
        Trace.emit_htab_probe tr ~len:probe_len ~hit:true;
      pte.Pte.referenced <- true;
      Some (pte.Pte.rpn, pte.Pte.wimg, pte.Pte.protection)
  | None ->
      p.Perf.htab_misses <- p.Perf.htab_misses + 1;
      if Trace.enabled tr then
        Trace.emit_htab_probe tr ~len:probe_len ~hit:false;
      None

let reload_handler t =
  handler t ~fast:Cost.sw_reload_fast_instr ~slow:Cost.sw_reload_slow_instr
    ~slow_stack_refs:Cost.sw_reload_slow_stack_refs

(* One generic reload sequence driven by the selected backend's cost
   row; the per-style branching lives in [Reload_engine.cost_table], not
   here.  Returns the translation plus which structure produced it.

   With the fast handlers selected and no timeline sampler armed, the
   back-to-back charges of each trap (entry stall + handler path length
   + hash setup; miss trap + fill handler) are batched into one
   [Memsys.instructions_stall] each — counter-identical, fewer sampler
   checks.  The slow-handler generation keeps the charge-by-charge
   sequence: its state save interleaves data references. *)
let reload t ~vsid ~ea ~store =
  let page_index = Addr.page_index ea in
  let c = Reload_engine.costs t.engine in
  let batched = t.knobs.fast_reload && not (Memsys.sampling t.memsys) in
  let fill () =
    if batched then
      Memsys.instructions_stall t.memsys
        ~instr:
          (if c.Reload_engine.handler_on_miss then Cost.sw_reload_fast_instr
           else 0)
        ~stall:c.Reload_engine.miss_trap_cycles
    else begin
      if c.Reload_engine.miss_trap_cycles > 0 then
        Memsys.stall t.memsys c.Reload_engine.miss_trap_cycles;
      if c.Reload_engine.handler_on_miss then reload_handler t
    end;
    match walk_and_fill t ~vsid ~ea ~page_index ~store with
    | None -> None
    | Some (rpn, wimg, protection) ->
        Some (rpn, wimg, protection, Shadow.Page_table)
  in
  let entry_instr =
    if c.Reload_engine.handler_on_entry then Cost.sw_reload_fast_instr else 0
  in
  match t.htab with
  | None ->
      if batched then
        Memsys.instructions_stall t.memsys ~instr:entry_instr
          ~stall:c.Reload_engine.entry_stall_cycles
      else begin
        if c.Reload_engine.entry_stall_cycles > 0 then
          Memsys.stall t.memsys c.Reload_engine.entry_stall_cycles;
        if c.Reload_engine.handler_on_entry then reload_handler t
      end;
      fill ()
  | Some h -> begin
      if batched then
        Memsys.instructions_stall t.memsys
          ~instr:(entry_instr + c.Reload_engine.hash_setup_instr)
          ~stall:c.Reload_engine.entry_stall_cycles
      else begin
        if c.Reload_engine.entry_stall_cycles > 0 then
          Memsys.stall t.memsys c.Reload_engine.entry_stall_cycles;
        if c.Reload_engine.handler_on_entry then reload_handler t;
        if c.Reload_engine.hash_setup_instr > 0 then
          Memsys.instructions t.memsys c.Reload_engine.hash_setup_instr
      end;
      match
        search_htab t h ~vsid ~page_index
          ~software:c.Reload_engine.software_search
      with
      | Some (rpn, wimg, protection) ->
          Some (rpn, wimg, protection, Shadow.Htab)
      | None -> fill ()
    end

(* --- the access path -------------------------------------------------- *)

let final_ref t kind pa ~inhibited ~source =
  match kind with
  | Fetch -> Memsys.inst_ref t.memsys pa
  | Load -> Memsys.data_ref t.memsys ~source ~inhibited ~write:false pa
  | Store -> Memsys.data_ref t.memsys ~source ~inhibited ~write:true pa

let count_lookup t kind =
  let p = perf t in
  match kind with
  | Fetch -> p.Perf.itlb_lookups <- p.Perf.itlb_lookups + 1
  | Load | Store -> p.Perf.dtlb_lookups <- p.Perf.dtlb_lookups + 1

let count_miss t kind =
  let p = perf t in
  match kind with
  | Fetch ->
      p.Perf.itlb_misses <- p.Perf.itlb_misses + 1;
      t.cpu_itlb_misses.(t.cur_cpu) <- t.cpu_itlb_misses.(t.cur_cpu) + 1
  | Load | Store ->
      p.Perf.dtlb_misses <- p.Perf.dtlb_misses + 1;
      t.cpu_dtlb_misses.(t.cur_cpu) <- t.cpu_dtlb_misses.(t.cur_cpu) + 1

let source_of_ea ea =
  if Segment.is_kernel_ea ea then Cache.Kernel else Cache.User

(* The TLB miss: everything below the [Tlb.lookup_slot] fast exit.
   Kept out of [access_pa] so the hit path stays small. *)
let access_miss t kind ea ~vsid ~vpn ~tlb ~source ~store =
  count_miss t kind;
  let tr = trace t in
  let traced = Trace.enabled tr in
  let pr = profile t in
  let profiling = Profile.enabled pr in
  let sp = span t in
  let spanning = Span.enabled sp in
  let miss_start =
    if traced || profiling || spanning then (perf t).Perf.cycles else 0
  in
  let htab_misses_before =
    if profiling || spanning then (perf t).Perf.htab_misses else 0
  in
  if traced then
    Trace.emit tr
      (match kind with
      | Fetch -> Trace.Itlb_miss
      | Load | Store -> Trace.Dtlb_miss)
      ~a:ea ~b:0;
  let reloaded = reload t ~vsid ~ea ~store in
  (* Attribution: the full reload service cost is charged to the
     owning (pid, segment) under the TLB kind; a reload that also
     missed the htab is charged again under the htab kind.
     Observation only — no cycles, no cache traffic, no RNG. *)
  if profiling then begin
    let cost = (perf t).Perf.cycles - miss_start in
    let pid = Trace.current_pid tr in
    let seg = Addr.sr_index ea in
    let page = Addr.page_base ea in
    let mk =
      match kind with
      | Fetch -> Profile.Itlb
      | Load | Store -> Profile.Dtlb
    in
    Profile.charge_miss pr ~pid ~seg ~page ~kind:mk ~cost;
    if (perf t).Perf.htab_misses > htab_misses_before then
      Profile.charge_miss pr ~pid ~seg ~page ~kind:Profile.Htab_miss ~cost
  end;
  (* Span attribution: the same service cost lands on the request the
     CPU is serving, with the htab-missing subset tagged. *)
  if spanning then
    Span.charge_reload sp
      ~cost:((perf t).Perf.cycles - miss_start)
      ~htab_missed:((perf t).Perf.htab_misses > htab_misses_before);
  match reloaded with
  | None ->
      shadow_check t kind ea ~pa:(-1) ~inhibited:false
        ~answered:Shadow.No_translation;
      -1
  | Some (rpn, wimg, protection, answered) ->
      let inhibited = wimg.Pte.cache_inhibited in
      let writable =
        match protection with
        | Pte.Read_write -> true
        | Pte.Read_only | Pte.No_access -> false
      in
      let victim_vpn = Tlb.insert_flat tlb ~vpn ~rpn ~inhibited ~writable in
      if traced then begin
        if victim_vpn >= 0 then
          Trace.emit tr Trace.Tlb_evict ~a:victim_vpn
            ~b:(Addr.vsid_of_vpn victim_vpn);
        Trace.emit_tlb_service tr ~ea
          ~cost:((perf t).Perf.cycles - miss_start)
      end;
      (* kernel-vs-user slot census, taken while the TLB contents
         are freshest (right after the fill) *)
      if profiling then
        Profile.note_tlb_census pr
          ~kernel:(kernel_tlb_entries t ~is_kernel_vsid:t.is_kernel_vsid)
          ~occupied:(tlb_occupancy t);
      if store && not writable then begin
        shadow_check t kind ea ~pa:(-1) ~inhibited:false ~answered;
        -1
      end
      else begin
        let pa = Addr.pa_of ~rpn ~ea in
        final_ref t kind pa ~inhibited ~source;
        shadow_check t kind ea ~pa ~inhibited ~answered;
        pa
      end

(* One access, returning the physical address or -1 on a fault.  This is
   the hot path: on a TLB hit (no shadow attached) it allocates nothing —
   flat TLB slot reads, an int physical address out. *)
let access_pa t kind ea =
  let ea = ea land Addr.ea_mask in
  let source = source_of_ea ea in
  let bat = match kind with Fetch -> t.ibat | Load | Store -> t.dbat in
  let bat_pa = Bat.translate_pa bat ea in
  if bat_pa >= 0 then begin
    let tr = trace t in
    if Trace.enabled tr then Trace.emit tr Trace.Bat_hit ~a:ea ~b:0;
    final_ref t kind bat_pa ~inhibited:false ~source;
    shadow_check t kind ea ~pa:bat_pa ~inhibited:false ~answered:Shadow.Bat;
    bat_pa
  end
  else begin
    let vsid = Segment.vsid_for t.seg ea in
    let vpn = Addr.vpn_of ~vsid ~ea in
    let tlb = match kind with Fetch -> t.itlb | Load | Store -> t.dtlb in
    let store = match kind with Store -> true | Fetch | Load -> false in
    count_lookup t kind;
    let slot = Tlb.lookup_slot tlb vpn in
    if slot >= 0 then
      if store && not (Tlb.slot_writable tlb slot) then begin
        shadow_check t kind ea ~pa:(-1) ~inhibited:false ~answered:Shadow.Tlb;
        -1
      end
      else begin
        let inhibited = Tlb.slot_inhibited tlb slot in
        let pa = Addr.pa_of ~rpn:(Tlb.slot_rpn tlb slot) ~ea in
        final_ref t kind pa ~inhibited ~source;
        shadow_check t kind ea ~pa ~inhibited ~answered:Shadow.Tlb;
        pa
      end
    else access_miss t kind ea ~vsid ~vpn ~tlb ~source ~store
  end

let access t kind ea =
  let pa = access_pa t kind ea in
  if pa < 0 then Fault else Ok pa

(* --- flush and idle-task operations ---------------------------------- *)

let tlbie_cycles = 4

let note_flush t ~what ~vsid ~ea =
  match t.shadow with
  | None -> ()
  | Some sh -> Shadow.note_flush sh ~what ~vsid ~ea

let flush_page_for_vsid t ~vsid ea =
  let vpn = Addr.vpn_of ~vsid ~ea in
  let tr = trace t in
  if Trace.enabled tr then Trace.emit tr Trace.Flush_page ~a:ea ~b:vsid;
  Memsys.stall t.memsys tlbie_cycles;
  Memsys.instructions t.memsys 6;
  (* test-only stale-TLB injection: see [test_skip_tlb_invalidations] *)
  let skip = !test_skip_tlb_invalidations <> 0 in
  if !test_skip_tlb_invalidations > 0 then decr test_skip_tlb_invalidations;
  if not skip then begin
    Tlb.invalidate_page t.itlb vpn;
    Tlb.invalidate_page t.dtlb vpn
  end;
  note_flush t ~what:"flush-page" ~vsid ~ea;
  match t.htab with
  | None -> ()
  | Some h ->
      let p = perf t in
      p.Perf.flush_pte_searches <- p.Perf.flush_pte_searches + 1;
      ignore
        (Htab.invalidate_page h ~vsid ~page_index:(Addr.page_index ea)
           ~on_ref:t.on_htab_ref
          : bool)

let flush_page t ea =
  flush_page_for_vsid t ~vsid:(Segment.vsid_for t.seg ea) ea

let invalidate_tlbs t =
  Tlb.invalidate_all t.itlb;
  Tlb.invalidate_all t.dtlb;
  note_flush t ~what:"tlb-invalidate-all" ~vsid:0 ~ea:0

(* --- cross-CPU shootdowns --------------------------------------------- *)

(* One shootdown round for a single page: the initiator posts an IPI to
   every CPU in [targets] (a bitmask of remote CPUs), each remote runs
   the handler and invalidates the page in its own TLBs, and the
   initiator spins for the acknowledgements.  All charges land on the
   shared serialized clock.  A zero [targets] is a complete no-op — the
   [cpus = 1] hot path never reaches any of this. *)
let shootdown_page t ~vsid ~targets ea =
  if targets <> 0 then begin
    let p = perf t in
    p.Perf.tlb_shootdowns <- p.Perf.tlb_shootdowns + 1;
    let vpn = Addr.vpn_of ~vsid ~ea in
    (* test-only stale-remote-TLB injection: costs still charged *)
    let skip = !test_skip_shootdowns <> 0 in
    if !test_skip_shootdowns > 0 then decr test_skip_shootdowns;
    for cpu = 0 to t.n_cpus - 1 do
      if targets land (1 lsl cpu) <> 0 then begin
        p.Perf.ipis_sent <- p.Perf.ipis_sent + 1;
        Memsys.stall t.memsys Cost.ipi_send_cycles;
        Memsys.instructions t.memsys Cost.ipi_handler_instr;
        Memsys.stall t.memsys tlbie_cycles;
        if not skip then begin
          Tlb.invalidate_page t.itlbs.(cpu) vpn;
          Tlb.invalidate_page t.dtlbs.(cpu) vpn
        end;
        p.Perf.remote_tlb_invalidates <- p.Perf.remote_tlb_invalidates + 1;
        Memsys.stall t.memsys Cost.ipi_ack_wait_cycles
      end
    done;
    note_flush t ~what:"shootdown-page" ~vsid ~ea
  end

(* Batched shootdown for a whole precise-flush range: one IPI round
   covers every page in [pages] (a list of (vsid, ea) pairs, so ranges
   crossing a segment boundary still work).  Each remote CPU pays the
   IPI send / handler / ack-wait costs once and a [tlbie] per page,
   instead of a full round per page as [shootdown_page] charges.
   Counter shape: one [tlb_shootdowns] round, [ipis_sent] once per
   remote CPU, a [remote_tlb_invalidates] per (cpu, page), and
   [shootdown_batch_pages] counts the pages the round covered. *)
let shootdown_range t ~targets pages =
  if targets <> 0 && pages <> [] then begin
    let p = perf t in
    p.Perf.tlb_shootdowns <- p.Perf.tlb_shootdowns + 1;
    p.Perf.shootdown_batch_pages <-
      p.Perf.shootdown_batch_pages + List.length pages;
    (* test-only stale-remote-TLB injection: costs still charged *)
    let skip = !test_skip_shootdowns <> 0 in
    if !test_skip_shootdowns > 0 then decr test_skip_shootdowns;
    for cpu = 0 to t.n_cpus - 1 do
      if targets land (1 lsl cpu) <> 0 then begin
        p.Perf.ipis_sent <- p.Perf.ipis_sent + 1;
        Memsys.stall t.memsys Cost.ipi_send_cycles;
        Memsys.instructions t.memsys Cost.ipi_handler_instr;
        List.iter
          (fun (vsid, ea) ->
            let vpn = Addr.vpn_of ~vsid ~ea in
            Memsys.stall t.memsys tlbie_cycles;
            if not skip then begin
              Tlb.invalidate_page t.itlbs.(cpu) vpn;
              Tlb.invalidate_page t.dtlbs.(cpu) vpn
            end;
            p.Perf.remote_tlb_invalidates <-
              p.Perf.remote_tlb_invalidates + 1)
          pages;
        Memsys.stall t.memsys Cost.ipi_ack_wait_cycles
      end
    done;
    List.iter
      (fun (vsid, ea) -> note_flush t ~what:"shootdown-range" ~vsid ~ea)
      pages
  end

(* Invalidate every TLB on every CPU — the §7 escape hatch the VSID
   wrap fires (and boot-time cleanup).  Cost-free bookkeeping like
   [invalidate_tlbs]; the caller charges whatever its path costs. *)
let invalidate_all_cpus t =
  for cpu = 0 to t.n_cpus - 1 do
    Tlb.invalidate_all t.itlbs.(cpu);
    Tlb.invalidate_all t.dtlbs.(cpu)
  done;
  note_flush t ~what:"tlb-invalidate-all-cpus" ~vsid:0 ~ea:0

let reclaim_zombies t ~max_ptes =
  match t.htab with
  | None -> 0
  | Some h ->
      let reclaimed =
        Htab.reclaim_zombies h ~is_zombie:t.is_zombie ~max_ptes
          ~on_ref:t.on_htab_ref
      in
      let p = perf t in
      p.Perf.zombies_reclaimed <- p.Perf.zombies_reclaimed + reclaimed;
      let tr = trace t in
      if Trace.enabled tr then
        Trace.emit_for tr Trace.Idle_reclaim ~pid:0 ~a:reclaimed ~b:max_ptes;
      reclaimed
