lib/ppc/addr.mli: Format
