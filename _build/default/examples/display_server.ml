(* The frame-buffer BAT trick (§5.1's proposal), live: an X-style display
   server scribbling over a 4 MB aperture while clients make requests.

     dune exec examples/display_server.exe *)

open Ppc
module Policy = Kernel_sim.Policy
module Config = Mmu_tricks.Config
module Report = Mmu_tricks.Report
module Xserver = Workloads.Xserver

let () =
  print_endline
    "A display server owns a 4 MB frame buffer (1024 pages - eight times";
  print_endline
    "the 604's data TLB).  \"Programs such as X ... compete constantly";
  print_endline
    "with other applications or the kernel for TLB space\" (§5.1).";
  print_newline ();
  let run label policy =
    let r = Xserver.measure ~machine:Machine.ppc604_185 ~policy () in
    [ label;
      Report.fmt_us r.Xserver.us_per_round;
      Report.fmt_int (Perf.tlb_misses r.Xserver.perf);
      Report.fmt_int r.Xserver.perf.Perf.page_faults ]
  in
  Report.table
    ~header:[ "fb mapping"; "us/request"; "TLB misses"; "faults" ]
    ~rows:
      [ run "through page tables" Policy.optimized;
        run "dedicated per-process BAT" Config.optimized_fb_bat ];
  print_newline ();
  print_endline
    "With the BAT the aperture needs no PTEs at all: no faults, no TLB";
  print_endline
    "traffic, and the server's drawing stops evicting everyone else's";
  print_endline "translations.  The register is switched with the process."
