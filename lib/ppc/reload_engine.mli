(** Pluggable TLB-reload backends.

    The paper's machines differ only in how a TLB miss is serviced
    (§6.1–§6.2): the 604 family searches the hashed page table in
    hardware and traps to software only when that search misses; the 603
    traps on every miss and its handler either emulates the 604's htab
    search in software (the pre-§6.2 code) or walks the Linux page
    tables directly ("improving hash tables away").  Everything else —
    BATs, segments, TLB geometry, the page-table walk-and-fill — is
    shared.

    This module is the one seam where that choice is made.  A backend is
    a {!style} plus a declarative {!costs} row; {!Mmu} drives a single
    generic reload sequence off the row, so adding a machine or a reload
    style means adding a row to {!cost_table}, not editing nested
    matches in the reload path. *)

(** The three reload backends. *)
type style =
  | Hw_search
      (** 604-style: hardware searches both PTEGs; software runs only on
          a hash-table miss (the 91-cycle interrupt). *)
  | Sw_htab
      (** 603 emulating the 604: a 32-cycle trap, then a software htab
          search (hash setup costs instructions the hardware gets for
          free), falling through to the page-table fill on a miss. *)
  | Sw_direct
      (** 603 without an htab (§6.2): the trap handler goes straight to
          the Linux PTE tree — three loads worst case. *)

val all_styles : style list
val style_name : style -> string

(** One backend's cost row.  The generic reload sequence is:

    + stall [entry_stall_cycles] (trap latency or hardware-search
      overhead);
    + if [handler_on_entry], run the software handler prologue (fast
      assembly or slow C per the [fast_reload] knob);
    + if the backend has an htab: charge [hash_setup_instr], search it
      ([software_search] adds per-PTE examination instructions), and
      stop on a hit;
    + on a miss (or with no htab): stall [miss_trap_cycles], run the
      handler if [handler_on_miss], then walk the page tables and fill. *)
type costs = {
  entry_stall_cycles : int;
      (** charged on every reload before anything else *)
  handler_on_entry : bool;
      (** software backends run their handler up front *)
  hash_setup_instr : int;
      (** instructions to compute the hash and PTEG addresses in
          software (0 when hardware does it) *)
  software_search : bool;
      (** PTE examination costs compare/branch instructions on top of
          each memory reference *)
  miss_trap_cycles : int;
      (** extra trap charged when the htab search misses (the 604's
          interrupt; 0 for backends already running software) *)
  handler_on_miss : bool;
      (** hardware backends enter their software handler only here *)
}

val cost_table : (style * costs) list
(** The declarative per-backend cost table — every style has exactly one
    row; the constants come from {!Cost}. *)

val costs_of : style -> costs

type t

val select : machine:Machine.t -> use_htab:bool -> t
(** The one selection seam: a hardware-reload machine always gets
    {!Hw_search} (it cannot bypass the htab, so [use_htab] is ignored);
    a software-reload machine gets {!Sw_htab} or {!Sw_direct} per
    [use_htab]. *)

val of_style : style -> t

val style : t -> style
val costs : t -> costs

val uses_htab : t -> bool
(** [false] exactly for {!Sw_direct} — the backend that "improved the
    hash table away".  {!Mmu.create} builds an htab iff this is true. *)

val describe : t -> string
(** One-line human rendering, e.g. ["hw-search (htab)"]. *)
