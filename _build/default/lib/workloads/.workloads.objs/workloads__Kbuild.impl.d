lib/workloads/kbuild.ml: Addr Cost Kernel_sim Machine Measure Mmu Perf Ppc Printf Refgen Rng
