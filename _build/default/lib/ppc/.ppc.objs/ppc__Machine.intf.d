lib/ppc/machine.mli: Format
