(** Machine descriptions for the processors the paper benchmarks.

    The study covers the 32-bit PowerPC 603 and 604.  The 603 takes a
    software trap on every TLB miss; the 604 (like the 601 and 750) walks
    the hashed page table in hardware and only traps when the search
    misses.  The 603 has 128 TLB entries and 16K+16K caches; the 604 has
    256 TLB entries and 32K+32K caches — "double the size TLB and cache".

    Every benchmarked machine had 32 MB of RAM, so the ratio of RAM to
    hash-table PTEs to TLB entries is fixed; the htab holds 16384 PTEs
    (2048 PTEGs), matching the paper's occupancy figures ("600–700 out of
    16384"). *)

(** How the machine refills the TLB after a miss. *)
type reload_style =
  | Hardware_search
      (** 604-style: hardware searches the hashed page table; software
          runs only on a hash-table miss. *)
  | Software_trap
      (** 603-style: every TLB miss traps to a software handler, which may
          search the htab or walk the page tables directly. *)

type tlb_geometry = {
  tlb_sets : int;  (** number of sets per TLB (I and D are split) *)
  tlb_ways : int;  (** associativity *)
}

type cache_geometry = {
  cache_bytes : int;  (** total capacity *)
  cache_ways : int;   (** associativity; lines are 32 bytes *)
}

type t = {
  name : string;
  mhz : int;
  reload : reload_style;
  itlb : tlb_geometry;
  dtlb : tlb_geometry;
  icache : cache_geometry;
  dcache : cache_geometry;
  mem_latency : int;  (** cycles for a memory access that misses L1 *)
  ram_bytes : int;    (** physical memory (32 MB throughout the paper) *)
  htab_ptes : int;    (** hashed-page-table capacity in PTEs (16384) *)
}

val tlb_entries : t -> int
(** Total TLB entries (I + D). *)

val n_ptegs : t -> int
(** [htab_ptes / 8]: number of PTE groups. *)

val ppc603_133 : t
(** 133 MHz 603: the Table 2 software-reload machine. *)

val ppc603_180 : t
(** 180 MHz 603: the Table 1 software-reload machine (slower board /
    memory than the 200 MHz 604 system). *)

val ppc604_133 : t
(** 133 MHz 604 (PowerMac 9500): the Table 3 comparison machine. *)

val ppc604_185 : t
(** 185 MHz 604: the main hardware-reload machine. *)

val ppc604_200 : t
(** 200 MHz 604 "with significantly faster main memory and a better board
    design" (Table 1). *)

val ppc601_80 : t
(** 80 MHz 601: the oldest of the hardware-reload parts ("when we refer
    to the 604 we mean the 604 style of TLB reloads (in hardware) which
    includes the 750 and 601").  Its unified 32K cache is approximated as
    a 16K+16K split. *)

val ppc750_233 : t
(** 233 MHz 750: the newest hardware-reload part — a fast core in front
    of comparatively slow memory, which is exactly the regime where
    reload costs matter most. *)

val all : t list
(** Every predefined machine. *)

val slug : t -> string
(** Stable command-line identifier derived from [name]: lowercase,
    spaces become dashes, the "MHz" unit is dropped — ["603 133MHz"]
    becomes ["603-133"].  The CLI machine enumeration is generated from
    [all] via this function, so adding a machine here is enough to make
    it selectable. *)

val find_by_slug : string -> t option
(** Inverse of {!slug} over {!all}. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)
