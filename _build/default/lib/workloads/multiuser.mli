(** A multiuser "program development" day: the aggregate workload behind
    the paper's headline claim.

    §1: "we have carried out a series of optimizations that has improved
    application wall-clock performance by anywhere from 10% to several
    orders of magnitude", and §9's observation that "the idle task runs
    quite often even on a system heavily loaded with users compiling,
    editing, reading mail so a lot of I/O happens that must be waited
    for."

    The scenario: an interactive editor (keystroke bursts between think
    times), a mail daemon (periodic wakeups reading its spool), a shell
    spawning short-lived utilities (fork/exec/exit), and a long compile
    grinding along — all interleaved round-robin with disk waits feeding
    the idle task.  [measure] reports total busy time plus the mean
    {e interactive} latency (cycles the editor needs for one keystroke
    burst), the number a user feels. *)

module Kernel = Kernel_sim.Kernel

type params = {
  rounds : int;          (** interleaving rounds ("seconds") *)
  editor_pages : int;    (** editor buffer working set *)
  compile_pages : int;   (** compiler working set *)
  spool_pages : int;     (** mail spool file *)
}

val default_params : params

type result = {
  perf : Ppc.Perf.t;
  busy_us : float;
  wall_us : float;
  keystroke_us : float;  (** mean editor-burst latency *)
  utility_us : float;    (** mean fork+exec+exit latency for shell jobs *)
}

val run : Kernel.t -> params:params -> float * float
(** Drive the scenario; returns (mean keystroke cycles, mean utility
    cycles) for callers that measure around it. *)

val measure :
  machine:Ppc.Machine.t ->
  policy:Kernel_sim.Policy.t ->
  ?params:params ->
  ?seed:int ->
  unit ->
  result
