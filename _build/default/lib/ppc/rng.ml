type t = { mutable state : int }

let golden_gamma = 0x1E3779B97F4A7C15

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer; OCaml ints are 63-bit so we mask to 62 bits on
   output to keep results non-negative. *)
let next t =
  t.state <- t.state + golden_gamma;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let int t bound =
  assert (bound > 0);
  next t mod bound

let bool t = next t land 1 = 1

let float t = float_of_int (next t land 0xFFFFFFFFFFFF) /. 281474976710656.0

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  let rec loop n = if float t < p then n else loop (n + 1) in
  loop 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
