lib/core/config.mli: Kernel_sim
