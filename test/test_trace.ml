(* The observability layer: event ring, histograms, timeline sampling,
   Chrome export, and the non-perturbation contract. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Trace_export = Mmu_tricks.Trace
module Json = Mmu_tricks.Json

let mk_trace () = Trace.create ~perf:(Perf.create ())

(* --- histograms ------------------------------------------------------- *)

let test_hist_bucket_boundaries () =
  List.iter
    (fun (v, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket of %d" v)
        expect (Hist.bucket_index v))
    [ (0, 0); (-5, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
      (15, 4); (16, 5); (1023, 10); (1024, 11) ];
  List.iter
    (fun (i, lo, hi) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "bounds of bucket %d" i)
        (lo, hi) (Hist.bucket_bounds i))
    [ (0, 0, 0); (1, 1, 1); (2, 2, 3); (3, 4, 7); (4, 8, 15) ]

let test_hist_observe () =
  let h = Hist.create () in
  Alcotest.(check bool) "starts empty" true (Hist.is_empty h);
  List.iter (Hist.observe h) [ 1; 2; 3; 4; 7; 8 ];
  Alcotest.(check int) "count" 6 (Hist.count h);
  Alcotest.(check int) "sum" 25 (Hist.sum h);
  Alcotest.(check int) "max" 8 (Hist.max_value h);
  Alcotest.(check (list (triple int int int)))
    "buckets hold [1,1] [2,3] [4,7] [8,15]"
    [ (1, 1, 1); (2, 3, 2); (4, 7, 2); (8, 15, 1) ]
    (Hist.buckets h)

let test_hist_percentile_merge () =
  let h = Hist.create () in
  for _ = 1 to 90 do Hist.observe h 1 done;
  for _ = 1 to 10 do Hist.observe h 100 done;
  Alcotest.(check int) "p50 in the small bucket" 1 (Hist.percentile h 0.5);
  Alcotest.(check int)
    "p99 reaches the top bucket's true max" 100 (Hist.percentile h 0.99);
  let other = Hist.create () in
  Hist.observe other 1000;
  Hist.merge_into ~into:h other;
  Alcotest.(check int) "merged count" 101 (Hist.count h);
  Alcotest.(check int) "merged max" 1000 (Hist.max_value h);
  Hist.reset h;
  Alcotest.(check bool) "reset empties" true (Hist.is_empty h)

(* --- the event ring --------------------------------------------------- *)

let test_disabled_emits_nothing () =
  let tr = mk_trace () in
  Trace.emit tr Trace.Bat_hit ~a:1 ~b:2;
  Trace.emit_htab_probe tr ~len:5 ~hit:true;
  Trace.emit_tlb_service tr ~ea:0x1000 ~cost:40;
  Trace.emit_context_switch tr ~pid:3 ~cost:500;
  Alcotest.(check int) "no events" 0 (Trace.total tr);
  Alcotest.(check int) "no kind counts" 0 (Trace.kind_count tr Trace.Bat_hit);
  Alcotest.(check bool)
    "no histogram observations" true
    (Hist.is_empty (Trace.hist_probe tr)
    && Hist.is_empty (Trace.hist_tlb_service tr)
    && Hist.is_empty (Trace.hist_ctxsw tr))

let test_ring_wraparound () =
  let tr = mk_trace () in
  Trace.enable ~ring:8 tr;
  for i = 0 to 19 do
    tr.Trace.perf.Perf.cycles <- i * 10;
    Trace.emit tr Trace.Bat_hit ~a:i ~b:0
  done;
  Alcotest.(check int) "capacity" 8 (Trace.capacity tr);
  Alcotest.(check int) "total counts every emit" 20 (Trace.total tr);
  Alcotest.(check int) "length capped at capacity" 8 (Trace.length tr);
  Alcotest.(check int) "dropped = total - length" 12 (Trace.dropped tr);
  Alcotest.(check int)
    "kind counts survive the wrap" 20
    (Trace.kind_count tr Trace.Bat_hit);
  let got = List.map (fun e -> e.Trace.e_a) (Trace.events tr) in
  Alcotest.(check (list int))
    "oldest-first, oldest 12 overwritten"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    got;
  let cycles = List.map (fun e -> e.Trace.e_cycle) (Trace.events tr) in
  Alcotest.(check int) "cycle stamps preserved" 120 (List.hd cycles)

let test_event_payloads () =
  let tr = mk_trace () in
  Trace.enable ~ring:16 tr;
  Trace.set_current_pid tr 7;
  Trace.emit tr Trace.Page_fault ~a:0xBEEF ~b:2;
  Trace.emit_for tr Trace.Idle_prezero ~pid:0 ~a:42 ~b:1;
  match Trace.events tr with
  | [ e1; e2 ] ->
      Alcotest.(check int) "emit uses current pid" 7 e1.Trace.e_pid;
      Alcotest.(check int) "payload a" 0xBEEF e1.Trace.e_a;
      Alcotest.(check int) "emit_for overrides pid" 0 e2.Trace.e_pid
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_sampling () =
  let tr = mk_trace () in
  Trace.set_sampling tr ~every:100;
  Alcotest.(check bool)
    "armed at cycles + every" true
    (tr.Trace.next_sample = 100);
  tr.Trace.perf.Perf.cycles <- 120;
  Trace.take_sample tr;
  tr.Trace.perf.Perf.cycles <- 250;
  Trace.take_sample tr;
  (match Trace.samples tr with
  | [ (c1, _); (c2, s2) ] ->
      Alcotest.(check int) "first sample cycle" 120 c1;
      Alcotest.(check int) "second sample cycle" 250 c2;
      Alcotest.(check int) "snapshot captured" 250 s2.Perf.cycles
  | l -> Alcotest.failf "expected 2 samples, got %d" (List.length l));
  Trace.set_sampling tr ~every:0;
  Alcotest.(check bool)
    "disarmed sampler never fires" true
    (tr.Trace.next_sample = max_int)

(* --- exporters -------------------------------------------------------- *)

let test_chrome_roundtrip () =
  let tr = mk_trace () in
  Trace.enable ~ring:64 tr;
  tr.Trace.perf.Perf.cycles <- 1000;
  Trace.emit tr Trace.Dtlb_miss ~a:0x4000_0000 ~b:0;
  tr.Trace.perf.Perf.cycles <- 1200;
  Trace.emit_tlb_service tr ~ea:0x4000_0000 ~cost:200;
  Trace.emit_context_switch tr ~pid:2 ~cost:800;
  Trace.take_sample tr;
  tr.Trace.perf.Perf.cycles <- 2400;
  tr.Trace.perf.Perf.dtlb_misses <- 5;
  Trace.take_sample tr;
  let doc = Trace_export.to_chrome ~mhz:100 ~name:"test" tr in
  let text = Json.to_string ~compact:true doc in
  match Json.of_string text with
  | Error e -> Alcotest.failf "emitted chrome JSON does not parse: %s" e
  | Ok parsed -> (
      match Json.member "traceEvents" parsed with
      | Some (Json.List events) ->
          Alcotest.(check bool)
            "has metadata, events, and counter samples" true
            (List.length events > 4);
          let phases =
            List.filter_map
              (fun e -> Option.bind (Json.member "ph" e) Json.to_string_opt)
              events
          in
          Alcotest.(check bool) "has instants" true (List.mem "i" phases);
          Alcotest.(check bool) "has spans" true (List.mem "X" phases);
          Alcotest.(check bool) "has counters" true (List.mem "C" phases)
      | _ -> Alcotest.fail "traceEvents missing or not a list")

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_summary_text () =
  let tr = mk_trace () in
  Trace.enable ~ring:16 tr;
  Trace.emit_htab_probe tr ~len:3 ~hit:true;
  let s = Trace_export.summary tr in
  Alcotest.(check bool) "mentions the probe event" true
    (contains ~needle:"htab_probe" s);
  Alcotest.(check bool) "mentions the probe histogram" true
    (contains ~needle:"probe length" s)

(* --- non-perturbation -------------------------------------------------
   The acceptance contract: a traced run produces exactly the counters of
   an untraced run at the same seed. *)

let drive k =
  let t1 = Kernel.spawn k () in
  Kernel.switch_to k t1;
  Kernel.user_run k ~instrs:20_000;
  let data = Kernel_sim.Mm.user_text_base + (16 lsl Addr.page_shift) in
  for i = 0 to 15 do
    Kernel.touch k Mmu.Store (data + (i lsl Addr.page_shift))
  done;
  let t2 = Kernel.sys_fork k in
  Kernel.switch_to k t2;
  Kernel.user_run k ~instrs:10_000;
  Kernel.touch k Mmu.Store data;
  Kernel.sys_exit k;
  Kernel.switch_to k t1;
  Kernel.idle_for k ~cycles:30_000;
  let arena = Kernel.sys_mmap k ~pages:32 ~writable:true in
  for i = 0 to 31 do
    Kernel.touch k Mmu.Store (arena + (i lsl Addr.page_shift))
  done;
  Kernel.sys_munmap k ~ea:arena ~pages:32

let test_no_perturbation () =
  let boot () =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:7 ()
  in
  let plain = boot () in
  drive plain;
  let traced = boot () in
  let tr = Kernel.trace traced in
  Trace.enable ~ring:1024 tr;
  Trace.set_sampling tr ~every:50_000;
  drive traced;
  Alcotest.(check bool) "trace recorded something" true (Trace.total tr > 0);
  List.iter2
    (fun (name, a) (_, b) ->
      Alcotest.(check int) ("counter " ^ name ^ " unperturbed") a b)
    (Perf.fields (Kernel.perf plain))
    (Perf.fields (Kernel.perf traced))

let suite =
  [ Alcotest.test_case "hist bucket boundaries" `Quick
      test_hist_bucket_boundaries;
    Alcotest.test_case "hist observe/buckets" `Quick test_hist_observe;
    Alcotest.test_case "hist percentile/merge/reset" `Quick
      test_hist_percentile_merge;
    Alcotest.test_case "disabled path emits nothing" `Quick
      test_disabled_emits_nothing;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "event payloads and pids" `Quick test_event_payloads;
    Alcotest.test_case "timeline sampling" `Quick test_sampling;
    Alcotest.test_case "chrome JSON round-trips" `Quick test_chrome_roundtrip;
    Alcotest.test_case "text summary" `Quick test_summary_text;
    Alcotest.test_case "tracing does not perturb counters" `Quick
      test_no_perturbation ]
