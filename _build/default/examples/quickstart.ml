(* Quickstart: boot a simulated PowerPC Linux system, run a process, and
   look at what the MMU did.

     dune exec examples/quickstart.exe *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module System = Mmu_tricks.System

let () =
  (* A 185 MHz PowerPC 604 running the fully optimized kernel. *)
  let machine = Machine.ppc604_185 in
  let k = Kernel.boot ~machine ~policy:Policy.optimized ~seed:1 () in
  Format.printf "booted: %a@." Machine.pp machine;
  Format.printf "policy: %s@.@." (Policy.describe (Kernel.policy k));

  (* Create a process and make it the running task. *)
  let task = Kernel.spawn k ~text_pages:16 ~data_pages:32 ~stack_pages:8 () in
  Kernel.switch_to k task;

  (* Run some code and touch some data: every reference goes through
     BATs, segment registers, the TLBs, the hashed page table and the
     Linux page tables, with demand faults allocating real frames. *)
  Kernel.user_run k ~instrs:20_000;
  let data = Mm.user_text_base + (16 * Addr.page_size) in
  for page = 0 to 31 do
    Kernel.touch k Mmu.Store (data + (page * Addr.page_size))
  done;

  (* A few syscalls and an mmap/munmap cycle. *)
  for _ = 1 to 10 do
    Kernel.sys_null k
  done;
  let ea = Kernel.sys_mmap k ~pages:64 ~writable:true in
  Kernel.touch k Mmu.Store ea;
  Kernel.sys_munmap k ~ea ~pages:64;

  (* What happened, in 604-hardware-monitor terms. *)
  Format.printf "%a@.@." Perf.pp (Kernel.perf k);
  Format.printf "%a@.@." System.pp_snapshot (System.snapshot k);
  Format.printf "simulated wall clock: %.1f us@." (Kernel.us k)
