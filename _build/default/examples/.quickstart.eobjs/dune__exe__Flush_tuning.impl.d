examples/flush_tuning.ml: Addr Cost Kernel_sim List Machine Mmu Mmu_tricks Ppc Printf Workloads
