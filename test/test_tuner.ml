(* The parallel policy auto-tuner: candidate enumeration, Pareto
   machinery, the supervised fan-out, and the jobs-independence
   guarantee (a parallel sweep is byte-identical to a serial one). *)

module Tuner = Mmu_tricks.Tuner
module Policy = Mmu_tricks.Policy
module Json = Mmu_tricks.Json
module Kpolicy = Kernel_sim.Policy

(* --- candidates ------------------------------------------------------ *)

let test_labels () =
  Alcotest.(check string) "label syntax" "a=1,b=x"
    (Tuner.label_of [ ("a", "1"); ("b", "x") ]);
  let c =
    Tuner.candidate_of_assignment ~base:Policy.paper_default
      [ ("vsid_multiplier", "64") ]
  in
  Alcotest.(check string) "candidate label" "vsid_multiplier=64"
    c.Tuner.c_label;
  Alcotest.(check int) "assignment applied" 64
    c.Tuner.c_policy.Kpolicy.vsid_multiplier;
  match
    Tuner.candidate_of_assignment ~base:Policy.paper_default
      [ ("warp_drive", "on") ]
  with
  | _ -> Alcotest.fail "unknown knob accepted"
  | exception Invalid_argument _ -> ()

let test_grid () =
  let axes =
    [ { Tuner.a_key = "vsid_multiplier"; a_values = [ "17"; "64" ] };
      { Tuner.a_key = "tlb_replacement"; a_values = [ "lru"; "fifo"; "random" ] } ]
  in
  let g = Tuner.grid ~base:Policy.paper_default axes in
  Alcotest.(check int) "cartesian product" 6 (List.length g);
  Alcotest.(check string) "lexicographic first"
    "vsid_multiplier=17,tlb_replacement=lru"
    (List.hd g).Tuner.c_label;
  Alcotest.(check string) "lexicographic last"
    "vsid_multiplier=64,tlb_replacement=random"
    (List.nth g 5).Tuner.c_label

(* --- Pareto machinery on hand-built evals ---------------------------- *)

let mk_eval label values =
  { Tuner.e_cand =
      { Tuner.c_label = label;
        c_assignment = [];
        c_policy = Policy.paper_default };
    e_metrics =
      [ ( "w",
          List.mapi
            (fun i v ->
              { Tuner.m_name = "m" ^ string_of_int i;
                m_value = v;
                m_unit = "u" })
            values ) ] }

let test_dominates () =
  let a = mk_eval "a" [ 1.0; 1.0 ]
  and b = mk_eval "b" [ 2.0; 2.0 ]
  and c = mk_eval "c" [ 0.5; 3.0 ] in
  Alcotest.(check bool) "strictly better dominates" true
    (Tuner.dominates a b);
  Alcotest.(check bool) "not the reverse" false (Tuner.dominates b a);
  Alcotest.(check bool) "trade-offs do not dominate" false
    (Tuner.dominates a c);
  Alcotest.(check bool) "either way" false (Tuner.dominates c a);
  Alcotest.(check bool) "no self-domination (needs strict better)" false
    (Tuner.dominates a (mk_eval "a'" [ 1.0; 1.0 ]))

let test_pareto_front () =
  let evals =
    [ mk_eval "good" [ 1.0; 1.0 ];
      mk_eval "bad" [ 2.0; 2.0 ];
      mk_eval "tradeoff" [ 0.5; 3.0 ] ]
  in
  let front = List.map (fun e -> e.Tuner.e_cand.Tuner.c_label)
      (Tuner.pareto evals)
  in
  Alcotest.(check (list string)) "dominated point drops, trade-off stays"
    [ "good"; "tradeoff" ] front

let test_score () =
  let base = mk_eval "base" [ 1.0; 1.0 ] in
  Alcotest.(check (float 1e-9)) "base scores 1.0" 1.0
    (Tuner.score ~base base);
  (* mean of (1+3)/(1+1) and (1+1)/(1+1) *)
  Alcotest.(check (float 1e-9)) "worse point scores above 1" 1.5
    (Tuner.score ~base (mk_eval "worse" [ 3.0; 1.0 ]));
  Alcotest.(check (float 1e-9)) "better point scores below 1" 0.75
    (Tuner.score ~base (mk_eval "better" [ 0.0; 1.0 ]))

(* --- supervised fan-out ---------------------------------------------- *)

let fan_tasks =
  List.map
    (fun i ->
      ( "task-" ^ string_of_int i,
        fun ?seed:(_ : int option) () -> Json.Int (i * i) ))
    [ 1; 2; 3; 4; 5 ]

let test_fan_out_serial_parallel_identical () =
  let serial = Tuner.fan_out ~jobs:1 fan_tasks in
  let parallel = Tuner.fan_out ~jobs:4 fan_tasks in
  Alcotest.(check int) "same length" (List.length serial)
    (List.length parallel);
  List.iter2
    (fun (id_s, r_s) (id_p, r_p) ->
      Alcotest.(check string) "input order preserved" id_s id_p;
      match (r_s, r_p) with
      | Ok a, Ok b ->
          Alcotest.(check string) (id_s ^ " payload identical")
            (Json.to_string a) (Json.to_string b)
      | _ -> Alcotest.fail (id_s ^ ": expected Ok payloads"))
    serial parallel;
  List.iteri
    (fun i (_, r) ->
      match r with
      | Ok (Json.Int n) ->
          Alcotest.(check int) "payload value" ((i + 1) * (i + 1)) n
      | _ -> Alcotest.fail "expected Int payload")
    serial

let test_fan_out_failure_isolated () =
  let tasks =
    [ ("fine", fun ?seed:(_ : int option) () -> Json.Int 7);
      ("boom", fun ?seed:(_ : int option) () -> failwith "kaboom");
      ("also-fine", fun ?seed:(_ : int option) () -> Json.Int 9) ]
  in
  match Tuner.fan_out ~jobs:2 tasks with
  | [ ("fine", Ok (Json.Int 7)); ("boom", Error _);
      ("also-fine", Ok (Json.Int 9)) ] ->
      ()
  | _ -> Alcotest.fail "crash did not stay isolated to its task"

(* --- tune end-to-end on synthetic workloads -------------------------- *)

(* A workload whose metrics are pure functions of the policy: fast,
   deterministic, and with a known optimum (vsid_multiplier = 64), so
   the grid + Pareto + hill-climb machinery is checked exactly. *)
let synth_workload =
  { Tuner.w_name = "synthetic";
    w_eval =
      (fun ~policy ~seed:_ ->
        [ { Tuner.m_name = "cost";
            m_value = float_of_int (abs (policy.Kpolicy.vsid_multiplier - 64));
            m_unit = "units" } ]) }

let synth_axes =
  [ { Tuner.a_key = "vsid_multiplier"; a_values = [ "17"; "64"; "897" ] } ]

let run_synth jobs =
  Tuner.tune ~jobs ~seed:7 ~workloads:[ synth_workload ] ~axes:synth_axes ()

let test_tune_finds_optimum () =
  let result = run_synth 2 in
  Alcotest.(check string) "winner is the known optimum"
    "vsid_multiplier=64" result.Tuner.r_winner.Tuner.e_cand.Tuner.c_label;
  Alcotest.(check bool) "winner is on the front" true
    (Tuner.on_front result "vsid_multiplier=64");
  Alcotest.(check bool) "dominated candidate is off the front" false
    (Tuner.on_front result "vsid_multiplier=17");
  Alcotest.(check bool) "base (897) is dominated too" false
    (Tuner.on_front result "paper_default");
  Alcotest.(check int) "no failures" 0 (List.length result.Tuner.r_failures)

let test_tune_doc_jobs_identical () =
  let doc jobs =
    Json.to_string
      (Tuner.doc ~seed:7 ~axes:synth_axes ~workloads:[ synth_workload ]
         (run_synth jobs))
  in
  Alcotest.(check string) "doc byte-identical at --jobs 1 and --jobs 4"
    (doc 1) (doc 4)

let test_tune_doc_shape () =
  let result = run_synth 2 in
  let doc =
    Tuner.doc ~seed:7 ~axes:synth_axes ~workloads:[ synth_workload ] result
  in
  let str k =
    Option.bind (Json.member k doc) Json.to_string_opt
  in
  Alcotest.(check (option string)) "schema" (Some Tuner.schema)
    (str "schema");
  Alcotest.(check (option string)) "winner" (Some "vsid_multiplier=64")
    (str "winner");
  match Json.member "candidates" doc with
  | Some (Json.List cands) ->
      (* base + 3 grid points; hill-climb adds nothing new here *)
      Alcotest.(check int) "base + grid candidates" 4 (List.length cands)
  | _ -> Alcotest.fail "doc has no candidates array"

let test_tune_drops_failing_candidate () =
  let treacherous =
    { Tuner.w_name = "treacherous";
      w_eval =
        (fun ~policy ~seed:_ ->
          if policy.Kpolicy.vsid_multiplier = 17 then
            failwith "cannot evaluate 17";
          [ { Tuner.m_name = "cost";
              m_value =
                float_of_int (abs (policy.Kpolicy.vsid_multiplier - 64));
              m_unit = "units" } ]) }
  in
  let result =
    Tuner.tune ~jobs:2 ~seed:7 ~workloads:[ treacherous ] ~axes:synth_axes ()
  in
  Alcotest.(check bool) "failing candidate reported" true
    (List.exists
       (fun (id, _) ->
         id = "vsid_multiplier=17 @ treacherous")
       result.Tuner.r_failures);
  Alcotest.(check bool) "failing candidate not evaluated" false
    (List.exists
       (fun e -> e.Tuner.e_cand.Tuner.c_label = "vsid_multiplier=17")
       result.Tuner.r_evals);
  Alcotest.(check string) "winner still found" "vsid_multiplier=64"
    result.Tuner.r_winner.Tuner.e_cand.Tuner.c_label

let suite =
  [ Alcotest.test_case "labels and assignments" `Quick test_labels;
    Alcotest.test_case "grid enumeration" `Quick test_grid;
    Alcotest.test_case "domination" `Quick test_dominates;
    Alcotest.test_case "pareto front" `Quick test_pareto_front;
    Alcotest.test_case "scalar score" `Quick test_score;
    Alcotest.test_case "fan_out serial = parallel" `Quick
      test_fan_out_serial_parallel_identical;
    Alcotest.test_case "fan_out isolates crashes" `Quick
      test_fan_out_failure_isolated;
    Alcotest.test_case "tune finds the optimum" `Quick
      test_tune_finds_optimum;
    Alcotest.test_case "tune doc jobs-identical" `Quick
      test_tune_doc_jobs_identical;
    Alcotest.test_case "tune doc shape" `Quick test_tune_doc_shape;
    Alcotest.test_case "tune drops failing candidates" `Quick
      test_tune_drops_failing_candidate ]
