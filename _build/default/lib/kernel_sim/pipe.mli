(** Kernel pipes.

    A pipe is a 4 KB kernel buffer; writes copy user data in, reads copy
    it out.  The structure only tracks byte counts — the copies
    themselves (and their cache/TLB traffic) are charged by
    {!Kernel.sys_pipe_write}/{!Kernel.sys_pipe_read}, which move data a
    cache line at a time through the MMU. *)

type t

val capacity : int
(** 4096 bytes. *)

val create : index:int -> t
(** [index] selects which kernel buffer address this pipe uses. *)

val index : t -> int

val level : t -> int
(** Bytes currently buffered. *)

val space : t -> int
(** [capacity - level]. *)

val write : t -> bytes:int -> int
(** [write t ~bytes] accepts [min bytes (space t)] and returns it. *)

val read : t -> bytes:int -> int
(** [read t ~bytes] delivers [min bytes (level t)] and returns it. *)

val total_written : t -> int
(** Lifetime bytes accepted — with [total_read], the conservation
    invariant [total_written = total_read + level]. *)

val total_read : t -> int
