(* get_free_page and the pre-zeroed list (§9). *)
open Ppc
module Physmem = Kernel_sim.Physmem
module Pagepool = Kernel_sim.Pagepool
module Policy = Kernel_sim.Policy

let mk ?(clearing = Policy.Clear_uncached) ?(use_list = true)
    ?(list_limit = 8) () =
  let machine = Machine.ppc604_185 in
  let perf = Perf.create () in
  let memsys = Memsys.create ~machine ~perf in
  let physmem =
    Physmem.create ~ram_bytes:(2 * 1024 * 1024) ~reserved_bytes:4096
  in
  let pool =
    Pagepool.create ~physmem ~memsys ~clearing ~use_list ~list_limit ()
  in
  (pool, perf, physmem, memsys)

let test_get_zeroed_no_list () =
  let pool, perf, _, _ = mk ~clearing:Policy.Clear_off ~use_list:false () in
  (match Pagepool.get_zeroed_page pool with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a page");
  Alcotest.(check int) "no prezeroed hit" 0 perf.Perf.prezeroed_hits;
  Alcotest.(check int) "one call" 1 perf.Perf.get_free_page_calls;
  (* foreground clearing: 128 line stores through the cache *)
  Alcotest.(check int) "clearing traffic" 129 perf.Perf.dcache_accesses

let test_idle_clear_feeds_list () =
  let pool, perf, _, _ = mk () in
  Alcotest.(check bool) "idle did work" true (Pagepool.idle_clear_one pool);
  Alcotest.(check int) "one page cleared" 1 perf.Perf.pages_cleared_idle;
  Alcotest.(check int) "available" 1 (Pagepool.prezeroed_available pool);
  (match Pagepool.get_zeroed_page pool with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a page");
  Alcotest.(check int) "prezeroed hit" 1 perf.Perf.prezeroed_hits;
  Alcotest.(check int) "list drained" 0 (Pagepool.prezeroed_available pool)

let test_uncached_clearing_bypasses () =
  let pool, perf, _, _ = mk ~clearing:Policy.Clear_uncached () in
  ignore (Pagepool.idle_clear_one pool : bool);
  Alcotest.(check int) "stores bypass the cache" 128
    perf.Perf.dcache_bypasses;
  Alcotest.(check int) "no cache misses from clearing" 0
    perf.Perf.dcache_misses

let test_cached_clearing_allocates () =
  let pool, perf, _, memsys = mk ~clearing:Policy.Clear_cached () in
  ignore (Pagepool.idle_clear_one pool : bool);
  Alcotest.(check int) "no bypasses" 0 perf.Perf.dcache_bypasses;
  Alcotest.(check int) "128 lines allocated in the cache" 128
    (Cache.stats_allocations (Memsys.dcache memsys) Cache.Idle_clear)

let test_nolist_returns_frame () =
  let pool, perf, physmem, _ =
    mk ~clearing:Policy.Clear_uncached ~use_list:false ()
  in
  let before = Physmem.free_frames physmem in
  Alcotest.(check bool) "work done" true (Pagepool.idle_clear_one pool);
  Alcotest.(check int) "frame returned (control experiment)" before
    (Physmem.free_frames physmem);
  Alcotest.(check int) "nothing listed" 0 (Pagepool.prezeroed_available pool);
  Alcotest.(check int) "but work counted" 1 perf.Perf.pages_cleared_idle

let test_list_limit () =
  let pool, _, _, _ = mk ~list_limit:3 () in
  for _ = 1 to 3 do
    Alcotest.(check bool) "filling" true (Pagepool.idle_clear_one pool)
  done;
  Alcotest.(check bool) "full list stops work" false
    (Pagepool.idle_clear_one pool);
  Alcotest.(check int) "capped" 3 (Pagepool.prezeroed_available pool)

let test_clear_off_never_works () =
  let pool, _, _, _ = mk ~clearing:Policy.Clear_off () in
  Alcotest.(check bool) "no work" false (Pagepool.idle_clear_one pool)

let test_fifo_order () =
  let pool, _, _, _ = mk () in
  ignore (Pagepool.idle_clear_one pool : bool);
  ignore (Pagepool.idle_clear_one pool : bool);
  let a = Option.get (Pagepool.get_zeroed_page pool) in
  let b = Option.get (Pagepool.get_zeroed_page pool) in
  (* FIFO: first-cleared page (lower frame from the LIFO allocator's
     deeper pop) comes out first; simply assert distinctness + drain *)
  Alcotest.(check bool) "distinct frames" true (a <> b)

let test_free_page_roundtrip () =
  let pool, _, physmem, _ = mk () in
  let before = Physmem.free_frames physmem in
  let rpn = Option.get (Pagepool.get_page pool) in
  Pagepool.free_page pool rpn;
  Alcotest.(check int) "conserved" before (Physmem.free_frames physmem)

let suite =
  [ Alcotest.test_case "foreground clear path" `Quick test_get_zeroed_no_list;
    Alcotest.test_case "idle clear feeds list" `Quick
      test_idle_clear_feeds_list;
    Alcotest.test_case "uncached clearing bypasses cache" `Quick
      test_uncached_clearing_bypasses;
    Alcotest.test_case "cached clearing allocates lines" `Quick
      test_cached_clearing_allocates;
    Alcotest.test_case "no-list control returns frame" `Quick
      test_nolist_returns_frame;
    Alcotest.test_case "list limit" `Quick test_list_limit;
    Alcotest.test_case "clear off" `Quick test_clear_off_never_works;
    Alcotest.test_case "FIFO ordering" `Quick test_fifo_order;
    Alcotest.test_case "free page roundtrip" `Quick test_free_page_roundtrip ]
