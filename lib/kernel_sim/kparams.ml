open Ppc

let kernel_base = 0xC0000000
let kernel_virt_of_phys pa = (kernel_base + pa) land Addr.ea_mask
let kernel_phys_of_virt ea = (ea - kernel_base) land Addr.ea_mask

let kb n = n * 1024
let mb n = n * 1024 * 1024

let vectors_pa = 0x0000_0000
let text_pa = 0x0001_0000
let text_bytes = mb 1 + kb 256
let data_pa = 0x0015_0000
let data_bytes = mb 1
let htab_pa = 0x0030_0000
let htab_bytes = kb 128

(* Everything the kernel image pins, rounded up: vectors, text, data,
   htab, plus slack for boot-time allocations.  4 MB aligns with the BAT
   block below. *)
let reserved_bytes = mb 4
let bat_block_bytes = mb 4

let off_syscall = 0x0000
let off_sched = 0x4000
let off_fault = 0x8000
let off_pipe = 0xC000
let off_vfs = 0x10000
let off_mm = 0x14000
let off_idle = 0x18000
let off_exec = 0x1C000

let syscall_fast = 230
let syscall_slow = 2100
let syscall_slow_stack_refs = 48

let switch_fast = 620
let switch_slow = 2400
let switch_slow_stack_refs = 64

let segment_load_cycles = 24

let fault_service = 450
let mmap_base_cost = 700
let mmap_per_page = 1
let munmap_base_cost = 500
let munmap_per_mapped_page = 40
let fork_base = 4000
let fork_per_page = 30
let exec_base = 20000
let pipe_op = 700
let read_op = 400
let vfs_per_page = 1200
let copy_cycles_per_word = 3
let proc_exit = 1500
let idle_loop_slice = 50
let timer_tick_cycles = 1_330_000
let tick_fast = 180
let tick_slow = 1400
let tick_slow_stack_refs = 32
let clear_page_instr = 64
let vsid_wrap_instr = 200
let steal_instr = 120

(* Kernel data objects live at disjoint offsets in the 1 MB data region:
   task structs in [8K, 264K), kernel stacks in [300K, 556K), pipe
   buffers in [600K, 856K). *)
let task_struct_ea ~pid =
  kernel_virt_of_phys (data_pa + kb 8 + ((pid land 0xFF) * kb 1))

let runqueue_ea = kernel_virt_of_phys data_pa

let pipe_buf_ea ~index =
  kernel_virt_of_phys (data_pa + kb 600 + ((index land 0x3F) * Addr.page_size))

let kstack_ea ~pid =
  kernel_virt_of_phys (data_pa + kb 300 + ((pid land 0xFF) * kb 1))
