lib/ppc/rng.mli:
