(* The paper's title tricks, step by step: watch the idle task reclaim
   zombie PTEs from the hashed page table (§7), then compare the four
   page-clearing designs (§9).

     dune exec examples/idle_tricks.exe *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Config = Mmu_tricks.Config
module System = Mmu_tricks.System
module Report = Mmu_tricks.Report
module Kbuild = Workloads.Kbuild
module Measure = Workloads.Measure

let show_htab k label =
  let s = System.snapshot k in
  Printf.printf "  %-28s live %5d   zombie %5d   (%.1f%% of %d slots)\n"
    label s.System.htab_live s.System.htab_zombie
    (100.0
    *. float_of_int s.System.htab_valid
    /. float_of_int (max 1 s.System.htab_capacity))
    s.System.htab_capacity

let zombie_reclaim_demo () =
  print_endline "== Zombie PTE reclaim (§7) ==";
  let k =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:3 ()
  in
  let t = Kernel.spawn k ~data_pages:128 () in
  Kernel.switch_to k t;
  show_htab k "freshly booted:";
  (* Touch a large mapping: its PTEs enter the htab. *)
  let ea = Kernel.sys_mmap k ~pages:120 ~writable:true in
  for i = 0 to 119 do
    Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
  done;
  show_htab k "after touching 120 pages:";
  (* munmap the range: 120 pages is far above the 20-page cutoff, so the
     kernel just retires the VSIDs — the PTEs stay physically valid but
     can never match again.  Zombies. *)
  Kernel.sys_munmap k ~ea ~pages:120;
  show_htab k "after lazy munmap:";
  (* Now let the machine go idle — the idle task sweeps the htab and
     physically invalidates the zombies, so later reloads find empty
     slots instead of evicting someone's live translation. *)
  Kernel.idle_for k ~cycles:3_000_000;
  show_htab k "after the idle task ran:";
  Printf.printf "  zombies reclaimed by idle: %d\n\n"
    (Kernel.perf k).Perf.zombies_reclaimed

let page_clearing_demo () =
  print_endline "== Idle-task page clearing (§9) ==";
  print_endline "  (synthetic kernel compile; busy = non-idle time)";
  let params = { Kbuild.default_params with Kbuild.jobs = 8 } in
  let run label policy =
    let r = Kbuild.measure ~machine:Machine.ppc604_185 ~policy ~params () in
    [ label;
      Report.fmt_ms (r.Kbuild.busy_us /. 1000.0);
      Report.fmt_int (Perf.cache_misses r.Kbuild.perf);
      Report.fmt_int r.Kbuild.perf.Perf.prezeroed_hits ]
  in
  Report.table
    ~header:[ "design"; "busy ms"; "cache misses"; "prezeroed hits" ]
    ~rows:
      [ run "no idle clearing" Config.clearing_off;
        run "cached + list (the mistake)" Config.clearing_cached_list;
        run "uncached, no list (control)" Config.clearing_uncached_nolist;
        run "uncached + list (the win)" Config.clearing_uncached_list ]

let () =
  zombie_reclaim_demo ();
  page_clearing_demo ()
