lib/ppc/addr.ml: Format
