(* Counter-algebra invariants: after any workload, the performance
   monitor's numbers must be internally consistent.  These catch charging
   bugs (double counts, missing increments) that no single-path unit test
   would. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Config = Mmu_tricks.Config

let check_invariants name (p : Perf.t) =
  let chk what cond = Alcotest.(check bool) (name ^ ": " ^ what) true cond in
  chk "cycles non-negative" (p.Perf.cycles >= 0);
  chk "idle <= total cycles" (p.Perf.idle_cycles <= p.Perf.cycles);
  chk "busy = cycles - idle"
    (Perf.busy_cycles p = p.Perf.cycles - p.Perf.idle_cycles);
  chk "instructions <= cycles" (p.Perf.instructions <= p.Perf.cycles);
  chk "itlb misses <= lookups" (p.Perf.itlb_misses <= p.Perf.itlb_lookups);
  chk "dtlb misses <= lookups" (p.Perf.dtlb_misses <= p.Perf.dtlb_lookups);
  chk "htab searches = hits + misses"
    (p.Perf.htab_searches = p.Perf.htab_hits + p.Perf.htab_misses);
  chk "htab evicts <= reloads" (p.Perf.htab_evicts <= p.Perf.htab_reloads);
  chk "evict classification total"
    (p.Perf.htab_evicts = p.Perf.htab_evicts_live + p.Perf.htab_evicts_zombie);
  chk "icache misses <= accesses"
    (p.Perf.icache_misses <= p.Perf.icache_accesses);
  chk "dcache misses + bypasses <= accesses"
    (p.Perf.dcache_misses + p.Perf.dcache_bypasses
    <= p.Perf.dcache_accesses);
  chk "write-backs <= dcache misses + dcbz traffic"
    (p.Perf.dcache_writebacks <= p.Perf.dcache_accesses);
  chk "prezero hits <= get_free_page calls"
    (p.Perf.prezeroed_hits <= p.Perf.get_free_page_calls)

let workload k =
  let a = Kernel.spawn k () and b = Kernel.spawn k () in
  Kernel.switch_to k a;
  Kernel.user_run k ~instrs:5000;
  let data = Mm.user_text_base + (16 * Addr.page_size) in
  for i = 0 to 11 do
    Kernel.touch k Mmu.Store (data + (i * Addr.page_size))
  done;
  let ea = Kernel.sys_mmap k ~pages:40 ~writable:true in
  for i = 0 to 9 do
    Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
  done;
  let child = Kernel.sys_fork k in
  Kernel.switch_to k child;
  Kernel.touch k Mmu.Store data;
  Kernel.sys_exit k;
  Kernel.switch_to k b;
  Kernel.user_run k ~instrs:3000;
  let p = Kernel.new_pipe k in
  ignore (Kernel.sys_pipe_write k p ~buf:data ~bytes:512 : int);
  ignore (Kernel.sys_pipe_read k p ~buf:data ~bytes:512 : int);
  ignore (Kernel.sys_brk k ~pages:3 : Addr.ea);
  Kernel.switch_to k a;
  Kernel.sys_munmap k ~ea ~pages:40;
  Kernel.idle_for k ~cycles:60_000;
  Kernel.sys_exit k;
  Kernel.switch_to k b;
  Kernel.sys_exit k

let test_invariants_for name machine policy () =
  let k = Kernel.boot ~machine ~policy ~seed:13 () in
  workload k;
  check_invariants name (Kernel.perf k)

let prop_invariants_random_policies =
  (* random policy combinations: every combination must keep the counter
     algebra intact *)
  QCheck.Test.make ~name:"counter algebra holds for random policies"
    ~count:25
    QCheck.(int_bound 0xFFFF)
    (fun bits ->
      let b n = bits lsr n land 1 = 1 in
      let policy =
        { Policy.optimized with
          Policy.bat_kernel_mapping = b 0;
          fast_reload = b 1;
          fast_paths = b 2;
          use_htab = b 3;
          lazy_flush = b 4;
          flush_cutoff = (if b 5 then Some 20 else None);
          idle_zombie_reclaim = b 6;
          idle_clearing =
            (match bits lsr 7 land 3 with
            | 0 -> Policy.Clear_off
            | 1 -> Policy.Clear_cached
            | _ -> Policy.Clear_uncached);
          idle_clear_list = b 9;
          cache_inhibit_pagetables = b 10;
          idle_cache_lock = b 11;
          cache_preload = b 12;
          htab_replacement =
            (match bits lsr 13 land 3 with
            | 0 -> `Arbitrary
            | 1 -> `Second_chance
            | _ -> `Zombie_aware);
          vsid_source =
            (if b 15 then Kernel_sim.Vsid_alloc.Context_counter
             else Kernel_sim.Vsid_alloc.Pid_based) }
      in
      let machine =
        if b 8 then Machine.ppc603_133 else Machine.ppc604_185
      in
      let k = Kernel.boot ~machine ~policy ~seed:13 () in
      workload k;
      let p = Kernel.perf k in
      p.Perf.idle_cycles <= p.Perf.cycles
      && p.Perf.htab_searches = p.Perf.htab_hits + p.Perf.htab_misses
      && p.Perf.htab_evicts
         = p.Perf.htab_evicts_live + p.Perf.htab_evicts_zombie
      && p.Perf.itlb_misses <= p.Perf.itlb_lookups
      && p.Perf.dtlb_misses <= p.Perf.dtlb_lookups
      && p.Perf.dcache_misses + p.Perf.dcache_bypasses
         <= p.Perf.dcache_accesses
      && p.Perf.instructions <= p.Perf.cycles)

let suite =
  [ Alcotest.test_case "baseline on 604" `Quick
      (test_invariants_for "baseline-604" Machine.ppc604_185 Policy.baseline);
    Alcotest.test_case "optimized on 604" `Quick
      (test_invariants_for "optimized-604" Machine.ppc604_185
         Policy.optimized);
    Alcotest.test_case "optimized on 603" `Quick
      (test_invariants_for "optimized-603" Machine.ppc603_133
         Policy.optimized);
    Alcotest.test_case "no htab on 603" `Quick
      (test_invariants_for "nohtab-603" Machine.ppc603_180
         Config.optimized_no_htab);
    Alcotest.test_case "cached clearing" `Quick
      (test_invariants_for "clearing-604" Machine.ppc604_185
         Config.clearing_cached_list);
    Alcotest.test_case "uncached page tables on 750" `Quick
      (test_invariants_for "ptunc-750" Machine.ppc750_233
         Config.optimized_pt_uncached);
    Alcotest.test_case "601 baseline" `Quick
      (test_invariants_for "base-601" Machine.ppc601_80 Policy.baseline);
    QCheck_alcotest.to_alcotest prop_invariants_random_policies ]
