(** Per-process memory context: VMAs, page tables, context id.

    Linux divides each process's 4 GB into the user half (below
    [0xC0000000]) and the kernel half.  A process's user mappings are
    described by VMAs and realized in its two-level page table; the
    context id determines its 12 user-segment VSIDs.  This module is pure
    bookkeeping — cost charging and flush policy live in {!Kernel}. *)

open Ppc

(** What backs a vma's pages on a demand fault. *)
type backing =
  | Anonymous
      (** demand-zero: faults allocate a zeroed frame *)
  | File_pages of Vfs.file * int
      (** file mapping: faults install page-cache frames (shared, never
          freed with the address space), starting at the given page
          offset *)
  | Phys_window of int
      (** direct window onto physical space starting at the given frame
          (device apertures like a frame buffer); frames are shared and
          never freed *)

type vma = {
  va_start : Addr.ea;   (** page aligned *)
  va_pages : int;
  va_writable : bool;
  va_backing : backing;
}

type t

val user_text_base : Addr.ea
(** [0x01800000], where Linux/PPC links executables. *)

val user_mmap_base : Addr.ea
(** [0x40000000], bottom of the mmap arena. *)

val user_stack_top : Addr.ea
(** [0x80000000], stack grows down from here. *)

val framebuffer_base : Addr.ea
(** [0x60000000]: where the frame-buffer aperture is mapped (its own
    segment, so a dedicated BAT or segment policy can target it). *)

val create :
  ?trace:Trace.t ->
  physmem:Physmem.t ->
  vsid_alloc:Vsid_alloc.t ->
  pid:int ->
  unit ->
  t
(** Allocates the pgd and issues a live context id.  When [trace] is
    given, vma map/unmap events are emitted to it (only while tracing is
    enabled). *)

val pid : t -> int
val ctx : t -> int

val set_ctx : t -> int -> unit
(** Install a renewed context id (lazy whole-context flush). *)

val cpumask : t -> int
(** Bitmask of CPUs this address space has ever run on — the
    conservative TLB-shootdown target set (Linux's [mm_cpumask]).
    Never narrowed. *)

val note_running : t -> cpu:int -> unit
(** Record that the address space is running on [cpu] (called by the
    kernel's context switch). *)

val vsid_for_sr : t -> vsid_alloc:Vsid_alloc.t -> int -> int
(** The VSID this address space loads into user segment register [sr]. *)

val pagetable : t -> Pagetable.t

val add_vma : t -> vma -> unit
(** @raise Invalid_argument if it overlaps an existing vma. *)

val remove_vma : t -> start:Addr.ea -> vma option

val grow_vma : t -> start:Addr.ea -> extra_pages:int -> vma
(** [grow_vma t ~start ~extra_pages] extends the vma beginning at
    [start] — the mechanics of [brk].
    @raise Invalid_argument if no vma starts there or growth would
    overlap a neighbour. *)

val find_vma : t -> Addr.ea -> vma option

val vmas : t -> vma list

val alloc_mmap_range : t -> pages:int -> Addr.ea
(** Bump-allocate an address range in the mmap arena (no vma is added). *)

val reset_vmas : t -> unit
(** Drop every vma and rewind the mmap arena — the address-space reset of
    [exec].  Page-table contents are untouched (the caller unmaps). *)

val mapped_pages : t -> int

val destroy :
  t ->
  physmem:Physmem.t ->
  vsid_alloc:Vsid_alloc.t ->
  free_frame:(int -> unit) ->
  unit
(** Release every mapped frame (via [free_frame]), the page-table frames,
    and retire the context id. *)
