(** VSID allocation strategies (§5.2 and §7).

    Each memory-management context gets 16 VSIDs, one per segment
    register: [vsid = segment << 20 | (id * multiplier mod 2^20)].  The
    munged context id supplies the low bits the PTEG hash folds on.  Two
    policy axes matter:

    - {b id source}: deriving the id from the PID is the "obvious
      strategy"; a monotonic {e context counter} is what enables lazy
      flushing — a whole address space is invalidated by just issuing the
      context a fresh id, leaving "zombie" PTEs behind whose VSIDs can
      never match again.
    - {b multiplier}: the logical address spaces of processes are similar,
      so the htab hash relies on VSIDs for variation.  The naive
      multiplier 1 (VSID low bits = pid) piles every process's PTEs into
      the same narrow band of PTEGs — the hot spots that capped htab use
      at 37%; "multiplying the process id by a small non-power-of-two
      constant" (897, the historically tuned value) scatters the bands
      across the whole table (57-75% use).

    The allocator tracks the live id set so the MMU and idle task can
    classify any VSID as live or zombie in O(1). *)

(** Where context ids come from. *)
type id_source =
  | Pid_based        (** id = pid; cannot support lazy flushing *)
  | Context_counter  (** monotonic counter; retiring an id is O(1) *)

val scatter_multiplier : int
(** 897 — the tuned non-power-of-two constant. *)

type t

val create : source:id_source -> multiplier:int -> t
(** [create ~source ~multiplier] — [multiplier] must be positive.
    @raise Invalid_argument otherwise. *)

val multiplier : t -> int
val source : t -> id_source

val ctx_space : int
(** 2^20 — context ids live in the 20 low VSID bits, so the counter
    wraps here and ids are re-issued. *)

val new_context : t -> pid:int -> int
(** [new_context t ~pid] issues a live context id.

    With [Pid_based] the id {e is} [pid] — unless the pid munges into
    the kernel VSID block or (under an even multiplier) aliases another
    live context, in which case it is remapped by linear probing.  A
    pid's id is stable: re-issuing returns the id it got last time
    unless another pid has since claimed it.

    With [Context_counter] it is the next counter value; the counter
    wraps at {!ctx_space}, fires the {!set_on_wrap} hook, and skips ids
    that are still live, munge into the kernel block, or whose VSIDs a
    live context still owns.
    @raise Invalid_argument when every id is live (context exhaustion). *)

val set_on_wrap : t -> (unit -> unit) -> unit
(** Install the wrap escape hatch (§7): called once per counter wrap,
    before any wrapped id is issued.  The kernel's hook flushes every
    TLB on every CPU and purges zombie htab PTEs, making any non-live id
    safe to reuse. *)

val wraps : t -> int
(** Counter wrap events so far. *)

val renew_context : t -> old_ctx:int -> pid:int -> int
(** [renew_context t ~old_ctx ~pid] retires [old_ctx] (its VSIDs become
    zombies) and issues a replacement — the lazy whole-context flush.
    @raise Invalid_argument under [Pid_based], which has no spare ids. *)

val retire_context : t -> int -> unit
(** [retire_context t ctx] marks the context dead (process exit). *)

val vsid : t -> ctx:int -> sr:int -> int
(** The VSID for segment register [sr] (0–15) of context [ctx]. *)

val kernel_vsid : sr:int -> int
(** Fixed VSIDs for the kernel segments (12–15); always live. *)

val is_live : t -> int -> bool
(** [is_live t vsid] — does [vsid] belong to a live context (or the
    kernel)? *)

val is_zombie : t -> int -> bool
(** [not (is_live t vsid)]: the predicate driving eviction accounting and
    idle reclaim.  (A VSID never issued is trivially "zombie"; the htab
    only ever holds issued ones.) *)

val is_kernel : int -> bool
(** Does this VSID belong to a kernel segment? *)

val live_contexts : t -> int
(** Exact number of live contexts.  Asserts the post-wrap-fix invariant
    that the VSID table holds exactly 16 entries per live context (the
    pre-fix [length / 16] silently under-counted when aliased contexts
    collapsed entries). *)

(** {1 Test hooks}

    For planting the pre-fix aliasing bug in diagnostics — never used on
    a measurement path. *)

val unsafe_set_next : t -> int -> unit
(** Jump the context counter (e.g. to just below {!ctx_space} so a churn
    test reaches the wrap cheaply).
    @raise Invalid_argument for values below 1. *)

val age : t -> contexts:int -> unit
(** [age t ~contexts] advances the context counter as if [contexts]
    short-lived address spaces had come and gone before the measured
    run — the long-horizon aging shim behind the E20 wrap-stress
    experiment.  O(1), charges nothing, marks nothing live; clamped to
    just below {!ctx_space} so the wrap (and its escape hatch) fires on
    a real allocation.
    @raise Invalid_argument for negative counts or a [Pid_based]
    allocator. *)

val test_unsafe_no_wrap : bool ref
(** When set, [Context_counter] reverts to the pre-fix behavior: no
    wrap, no liveness check — ctx and ctx + 2^20 silently share VSIDs.
    Tests must reset it. *)
