(** Set-associative translation look-aside buffer.

    The 603 and 604 have split instruction/data TLBs, two-way set
    associative with LRU replacement (603: 32 sets x 2 = 64 entries per
    side; 604: 64 sets x 2 = 128 per side).  Entries are tagged with the
    full virtual page number, so they are tagged with the VSID: a context
    switch needs no TLB flush, and the lazy-flush trick of §7 works by
    retiring VSIDs instead of scrubbing entries.

    The module is purely structural; the MMU charges cycle and counter
    costs. *)

type t

type entry = {
  vpn : Addr.vpn;
  rpn : int;
  inhibited : bool;  (** cache-inhibited mapping (WIMG I-bit) *)
  writable : bool;
}

(** Victim selection when a set is full.  The real 603/604 use LRU; the
    alternatives exist so the replacement choice is a policy knob the
    tuner can price rather than a hardwired decision. *)
type replacement =
  | Lru   (** least-recently-used: hits refresh a per-slot stamp *)
  | Fifo  (** oldest insertion evicted; hits leave stamps untouched *)
  | Rand  (** deterministic xorshift pick among the set's ways *)

val replacement_name : replacement -> string
(** ["lru"], ["fifo"], ["random"]. *)

val create : ?replacement:replacement -> sets:int -> ways:int -> unit -> t
(** [create ~sets ~ways ()] builds an empty TLB.  [sets] must be a power
    of two.  [replacement] defaults to {!Lru}, the hardware's
    behavior. *)

val replacement : t -> replacement
(** The victim-selection policy this TLB was created with. *)

val sets : t -> int
val ways : t -> int

val capacity : t -> int
(** [sets * ways]. *)

val lookup : t -> Addr.vpn -> entry option
(** [lookup t vpn] searches the set selected by the low VPN bits and
    refreshes LRU state on a hit (under {!Lru} replacement). *)

val peek : t -> Addr.vpn -> entry option
(** [peek t vpn] is [lookup] without the LRU side effect — for probing and
    tests. *)

val insert : t -> entry -> unit
(** [insert t e] fills an invalid way of the set, or replaces the LRU
    way. *)

val insert_replacing : t -> entry -> entry option
(** [insert] that also reports the live entry it displaced, if any —
    [None] when an invalid way was filled or a same-VPN entry updated in
    place.  The trace layer turns the victim into a TLB-eviction event
    ("which task evicted whom"). *)

val invalidate_page : t -> Addr.vpn -> unit
(** [invalidate_page t vpn] drops the entry for [vpn] if present — the
    [tlbie] instruction. *)

val invalidate_all : t -> unit
(** Full flush ([tlbia]). *)

val occupancy : t -> int
(** Number of valid entries. *)

val count_matching : t -> (Addr.vpn -> bool) -> int
(** [count_matching t p] counts valid entries whose VPN satisfies [p] —
    used to measure the kernel's share of TLB slots (§5.1). *)

val iter : t -> (entry -> unit) -> unit
(** Iterate over valid entries. *)

(** {1 Flat interface}

    The store is parallel flat int arrays; these accessors expose it
    without building [entry] records or options, so the MMU's hit path
    allocates nothing.  A slot index is only meaningful until the next
    mutation of the TLB. *)

val lookup_slot : t -> Addr.vpn -> int
(** [lookup_slot t vpn] is {!lookup} returning the matching slot index,
    or [-1] on a miss.  Refreshes LRU state on a hit. *)

val peek_slot : t -> Addr.vpn -> int
(** [lookup_slot] without the LRU side effect. *)

val slot_vpn : t -> int -> Addr.vpn
val slot_rpn : t -> int -> int
val slot_inhibited : t -> int -> bool
val slot_writable : t -> int -> bool
(** Field reads of one (valid) slot returned by [lookup_slot]. *)

val insert_flat :
  t -> vpn:Addr.vpn -> rpn:int -> inhibited:bool -> writable:bool -> int
(** {!insert_replacing} without the option/record traffic: returns the
    VPN of the live entry it displaced, or [-1] when an invalid way was
    filled or a same-VPN entry updated in place.  Victim selection is
    identical to {!insert_replacing}. *)
