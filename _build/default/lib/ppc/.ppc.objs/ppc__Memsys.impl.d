lib/ppc/memsys.ml: Addr Cache Cost Machine Perf
