lib/kernel_sim/vsid_alloc.ml: Hashtbl
