test/test_workloads.ml: Addr Alcotest Kernel_sim List Machine Perf Ppc Printf Rng Workloads
