open Ppc
module Kernel = Kernel_sim.Kernel
module Mm = Kernel_sim.Mm
module Vfs = Kernel_sim.Vfs

type params = {
  rounds : int;
  editor_pages : int;
  compile_pages : int;
  spool_pages : int;
}

let default_params =
  { rounds = 40; editor_pages = 80; compile_pages = 240; spool_pages = 24 }

type result = {
  perf : Perf.t;
  busy_us : float;
  wall_us : float;
  keystroke_us : float;
  utility_us : float;
}

let data_of ~text_pages = Mm.user_text_base + (text_pages lsl Addr.page_shift)

let run k ~params:p =
  let rng = Kernel.rng k in
  (* the cast *)
  let editor = Kernel.spawn k ~text_pages:32 ~data_pages:p.editor_pages () in
  let daemon = Kernel.spawn k ~text_pages:8 ~data_pages:8 () in
  let shell = Kernel.spawn k ~text_pages:16 ~data_pages:16 () in
  let compiler =
    Kernel.spawn k ~text_pages:64 ~data_pages:p.compile_pages ()
  in
  let spool =
    Vfs.create_file (Kernel.vfs k) ~name:"mail-spool" ~pages:p.spool_pages
  in
  let editor_gen =
    Refgen.create ~rng ~base_ea:(data_of ~text_pages:32)
      ~pages:p.editor_pages ~hot_fraction:0.3 ~locality:0.9 ()
  in
  let compile_gen =
    Refgen.create ~rng ~base_ea:(data_of ~text_pages:64)
      ~pages:p.compile_pages ~hot_fraction:0.4 ~locality:0.8 ()
  in
  (* warm everyone up a little *)
  List.iter
    (fun t ->
      Kernel.switch_to k t;
      Kernel.user_run k ~instrs:2000)
    [ editor; daemon; shell; compiler ];
  let keystroke_cycles = ref 0 in
  let keystrokes = ref 0 in
  let utility_cycles = ref 0 in
  let utilities = ref 0 in
  for round = 0 to p.rounds - 1 do
    (* the editor user types a burst, then thinks (I/O + idle) *)
    Kernel.switch_to k editor;
    let t0 = Kernel.cycles k in
    for _ = 1 to 12 do
      (* a keystroke: redisplay code + buffer touches + a write() *)
      Kernel.user_run k ~instrs:900;
      for _ = 1 to 10 do
        let ea = Refgen.next editor_gen in
        Kernel.touch k
          (if Rng.int rng 3 = 0 then Mmu.Store else Mmu.Load)
          (Addr.page_base ea)
      done;
      Kernel.sys_null k
    done;
    keystroke_cycles := !keystroke_cycles + (Kernel.cycles k - t0);
    incr keystrokes;
    (* think time: the machine goes idle *)
    Kernel.idle_for k ~cycles:8_000;
    (* the mail daemon wakes and scans its spool *)
    Kernel.switch_to k daemon;
    Kernel.user_run k ~instrs:700;
    let buf = Kernel.sys_mmap k ~pages:4 ~writable:true in
    Kernel.sys_file_read k spool
      ~from_page:(round mod max 1 (p.spool_pages - 3))
      ~pages:(min 4 p.spool_pages) ~buf;
    Kernel.sys_munmap k ~ea:buf ~pages:4;
    (* the shell runs a small utility every few rounds *)
    if round mod 4 = 1 then begin
      Kernel.switch_to k shell;
      Kernel.user_run k ~instrs:600;
      let t0 = Kernel.cycles k in
      let child = Kernel.sys_fork k in
      Kernel.switch_to k child;
      Kernel.sys_exec k ~text_pages:12 ~data_pages:8 ~stack_pages:2;
      Kernel.user_run k ~instrs:4000;
      for i = 0 to 5 do
        Kernel.touch k Mmu.Store (data_of ~text_pages:12 + (i lsl Addr.page_shift))
      done;
      Kernel.sys_exit k;
      Kernel.switch_to k shell;
      utility_cycles := !utility_cycles + (Kernel.cycles k - t0);
      incr utilities
    end;
    (* the compile grinds on: compute + allocator churn *)
    Kernel.switch_to k compiler;
    Kernel.user_run k ~instrs:4000;
    for _ = 1 to 120 do
      let ea = Refgen.next compile_gen in
      Kernel.touch k
        (if Rng.int rng 4 = 0 then Mmu.Store else Mmu.Load)
        (Addr.page_base ea)
    done;
    if round mod 5 = 2 then begin
      let arena = Kernel.sys_mmap k ~pages:40 ~writable:true in
      for i = 0 to 9 do
        Kernel.touch k Mmu.Store (arena + (i lsl Addr.page_shift))
      done;
      Kernel.sys_munmap k ~ea:arena ~pages:40
    end
  done;
  List.iter
    (fun t ->
      Kernel.switch_to k t;
      Kernel.sys_exit k)
    [ editor; daemon; shell; compiler ];
  ( float_of_int !keystroke_cycles /. float_of_int (max 1 !keystrokes),
    float_of_int !utility_cycles /. float_of_int (max 1 !utilities) )

let measure ~machine ~policy ?(params = default_params) ?(seed = 42) () =
  let k = Kernel.boot ~machine ~policy ~seed () in
  let before = Perf.snapshot (Kernel.perf k) in
  let keystroke_cycles, utility_cycles = run k ~params in
  let perf = Perf.diff ~after:(Perf.snapshot (Kernel.perf k)) ~before in
  let mhz = machine.Machine.mhz in
  { perf;
    busy_us = Cost.us_of_cycles ~mhz (Perf.busy_cycles perf);
    wall_us = Cost.us_of_cycles ~mhz perf.Perf.cycles;
    keystroke_us = Cost.us_of_cycles ~mhz (int_of_float keystroke_cycles);
    utility_us = Cost.us_of_cycles ~mhz (int_of_float utility_cycles) }
