(** Convenience layer: boot a configured system, measure regions, snapshot
    MMU state.

    [Kernel_sim.Kernel] is the full API; this module packages the
    boot-measure-snapshot cycle every experiment repeats. *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy

val boot : machine:Machine.t -> policy:Policy.t -> ?seed:int -> unit -> Kernel.t
(** Boot a system (alias of {!Kernel.boot}). *)

val measure : Kernel.t -> (unit -> 'a) -> 'a * Perf.t
(** [measure k f] runs [f] and returns its result with the counter deltas
    it caused. *)

(** A point-in-time picture of the MMU structures. *)
type snapshot = {
  tlb_valid : int;          (** valid TLB entries, I + D *)
  tlb_capacity : int;
  kernel_tlb : int;         (** TLB entries holding kernel translations *)
  htab_valid : int;         (** valid htab PTEs (live + zombie) *)
  htab_live : int;
  htab_zombie : int;
  htab_capacity : int;
  htab_histogram : int array;  (** PTEGs by valid-entry count (0..8) *)
  prezeroed_pages : int;
  free_frames : int;
}

val snapshot : Kernel.t -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit
