test/test_vsid.ml: Alcotest Hashtbl Kernel_sim Ppc Printf Pte QCheck QCheck_alcotest
