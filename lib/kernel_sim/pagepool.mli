(** [get_free_page] and the pre-zeroed page list (§9).

    The paper's final design: the idle task clears free pages with the
    cache {e disabled} for those pages and threads them onto a lock-free
    list; [get_zeroed_page] first checks that list and only clears a page
    itself (through the cache, polluting it) when the list is empty.  The
    failed variants are expressible too: clearing through the cache
    (evicts live data), and clearing uncached without keeping the list
    (pure wasted idle work, measured to be performance-neutral).

    All clearing costs are charged through {!Ppc.Memsys}.  Cached
    clearing uses [dcbz] (allocate-and-zero, no memory fetch): cheap in
    cycles but every line evicts someone else's — attributed to source
    [Idle_clear] (idle) or [Kernel] (foreground demand clearing).
    Uncached clearing uses plain stores that bypass the cache entirely:
    slower per store (paid in idle time) but pollution-free. *)

type t

val create :
  physmem:Physmem.t ->
  memsys:Ppc.Memsys.t ->
  clearing:Policy.idle_clearing ->
  use_list:bool ->
  list_limit:int ->
  unit ->
  t
(** [list_limit] caps the pre-zeroed list ({!Policy.t}'s
    [prezero_list_limit] supplies it — there is deliberately no default
    here, so the policy layer owns the constant). *)

val get_page : t -> int option
(** A frame with undefined contents (page-cache use); never consults the
    pre-zeroed list and charges only the free-list check. *)

val get_zeroed_page : t -> int option
(** The demand-zero allocation: pops a pre-zeroed page when available
    (counted in [prezeroed_hits]), otherwise allocates and clears through
    the cache in the foreground. *)

val free_page : t -> int -> unit
(** Return a (dirty) frame to the allocator. *)

val idle_clear_one : t -> bool
(** One unit of idle clearing work: take a free frame, clear it per the
    clearing mode, and either push it on the list or (no-list mode)
    return it dirty-free as the paper's control experiment did.  Returns
    [false] — no work performed — when clearing is off, memory is
    exhausted, or the list is full. *)

val prezeroed_available : t -> int
(** Current pre-zeroed list length. *)
