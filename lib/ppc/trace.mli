(** Event tracing for the simulator: what the 604's performance monitor
    could only count, this layer records as a stream.

    Three instruments share one handle (owned by {!Memsys}, one per
    simulated machine):

    - a ring buffer of typed {e events} — TLB misses and reloads, htab
      probes and evictions (with probe length and victim liveness), BAT
      hits, context switches, precise and lazy flushes, page faults,
      idle-task pre-zeroing and zombie reclaim — each stamped with the
      simulated cycle counter and the owning task's PID;
    - a {e timeline sampler} that snapshots the {!Perf} counters every N
      simulated cycles;
    - latency {!Hist} histograms of htab probe lengths, TLB-miss service
      costs and context-switch costs.

    Tracing is observation only: emitting never charges cycles, touches
    the caches or draws from an RNG, so a traced run produces exactly
    the Perf counts of an untraced run at the same seed.  When disabled
    (the default) the cost is one flag check per instrumented site and
    zero allocation; the ring storage is only allocated by {!enable}.

    The exporters (Chrome trace-event JSON, text summaries) live in
    [Mmu_tricks.Trace], which depends on this module, not the other way
    around. *)

type kind =
  | Itlb_miss        (** a = faulting EA *)
  | Dtlb_miss        (** a = faulting EA *)
  | Tlb_reload       (** a = EA, b = service cost in cycles (span) *)
  | Tlb_evict        (** a = victim VPN, b = victim VSID *)
  | Htab_probe       (** a = PTE slots examined, b = 1 hit / 0 miss *)
  | Htab_evict       (** a = victim VSID, b = 1 live / 0 zombie *)
  | Bat_hit          (** a = EA *)
  | Context_switch   (** a = incoming PID, b = switch cost (span) *)
  | Run_slice        (** scheduler slice; b = duration in cycles (span) *)
  | Idle_window      (** b = duration in cycles (span) *)
  | Flush_page       (** precise per-page flush; a = EA, b = VSID *)
  | Flush_context    (** lazy flush; a = old ctx, b = fresh ctx *)
  | Page_fault       (** a = EA, b = 0 fetch / 1 load / 2 store *)
  | Idle_prezero     (** a = RPN cleared, b = 1 kept on list / 0 discarded *)
  | Idle_reclaim     (** a = zombie PTEs reclaimed, b = slots scanned *)
  | Vma_map          (** a = start EA, b = pages *)
  | Vma_unmap        (** a = start EA, b = pages *)

val all_kinds : kind list
val kind_name : kind -> string

(** A decoded event (events are stored unboxed; this record is built on
    inspection only). *)
type event = {
  e_kind : kind;
  e_cycle : int;  (** simulated cycle at emission *)
  e_pid : int;    (** owning task PID; 0 = kernel/idle *)
  e_a : int;
  e_b : int;
}

type t = {
  perf : Perf.t;
  mutable enabled : bool;
  mutable r_kind : int array;
  mutable r_cycle : int array;
  mutable r_pid : int array;
  mutable r_a : int array;
  mutable r_b : int array;
  mutable head : int;
  kind_counts : int array;
  mutable cur_pid : int;
  mutable sample_every : int;
  mutable next_sample : int;
      (** [max_int] while sampling is off — {!Memsys} compares the cycle
          counter against this on every charge, so the disabled sampler
          costs one integer compare *)
  mutable samples_rev : (int * Perf.t) list;
  hist_probe : Hist.t;
  hist_tlb_service : Hist.t;
  hist_ctxsw : Hist.t;
}
(** Exposed so the one comparison on {!Memsys.t}'s charge path reads the
    field directly; treat as read-only outside this module and
    {!Memsys}. *)

val create : perf:Perf.t -> t
(** A disabled trace stamping events from [perf]'s cycle counter — unless
    {!set_boot_defaults} armed process-wide tracing, in which case the
    trace starts enabled and is registered for {!drain_registered}. *)

val enable : ?ring:int -> t -> unit
(** Allocate the ring ([ring] events, default 65536; oldest events are
    overwritten on wrap) and start recording. *)

val disable : t -> unit
(** Stop recording and sampling; retained events stay readable. *)

val enabled : t -> bool

val set_sampling : t -> every:int -> unit
(** Snapshot the Perf counters every [every] simulated cycles
    ([every <= 0] turns sampling off).  Sampling works even when event
    recording is disabled. *)

(** {1 Boot defaults}

    For drivers that cannot reach the kernels being booted (the
    experiment registry boots its own): arm tracing process-wide, run,
    then collect every trace created in between. *)

val set_boot_defaults :
  ?ring:int -> ?sample_every:int -> enabled:bool -> unit -> unit
(** Arm ([enabled:true]) or disarm process-wide tracing for traces
    created afterwards.  [sample_every > 0] also turns on timeline
    sampling for them. *)

val drain_registered : unit -> t list
(** Traces created-enabled via boot defaults since the last drain, in
    creation order. *)

(** {1 Emission} — all no-ops unless {!enabled} *)

val set_current_pid : t -> int -> unit
(** Attribute subsequent {!emit}s to this task (0 = kernel/idle). *)

val current_pid : t -> int

val emit : t -> kind -> a:int -> b:int -> unit
(** Record one event stamped with the current cycle and current PID. *)

val emit_for : t -> kind -> pid:int -> a:int -> b:int -> unit
(** [emit] with an explicit owning PID. *)

val emit_htab_probe : t -> len:int -> hit:bool -> unit
(** {!Htab_probe} event plus a {!hist_probe} observation. *)

val emit_tlb_service : t -> ea:int -> cost:int -> unit
(** {!Tlb_reload} event plus a {!hist_tlb_service} observation. *)

val emit_context_switch : t -> pid:int -> cost:int -> unit
(** {!Context_switch} event plus a {!hist_ctxsw} observation. *)

(** {1 Inspection} *)

val capacity : t -> int
(** Ring capacity in events (0 until {!enable}). *)

val total : t -> int
(** Events ever emitted, including those overwritten on wrap. *)

val length : t -> int
(** Events currently held ([min total capacity]). *)

val dropped : t -> int
(** [total - length]: events lost to ring wrap. *)

val kind_count : t -> kind -> int
(** Total emitted of one kind (immune to ring wrap). *)

val iter : t -> (event -> unit) -> unit
(** Iterate retained events, oldest first. *)

val events : t -> event list
(** Retained events, oldest first. *)

val take_sample : t -> unit
(** Record one timeline sample now (called by {!Memsys} when the cycle
    counter passes [next_sample]). *)

val samples : t -> (int * Perf.t) list
(** Timeline samples as [(cycle, snapshot)], chronological. *)

val hist_probe : t -> Hist.t
val hist_tlb_service : t -> Hist.t
val hist_ctxsw : t -> Hist.t
