(** LmBench-style microbenchmarks on the simulated kernel.

    Re-implementations of the McVoy benchmarks the paper measures with
    [5]: each drives the same kernel paths per iteration as the original's
    inner loop (syscall entry/exit, context switches where the original's
    processes block and wake, line-at-a-time copies for bandwidth), so
    the simulated costs decompose the same way the real measurements do.

    Per-benchmark functions take a booted kernel, create their own tasks,
    warm up, measure, and clean up after themselves.  {!run} produces a
    full summary on fresh kernels (one boot per metric, like running the
    lmbench binaries one at a time). *)

module Kernel = Kernel_sim.Kernel

val null_syscall_us : Kernel.t -> float
(** getpid-style null syscall latency. *)

val ctx_switch_us : Kernel.t -> nprocs:int -> float
(** lat_ctx with 0 KB working set: mean switch cost with [nprocs]
    processes in the ring, loop overhead subtracted. *)

val ctx_switch_sized_us : Kernel.t -> nprocs:int -> size_kb:int -> float
(** lat_ctx's [-s] knob: each process touches [size_kb] KB of its data
    between switches, so the measured cost includes re-faulting the TLB
    and cache footprint the other processes displaced — the quantity
    §5.1/§6 are really about.  [size_kb] up to 256. *)

val pipe_latency_us : Kernel.t -> float
(** lat_pipe: one-byte token ping-pong between two processes; half the
    round trip. *)

val pipe_latency_loaded_us : Kernel.t -> float
(** lat_pipe on a {e loaded} system: the ping-pong shares the machine
    with background processes whose working sets churn the TLB and cache
    between rounds — the multiuser condition the paper's numbers were
    taken under.  Every round then pays real reload costs, which is what
    the §6.1 fast handlers accelerate. *)

val pipe_bandwidth_mbs : Kernel.t -> float
(** bw_pipe: bulk transfer through a 4 KB pipe, reader and writer
    alternating. *)

val file_reread_mbs : Kernel.t -> float
(** bw_file_rd on a warm 1 MB file: pure page-cache copy bandwidth. *)

val mmap_latency_us : Kernel.t -> float
(** lat_mmap on a 2 MB region: map, touch a few pages, unmap.  Dominated
    by the range-flush strategy (§7). *)

val proc_start_ms : Kernel.t -> float
(** lat_proc fork+exec: create a process, exec a fresh image, run it
    briefly, reap it. *)

(** One row of the paper's LmBench summary tables. *)
type summary = {
  null_us : float;
  ctxsw2_us : float;   (** 2-process context switch *)
  ctxsw8_us : float;   (** 8-process context switch (§7) *)
  pipe_lat_us : float;
  pipe_bw_mbs : float;
  file_reread_mbs : float;
  mmap_lat_us : float;
  pstart_ms : float;
}

val run :
  machine:Ppc.Machine.t -> policy:Kernel_sim.Policy.t -> ?seed:int -> unit ->
  summary
(** Boot a fresh kernel per metric and collect the full summary. *)
