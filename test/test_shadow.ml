(* The shadow reference MMU: clean runs are divergence-free on every
   backend, checking never perturbs the simulation, and a planted
   stale-TLB bug is caught with the right event context. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Config = Mmu_tricks.Config

let user_vsid_base = 0x100

(* Raw-MMU rig over a mutable backing, mirroring Test_mmu.make but with
   a shadow checker attached. *)
let make_shadowed ?(machine = Machine.ppc604_185) ?(knobs = Mmu.default_knobs)
    () =
  let perf = Perf.create () in
  let memsys = Memsys.create ~machine ~perf in
  let mappings : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
  let walk ea =
    match Hashtbl.find_opt mappings (Addr.epn ea) with
    | Some (rpn, writable) ->
        Mmu.Mapped
          { rpn;
            wimg = Pte.wimg_default;
            protection = (if writable then Pte.Read_write else Pte.Read_only);
            pt_refs = [| 0x4000; 0x4100; 0x4200 |] }
    | None -> Mmu.Unmapped { pt_refs = [| 0x4000; 0x4100 |] }
  in
  let mmu =
    Mmu.create ~machine ~memsys ~knobs ~backing:{ Mmu.walk }
      ~rng:(Rng.create ~seed:3) ()
  in
  Segment.load_user (Mmu.segments mmu) (fun sr -> user_vsid_base + sr);
  Segment.load_kernel (Mmu.segments mmu) (fun sr -> 0xF00 + sr);
  let sh = Shadow.create () in
  Mmu.attach_shadow mmu sh;
  (mmu, mappings, perf, sh)

(* One deterministic access mix: mapped loads/stores/fetches, faults on
   unmapped pages, read-only protection faults, a flush and a re-fill. *)
let drive mmu mappings =
  for i = 0 to 30 do
    Hashtbl.replace mappings (0x01800 + i) (0x200 + i, i land 1 = 0)
  done;
  for i = 0 to 30 do
    let ea = (0x01800 + i) lsl Addr.page_shift in
    ignore (Mmu.access mmu Mmu.Load ea : Mmu.access_result);
    ignore (Mmu.access mmu Mmu.Fetch ea : Mmu.access_result);
    ignore (Mmu.access mmu Mmu.Store ea : Mmu.access_result)
  done;
  ignore (Mmu.access mmu Mmu.Load 0x50000000 : Mmu.access_result);
  ignore (Mmu.access mmu Mmu.Store 0x50001000 : Mmu.access_result);
  Mmu.flush_page mmu 0x01800000;
  Hashtbl.remove mappings 0x01801;
  Mmu.flush_page mmu 0x01801000;
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  ignore (Mmu.access mmu Mmu.Load 0x01801000 : Mmu.access_result)

let backends =
  [ ("604 hw-search", Machine.ppc604_185, Mmu.default_knobs);
    ("603 sw-htab", Machine.ppc603_133, Mmu.default_knobs);
    ( "603 sw-direct",
      Machine.ppc603_133,
      { Mmu.default_knobs with Mmu.use_htab = false } ) ]

let test_clean_run_no_divergence () =
  List.iter
    (fun (name, machine, knobs) ->
      let mmu, mappings, _, sh = make_shadowed ~machine ~knobs () in
      drive mmu mappings;
      Alcotest.(check bool)
        (name ^ ": checks performed") true
        (Shadow.checks sh > 0);
      Alcotest.(check int) (name ^ ": no divergence") 0
        (Shadow.total_divergences sh))
    backends

let perf_signature p =
  ( p.Perf.cycles,
    p.Perf.mem_refs,
    Perf.tlb_misses p,
    p.Perf.htab_searches,
    Perf.cache_misses p,
    p.Perf.instructions )

let test_shadow_is_free () =
  List.iter
    (fun (name, machine, knobs) ->
      let run shadowed =
        let perf = Perf.create () in
        let memsys = Memsys.create ~machine ~perf in
        let mappings = Hashtbl.create 64 in
        let walk ea =
          match Hashtbl.find_opt mappings (Addr.epn ea) with
          | Some (rpn, writable) ->
              Mmu.Mapped
                { rpn;
                  wimg = Pte.wimg_default;
                  protection =
                    (if writable then Pte.Read_write else Pte.Read_only);
                  pt_refs = [| 0x4000; 0x4100; 0x4200 |] }
          | None -> Mmu.Unmapped { pt_refs = [| 0x4000; 0x4100 |] }
        in
        let mmu =
          Mmu.create ~machine ~memsys ~knobs ~backing:{ Mmu.walk }
            ~rng:(Rng.create ~seed:3) ()
        in
        Segment.load_user (Mmu.segments mmu) (fun sr -> user_vsid_base + sr);
        Segment.load_kernel (Mmu.segments mmu) (fun sr -> 0xF00 + sr);
        if shadowed then Mmu.attach_shadow mmu (Shadow.create ());
        drive mmu mappings;
        perf_signature perf
      in
      Alcotest.(check bool)
        (name ^ ": counters identical with shadow on")
        true
        (run false = run true))
    backends

let test_probe_ignores_stale_state () =
  (* probe is derived from the reference translator, so a stale TLB
     entry never leaks into it *)
  let mmu, mappings, _, _ = make_shadowed () in
  Hashtbl.replace mappings 0x01800 (0xAA, true);
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  (* remap behind the MMU's back: TLB still says 0xAA *)
  Hashtbl.replace mappings 0x01800 (0xBB, true);
  Alcotest.(check (option int))
    "probe answers from the page tables"
    (Some (Addr.pa_of ~rpn:0xBB ~ea:0x01800004))
    (Mmu.probe mmu Mmu.Load 0x01800004)

let test_injected_stale_tlb_is_caught () =
  let mmu, mappings, _, sh = make_shadowed () in
  let ea = 0x01800000 in
  Hashtbl.replace mappings (Addr.epn ea) (0xAA, true);
  ignore (Mmu.access mmu Mmu.Load ea : Mmu.access_result);
  Alcotest.(check int) "clean before injection" 0
    (Shadow.total_divergences sh);
  (* remap the page and flush — but the flush loses its TLB invalidate *)
  Hashtbl.replace mappings (Addr.epn ea) (0xBB, true);
  Mmu.test_skip_tlb_invalidations := 1;
  Fun.protect
    ~finally:(fun () -> Mmu.test_skip_tlb_invalidations := 0)
    (fun () -> Mmu.flush_page mmu ea);
  (match Mmu.access mmu Mmu.Load ea with
  | Mmu.Ok pa ->
      Alcotest.(check int) "fast path serves the stale frame"
        (Addr.pa_of ~rpn:0xAA ~ea) pa
  | Mmu.Fault -> Alcotest.fail "stale TLB entry should still translate");
  Alcotest.(check int) "divergence reported" 1 (Shadow.total_divergences sh);
  match Shadow.divergences sh with
  | [ d ] ->
      Alcotest.(check int) "right ea" ea d.Shadow.d_ea;
      Alcotest.(check int) "right vsid"
        (Segment.vsid_for (Mmu.segments mmu) ea)
        d.Shadow.d_vsid;
      Alcotest.(check bool) "fast side answered from the TLB" true
        (d.Shadow.d_fast.Shadow.answered = Shadow.Tlb);
      Alcotest.(check (option int)) "reference has the fresh frame"
        (Some (Addr.pa_of ~rpn:0xBB ~ea))
        d.Shadow.d_reference.Shadow.pa;
      Alcotest.(check bool) "the lost flush is in the context" true
        (List.exists
           (fun f -> f.Shadow.f_ea = ea && f.Shadow.f_what = "flush-page")
           d.Shadow.d_recent_flushes)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 divergence, got %d"
                          (List.length l))

(* --- kernel-level ------------------------------------------------------ *)

(* A small but varied workload: processes, COW forks, exec, mmap/munmap,
   pipes — every flush path the kernel has. *)
let kernel_workload k =
  let text_pages = 8 and data_pages = 8 and stack_pages = 4 in
  let data_base = Mm.user_text_base + (text_pages lsl Addr.page_shift) in
  let store_all () =
    for i = 0 to data_pages - 1 do
      Kernel.touch k Mmu.Store (data_base + (i lsl Addr.page_shift))
    done
  in
  let parent = Kernel.spawn k ~text_pages ~data_pages ~stack_pages () in
  Kernel.switch_to k parent;
  Kernel.user_run k ~instrs:2000;
  store_all ();
  let buf = Kernel.sys_mmap k ~pages:4 ~writable:true in
  for i = 0 to 3 do
    Kernel.touch k Mmu.Store (buf + (i lsl Addr.page_shift))
  done;
  Kernel.sys_munmap k ~ea:buf ~pages:4;
  for _ = 1 to 3 do
    let child = Kernel.sys_fork k in
    store_all ();
    Kernel.switch_to k child;
    Kernel.sys_exec k ~text_pages ~data_pages ~stack_pages;
    Kernel.user_run k ~instrs:500;
    store_all ();
    Kernel.sys_exit k;
    Kernel.switch_to k parent
  done

let kernel_policies =
  [ ("604 optimized", Machine.ppc604_185, Policy.optimized);
    ("604 baseline", Machine.ppc604_185, Policy.baseline);
    ("603 sw-htab", Machine.ppc603_133, Policy.optimized);
    ("603 sw-direct", Machine.ppc603_133, Config.optimized_no_htab);
    ("604 precise", Machine.ppc604_185, Config.optimized_precise_flush) ]

let test_kernel_clean_no_divergence () =
  List.iter
    (fun (name, machine, policy) ->
      let k = Kernel.boot ~machine ~policy ~seed:7 ~shadow:true () in
      kernel_workload k;
      match Kernel.shadow k with
      | None -> Alcotest.fail (name ^ ": shadow requested but absent")
      | Some sh ->
          Alcotest.(check bool)
            (name ^ ": checks performed") true
            (Shadow.checks sh > 0);
          Alcotest.(check int) (name ^ ": no divergence") 0
            (Shadow.total_divergences sh))
    kernel_policies

let test_kernel_shadow_is_free () =
  let run shadow =
    let k =
      Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
        ~seed:7 ~shadow ()
    in
    kernel_workload k;
    perf_signature (Kernel.perf k)
  in
  Alcotest.(check bool) "kernel counters identical with shadow on" true
    (run false = run true)

let test_kernel_injected_bug_is_caught () =
  (* The lazy-flush kernel's precise path: munmap of a small range
     under the cutoff flushes page by page; losing one invalidate
     leaves a stale translation for a freed frame. *)
  let k =
    Kernel.boot ~machine:Machine.ppc604_185
      ~policy:Config.optimized_precise_flush ~seed:7 ~shadow:true ()
  in
  let parent = Kernel.spawn k () in
  Kernel.switch_to k parent;
  Kernel.user_run k ~instrs:1000;
  let buf = Kernel.sys_mmap k ~pages:4 ~writable:true in
  Kernel.touch k Mmu.Store buf;
  Mmu.test_skip_tlb_invalidations := 1;
  Fun.protect
    ~finally:(fun () -> Mmu.test_skip_tlb_invalidations := 0)
    (fun () -> Kernel.sys_munmap k ~ea:buf ~pages:4);
  Kernel.touch k Mmu.Load buf;
  let sh = Option.get (Kernel.shadow k) in
  Alcotest.(check bool) "divergence reported" true
    (Shadow.total_divergences sh > 0);
  match Shadow.divergences sh with
  | d :: _ ->
      Alcotest.(check int) "right ea" buf d.Shadow.d_ea;
      Alcotest.(check bool) "reference faults on the unmapped page" true
        (d.Shadow.d_reference.Shadow.pa = None)
  | [] -> Alcotest.fail "no divergence recorded"

let test_agree_semantics () =
  let ok structure pa =
    { Shadow.pa = Some pa; inhibited = false; answered = structure }
  in
  Alcotest.(check bool) "same pa via different structures agrees" true
    (Shadow.agree (ok Shadow.Tlb 0x1000) (ok Shadow.Page_table 0x1000));
  Alcotest.(check bool) "different pa diverges" false
    (Shadow.agree (ok Shadow.Tlb 0x1000) (ok Shadow.Page_table 0x2000));
  Alcotest.(check bool) "fault vs translation diverges" false
    (Shadow.agree (ok Shadow.Tlb 0x1000)
       { Shadow.pa = None; inhibited = false; answered = Shadow.No_translation });
  Alcotest.(check bool) "both fault agrees" true
    (Shadow.agree
       { Shadow.pa = None; inhibited = false; answered = Shadow.Tlb }
       { Shadow.pa = None; inhibited = false; answered = Shadow.No_translation });
  Alcotest.(check bool) "cache-inhibit mismatch diverges" false
    (Shadow.agree (ok Shadow.Tlb 0x1000)
       { Shadow.pa = Some 0x1000; inhibited = true;
         answered = Shadow.Page_table })

let test_boot_defaults_registry () =
  Shadow.set_boot_defaults ~enabled:true ();
  Fun.protect
    ~finally:(fun () ->
      Shadow.set_boot_defaults ~enabled:false ();
      ignore (Shadow.drain_registered () : Shadow.t list))
    (fun () ->
      Alcotest.(check bool) "default armed" true (Shadow.boot_enabled ());
      let k =
        Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
          ~seed:7 ()
      in
      Alcotest.(check bool) "kernel picked up the default" true
        (Kernel.shadow k <> None);
      let drained = Shadow.drain_registered () in
      Alcotest.(check int) "checker registered for the driver" 1
        (List.length drained);
      Alcotest.(check int) "drain empties the list" 0
        (List.length (Shadow.drain_registered ())))

let suite =
  [ Alcotest.test_case "clean run, all backends" `Quick
      test_clean_run_no_divergence;
    Alcotest.test_case "checking is free (raw MMU)" `Quick
      test_shadow_is_free;
    Alcotest.test_case "probe ignores stale state" `Quick
      test_probe_ignores_stale_state;
    Alcotest.test_case "stale TLB caught with context" `Quick
      test_injected_stale_tlb_is_caught;
    Alcotest.test_case "kernel clean, all policies" `Quick
      test_kernel_clean_no_divergence;
    Alcotest.test_case "checking is free (kernel)" `Quick
      test_kernel_shadow_is_free;
    Alcotest.test_case "kernel stale TLB caught" `Quick
      test_kernel_injected_bug_is_caught;
    Alcotest.test_case "agree semantics" `Quick test_agree_semantics;
    Alcotest.test_case "boot-defaults registry" `Quick
      test_boot_defaults_registry ]
