(* SMP: per-CPU TLBs, shootdowns, deferred lazy resets, work stealing. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Sched = Kernel_sim.Sched
module Mm = Kernel_sim.Mm
module V = Kernel_sim.Vsid_alloc
module Config = Mmu_tricks.Config

let data_base ~text_pages = Mm.user_text_base + (text_pages lsl Addr.page_shift)

(* A fixed little workload used by the identity test below. *)
let drive k =
  let t = Kernel.spawn k ~text_pages:8 ~data_pages:8 ~stack_pages:4 () in
  Kernel.switch_to k t;
  Kernel.user_run k ~instrs:5_000;
  let base = data_base ~text_pages:8 in
  for i = 0 to 7 do
    Kernel.touch k Mmu.Store (base + (i lsl Addr.page_shift))
  done;
  ignore (Kernel.sys_mmap k ~pages:32 ~writable:true);
  Kernel.sys_exec k ~text_pages:8 ~data_pages:8 ~stack_pages:4;
  Kernel.user_run k ~instrs:5_000;
  Kernel.sys_exit k

(* The hard constraint of this PR: a one-CPU SMP boot is not "SMP with
   one CPU", it IS the old kernel — every counter agrees exactly. *)
let test_cpus1_identical () =
  let k1 = Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
      ~seed:11 () in
  let k2 = Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
      ~seed:11 ~cpus:1 () in
  drive k1;
  drive k2;
  List.iter2
    (fun (name, a) (_, b) -> Alcotest.(check int) name a b)
    (Perf.fields (Kernel.perf k1))
    (Perf.fields (Kernel.perf k2))

(* Idle CPUs must pull runnable work instead of spinning: three queues
   drain after one slice, the fourth still holds two long-running tasks
   — one of them must migrate. *)
let test_idle_steal () =
  let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
      ~seed:3 ~cpus:4 () in
  let sched = Sched.create k in
  let short () =
    fun k ->
      Kernel.user_run k ~instrs:200;
      Kernel.sys_exit k;
      Sched.Done
  and long () =
    let n = ref 0 in
    fun k ->
      Kernel.user_run k ~instrs:200;
      incr n;
      if !n >= 50 then begin
        Kernel.sys_exit k;
        Sched.Done
      end
      else Sched.Yield
  in
  (* round-robin enrollment: cpu0 gets tasks 1 and 5 *)
  Sched.add sched (Kernel.spawn k ()) (long ());
  Sched.add sched (Kernel.spawn k ()) (short ());
  Sched.add sched (Kernel.spawn k ()) (short ());
  Sched.add sched (Kernel.spawn k ()) (short ());
  Sched.add sched (Kernel.spawn k ()) (long ());
  Sched.run sched;
  Alcotest.(check int) "all done" 0 (Sched.live sched);
  Alcotest.(check bool) "an idle CPU stole work" true
    ((Kernel.perf k).Perf.work_steals >= 1)

(* Precise flushing across CPUs: an exec on CPU 0 must shoot down the
   sibling thread's warm TLB on CPU 1, and the per-CPU miss counters
   must partition the machine totals. *)
let exec_across_cpus k =
  let text_pages = 8 and data_pages = 8 and stack_pages = 4 in
  let base = data_base ~text_pages in
  let touch_all () =
    for i = 0 to data_pages - 1 do
      Kernel.touch k Mmu.Store (base + (i lsl Addr.page_shift))
    done
  in
  let a = Kernel.spawn k ~text_pages ~data_pages ~stack_pages () in
  Kernel.set_active_cpu k 0;
  Kernel.switch_to k a;
  Kernel.user_run k ~instrs:1_000;
  touch_all ();
  let b = Kernel.spawn_thread k ~peer:a in
  Kernel.set_active_cpu k 1;
  Kernel.switch_to k b;
  Kernel.user_run k ~instrs:1_000;
  touch_all ();
  Kernel.set_active_cpu k 0;
  Kernel.sys_exec k ~text_pages ~data_pages ~stack_pages;
  touch_all ();
  Kernel.set_active_cpu k 1;
  Kernel.user_run k ~instrs:1_000;
  touch_all ()

let test_cross_cpu_shootdowns () =
  let k = Kernel.boot ~machine:Machine.ppc604_185
      ~policy:Config.optimized_precise_flush ~seed:5 ~cpus:2 () in
  exec_across_cpus k;
  let p = Kernel.perf k in
  Alcotest.(check bool) "shootdown rounds issued" true
    (p.Perf.tlb_shootdowns > 0);
  Alcotest.(check bool) "remote TLBs invalidated" true
    (p.Perf.remote_tlb_invalidates > 0);
  (* batched shootdowns (the default): one IPI round covers a whole
     range, so invalidates can outnumber IPIs — but every round sent at
     least one IPI and covered at least one page *)
  Alcotest.(check bool) "every round rode an IPI" true
    (p.Perf.ipis_sent >= p.Perf.tlb_shootdowns);
  Alcotest.(check bool) "rounds cover their pages" true
    (p.Perf.shootdown_batch_pages >= p.Perf.tlb_shootdowns);
  let mmu = Kernel.mmu k in
  Alcotest.(check int) "per-CPU itlb misses partition the total"
    p.Perf.itlb_misses
    (Mmu.cpu_itlb_misses mmu ~cpu:0 + Mmu.cpu_itlb_misses mmu ~cpu:1);
  Alcotest.(check int) "per-CPU dtlb misses partition the total"
    p.Perf.dtlb_misses
    (Mmu.cpu_dtlb_misses mmu ~cpu:0 + Mmu.cpu_dtlb_misses mmu ~cpu:1)

(* The legacy per-page shootdown is still available as a policy knob,
   and batching must strictly reduce IPI traffic on the same workload
   while invalidating the same set of remote translations. *)
let test_shootdown_batching_knob () =
  let run policy =
    let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed:5
        ~cpus:2 () in
    exec_across_cpus k;
    Kernel.perf k
  in
  let batched = run Config.optimized_precise_flush in
  let legacy =
    run { Config.optimized_precise_flush with Policy.shootdown_batch = false }
  in
  (* legacy: a full round per page, so every invalidate rode its own IPI *)
  Alcotest.(check bool) "legacy invalidates each rode an IPI" true
    (legacy.Perf.ipis_sent >= legacy.Perf.remote_tlb_invalidates);
  Alcotest.(check int) "legacy counts no batch pages" 0
    legacy.Perf.shootdown_batch_pages;
  Alcotest.(check bool) "batching sends fewer IPIs" true
    (batched.Perf.ipis_sent < legacy.Perf.ipis_sent);
  Alcotest.(check bool) "batching issues fewer rounds" true
    (batched.Perf.tlb_shootdowns < legacy.Perf.tlb_shootdowns);
  Alcotest.(check bool) "batching costs fewer cycles" true
    (batched.Perf.cycles < legacy.Perf.cycles)

(* The same workload under the shadow checker: clean when shootdowns
   run, divergent when the fault injection skips them — the stale
   remote TLB is observable, not hypothetical. *)
let test_skip_shootdown_caught () =
  let run ~skip =
    Mmu.test_skip_shootdowns := (if skip then -1 else 0);
    Fun.protect
      ~finally:(fun () -> Mmu.test_skip_shootdowns := 0)
      (fun () ->
        let k = Kernel.boot ~machine:Machine.ppc604_185
            ~policy:Config.optimized_precise_flush ~seed:5 ~shadow:true
            ~cpus:2 () in
        exec_across_cpus k;
        match Kernel.shadow k with
        | None -> Alcotest.fail "shadow checker missing"
        | Some s -> Shadow.total_divergences s)
  in
  Alcotest.(check int) "clean run diverges nowhere" 0 (run ~skip:false);
  Alcotest.(check bool) "skipped shootdowns leave stale remote TLBs" true
    (run ~skip:true > 0)

(* Deferred shootdowns: a lazy context reset elides the remote page
   invalidations (VSIDs just die) but must still reload the segment
   registers of a remote CPU running the mm — counted, charged, and
   clean under the shadow checker. *)
let test_lazy_reset_defers () =
  let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
      ~seed:5 ~shadow:true ~cpus:2 () in
  let text_pages = 8 and data_pages = 8 and stack_pages = 4 in
  let base = data_base ~text_pages in
  let a = Kernel.spawn k ~text_pages ~data_pages ~stack_pages () in
  Kernel.set_active_cpu k 0;
  Kernel.switch_to k a;
  Kernel.user_run k ~instrs:1_000;
  let b = Kernel.spawn_thread k ~peer:a in
  Kernel.set_active_cpu k 1;
  Kernel.switch_to k b;
  Kernel.touch k Mmu.Store base;
  (* back on CPU 0: a 32-page mmap is over the 20-page cutoff, so the
     range flush becomes a whole-context VSID reset *)
  Kernel.set_active_cpu k 0;
  ignore (Kernel.sys_mmap k ~pages:32 ~writable:true);
  let p = Kernel.perf k in
  Alcotest.(check bool) "reset took the lazy path" true
    (p.Perf.flush_context_resets >= 1);
  Alcotest.(check bool) "remote invalidations deferred" true
    (p.Perf.shootdowns_deferred >= 1);
  Alcotest.(check bool) "remote CPU got a segment-reload IPI" true
    (p.Perf.ipis_sent >= 1);
  Alcotest.(check int) "no per-page shootdown rounds" 0
    p.Perf.tlb_shootdowns;
  (* CPU 1 keeps running the renewed mm: its old TLB entries are dead
     VSIDs, every touch refaults cleanly *)
  Kernel.set_active_cpu k 1;
  Kernel.touch k Mmu.Store base;
  Kernel.user_run k ~instrs:1_000;
  (match Kernel.shadow k with
  | None -> Alcotest.fail "shadow checker missing"
  | Some s ->
      Alcotest.(check int) "shadow clean" 0 (Shadow.total_divergences s))

(* The wrap escape hatch at the kernel level: push the counter to the
   edge, churn a few processes, and the kernel must count the wrap and
   stay shadow-clean afterwards. *)
let test_kernel_level_wrap () =
  let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
      ~seed:9 ~shadow:true () in
  V.unsafe_set_next (Kernel.vsid_alloc k) (V.ctx_space - 2);
  for _ = 1 to 4 do
    let t = Kernel.spawn k ~text_pages:4 ~data_pages:4 ~stack_pages:2 () in
    Kernel.switch_to k t;
    Kernel.user_run k ~instrs:1_000;
    Kernel.touch k Mmu.Store (data_base ~text_pages:4);
    Kernel.sys_exit k
  done;
  Alcotest.(check bool) "wrap counted" true
    ((Kernel.perf k).Perf.vsid_wraps >= 1);
  (match Kernel.shadow k with
  | None -> Alcotest.fail "shadow checker missing"
  | Some s ->
      Alcotest.(check int) "shadow clean across the wrap" 0
        (Shadow.total_divergences s))

let suite =
  [ Alcotest.test_case "cpus:1 boot is byte-identical" `Quick
      test_cpus1_identical;
    Alcotest.test_case "idle CPUs steal work" `Quick test_idle_steal;
    Alcotest.test_case "cross-CPU exec shoots down" `Quick
      test_cross_cpu_shootdowns;
    Alcotest.test_case "shootdown batching vs per-page knob" `Quick
      test_shootdown_batching_knob;
    Alcotest.test_case "skipped shootdowns caught by shadow" `Quick
      test_skip_shootdown_caught;
    Alcotest.test_case "lazy reset defers shootdowns" `Quick
      test_lazy_reset_defers;
    Alcotest.test_case "kernel-level VSID wrap" `Quick
      test_kernel_level_wrap ]
