(** Kernel policy knobs — one flag per optimization in the paper.

    A policy plus a machine fully determines a simulated system.  The
    unoptimized kernel of the paper's comparisons is {!baseline}; the
    final optimized kernel is {!optimized}; every experiment toggles one
    axis against one of these. *)

(** What the idle task does with free pages (§9). *)
type idle_clearing =
  | Clear_off       (** idle never clears pages *)
  | Clear_cached    (** clear through the data cache (the failed first
                        attempt: pollutes) *)
  | Clear_uncached  (** clear with caching disabled for those pages *)

type t = {
  bat_kernel_mapping : bool;
      (** §5.1: map kernel text/data (and the htab) with a BAT register
          instead of PTEs. *)
  bat_io_mapping : bool;
      (** §5.1: also BAT-map I/O space (measured to not matter). *)
  vsid_source : Vsid_alloc.id_source;
      (** §7: PID-derived VSIDs vs the context counter enabling lazy
          flushes. *)
  vsid_multiplier : int;
      (** §5.2: the scatter constant (1 = naive, 897 = tuned). *)
  fast_reload : bool;
      (** §6.1: hand-optimized assembly miss handlers. *)
  fast_paths : bool;
      (** optimized syscall/switch entry-exit paths (the rest of the
          "Linux/PPC" column of Table 3 vs "Unoptimized"). *)
  use_htab : bool;
      (** §6.2: on 603-style machines, keep using the htab (true) or walk
          the Linux page tables directly (false).  Ignored on 604s. *)
  lazy_flush : bool;
      (** §7: retire VSIDs instead of scrubbing TLB+htab entries. *)
  flush_cutoff : int option;
      (** §7: range flushes above this many pages become whole-context
          VSID resets (requires [lazy_flush]); [None] = always precise.
          The paper settled on 20 pages. *)
  idle_zombie_reclaim : bool;
      (** §7: idle task scans the htab invalidating zombie PTEs. *)
  reclaim_interval : int;
      (** §7: run a reclaim scan every this-many idle slices (the paper's
          cadence is every 16th slice). *)
  reclaim_chunk : int;
      (** §7: htab slots examined per reclaim scan (64). *)
  idle_clearing : idle_clearing;
  idle_clear_list : bool;
      (** §9: hand idle-cleared pages to [get_free_page] via the
          pre-zeroed list. *)
  prezero_list_limit : int;
      (** §9: cap on the pre-zeroed list depth — idle stops clearing once
          this many pages are banked (64). *)
  cache_inhibit_pagetables : bool;
      (** §8: keep page-table and htab references out of the data
          cache. *)
  bat_framebuffer : bool;
      (** §5.1's proposal: give the frame-buffer mapping its own data BAT,
          switched per process at context-switch time, so an X server
          stops competing for TLB entries. *)
  idle_cache_lock : bool;
      (** §10.1 (future work): lock both caches while the idle task runs,
          so idle work cannot displace anyone's working set. *)
  cache_preload : bool;
      (** §10.2 (future work): issue prefetch hints for the incoming
          task's hot kernel data during a context switch. *)
  htab_replacement : [ `Arbitrary | `Second_chance | `Zombie_aware ];
      (** ablations around §7's replacement discussion: the paper's
          arbitrary victim, R-bit second chance, or the rejected design
          that checks VSID liveness during the reload itself. *)
  tlb_replacement : Ppc.Tlb.replacement;
      (** TLB victim selection: {!Ppc.Tlb.Lru} is the 603/604 hardware;
          FIFO and random are ablations for the tuner. *)
  shootdown_batch : bool;
      (** SMP: batch a precise range flush's cross-CPU shootdowns into
          one IPI round per remote CPU (true) versus the legacy round
          per page (false).  No effect at one CPU. *)
}

val baseline : t
(** The original unoptimized Linux/PPC kernel: PTE-mapped kernel, naive
    PID VSIDs, C handlers, htab in use, precise flushes, idle task does
    nothing. *)

val optimized : t
(** The final kernel: BAT-mapped kernel, scattered counter VSIDs, fast
    handlers and paths, lazy flushing with the 20-page cutoff, idle
    zombie reclaim, uncached idle page clearing feeding the pre-zeroed
    list.  ([use_htab] stays [true]; the 603-specific §6.2 configuration
    sets it to [false] explicitly.) *)

val flush_cutoff_pages : int
(** 20 — the tuned cutoff. *)

val reclaim_interval_slices : int
(** 16 — reclaim every 16th idle slice. *)

val reclaim_chunk_ptes : int
(** 64 — htab slots per reclaim scan. *)

val prezero_list_pages : int
(** 64 — pre-zeroed list depth cap. *)

val mmu_knobs : t -> Ppc.Mmu.knobs
(** The subset of the policy the MMU consumes. *)

val describe : t -> string
(** Short human-readable flag summary. *)
