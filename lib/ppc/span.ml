(* Request-level spans: per-request lifecycles and critical-path cost.

   Where Trace records a stream of events and Profile maintains running
   attributions, this layer follows individual *requests* through a
   server-shaped workload: arrival, the syscalls they issue, the run
   slices they consume, and every TLB-miss reload / htab miss / context
   switch serviced on their behalf — yielding a per-request cost
   breakdown plus per-class and overall latency histograms.

   Everything here is observation only: recording never costs cycles,
   touches the caches, or draws from an RNG, so a span-recorded run and
   a bare run of the same seed produce byte-identical Perf counts.  The
   disabled path is one flag check per instrumented site and allocates
   nothing; request storage is preallocated in growable parallel int
   arrays (SoA, like the Trace ring). *)

type t = {
  perf : Perf.t;  (* cycle source for stamps; never written *)
  mutable enabled : bool;
  mutable label : string;  (* which configuration this recorder watched *)
  (* per-request storage: parallel arrays indexed by request id *)
  mutable n : int;  (* requests ever begun *)
  mutable r_cls : int array;
  mutable r_arrival : int array;
  mutable r_finish : int array;  (* -1 while in flight *)
  mutable r_syscalls : int array;
  mutable r_syscall_cost : int array;
  mutable r_reloads : int array;
  mutable r_reload_cost : int array;
  mutable r_htab_misses : int array;
  mutable r_htab_cost : int array;
  mutable r_ctxsw : int array;
  mutable r_ctxsw_cost : int array;
  mutable r_run_cost : int array;
  (* request classes (service model x request kind), set by the workload *)
  mutable class_names : string array;
  mutable class_hists : Hist.t array;
  hist_latency : Hist.t;  (* completion latency across all classes *)
  (* live bindings *)
  mutable cur_req : int;  (* request the running code serves; -1 = none *)
  mutable pid_req : int array;  (* pid -> request id + 1 (0 = unbound) *)
  mutable sys_depth : int;
  mutable sys_start : int;
  mutable completed : int;
}

let initial_requests = 1024

let create_plain ~perf =
  { perf;
    enabled = false;
    label = "";
    n = 0;
    r_cls = [||];
    r_arrival = [||];
    r_finish = [||];
    r_syscalls = [||];
    r_syscall_cost = [||];
    r_reloads = [||];
    r_reload_cost = [||];
    r_htab_misses = [||];
    r_htab_cost = [||];
    r_ctxsw = [||];
    r_ctxsw_cost = [||];
    r_run_cost = [||];
    class_names = [||];
    class_hists = [||];
    hist_latency = Hist.create ();
    cur_req = -1;
    pid_req = [||];
    sys_depth = 0;
    sys_start = 0;
    completed = 0 }

(* --- lifecycle -------------------------------------------------------- *)

let enable ?(requests = initial_requests) t =
  let requests = max 1 requests in
  t.r_cls <- Array.make requests 0;
  t.r_arrival <- Array.make requests 0;
  t.r_finish <- Array.make requests (-1);
  t.r_syscalls <- Array.make requests 0;
  t.r_syscall_cost <- Array.make requests 0;
  t.r_reloads <- Array.make requests 0;
  t.r_reload_cost <- Array.make requests 0;
  t.r_htab_misses <- Array.make requests 0;
  t.r_htab_cost <- Array.make requests 0;
  t.r_ctxsw <- Array.make requests 0;
  t.r_ctxsw_cost <- Array.make requests 0;
  t.r_run_cost <- Array.make requests 0;
  t.pid_req <- Array.make 64 0;
  t.n <- 0;
  t.completed <- 0;
  t.cur_req <- -1;
  t.enabled <- true

let disable t = t.enabled <- false
let enabled t = t.enabled

let set_label t label = t.label <- label
let label t = t.label

(* --- process-wide boot defaults -------------------------------------- *)

(* Drivers that cannot reach the kernels being booted (the experiment
   registry boots its own) arm these; every recorder created afterwards
   starts enabled and registers itself for later collection — the same
   discipline as Trace, Profile and Shadow. *)
let boot_defaults : int option ref = ref None
let registered_rev : t list ref = ref []

let set_boot_defaults ?(requests = initial_requests) ~enabled () =
  boot_defaults := (if enabled then Some requests else None)

let boot_enabled () = !boot_defaults <> None

let drain_registered () =
  let l = List.rev !registered_rev in
  registered_rev := [];
  l

let create ~perf =
  let t = create_plain ~perf in
  (match !boot_defaults with
  | None -> ()
  | Some requests ->
      enable ~requests t;
      registered_rev := t :: !registered_rev);
  t

(* --- request classes -------------------------------------------------- *)

let set_classes t names =
  t.class_names <- Array.copy names;
  t.class_hists <- Array.init (Array.length names) (fun _ -> Hist.create ())

let class_names t = t.class_names

let class_hist t cls =
  if cls >= 0 && cls < Array.length t.class_hists then
    Some t.class_hists.(cls)
  else None

(* --- storage growth --------------------------------------------------- *)

let grow a fill =
  let n = Array.length a in
  let b = Array.make (max 16 (2 * n)) fill in
  Array.blit a 0 b 0 n;
  b

let ensure_request_room t =
  if t.n >= Array.length t.r_cls then begin
    t.r_cls <- grow t.r_cls 0;
    t.r_arrival <- grow t.r_arrival 0;
    t.r_finish <- grow t.r_finish (-1);
    t.r_syscalls <- grow t.r_syscalls 0;
    t.r_syscall_cost <- grow t.r_syscall_cost 0;
    t.r_reloads <- grow t.r_reloads 0;
    t.r_reload_cost <- grow t.r_reload_cost 0;
    t.r_htab_misses <- grow t.r_htab_misses 0;
    t.r_htab_cost <- grow t.r_htab_cost 0;
    t.r_ctxsw <- grow t.r_ctxsw 0;
    t.r_ctxsw_cost <- grow t.r_ctxsw_cost 0;
    t.r_run_cost <- grow t.r_run_cost 0
  end

(* --- request lifecycle (workload-driven) ------------------------------ *)

let request_begin t ~cls ~arrival =
  if not t.enabled then -1
  else begin
    ensure_request_room t;
    let rid = t.n in
    t.n <- rid + 1;
    t.r_cls.(rid) <- cls;
    t.r_arrival.(rid) <- arrival;
    t.r_finish.(rid) <- -1;
    rid
  end

let request_end t rid =
  if t.enabled && rid >= 0 && rid < t.n && t.r_finish.(rid) < 0 then begin
    let now = t.perf.Perf.cycles in
    t.r_finish.(rid) <- now;
    t.completed <- t.completed + 1;
    let latency = now - t.r_arrival.(rid) in
    Hist.observe t.hist_latency latency;
    (match class_hist t t.r_cls.(rid) with
    | Some h -> Hist.observe h latency
    | None -> ());
    if t.cur_req = rid then t.cur_req <- -1
  end

let bind_pid t ~pid ~rid =
  if t.enabled && pid >= 0 then begin
    if pid >= Array.length t.pid_req then t.pid_req <- grow t.pid_req 0;
    t.pid_req.(pid) <- rid + 1
  end

let set_current_request t rid = if t.enabled then t.cur_req <- rid
let current_request t = t.cur_req

(* --- attribution hooks (kernel/MMU-driven; guarded on [enabled]) ------ *)

let note_context_switch t ~pid ~cost =
  if t.enabled then begin
    let rid =
      if pid >= 0 && pid < Array.length t.pid_req then t.pid_req.(pid) - 1
      else -1
    in
    t.cur_req <- rid;
    if rid >= 0 && rid < t.n then begin
      t.r_ctxsw.(rid) <- t.r_ctxsw.(rid) + 1;
      t.r_ctxsw_cost.(rid) <- t.r_ctxsw_cost.(rid) + cost
    end
  end

let syscall_begin t =
  if t.enabled && t.cur_req >= 0 then begin
    t.sys_depth <- t.sys_depth + 1;
    if t.sys_depth = 1 then begin
      t.sys_start <- t.perf.Perf.cycles;
      let rid = t.cur_req in
      t.r_syscalls.(rid) <- t.r_syscalls.(rid) + 1
    end
  end

let syscall_end t =
  if t.enabled && t.cur_req >= 0 && t.sys_depth > 0 then begin
    t.sys_depth <- t.sys_depth - 1;
    if t.sys_depth = 0 then begin
      let rid = t.cur_req in
      t.r_syscall_cost.(rid) <-
        t.r_syscall_cost.(rid) + (t.perf.Perf.cycles - t.sys_start)
    end
  end

let charge_reload t ~cost ~htab_missed =
  if t.enabled && t.cur_req >= 0 then begin
    let rid = t.cur_req in
    t.r_reloads.(rid) <- t.r_reloads.(rid) + 1;
    t.r_reload_cost.(rid) <- t.r_reload_cost.(rid) + cost;
    if htab_missed then begin
      t.r_htab_misses.(rid) <- t.r_htab_misses.(rid) + 1;
      t.r_htab_cost.(rid) <- t.r_htab_cost.(rid) + cost
    end
  end

let note_run t ~cost =
  if t.enabled && t.cur_req >= 0 then
    t.r_run_cost.(t.cur_req) <- t.r_run_cost.(t.cur_req) + cost

(* --- inspection ------------------------------------------------------- *)

type request = {
  q_rid : int;
  q_cls : int;
  q_arrival : int;
  q_finish : int;  (* -1 while in flight *)
  q_latency : int;  (* finish - arrival; -1 while in flight *)
  q_syscalls : int;
  q_syscall_cost : int;
  q_reloads : int;
  q_reload_cost : int;
  q_htab_misses : int;
  q_htab_cost : int;
  q_ctxsw : int;
  q_ctxsw_cost : int;
  q_run_cost : int;
}

let requests t = t.n
let completed t = t.completed
let hist_latency t = t.hist_latency

let request t rid =
  if rid < 0 || rid >= t.n then invalid_arg "Span.request: no such request";
  { q_rid = rid;
    q_cls = t.r_cls.(rid);
    q_arrival = t.r_arrival.(rid);
    q_finish = t.r_finish.(rid);
    q_latency =
      (if t.r_finish.(rid) < 0 then -1
       else t.r_finish.(rid) - t.r_arrival.(rid));
    q_syscalls = t.r_syscalls.(rid);
    q_syscall_cost = t.r_syscall_cost.(rid);
    q_reloads = t.r_reloads.(rid);
    q_reload_cost = t.r_reload_cost.(rid);
    q_htab_misses = t.r_htab_misses.(rid);
    q_htab_cost = t.r_htab_cost.(rid);
    q_ctxsw = t.r_ctxsw.(rid);
    q_ctxsw_cost = t.r_ctxsw_cost.(rid);
    q_run_cost = t.r_run_cost.(rid) }

let class_name t cls =
  if cls >= 0 && cls < Array.length t.class_names then t.class_names.(cls)
  else Printf.sprintf "class_%d" cls

let iter t f =
  for rid = 0 to t.n - 1 do
    f (request t rid)
  done

(* The [top] slowest completed requests, highest latency first; request
   id breaks ties so the order is deterministic. *)
let slowest t ~top =
  let out = ref [] in
  iter t (fun q -> if q.q_latency >= 0 then out := q :: !out);
  let sorted =
    List.sort
      (fun a b ->
        match compare b.q_latency a.q_latency with
        | 0 -> compare a.q_rid b.q_rid
        | c -> c)
      !out
  in
  List.filteri (fun i _ -> i < top) sorted

(* Component totals across every request, for whole-run breakdowns. *)
type totals = {
  t_syscalls : int;
  t_syscall_cost : int;
  t_reloads : int;
  t_reload_cost : int;
  t_htab_misses : int;
  t_htab_cost : int;
  t_ctxsw : int;
  t_ctxsw_cost : int;
  t_run_cost : int;
}

let totals t =
  let z =
    ref
      { t_syscalls = 0; t_syscall_cost = 0; t_reloads = 0; t_reload_cost = 0;
        t_htab_misses = 0; t_htab_cost = 0; t_ctxsw = 0; t_ctxsw_cost = 0;
        t_run_cost = 0 }
  in
  iter t (fun q ->
      let a = !z in
      z :=
        { t_syscalls = a.t_syscalls + q.q_syscalls;
          t_syscall_cost = a.t_syscall_cost + q.q_syscall_cost;
          t_reloads = a.t_reloads + q.q_reloads;
          t_reload_cost = a.t_reload_cost + q.q_reload_cost;
          t_htab_misses = a.t_htab_misses + q.q_htab_misses;
          t_htab_cost = a.t_htab_cost + q.q_htab_cost;
          t_ctxsw = a.t_ctxsw + q.q_ctxsw;
          t_ctxsw_cost = a.t_ctxsw_cost + q.q_ctxsw_cost;
          t_run_cost = a.t_run_cost + q.q_run_cost });
  !z
