lib/workloads/xserver.ml: Addr Array Cost Kernel_sim Machine Measure Mmu Perf Ppc Rng
