lib/kernel_sim/policy.mli: Ppc Vsid_alloc
