type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------ emitter *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must survive a round trip; %.17g is exact for doubles but
   ugly, so take the shortest of %.12g/%.17g that reparses equal.
   JSON has no NaN or infinity tokens, so all three become null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(compact = false) v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl depth = if not compact then (Buffer.add_char buf '\n'; pad depth) in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (depth + 1);
            emit (depth + 1) item)
          items;
        nl depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if compact then ":" else ": ");
            emit (depth + 1) item)
          fields;
        nl depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------- parser *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then (pos := !pos + String.length word; v)
    else fail ("expected " ^ word)
  in
  let utf8_encode buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  (* Strictly the 4 hex digits: int_of_string on "0x…" would also accept
     OCaml's underscores and signs, which are not JSON. *)
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = ref 0 in
    for k = 0 to 3 do
      let d =
        match s.[!pos + k] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      h := (!h lsl 4) lor d
    done;
    pos := !pos + 4;
    !h
  in
  (* A \u escape, possibly the high half of a UTF-16 surrogate pair:
     combine pairs into one code point (4-byte UTF-8), reject unpaired
     halves rather than emit CESU-8/invalid UTF-8. *)
  let parse_unicode_escape buf =
    let cp = parse_hex4 () in
    if cp >= 0xD800 && cp <= 0xDBFF then begin
      if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
        pos := !pos + 2;
        let lo = parse_hex4 () in
        if lo >= 0xDC00 && lo <= 0xDFFF then
          utf8_encode buf
            (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
        else fail "unpaired high surrogate in \\u escape"
      end
      else fail "unpaired high surrogate in \\u escape"
    end
    else if cp >= 0xDC00 && cp <= 0xDFFF then
      fail "unpaired low surrogate in \\u escape"
    else utf8_encode buf cp
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           (match s.[!pos] with
           | '"' -> advance (); Buffer.add_char buf '"'
           | '\\' -> advance (); Buffer.add_char buf '\\'
           | '/' -> advance (); Buffer.add_char buf '/'
           | 'n' -> advance (); Buffer.add_char buf '\n'
           | 'r' -> advance (); Buffer.add_char buf '\r'
           | 't' -> advance (); Buffer.add_char buf '\t'
           | 'b' -> advance (); Buffer.add_char buf '\b'
           | 'f' -> advance (); Buffer.add_char buf '\012'
           | 'u' -> advance (); parse_unicode_escape buf
           | c -> fail (Printf.sprintf "bad escape \\%C" c)));
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control char in string"
      | c -> advance (); Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  (* The RFC 8259 number grammar: an optional minus, "0" or a non-zero
     digit run, an optional ".digits" fraction, an optional exponent.
     OCaml's conversion functions are laxer (leading '+', lone '-',
     leading-zero ints, hex), so validate the token before converting. *)
  let valid_number tok =
    let len = String.length tok in
    let i = ref 0 in
    let digit c = c >= '0' && c <= '9' in
    let digits () =
      let start = !i in
      while !i < len && digit tok.[!i] do incr i done;
      !i > start
    in
    let ok = ref true in
    if !i < len && tok.[!i] = '-' then incr i;
    (if !i >= len then ok := false
     else if tok.[!i] = '0' then incr i
     else if not (digits ()) then ok := false);
    if !ok && !i < len && tok.[!i] = '.' then begin
      incr i;
      if not (digits ()) then ok := false
    end;
    if !ok && !i < len && (tok.[!i] = 'e' || tok.[!i] = 'E') then begin
      incr i;
      if !i < len && (tok.[!i] = '+' || tok.[!i] = '-') then incr i;
      if not (digits ()) then ok := false
    end;
    !ok && !i = len
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    if not (valid_number tok) then fail ("bad number " ^ tok);
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (f :: acc)
            | Some '}' -> advance (); Obj (List.rev (f :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ---------------------------------------------------------- accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
