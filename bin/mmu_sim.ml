(* mmu_sim: command-line driver for the simulator.

   Subcommands:
     lmbench    run the LmBench-style suite on a machine/policy
     kbuild     run the synthetic kernel compile and dump counters
     table3     run the Table 3 OS comparison
     trace      run a workload with event tracing, emit Chrome trace JSON
     experiment run reproduction experiments (parallel, table/CSV/JSON)
     check      rerun experiments against a committed baseline
     policies   list the named policy presets
     machines   list the machine descriptions *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Config = Mmu_tricks.Config
module Metrics = Mmu_tricks.Metrics
module Report = Mmu_tricks.Report
module System = Mmu_tricks.System
module Os_model = Mmu_tricks.Os_model
module Lmbench = Workloads.Lmbench
module Kbuild = Workloads.Kbuild
module Experiments = Mmu_tricks.Experiments
module Runner = Mmu_tricks.Runner
module Baseline = Mmu_tricks.Baseline
module Json = Mmu_tricks.Json
module Trace_export = Mmu_tricks.Trace

(* The CLI enumeration is generated from the machine table: adding a
   machine to [Machine.all] makes it selectable (and documented) here
   with no further edits. *)
let machines = List.map (fun m -> (Machine.slug m, m)) Machine.all

(* --- cmdliner terms --------------------------------------------------- *)

open Cmdliner

let machine_term =
  Arg.(
    value
    & opt (enum machines) Machine.ppc604_185
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:
          ("Machine model: "
          ^ String.concat ", " (List.map fst machines)
          ^ "."))

let policy_term =
  Arg.(
    value
    & opt (enum Config.all_named) Policy.optimized
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:"Named policy preset (see $(b,mmu_sim policies)).")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* --- subcommands ------------------------------------------------------- *)

let lmbench machine policy seed =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let s = Lmbench.run ~machine ~policy ~seed () in
  Report.table
    ~header:[ "benchmark"; "value" ]
    ~rows:
      [ [ "null syscall (us)"; Report.fmt_us s.Lmbench.null_us ];
        [ "context switch 2p (us)"; Report.fmt_us s.Lmbench.ctxsw2_us ];
        [ "context switch 8p (us)"; Report.fmt_us s.Lmbench.ctxsw8_us ];
        [ "pipe latency (us)"; Report.fmt_us s.Lmbench.pipe_lat_us ];
        [ "pipe bandwidth (MB/s)"; Report.fmt_mbs s.Lmbench.pipe_bw_mbs ];
        [ "file reread (MB/s)"; Report.fmt_mbs s.Lmbench.file_reread_mbs ];
        [ "mmap latency (us)"; Report.fmt_us s.Lmbench.mmap_lat_us ];
        [ "process start (ms)"; Report.fmt_ms s.Lmbench.pstart_ms ] ]

let kbuild machine policy seed jobs =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let params = { Kbuild.default_params with Kbuild.jobs } in
  let r = Kbuild.measure ~machine ~policy ~params ~seed () in
  let p = r.Kbuild.perf in
  Report.table
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "wall clock (ms)"; Report.fmt_ms (r.Kbuild.wall_us /. 1000.) ];
        [ "busy (ms)"; Report.fmt_ms (r.Kbuild.busy_us /. 1000.) ];
        [ "idle fraction"; Report.fmt_pct (100. *. Metrics.idle_fraction p) ];
        [ "TLB misses"; Report.fmt_int (Perf.tlb_misses p) ];
        [ "TLB miss rate"; Printf.sprintf "%.4f%%" (100. *. Metrics.tlb_miss_rate p) ];
        [ "htab hit rate"; Report.fmt_pct (100. *. Metrics.htab_hit_rate p) ];
        [ "htab evict ratio"; Report.fmt_pct (100. *. Metrics.evict_ratio p) ];
        [ "cache misses (I+D)"; Report.fmt_int (Perf.cache_misses p) ];
        [ "page faults"; Report.fmt_int p.Perf.page_faults ];
        [ "context switches"; Report.fmt_int p.Perf.context_switches ];
        [ "syscalls"; Report.fmt_int p.Perf.syscalls ];
        [ "zombies reclaimed"; Report.fmt_int p.Perf.zombies_reclaimed ];
        [ "pre-zeroed page hits"; Report.fmt_int p.Perf.prezeroed_hits ] ]

let multiuser machine policy seed rounds =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let module Mu = Workloads.Multiuser in
  let params = { Mu.default_params with Mu.rounds } in
  let r = Mu.measure ~machine ~policy ~params ~seed () in
  Report.table
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "busy (ms)"; Report.fmt_ms (r.Mu.busy_us /. 1000.) ];
        [ "wall (ms)"; Report.fmt_ms (r.Mu.wall_us /. 1000.) ];
        [ "keystroke latency (us)"; Report.fmt_us r.Mu.keystroke_us ];
        [ "utility start (us)"; Report.fmt_us r.Mu.utility_us ];
        [ "TLB misses"; Report.fmt_int (Perf.tlb_misses r.Mu.perf) ];
        [ "htab hit rate";
          Report.fmt_pct (100. *. Metrics.htab_hit_rate r.Mu.perf) ] ]

let xserver machine policy seed =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let module X = Workloads.Xserver in
  let r = X.measure ~machine ~policy ~seed () in
  Report.table
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "us per request"; Report.fmt_us r.X.us_per_round ];
        [ "TLB misses"; Report.fmt_int (Perf.tlb_misses r.X.perf) ];
        [ "page faults"; Report.fmt_int r.X.perf.Perf.page_faults ];
        [ "cache misses"; Report.fmt_int (Perf.cache_misses r.X.perf) ] ]

let table3 seed =
  let rows =
    List.map
      (fun p ->
        let m =
          Os_model.measure_row ~machine:Os_model.table3_machine p ~seed ()
        in
        let pr = Os_model.paper_row p in
        [ m.Os_model.r_name;
          Printf.sprintf "%s/%s" (Report.fmt_us m.Os_model.null_us)
            (Report.fmt_us pr.Os_model.null_us);
          Printf.sprintf "%s/%s" (Report.fmt_us m.Os_model.ctxsw_us)
            (Report.fmt_us pr.Os_model.ctxsw_us);
          Printf.sprintf "%s/%s" (Report.fmt_us m.Os_model.pipe_lat_us)
            (Report.fmt_us pr.Os_model.pipe_lat_us);
          Printf.sprintf "%s/%s" (Report.fmt_mbs m.Os_model.pipe_bw_mbs)
            (Report.fmt_mbs pr.Os_model.pipe_bw_mbs) ])
      Os_model.all
  in
  Report.table
    ~header:
      [ "OS (measured/paper)"; "null us"; "ctxsw us"; "pipe lat us";
        "pipe bw MB/s" ]
    ~rows

(* --- the trace subcommand --------------------------------------------- *)

let trace_workloads = [ ("kbuild", `Kbuild); ("multiuser", `Multiuser); ("xserver", `Xserver) ]

let trace_run machine policy seed workload out sample_every ring summarize =
  let k = Kernel.boot ~machine ~policy ~seed () in
  let tr = Kernel.trace k in
  Trace.enable ~ring tr;
  if sample_every > 0 then Trace.set_sampling tr ~every:sample_every;
  let wname =
    match workload with
    | `Kbuild ->
        Kbuild.run k ~params:Kbuild.default_params;
        "kbuild"
    | `Multiuser ->
        let module Mu = Workloads.Multiuser in
        ignore (Mu.run k ~params:Mu.default_params : float * float);
        "multiuser"
    | `Xserver ->
        let module X = Workloads.Xserver in
        X.run k ~params:X.default_params;
        "xserver"
  in
  let doc =
    Trace_export.to_chrome ~mhz:machine.Machine.mhz
      ~name:("mmu_sim " ^ wname) tr
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Json.to_string ~compact:true doc ^ "\n"));
  Printf.printf
    "%s: %d events (%d retained, %d dropped), %d timeline samples -> %s\n"
    wname (Trace.total tr) (Trace.length tr) (Trace.dropped tr)
    (List.length (Trace.samples tr))
    out;
  if summarize then print_string (Trace_export.summary tr)

(* --- experiment runs --------------------------------------------------- *)

let experiment names seed jobs timeout retries strict shadow csv json out
    traced timeline sample_every =
  let tracing = traced || timeline in
  if out <> None && not (csv || json) then
    Error (`Msg "--out requires --json or --csv")
  else if tracing && not json then
    Error (`Msg "--trace/--timeline require --json (the observability data \
                 is embedded in the results document)")
  else begin
    let specs =
      if names = [] then Experiments.registry
      else
        (* names were validated by the id converter, so find succeeds *)
        List.filter_map Experiments.find names
    in
    let selected =
      List.map (fun s -> (s.Experiments.id, s.Experiments.run)) specs
    in
    let results, observability, shadow_checks =
      if not (tracing || shadow) then
        (Runner.run ~jobs ~seed ~timeout ~retries selected, [], [])
      else begin
        (* Experiments boot their own kernels, unreachable from here:
           arm tracing/shadow checking process-wide and collect per
           experiment.  Forked workers would strand their traces and
           checkers in the child, so these runs are serial — results
           are byte-identical either way. *)
        if tracing then
          Trace.set_boot_defaults
            ~sample_every:(if timeline then sample_every else 0)
            ~enabled:true ();
        if shadow then Shadow.set_boot_defaults ~enabled:true ();
        let acc =
          List.map
            (fun (id, f) ->
              let r =
                List.hd (Runner.run ~jobs:1 ~seed ~timeout ~retries [ (id, f) ])
              in
              let traces =
                if tracing then Trace.drain_registered () else []
              in
              let checkers = Shadow.drain_registered () in
              (r, (id, Trace_export.observability_json traces), (id, checkers)))
            selected
        in
        Trace.set_boot_defaults ~enabled:false ();
        ignore (Trace.drain_registered () : Trace.t list);
        Shadow.set_boot_defaults ~enabled:false ();
        ignore (Shadow.drain_registered () : Shadow.t list);
        ( List.map (fun (r, _, _) -> r) acc,
          (if tracing then List.map (fun (_, o, _) -> o) acc else []),
          (if shadow then List.map (fun (_, _, s) -> s) acc else []) )
      end
    in
    (* Shadow verdict: totals to stderr (stdout stays a clean document),
       full per-divergence reports, and a hard failure if the fast path
       ever disagreed with the reference MMU. *)
    let divergent =
      List.filter_map
        (fun (id, checkers) ->
          let n =
            List.fold_left
              (fun a c -> a + Shadow.total_divergences c)
              0 checkers
          in
          if n > 0 then Some (id, n, checkers) else None)
        shadow_checks
    in
    if shadow then begin
      let checks =
        List.fold_left
          (fun a (_, checkers) ->
            List.fold_left (fun a c -> a + Shadow.checks c) a checkers)
          0 shadow_checks
      in
      let total =
        List.fold_left (fun a (_, n, _) -> a + n) 0 divergent
      in
      Printf.eprintf
        "shadow: %d translations cross-checked over %d experiment(s), %d \
         divergence(s)\n"
        checks
        (List.length shadow_checks)
        total;
      List.iter
        (fun (id, n, checkers) ->
          Printf.eprintf "shadow: experiment %s: %d divergence(s)\n" id n;
          List.iter
            (fun c ->
              List.iter
                (fun d -> prerr_string ("  " ^ Shadow.report d))
                (Shadow.divergences c))
            checkers)
        divergent;
      flush stderr
    end;
    let tables =
      List.filter_map
        (fun (id, o) ->
          Option.map (fun t -> (id, t)) (Runner.table_of_outcome o))
        results
    in
    (* hard failures never produced a table; degraded ones did, but only
       after the supervisor intervened (retries) *)
    let hard =
      List.filter (fun (_, o) -> Runner.table_of_outcome o = None) results
    in
    let degraded =
      List.filter
        (fun (_, o) ->
          match o with
          | Runner.Retried _ -> Runner.table_of_outcome o <> None
          | _ -> false)
        results
    in
    let failures =
      List.map (fun (id, o) -> (id, Runner.describe o)) hard
    in
    let emit oc =
      if json then
        output_string oc
          (Json.to_string
             (Baseline.doc_to_json ~observability ~failures ~seed tables)
          ^ "\n")
      else if csv then
        List.iter
          (fun (_, t) -> output_string oc (Experiments.to_csv t ^ "\n"))
          tables
    in
    (match out with
    | Some path -> Out_channel.with_open_text path emit
    | None ->
        if csv || json then emit stdout
        else List.iter (fun (_, t) -> Experiments.print t) tables);
    (* the failure table goes to stderr so --json/--csv stdout stays a
       clean document *)
    let unclean = hard @ degraded in
    if unclean <> [] then begin
      Printf.eprintf "\n%d of %d experiment(s) did not complete cleanly:\n"
        (List.length unclean) (List.length results);
      Printf.eprintf "  %-6s %s\n" "id" "status";
      List.iter
        (fun (id, o) -> Printf.eprintf "  %-6s %s\n" id (Runner.describe o))
        unclean;
      flush stderr
    end;
    if hard <> [] then
      Error
        (`Msg
          (String.concat "; "
             (List.map
                (fun (id, o) -> id ^ ": " ^ Runner.describe o)
                hard)))
    else if divergent <> [] then
      Error
        (`Msg
          (Printf.sprintf
             "shadow: fast path diverged from the reference MMU in %s \
              (reports above)"
             (String.concat ", "
                (List.map (fun (id, _, _) -> id) divergent))))
    else if strict && degraded <> [] then
      Error
        (`Msg
          (Printf.sprintf
             "--strict: %d experiment(s) needed supervision (see table above)"
             (List.length degraded)))
    else Ok ()
  end

let check baseline_file jobs timeout retries tolerance shadow =
  match Baseline.load baseline_file with
  | Error msg -> Error (`Msg msg)
  | Ok doc ->
      let seed = doc.Baseline.d_seed in
      let known, unknown =
        List.partition
          (fun (id, _) -> Experiments.find id <> None)
          doc.Baseline.d_entries
      in
      let selected =
        List.map
          (fun (id, _) ->
            (id, (Option.get (Experiments.find id)).Experiments.run))
          known
      in
      (* shadow checkers live in the booting process: force serial *)
      let jobs = if shadow then 1 else jobs in
      Printf.printf "checking %d experiments against %s (seed %d, %d jobs%s)\n\n"
        (List.length selected) baseline_file seed jobs
        (if shadow then ", shadow-checked" else "");
      flush stdout;
      if shadow then Shadow.set_boot_defaults ~enabled:true ();
      let results = Runner.run ~jobs ~seed ~timeout ~retries selected in
      let checkers =
        if shadow then begin
          Shadow.set_boot_defaults ~enabled:false ();
          Shadow.drain_registered ()
        end
        else []
      in
      let shadow_divergences =
        List.fold_left (fun a c -> a + Shadow.total_divergences c) 0 checkers
      in
      if shadow then begin
        Printf.printf "shadow: %d translations cross-checked, %d divergence(s)\n\n"
          (List.fold_left (fun a c -> a + Shadow.checks c) 0 checkers)
          shadow_divergences;
        List.iter
          (fun c ->
            List.iter
              (fun d -> print_string ("  " ^ Shadow.report d))
              (Shadow.divergences c))
          checkers;
        flush stdout
      end;
      let checks =
        List.map2
          (fun (id, btable) (_, outcome) ->
            let tol = Baseline.tolerance_for ~default:tolerance doc id in
            match Runner.table_of_outcome outcome with
            | Some t ->
                ( Baseline.check_table ~id ~tol ~baseline:btable ~current:t,
                  tol )
            | None ->
                ( { Baseline.c_id = id; c_ok = false; c_numbers = 0;
                    c_max_rel = 0.0; c_detail = Some (Runner.describe outcome) },
                  tol ))
          known results
        @ List.map
            (fun (id, _) ->
              ( { Baseline.c_id = id; c_ok = false; c_numbers = 0;
                  c_max_rel = 0.0;
                  c_detail = Some "baseline names an unknown experiment" },
                tolerance ))
            unknown
      in
      Report.table
        ~header:[ "experiment"; "status"; "numbers"; "max rel dev"; "tolerance" ]
        ~rows:
          (List.map
             (fun (c, tol) ->
               [ c.Baseline.c_id;
                 (if c.Baseline.c_ok then "pass" else "FAIL");
                 string_of_int c.Baseline.c_numbers;
                 Printf.sprintf "%.5f" c.Baseline.c_max_rel;
                 Printf.sprintf "%.3f" tol ])
             checks);
      let bad = List.filter (fun (c, _) -> not c.Baseline.c_ok) checks in
      List.iter
        (fun (c, _) ->
          match c.Baseline.c_detail with
          | Some d -> Printf.printf "  %s: %s\n" c.Baseline.c_id d
          | None -> ())
        bad;
      let numbers =
        List.fold_left (fun acc (c, _) -> acc + c.Baseline.c_numbers) 0 checks
      in
      if bad = [] && shadow_divergences = 0 then begin
        Printf.printf "\nOK: %d experiments, %d numbers within tolerance%s\n"
          (List.length checks) numbers
          (if shadow then ", zero shadow divergences" else "");
        Ok ()
      end
      else begin
        if bad <> [] then
          Printf.printf "\nFAIL: %d of %d experiments regressed\n"
            (List.length bad) (List.length checks);
        if shadow_divergences > 0 then
          Printf.printf
            "\nFAIL: %d shadow divergence(s) — the fast path disagreed with \
             the reference MMU\n"
            shadow_divergences;
        flush stdout;
        exit 1
      end

let tune_vsid seed =
  let scores =
    Mmu_tricks.Tuning.sweep ~seed Mmu_tricks.Tuning.default_candidates
  in
  Experiments.print (Mmu_tricks.Tuning.to_table scores)

let policies () =
  Report.table
    ~header:[ "name"; "flags" ]
    ~rows:
      (List.map
         (fun (name, p) -> [ name; Policy.describe p ])
         Config.all_named)

let machines_cmd () =
  Report.table
    ~header:[ "name"; "description" ]
    ~rows:
      (List.map
         (fun (name, m) -> [ name; Format.asprintf "%a" Machine.pp m ])
         machines)

(* --- wiring ------------------------------------------------------------ *)

let lmbench_cmd =
  Cmd.v
    (Cmd.info "lmbench" ~doc:"Run the LmBench-style microbenchmark suite.")
    Term.(const lmbench $ machine_term $ policy_term $ seed_term)

let kbuild_cmd =
  let jobs =
    Arg.(
      value & opt int 24
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of compile jobs.")
  in
  Cmd.v
    (Cmd.info "kbuild" ~doc:"Run the synthetic kernel-compile workload.")
    Term.(const kbuild $ machine_term $ policy_term $ seed_term $ jobs)

let multiuser_cmd =
  let rounds =
    Arg.(
      value & opt int 40
      & info [ "rounds" ] ~docv:"N" ~doc:"Interleaving rounds.")
  in
  Cmd.v
    (Cmd.info "multiuser" ~doc:"Run the multiuser development-day workload.")
    Term.(const multiuser $ machine_term $ policy_term $ seed_term $ rounds)

let xserver_cmd =
  Cmd.v
    (Cmd.info "xserver"
       ~doc:"Run the display-server workload (frame-buffer BAT scenario).")
    Term.(const xserver $ machine_term $ policy_term $ seed_term)

let table3_cmd =
  Cmd.v
    (Cmd.info "table3" ~doc:"Reproduce the Table 3 OS comparison.")
    Term.(const table3 $ seed_term)

let tune_vsid_cmd =
  Cmd.v
    (Cmd.info "tune-vsid"
       ~doc:"Sweep VSID scatter constants with the sec-5.2 histogram method.")
    Term.(const tune_vsid $ seed_term)

let experiment_id =
  let parse s =
    match Experiments.find s with
    | Some spec -> Ok spec.Experiments.id
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown experiment %S (known: %s)" s
               (String.concat ", "
                  (List.map (fun x -> x.Experiments.id) Experiments.registry))))
  in
  Arg.conv (parse, Format.pp_print_string)

let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker processes (experiments fork and run in parallel; \
              results are merged in registry order, byte-identical to a \
              serial run).")

let timeout_term =
  Arg.(
    value & opt float 0.
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Per-experiment wall-clock budget in seconds (0 disables). A \
              forked worker that goes this long without delivering a \
              result is killed and the hung experiment reported as timed \
              out; serial runs abort the attempt via SIGALRM.")

let retries_term =
  Arg.(
    value & opt int Runner.default_retries
    & info [ "retries" ] ~docv:"N"
        ~doc:"Retry budget for experiments lost to a crashed, hung or \
              corrupt worker: re-forked first, run serially in-parent on \
              the final attempt.")

let shadow_term =
  Arg.(
    value & flag
    & info [ "shadow" ]
        ~doc:"Cross-validate every address translation against the shadow \
              reference MMU (a cache-free translator over the BATs and \
              backing page tables). Divergences are reported in full on \
              stderr and make the exit status nonzero. Checking is \
              observation-only — counters and results are byte-identical \
              to an unshadowed run — but forces serial execution.")

let sample_every_term =
  Arg.(
    value & opt int 100_000
    & info [ "sample-every" ] ~docv:"CYCLES"
        ~doc:"Timeline sampling interval in simulated cycles (0 disables \
              sampling).")

let trace_cmd =
  let workload =
    Arg.(
      value
      & pos 0 (enum trace_workloads) `Kbuild
      & info [] ~docv:"WORKLOAD" ~doc:"Workload: kbuild, multiuser, xserver.")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Chrome trace-event JSON output file (load in Perfetto or \
                chrome://tracing).")
  in
  let ring =
    Arg.(
      value & opt int 65536
      & info [ "ring" ] ~docv:"EVENTS"
          ~doc:"Event ring capacity; oldest events are dropped on overflow.")
  in
  let summarize =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:"Also print the text summary (event counts, latency \
                histograms).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a workload with event tracing and write Chrome trace JSON."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Boots a kernel, enables the event trace (TLB misses, htab \
              probes and evictions, context switches, flushes, page \
              faults, idle-task work), runs the workload, and writes the \
              events as a Chrome trace-event document with counter \
              timelines. Tracing never perturbs the simulation: counters \
              match an untraced run at the same seed exactly." ])
    Term.(
      const trace_run $ machine_term $ policy_term $ seed_term $ workload
      $ out $ sample_every_term $ ring $ summarize)

let experiment_cmd =
  let names =
    Arg.(value & pos_all experiment_id [] & info [] ~docv:"NAME"
           ~doc:"Experiment ids (T1..T3, E1..E16, EX1..EX7, diagnostics \
                 D1); all of the registry if none (diagnostics only run \
                 when named).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the machine-readable results document (the baseline \
                format) instead of tables.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write --json/--csv output to $(docv) instead of stdout.")
  in
  let traced =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Record event traces and latency histograms while the \
                experiments run, embedded per experiment in the --json \
                document (forces serial execution; counters are \
                unaffected).")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:"Sample the Perf counters every --sample-every cycles and \
                embed the timelines in the --json document (implies the \
                tracing machinery; forces serial execution).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit nonzero unless every experiment completed cleanly on \
                its first attempt — a run that only succeeded after the \
                supervisor retried lost experiments counts as a failure.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Run reproduction experiments (tables printed with paper values)."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Experiments run under a supervising parent: worker exit \
              statuses are inspected, experiments lost to a crashed or \
              hung worker are retried within --retries, and every attempt \
              is bounded by --timeout. Experiments that never produce a \
              table are listed in a failure table on stderr (and under a \
              \"failures\" key in the --json document) and make the exit \
              status nonzero; --strict also fails runs that needed \
              retries. $(b,MMU_SIM_FAULT)=kill:<id>|exit:<id>[:n]|\
              raise:<id>|hang:<id> injects deterministic faults for \
              testing the supervision paths." ])
    Term.(
      term_result
        (const experiment $ names $ seed_term $ jobs_term $ timeout_term
        $ retries_term $ strict $ shadow_term $ csv $ json $ out $ traced
        $ timeline $ sample_every_term))

let check_cmd =
  let baseline =
    Arg.(
      required
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Baseline results document (from $(b,experiment --json)).")
  in
  let tolerance =
    Arg.(
      value & opt float 0.02
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:"Default relative tolerance per numeric cell; the baseline \
                file's \"tolerance\"/\"tolerances\" fields override it.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Rerun experiments and compare against a baseline; exit 1 on \
             regression."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Reruns every experiment named by the baseline at the \
              baseline's seed, extracts every numeric token from every \
              table cell, and requires each to match the recorded value \
              within a relative tolerance. The experiments are \
              deterministic per seed, so any drift is a real behaviour \
              change." ])
    Term.(
      term_result
        (const check $ baseline $ jobs_term $ timeout_term $ retries_term
        $ tolerance $ shadow_term))

let policies_cmd =
  Cmd.v
    (Cmd.info "policies" ~doc:"List named policy presets.")
    Term.(const policies $ const ())

let machines_list_cmd =
  Cmd.v
    (Cmd.info "machines" ~doc:"List machine models.")
    Term.(const machines_cmd $ const ())

(* Deterministic bug injection for exercising the shadow checker:
   MMU_SIM_BUG=stale-tlb makes every page flush skip its TLB
   invalidations; stale-tlb:<n> skips only the next n.  Parsed once at
   startup so forked workers inherit the armed hook. *)
let arm_bug_hook () =
  match Sys.getenv_opt "MMU_SIM_BUG" with
  | None -> ()
  | Some s -> (
      match String.split_on_char ':' s with
      | [ "stale-tlb" ] -> Mmu.test_skip_tlb_invalidations := -1
      | [ "stale-tlb"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Mmu.test_skip_tlb_invalidations := n
          | Some _ | None ->
              Printf.eprintf "mmu_sim: bad MMU_SIM_BUG count %S\n" s)
      | _ -> Printf.eprintf "mmu_sim: ignoring unknown MMU_SIM_BUG %S\n" s)

let () =
  arm_bug_hook ();
  let doc = "PowerPC 603/604 MMU simulator (OSDI '99 MMU-tricks repro)" in
  let info = Cmd.info "mmu_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ lmbench_cmd; kbuild_cmd; multiuser_cmd; xserver_cmd; table3_cmd;
            trace_cmd; experiment_cmd; check_cmd; tune_vsid_cmd;
            policies_cmd; machines_list_cmd ]))
