(** Synthetic memory-reference generation.

    A working-set model: a region of [pages] pages of which a [hot]
    fraction receives [locality] of the references; the rest spread
    uniformly.  This is the standard two-level locality approximation and
    is enough to exercise TLB capacity, htab occupancy and cache reuse
    the way real program phases do.  Fully deterministic given the
    generator. *)

open Ppc

type t

val create :
  rng:Rng.t ->
  base_ea:Addr.ea ->
  pages:int ->
  ?hot_fraction:float ->
  ?locality:float ->
  unit ->
  t
(** [create ~rng ~base_ea ~pages ()] — defaults: 20% of pages are hot and
    receive 80% of references. *)

val next : t -> Addr.ea
(** The next reference address (word-aligned, anywhere in the region). *)

val pages : t -> int

val base : t -> Addr.ea
