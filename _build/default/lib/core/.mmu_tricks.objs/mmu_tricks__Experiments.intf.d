lib/core/experiments.mli:
