test/test_pipe_vfs.ml: Alcotest Kernel_sim List QCheck QCheck_alcotest
