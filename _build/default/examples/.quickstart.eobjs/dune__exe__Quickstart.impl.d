examples/quickstart.ml: Addr Format Kernel_sim Machine Mmu Mmu_tricks Perf Ppc
