test/test_segment.ml: Alcotest Ppc Segment
