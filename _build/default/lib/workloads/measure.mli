(** Measurement helpers: counter deltas around a measured region. *)

open Ppc

val perf : Kernel_sim.Kernel.t -> (unit -> unit) -> Perf.t
(** [perf k f] runs [f] and returns the counter deltas it caused. *)

val cycles : Kernel_sim.Kernel.t -> (unit -> unit) -> int

val us : Kernel_sim.Kernel.t -> (unit -> unit) -> float
(** Elapsed simulated microseconds of [f] at the machine's clock. *)
