test/test_bat.ml: Alcotest Bat Ppc QCheck QCheck_alcotest
