open Ppc

type t = {
  total : int;
  reserved : int;
  allocated : bool array;  (* indexed by rpn *)
  free_list : int array;   (* stack of free rpns *)
  mutable top : int;       (* number of frames on the stack *)
}

let create ~ram_bytes ~reserved_bytes =
  let total = ram_bytes / Addr.page_size in
  let reserved = Addr.round_up_pages reserved_bytes in
  if reserved > total then invalid_arg "Physmem.create: reserved > ram";
  let allocated = Array.make total false in
  for i = 0 to reserved - 1 do
    allocated.(i) <- true
  done;
  let free_list = Array.make total 0 in
  (* LIFO stack with low frames on top so early allocations are low. *)
  let top = ref 0 in
  for rpn = total - 1 downto reserved do
    free_list.(!top) <- rpn;
    incr top
  done;
  { total; reserved; allocated; free_list; top = !top }

let total_frames t = t.total
let reserved_frames t = t.reserved
let free_frames t = t.top

let alloc t =
  if t.top = 0 then None
  else begin
    t.top <- t.top - 1;
    let rpn = t.free_list.(t.top) in
    t.allocated.(rpn) <- true;
    Some rpn
  end

let free t rpn =
  if rpn < 0 || rpn >= t.total then invalid_arg "Physmem.free: out of range";
  if rpn < t.reserved then invalid_arg "Physmem.free: reserved frame";
  if not t.allocated.(rpn) then invalid_arg "Physmem.free: double free";
  t.allocated.(rpn) <- false;
  t.free_list.(t.top) <- rpn;
  t.top <- t.top + 1

let is_allocated t rpn =
  if rpn < 0 || rpn >= t.total then false else t.allocated.(rpn)
