lib/kernel_sim/sched.ml: Kernel List Task
