(* Performance counters: snapshot, diff, derived sums. *)
open Ppc

let test_create_zero () =
  let p = Perf.create () in
  Alcotest.(check int) "cycles zero" 0 p.Perf.cycles;
  Alcotest.(check int) "tlb misses zero" 0 (Perf.tlb_misses p)

let test_snapshot_diff () =
  let p = Perf.create () in
  p.Perf.cycles <- 100;
  p.Perf.dtlb_misses <- 5;
  let before = Perf.snapshot p in
  p.Perf.cycles <- 250;
  p.Perf.dtlb_misses <- 12;
  p.Perf.itlb_misses <- 3;
  let d = Perf.diff ~after:(Perf.snapshot p) ~before in
  Alcotest.(check int) "cycle delta" 150 d.Perf.cycles;
  Alcotest.(check int) "dtlb delta" 7 d.Perf.dtlb_misses;
  Alcotest.(check int) "combined misses" 10 (Perf.tlb_misses d)

let test_snapshot_is_copy () =
  let p = Perf.create () in
  let s = Perf.snapshot p in
  p.Perf.cycles <- 42;
  Alcotest.(check int) "snapshot unaffected" 0 s.Perf.cycles

let test_reset () =
  let p = Perf.create () in
  p.Perf.cycles <- 9;
  p.Perf.htab_hits <- 3;
  p.Perf.prezeroed_hits <- 1;
  Perf.reset p;
  Alcotest.(check int) "cycles" 0 p.Perf.cycles;
  Alcotest.(check int) "htab hits" 0 p.Perf.htab_hits;
  Alcotest.(check int) "prezeroed" 0 p.Perf.prezeroed_hits

let test_busy_cycles () =
  let p = Perf.create () in
  p.Perf.cycles <- 100;
  p.Perf.idle_cycles <- 30;
  Alcotest.(check int) "busy" 70 (Perf.busy_cycles p)

(* --- exhaustiveness guard ---------------------------------------------
   Perf.t is a flat record of int counters, so its field count is visible
   to Obj; [fields] (and through it snapshot/diff/reset and the timeline
   exporter) must cover every one.  Adding a counter without extending
   [fields] fails here. *)

let n_counters = Obj.size (Obj.repr (Perf.create ()))

(* Give every field a distinct nonzero value, bypassing the accessors. *)
let fill_distinct p =
  let r = Obj.repr p in
  for i = 0 to n_counters - 1 do
    Obj.set_field r i (Obj.repr (i + 1))
  done

let test_fields_exhaustive () =
  let p = Perf.create () in
  Alcotest.(check int)
    "fields lists every counter" n_counters
    (List.length (Perf.fields p));
  let names = List.map fst (Perf.fields p) in
  Alcotest.(check int)
    "field names unique" n_counters
    (List.length (List.sort_uniq compare names))

let test_fields_read_all () =
  let p = Perf.create () in
  fill_distinct p;
  let values = List.map snd (Perf.fields p) in
  Alcotest.(check int)
    "fields values all distinct (each reads its own counter)" n_counters
    (List.length (List.sort_uniq compare values));
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " read back nonzero") true (v > 0))
    (Perf.fields p)

let test_snapshot_covers_all () =
  let p = Perf.create () in
  fill_distinct p;
  let s = Perf.snapshot p in
  List.iter2
    (fun (name, a) (_, b) -> Alcotest.(check int) ("snapshot " ^ name) a b)
    (Perf.fields p) (Perf.fields s)

let test_diff_self_zero () =
  let p = Perf.create () in
  fill_distinct p;
  let d = Perf.diff ~after:p ~before:p in
  List.iter
    (fun (name, v) -> Alcotest.(check int) ("diff self " ^ name) 0 v)
    (Perf.fields d)

let test_reset_covers_all () =
  let p = Perf.create () in
  fill_distinct p;
  Perf.reset p;
  List.iter
    (fun (name, v) -> Alcotest.(check int) ("reset " ^ name) 0 v)
    (Perf.fields p)

let test_pp_no_crash () =
  let p = Perf.create () in
  p.Perf.cycles <- 123;
  let s = Format.asprintf "%a" Perf.pp p in
  Alcotest.(check bool) "mentions cycles" true
    (String.length s > 0)

let suite =
  [ Alcotest.test_case "create zeroed" `Quick test_create_zero;
    Alcotest.test_case "snapshot/diff" `Quick test_snapshot_diff;
    Alcotest.test_case "snapshot is a copy" `Quick test_snapshot_is_copy;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "busy cycles" `Quick test_busy_cycles;
    Alcotest.test_case "fields exhaustive" `Quick test_fields_exhaustive;
    Alcotest.test_case "fields read every counter" `Quick test_fields_read_all;
    Alcotest.test_case "snapshot covers every counter" `Quick
      test_snapshot_covers_all;
    Alcotest.test_case "diff with self is all zeros" `Quick
      test_diff_self_zero;
    Alcotest.test_case "reset covers every counter" `Quick
      test_reset_covers_all;
    Alcotest.test_case "pretty printer" `Quick test_pp_no_crash ]
