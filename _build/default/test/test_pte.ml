(* PTE representation and the PTEG hash. *)
open Ppc

let n_ptegs = 2048

let test_make_masks () =
  let pte =
    Pte.make ~vsid:0x1FFFFFF ~page_index:0x1FFFF ~rpn:0x1FFFFF ()
  in
  Alcotest.(check int) "vsid masked to 24 bits" 0xFFFFFF pte.Pte.vsid;
  Alcotest.(check int) "page index masked to 16 bits" 0xFFFF
    pte.Pte.page_index;
  Alcotest.(check int) "rpn masked to 20 bits" 0xFFFFF pte.Pte.rpn;
  Alcotest.(check bool) "valid" true pte.Pte.valid

let test_invalid () =
  let pte = Pte.invalid () in
  Alcotest.(check bool) "invalid" false pte.Pte.valid;
  Alcotest.(check bool) "never matches" false
    (Pte.matches pte ~vsid:0 ~page_index:0)

let test_matches () =
  let pte = Pte.make ~vsid:0x42 ~page_index:0x17 ~rpn:3 () in
  Alcotest.(check bool) "matches own tag" true
    (Pte.matches pte ~vsid:0x42 ~page_index:0x17);
  Alcotest.(check bool) "wrong vsid" false
    (Pte.matches pte ~vsid:0x43 ~page_index:0x17);
  Alcotest.(check bool) "wrong page" false
    (Pte.matches pte ~vsid:0x42 ~page_index:0x18)

let test_hash_values () =
  (* hash = (vsid & 0x7FFFF) xor page_index, folded *)
  Alcotest.(check int) "simple xor" (0x123 lxor 0x456)
    (Pte.hash_primary ~n_ptegs ~vsid:0x123 ~page_index:0x456);
  let p = Pte.hash_primary ~n_ptegs ~vsid:0xFFFFF ~page_index:0 in
  Alcotest.(check bool) "in range" true (p >= 0 && p < n_ptegs)

let test_secondary_is_complement () =
  let primary = Pte.hash_primary ~n_ptegs ~vsid:0xBEEF ~page_index:0x123 in
  let secondary = Pte.hash_secondary ~n_ptegs ~primary in
  Alcotest.(check int) "complement under mask"
    (lnot primary land (n_ptegs - 1))
    secondary

let test_wimg () =
  Alcotest.(check bool) "default cacheable" false
    Pte.wimg_default.Pte.cache_inhibited;
  Alcotest.(check bool) "uncached inhibited" true
    Pte.wimg_uncached.Pte.cache_inhibited

let prop_hash_in_range =
  QCheck.Test.make ~name:"primary hash within PTEG count" ~count:1000
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFF))
    (fun (vsid, page_index) ->
      let h = Pte.hash_primary ~n_ptegs ~vsid ~page_index in
      h >= 0 && h < n_ptegs)

let prop_secondary_involution =
  QCheck.Test.make ~name:"secondary of secondary is primary" ~count:1000
    QCheck.(int_bound (n_ptegs - 1))
    (fun primary ->
      let s = Pte.hash_secondary ~n_ptegs ~primary in
      Pte.hash_secondary ~n_ptegs ~primary:s = primary)

let prop_secondary_differs =
  QCheck.Test.make ~name:"secondary PTEG differs from primary" ~count:1000
    QCheck.(int_bound (n_ptegs - 1))
    (fun primary -> Pte.hash_secondary ~n_ptegs ~primary <> primary)

let prop_vpn_consistent =
  QCheck.Test.make ~name:"pte vpn matches its tag" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFF))
    (fun (vsid, page_index) ->
      let pte = Pte.make ~vsid ~page_index ~rpn:0 () in
      let vpn = Pte.vpn pte in
      Addr.vsid_of_vpn vpn = vsid && Addr.page_index_of_vpn vpn = page_index)

let suite =
  [ Alcotest.test_case "field masking" `Quick test_make_masks;
    Alcotest.test_case "invalid entry" `Quick test_invalid;
    Alcotest.test_case "tag matching" `Quick test_matches;
    Alcotest.test_case "hash values" `Quick test_hash_values;
    Alcotest.test_case "secondary complement" `Quick
      test_secondary_is_complement;
    Alcotest.test_case "wimg presets" `Quick test_wimg;
    QCheck_alcotest.to_alcotest prop_hash_in_range;
    QCheck_alcotest.to_alcotest prop_secondary_involution;
    QCheck_alcotest.to_alcotest prop_secondary_differs;
    QCheck_alcotest.to_alcotest prop_vpn_consistent ]
