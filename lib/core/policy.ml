(* The first-class policy layer: every hardcoded MM decision the
   mechanism layers used to read in place, as one declarative catalog of
   named knobs over [Kernel_sim.Policy.t] — string get/set for the CLI
   ([--policy KEY=VALUE]), JSON round-trip for policy files and results
   documents, and the origin/section table the docs and tuner render. *)

module Kpolicy = Kernel_sim.Policy
module Vsid_alloc = Kernel_sim.Vsid_alloc

type t = Kpolicy.t

let paper_default = Kpolicy.optimized

type kind = Kbool | Kint | Kint_or_none | Kenum of string list

type knob = {
  key : string;
  kind : kind;
  origin : string;
  section : string;
  doc : string;
  get : t -> string;
  set : t -> string -> (t, string) result;
}

(* --- value parsers --------------------------------------------------- *)

let parse_bool key s =
  match s with
  | "true" -> Ok true
  | "false" -> Ok false
  | _ -> Error (Printf.sprintf "%s: expected true or false, got %S" key s)

let parse_int ?(min = 1) key s =
  match int_of_string_opt s with
  | Some n when n >= min -> Ok n
  | Some n -> Error (Printf.sprintf "%s: %d is below the minimum %d" key n min)
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" key s)

let bknob key ~origin ~section ~doc get set =
  { key;
    kind = Kbool;
    origin;
    section;
    doc;
    get = (fun p -> string_of_bool (get p));
    set =
      (fun p s -> Result.map (set p) (parse_bool key s)) }

let iknob ?min key ~origin ~section ~doc get set =
  { key;
    kind = Kint;
    origin;
    section;
    doc;
    get = (fun p -> string_of_int (get p));
    set = (fun p s -> Result.map (set p) (parse_int ?min key s)) }

let eknob key ~origin ~section ~doc ~values get set =
  { key;
    kind = Kenum (List.map fst values);
    origin;
    section;
    doc;
    get =
      (fun p ->
        let v = get p in
        match List.find_opt (fun (_, x) -> x = v) values with
        | Some (name, _) -> name
        | None -> assert false);
    set =
      (fun p s ->
        match List.assoc_opt s values with
        | Some v -> Ok (set p v)
        | None ->
            Error
              (Printf.sprintf "%s: expected one of %s, got %S" key
                 (String.concat "/" (List.map fst values))
                 s)) }

(* --- the catalog ----------------------------------------------------- *)

let knobs =
  [ bknob "bat_kernel_mapping" ~origin:"kernel_sim/kernel.ml (boot)"
      ~section:"5.1"
      ~doc:"map kernel text/data/htab with a BAT register instead of PTEs"
      (fun p -> p.Kpolicy.bat_kernel_mapping)
      (fun p v -> { p with Kpolicy.bat_kernel_mapping = v });
    bknob "bat_io_mapping" ~origin:"kernel_sim/kernel.ml (boot)"
      ~section:"5.1" ~doc:"also BAT-map I/O space (measured to not matter)"
      (fun p -> p.Kpolicy.bat_io_mapping)
      (fun p v -> { p with Kpolicy.bat_io_mapping = v });
    bknob "bat_framebuffer" ~origin:"kernel_sim/kernel.ml (switch_to)"
      ~section:"5.1"
      ~doc:"per-process frame-buffer BAT switched at context-switch time"
      (fun p -> p.Kpolicy.bat_framebuffer)
      (fun p v -> { p with Kpolicy.bat_framebuffer = v });
    eknob "vsid_source" ~origin:"kernel_sim/vsid_alloc.ml" ~section:"7"
      ~doc:"PID-derived VSIDs vs the context counter enabling lazy flushes"
      ~values:
        [ ("pid", Vsid_alloc.Pid_based);
          ("counter", Vsid_alloc.Context_counter) ]
      (fun p -> p.Kpolicy.vsid_source)
      (fun p v -> { p with Kpolicy.vsid_source = v });
    iknob "vsid_multiplier" ~origin:"kernel_sim/vsid_alloc.ml" ~section:"5.2"
      ~doc:"the VSID scatter constant (1 = naive, 897 = the paper's)"
      (fun p -> p.Kpolicy.vsid_multiplier)
      (fun p v -> { p with Kpolicy.vsid_multiplier = v });
    bknob "fast_reload" ~origin:"ppc/mmu.ml (handlers)" ~section:"6.1"
      ~doc:"hand-optimized assembly miss handlers vs the original C"
      (fun p -> p.Kpolicy.fast_reload)
      (fun p v -> { p with Kpolicy.fast_reload = v });
    bknob "fast_paths" ~origin:"kernel_sim/kparams.ml (path lengths)"
      ~section:"6.1"
      ~doc:"optimized syscall/switch/tick entry-exit path lengths"
      (fun p -> p.Kpolicy.fast_paths)
      (fun p v -> { p with Kpolicy.fast_paths = v });
    bknob "use_htab" ~origin:"ppc/reload_engine.ml" ~section:"6.2"
      ~doc:"on 603-style machines, search the htab before the page tables"
      (fun p -> p.Kpolicy.use_htab)
      (fun p v -> { p with Kpolicy.use_htab = v });
    bknob "lazy_flush" ~origin:"kernel_sim/kernel.ml (flush paths)"
      ~section:"7" ~doc:"retire VSIDs instead of scrubbing TLB+htab entries"
      (fun p -> p.Kpolicy.lazy_flush)
      (fun p v -> { p with Kpolicy.lazy_flush = v });
    { key = "flush_cutoff";
      kind = Kint_or_none;
      origin = "kernel_sim/kernel.ml (flush_range)";
      section = "7";
      doc =
        "range flushes above this many pages become whole-context VSID \
         resets; none = always precise (the paper settled on 20)";
      get =
        (fun p ->
          match p.Kpolicy.flush_cutoff with
          | None -> "none"
          | Some n -> string_of_int n);
      set =
        (fun p s ->
          if s = "none" then Ok { p with Kpolicy.flush_cutoff = None }
          else
            Result.map
              (fun n -> { p with Kpolicy.flush_cutoff = Some n })
              (parse_int ~min:0 "flush_cutoff" s)) };
    bknob "idle_zombie_reclaim" ~origin:"kernel_sim/kernel.ml (idle_slice)"
      ~section:"7" ~doc:"idle task scans the htab invalidating zombie PTEs"
      (fun p -> p.Kpolicy.idle_zombie_reclaim)
      (fun p v -> { p with Kpolicy.idle_zombie_reclaim = v });
    iknob "reclaim_interval" ~origin:"kernel_sim/kparams.ml (extracted)"
      ~section:"7" ~doc:"reclaim scan every this-many idle slices (16)"
      (fun p -> p.Kpolicy.reclaim_interval)
      (fun p v -> { p with Kpolicy.reclaim_interval = v });
    iknob "reclaim_chunk" ~origin:"kernel_sim/kparams.ml (extracted)"
      ~section:"7" ~doc:"htab slots examined per reclaim scan (64)"
      (fun p -> p.Kpolicy.reclaim_chunk)
      (fun p v -> { p with Kpolicy.reclaim_chunk = v });
    eknob "idle_clearing" ~origin:"kernel_sim/pagepool.ml" ~section:"9"
      ~doc:"what the idle task does with free pages"
      ~values:
        [ ("off", Kpolicy.Clear_off);
          ("cached", Kpolicy.Clear_cached);
          ("uncached", Kpolicy.Clear_uncached) ]
      (fun p -> p.Kpolicy.idle_clearing)
      (fun p v -> { p with Kpolicy.idle_clearing = v });
    bknob "idle_clear_list" ~origin:"kernel_sim/pagepool.ml" ~section:"9"
      ~doc:"hand idle-cleared pages to get_free_page via the pre-zeroed list"
      (fun p -> p.Kpolicy.idle_clear_list)
      (fun p v -> { p with Kpolicy.idle_clear_list = v });
    iknob "prezero_list_limit" ~origin:"kernel_sim/pagepool.ml (extracted)"
      ~section:"9" ~doc:"pre-zeroed list depth cap (64)"
      (fun p -> p.Kpolicy.prezero_list_limit)
      (fun p v -> { p with Kpolicy.prezero_list_limit = v });
    bknob "cache_inhibit_pagetables" ~origin:"ppc/mmu.ml" ~section:"8"
      ~doc:"keep page-table and htab references out of the data cache"
      (fun p -> p.Kpolicy.cache_inhibit_pagetables)
      (fun p v -> { p with Kpolicy.cache_inhibit_pagetables = v });
    bknob "idle_cache_lock" ~origin:"ppc/memsys.ml" ~section:"10.1"
      ~doc:"lock both caches while the idle task runs"
      (fun p -> p.Kpolicy.idle_cache_lock)
      (fun p v -> { p with Kpolicy.idle_cache_lock = v });
    bknob "cache_preload" ~origin:"kernel_sim/kernel.ml (switch_to)"
      ~section:"10.2"
      ~doc:"prefetch the incoming task's hot kernel data at a switch"
      (fun p -> p.Kpolicy.cache_preload)
      (fun p v -> { p with Kpolicy.cache_preload = v });
    eknob "htab_replacement" ~origin:"ppc/htab.ml (via Mmu knobs)"
      ~section:"7" ~doc:"victim selection on htab overflow"
      ~values:
        [ ("arbitrary", `Arbitrary);
          ("second-chance", `Second_chance);
          ("zombie-aware", `Zombie_aware) ]
      (fun p -> p.Kpolicy.htab_replacement)
      (fun p v -> { p with Kpolicy.htab_replacement = v });
    eknob "tlb_replacement" ~origin:"ppc/tlb.ml (extracted)"
      ~section:"hw (ablation)"
      ~doc:"TLB victim selection; lru is the 603/604 hardware"
      ~values:
        [ ("lru", Ppc.Tlb.Lru);
          ("fifo", Ppc.Tlb.Fifo);
          ("random", Ppc.Tlb.Rand) ]
      (fun p -> p.Kpolicy.tlb_replacement)
      (fun p v -> { p with Kpolicy.tlb_replacement = v });
    bknob "shootdown_batch" ~origin:"kernel_sim/kernel.ml (precise flushes)"
      ~section:"smp"
      ~doc:"one IPI round per precise flush range vs the legacy per page"
      (fun p -> p.Kpolicy.shootdown_batch)
      (fun p v -> { p with Kpolicy.shootdown_batch = v }) ]

let find_knob key = List.find_opt (fun k -> k.key = key) knobs

let values_of_kind = function
  | Kbool -> "true|false"
  | Kint -> "int"
  | Kint_or_none -> "int|none"
  | Kenum names -> String.concat "|" names

type knob_info = {
  ki_key : string;
  ki_origin : string;
  ki_section : string;
  ki_values : string;
  ki_doc : string;
}

let catalog =
  List.map
    (fun k ->
      { ki_key = k.key;
        ki_origin = k.origin;
        ki_section = k.section;
        ki_values = values_of_kind k.kind;
        ki_doc = k.doc })
    knobs

let knob_keys = List.map (fun k -> k.key) knobs

let get p key =
  match find_knob key with
  | Some k -> Ok (k.get p)
  | None -> Error (Printf.sprintf "unknown policy knob %S" key)

let set p key value =
  match find_knob key with
  | Some k -> k.set p value
  | None -> Error (Printf.sprintf "unknown policy knob %S" key)

let apply_kv p kv =
  match String.index_opt kv '=' with
  | None ->
      (* a bare word names a preset, which becomes the new base *)
      (match Config.find kv with
      | Some preset -> Ok preset
      | None ->
          Error
            (Printf.sprintf
               "%S is neither KEY=VALUE nor a known preset (try one of %s)"
               kv
               (String.concat ", " (List.map fst Config.all_named))))
  | Some i ->
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      set p key v

let equal (a : t) (b : t) = a = b

let diff a b =
  List.filter_map
    (fun k ->
      let va = k.get a and vb = k.get b in
      if va = vb then None else Some (k.key, va, vb))
    knobs

(* --- JSON ------------------------------------------------------------ *)

let json_of_knob p k =
  match k.kind with
  | Kbool -> Json.Bool (k.get p = "true")
  | Kint -> Json.Int (int_of_string (k.get p))
  | Kint_or_none ->
      let s = k.get p in
      if s = "none" then Json.Null else Json.Int (int_of_string s)
  | Kenum _ -> Json.String (k.get p)

let to_json p =
  Json.Obj (List.map (fun k -> (k.key, json_of_knob p k)) knobs)

let string_of_value key = function
  | Json.Bool b -> Ok (string_of_bool b)
  | Json.Int n -> Ok (string_of_int n)
  | Json.String s -> Ok s
  | Json.Null -> Ok "none"
  | Json.Float _ | Json.List _ | Json.Obj _ ->
      Error (Printf.sprintf "%s: expected a scalar JSON value" key)

let of_json = function
  | Json.Obj members ->
      let base =
        match List.assoc_opt "base" members with
        | None -> Ok paper_default
        | Some (Json.String name) -> (
            match Config.find name with
            | Some p -> Ok p
            | None -> Error (Printf.sprintf "unknown base preset %S" name))
        | Some _ -> Error "base: expected a preset name string"
      in
      List.fold_left
        (fun acc (key, v) ->
          match acc with
          | Error _ as e -> e
          | Ok p ->
              if key = "base" then Ok p
              else (
                match find_knob key with
                | None -> Error (Printf.sprintf "unknown policy knob %S" key)
                | Some k -> (
                    match string_of_value key v with
                    | Error _ as e -> e
                    | Ok s -> k.set p s)))
        base members
  | _ -> Error "policy document must be a JSON object"

let of_string s =
  match Json.of_string s with
  | Error e -> Error (Printf.sprintf "policy JSON: %s" e)
  | Ok j -> of_json j

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | body -> of_string body
