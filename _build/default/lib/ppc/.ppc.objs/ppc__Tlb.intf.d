lib/ppc/tlb.mli: Addr
