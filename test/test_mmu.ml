(* The translation engine: reload paths, faults, flushes, probe oracle. *)
open Ppc

let user_vsid_base = 0x100

(* A backing store over a mutable epn -> (rpn, writable) table. *)
let make ?(machine = Machine.ppc604_185) ?(knobs = Mmu.default_knobs) () =
  let perf = Perf.create () in
  let memsys = Memsys.create ~machine ~perf in
  let mappings : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
  let walk ea =
    match Hashtbl.find_opt mappings (Addr.epn ea) with
    | Some (rpn, writable) ->
        Mmu.Mapped
          { rpn;
            wimg = Pte.wimg_default;
            protection = (if writable then Pte.Read_write else Pte.Read_only);
            pt_refs = [| 0x4000; 0x4100; 0x4200 |] }
    | None -> Mmu.Unmapped { pt_refs = [| 0x4000; 0x4100 |] }
  in
  let mmu =
    Mmu.create ~machine ~memsys ~knobs ~backing:{ Mmu.walk }
      ~rng:(Rng.create ~seed:3) ()
  in
  Segment.load_user (Mmu.segments mmu) (fun sr -> user_vsid_base + sr);
  Segment.load_kernel (Mmu.segments mmu) (fun sr -> 0xF00 + sr);
  (mmu, mappings, perf)

let map mappings ~ea ~rpn = Hashtbl.replace mappings (Addr.epn ea) (rpn, true)

let map_ro mappings ~ea ~rpn =
  Hashtbl.replace mappings (Addr.epn ea) (rpn, false)

let check_ok name expected result =
  match result with
  | Mmu.Ok pa -> Alcotest.(check int) name expected pa
  | Mmu.Fault -> Alcotest.fail (name ^ ": unexpected fault")

let test_basic_translation () =
  let mmu, mappings, perf = make () in
  map mappings ~ea:0x01800000 ~rpn:0x123;
  check_ok "first access" (Addr.pa_of ~rpn:0x123 ~ea:0x01800004)
    (Mmu.access mmu Mmu.Load 0x01800004);
  Alcotest.(check int) "one dtlb miss" 1 perf.Perf.dtlb_misses;
  check_ok "second access" (Addr.pa_of ~rpn:0x123 ~ea:0x01800008)
    (Mmu.access mmu Mmu.Load 0x01800008);
  Alcotest.(check int) "second is a TLB hit" 1 perf.Perf.dtlb_misses

let test_fetch_uses_itlb () =
  let mmu, mappings, perf = make () in
  map mappings ~ea:0x01800000 ~rpn:0x55;
  ignore (Mmu.access mmu Mmu.Fetch 0x01800000 : Mmu.access_result);
  Alcotest.(check int) "itlb miss" 1 perf.Perf.itlb_misses;
  Alcotest.(check int) "no dtlb traffic" 0 perf.Perf.dtlb_lookups

let test_fault_unmapped () =
  let mmu, _, perf = make () in
  (match Mmu.access mmu Mmu.Load 0x30000000 with
  | Mmu.Fault -> ()
  | Mmu.Ok _ -> Alcotest.fail "expected fault");
  Alcotest.(check bool) "miss was counted" true (perf.Perf.dtlb_misses = 1)

let test_store_readonly_faults () =
  let mmu, mappings, _ = make () in
  map_ro mappings ~ea:0x01800000 ~rpn:0x9;
  (match Mmu.access mmu Mmu.Store 0x01800000 with
  | Mmu.Fault -> ()
  | Mmu.Ok _ -> Alcotest.fail "store to read-only must fault");
  check_ok "load is fine" (Addr.pa_of ~rpn:0x9 ~ea:0x01800000)
    (Mmu.access mmu Mmu.Load 0x01800000)

let test_bat_bypasses_tlb () =
  let mmu, _, perf = make () in
  Bat.set (Mmu.dbat mmu) ~index:0 ~base_ea:0xC0000000
    ~length:(32 * 1024 * 1024) ~phys_base:0;
  check_ok "bat translation" 0x00123456
    (Mmu.access mmu Mmu.Load 0xC0123456);
  Alcotest.(check int) "no TLB lookup at all" 0 (Perf.tlb_lookups perf);
  Alcotest.(check int) "no TLB miss" 0 (Perf.tlb_misses perf)

let test_hw_reload_counters () =
  let mmu, mappings, perf = make ~machine:Machine.ppc604_185 () in
  map mappings ~ea:0x01800000 ~rpn:0x42;
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  (* 604: hardware search missed (cold htab), then software filled it *)
  Alcotest.(check int) "one search" 1 perf.Perf.htab_searches;
  Alcotest.(check int) "one htab miss" 1 perf.Perf.htab_misses;
  Alcotest.(check int) "one reload into htab" 1 perf.Perf.htab_reloads;
  (* invalidate TLB: next access must hit the htab in hardware *)
  Mmu.invalidate_tlbs mmu;
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  Alcotest.(check int) "second search hits" 1 perf.Perf.htab_hits

let test_sw_no_htab_reload () =
  let knobs = { Mmu.default_knobs with Mmu.use_htab = false } in
  let mmu, mappings, perf = make ~machine:Machine.ppc603_133 ~knobs () in
  Alcotest.(check bool) "htab eliminated" true (Mmu.htab mmu = None);
  map mappings ~ea:0x01800000 ~rpn:0x42;
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  Alcotest.(check int) "no htab traffic" 0 perf.Perf.htab_searches;
  Alcotest.(check int) "no htab reloads" 0 perf.Perf.htab_reloads;
  Alcotest.(check bool) "pt walk references counted" true
    (perf.Perf.mem_refs >= 3)

let test_hardware_machine_forces_htab () =
  let knobs = { Mmu.default_knobs with Mmu.use_htab = false } in
  let mmu, _, _ = make ~machine:Machine.ppc604_185 ~knobs () in
  Alcotest.(check bool) "604 cannot drop the htab" true (Mmu.htab mmu <> None)

let test_sw_trap_cost () =
  let mmu, mappings, perf = make ~machine:Machine.ppc603_133 () in
  map mappings ~ea:0x01800000 ~rpn:0x1;
  let before = perf.Perf.cycles in
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  let cost = perf.Perf.cycles - before in
  Alcotest.(check bool) "at least the 32-cycle trap" true
    (cost >= Cost.tlb_miss_trap_cycles)

let test_slow_reload_costs_more () =
  let run fast =
    let knobs = { Mmu.default_knobs with Mmu.fast_reload = fast } in
    let mmu, mappings, perf = make ~machine:Machine.ppc603_133 ~knobs () in
    map mappings ~ea:0x01800000 ~rpn:0x1;
    ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
    perf.Perf.cycles
  in
  Alcotest.(check bool) "C handlers cost more than assembly" true
    (run false > run true)

let test_probe_matches_access_and_is_free () =
  let mmu, mappings, perf = make () in
  map mappings ~ea:0x01800000 ~rpn:0x77;
  let before = Perf.snapshot perf in
  let probed = Mmu.probe mmu Mmu.Load 0x01800123 in
  Alcotest.(check int) "probe is free" before.Perf.cycles perf.Perf.cycles;
  (match Mmu.access mmu Mmu.Load 0x01800123 with
  | Mmu.Ok pa -> Alcotest.(check (option int)) "probe agrees" (Some pa) probed
  | Mmu.Fault -> Alcotest.fail "unexpected fault");
  Alcotest.(check (option int)) "unmapped probes to None" None
    (Mmu.probe mmu Mmu.Load 0x50000000)

let test_flush_page () =
  let mmu, mappings, perf = make () in
  map mappings ~ea:0x01800000 ~rpn:0x7;
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  let vsid = Segment.vsid_for (Mmu.segments mmu) 0x01800000 in
  let vpn = Addr.vpn_of ~vsid ~ea:0x01800000 in
  Alcotest.(check bool) "tlb entry present" true
    (Tlb.peek (Mmu.dtlb mmu) vpn <> None);
  Mmu.flush_page mmu 0x01800000;
  Alcotest.(check bool) "tlb entry flushed" true
    (Tlb.peek (Mmu.dtlb mmu) vpn = None);
  Alcotest.(check int) "flush search counted" 1 perf.Perf.flush_pte_searches;
  (match Mmu.htab mmu with
  | Some h -> Alcotest.(check int) "htab entry invalidated" 0 (Htab.occupancy h)
  | None -> ());
  (* access again: reload re-fills *)
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  Alcotest.(check int) "two misses total" 2 perf.Perf.dtlb_misses

let test_reclaim_zombies () =
  let mmu, mappings, perf = make () in
  map mappings ~ea:0x01800000 ~rpn:0x1;
  map mappings ~ea:0x01801000 ~rpn:0x2;
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  ignore (Mmu.access mmu Mmu.Load 0x01801000 : Mmu.access_result);
  Mmu.set_vsid_is_zombie mmu (fun _ -> true);
  let n =
    Mmu.reclaim_zombies mmu ~max_ptes:Machine.ppc604_185.Machine.htab_ptes
  in
  Alcotest.(check int) "both reclaimed" 2 n;
  Alcotest.(check int) "perf counted" 2 perf.Perf.zombies_reclaimed

let test_kernel_tlb_entries () =
  let mmu, mappings, _ = make () in
  map mappings ~ea:0x01800000 ~rpn:0x1;
  map mappings ~ea:0xC0001000 ~rpn:0x2;
  ignore (Mmu.access mmu Mmu.Load 0x01800000 : Mmu.access_result);
  ignore (Mmu.access mmu Mmu.Load 0xC0001000 : Mmu.access_result);
  Alcotest.(check int) "one kernel entry" 1
    (Mmu.kernel_tlb_entries mmu ~is_kernel_vsid:(fun v -> v >= 0xF00));
  Alcotest.(check int) "two total" 2 (Mmu.tlb_occupancy mmu)

let test_changed_bit_set_eagerly () =
  (* §7: dirty/modified bits are updated when the PTE is loaded into the
     hash table, which is what makes a later flush a pure invalidate. *)
  let mmu, mappings, _ = make () in
  map mappings ~ea:0x01800000 ~rpn:0x5;
  map mappings ~ea:0x01801000 ~rpn:0x6;
  ignore (Mmu.access mmu Mmu.Store 0x01800000 : Mmu.access_result);
  ignore (Mmu.access mmu Mmu.Load 0x01801000 : Mmu.access_result);
  match Mmu.htab mmu with
  | None -> Alcotest.fail "604 has an htab"
  | Some h ->
      let find pidx =
        Htab.search h ~vsid:(user_vsid_base + 0) ~page_index:pidx
          ~on_ref:(fun _ -> ())
      in
      (match find 0x1800 with
      | Some pte ->
          Alcotest.(check bool) "C set for store reload" true pte.Pte.changed
      | None -> Alcotest.fail "expected htab entry");
      (match find 0x1801 with
      | Some pte ->
          Alcotest.(check bool) "C clear for load reload" false
            pte.Pte.changed;
          Alcotest.(check bool) "R set" true pte.Pte.referenced
      | None -> Alcotest.fail "expected htab entry")

let test_evict_classification () =
  (* Fill the htab's two PTEGs for one tag family until a live eviction
     is recorded. *)
  let mmu, mappings, perf = make () in
  Mmu.set_vsid_is_zombie mmu (fun _ -> false);
  (* 20 pages mapping to segment 0, all with vsid user_vsid_base *)
  for i = 0 to 40 do
    let ea = 0x01800000 + (i * Addr.page_size * 2048 * 16) land 0x0FFFFFFF in
    map mappings ~ea ~rpn:i;
    ignore (Mmu.access mmu Mmu.Load ea : Mmu.access_result)
  done;
  Alcotest.(check int) "evicts classified" perf.Perf.htab_evicts
    (perf.Perf.htab_evicts_live + perf.Perf.htab_evicts_zombie)

let test_engine_selection () =
  let style_of machine knobs =
    let mmu, _, _ = make ~machine ~knobs () in
    Reload_engine.style (Mmu.engine mmu)
  in
  let no_htab = { Mmu.default_knobs with Mmu.use_htab = false } in
  Alcotest.(check bool) "604 selects hw-search" true
    (style_of Machine.ppc604_185 Mmu.default_knobs = Reload_engine.Hw_search);
  Alcotest.(check bool) "604 cannot bypass the htab" true
    (style_of Machine.ppc604_185 no_htab = Reload_engine.Hw_search);
  Alcotest.(check bool) "603 with htab emulates the 604" true
    (style_of Machine.ppc603_133 Mmu.default_knobs = Reload_engine.Sw_htab);
  Alcotest.(check bool) "603 without htab walks directly" true
    (style_of Machine.ppc603_133 no_htab = Reload_engine.Sw_direct)

let test_engine_cost_table () =
  (* every style has exactly one row, and the rows carry the paper's
     trap/overhead constants *)
  Alcotest.(check int) "one row per style"
    (List.length Reload_engine.all_styles)
    (List.length Reload_engine.cost_table);
  List.iter
    (fun style ->
      ignore (Reload_engine.costs_of style : Reload_engine.costs))
    Reload_engine.all_styles;
  let hw = Reload_engine.costs_of Reload_engine.Hw_search in
  Alcotest.(check int) "hw entry = hardware-search overhead"
    Cost.hw_search_overhead_cycles hw.Reload_engine.entry_stall_cycles;
  Alcotest.(check int) "hw miss = the 91-cycle interrupt"
    Cost.htab_miss_trap_cycles hw.Reload_engine.miss_trap_cycles;
  Alcotest.(check bool) "hw search is not software" false
    hw.Reload_engine.software_search;
  let sw = Reload_engine.costs_of Reload_engine.Sw_htab in
  Alcotest.(check int) "sw entry = the 32-cycle trap"
    Cost.tlb_miss_trap_cycles sw.Reload_engine.entry_stall_cycles;
  Alcotest.(check int) "sw hash setup charged"
    Cost.sw_hash_setup_instr sw.Reload_engine.hash_setup_instr;
  let direct = Reload_engine.costs_of Reload_engine.Sw_direct in
  Alcotest.(check int) "direct has no hash setup" 0
    direct.Reload_engine.hash_setup_instr;
  Alcotest.(check int) "direct has no extra miss trap" 0
    direct.Reload_engine.miss_trap_cycles

(* Property: probe always predicts what access will return, across
   random mapping tables, access kinds and both reload styles. *)
let prop_probe_predicts_access machine name =
  QCheck.Test.make ~name ~count:40
    QCheck.(
      pair
        (list_of_size (Gen.return 25)
           (pair (int_bound 0xBFF) (int_bound 0xFFF)))
        (list_of_size (Gen.return 120) (pair (int_bound 0xFFF) (int_bound 2))))
    (fun (mappings_spec, accesses) ->
      let mmu, mappings, _ = make ~machine () in
      List.iter
        (fun (page, rpn) ->
          Hashtbl.replace mappings (0x01800 + page) (rpn, page land 1 = 0))
        mappings_spec;
      List.for_all
        (fun (page, kind_i) ->
          let ea = (0x01800 + page) lsl Addr.page_shift in
          let kind =
            match kind_i with 0 -> Mmu.Fetch | 1 -> Mmu.Load | _ -> Mmu.Store
          in
          let predicted = Mmu.probe mmu kind ea in
          match (Mmu.access mmu kind ea, predicted) with
          | Mmu.Ok pa, Some pa' -> pa = pa'
          | Mmu.Fault, None -> true
          | Mmu.Ok _, None | Mmu.Fault, Some _ -> false)
        accesses)

let suite =
  [ Alcotest.test_case "basic translation" `Quick test_basic_translation;
    Alcotest.test_case "fetch uses itlb" `Quick test_fetch_uses_itlb;
    Alcotest.test_case "fault on unmapped" `Quick test_fault_unmapped;
    Alcotest.test_case "store to read-only faults" `Quick
      test_store_readonly_faults;
    Alcotest.test_case "bat bypasses tlb" `Quick test_bat_bypasses_tlb;
    Alcotest.test_case "hw reload counters" `Quick test_hw_reload_counters;
    Alcotest.test_case "603 no-htab reload" `Quick test_sw_no_htab_reload;
    Alcotest.test_case "604 forces htab" `Quick
      test_hardware_machine_forces_htab;
    Alcotest.test_case "software trap cost" `Quick test_sw_trap_cost;
    Alcotest.test_case "slow reload costs more" `Quick
      test_slow_reload_costs_more;
    Alcotest.test_case "probe oracle" `Quick
      test_probe_matches_access_and_is_free;
    Alcotest.test_case "flush page" `Quick test_flush_page;
    Alcotest.test_case "zombie reclaim" `Quick test_reclaim_zombies;
    Alcotest.test_case "kernel tlb share" `Quick test_kernel_tlb_entries;
    Alcotest.test_case "C bit set eagerly (§7)" `Quick
      test_changed_bit_set_eagerly;
    Alcotest.test_case "evict classification" `Quick
      test_evict_classification;
    Alcotest.test_case "reload backend selection" `Quick
      test_engine_selection;
    Alcotest.test_case "reload cost table" `Quick test_engine_cost_table;
    QCheck_alcotest.to_alcotest
      (prop_probe_predicts_access Machine.ppc604_185
         "probe predicts access (604 hw reload)");
    QCheck_alcotest.to_alcotest
      (prop_probe_predicts_access Machine.ppc603_133
         "probe predicts access (603 sw reload)") ]
