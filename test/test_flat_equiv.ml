(* Equivalence of the flat (PR-6) hot-path layouts with the original
   record/option semantics: the flat TLB must pick the same LRU victims
   as the old [entry option array] implementation, the htab tag probe
   must match exactly [Pte.matches], and the unrolled cache scans must
   agree with a straightforward reference model. *)
open Ppc

(* --- reference model of the pre-flattening TLB ---------------------- *)

(* The old implementation verbatim in miniature: one [entry option]
   slot per way plus a stamp, victim = same-VPN slot, else first
   invalid way, else strict-LRU ([<], first minimal index wins). *)
module Ref_tlb = struct
  type t = {
    sets : int;
    ways : int;
    slots : Tlb.entry option array;
    stamps : int array;
    mutable tick : int;
  }

  let create ~sets ~ways =
    { sets;
      ways;
      slots = Array.make (sets * ways) None;
      stamps = Array.make (sets * ways) 0;
      tick = 0 }

  let set_of t vpn = vpn land (t.sets - 1)

  let lookup t vpn =
    let base = set_of t vpn * t.ways in
    let found = ref None in
    for w = 0 to t.ways - 1 do
      match t.slots.(base + w) with
      | Some e when e.Tlb.vpn = vpn && !found = None ->
          t.tick <- t.tick + 1;
          t.stamps.(base + w) <- t.tick;
          found := Some e
      | _ -> ()
    done;
    !found

  let insert_replacing t e =
    let base = set_of t e.Tlb.vpn * t.ways in
    let victim = ref (-1) in
    let lru = ref max_int in
    let lru_way = ref 0 in
    for w = 0 to t.ways - 1 do
      (match t.slots.(base + w) with
      | Some old when old.Tlb.vpn = e.Tlb.vpn -> victim := w
      | None when !victim < 0 -> victim := w
      | _ -> ());
      if t.stamps.(base + w) < !lru then begin
        lru := t.stamps.(base + w);
        lru_way := w
      end
    done;
    let w = if !victim >= 0 then !victim else !lru_way in
    let displaced =
      match t.slots.(base + w) with
      | Some old when old.Tlb.vpn <> e.Tlb.vpn -> Some old
      | _ -> None
    in
    t.tick <- t.tick + 1;
    t.slots.(base + w) <- Some e;
    t.stamps.(base + w) <- t.tick;
    displaced

  let invalidate_page t vpn =
    Array.iteri
      (fun i -> function
        | Some e when e.Tlb.vpn = vpn -> t.slots.(i) <- None
        | _ -> ())
      t.slots

  let occupancy t =
    Array.fold_left
      (fun n -> function Some _ -> n + 1 | None -> n)
      0 t.slots
end

type op = Insert of Tlb.entry | Lookup of int | Invalidate of int

let entry_eq a b =
  a.Tlb.vpn = b.Tlb.vpn && a.Tlb.rpn = b.Tlb.rpn
  && a.Tlb.inhibited = b.Tlb.inhibited
  && a.Tlb.writable = b.Tlb.writable

let opt_entry_eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> entry_eq a b
  | _ -> false

(* Small geometry (4 sets x 2 ways) and a VPN universe a few times the
   capacity, so the sequence forces evictions, same-set conflicts and
   same-VPN updates. *)
let op_gen =
  QCheck.Gen.(
    frequency
      [ ( 5,
          map2
            (fun vpn rpn ->
              Insert
                { Tlb.vpn;
                  rpn;
                  inhibited = rpn land 7 = 0;
                  writable = rpn land 3 = 0 })
            (int_bound 31) (int_bound 255) );
        (3, map (fun vpn -> Lookup vpn) (int_bound 31));
        (1, map (fun vpn -> Invalidate vpn) (int_bound 31)) ])

let op_print = function
  | Insert e -> Printf.sprintf "insert vpn=%d rpn=%d" e.Tlb.vpn e.Tlb.rpn
  | Lookup v -> Printf.sprintf "lookup %d" v
  | Invalidate v -> Printf.sprintf "invalidate %d" v

let prop_tlb_matches_reference =
  QCheck.Test.make ~name:"flat TLB == pre-flattening reference" ~count:300
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map op_print l))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 120) op_gen))
    (fun ops ->
      let flat = Tlb.create ~sets:4 ~ways:2 () in
      let reference = Ref_tlb.create ~sets:4 ~ways:2 in
      List.for_all
        (fun op ->
          match op with
          | Insert e ->
              let d_flat = Tlb.insert_replacing flat e in
              let d_ref = Ref_tlb.insert_replacing reference e in
              opt_entry_eq d_flat d_ref
          | Lookup vpn ->
              opt_entry_eq (Tlb.lookup flat vpn) (Ref_tlb.lookup reference vpn)
          | Invalidate vpn ->
              Tlb.invalidate_page flat vpn;
              Ref_tlb.invalidate_page reference vpn;
              Tlb.occupancy flat = Ref_tlb.occupancy reference)
        ops)

(* insert_flat is the allocation-free form of insert_replacing: same
   victim, same displaced VPN (-1 standing for None / same-VPN update). *)
let prop_insert_flat_matches_insert_replacing =
  QCheck.Test.make ~name:"insert_flat == insert_replacing" ~count:300
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map op_print l))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 120) op_gen))
    (fun ops ->
      let a = Tlb.create ~sets:4 ~ways:2 () in
      let b = Tlb.create ~sets:4 ~ways:2 () in
      List.for_all
        (fun op ->
          match op with
          | Insert e ->
              let d_a = Tlb.insert_replacing a e in
              let d_b =
                Tlb.insert_flat b ~vpn:e.Tlb.vpn ~rpn:e.Tlb.rpn
                  ~inhibited:e.Tlb.inhibited ~writable:e.Tlb.writable
              in
              (match (d_a, d_b) with
              | None, -1 -> true
              | Some old, v -> old.Tlb.vpn = v
              | None, _ -> false)
          | Lookup vpn -> opt_entry_eq (Tlb.lookup a vpn) (Tlb.lookup b vpn)
          | Invalidate vpn ->
              Tlb.invalidate_page a vpn;
              Tlb.invalidate_page b vpn;
              true)
        ops)

(* The slot accessors must expose exactly what the entry wrappers see. *)
let test_slot_accessors () =
  let t = Tlb.create ~sets:4 ~ways:2 () in
  ignore (Tlb.insert_flat t ~vpn:9 ~rpn:77 ~inhibited:true ~writable:false : int);
  let i = Tlb.peek_slot t 9 in
  Alcotest.(check bool) "hit" true (i >= 0);
  Alcotest.(check int) "vpn" 9 (Tlb.slot_vpn t i);
  Alcotest.(check int) "rpn" 77 (Tlb.slot_rpn t i);
  Alcotest.(check bool) "inhibited" true (Tlb.slot_inhibited t i);
  Alcotest.(check bool) "writable" false (Tlb.slot_writable t i);
  match Tlb.peek t 9 with
  | Some e ->
      Alcotest.(check bool) "wrapper agrees" true
        (entry_eq e
           { Tlb.vpn = 9; rpn = 77; inhibited = true; writable = false })
  | None -> Alcotest.fail "peek lost the entry"

(* --- htab tag probe vs Pte.matches ---------------------------------- *)

let no_ref (_ : Addr.pa) = ()

(* The tag probe must reproduce [Pte.matches] exactly, including its
   behaviour on over-masked search keys: [write_entry] stores masked
   fields, so a VSID above 24 bits or a page index above 16 bits can
   never match a stored entry. *)
let test_htab_tag_exactness () =
  let h = Htab.create ~n_ptes:64 () in
  let rng = Rng.create ~seed:7 in
  let vsid = 0x123456 and page_index = 0xABC in
  ignore
    (Htab.insert h ~rng ~vsid ~page_index ~rpn:0x42 ~wimg:Pte.wimg_default ~protection:Pte.Read_write
       ~on_ref:no_ref
      : Htab.insert_outcome);
  let found ~vsid ~page_index =
    Htab.search h ~vsid ~page_index ~on_ref:no_ref <> None
  in
  Alcotest.(check bool) "exact key hits" true (found ~vsid ~page_index);
  Alcotest.(check bool) "over-masked vsid misses" false
    (found ~vsid:(vsid lor 0x1000000) ~page_index);
  Alcotest.(check bool) "over-masked page index misses" false
    (found ~vsid ~page_index:(page_index lor 0x10000));
  Alcotest.(check bool) "wrong vsid misses" false
    (found ~vsid:(vsid lxor 1) ~page_index)

(* Random inserts: the probe-by-tag search must agree with a linear
   [Pte.matches] scan over the whole table. *)
let prop_htab_search_matches_linear_scan =
  QCheck.Test.make ~name:"htab tag search == Pte.matches scan" ~count:100
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (v, p) -> Printf.sprintf "(%d,%d)" v p) l))
        (Gen.list_size (Gen.int_range 1 40)
           (Gen.pair (Gen.int_bound 0xFFFF) (Gen.int_bound 0xFF))))
    (fun keys ->
      let h = Htab.create ~n_ptes:64 () in
      let rng = Rng.create ~seed:11 in
      List.iter
        (fun (vsid, page_index) ->
          ignore
            (Htab.insert h ~rng ~vsid ~page_index ~rpn:1 ~wimg:Pte.wimg_default ~protection:Pte.Read_only
               ~on_ref:no_ref
              : Htab.insert_outcome))
        keys;
      List.for_all
        (fun (vsid, page_index) ->
          let by_tag = Htab.search h ~vsid ~page_index ~on_ref:no_ref in
          let by_scan = ref None in
          Htab.iter_valid h ~f:(fun pte ->
              if Pte.matches pte ~vsid ~page_index && !by_scan = None then
                by_scan := Some pte);
          match (by_tag, !by_scan) with
          | None, None -> true
          | Some a, Some b ->
              a.Pte.vsid = b.Pte.vsid && a.Pte.page_index = b.Pte.page_index
          | _ -> false)
        keys)

(* --- cache scans vs a reference model -------------------------------- *)

module Ref_cache = struct
  type t = {
    sets : int;
    ways : int;
    tags : int option array;
    dirty : bool array;
    stamps : int array;
    mutable tick : int;
  }

  let create ~sets ~ways =
    { sets;
      ways;
      tags = Array.make (sets * ways) None;
      dirty = Array.make (sets * ways) false;
      stamps = Array.make (sets * ways) 0;
      tick = 0 }

  (* hit / miss(dirty writeback) in the old semantics *)
  let access t ~write pa =
    let line = pa lsr 5 in
    let base = line land (t.sets - 1) * t.ways in
    let hit = ref (-1) in
    for w = 0 to t.ways - 1 do
      if t.tags.(base + w) = Some line && !hit < 0 then hit := base + w
    done;
    t.tick <- t.tick + 1;
    if !hit >= 0 then begin
      t.stamps.(!hit) <- t.tick;
      if write then t.dirty.(!hit) <- true;
      `Hit
    end
    else begin
      let free = ref (-1) in
      let lru = ref max_int in
      let lru_way = ref 0 in
      for w = 0 to t.ways - 1 do
        if !free < 0 && t.tags.(base + w) = None then free := w;
        if t.stamps.(base + w) < !lru then begin
          lru := t.stamps.(base + w);
          lru_way := w
        end
      done;
      let i = base + if !free >= 0 then !free else !lru_way in
      let wb = t.tags.(i) <> None && t.dirty.(i) in
      t.tags.(i) <- Some line;
      t.dirty.(i) <- write;
      t.stamps.(i) <- t.tick;
      `Miss wb
    end
end

(* Drive a real cache and the reference over the same random stream and
   require the same hit/miss/writeback verdict at every step.  The three
   geometries cover the unrolled 4-way probe, the split 8-way probe and
   the generic fallback scan. *)
let prop_cache_matches_reference geometry_name ~bytes ~ways =
  QCheck.Test.make
    ~name:(Printf.sprintf "cache scans == reference model (%s)" geometry_name)
    ~count:60
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (pa, w) -> Printf.sprintf "%x%c" pa
                          (if w then 'w' else 'r')) l))
        (Gen.list_size (Gen.int_range 1 200)
           (Gen.pair (Gen.int_bound 0x7FFF) Gen.bool)))
    (fun stream ->
      let c = Cache.create ~bytes ~ways in
      let sets = bytes / Addr.line_size / ways in
      let r = Ref_cache.create ~sets ~ways in
      List.for_all
        (fun (pa, write) ->
          let got =
            Cache.access c ~source:Cache.User ~inhibited:false ~write pa
          in
          let want = Ref_cache.access r ~write pa in
          match (got, want) with
          | Cache.Hit, `Hit -> true
          | Cache.Miss { dirty_writeback }, `Miss wb -> dirty_writeback = wb
          | _ -> false)
        stream)

let suite =
  [ Alcotest.test_case "flat slot accessors" `Quick test_slot_accessors;
    Alcotest.test_case "htab tag exactness" `Quick test_htab_tag_exactness;
    QCheck_alcotest.to_alcotest prop_tlb_matches_reference;
    QCheck_alcotest.to_alcotest prop_insert_flat_matches_insert_replacing;
    QCheck_alcotest.to_alcotest prop_htab_search_matches_linear_scan;
    QCheck_alcotest.to_alcotest
      (prop_cache_matches_reference "32K 4-way" ~bytes:(32 * 1024) ~ways:4);
    QCheck_alcotest.to_alcotest
      (prop_cache_matches_reference "16K 8-way" ~bytes:(16 * 1024) ~ways:8);
    QCheck_alcotest.to_alcotest
      (prop_cache_matches_reference "768B 3-way" ~bytes:768 ~ways:3) ]
