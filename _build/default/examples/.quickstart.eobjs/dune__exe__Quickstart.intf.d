examples/quickstart.mli:
