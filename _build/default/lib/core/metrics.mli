(** Derived metrics: the ratios and rates the paper reports.

    Raw counters come from {!Ppc.Perf}; this module turns them into the
    quantities quoted in the text — TLB miss rates, htab hit rates on a
    TLB miss, the evict/reload ratio of §7, occupancy percentages, and
    cycle-to-time conversions. *)

open Ppc

val tlb_miss_rate : Perf.t -> float
(** Misses per lookup, instruction + data combined. *)

val htab_hit_rate : Perf.t -> float
(** "hit rates in the hash table on TLB misses" — hits / searches. *)

val evict_ratio : Perf.t -> float
(** "the ratio of hash table reloads to evicts (reloads that require a
    valid entry be replaced)": evicts / reloads. *)

val dcache_miss_rate : Perf.t -> float

val icache_miss_rate : Perf.t -> float

val idle_fraction : Perf.t -> float
(** Idle cycles / total cycles. *)

val wall_us : machine:Machine.t -> Perf.t -> float

val wall_s : machine:Machine.t -> Perf.t -> float

val occupancy_pct : occupancy:int -> capacity:int -> float

val pct_change : from_v:float -> to_v:float -> float
(** Percentage change, negative = reduction. *)

val speedup : from_v:float -> to_v:float -> float
(** [from_v /. to_v]: how many times faster the second value is (for
    latencies). *)
