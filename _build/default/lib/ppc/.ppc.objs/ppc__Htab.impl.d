lib/ppc/htab.ml: Addr Array List Pte Rng
