open Ppc
module Kernel = Kernel_sim.Kernel
module Mm = Kernel_sim.Mm
module Vfs = Kernel_sim.Vfs

type params = {
  jobs : int;
  compute_rounds : int;
  job_text_pages : int;
  job_data_pages : int;
  source_pages : int;
  header_pages : int;
}

let default_params =
  { jobs = 24;
    compute_rounds = 16;
    job_text_pages = 80;
    job_data_pages = 320;
    source_pages = 32;
    header_pages = 64 }

let run ?(probe = fun (_ : Kernel.t) -> ()) k ~params:p =
  let rng = Kernel.rng k in
  let headers =
    match Vfs.lookup (Kernel.vfs k) "headers" with
    | Some f -> f
    | None ->
        Vfs.create_file (Kernel.vfs k) ~name:"headers" ~pages:p.header_pages
  in
  let driver = Kernel.spawn k ~text_pages:24 ~data_pages:16 ~stack_pages:4 () in
  Kernel.switch_to k driver;
  Kernel.user_run k ~instrs:4000;
  for job = 0 to p.jobs - 1 do
    (* make: parse rules, decide what to build *)
    Kernel.switch_to k driver;
    Kernel.user_run k ~instrs:2000;
    (* fork + exec cc *)
    let cc = Kernel.sys_fork k in
    Kernel.switch_to k cc;
    Kernel.sys_exec k ~text_pages:p.job_text_pages
      ~data_pages:p.job_data_pages ~stack_pages:8;
    let data_ea =
      Mm.user_text_base + (p.job_text_pages lsl Addr.page_shift)
    in
    let gen =
      Refgen.create ~rng ~base_ea:data_ea ~pages:p.job_data_pages
        ~hot_fraction:0.5 ~locality:0.85 ()
    in
    (* the private source file is always cold (disk waits -> idle task);
       the shared headers are warm after the first job *)
    let source =
      (* named by pid so repeated compiles on one kernel never collide *)
      Vfs.create_file (Kernel.vfs k)
        ~name:(Printf.sprintf "src-%d-%d" job cc.Kernel_sim.Task.pid)
        ~pages:p.source_pages
    in
    let buf = Kernel.sys_mmap k ~pages:8 ~writable:true in
    let read_in file ~from ~pages =
      let chunk = 8 in
      let rec loop from remaining =
        if remaining > 0 then begin
          let n = min chunk remaining in
          Kernel.sys_file_read k file ~from_page:from ~pages:n ~buf;
          loop (from + n) (remaining - n)
        end
      in
      loop from pages
    in
    read_in headers ~from:0 ~pages:p.header_pages;
    (* compute phases: parse/optimize/emit over the working sets, with
       the source file read incrementally as parsing proceeds — so disk
       waits (idle-task windows) interleave with the hot working set,
       like a real compile under make *)
    for round = 0 to p.compute_rounds - 1 do
      let src_page = round * p.source_pages / p.compute_rounds in
      let src_next = (round + 1) * p.source_pages / p.compute_rounds in
      if src_next > src_page then
        read_in source ~from:src_page ~pages:(src_next - src_page);
      Kernel.user_run k ~instrs:3000;
      (* Each page holds one hot record at a fixed (per-page) pair of
         lines: page-level pressure exceeds the TLB while the
         cache-resident line set stays small, as in a real compiler's
         symbol tables. *)
      for _ = 1 to 300 do
        let ea = Refgen.next gen in
        let epn = Addr.epn ea in
        let line = epn * 3 land 0x7E in
        let base = Addr.page_base ea + (line * Addr.line_size / 2) in
        let kind = if Rng.int rng 4 = 0 then Mmu.Store else Mmu.Load in
        Kernel.touch k kind base;
        Kernel.touch k kind (base + Addr.line_size)
      done;
      (* the allocator grows and shrinks the arena as phases change:
         freshly faulted demand-zero pages are written nearly whole, the
         traffic §9's page pre-zeroing serves *)
      if round mod 4 = 3 then begin
        let arena_pages = if round mod 8 = 7 then 48 else 16 in
        let arena = Kernel.sys_mmap k ~pages:arena_pages ~writable:true in
        for i = 0 to 11 do
          let page = arena + (i lsl Addr.page_shift) in
          for line = 0 to 15 do
            Kernel.touch k Mmu.Store (page + (line * Addr.line_size))
          done
        done;
        Kernel.sys_munmap k ~ea:arena ~pages:arena_pages
      end;
      (* sample point for experiments: mid-compute, away from the
         arena's range flushes *)
      if round = p.compute_rounds - 2 then probe k;
      (* make's supervision: a brief switch to the driver and back *)
      if round mod 4 = 1 then begin
        Kernel.switch_to k driver;
        Kernel.user_run k ~instrs:400;
        Kernel.switch_to k cc
      end
    done;
    (* emit the object: fill freshly allocated output pages end to end,
       then write them to the object file through the page cache *)
    let objbuf = Kernel.sys_mmap k ~pages:24 ~writable:true in
    for i = 0 to 23 do
      let page = objbuf + (i lsl Addr.page_shift) in
      for line = 0 to 63 do
        Kernel.touch k Mmu.Store (page + (line * Addr.line_size))
      done
    done;
    let objfile =
      Vfs.create_file (Kernel.vfs k)
        ~name:(Printf.sprintf "obj-%d-%d" job cc.Kernel_sim.Task.pid)
        ~pages:24
    in
    Kernel.sys_file_write k objfile ~from_page:0 ~pages:24 ~buf:objbuf;
    Kernel.sys_munmap k ~ea:objbuf ~pages:24;
    Vfs.evict (Kernel.vfs k) objfile;
    Kernel.sys_munmap k ~ea:buf ~pages:8;
    Vfs.evict (Kernel.vfs k) source;
    Kernel.sys_exit k
  done;
  Kernel.switch_to k driver;
  Kernel.user_run k ~instrs:2000;
  Kernel.sys_exit k

type result = {
  perf : Perf.t;
  wall_us : float;
  busy_us : float;
}

let measure ~machine ~policy ?(params = default_params) ?(seed = 42) () =
  let k = Kernel.boot ~machine ~policy ~seed () in
  let perf = Measure.perf k (fun () -> run k ~params) in
  let mhz = machine.Machine.mhz in
  { perf;
    wall_us = Cost.us_of_cycles ~mhz perf.Perf.cycles;
    busy_us = Cost.us_of_cycles ~mhz (Perf.busy_cycles perf) }
