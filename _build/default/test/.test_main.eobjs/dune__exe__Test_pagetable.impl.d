test/test_pagetable.ml: Addr Alcotest Array Gen Hashtbl Kernel_sim List Ppc QCheck QCheck_alcotest
