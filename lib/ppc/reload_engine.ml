type style =
  | Hw_search
  | Sw_htab
  | Sw_direct

let all_styles = [ Hw_search; Sw_htab; Sw_direct ]

let style_name = function
  | Hw_search -> "hw-search"
  | Sw_htab -> "sw-htab"
  | Sw_direct -> "sw-direct"

type costs = {
  entry_stall_cycles : int;
  handler_on_entry : bool;
  hash_setup_instr : int;
  software_search : bool;
  miss_trap_cycles : int;
  handler_on_miss : bool;
}

let cost_table =
  [ ( Hw_search,
      { entry_stall_cycles = Cost.hw_search_overhead_cycles;
        handler_on_entry = false;
        hash_setup_instr = 0;
        software_search = false;
        miss_trap_cycles = Cost.htab_miss_trap_cycles;
        handler_on_miss = true } );
    ( Sw_htab,
      { entry_stall_cycles = Cost.tlb_miss_trap_cycles;
        handler_on_entry = true;
        hash_setup_instr = Cost.sw_hash_setup_instr;
        software_search = true;
        miss_trap_cycles = 0;
        handler_on_miss = false } );
    ( Sw_direct,
      { entry_stall_cycles = Cost.tlb_miss_trap_cycles;
        handler_on_entry = true;
        hash_setup_instr = 0;
        software_search = false;
        miss_trap_cycles = 0;
        handler_on_miss = false } ) ]

let costs_of style = List.assoc style cost_table

type t = {
  e_style : style;
  e_costs : costs;
}

let of_style style = { e_style = style; e_costs = costs_of style }

let select ~machine ~use_htab =
  of_style
    (match (machine.Machine.reload, use_htab) with
    | Machine.Hardware_search, _ -> Hw_search
    | Machine.Software_trap, true -> Sw_htab
    | Machine.Software_trap, false -> Sw_direct)

let style t = t.e_style
let costs t = t.e_costs

let uses_htab t = t.e_style <> Sw_direct

let describe t =
  Printf.sprintf "%s (%s)" (style_name t.e_style)
    (if uses_htab t then "htab" else "direct page-table walk")
