type t = {
  idx : int;
  mutable level : int;
  mutable written : int;
  mutable read_total : int;
}

let capacity = 4096

let create ~index = { idx = index; level = 0; written = 0; read_total = 0 }

let index t = t.idx
let level t = t.level
let space t = capacity - t.level

let write t ~bytes =
  let n = min bytes (space t) in
  t.level <- t.level + n;
  t.written <- t.written + n;
  n

let read t ~bytes =
  let n = min bytes t.level in
  t.level <- t.level - n;
  t.read_total <- t.read_total + n;
  n

let total_written t = t.written
let total_read t = t.read_total
