(** Simulator throughput as a product: bechamel micros over the hot
    paths ([Mmu.access] warm hit, TLB-miss reload, context switch), the
    committed [BENCH_throughput.json] trajectory document, and the
    one-sided regression gate behind [mmu_sim check --bench].

    Unlike everything else in the repo these numbers measure the
    {e simulator's} wall clock, not the simulated machine's, so they
    are not deterministic per seed.  The document therefore keeps an
    append-only history of measurements (the trajectory) and the gate
    compares fresh numbers against the {e last} entry with a generous
    relative band — see docs/PERFORMANCE.md for how to run, read and
    re-baseline it. *)

val schema : string
(** ["mmu-tricks/bench-v1"]. *)

val default_tolerance : float
(** Gate band when the document does not carry a ["tolerance"] field
    (0.6: the gate trips when a micro drops below 40% of the committed
    ops/sec — wide enough for shared-CI host variance, tight enough for
    the "hot path grew its allocations back" regression class). *)

(** One measured micro. *)
type result = {
  r_name : string;  (** "warm-access", "tlb-miss-reload", "context-switch" *)
  r_what : string;  (** what one op drives *)
  r_ns_per_op : float;
  r_ops_per_sec : float;
  r_translations_per_op : int;
      (** exact [Mmu] translations per op; 0 when the micro is not a
          translation micro (context switch) *)
  r_translations_per_sec : float;  (** 0 when not a translation micro *)
}

val miss_pages : int
(** Pages the TLB-miss micro cycles over (512 — more than any modeled
    TLB holds, so every op misses). *)

val run :
  ?quota_s:float -> machine:Ppc.Machine.t -> seed:int -> unit -> result list
(** Boot fresh kernels and measure every micro ([quota_s] of bechamel
    sampling each, default 0.5).  Results come back in micro order. *)

(** {1 The trajectory document} *)

type entry = {
  e_label : string;  (** what changed, e.g. "flat hot path (PR 6)" *)
  e_recorded : string;  (** free text: date / commit context *)
  e_results : result list;
}

type doc = {
  b_machine : string;  (** {!Ppc.Machine.slug} of the measured model *)
  b_seed : int;
  b_tolerance : float;
  b_history : entry list;  (** oldest first; the last entry is gated on *)
}

val doc_to_json : doc -> Json.t
val doc_of_json : Json.t -> (doc, string) Stdlib.result

val micros_json : result list -> Json.t
(** Just the measured micros as a JSON list — what [bench --json]
    embeds in the results document under ["micros"]. *)

val load : string -> (doc, string) Stdlib.result
val save : string -> doc -> unit

val validate_history : doc -> (unit, string) Stdlib.result
(** Semantic shape check over every committed history entry: each must
    carry at least one micro, every micro a non-empty name and finite,
    positive [ns_per_op]/[ops_per_sec].  The error names the offending
    entry's index (["history[3]: ..."]) so a corrupt trajectory is
    rejected before [--append] extends it. *)

(** {1 The gate} *)

(** One micro's verdict against the last committed entry. *)
type verdict = {
  v_name : string;
  v_committed_ops : float;
  v_measured_ops : float;
  v_ratio : float;  (** measured / committed; < 1 is a slowdown *)
  v_floor : float;  (** pass floor: [1 - tolerance] *)
  v_ok : bool;
}

val gate : ?tolerance:float -> doc -> result list -> verdict list
(** Compare fresh measurements against the document's last history
    entry, one-sided: a micro fails only when its measured ops/sec
    falls below [committed * (1 - tolerance)].  Improvements always
    pass (append a new history entry to record them).  Micros present
    in only one of the two sides are skipped. *)

val gate_ok : verdict list -> bool
