examples/idle_tricks.ml: Addr Kernel_sim Machine Mmu Mmu_tricks Perf Ppc Printf Workloads
