lib/kernel_sim/pipe.ml:
