(** 32-bit PowerPC address arithmetic.

    The 32-bit PowerPC translation pipeline (Figure 1 of the paper) splits a
    32-bit {e effective address} (EA) into a 4-bit segment-register index, a
    16-bit page index and a 12-bit byte offset.  The segment register
    supplies a 24-bit {e virtual segment identifier} (VSID); VSID and page
    index concatenate into a 52-bit {e virtual address}, whose page part we
    call the {e virtual page number} (VPN, 40 bits).  Translation produces a
    32-bit {e physical address} made of a 20-bit physical page number (RPN)
    and the unchanged byte offset.

    All addresses are plain OCaml [int]s (63-bit), masked to their
    architectural width.  This module is pure arithmetic with no state. *)

type ea = int
(** 32-bit effective (program) address. *)

type pa = int
(** 32-bit physical address. *)

type vpn = int
(** 40-bit virtual page number: [(vsid lsl 16) lor page_index]. *)

val page_shift : int
(** 12: pages are 4 KiB. *)

val page_size : int
(** 4096 bytes. *)

val line_shift : int
(** 5: cache lines are 32 bytes on the 603 and 604. *)

val line_size : int
(** 32 bytes. *)

val ea_mask : int
(** [0xFFFFFFFF] — all effective/physical addresses fit this mask. *)

val sr_index : ea -> int
(** [sr_index ea] is the 4-bit segment-register index (top nibble). *)

val page_index : ea -> int
(** [page_index ea] is the 16-bit page index within the segment. *)

val page_offset : ea -> int
(** [page_offset ea] is the 12-bit byte offset within the page. *)

val page_base : ea -> ea
(** [page_base ea] clears the byte offset. *)

val epn : ea -> int
(** [epn ea] is the 20-bit effective page number ([ea lsr 12]). *)

val vpn_of : vsid:int -> ea:ea -> vpn
(** [vpn_of ~vsid ~ea] combines the segment's VSID with the EA's page
    index:[(vsid lsl 16) lor page_index ea]. *)

val vsid_of_vpn : vpn -> int
(** [vsid_of_vpn vpn] recovers the 24-bit VSID. *)

val page_index_of_vpn : vpn -> int
(** [page_index_of_vpn vpn] recovers the 16-bit page index. *)

val pa_of : rpn:int -> ea:ea -> pa
(** [pa_of ~rpn ~ea] assembles a physical address from a 20-bit real page
    number and the EA's byte offset. *)

val rpn_of_pa : pa -> int
(** [rpn_of_pa pa] is the 20-bit physical page number. *)

val line_index : pa -> int
(** [line_index pa] is the cache-line number ([pa lsr 5]). *)

val is_page_aligned : ea -> bool
(** [is_page_aligned a] holds when [a] is a multiple of the page size. *)

val round_up_pages : int -> int
(** [round_up_pages bytes] is the number of pages covering [bytes]. *)

val pp_ea : Format.formatter -> ea -> unit
(** Hexadecimal printer ([0x%08x]). *)
