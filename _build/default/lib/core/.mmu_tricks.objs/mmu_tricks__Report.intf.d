lib/core/report.mli:
