(** Physical page-frame allocator.

    Manages the 32 MB of RAM as 4 KB frames.  The low [reserved] region
    (kernel image, htab, vectors) is never allocated.  Allocation is
    LIFO (a freed frame is reused first), which is what makes the
    pre-zeroed-page list of §9 interesting: without it, a hot frame keeps
    cycling through [get_free_page] and must be re-cleared every time. *)

type t

val create : ram_bytes:int -> reserved_bytes:int -> t
(** [create ~ram_bytes ~reserved_bytes] builds an allocator over
    [ram_bytes] with the first [reserved_bytes] pinned. *)

val total_frames : t -> int
(** All frames, including reserved ones. *)

val reserved_frames : t -> int

val free_frames : t -> int
(** Currently allocatable frames. *)

val alloc : t -> int option
(** [alloc t] takes a frame (returns its RPN), or [None] when memory is
    exhausted. *)

val free : t -> int -> unit
(** [free t rpn] returns a frame.
    @raise Invalid_argument on a reserved, out-of-range or already-free
    frame (double free). *)

val is_allocated : t -> int -> bool
(** [is_allocated t rpn] — is this frame currently handed out (reserved
    frames count as allocated)? *)
