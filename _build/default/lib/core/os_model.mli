(** Comparative OS personalities for Table 3.

    The paper compares Linux/PPC against Apple's Mach-based Rhapsody 5.0
    and MkLinux and IBM's AIX on a 133 MHz 604.  We cannot run those
    systems, so each is modeled as a {e personality}: the same simulated
    hardware and the same benchmark loops, plus structural path costs for
    what those kernels do differently —

    - {b Mach-based systems} (Rhapsody, MkLinux): syscall service involves
      the microkernel plus a server (BSD in-kernel for Rhapsody, the
      Linux single-server for MkLinux), so every kernel operation carries
      IPC/message overhead, context switches run the full Mach
      thread/continuation machinery, and pipe data is copied through
      messages;
    - {b AIX}: a monolithic kernel with heavier-weight (but not
      message-passing) paths than optimized Linux/PPC.

    The per-personality constants are calibrated against the paper's own
    Table 3 — the experiment this module reproduces is the {e relative}
    claim (a reasonably efficient monolithic kernel is 4-10x faster than
    the Mach systems and ~2x faster than AIX, and the unoptimized
    Linux/PPC started in AIX's league).  See DESIGN.md §2 for the
    substitution rationale. *)

open Ppc
module Policy = Kernel_sim.Policy

type personality = {
  p_name : string;
  p_policy : Policy.t;
      (** MMU/kernel policy of the substrate (all comparison systems
          manage the same PPC MMU) *)
  extra_syscall_instr : int;
      (** added to every syscall entry/exit (trap emulation, RPC stubs) *)
  extra_switch_instr : int;
      (** added to every context switch (Mach thread machinery) *)
  extra_pipe_op_instr : int;
      (** added to every pipe read/write (message construction, server
          dispatch) *)
  extra_copy_cycles_per_word : int;
      (** added per 4-byte word of pipe data (message double-copies) *)
}

val linux_opt : personality
val linux_unopt : personality
val rhapsody : personality
val mklinux : personality
val aix : personality

val all : personality list
(** In Table 3 column order. *)

(** One measured row of Table 3. *)
type row = {
  r_name : string;
  null_us : float;
  ctxsw_us : float;
  pipe_lat_us : float;
  pipe_bw_mbs : float;
}

val measure_row :
  machine:Machine.t -> personality -> ?seed:int -> unit -> row

val paper_row : personality -> row
(** The values the paper reports for this system (133 MHz 604; AIX
    measured on a 133 MHz 604 43P). *)

val table3_machine : Machine.t
(** The PowerMac 9500's 133 MHz 604. *)
