module Policy = Kernel_sim.Policy
module Vsid_alloc = Kernel_sim.Vsid_alloc

let baseline = Policy.baseline
let optimized = Policy.optimized

let baseline_with_bat = { baseline with Policy.bat_kernel_mapping = true }

let baseline_with_scatter_mult m =
  { baseline with Policy.vsid_multiplier = m }

let baseline_with_scatter =
  baseline_with_scatter_mult Vsid_alloc.scatter_multiplier

let baseline_with_fast_reload = { baseline with Policy.fast_reload = true }

let optimized_no_htab = { optimized with Policy.use_htab = false }

let optimized_precise_flush =
  { optimized with
    Policy.vsid_source = Vsid_alloc.Pid_based;
    lazy_flush = false;
    flush_cutoff = None;
    idle_zombie_reclaim = false }

let optimized_no_reclaim =
  { optimized with Policy.idle_zombie_reclaim = false }

let optimized_with_cutoff cutoff =
  { optimized with Policy.flush_cutoff = cutoff }

let optimized_pt_uncached =
  { optimized with Policy.cache_inhibit_pagetables = true }

let optimized_fb_bat = { optimized with Policy.bat_framebuffer = true }

let optimized_idle_lock = { optimized with Policy.idle_cache_lock = true }

let optimized_preload = { optimized with Policy.cache_preload = true }

let second_chance_no_reclaim =
  { optimized_no_reclaim with Policy.htab_replacement = `Second_chance }

let zombie_aware_no_reclaim =
  { optimized_no_reclaim with Policy.htab_replacement = `Zombie_aware }

(* §9 presets start from a kernel that is otherwise optimized so the
   clearing effect is isolated, as the paper's experiment was. *)
let clearing_off =
  { optimized with
    Policy.idle_clearing = Policy.Clear_off;
    idle_clear_list = false }

let clearing_cached_list =
  { optimized with
    Policy.idle_clearing = Policy.Clear_cached;
    idle_clear_list = true }

let clearing_uncached_nolist =
  { optimized with
    Policy.idle_clearing = Policy.Clear_uncached;
    idle_clear_list = false }

let clearing_uncached_list =
  { optimized with
    Policy.idle_clearing = Policy.Clear_uncached;
    idle_clear_list = true }

let all_named =
  [ ("baseline", baseline);
    ("optimized", optimized);
    ("baseline+bat", baseline_with_bat);
    ("baseline+scatter", baseline_with_scatter);
    ("baseline+fast-reload", baseline_with_fast_reload);
    ("optimized-no-htab", optimized_no_htab);
    ("optimized-precise-flush", optimized_precise_flush);
    ("optimized-no-reclaim", optimized_no_reclaim);
    ("optimized-pt-uncached", optimized_pt_uncached);
    ("optimized+fb-bat", optimized_fb_bat);
    ("optimized+idle-lock", optimized_idle_lock);
    ("optimized+preload", optimized_preload);
    ("second-chance-no-reclaim", second_chance_no_reclaim);
    ("zombie-aware-no-reclaim", zombie_aware_no_reclaim);
    ("clearing-off", clearing_off);
    ("clearing-cached-list", clearing_cached_list);
    ("clearing-uncached-nolist", clearing_uncached_nolist);
    ("clearing-uncached-list", clearing_uncached_list) ]

let find name = List.assoc_opt name all_named
