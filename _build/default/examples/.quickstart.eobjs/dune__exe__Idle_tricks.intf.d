examples/idle_tricks.mli:
