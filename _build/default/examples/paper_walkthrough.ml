(* The paper, section by section, measured live: a narrated tour of every
   optimization using the library API (~1 minute of wall clock).

     dune exec examples/paper_walkthrough.exe *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Config = Mmu_tricks.Config
module System = Mmu_tricks.System
module Metrics = Mmu_tricks.Metrics
module Lmbench = Workloads.Lmbench

let say fmt = Printf.printf (fmt ^^ "\n%!")

let header s =
  print_newline ();
  say "%s" s;
  say "%s" (String.make (String.length s) '-')

(* §5.1 — the kernel's TLB footprint, with and without BATs. *)
let sec51 () =
  header "sec 5.1 - Reducing the OS TLB footprint";
  let share policy =
    let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed:1 () in
    let t = Kernel.spawn k () in
    Kernel.switch_to k t;
    for _ = 1 to 40 do
      Kernel.sys_null k
    done;
    Kernel.user_run k ~instrs:2000;
    (Kernel.kernel_tlb_entries k, Mmu.tlb_occupancy (Kernel.mmu k))
  in
  let kb, tb = share Policy.baseline in
  let ko, to_ = share Policy.optimized in
  say "after a burst of syscalls, kernel translations sit in the TLB:";
  say "  PTE-mapped kernel: %d of %d valid entries are the kernel's" kb tb;
  say "  BAT-mapped kernel: %d of %d (the BAT bypasses the TLB entirely)"
    ko to_

(* §5.2 — hash-table hot spots. *)
let sec52 () =
  header "sec 5.2 - VSID scatter and the hashed page table";
  let hot mult =
    let s = Mmu_tricks.Tuning.score_multiplier ~procs:12 ~pages:200 ~seed:1 mult in
    (s.Mmu_tricks.Tuning.full_ptegs, s.Mmu_tricks.Tuning.evictions)
  in
  let f1, e1 = hot 1 and f897, e897 = hot 897 in
  say "12 identical processes, 200 pages each, hashed into 2048 PTEGs:";
  say "  naive VSIDs (pid):   %4d full PTEGs, %5d overflow evictions" f1 e1;
  say "  scattered (x897):    %4d full PTEGs, %5d overflow evictions" f897
    e897

(* §6.1/6.2 — reload paths. *)
let sec6 () =
  header "sec 6 - The cost of a TLB miss";
  let miss_cost machine knob_htab fast =
    let policy =
      { Policy.optimized with Policy.use_htab = knob_htab; fast_reload = fast }
    in
    let k = Kernel.boot ~machine ~policy ~seed:1 () in
    let t = Kernel.spawn k ~data_pages:200 () in
    Kernel.switch_to k t;
    let data = Mm.user_text_base + (16 * Addr.page_size) in
    for i = 0 to 199 do
      Kernel.touch k Mmu.Store (data + (i * Addr.page_size))
    done;
    (* force re-walks: invalidate the TLBs, touch again *)
    Mmu.invalidate_tlbs (Kernel.mmu k);
    let _, d =
      System.measure k (fun () ->
          for i = 0 to 199 do
            Kernel.touch k Mmu.Load (data + (i * Addr.page_size))
          done)
    in
    float_of_int d.Perf.cycles /. 200.0
  in
  say "cycles per re-touch after a full TLB flush (200 warm pages):";
  say "  603, htab emulation, C handlers:   %5.0f"
    (miss_cost Machine.ppc603_133 true false);
  say "  603, htab emulation, asm handlers: %5.0f"
    (miss_cost Machine.ppc603_133 true true);
  say "  603, direct PTE walk (sec 6.2):    %5.0f"
    (miss_cost Machine.ppc603_133 false true);
  say "  604, hardware search:              %5.0f"
    (miss_cost Machine.ppc604_185 true true)

(* §7 — lazy flushing and zombies. *)
let sec7 () =
  header "sec 7 - Lazy flushing, zombies, and the idle task";
  let k =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:1 ()
  in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let ea = Kernel.sys_mmap k ~pages:64 ~writable:true in
  for i = 0 to 63 do
    Kernel.touch k Mmu.Store (ea + (i * Addr.page_size))
  done;
  let live0, _ = Kernel.htab_live_and_zombie k in
  Kernel.sys_munmap k ~ea ~pages:64;
  let live1, z1 = Kernel.htab_live_and_zombie k in
  Kernel.idle_for k ~cycles:3_000_000;
  let _, z2 = Kernel.htab_live_and_zombie k in
  say "64 pages touched: %d live htab entries" live0;
  say "munmap (lazy, above the 20-page cutoff): %d live, %d zombies" live1 z1;
  say "after the idle task sweeps: %d zombies remain" z2

(* §9 — page clearing. *)
let sec9 () =
  header "sec 9 - Idle-task page clearing";
  let r policy =
    Workloads.Kbuild.measure ~machine:Machine.ppc604_185 ~policy
      ~params:{ Workloads.Kbuild.default_params with Workloads.Kbuild.jobs = 6 }
      ~seed:1 ()
  in
  let off = r Config.clearing_off in
  let win = r Config.clearing_uncached_list in
  say "a 6-job compile, busy time:";
  say "  no idle clearing:          %5.1f ms"
    (off.Workloads.Kbuild.busy_us /. 1000.);
  say "  uncached clearing + list:  %5.1f ms  (%d pages arrived pre-zeroed)"
    (win.Workloads.Kbuild.busy_us /. 1000.)
    win.Workloads.Kbuild.perf.Perf.prezeroed_hits

(* §11 — the bottom line. *)
let sec11 () =
  header "sec 11 - The bottom line (133MHz 604)";
  let null policy =
    Lmbench.null_syscall_us
      (Kernel.boot ~machine:Machine.ppc604_133 ~policy ~seed:1 ())
  in
  say "null syscall: %.1f us unoptimized -> %.1f us optimized (paper: 18 -> 2)"
    (null Policy.baseline) (null Policy.optimized)

let () =
  say "Optimizing the Idle Task and Other MMU Tricks (OSDI '99),";
  say "measured on the simulator. Sections follow the paper.";
  sec51 ();
  sec52 ();
  sec6 ();
  sec7 ();
  sec9 ();
  sec11 ();
  print_newline ();
  say "Full tables: dune exec bench/main.exe   (see EXPERIMENTS.md)"
