(* mmu_sim: command-line driver for the simulator.

   Subcommands:
     lmbench   run the LmBench-style suite on a machine/policy
     kbuild    run the synthetic kernel compile and dump counters
     table3    run the Table 3 OS comparison
     policies  list the named policy presets
     machines  list the machine descriptions *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Config = Mmu_tricks.Config
module Metrics = Mmu_tricks.Metrics
module Report = Mmu_tricks.Report
module System = Mmu_tricks.System
module Os_model = Mmu_tricks.Os_model
module Lmbench = Workloads.Lmbench
module Kbuild = Workloads.Kbuild
module Experiments = Mmu_tricks.Experiments

let machines =
  [ ("601-80", Machine.ppc601_80);
    ("603-133", Machine.ppc603_133);
    ("603-180", Machine.ppc603_180);
    ("604-133", Machine.ppc604_133);
    ("604-185", Machine.ppc604_185);
    ("604-200", Machine.ppc604_200);
    ("750-233", Machine.ppc750_233) ]

(* --- cmdliner terms --------------------------------------------------- *)

open Cmdliner

let machine_term =
  Arg.(
    value
    & opt (enum machines) Machine.ppc604_185
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Machine model: 601-80, 603-133, 603-180, 604-133, 604-185, 604-200, 750-233.")

let policy_term =
  Arg.(
    value
    & opt (enum Config.all_named) Policy.optimized
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:"Named policy preset (see $(b,mmu_sim policies)).")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* --- subcommands ------------------------------------------------------- *)

let lmbench machine policy seed =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let s = Lmbench.run ~machine ~policy ~seed () in
  Report.table
    ~header:[ "benchmark"; "value" ]
    ~rows:
      [ [ "null syscall (us)"; Report.fmt_us s.Lmbench.null_us ];
        [ "context switch 2p (us)"; Report.fmt_us s.Lmbench.ctxsw2_us ];
        [ "context switch 8p (us)"; Report.fmt_us s.Lmbench.ctxsw8_us ];
        [ "pipe latency (us)"; Report.fmt_us s.Lmbench.pipe_lat_us ];
        [ "pipe bandwidth (MB/s)"; Report.fmt_mbs s.Lmbench.pipe_bw_mbs ];
        [ "file reread (MB/s)"; Report.fmt_mbs s.Lmbench.file_reread_mbs ];
        [ "mmap latency (us)"; Report.fmt_us s.Lmbench.mmap_lat_us ];
        [ "process start (ms)"; Report.fmt_ms s.Lmbench.pstart_ms ] ]

let kbuild machine policy seed jobs =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let params = { Kbuild.default_params with Kbuild.jobs } in
  let r = Kbuild.measure ~machine ~policy ~params ~seed () in
  let p = r.Kbuild.perf in
  Report.table
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "wall clock (ms)"; Report.fmt_ms (r.Kbuild.wall_us /. 1000.) ];
        [ "busy (ms)"; Report.fmt_ms (r.Kbuild.busy_us /. 1000.) ];
        [ "idle fraction"; Report.fmt_pct (100. *. Metrics.idle_fraction p) ];
        [ "TLB misses"; Report.fmt_int (Perf.tlb_misses p) ];
        [ "TLB miss rate"; Printf.sprintf "%.4f%%" (100. *. Metrics.tlb_miss_rate p) ];
        [ "htab hit rate"; Report.fmt_pct (100. *. Metrics.htab_hit_rate p) ];
        [ "htab evict ratio"; Report.fmt_pct (100. *. Metrics.evict_ratio p) ];
        [ "cache misses (I+D)"; Report.fmt_int (Perf.cache_misses p) ];
        [ "page faults"; Report.fmt_int p.Perf.page_faults ];
        [ "context switches"; Report.fmt_int p.Perf.context_switches ];
        [ "syscalls"; Report.fmt_int p.Perf.syscalls ];
        [ "zombies reclaimed"; Report.fmt_int p.Perf.zombies_reclaimed ];
        [ "pre-zeroed page hits"; Report.fmt_int p.Perf.prezeroed_hits ] ]

let multiuser machine policy seed rounds =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let module Mu = Workloads.Multiuser in
  let params = { Mu.default_params with Mu.rounds } in
  let r = Mu.measure ~machine ~policy ~params ~seed () in
  Report.table
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "busy (ms)"; Report.fmt_ms (r.Mu.busy_us /. 1000.) ];
        [ "wall (ms)"; Report.fmt_ms (r.Mu.wall_us /. 1000.) ];
        [ "keystroke latency (us)"; Report.fmt_us r.Mu.keystroke_us ];
        [ "utility start (us)"; Report.fmt_us r.Mu.utility_us ];
        [ "TLB misses"; Report.fmt_int (Perf.tlb_misses r.Mu.perf) ];
        [ "htab hit rate";
          Report.fmt_pct (100. *. Metrics.htab_hit_rate r.Mu.perf) ] ]

let xserver machine policy seed =
  Format.printf "machine: %a@.policy:  %s@.@." Machine.pp machine
    (Policy.describe policy);
  let module X = Workloads.Xserver in
  let r = X.measure ~machine ~policy ~seed () in
  Report.table
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "us per request"; Report.fmt_us r.X.us_per_round ];
        [ "TLB misses"; Report.fmt_int (Perf.tlb_misses r.X.perf) ];
        [ "page faults"; Report.fmt_int r.X.perf.Perf.page_faults ];
        [ "cache misses"; Report.fmt_int (Perf.cache_misses r.X.perf) ] ]

let table3 seed =
  let rows =
    List.map
      (fun p ->
        let m =
          Os_model.measure_row ~machine:Os_model.table3_machine p ~seed ()
        in
        let pr = Os_model.paper_row p in
        [ m.Os_model.r_name;
          Printf.sprintf "%s/%s" (Report.fmt_us m.Os_model.null_us)
            (Report.fmt_us pr.Os_model.null_us);
          Printf.sprintf "%s/%s" (Report.fmt_us m.Os_model.ctxsw_us)
            (Report.fmt_us pr.Os_model.ctxsw_us);
          Printf.sprintf "%s/%s" (Report.fmt_us m.Os_model.pipe_lat_us)
            (Report.fmt_us pr.Os_model.pipe_lat_us);
          Printf.sprintf "%s/%s" (Report.fmt_mbs m.Os_model.pipe_bw_mbs)
            (Report.fmt_mbs pr.Os_model.pipe_bw_mbs) ])
      Os_model.all
  in
  Report.table
    ~header:
      [ "OS (measured/paper)"; "null us"; "ctxsw us"; "pipe lat us";
        "pipe bw MB/s" ]
    ~rows

let experiment names seed csv =
  let known = List.map fst Experiments.all in
  List.iter
    (fun name ->
      match List.assoc_opt name Experiments.all with
      | Some f ->
          let t = f ?seed:(Some seed) () in
          if csv then print_string (Experiments.to_csv t)
          else Experiments.print t
      | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" name
            (String.concat ", " known))
    (if names = [] then known else names)

let tune_vsid seed =
  let scores =
    Mmu_tricks.Tuning.sweep ~seed Mmu_tricks.Tuning.default_candidates
  in
  Experiments.print (Mmu_tricks.Tuning.to_table scores)

let policies () =
  Report.table
    ~header:[ "name"; "flags" ]
    ~rows:
      (List.map
         (fun (name, p) -> [ name; Policy.describe p ])
         Config.all_named)

let machines_cmd () =
  Report.table
    ~header:[ "name"; "description" ]
    ~rows:
      (List.map
         (fun (name, m) -> [ name; Format.asprintf "%a" Machine.pp m ])
         machines)

(* --- wiring ------------------------------------------------------------ *)

let lmbench_cmd =
  Cmd.v
    (Cmd.info "lmbench" ~doc:"Run the LmBench-style microbenchmark suite.")
    Term.(const lmbench $ machine_term $ policy_term $ seed_term)

let kbuild_cmd =
  let jobs =
    Arg.(
      value & opt int 24
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of compile jobs.")
  in
  Cmd.v
    (Cmd.info "kbuild" ~doc:"Run the synthetic kernel-compile workload.")
    Term.(const kbuild $ machine_term $ policy_term $ seed_term $ jobs)

let multiuser_cmd =
  let rounds =
    Arg.(
      value & opt int 40
      & info [ "rounds" ] ~docv:"N" ~doc:"Interleaving rounds.")
  in
  Cmd.v
    (Cmd.info "multiuser" ~doc:"Run the multiuser development-day workload.")
    Term.(const multiuser $ machine_term $ policy_term $ seed_term $ rounds)

let xserver_cmd =
  Cmd.v
    (Cmd.info "xserver"
       ~doc:"Run the display-server workload (frame-buffer BAT scenario).")
    Term.(const xserver $ machine_term $ policy_term $ seed_term)

let table3_cmd =
  Cmd.v
    (Cmd.info "table3" ~doc:"Reproduce the Table 3 OS comparison.")
    Term.(const table3 $ seed_term)

let tune_vsid_cmd =
  Cmd.v
    (Cmd.info "tune-vsid"
       ~doc:"Sweep VSID scatter constants with the sec-5.2 histogram method.")
    Term.(const tune_vsid $ seed_term)

let experiment_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME"
           ~doc:"Experiment ids (T1..T3, E1..E16, EX1, EX2); all if none.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Run reproduction experiments (tables printed with paper values).")
    Term.(const experiment $ names $ seed_term $ csv)

let policies_cmd =
  Cmd.v
    (Cmd.info "policies" ~doc:"List named policy presets.")
    Term.(const policies $ const ())

let machines_list_cmd =
  Cmd.v
    (Cmd.info "machines" ~doc:"List machine models.")
    Term.(const machines_cmd $ const ())

let () =
  let doc = "PowerPC 603/604 MMU simulator (OSDI '99 MMU-tricks repro)" in
  let info = Cmd.info "mmu_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ lmbench_cmd; kbuild_cmd; multiuser_cmd; xserver_cmd; table3_cmd;
            experiment_cmd; tune_vsid_cmd; policies_cmd; machines_list_cmd ]))
