(** The kernel facade: boot, processes, syscalls, flushing, the idle task.

    A [Kernel.t] is one booted machine: MMU + caches + physical memory +
    the Linux-shaped policy machinery.  Workloads drive it through the
    syscall-level operations below; every operation charges its full cost
    (path instructions, kernel text fetches, kernel data references, MMU
    reloads, cache traffic) through the shared {!Ppc.Memsys}, so
    [Perf.cycles] is the simulated wall clock.

    Scheduling is either workload-driven (microbenchmarks call
    {!switch_to} where lmbench's processes would block and wake, exactly
    reproducing the kernel paths the paper's numbers traverse) or handed
    to {!Kernel_sim.Sched} for macro workloads with real blocking. *)

open Ppc

exception Segfault of Addr.ea
(** A user access with no backing vma (or a store to a read-only vma). *)

exception Kernel_fault of Addr.ea
(** An unresolvable kernel-space access — a simulator invariant
    violation, never expected. *)

type t

val boot :
  machine:Machine.t -> policy:Policy.t -> ?seed:int -> ?shadow:bool ->
  ?cpus:int -> unit -> t
(** Build and boot a system: reserve the kernel image, premap the linear
    kernel map, program BATs (policy permitting), install kernel segment
    registers and the MMU backing, and start the performance monitor.

    [?shadow] attaches a {!Ppc.Shadow} checker that cross-validates
    every translation against the reference MMU.  When omitted, the
    process-wide {!Ppc.Shadow.boot_enabled} default applies and any
    checker so created is {!Ppc.Shadow.register}ed for the driver to
    drain — the hook [experiment --shadow] uses to reach kernels booted
    deep inside the experiment registry.

    [?cpus] boots an SMP machine: per-CPU segment registers, BAT banks
    and TLBs behind one shared memory system and htab, with every CPU's
    kernel mapping programmed at boot.  When omitted, the process-wide
    {!set_boot_cpus} default (1) applies, and a kernel booted with more
    than one CPU registers itself for {!drain_smp_registered}.  At
    [cpus = 1] the boot — and everything after it — is byte-identical
    to the single-CPU kernel.
    @raise Invalid_argument when [cpus] is outside [1, 30]. *)

val set_boot_cpus : int -> unit
(** Arm the process-wide CPU-count default for subsequent boots that
    omit [?cpus] — the hook [experiment --cpus N] uses to reach kernels
    booted deep inside the experiment registry.
    @raise Invalid_argument outside [1, 30]. *)

val boot_cpus : unit -> int
(** The current boot default. *)

val set_smp_register : bool -> unit
(** Arm (or disarm) SMP registration for single-CPU boots too: with this
    on, {e every} subsequent boot registers for
    {!drain_smp_registered} — the hook [experiment] uses so the SMP
    observability object rides the baseline document even at
    [--cpus 1].  Off (the default), only [cpus > 1] boots register. *)

val drain_smp_registered : unit -> t list
(** Kernels booted with [cpus > 1] (or any count, under
    {!set_smp_register}) since the last drain, in boot order — the
    driver reads their shootdown/steal counters after a run. *)

(** {1 Accessors} *)

val machine : t -> Machine.t
val policy : t -> Policy.t
val perf : t -> Perf.t

val trace : t -> Trace.t
(** The event trace attached to this kernel's memory system — shorthand
    for [Memsys.trace (memsys t)]. *)

val profile : t -> Profile.t
(** The attribution profiler attached to this kernel's memory system —
    shorthand for [Memsys.profile (memsys t)].  Its TLB slot census
    classifies entries with {!Vsid_alloc.is_kernel}; like Trace, a
    profiler created while {!Ppc.Profile.set_boot_defaults} has armed
    process-wide profiling starts enabled and registered for the driver
    to drain. *)

val span : t -> Span.t
(** The request-span recorder attached to this kernel's memory system —
    shorthand for [Memsys.span (memsys t)].  The kernel reports syscall
    entry/exit windows, context switches and run slices into it; the
    workload drives the request lifecycle ({!Ppc.Span.request_begin},
    {!Ppc.Span.bind_pid}, {!Ppc.Span.request_end}).  Like Trace and
    Profile, a recorder created while {!Ppc.Span.set_boot_defaults} has
    armed process-wide spans starts enabled and registered for the
    driver to drain. *)

val recorder : t -> Recorder.t
(** The flight recorder attached to this kernel's memory system —
    shorthand for [Memsys.recorder (memsys t)].  Gauge sources (htab,
    TLB census, per-CPU miss slices, run queues, span percentiles) are
    installed by their owning subsystems at boot; like Trace and
    Profile, a recorder created while {!Ppc.Recorder.set_boot_defaults}
    has armed process-wide recording starts enabled and registered for
    the driver to drain. *)

val age_address_spaces : t -> contexts:int -> unit
(** Advance the VSID context counter as if [contexts] address spaces had
    already come and gone (see {!Vsid_alloc.age}) — the long-horizon
    aging shim that lets a feasible-length run cross the 20-bit context
    wrap.  O(1); charges nothing. *)

val memsys : t -> Memsys.t
val mmu : t -> Mmu.t

val shadow : t -> Shadow.t option
(** The attached shadow checker, if any. *)

val physmem : t -> Physmem.t
val vsid_alloc : t -> Vsid_alloc.t
val pagepool : t -> Pagepool.t
val vfs : t -> Vfs.t
val rng : t -> Rng.t

val cycles : t -> int
(** Simulated wall clock. *)

val us : t -> float
(** Wall clock in microseconds. *)

val tasks : t -> Task.t list

val current : t -> Task.t option
(** The {e active} CPU's current task. *)

(** {1 SMP} *)

val cpus : t -> int

val active_cpu : t -> int
(** The CPU whose point of view kernel paths currently execute from. *)

val current_on : t -> cpu:int -> Task.t option

val set_active_cpu : t -> int -> unit
(** Move the kernel's (and MMU's) point of view to another CPU.  Pure
    bookkeeping, no charge; a no-op when already there.  The scheduler
    calls this as it walks its per-CPU run queues.
    @raise Invalid_argument for an out-of-range CPU. *)

val note_work_steal : t -> unit
(** Charge and count one idle-steal migration ({!Kparams.steal_instr});
    called by the scheduler when an idle CPU pulls a runnable task from
    another CPU's queue. *)

(** {1 Processes} *)

val spawn :
  t ->
  ?text_pages:int ->
  ?data_pages:int ->
  ?stack_pages:int ->
  unit ->
  Task.t
(** Create a runnable process with the standard text/data/stack vmas.
    This is a workload {e setup} helper: it charges nothing (measured
    process creation goes through {!sys_fork}/{!sys_exec}). *)

val spawn_thread : t -> peer:Task.t -> Task.t
(** Create a thread-like task sharing [peer]'s address space (mm, page
    table, VSIDs) — the clone(CLONE_VM) shape a shared-mm server pool
    uses.  Charges a fork-entry path length but copies no pages.
    Threads must not {!sys_exit} (that would tear down the shared
    address space); park them instead. *)

val switch_to : t -> Task.t -> unit
(** Context switch: scheduler path, task-struct and stack traffic, user
    segment-register reload from the task's context id. *)

val sys_fork : t -> Task.t
(** Fork the current task: copy vmas and every mapped page into a new
    address space.  Returns the child (ready, not running). *)

val sys_exec :
  t -> text_pages:int -> data_pages:int -> stack_pages:int -> unit
(** Replace the current task's image: flush the whole context (lazy VSID
    reassignment or precise scrubbing per policy), release every frame,
    install fresh vmas.  Pages fault back in on demand. *)

val sys_exit : t -> unit
(** Terminate the current task: flush, release, retire its context id
    (under lazy flushing its VSIDs become zombies).  [current] becomes
    [None]. *)

(** {1 User execution} *)

val touch : t -> Mmu.access_kind -> Addr.ea -> unit
(** One user memory reference through the full MMU, servicing a demand
    fault if needed.
    @raise Segfault when no vma backs the address. *)

val user_run : t -> instrs:int -> unit
(** Execute [instrs] user instructions: cycle cost plus instruction
    fetches walking cyclically through the current task's text vma. *)

(** {1 Syscalls} *)

val sys_null : t -> unit
(** The null syscall: entry + dispatch + exit only. *)

val sys_mmap : t -> pages:int -> writable:bool -> Addr.ea
(** Create an anonymous mapping; flushes the range per policy (this is
    where the 3240 -> 41 microsecond mmap story of §7 lives). *)

val sys_munmap : t -> ea:Addr.ea -> pages:int -> unit
(** Remove the vma starting at [ea], free its frames (page-cache frames
    stay resident), flush the range.
    @raise Invalid_argument if no vma starts at [ea]. *)

val sys_mmap_file :
  t -> Vfs.file -> from_page:int -> pages:int -> writable:bool -> Addr.ea
(** Map file pages: faults install the page-cache frames directly (cold
    pages cost a disk wait), no zero-fill — what lat_mmap measures. *)

val sys_map_framebuffer : t -> pages:int -> Addr.ea
(** Map the frame-buffer aperture (a device window outside RAM) at
    {!Mm.framebuffer_base} for the current task — what an X server does
    with /dev/mem.  Without the [bat_framebuffer] policy, every touched
    fb page consumes a TLB entry like any other; with it, a data BAT
    dedicated to the aperture is switched in with the owning process
    (§5.1's proposal) and the fb stops competing for TLB space. *)

val sys_brk : t -> pages:int -> Addr.ea
(** Grow the current task's data segment by [pages] (the heap half of
    malloc; large allocations go through {!sys_mmap}).  Like any
    operation "mapping new addresses into a process", the grown range is
    range-flushed per policy.  Returns the new break address.
    @raise Invalid_argument if the task has no data vma or growth would
    collide with a neighbouring mapping. *)

val new_pipe : t -> Pipe.t

val sys_pipe_write : t -> Pipe.t -> buf:Addr.ea -> bytes:int -> int
(** Write syscall: copies accepted bytes user -> kernel pipe buffer a
    line at a time through the MMU.  Returns bytes accepted. *)

val sys_pipe_read : t -> Pipe.t -> buf:Addr.ea -> bytes:int -> int
(** Read syscall: copies available bytes kernel -> user. *)

val sys_file_read :
  t -> Vfs.file -> from_page:int -> pages:int -> buf:Addr.ea -> unit
(** Read file pages through the page cache into a user buffer.  Cold
    pages cost a simulated disk wait spent in the idle task (the whole
    machine waits — the single-process view). *)

val sys_file_read_async :
  t -> Vfs.file -> from_page:int -> pages:int -> buf:Addr.ea -> int
(** Like {!sys_file_read} but never waits: returns the number of cold
    pages, whose disk time the caller owes (a scheduler-driven process
    sleeps for [cold * disk_wait_cycles], letting other processes run —
    the multiprogrammed view). *)

val sys_file_write :
  t -> Vfs.file -> from_page:int -> pages:int -> buf:Addr.ea -> unit
(** Write user pages into the page cache (allocating frames for cold
    pages with no disk wait — write-behind is assumed). *)

(** {1 Flushing (exposed for experiments and tests)} *)

val flush_range : t -> mm:Mm.t -> ea:Addr.ea -> pages:int -> unit
(** Apply the policy's range-flush strategy: precise per-page TLB+htab
    scrubbing, or a whole-context VSID reset above the cutoff. *)

val flush_whole_mm : t -> mm:Mm.t -> unit

val timer_tick : t -> unit
(** One timer interrupt: entry/exit (fast or slow per policy), the
    accounting work, and — under the §10.2 preload policy — prefetches
    for the interrupted context's hot lines.  Fires automatically every
    {!Kparams.timer_tick_cycles} at operation boundaries (syscalls, user
    references, idle turns); exposed for tests. *)

(** {1 Idle task} *)

val idle_slice : t -> unit
(** One unit of idle work: a zombie-reclaim chunk and/or one page
    cleared, else the bare idle loop. *)

val idle_for : t -> cycles:int -> unit
(** Run the idle task until [cycles] have elapsed. *)

(** {1 Measurement helpers} *)

val kernel_tlb_entries : t -> int
(** TLB entries currently holding kernel translations (§5.1). *)

val htab_occupancy : t -> int
(** Valid PTEs in the htab (0 when the htab is eliminated). *)

val htab_live_and_zombie : t -> int * int
(** Valid PTEs split into (live, zombie) by VSID liveness. *)

val disk_wait_cycles : int
(** Simulated disk latency for a cold page-cache fill. *)
