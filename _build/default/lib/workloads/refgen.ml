open Ppc

type t = {
  rng : Rng.t;
  base_ea : Addr.ea;
  n_pages : int;
  hot_pages : int;
  locality : float;
}

let create ~rng ~base_ea ~pages ?(hot_fraction = 0.2) ?(locality = 0.8) () =
  if pages <= 0 then invalid_arg "Refgen.create: pages";
  { rng;
    base_ea;
    n_pages = pages;
    hot_pages = max 1 (int_of_float (float_of_int pages *. hot_fraction));
    locality }

let next t =
  let page =
    if Rng.float t.rng < t.locality then Rng.int t.rng t.hot_pages
    else Rng.int t.rng t.n_pages
  in
  let offset = Rng.int t.rng (Addr.page_size / 4) * 4 in
  t.base_ea + (page lsl Addr.page_shift) + offset

let pages t = t.n_pages
let base t = t.base_ea
