(* Hashed page table: search order, insert/evict policy, zombie reclaim. *)
open Ppc

let mk ?(n_ptes = 1024) () = Htab.create ~n_ptes ()
let rng () = Rng.create ~seed:99
let no_ref (_ : Addr.pa) = ()

let insert ?(rpn = 7) h ~vsid ~page_index =
  Htab.insert h ~rng:(rng ()) ~vsid ~page_index ~rpn ~wimg:Pte.wimg_default
    ~protection:Pte.Read_write ~on_ref:no_ref

let test_insert_search () =
  let h = mk () in
  (match insert h ~vsid:0x42 ~page_index:0x10 with
  | Htab.Filled_empty -> ()
  | Htab.Replaced _ -> Alcotest.fail "table was empty");
  match Htab.search h ~vsid:0x42 ~page_index:0x10 ~on_ref:no_ref with
  | Some pte -> Alcotest.(check int) "rpn" 7 pte.Pte.rpn
  | None -> Alcotest.fail "expected hit"

let test_search_miss () =
  let h = mk () in
  Alcotest.(check bool) "empty table misses" true
    (Htab.search h ~vsid:1 ~page_index:2 ~on_ref:no_ref = None)

let test_search_ref_counting () =
  let h = mk () in
  ignore (insert h ~vsid:0x42 ~page_index:0x10 : Htab.insert_outcome);
  (* a miss examines both PTEGs: 16 references *)
  let refs = ref 0 in
  ignore
    (Htab.search h ~vsid:0x99 ~page_index:0x11 ~on_ref:(fun _ -> incr refs)
      : Pte.t option);
  Alcotest.(check int) "full search is 16 references" 16 !refs

let test_update_in_place () =
  let h = mk () in
  ignore (insert h ~rpn:1 ~vsid:3 ~page_index:4 : Htab.insert_outcome);
  ignore (insert h ~rpn:2 ~vsid:3 ~page_index:4 : Htab.insert_outcome);
  Alcotest.(check int) "single entry" 1 (Htab.occupancy h);
  match Htab.search h ~vsid:3 ~page_index:4 ~on_ref:no_ref with
  | Some pte -> Alcotest.(check int) "updated rpn" 2 pte.Pte.rpn
  | None -> Alcotest.fail "expected hit"

(* vsids that all collide into the same primary PTEG for page_index 0 *)
let colliding_vsids h n =
  let target = Pte.hash_primary ~n_ptegs:(Htab.n_ptegs h) ~vsid:0 ~page_index:0 in
  let rec collect acc vsid =
    if List.length acc >= n then List.rev acc
    else
      let p =
        Pte.hash_primary ~n_ptegs:(Htab.n_ptegs h) ~vsid ~page_index:0
      in
      collect (if p = target then vsid :: acc else acc) (vsid + 1)
  in
  collect [] 0

let test_overflow_to_secondary () =
  let h = mk () in
  (* 9 entries hashing to one PTEG: the 9th goes to the secondary group *)
  let vsids = colliding_vsids h 9 in
  List.iter
    (fun vsid ->
      match insert h ~vsid ~page_index:0 with
      | Htab.Filled_empty -> ()
      | Htab.Replaced _ -> Alcotest.fail "should not evict yet")
    vsids;
  Alcotest.(check int) "all placed" 9 (Htab.occupancy h);
  (* all 9 are findable *)
  List.iter
    (fun vsid ->
      Alcotest.(check bool) "findable" true
        (Htab.search h ~vsid ~page_index:0 ~on_ref:no_ref <> None))
    vsids;
  (* the 9th entry has the H (secondary) bit set *)
  let ninth = List.nth vsids 8 in
  match Htab.search h ~vsid:ninth ~page_index:0 ~on_ref:no_ref with
  | Some pte -> Alcotest.(check bool) "secondary bit" true pte.Pte.secondary
  | None -> Alcotest.fail "expected hit"

let test_eviction_when_both_full () =
  let h = mk () in
  (* fill both PTEGs (16 slots) with colliding tags, the 17th evicts *)
  let vsids = colliding_vsids h 17 in
  let outcomes = List.map (fun vsid -> insert h ~vsid ~page_index:0) vsids in
  let evictions =
    List.filter (function Htab.Replaced _ -> true | _ -> false) outcomes
  in
  Alcotest.(check int) "exactly one eviction" 1 (List.length evictions);
  Alcotest.(check int) "occupancy capped at 16" 16 (Htab.occupancy h)

let test_invalidate_page () =
  let h = mk () in
  ignore (insert h ~vsid:5 ~page_index:6 : Htab.insert_outcome);
  Alcotest.(check bool) "invalidated" true
    (Htab.invalidate_page h ~vsid:5 ~page_index:6 ~on_ref:no_ref);
  Alcotest.(check bool) "gone" true
    (Htab.search h ~vsid:5 ~page_index:6 ~on_ref:no_ref = None);
  Alcotest.(check bool) "second invalidate is false" false
    (Htab.invalidate_page h ~vsid:5 ~page_index:6 ~on_ref:no_ref)

let test_reclaim_zombies () =
  let h = mk () in
  (* fixed VSID per generation: entries scatter over distinct PTEGs *)
  for i = 0 to 9 do
    ignore (insert h ~vsid:0x101 ~page_index:i : Htab.insert_outcome)
  done;
  for i = 0 to 9 do
    ignore (insert h ~vsid:0x200 ~page_index:i : Htab.insert_outcome)
  done;
  let is_zombie vsid = vsid < 0x200 in
  let reclaimed =
    Htab.reclaim_zombies h ~is_zombie ~max_ptes:(Htab.capacity h)
      ~on_ref:no_ref
  in
  Alcotest.(check int) "reclaimed the zombie generation" 10 reclaimed;
  Alcotest.(check int) "live generation survives" 10 (Htab.occupancy h);
  Alcotest.(check int) "survivors are live" 10
    (Htab.count_valid h ~f:(fun pte -> pte.Pte.vsid >= 0x200))

let test_reclaim_cursor_resumes () =
  let h = mk () in
  for i = 0 to 9 do
    ignore (insert h ~vsid:0x100 ~page_index:i : Htab.insert_outcome)
  done;
  let is_zombie _ = true in
  (* two half-table scans must cover the whole table *)
  let half = Htab.capacity h / 2 in
  let r1 = Htab.reclaim_zombies h ~is_zombie ~max_ptes:half ~on_ref:no_ref in
  let r2 = Htab.reclaim_zombies h ~is_zombie ~max_ptes:half ~on_ref:no_ref in
  Alcotest.(check int) "everything reclaimed across slices" 10 (r1 + r2);
  Alcotest.(check int) "empty" 0 (Htab.occupancy h)

let test_histogram () =
  let h = mk () in
  let hist0 = Htab.histogram h in
  Alcotest.(check int) "all PTEGs empty" (Htab.n_ptegs h) hist0.(0);
  ignore (insert h ~vsid:1 ~page_index:1 : Htab.insert_outcome);
  let hist1 = Htab.histogram h in
  Alcotest.(check int) "one PTEG with one entry" 1 hist1.(1);
  Alcotest.(check int) "rest empty" (Htab.n_ptegs h - 1) hist1.(0)

let test_clear () =
  let h = mk () in
  for i = 0 to 20 do
    ignore (insert h ~vsid:i ~page_index:i : Htab.insert_outcome)
  done;
  Htab.clear h;
  Alcotest.(check int) "cleared" 0 (Htab.occupancy h)

let test_pte_pa_layout () =
  let h = Htab.create ~base_pa:0x300000 ~n_ptes:1024 () in
  Alcotest.(check int) "first slot" 0x300000 (Htab.pte_pa h ~pteg:0 ~slot:0);
  Alcotest.(check int) "8 bytes per pte" 0x300008
    (Htab.pte_pa h ~pteg:0 ~slot:1);
  Alcotest.(check int) "64 bytes per PTEG" 0x300040
    (Htab.pte_pa h ~pteg:1 ~slot:0)

let prop_insert_then_found =
  QCheck.Test.make ~name:"inserted entry is searchable (no pressure)"
    ~count:300
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFF))
    (fun (vsid, page_index) ->
      let h = mk () in
      ignore (insert h ~vsid ~page_index : Htab.insert_outcome);
      Htab.search h ~vsid ~page_index ~on_ref:no_ref <> None)

let prop_occupancy_bounded =
  QCheck.Test.make ~name:"htab occupancy never exceeds capacity" ~count:20
    QCheck.(
      list_of_size (Gen.return 400)
        (pair (int_bound 0xFFF) (int_bound 0xFF)))
    (fun tags ->
      let h = Htab.create ~n_ptes:64 () in
      List.iter
        (fun (vsid, page_index) ->
          ignore (insert h ~vsid ~page_index : Htab.insert_outcome))
        tags;
      Htab.occupancy h <= Htab.capacity h)

let prop_reclaim_never_kills_live =
  QCheck.Test.make ~name:"full reclaim removes all zombies, only zombies"
    ~count:50
    QCheck.(list_of_size (Gen.return 50) (int_bound 0xFFF))
    (fun vsids ->
      let h = mk () in
      List.iteri
        (fun i vsid ->
          ignore (insert h ~vsid ~page_index:i : Htab.insert_outcome))
        vsids;
      let is_zombie vsid = vsid land 1 = 0 in
      let live_before =
        Htab.count_valid h ~f:(fun pte -> not (is_zombie pte.Pte.vsid))
      in
      ignore
        (Htab.reclaim_zombies h ~is_zombie ~max_ptes:(Htab.capacity h)
           ~on_ref:no_ref
          : int);
      Htab.count_valid h ~f:(fun pte -> is_zombie pte.Pte.vsid) = 0
      && Htab.occupancy h = live_before)

let prop_histogram_sums =
  QCheck.Test.make ~name:"histogram partitions the PTEGs" ~count:50
    QCheck.(
      list_of_size (Gen.return 100)
        (pair (int_bound 0xFFFF) (int_bound 0xFF)))
    (fun tags ->
      let h = mk () in
      List.iter
        (fun (vsid, page_index) ->
          ignore (insert h ~vsid ~page_index : Htab.insert_outcome))
        tags;
      let hist = Htab.histogram h in
      let total_ptegs = Array.fold_left ( + ) 0 hist in
      let weighted = ref 0 in
      Array.iteri (fun k n -> weighted := !weighted + (k * n)) hist;
      total_ptegs = Htab.n_ptegs h && !weighted = Htab.occupancy h)

let prop_search_hit_cost_bounded =
  QCheck.Test.make ~name:"a hit is found within 16 references" ~count:200
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFF))
    (fun (vsid, page_index) ->
      let h = mk () in
      ignore (insert h ~vsid ~page_index : Htab.insert_outcome);
      let refs = ref 0 in
      ignore
        (Htab.search h ~vsid ~page_index ~on_ref:(fun _ -> incr refs)
          : Pte.t option);
      !refs >= 1 && !refs <= 16)

let test_insert_prefers_primary () =
  let h = mk () in
  (match insert h ~vsid:0x33 ~page_index:0x44 with
  | Htab.Filled_empty -> ()
  | Htab.Replaced _ -> Alcotest.fail "empty table");
  match Htab.search h ~vsid:0x33 ~page_index:0x44 ~on_ref:no_ref with
  | Some pte ->
      Alcotest.(check bool) "primary group (H clear)" false pte.Pte.secondary
  | None -> Alcotest.fail "expected hit"

let test_primary_hit_cheaper_than_secondary () =
  let h = mk () in
  let vsids = colliding_vsids h 9 in
  List.iter
    (fun vsid -> ignore (insert h ~vsid ~page_index:0 : Htab.insert_outcome))
    vsids;
  let refs_for vsid =
    let refs = ref 0 in
    ignore
      (Htab.search h ~vsid ~page_index:0 ~on_ref:(fun _ -> incr refs)
        : Pte.t option);
    !refs
  in
  (* the first insert sits in primary slot 0; the ninth overflowed *)
  Alcotest.(check int) "first entry: one reference" 1
    (refs_for (List.nth vsids 0));
  Alcotest.(check bool) "overflow entry costs > 8 references" true
    (refs_for (List.nth vsids 8) > 8)

let test_second_chance_prefers_unreferenced () =
  let h = mk () in
  let vsids = colliding_vsids h 17 in
  let first16 = List.filteri (fun i _ -> i < 16) vsids in
  List.iter
    (fun vsid -> ignore (insert h ~vsid ~page_index:0 : Htab.insert_outcome))
    first16;
  (* searches set R; clear one entry's R bit by hand *)
  List.iter
    (fun vsid ->
      ignore (Htab.search h ~vsid ~page_index:0 ~on_ref:no_ref : Pte.t option))
    first16;
  let cold = List.nth first16 5 in
  (match Htab.search h ~vsid:cold ~page_index:0 ~on_ref:no_ref with
  | Some pte -> pte.Pte.referenced <- false
  | None -> Alcotest.fail "expected entry");
  let seventeenth = List.nth vsids 16 in
  (match
     Htab.insert ~policy:Htab.Second_chance h ~rng:(rng ())
       ~vsid:seventeenth ~page_index:0 ~rpn:9 ~wimg:Pte.wimg_default
       ~protection:Pte.Read_write ~on_ref:no_ref
   with
  | Htab.Replaced victim ->
      Alcotest.(check int) "the unreferenced entry was chosen" cold
        victim.Pte.vsid
  | Htab.Filled_empty -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "victim gone" true
    (Htab.search h ~vsid:cold ~page_index:0 ~on_ref:no_ref = None)

let test_second_chance_strips_r_bits () =
  let h = mk () in
  let vsids = colliding_vsids h 17 in
  let first16 = List.filteri (fun i _ -> i < 16) vsids in
  List.iter
    (fun vsid -> ignore (insert h ~vsid ~page_index:0 : Htab.insert_outcome))
    first16;
  (* every entry is referenced (insert sets R): the fallback must strip
     the R bits and still evict exactly one entry *)
  (match
     Htab.insert ~policy:Htab.Second_chance h ~rng:(rng ())
       ~vsid:(List.nth vsids 16) ~page_index:0 ~rpn:9 ~wimg:Pte.wimg_default
       ~protection:Pte.Read_write ~on_ref:no_ref
   with
  | Htab.Replaced _ -> ()
  | Htab.Filled_empty -> Alcotest.fail "expected eviction");
  Alcotest.(check int) "occupancy still 16" 16 (Htab.occupancy h);
  (* all survivors but the fresh insert now have R clear *)
  Alcotest.(check int) "one referenced entry (the new one)" 1
    (Htab.count_valid h ~f:(fun pte -> pte.Pte.referenced))

let test_zombie_aware_evicts_zombie () =
  let h = mk () in
  let vsids = colliding_vsids h 17 in
  let first16 = List.filteri (fun i _ -> i < 16) vsids in
  List.iter
    (fun vsid -> ignore (insert h ~vsid ~page_index:0 : Htab.insert_outcome))
    first16;
  let the_zombie = List.nth first16 9 in
  let is_zombie vsid = vsid = the_zombie in
  (match
     Htab.insert ~policy:(Htab.Prefer_zombie is_zombie) h ~rng:(rng ())
       ~vsid:(List.nth vsids 16) ~page_index:0 ~rpn:9 ~wimg:Pte.wimg_default
       ~protection:Pte.Read_write ~on_ref:no_ref
   with
  | Htab.Replaced victim ->
      Alcotest.(check int) "the zombie was chosen" the_zombie victim.Pte.vsid
  | Htab.Filled_empty -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "zombie gone" true
    (Htab.search h ~vsid:the_zombie ~page_index:0 ~on_ref:no_ref = None);
  (* with no zombies at all it degrades to an arbitrary (but live) evict *)
  match
    Htab.insert ~policy:(Htab.Prefer_zombie (fun _ -> false)) h
      ~rng:(rng ()) ~vsid:0x7FFFF ~page_index:0 ~rpn:1
      ~wimg:Pte.wimg_default ~protection:Pte.Read_write ~on_ref:no_ref
  with
  | Htab.Replaced _ -> ()
  | Htab.Filled_empty -> Alcotest.fail "expected eviction"

let suite =
  [ Alcotest.test_case "insert/search" `Quick test_insert_search;
    Alcotest.test_case "search miss" `Quick test_search_miss;
    Alcotest.test_case "miss costs 16 references" `Quick
      test_search_ref_counting;
    Alcotest.test_case "update in place" `Quick test_update_in_place;
    Alcotest.test_case "overflow to secondary PTEG" `Quick
      test_overflow_to_secondary;
    Alcotest.test_case "eviction when both PTEGs full" `Quick
      test_eviction_when_both_full;
    Alcotest.test_case "invalidate page" `Quick test_invalidate_page;
    Alcotest.test_case "zombie reclaim" `Quick test_reclaim_zombies;
    Alcotest.test_case "reclaim cursor resumes" `Quick
      test_reclaim_cursor_resumes;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "pte physical layout" `Quick test_pte_pa_layout;
    QCheck_alcotest.to_alcotest prop_insert_then_found;
    QCheck_alcotest.to_alcotest prop_occupancy_bounded;
    Alcotest.test_case "insert prefers primary" `Quick
      test_insert_prefers_primary;
    Alcotest.test_case "primary hit cheaper than overflow" `Quick
      test_primary_hit_cheaper_than_secondary;
    QCheck_alcotest.to_alcotest prop_reclaim_never_kills_live;
    QCheck_alcotest.to_alcotest prop_histogram_sums;
    Alcotest.test_case "second chance prefers unreferenced" `Quick
      test_second_chance_prefers_unreferenced;
    Alcotest.test_case "second chance strips R bits" `Quick
      test_second_chance_strips_r_bits;
    Alcotest.test_case "zombie-aware eviction" `Quick
      test_zombie_aware_evicts_zombie;
    QCheck_alcotest.to_alcotest prop_search_hit_cost_bounded ]
