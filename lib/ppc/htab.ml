type t = {
  ptegs : int;
  base : Addr.pa;
  entries : Pte.t array;  (* pteg-major: entries.(pteg * 8 + slot) *)
  tags : int array;
      (* flat probe tags, one per slot: (vsid << 16) | page_index for a
         valid entry, -1 otherwise.  The probe loops compare one int per
         slot instead of touching three fields of a [Pte.t] record; the
         invariant [tags.(i) >= 0 <=> entries.(i).valid] is maintained by
         every function here that writes a valid bit (all valid-bit
         writes in the repo live in this module). *)
  mutable cursor : int;   (* reclaim scan position *)
}

let slots_per_pteg = 8
let pte_bytes = 8

(* The search tag for (vsid, page_index).  [write_entry] masks what it
   stores, so a stored tag is always built from masked fields; searching
   with an unmasked VSID/page-index simply never matches — exactly the
   behaviour of [Pte.matches] on the record fields. *)
let tag_of ~vsid ~page_index = (vsid lsl 16) lor page_index

let create ?(base_pa = 0x00100000) ~n_ptes () =
  let ptegs = n_ptes / slots_per_pteg in
  if ptegs <= 0 || ptegs land (ptegs - 1) <> 0 then
    invalid_arg "Htab.create: n_ptes/8 must be a positive power of two";
  { ptegs;
    base = base_pa;
    entries = Array.init n_ptes (fun _ -> Pte.invalid ());
    tags = Array.make n_ptes (-1);
    cursor = 0 }

let n_ptegs t = t.ptegs
let capacity t = Array.length t.entries
let base_pa t = t.base

let pte_pa t ~pteg ~slot =
  t.base + (((pteg * slots_per_pteg) + slot) * pte_bytes)

let hash1 t ~vsid ~page_index =
  Pte.hash_primary ~n_ptegs:t.ptegs ~vsid ~page_index

let hash2 t ~primary = Pte.hash_secondary ~n_ptegs:t.ptegs ~primary

(* Search one PTEG for a matching tag, reporting each slot examined.
   Returns the flat slot index, or -1.  Top-level recursion so the probe
   loop is not a per-call closure allocation. *)
let rec probe_scan (tags : int array) (tag : int) base pa0
    (on_ref : int -> unit) slot =
  if slot >= slots_per_pteg then -1
  else begin
    on_ref (pa0 + (slot * pte_bytes));
    if tags.(base + slot) = tag then base + slot
    else probe_scan tags tag base pa0 on_ref (slot + 1)
  end

let search_pteg_slot t ~pteg ~tag ~on_ref =
  let base = pteg * slots_per_pteg in
  probe_scan t.tags tag base (t.base + (base * pte_bytes)) on_ref 0

let search_slot t ~vsid ~page_index ~on_ref =
  let tag = tag_of ~vsid ~page_index in
  let p = hash1 t ~vsid ~page_index in
  let i = search_pteg_slot t ~pteg:p ~tag ~on_ref in
  if i >= 0 then i
  else search_pteg_slot t ~pteg:(hash2 t ~primary:p) ~tag ~on_ref

let search t ~vsid ~page_index ~on_ref =
  let i = search_slot t ~vsid ~page_index ~on_ref in
  if i < 0 then None else Some t.entries.(i)

let search_counted t ~vsid ~page_index ~on_ref =
  let n = ref 0 in
  let on_ref pa =
    incr n;
    on_ref pa
  in
  let hit = search t ~vsid ~page_index ~on_ref in
  (hit, !n)

type replacement =
  | Arbitrary
  | Second_chance
  | Prefer_zombie of (int -> bool)

type insert_outcome =
  | Filled_empty
  | Replaced of Pte.t

(* Find a reusable slot in a PTEG: an entry with the same tag (update in
   place) or an invalid slot.  Reports references. *)
let find_free t ~pteg ~tag ~on_ref =
  let base = pteg * slots_per_pteg in
  let free = ref (-1) in
  let same = ref (-1) in
  for slot = 0 to slots_per_pteg - 1 do
    on_ref (pte_pa t ~pteg ~slot);
    let stored = t.tags.(base + slot) in
    if stored = tag then same := slot
    else if stored < 0 && !free < 0 then free := slot
  done;
  if !same >= 0 then Some !same else if !free >= 0 then Some !free else None

let write_entry t ~pteg ~slot ~secondary ~vsid ~page_index ~rpn ~wimg
    ~protection =
  let i = (pteg * slots_per_pteg) + slot in
  let e = t.entries.(i) in
  e.Pte.valid <- true;
  e.Pte.vsid <- vsid land 0xFFFFFF;
  e.Pte.page_index <- page_index land 0xFFFF;
  e.Pte.rpn <- rpn land 0xFFFFF;
  e.Pte.secondary <- secondary;
  e.Pte.referenced <- true;
  e.Pte.changed <- false;
  e.Pte.wimg <- wimg;
  e.Pte.protection <- protection;
  t.tags.(i) <- tag_of ~vsid:e.Pte.vsid ~page_index:e.Pte.page_index

(* Second-chance victim selection over the 16 candidate slots: an
   unreferenced entry if one exists, else strip every R bit and choose
   arbitrarily. *)
let pick_victim_second_chance t ~rng ~primary ~secondary ~on_ref =
  let candidate = ref None in
  let examine pteg =
    for slot = 0 to slots_per_pteg - 1 do
      on_ref (pte_pa t ~pteg ~slot);
      let pte = t.entries.((pteg * slots_per_pteg) + slot) in
      if (not pte.Pte.referenced) && !candidate = None then
        candidate := Some (pteg, slot)
    done
  in
  examine primary;
  (match !candidate with None -> examine secondary | Some _ -> ());
  match !candidate with
  | Some c -> c
  | None ->
      (* everyone was referenced: second chance for all *)
      List.iter
        (fun pteg ->
          for slot = 0 to slots_per_pteg - 1 do
            t.entries.((pteg * slots_per_pteg) + slot).Pte.referenced <- false
          done)
        [ primary; secondary ];
      let in_secondary = Rng.bool rng in
      ((if in_secondary then secondary else primary), Rng.int rng slots_per_pteg)

(* Zombie-aware victim selection: the first entry whose VSID the
   predicate marks dead; arbitrary if the 16 candidates are all live. *)
let pick_victim_zombie t ~rng ~is_zombie ~primary ~secondary ~on_ref =
  let candidate = ref None in
  let examine pteg =
    for slot = 0 to slots_per_pteg - 1 do
      if !candidate = None then begin
        on_ref (pte_pa t ~pteg ~slot);
        let pte = t.entries.((pteg * slots_per_pteg) + slot) in
        if is_zombie pte.Pte.vsid then candidate := Some (pteg, slot)
      end
    done
  in
  examine primary;
  (match !candidate with None -> examine secondary | Some _ -> ());
  match !candidate with
  | Some c -> c
  | None ->
      let in_secondary = Rng.bool rng in
      ((if in_secondary then secondary else primary), Rng.int rng slots_per_pteg)

let insert ?(policy = Arbitrary) t ~rng ~vsid ~page_index ~rpn ~wimg
    ~protection ~on_ref =
  let tag = tag_of ~vsid ~page_index in
  let p = hash1 t ~vsid ~page_index in
  match find_free t ~pteg:p ~tag ~on_ref with
  | Some slot ->
      write_entry t ~pteg:p ~slot ~secondary:false ~vsid ~page_index ~rpn
        ~wimg ~protection;
      Filled_empty
  | None -> begin
      let s = hash2 t ~primary:p in
      match find_free t ~pteg:s ~tag ~on_ref with
      | Some slot ->
          write_entry t ~pteg:s ~slot ~secondary:true ~vsid ~page_index ~rpn
            ~wimg ~protection;
          Filled_empty
      | None ->
          (* Both PTEGs full: pick a victim without checking whether its
             VSID is live (the hardware view cannot tell). *)
          let pteg, slot =
            match policy with
            | Arbitrary ->
                let in_secondary = Rng.bool rng in
                ((if in_secondary then s else p), Rng.int rng slots_per_pteg)
            | Second_chance ->
                pick_victim_second_chance t ~rng ~primary:p ~secondary:s
                  ~on_ref
            | Prefer_zombie is_zombie ->
                pick_victim_zombie t ~rng ~is_zombie ~primary:p ~secondary:s
                  ~on_ref
          in
          let in_secondary = pteg = s in
          let victim = t.entries.((pteg * slots_per_pteg) + slot) in
          let victim_copy =
            Pte.make ~secondary:victim.Pte.secondary ~wimg:victim.Pte.wimg
              ~protection:victim.Pte.protection ~vsid:victim.Pte.vsid
              ~page_index:victim.Pte.page_index ~rpn:victim.Pte.rpn ()
          in
          on_ref (pte_pa t ~pteg ~slot);
          write_entry t ~pteg ~slot ~secondary:in_secondary ~vsid ~page_index
            ~rpn ~wimg ~protection;
          Replaced victim_copy
    end

let invalidate_page t ~vsid ~page_index ~on_ref =
  let i = search_slot t ~vsid ~page_index ~on_ref in
  if i < 0 then false
  else begin
    t.entries.(i).Pte.valid <- false;
    t.tags.(i) <- -1;
    true
  end

let reclaim_zombies t ~is_zombie ~max_ptes ~on_ref =
  let total = capacity t in
  let budget = min max_ptes total in
  let reclaimed = ref 0 in
  for _ = 1 to budget do
    let i = t.cursor in
    t.cursor <- (t.cursor + 1) mod total;
    let pteg = i / slots_per_pteg and slot = i mod slots_per_pteg in
    on_ref (pte_pa t ~pteg ~slot);
    let pte = t.entries.(i) in
    if pte.Pte.valid && is_zombie pte.Pte.vsid then begin
      pte.Pte.valid <- false;
      t.tags.(i) <- -1;
      incr reclaimed
    end
  done;
  !reclaimed

let occupancy t =
  let n = ref 0 in
  for i = 0 to Array.length t.tags - 1 do
    if t.tags.(i) >= 0 then incr n
  done;
  !n

let count_valid t ~f =
  Array.fold_left
    (fun n pte -> if pte.Pte.valid && f pte then n + 1 else n)
    0 t.entries

let iter_valid t ~f =
  Array.iter (fun pte -> if pte.Pte.valid then f pte) t.entries

let clear t =
  Array.iter (fun pte -> pte.Pte.valid <- false) t.entries;
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.cursor <- 0

let histogram t =
  let h = Array.make (slots_per_pteg + 1) 0 in
  for pteg = 0 to t.ptegs - 1 do
    let valid = ref 0 in
    for slot = 0 to slots_per_pteg - 1 do
      if t.tags.((pteg * slots_per_pteg) + slot) >= 0 then incr valid
    done;
    h.(!valid) <- h.(!valid) + 1
  done;
  h
