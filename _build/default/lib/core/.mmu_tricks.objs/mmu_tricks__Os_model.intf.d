lib/core/os_model.mli: Kernel_sim Machine Ppc
