lib/ppc/perf.ml: Format
