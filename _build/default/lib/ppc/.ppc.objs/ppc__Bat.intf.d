lib/ppc/bat.mli: Addr
