open Ppc
module Kernel = Kernel_sim.Kernel
module Mm = Kernel_sim.Mm

type score = {
  multiplier : int;
  full_ptegs : int;
  evictions : int;
  occupancy_pct : float;
  hit_rate : float;
}

let score_multiplier ?(machine = Machine.ppc604_185) ?(procs = 20)
    ?(pages = 320) ?(seed = 42) multiplier =
  let policy = Config.baseline_with_scatter_mult multiplier in
  let k = Kernel.boot ~machine ~policy ~seed () in
  let tasks = List.init procs (fun _ -> Kernel.spawn k ~data_pages:pages ()) in
  let data_base = Mm.user_text_base + (16 lsl Addr.page_shift) in
  let perf =
    Workloads.Measure.perf k (fun () ->
        for _ = 1 to 2 do
          List.iter
            (fun t ->
              Kernel.switch_to k t;
              for p = 0 to pages - 1 do
                Kernel.touch k Mmu.Store (data_base + (p lsl Addr.page_shift))
              done)
            tasks
        done)
  in
  let snap = System.snapshot k in
  let hist = snap.System.htab_histogram in
  let full_ptegs = if Array.length hist > 8 then hist.(8) else 0 in
  { multiplier;
    full_ptegs;
    evictions = perf.Perf.htab_evicts;
    occupancy_pct =
      Metrics.occupancy_pct ~occupancy:snap.System.htab_valid
        ~capacity:snap.System.htab_capacity;
    hit_rate = Metrics.htab_hit_rate perf }

(* The sweep is the first client of the generic tuner fan-out: each
   candidate multiplier is one supervised task (parallel under ?jobs,
   results independent of the job count), and the score crosses back as
   a JSON payload instead of dying with a forked worker. *)

let score_json s =
  Json.Obj
    [ ("multiplier", Json.Int s.multiplier);
      ("full_ptegs", Json.Int s.full_ptegs);
      ("evictions", Json.Int s.evictions);
      ("occupancy_pct", Json.Float s.occupancy_pct);
      ("hit_rate", Json.Float s.hit_rate) ]

let score_of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let flt k = Option.bind (Json.member k j) Json.to_float_opt in
  match
    ( int "multiplier", int "full_ptegs", int "evictions",
      flt "occupancy_pct", flt "hit_rate" )
  with
  | Some multiplier, Some full_ptegs, Some evictions, Some occupancy_pct,
    Some hit_rate ->
      Some { multiplier; full_ptegs; evictions; occupancy_pct; hit_rate }
  | _ -> None

let sweep ?machine ?procs ?pages ?seed ?jobs candidates =
  let tasks =
    List.map
      (fun m ->
        ( "vsid-mult-" ^ string_of_int m,
          fun ?seed:(_ : int option) () ->
            score_json (score_multiplier ?machine ?procs ?pages ?seed m) ))
      candidates
  in
  let scores =
    List.map
      (fun (id, r) ->
        match r with
        | Ok j -> (
            match score_of_json j with
            | Some s -> s
            | None -> failwith (id ^ ": undecodable sweep payload"))
        | Error e -> failwith (id ^ ": " ^ e))
      (Tuner.fan_out ?jobs tasks)
  in
  List.sort
    (fun a b ->
      match compare a.full_ptegs b.full_ptegs with
      | 0 -> compare a.evictions b.evictions
      | c -> c)
    scores

let default_candidates = [ 1; 3; 16; 17; 64; 97; 128; 171; 451; 897; 1024 ]

let to_table scores =
  { Experiments.title =
      "VSID multiplier tuning sweep (the §5.2 histogram method)";
    header =
      [ "multiplier"; "full PTEGs (hot spots)"; "evictions"; "htab use";
        "hit rate" ];
    rows =
      List.map
        (fun s ->
          [ string_of_int s.multiplier;
            string_of_int s.full_ptegs;
            Report.fmt_int s.evictions;
            Report.fmt_pct s.occupancy_pct;
            Report.fmt_pct (100.0 *. s.hit_rate) ])
        scores;
    notes =
      [ "lower hot-spot and eviction counts are better; the paper's";
        "authors adjusted the constant 'until hot-spots disappeared'." ] }
