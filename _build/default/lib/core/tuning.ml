open Ppc
module Kernel = Kernel_sim.Kernel
module Mm = Kernel_sim.Mm

type score = {
  multiplier : int;
  full_ptegs : int;
  evictions : int;
  occupancy_pct : float;
  hit_rate : float;
}

let score_multiplier ?(machine = Machine.ppc604_185) ?(procs = 20)
    ?(pages = 320) ?(seed = 42) multiplier =
  let policy = Config.baseline_with_scatter_mult multiplier in
  let k = Kernel.boot ~machine ~policy ~seed () in
  let tasks = List.init procs (fun _ -> Kernel.spawn k ~data_pages:pages ()) in
  let data_base = Mm.user_text_base + (16 lsl Addr.page_shift) in
  let perf =
    Workloads.Measure.perf k (fun () ->
        for _ = 1 to 2 do
          List.iter
            (fun t ->
              Kernel.switch_to k t;
              for p = 0 to pages - 1 do
                Kernel.touch k Mmu.Store (data_base + (p lsl Addr.page_shift))
              done)
            tasks
        done)
  in
  let snap = System.snapshot k in
  let hist = snap.System.htab_histogram in
  let full_ptegs = if Array.length hist > 8 then hist.(8) else 0 in
  { multiplier;
    full_ptegs;
    evictions = perf.Perf.htab_evicts;
    occupancy_pct =
      Metrics.occupancy_pct ~occupancy:snap.System.htab_valid
        ~capacity:snap.System.htab_capacity;
    hit_rate = Metrics.htab_hit_rate perf }

let sweep ?machine ?procs ?pages ?seed candidates =
  let scores =
    List.map (score_multiplier ?machine ?procs ?pages ?seed) candidates
  in
  List.sort
    (fun a b ->
      match compare a.full_ptegs b.full_ptegs with
      | 0 -> compare a.evictions b.evictions
      | c -> c)
    scores

let default_candidates = [ 1; 3; 16; 17; 64; 97; 128; 171; 451; 897; 1024 ]

let to_table scores =
  { Experiments.title =
      "VSID multiplier tuning sweep (the §5.2 histogram method)";
    header =
      [ "multiplier"; "full PTEGs (hot spots)"; "evictions"; "htab use";
        "hit rate" ];
    rows =
      List.map
        (fun s ->
          [ string_of_int s.multiplier;
            string_of_int s.full_ptegs;
            Report.fmt_int s.evictions;
            Report.fmt_pct s.occupancy_pct;
            Report.fmt_pct (100.0 *. s.hit_rate) ])
        scores;
    notes =
      [ "lower hot-spot and eviction counts are better; the paper's";
        "authors adjusted the constant 'until hot-spots disappeared'." ] }
