test/test_sched.ml: Addr Alcotest Kernel_sim List Machine Mmu Perf Ppc Printf Workloads
