examples/parallel_make.ml: Kernel_sim List Mmu_tricks Ppc Printf Workloads
