lib/kernel_sim/pagetable.mli: Addr Physmem Ppc
