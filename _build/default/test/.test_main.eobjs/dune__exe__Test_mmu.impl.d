test/test_mmu.ml: Addr Alcotest Bat Cost Gen Hashtbl Htab List Machine Memsys Mmu Perf Ppc Pte QCheck QCheck_alcotest Rng Segment Tlb
