(** A minimal JSON layer — emitter and parser — with no external
    dependencies.

    The harness needs machine-readable results ({!Experiments.to_json},
    [mmu_sim experiment --json]) and has to read committed baselines back
    ([mmu_sim check --baseline]), so both directions live here.  The
    subset is full JSON minus nothing we emit: objects, arrays, strings
    (with escapes incl. [\uXXXX]), numbers, booleans, null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Serialize.  Default is pretty-printed (2-space indent, one key or
    element per line) so committed baselines diff well; [~compact:true]
    emits a single line.  Non-finite floats (NaN and the infinities)
    have no JSON token and are emitted as [null]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries a byte offset.
    Numbers are validated against the RFC 8259 grammar (no leading [+],
    no leading-zero integers); those without [.]/[e] that fit in [int]
    parse as [Int], everything else as [Float].  [\uXXXX] escapes are
    decoded to UTF-8, with UTF-16 surrogate pairs combined into a
    single code point; unpaired surrogates are rejected. *)

(** {1 Accessors} — total, option-returning *)

val member : string -> t -> t option
(** [member key (Obj _)]; [None] on missing key or non-object. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)
