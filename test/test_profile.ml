(* The attribution profiler: profiling is free (counters and experiment
   tables byte-identical), accounts and exports are exact on hand-fed
   charges, and `explain` ranks a perturbed counter first. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Experiments = Mmu_tricks.Experiments
module Profile_export = Mmu_tricks.Profile_export
module Explain = Mmu_tricks.Explain
module Json = Mmu_tricks.Json

(* Same varied workload shape as the shadow tests: processes, COW
   forks, exec, mmap/munmap — plenty of misses to attribute. *)
let kernel_workload k =
  let text_pages = 8 and data_pages = 8 and stack_pages = 4 in
  let data_base = Mm.user_text_base + (text_pages lsl Addr.page_shift) in
  let store_all () =
    for i = 0 to data_pages - 1 do
      Kernel.touch k Mmu.Store (data_base + (i lsl Addr.page_shift))
    done
  in
  let parent = Kernel.spawn k ~text_pages ~data_pages ~stack_pages () in
  Kernel.switch_to k parent;
  Kernel.user_run k ~instrs:2000;
  store_all ();
  let buf = Kernel.sys_mmap k ~pages:4 ~writable:true in
  for i = 0 to 3 do
    Kernel.touch k Mmu.Store (buf + (i lsl Addr.page_shift))
  done;
  Kernel.sys_munmap k ~ea:buf ~pages:4;
  for _ = 1 to 2 do
    let child = Kernel.sys_fork k in
    store_all ();
    Kernel.switch_to k child;
    Kernel.sys_exec k ~text_pages ~data_pages ~stack_pages;
    Kernel.user_run k ~instrs:500;
    store_all ();
    Kernel.sys_exit k;
    Kernel.switch_to k parent
  done

let perf_signature p =
  ( p.Perf.cycles,
    p.Perf.mem_refs,
    Perf.tlb_misses p,
    p.Perf.htab_searches,
    Perf.cache_misses p,
    p.Perf.instructions )

(* --- profiling is free ------------------------------------------------- *)

let test_profiling_is_free () =
  List.iter
    (fun (name, policy) ->
      let run profiled =
        let k =
          Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed:7 ()
        in
        if profiled then
          Profile.enable ~sample_every:10_000 (Kernel.profile k);
        kernel_workload k;
        perf_signature (Kernel.perf k)
      in
      Alcotest.(check bool)
        (name ^ ": counters identical with profiling on")
        true
        (run false = run true))
    [ ("optimized", Policy.optimized); ("baseline", Policy.baseline) ]

let test_experiment_table_identical_under_boot_defaults () =
  (* the same guarantee end to end: an experiment's table is unchanged
     when the CLI arms process-wide profiling *)
  let d1 = Option.get (Experiments.find "D1") in
  let plain = d1.Experiments.run ~seed:42 () in
  Profile.set_boot_defaults ~sample_every:50_000 ~enabled:true ();
  let profiled, profilers =
    Fun.protect
      ~finally:(fun () ->
        Profile.set_boot_defaults ~enabled:false ();
        ignore (Profile.drain_registered () : Profile.t list))
      (fun () ->
        let t = d1.Experiments.run ~seed:42 () in
        (t, Profile.drain_registered ()))
  in
  Alcotest.(check bool) "table identical" true (plain = profiled);
  Alcotest.(check bool) "profilers were registered and armed" true
    (profilers <> []
    && List.exists (fun pr -> Profile.total_misses pr > 0) profilers)

(* --- accounting on hand-fed charges ------------------------------------ *)

let hand_charged () =
  let pr = Profile.create ~perf:(Perf.create ()) in
  Profile.enable pr;
  Profile.charge_miss pr ~pid:3 ~seg:2 ~page:0x2000 ~kind:Profile.Dtlb
    ~cost:412170;
  Profile.charge_miss pr ~pid:1 ~seg:0 ~page:0x1000 ~kind:Profile.Itlb
    ~cost:60;
  Profile.charge_miss pr ~pid:1 ~seg:0 ~page:0x1000 ~kind:Profile.Itlb
    ~cost:40;
  Profile.charge_miss pr ~pid:1 ~seg:0 ~page:0x3000 ~kind:Profile.Htab_miss
    ~cost:55;
  pr

let test_attribution_rows () =
  let pr = hand_charged () in
  Alcotest.(check int) "total misses" 4 (Profile.total_misses pr);
  Alcotest.(check int) "total cost" (412170 + 60 + 40 + 55)
    (Profile.total_cost pr);
  match Profile.attribution pr with
  | [ a; b; c ] ->
      Alcotest.(check bool) "itlb account first" true
        (a.Profile.r_pid = 1 && a.Profile.r_kind = Profile.Itlb
        && a.Profile.r_count = 2 && a.Profile.r_cost = 100);
      Alcotest.(check bool) "htab account second" true
        (b.Profile.r_pid = 1 && b.Profile.r_kind = Profile.Htab_miss);
      Alcotest.(check bool) "dtlb account last" true
        (c.Profile.r_pid = 3 && c.Profile.r_seg = 2
        && c.Profile.r_cost = 412170)
  | l ->
      Alcotest.fail (Printf.sprintf "expected 3 accounts, got %d"
                       (List.length l))

let test_hot_pages () =
  let pr = hand_charged () in
  Alcotest.(check (list (triple int int int)))
    "itlb hot pages"
    [ (0x1000, 2, 100) ]
    (Profile.hot_pages pr Profile.Itlb ~top:5);
  Alcotest.(check (list (triple int int int)))
    "dtlb hot pages"
    [ (0x2000, 1, 412170) ]
    (Profile.hot_pages pr Profile.Dtlb ~top:5)

let test_folded_golden () =
  Alcotest.(check string) "folded stacks"
    "pid_1;seg_0x0;itlb 100\n\
     pid_1;seg_0x0;htab 55\n\
     pid_3;seg_0x2;dtlb 412170\n"
    (Profile_export.folded [ hand_charged () ])

let test_census () =
  let pr = Profile.create ~perf:(Perf.create ()) in
  Profile.enable pr;
  Profile.set_tlb_capacity pr 256;
  Profile.note_tlb_census pr ~kernel:2 ~occupied:8;
  Profile.note_tlb_census pr ~kernel:6 ~occupied:8;
  Profile.note_tlb_census pr ~kernel:4 ~occupied:16;
  let c = Profile.census pr in
  Alcotest.(check int) "samples" 3 c.Profile.n_samples;
  Alcotest.(check int) "high water" 6 c.Profile.kernel_high_water;
  Alcotest.(check int) "kernel now" 4 c.Profile.kernel_now;
  Alcotest.(check int) "occupied now" 16 c.Profile.occupied_now;
  Alcotest.(check int) "capacity" 256 c.Profile.slot_capacity;
  (* (25 + 75 + 25) / 3 *)
  Alcotest.(check (float 1e-9)) "avg share" (125.0 /. 3.0)
    c.Profile.avg_share_pct

let test_htab_sampling () =
  (* a profiled kernel run records occupancy samples and can snapshot
     the htab on demand *)
  let k =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.baseline ~seed:7 ()
  in
  let pr = Kernel.profile k in
  Profile.enable ~sample_every:5_000 pr;
  kernel_workload k;
  Alcotest.(check bool) "periodic samples recorded" true
    (Profile.samples pr <> []);
  match Profile.snapshot_htab pr with
  | None -> Alcotest.fail "baseline policy machine has an htab"
  | Some s ->
      Alcotest.(check bool) "valid within capacity" true
        (s.Profile.h_valid >= 0 && s.Profile.h_valid <= s.Profile.h_capacity);
      Alcotest.(check int) "chain histogram sums to PTEG count"
        (s.Profile.h_capacity / 8)
        (Array.fold_left ( + ) 0 s.Profile.h_chains)

(* --- percentile interpolation ------------------------------------------ *)

let test_percentile_interpolated () =
  let h = Hist.create () in
  Alcotest.(check (float 0.0)) "empty" 0.0
    (Hist.percentile_interpolated h 0.5);
  List.iter (Hist.observe h) [ 1; 2; 3; 4 ];
  (* p50: rank 2 lands in bucket [2..3] as its first of two entries *)
  Alcotest.(check (float 1e-9)) "p50 interpolates" 2.5
    (Hist.percentile_interpolated h 0.5);
  Alcotest.(check (float 1e-9)) "p100 is the true max" 4.0
    (Hist.percentile_interpolated h 1.0);
  Alcotest.(check bool) "old percentile unchanged" true
    (Hist.percentile h 0.5 = 3)

(* --- explain ----------------------------------------------------------- *)

let table header rows =
  { Experiments.title = "t"; header; rows; notes = [] }

let test_explain_ranks_perturbed_counter_first () =
  let a =
    table [ "metric"; "value" ]
      [ [ "TLB misses"; "61,534" ]; [ "htab misses"; "21,266" ];
        [ "busy (ms)"; "551" ] ]
  in
  let b =
    table [ "metric"; "value" ]
      [ [ "TLB misses"; "91,534" ]; [ "htab misses"; "21,270" ];
        [ "busy (ms)"; "551" ] ]
  in
  let ranked = Explain.rank (Explain.diff_tables ~id:"E1" ~a ~b) in
  match ranked with
  | first :: rest ->
      Alcotest.(check string) "perturbed counter first" "TLB misses"
        first.Explain.x_row;
      Alcotest.(check (float 1e-6)) "relative deviation"
        (30000.0 /. 91534.0) first.Explain.x_rel;
      Alcotest.(check int) "only the two moved tokens" 1 (List.length rest);
      Alcotest.(check bool) "describe names the move" true
        (let s = Explain.describe first in
         String.length s > 0
         && Explain.describe first
            = "E1: TLB misses [value]: 61534 -> 91534 (+32.8%)")
  | [] -> Alcotest.fail "no deltas found"

let test_explain_attribution_join () =
  let doc =
    Json.Obj
      [ ( "experiments",
          Json.List
            [ Json.Obj
                [ ("id", Json.String "E1");
                  ( "observability",
                    Json.Obj
                      [ ( "profile",
                          Json.Obj
                            [ ( "attribution",
                                Json.List
                                  [ Json.Obj
                                      [ ("pid", Json.Int 2);
                                        ("segment", Json.Int 0);
                                        ("kind", Json.String "dtlb");
                                        ("count", Json.Int 10);
                                        ("cost", Json.Int 999) ];
                                    Json.Obj
                                      [ ("pid", Json.Int 7);
                                        ("segment", Json.Int 12);
                                        ("kind", Json.String "itlb");
                                        ("count", Json.Int 90);
                                        ("cost", Json.Int 12345) ] ] ) ] )
                      ] ) ] ] ) ]
  in
  Alcotest.(check (list string))
    "heaviest account first, hex segment"
    [ "pid 7 seg 0xC itlb: 90 misses, 12345 cycles";
      "pid 2 seg 0x0 dtlb: 10 misses, 999 cycles" ]
    (Explain.attribution_lines doc ~id:"E1");
  Alcotest.(check (list string)) "unknown id yields nothing" []
    (Explain.attribution_lines doc ~id:"E2")

(* --- boot-defaults registry -------------------------------------------- *)

let test_boot_defaults_registry () =
  Alcotest.(check int) "registry empty" 0
    (List.length (Profile.drain_registered ()));
  let mk () = Profile.create ~perf:(Perf.create ()) in
  Alcotest.(check bool) "disabled by default" false (Profile.enabled (mk ()));
  Profile.set_boot_defaults ~sample_every:123 ~enabled:true ();
  Fun.protect
    ~finally:(fun () ->
      Profile.set_boot_defaults ~enabled:false ();
      ignore (Profile.drain_registered () : Profile.t list))
    (fun () ->
      let pr = mk () in
      Alcotest.(check bool) "armed creation enables" true
        (Profile.enabled pr);
      Alcotest.(check int) "armed creation registers" 1
        (List.length (Profile.drain_registered ())));
  Alcotest.(check bool) "disarmed again" false (Profile.enabled (mk ()));
  Alcotest.(check int) "drained" 0
    (List.length (Profile.drain_registered ()))

let suite =
  [ Alcotest.test_case "profiling is free (kernel)" `Quick
      test_profiling_is_free;
    Alcotest.test_case "experiment table identical when armed" `Quick
      test_experiment_table_identical_under_boot_defaults;
    Alcotest.test_case "attribution rows" `Quick test_attribution_rows;
    Alcotest.test_case "hot pages" `Quick test_hot_pages;
    Alcotest.test_case "folded stacks golden" `Quick test_folded_golden;
    Alcotest.test_case "TLB census" `Quick test_census;
    Alcotest.test_case "htab occupancy sampling" `Quick test_htab_sampling;
    Alcotest.test_case "percentile interpolation" `Quick
      test_percentile_interpolated;
    Alcotest.test_case "explain ranks perturbation first" `Quick
      test_explain_ranks_perturbed_counter_first;
    Alcotest.test_case "explain attribution join" `Quick
      test_explain_attribution_join;
    Alcotest.test_case "boot-defaults registry" `Quick
      test_boot_defaults_registry ]
