type entry = {
  mutable valid : bool;
  mutable base_ea : int;
  mutable length : int;
  mutable phys_base : int;
}

type t = entry array

let n_registers = 4
let min_block = 128 * 1024
let max_block = 256 * 1024 * 1024

let create () =
  Array.init n_registers (fun _ ->
      { valid = false; base_ea = 0; length = 0; phys_base = 0 })

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let set t ~index ~base_ea ~length ~phys_base =
  if index < 0 || index >= n_registers then
    invalid_arg "Bat.set: index out of range";
  if not (is_power_of_two length) || length < min_block || length > max_block
  then invalid_arg "Bat.set: length must be a power of two in [128K, 256M]";
  if base_ea land (length - 1) <> 0 || phys_base land (length - 1) <> 0 then
    invalid_arg "Bat.set: bases must be aligned to the block length";
  let e = t.(index) in
  e.valid <- true;
  e.base_ea <- base_ea;
  e.length <- length;
  e.phys_base <- phys_base

let clear t ~index = t.(index).valid <- false

let clear_all t = Array.iter (fun e -> e.valid <- false) t

let translate t ea =
  (* Four entries: a linear scan models the parallel compare. *)
  let rec loop i =
    if i >= n_registers then None
    else
      let e = t.(i) in
      if e.valid && ea land lnot (e.length - 1) land Addr.ea_mask = e.base_ea
      then Some (e.phys_base lor (ea land (e.length - 1)))
      else loop (i + 1)
  in
  loop 0

let covers t ea = translate t ea <> None

let valid_count t =
  Array.fold_left (fun acc e -> if e.valid then acc + 1 else acc) 0 t
