(* Typed event tracing: a preallocated ring buffer of simulator events,
   a Perf-counter timeline sampler, and latency histograms.

   Everything here is observation only: emitting never charges cycles,
   touches the caches, or draws from an RNG, so a traced run and an
   untraced run of the same seed produce byte-identical Perf counts.
   The disabled path is one flag check (or one integer compare for the
   sampler) and allocates nothing. *)

type kind =
  | Itlb_miss
  | Dtlb_miss
  | Tlb_reload
  | Tlb_evict
  | Htab_probe
  | Htab_evict
  | Bat_hit
  | Context_switch
  | Run_slice
  | Idle_window
  | Flush_page
  | Flush_context
  | Page_fault
  | Idle_prezero
  | Idle_reclaim
  | Vma_map
  | Vma_unmap

let all_kinds =
  [ Itlb_miss; Dtlb_miss; Tlb_reload; Tlb_evict; Htab_probe; Htab_evict;
    Bat_hit; Context_switch; Run_slice; Idle_window; Flush_page;
    Flush_context; Page_fault; Idle_prezero; Idle_reclaim; Vma_map;
    Vma_unmap ]

let n_kinds = List.length all_kinds

let int_of_kind = function
  | Itlb_miss -> 0
  | Dtlb_miss -> 1
  | Tlb_reload -> 2
  | Tlb_evict -> 3
  | Htab_probe -> 4
  | Htab_evict -> 5
  | Bat_hit -> 6
  | Context_switch -> 7
  | Run_slice -> 8
  | Idle_window -> 9
  | Flush_page -> 10
  | Flush_context -> 11
  | Page_fault -> 12
  | Idle_prezero -> 13
  | Idle_reclaim -> 14
  | Vma_map -> 15
  | Vma_unmap -> 16

let kind_array = Array.of_list all_kinds
let kind_of_int i = kind_array.(i)

let kind_name = function
  | Itlb_miss -> "itlb_miss"
  | Dtlb_miss -> "dtlb_miss"
  | Tlb_reload -> "tlb_reload"
  | Tlb_evict -> "tlb_evict"
  | Htab_probe -> "htab_probe"
  | Htab_evict -> "htab_evict"
  | Bat_hit -> "bat_hit"
  | Context_switch -> "context_switch"
  | Run_slice -> "run_slice"
  | Idle_window -> "idle_window"
  | Flush_page -> "flush_page"
  | Flush_context -> "flush_context"
  | Page_fault -> "page_fault"
  | Idle_prezero -> "idle_prezero"
  | Idle_reclaim -> "idle_reclaim"
  | Vma_map -> "vma_map"
  | Vma_unmap -> "vma_unmap"

type event = {
  e_kind : kind;
  e_cycle : int;
  e_pid : int;
  e_a : int;
  e_b : int;
}

type t = {
  perf : Perf.t;  (* cycle source for event stamps and the sampler *)
  mutable enabled : bool;
  (* ring storage, structure-of-arrays so an emit writes five ints *)
  mutable r_kind : int array;
  mutable r_cycle : int array;
  mutable r_pid : int array;
  mutable r_a : int array;
  mutable r_b : int array;
  mutable head : int;  (* total events ever emitted *)
  kind_counts : int array;  (* per-kind totals, immune to ring wrap *)
  mutable cur_pid : int;
  (* timeline sampler *)
  mutable sample_every : int;
  mutable next_sample : int;  (* max_int while sampling is off *)
  mutable samples_rev : (int * Perf.t) list;
  (* latency histograms *)
  hist_probe : Hist.t;
  hist_tlb_service : Hist.t;
  hist_ctxsw : Hist.t;
}

let default_ring = 65536

let create_plain ~perf =
  { perf;
    enabled = false;
    r_kind = [||];
    r_cycle = [||];
    r_pid = [||];
    r_a = [||];
    r_b = [||];
    head = 0;
    kind_counts = Array.make n_kinds 0;
    cur_pid = 0;
    sample_every = 0;
    next_sample = max_int;
    samples_rev = [];
    hist_probe = Hist.create ();
    hist_tlb_service = Hist.create ();
    hist_ctxsw = Hist.create () }

(* --- process-wide boot defaults ------------------------------------- *)

(* Drivers that cannot reach the kernels being booted (the experiment
   registry boots its own) set these; every trace created afterwards
   starts enabled and registers itself for later collection. *)
let boot_defaults : (int * int) option ref = ref None
let registered_rev : t list ref = ref []

let set_sampling t ~every =
  if every > 0 then begin
    t.sample_every <- every;
    t.next_sample <- t.perf.Perf.cycles + every
  end
  else begin
    t.sample_every <- 0;
    t.next_sample <- max_int
  end

let enable ?(ring = default_ring) t =
  let ring = max 1 ring in
  t.r_kind <- Array.make ring 0;
  t.r_cycle <- Array.make ring 0;
  t.r_pid <- Array.make ring 0;
  t.r_a <- Array.make ring 0;
  t.r_b <- Array.make ring 0;
  t.head <- 0;
  t.enabled <- true

let disable t =
  t.enabled <- false;
  set_sampling t ~every:0

let set_boot_defaults ?(ring = default_ring) ?(sample_every = 0) ~enabled () =
  boot_defaults := (if enabled then Some (ring, sample_every) else None)

let drain_registered () =
  let l = List.rev !registered_rev in
  registered_rev := [];
  l

let create ~perf =
  let t = create_plain ~perf in
  (match !boot_defaults with
  | None -> ()
  | Some (ring, every) ->
      enable ~ring t;
      if every > 0 then set_sampling t ~every;
      registered_rev := t :: !registered_rev);
  t

(* --- emission --------------------------------------------------------- *)

let enabled t = t.enabled
let set_current_pid t pid = t.cur_pid <- pid
let current_pid t = t.cur_pid

let emit_for t kind ~pid ~a ~b =
  if t.enabled then begin
    let k = int_of_kind kind in
    t.kind_counts.(k) <- t.kind_counts.(k) + 1;
    let cap = Array.length t.r_kind in
    let i = t.head mod cap in
    t.r_kind.(i) <- k;
    t.r_cycle.(i) <- t.perf.Perf.cycles;
    t.r_pid.(i) <- pid;
    t.r_a.(i) <- a;
    t.r_b.(i) <- b;
    t.head <- t.head + 1
  end

let emit t kind ~a ~b = emit_for t kind ~pid:t.cur_pid ~a ~b

let emit_htab_probe t ~len ~hit =
  if t.enabled then begin
    Hist.observe t.hist_probe len;
    emit t Htab_probe ~a:len ~b:(if hit then 1 else 0)
  end

let emit_tlb_service t ~ea ~cost =
  if t.enabled then begin
    Hist.observe t.hist_tlb_service cost;
    emit t Tlb_reload ~a:ea ~b:cost
  end

let emit_context_switch t ~pid ~cost =
  if t.enabled then begin
    Hist.observe t.hist_ctxsw cost;
    emit_for t Context_switch ~pid ~a:pid ~b:cost
  end

(* --- inspection ------------------------------------------------------- *)

let capacity t = Array.length t.r_kind
let total t = t.head

let length t =
  let cap = capacity t in
  if cap = 0 then 0 else min t.head cap

let dropped t = t.head - length t

let kind_count t kind = t.kind_counts.(int_of_kind kind)

let iter t f =
  let cap = capacity t in
  if cap > 0 then begin
    let n = length t in
    let first = t.head - n in
    for j = first to t.head - 1 do
      let i = j mod cap in
      f
        { e_kind = kind_of_int t.r_kind.(i);
          e_cycle = t.r_cycle.(i);
          e_pid = t.r_pid.(i);
          e_a = t.r_a.(i);
          e_b = t.r_b.(i) }
    done
  end

let events t =
  let out = ref [] in
  iter t (fun e -> out := e :: !out);
  List.rev !out

(* --- timeline sampler ------------------------------------------------- *)

let take_sample t =
  t.samples_rev <- (t.perf.Perf.cycles, Perf.snapshot t.perf) :: t.samples_rev;
  t.next_sample <- t.perf.Perf.cycles + t.sample_every

let samples t = List.rev t.samples_rev

(* --- histograms ------------------------------------------------------- *)

let hist_probe t = t.hist_probe
let hist_tlb_service t = t.hist_tlb_service
let hist_ctxsw t = t.hist_ctxsw
