lib/ppc/tlb.ml: Addr Array
