lib/ppc/mmu.ml: Addr Array Bat Cache Cost Htab Machine Memsys Option Perf Pte Rng Segment Tlb
