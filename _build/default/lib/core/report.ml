type cell = string

let table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun n r -> max n (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i c -> widths.(i) <- max widths.(i) (String.length c))
        row)
    all;
  let print_row row =
    let cells =
      List.mapi
        (fun i c ->
          let pad = widths.(i) - String.length c in
          (* left-align the first column, right-align the rest *)
          if i = 0 then c ^ String.make pad ' ' else String.make pad ' ' ^ c)
        row
    in
    print_string "  ";
    print_endline (String.concat "  " cells)
  in
  print_row header;
  let rule = List.init cols (fun i -> String.make widths.(i) '-') in
  print_row rule;
  List.iter print_row rows

let fmt_float v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let fmt_us v = fmt_float v
let fmt_mbs v = fmt_float v
let fmt_ms v = fmt_float v
let fmt_pct v = Printf.sprintf "%.1f%%" v
let fmt_ratio v = Printf.sprintf "%.1fx" v

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf

let section title =
  print_newline ();
  print_endline (String.make 72 '=');
  print_endline title;
  print_endline (String.make 72 '=')

let paper_vs ~label ~unit ~paper ~measured =
  Printf.printf "  %-44s paper %10s %-5s measured %10s %s\n" label
    (fmt_float paper) unit (fmt_float measured) unit
