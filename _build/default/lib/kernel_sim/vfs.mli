(** A minimal page-cache file layer.

    Files are arrays of pages; a page is either resident (owning a
    physical frame) or cold (first access allocates the frame and costs a
    simulated disk wait, which the kernel spends in the idle task — the
    "a lot of I/O happens that must be waited for" of §9).  The file
    re-read benchmark reads a warm file, so its cost is pure copy +
    MMU/cache traffic. *)

type file

type t

val create : physmem:Physmem.t -> t

val create_file : t -> name:string -> pages:int -> file
(** A new, entirely cold file.
    @raise Invalid_argument if [name] exists. *)

val lookup : t -> string -> file option

val file_pages : file -> int

val name : file -> string

val resident_pages : file -> int

val page_frame : t -> file -> page:int -> (int * bool) option
(** [page_frame t f ~page] returns [(rpn, was_cold)], faulting the page
    in (allocating a frame) if needed; [None] when out of memory or out
    of range. *)

val evict : t -> file -> unit
(** Drop every resident page of [f], freeing the frames — makes the next
    read cold again. *)
