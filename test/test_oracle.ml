(* The central correctness property of the whole simulator:

   after ANY sequence of address-space operations, under ANY policy and
   machine, every translation the MMU can produce for the current task
   agrees exactly with the Linux page tables (the authoritative map), and
   addresses the page tables do not map are unreachable.

   This is precisely the safety argument of §7's lazy flushing: zombie
   TLB/htab entries may linger physically valid, but "their VSIDs will
   not match any VSIDs used by any process so incorrect matches won't be
   made".  A bug in VSID recycling, flush cutoffs, htab eviction or TLB
   invalidation shows up here as a stale translation. *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Task = Kernel_sim.Task
module Pagetable = Kernel_sim.Pagetable
module Config = Mmu_tricks.Config

type op =
  | Op_touch of int       (* touch somewhere in an existing vma *)
  | Op_mmap_small
  | Op_mmap_large         (* above the flush cutoff *)
  | Op_munmap_oldest
  | Op_switch
  | Op_idle
  | Op_syscall
  | Op_exec
  | Op_fork_child_writes of int  (* COW: fork, child stores, child exits *)
  | Op_map_framebuffer

let op_of_int n =
  match n mod 14 with
  | 0 | 1 | 2 | 3 | 4 -> Op_touch (n / 8)
  | 5 -> Op_mmap_small
  | 6 -> Op_mmap_large
  | 7 | 8 -> Op_munmap_oldest
  | 9 -> Op_switch
  | 10 -> Op_idle
  | 11 -> if n mod 24 = 11 then Op_exec else Op_syscall
  | 12 -> Op_fork_child_writes (n / 16)
  | 13 -> Op_map_framebuffer
  | _ -> assert false

let check_consistency k task =
  let mmu = Kernel.mmu k in
  let ok = ref true in
  Pagetable.iter (Mm.pagetable task.Task.mm) (fun ea entry ->
      match Mmu.probe mmu Mmu.Load ea with
      | Some pa ->
          if Addr.rpn_of_pa pa <> entry.Pagetable.rpn then ok := false
      | None -> ok := false);
  !ok

let run_ops ~machine ~policy ops =
  (* shadow on: every translation made along the way is also
     cross-checked against the reference MMU, for free *)
  let k = Kernel.boot ~machine ~policy ~seed:11 ~shadow:true () in
  let a = Kernel.spawn k () in
  let b = Kernel.spawn k () in
  Kernel.switch_to k a;
  let live_maps = ref [] in
  let consistent = ref true in
  let current () = Option.get (Kernel.current k) in
  let touch_in_vmas salt =
    let task = current () in
    let vmas = Mm.vmas task.Task.mm in
    match vmas with
    | [] -> ()
    | _ ->
        let v = List.nth vmas (salt mod List.length vmas) in
        let page = salt mod v.Mm.va_pages in
        let ea = v.Mm.va_start + (page lsl Addr.page_shift) in
        let kind = if v.Mm.va_writable then Mmu.Store else Mmu.Load in
        Kernel.touch k kind ea
  in
  let apply op =
    match op with
    | Op_touch salt -> touch_in_vmas salt
    | Op_mmap_small ->
        if List.length !live_maps < 6 then begin
          let pages = 4 in
          let ea = Kernel.sys_mmap k ~pages ~writable:true in
          Kernel.touch k Mmu.Store ea;
          live_maps := (current (), ea, pages) :: !live_maps
        end
    | Op_mmap_large ->
        if List.length !live_maps < 6 then begin
          let pages = Policy.flush_cutoff_pages + 12 in
          let ea = Kernel.sys_mmap k ~pages ~writable:true in
          Kernel.touch k Mmu.Store (ea + Addr.page_size);
          live_maps := (current (), ea, pages) :: !live_maps
        end
    | Op_munmap_oldest -> begin
        match List.rev !live_maps with
        | (owner, ea, pages) :: _ when owner == current () ->
            Kernel.sys_munmap k ~ea ~pages;
            live_maps :=
              List.filter (fun (_, e, _) -> e <> ea) !live_maps;
            (* the unmapped range must be unreachable immediately *)
            if Mmu.probe (Kernel.mmu k) Mmu.Load ea <> None then
              consistent := false
        | _ -> ()
      end
    | Op_switch ->
        let next = if current () == a then b else a in
        Kernel.switch_to k next
    | Op_idle -> Kernel.idle_for k ~cycles:20_000
    | Op_syscall -> Kernel.sys_null k
    | Op_exec ->
        (* exec drops this task's maps from our model *)
        let task = current () in
        live_maps := List.filter (fun (o, _, _) -> o != task) !live_maps;
        Kernel.sys_exec k ~text_pages:8 ~data_pages:8 ~stack_pages:4
    | Op_fork_child_writes salt -> begin
        let parent = current () in
        let child = Kernel.sys_fork k in
        Kernel.switch_to k child;
        (* exercise COW: write some parent pages from the child *)
        touch_in_vmas salt;
        touch_in_vmas (salt + 7);
        if not (check_consistency k child) then consistent := false;
        Kernel.sys_exit k;
        Kernel.switch_to k parent
      end
    | Op_map_framebuffer ->
        let task = current () in
        if task.Task.maps_framebuffer then begin
          (* unmap it: the aperture (and any dedicated BAT) must die *)
          Kernel.sys_munmap k ~ea:Mm.framebuffer_base ~pages:32;
          if
            Mmu.probe (Kernel.mmu k) Mmu.Load Mm.framebuffer_base <> None
          then consistent := false
        end
        else begin
          let ea = Kernel.sys_map_framebuffer k ~pages:32 in
          Kernel.touch k Mmu.Store ea;
          Kernel.touch k Mmu.Store (ea + (31 * 4096))
        end
  in
  List.iter
    (fun n ->
      apply (op_of_int n);
      if not (check_consistency k (current ())) then consistent := false)
    ops;
  (* final deep check on both tasks *)
  Kernel.switch_to k a;
  if not (check_consistency k a) then consistent := false;
  Kernel.switch_to k b;
  if not (check_consistency k b) then consistent := false;
  (match Kernel.shadow k with
  | Some sh -> if Shadow.total_divergences sh > 0 then consistent := false
  | None -> consistent := false);
  !consistent

let prop ~name ~machine ~policy =
  QCheck.Test.make ~name ~count:15
    QCheck.(list_of_size (Gen.return 60) (int_bound 1_000_000))
    (fun ops -> run_ops ~machine ~policy ops)

let suite =
  [ QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: optimized on 604"
         ~machine:Machine.ppc604_185 ~policy:Policy.optimized);
    QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: baseline on 604"
         ~machine:Machine.ppc604_185 ~policy:Policy.baseline);
    QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: precise flushing on 603"
         ~machine:Machine.ppc603_133 ~policy:Config.optimized_precise_flush);
    QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: no htab on 603"
         ~machine:Machine.ppc603_180 ~policy:Config.optimized_no_htab);
    QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: uncached page tables on 604"
         ~machine:Machine.ppc604_200 ~policy:Config.optimized_pt_uncached);
    QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: cached idle clearing on 603"
         ~machine:Machine.ppc603_133 ~policy:Config.clearing_cached_list);
    QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: per-process framebuffer BAT"
         ~machine:Machine.ppc604_185 ~policy:Config.optimized_fb_bat);
    QCheck_alcotest.to_alcotest
      (prop ~name:"oracle: idle cache lock + preload"
         ~machine:Machine.ppc603_180
         ~policy:
           { Config.optimized_idle_lock with
             Kernel_sim.Policy.cache_preload = true }) ]
