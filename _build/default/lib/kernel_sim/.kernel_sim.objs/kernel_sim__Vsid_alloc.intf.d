lib/kernel_sim/vsid_alloc.mli:
