lib/ppc/segment.ml: Addr Array
