(* Pipes and the page-cache file layer. *)
module Pipe = Kernel_sim.Pipe
module Vfs = Kernel_sim.Vfs
module Physmem = Kernel_sim.Physmem

let test_pipe_basics () =
  let p = Pipe.create ~index:0 in
  Alcotest.(check int) "empty" 0 (Pipe.level p);
  Alcotest.(check int) "capacity space" Pipe.capacity (Pipe.space p);
  Alcotest.(check int) "write accepted" 100 (Pipe.write p ~bytes:100);
  Alcotest.(check int) "level" 100 (Pipe.level p);
  Alcotest.(check int) "read delivered" 100 (Pipe.read p ~bytes:200);
  Alcotest.(check int) "drained" 0 (Pipe.level p)

let test_pipe_capacity_cap () =
  let p = Pipe.create ~index:1 in
  Alcotest.(check int) "first fill" Pipe.capacity
    (Pipe.write p ~bytes:(2 * Pipe.capacity));
  Alcotest.(check int) "full pipe accepts nothing" 0 (Pipe.write p ~bytes:1);
  ignore (Pipe.read p ~bytes:100 : int);
  Alcotest.(check int) "space reopens" 100 (Pipe.write p ~bytes:500)

let test_pipe_empty_read () =
  let p = Pipe.create ~index:2 in
  Alcotest.(check int) "empty read" 0 (Pipe.read p ~bytes:10)

let prop_pipe_conservation =
  QCheck.Test.make ~name:"pipe conserves bytes" ~count:100
    QCheck.(list (pair bool (int_bound 6000)))
    (fun ops ->
      let p = Pipe.create ~index:3 in
      List.iter
        (fun (is_write, n) ->
          if is_write then ignore (Pipe.write p ~bytes:n : int)
          else ignore (Pipe.read p ~bytes:n : int))
        ops;
      Pipe.total_written p = Pipe.total_read p + Pipe.level p
      && Pipe.level p >= 0
      && Pipe.level p <= Pipe.capacity)

let mk_vfs () =
  let pm = Physmem.create ~ram_bytes:(1024 * 1024) ~reserved_bytes:0 in
  (Vfs.create ~physmem:pm, pm)

let test_vfs_create_lookup () =
  let vfs, _ = mk_vfs () in
  let f = Vfs.create_file vfs ~name:"a" ~pages:10 in
  Alcotest.(check int) "pages" 10 (Vfs.file_pages f);
  Alcotest.(check string) "name" "a" (Vfs.name f);
  Alcotest.(check bool) "lookup finds" true (Vfs.lookup vfs "a" <> None);
  Alcotest.(check bool) "missing" true (Vfs.lookup vfs "b" = None);
  match Vfs.create_file vfs ~name:"a" ~pages:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name must fail"

let test_vfs_fault_in () =
  let vfs, _ = mk_vfs () in
  let f = Vfs.create_file vfs ~name:"a" ~pages:4 in
  Alcotest.(check int) "cold file" 0 (Vfs.resident_pages f);
  (match Vfs.page_frame vfs f ~page:2 with
  | Some (_, cold) -> Alcotest.(check bool) "first access cold" true cold
  | None -> Alcotest.fail "expected frame");
  (match Vfs.page_frame vfs f ~page:2 with
  | Some (rpn, cold) ->
      Alcotest.(check bool) "second access warm" false cold;
      Alcotest.(check bool) "stable frame" true (rpn >= 0)
  | None -> Alcotest.fail "expected frame");
  Alcotest.(check int) "one resident" 1 (Vfs.resident_pages f);
  Alcotest.(check bool) "out of range" true
    (Vfs.page_frame vfs f ~page:4 = None)

let test_vfs_evict () =
  let vfs, pm = mk_vfs () in
  let before = Physmem.free_frames pm in
  let f = Vfs.create_file vfs ~name:"a" ~pages:4 in
  for i = 0 to 3 do
    ignore (Vfs.page_frame vfs f ~page:i : (int * bool) option)
  done;
  Alcotest.(check int) "four frames used" (before - 4)
    (Physmem.free_frames pm);
  Vfs.evict vfs f;
  Alcotest.(check int) "frames returned" before (Physmem.free_frames pm);
  Alcotest.(check int) "cold again" 0 (Vfs.resident_pages f);
  match Vfs.page_frame vfs f ~page:0 with
  | Some (_, cold) -> Alcotest.(check bool) "re-faults" true cold
  | None -> Alcotest.fail "expected frame"

let suite =
  [ Alcotest.test_case "pipe basics" `Quick test_pipe_basics;
    Alcotest.test_case "pipe capacity" `Quick test_pipe_capacity_cap;
    Alcotest.test_case "pipe empty read" `Quick test_pipe_empty_read;
    QCheck_alcotest.to_alcotest prop_pipe_conservation;
    Alcotest.test_case "vfs create/lookup" `Quick test_vfs_create_lookup;
    Alcotest.test_case "vfs fault in" `Quick test_vfs_fault_in;
    Alcotest.test_case "vfs evict" `Quick test_vfs_evict ]
