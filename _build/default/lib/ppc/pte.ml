type protection =
  | Read_write
  | Read_only
  | No_access

type wimg = {
  write_through : bool;
  cache_inhibited : bool;
  memory_coherent : bool;
  guarded : bool;
}

let wimg_default =
  { write_through = false;
    cache_inhibited = false;
    memory_coherent = true;
    guarded = false }

let wimg_uncached = { wimg_default with cache_inhibited = true }

type t = {
  mutable valid : bool;
  mutable vsid : int;
  mutable page_index : int;
  mutable rpn : int;
  mutable secondary : bool;
  mutable referenced : bool;
  mutable changed : bool;
  mutable wimg : wimg;
  mutable protection : protection;
}

let make ?(secondary = false) ?(wimg = wimg_default)
    ?(protection = Read_write) ~vsid ~page_index ~rpn () =
  { valid = true;
    vsid = vsid land 0xFFFFFF;
    page_index = page_index land 0xFFFF;
    rpn = rpn land 0xFFFFF;
    secondary;
    referenced = false;
    changed = false;
    wimg;
    protection }

let invalid () =
  { valid = false;
    vsid = 0;
    page_index = 0;
    rpn = 0;
    secondary = false;
    referenced = false;
    changed = false;
    wimg = wimg_default;
    protection = No_access }

let matches pte ~vsid ~page_index =
  pte.valid && pte.vsid = vsid && pte.page_index = page_index

let vpn pte = Addr.vpn_of ~vsid:pte.vsid ~ea:(pte.page_index lsl Addr.page_shift)

let hash_primary ~n_ptegs ~vsid ~page_index =
  ((vsid land 0x7FFFF) lxor (page_index land 0xFFFF)) land (n_ptegs - 1)

let hash_secondary ~n_ptegs ~primary = lnot primary land (n_ptegs - 1)

let pp fmt t =
  if not t.valid then Format.fprintf fmt "<invalid>"
  else
    Format.fprintf fmt "{vsid=%#x pidx=%#x rpn=%#x%s%s%s%s}" t.vsid
      t.page_index t.rpn
      (if t.secondary then " H" else "")
      (if t.referenced then " R" else "")
      (if t.changed then " C" else "")
      (if t.wimg.cache_inhibited then " I" else "")
