lib/ppc/cache.mli: Addr
