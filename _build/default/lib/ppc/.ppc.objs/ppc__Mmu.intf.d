lib/ppc/mmu.mli: Addr Bat Htab Machine Memsys Pte Rng Segment Tlb
