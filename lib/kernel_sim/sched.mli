(** A cooperative round-robin scheduler with per-CPU run queues.

    The microbenchmarks drive {!Kernel.switch_to} directly (they {e are}
    the schedule); macro workloads with real blocking — compile jobs
    sleeping on disk while others compute — need an actual scheduler.
    Processes are step functions: each call runs one bounded slice on the
    current task and says what happens next ([Yield] back to the queue,
    [Sleep] until a deadline, or [Done]).

    On an SMP kernel each CPU owns a run queue (enrollment deals tasks
    round-robin across them) and the scheduler gives every CPU one turn
    per pass, moving the kernel's point of view with
    {!Kernel.set_active_cpu}.  A CPU whose queue has nothing runnable
    steals from the most-loaded other queue — never the victim's last
    runnable task — charging {!Kernel.note_work_steal} per migration.
    Only when {e no} CPU can run does the machine idle until the
    earliest wake-up — which is exactly when the §7/§9 idle work (zombie
    reclaim, page clearing) happens on a loaded system.  At one CPU all
    of this reduces to the old single-queue scheduler, byte-identically. *)

(** What a process slice reports back. *)
type outcome =
  | Yield          (** runnable again immediately *)
  | Sleep of int   (** blocked for this many cycles (disk, timer) *)
  | Done           (** the process exited (the step called [sys_exit]) *)

type t

val create : Kernel.t -> t
(** One run queue per kernel CPU. *)

val add : t -> Task.t -> (Kernel.t -> outcome) -> unit
(** [add t task step] enrolls a process on the next queue round-robin.
    The scheduler switches to [task] before every [step] call. *)

val live : t -> int
(** Enrolled processes not yet [Done], across all queues. *)

val run : t -> unit
(** Round-robin until every process is [Done].  Context switches are
    charged only when a CPU's running task actually changes; sleeping
    with nothing runnable anywhere charges idle time.  (Timer interrupts
    fire inside the kernel's own operations — see {!Kernel.timer_tick}.) *)
