test/test_edges.ml: Addr Alcotest Bat Cache Htab Kernel_sim List Machine Mmu Ppc Pte Rng Tlb Workloads
