examples/display_server.mli:
