(** Table rendering for the benchmark harness.

    Produces the paper-style tables with a measured column next to the
    paper's reported value, so every bench's output is directly
    comparable to the original (EXPERIMENTS.md is generated from the same
    rows). *)

type cell = string

val table : header:cell list -> rows:cell list list -> unit
(** Print an aligned ASCII table to stdout. *)

val fmt_us : float -> string
(** Microseconds with sensible precision ("3240", "41.2", "3.18"). *)

val fmt_mbs : float -> string
(** Bandwidth in MB/s. *)

val fmt_ms : float -> string

val fmt_pct : float -> string

val fmt_ratio : float -> string
(** A multiplication factor ("80.3x"). *)

val fmt_int : int -> string
(** Thousands separators ("219,000,000"). *)

val section : string -> unit
(** Print a section banner. *)

val paper_vs : label:string -> unit:string -> paper:float -> measured:float -> unit
(** One "paper says / we measure" comparison line. *)
