lib/kernel_sim/vfs.mli: Physmem
