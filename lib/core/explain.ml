(* Why did a run get slower?  Diff two results documents, rank the
   counter deltas by contribution (relative deviation, the same measure
   the checker gates on), and join the winners against the attribution
   the documents embed (observability.profile) to name the responsible
   PID/segment.  Turns "numbers moved" into "kernel ITLB pressure in
   segment 0xC moved". *)

type delta = {
  x_id : string;       (* experiment id *)
  x_row : string;      (* row label (first cell of the row) *)
  x_col : string;      (* column header of the differing cell *)
  x_token : int;       (* index of the numeric token within the cell *)
  x_a : float;         (* value in document A *)
  x_b : float;         (* value in document B *)
  x_rel : float;       (* relative deviation, |a-b| / max |a| |b| *)
}

let nth_or l i d = match List.nth_opt l i with Some x -> x | None -> d

(* Every numeric token that differs between two tables of the same
   shape.  Shape mismatches (headers, row/cell/token counts) yield no
   deltas — `check` reports those structurally. *)
let diff_tables ~id ~(a : Experiments.table) ~(b : Experiments.table) =
  let out = ref [] in
  if List.length a.Experiments.rows = List.length b.Experiments.rows then
    List.iteri
      (fun _r (arow, brow) ->
        if List.length arow = List.length brow then begin
          let label = nth_or arow 0 "" in
          List.iteri
            (fun c (acell, bcell) ->
              let an = Baseline.numbers_of_cell acell
              and bn = Baseline.numbers_of_cell bcell in
              if List.length an = List.length bn then
                List.iteri
                  (fun tok (av, bv) ->
                    let rel = Baseline.rel_dev av bv in
                    if rel > 0.0 then
                      out :=
                        { x_id = id;
                          x_row = label;
                          x_col = nth_or a.Experiments.header c
                                    (Printf.sprintf "col %d" (c + 1));
                          x_token = tok;
                          x_a = av;
                          x_b = bv;
                          x_rel = rel }
                        :: !out)
                  (List.combine an bn))
            (List.combine arow brow)
        end)
      (List.combine a.Experiments.rows b.Experiments.rows);
  List.rev !out

(* Largest contribution first; magnitude of the absolute change breaks
   ties so a 2x swing on a big counter outranks one on a tiny counter. *)
let rank deltas =
  List.sort
    (fun d1 d2 ->
      match compare d2.x_rel d1.x_rel with
      | 0 -> compare (Float.abs (d2.x_a -. d2.x_b)) (Float.abs (d1.x_a -. d1.x_b))
      | c -> c)
    deltas

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let describe d =
  let direction = if d.x_b > d.x_a then "+" else "-" in
  Printf.sprintf "%s: %s [%s]: %s -> %s (%s%.1f%%)" d.x_id d.x_row d.x_col
    (fmt_value d.x_a) (fmt_value d.x_b) direction (100.0 *. d.x_rel)

(* --- attribution join ------------------------------------------------- *)

(* The raw JSON of one experiment entry in a results document. *)
let experiment_json doc ~id =
  match Json.member "experiments" doc with
  | Some (Json.List entries) ->
      List.find_opt
        (fun e ->
          match Option.bind (Json.member "id" e) Json.to_string_opt with
          | Some i -> i = id
          | None -> false)
        entries
  | _ -> None

(* The heaviest embedded attribution accounts for one experiment, as
   human-readable "pid 0 seg 0xC itlb: 123 misses, 45678 cycles" lines
   (cost order).  Empty when the document was produced without
   --profile. *)
let attribution_lines ?(top = 3) doc ~id =
  match
    Option.bind (experiment_json doc ~id) (fun e ->
        Option.bind (Json.member "observability" e) (fun o ->
            Option.bind (Json.member "profile" o) (Json.member "attribution")))
  with
  | Some (Json.List accounts) ->
      let parsed =
        List.filter_map
          (fun a ->
            let int k = Option.bind (Json.member k a) Json.to_int_opt in
            let str k = Option.bind (Json.member k a) Json.to_string_opt in
            match (int "pid", int "segment", str "kind", int "count", int "cost")
            with
            | Some pid, Some seg, Some kind, Some count, Some cost ->
                Some (pid, seg, kind, count, cost)
            | _ -> None)
          accounts
      in
      let sorted =
        List.sort (fun (_, _, _, _, c1) (_, _, _, _, c2) -> compare c2 c1)
          parsed
      in
      List.filteri (fun i _ -> i < top) sorted
      |> List.map (fun (pid, seg, kind, count, cost) ->
             Printf.sprintf "pid %d seg 0x%X %s: %d misses, %d cycles" pid seg
               kind count cost)
  | _ -> []

(* --- whole-document explanation --------------------------------------- *)

type report = {
  rep_delta : delta;
  rep_attribution : string list;
      (* heaviest accounts of the experiment the delta belongs to, from
         whichever document embeds attribution (B wins) *)
}

let explain_docs ?(top = 10) ~a_doc ~a_json ~b_doc ~b_json () =
  let ids_b = List.map fst b_doc.Baseline.d_entries in
  let common =
    List.filter (fun (id, _) -> List.mem id ids_b) a_doc.Baseline.d_entries
  in
  let deltas =
    List.concat_map
      (fun (id, ta) ->
        let tb = List.assoc id b_doc.Baseline.d_entries in
        diff_tables ~id ~a:ta ~b:tb)
      common
  in
  let ranked = List.filteri (fun i _ -> i < top) (rank deltas) in
  List.map
    (fun d ->
      let attr =
        match attribution_lines b_json ~id:d.x_id with
        | [] -> attribution_lines a_json ~id:d.x_id
        | l -> l
      in
      { rep_delta = d; rep_attribution = attr })
    ranked

let render_report r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (describe r.rep_delta);
  Buffer.add_char buf '\n';
  List.iter
    (fun line -> Buffer.add_string buf ("    attribution: " ^ line ^ "\n"))
    r.rep_attribution;
  Buffer.contents buf
