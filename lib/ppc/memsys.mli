(** The memory system: caches + cycle accounting.

    Every simulated memory reference and instruction flows through this
    module so that cycle charges and counters stay consistent: a cache hit
    costs one cycle, a miss or a cache-inhibited access costs the
    machine's memory latency, and an instruction costs one cycle (both
    the 603 and 604 approach one instruction per cycle on hot code; stalls
    are captured by the explicit miss costs).

    The [idle] flag routes cycle charges to the idle counter as well, so
    experiments can separate idle-task work (zombie reclaim, page
    clearing) from foreground work. *)

type t

val create : machine:Machine.t -> perf:Perf.t -> t

val machine : t -> Machine.t
val perf : t -> Perf.t

val trace : t -> Trace.t
(** The machine's trace handle (disabled until [Trace.enable]).  Cycle
    charges check its sampling deadline, so timeline samples land here
    no matter which subsystem advanced the clock. *)

val profile : t -> Profile.t
(** The machine's attribution profiler (disabled until
    [Profile.enable]).  Cycle charges check its htab-occupancy sampling
    deadline on the same cadence discipline as the trace timeline. *)

val span : t -> Span.t
(** The machine's request-span recorder (disabled until [Span.enable]).
    Event-driven, not cadence-driven: the charge path never checks it,
    so the disabled cost is the flag check at each instrumented site. *)

val recorder : t -> Recorder.t
(** The machine's flight recorder (disabled until [Recorder.enable]).
    Cycle charges check its sampling deadline on the same cadence
    discipline as the trace timeline; the "span" gauge (completed
    requests, running p50/p99 latency) is pre-installed here, the
    machine-shape gauges (htab, TLB, run queues) by their owners. *)

val icache : t -> Cache.t
val dcache : t -> Cache.t

val set_idle : t -> bool -> unit
(** While set, all cycles charged also count as idle cycles. *)

val in_idle : t -> bool

val data_ref :
  t -> source:Cache.source -> inhibited:bool -> write:bool -> Addr.pa -> unit
(** One data reference: drives the D-cache and charges cycles.  A store
    dirties its line; evicting a dirty line later costs a (half-latency,
    posted) write-back. *)

val inst_ref : t -> Addr.pa -> unit
(** One instruction fetch reference: drives the I-cache. *)

val dcbz : t -> source:Cache.source -> Addr.pa -> unit
(** One [dcbz]: allocate-and-zero the line containing the address in the
    D-cache without fetching it from memory.  Costs {!Cost.dcbz_cycles}
    (plus any dirty write-back); pollutes by eviction, never by fetch. *)

val prefetch : t -> source:Cache.source -> Addr.pa -> unit
(** One [dcbt]-style prefetch hint (§10.2): brings the line in while
    execution continues — the fill is overlapped, so only
    {!Cost.prefetch_cycles} are charged. *)

val set_cache_locked : t -> bool -> unit
(** §10.1: lock/unlock both L1 caches — while locked, misses do not
    allocate, so the contents cannot be displaced. *)

val instructions : t -> int -> unit
(** [instructions t n] charges [n] instructions at one cycle each —
    path-length accounting for code whose individual fetches are not
    simulated. *)

val stall : t -> int -> unit
(** [stall t n] charges [n] raw cycles (trap overheads, fixed hardware
    costs). *)

val sampling : t -> bool
(** Whether any timeline sampler (trace, profile or recorder) is armed.  While
    true the fused charges below take the historical charge-by-charge
    sequence, so sample timing and contents are byte-identical to the
    unfused calls; counters are identical either way. *)

val instructions_stall : t -> instr:int -> stall:int -> unit
(** [instructions_stall t ~instr ~stall] is
    [stall t stall; instructions t instr] fused into one charge (one
    sampler check) — the reload sequence's trap stall plus handler path
    length batched together. *)

val data_ref_instr :
  t ->
  instr:int ->
  source:Cache.source ->
  inhibited:bool ->
  write:bool ->
  Addr.pa ->
  unit
(** [data_ref_instr t ~instr ...] is [instructions t instr] fused into
    the following {!data_ref}'s charge — the software htab probe's
    per-slot compare/branch cost riding on the PTE load. *)

val copy_lines : t -> source:Cache.source -> src:Addr.pa -> dst:Addr.pa -> bytes:int -> unit
(** [copy_lines t ~source ~src ~dst ~bytes] models a block copy at
    cache-line granularity: one read reference per source line and one
    write reference per destination line, plus one cycle per 4-byte word
    moved. *)

val us_elapsed : t -> float
(** Total cycles so far converted to microseconds at the machine clock. *)
