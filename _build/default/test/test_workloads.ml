(* Workloads: reference generator, lmbench drivers, kbuild. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Refgen = Workloads.Refgen
module Lmbench = Workloads.Lmbench
module Kbuild = Workloads.Kbuild
module Measure = Workloads.Measure

let test_refgen_bounds () =
  let rng = Rng.create ~seed:1 in
  let g = Refgen.create ~rng ~base_ea:0x40000000 ~pages:10 () in
  for _ = 1 to 1000 do
    let ea = Refgen.next g in
    Alcotest.(check bool) "within region" true
      (ea >= 0x40000000 && ea < 0x40000000 + (10 * Addr.page_size));
    Alcotest.(check int) "word aligned" 0 (ea land 3)
  done

let test_refgen_determinism () =
  let mk () =
    Refgen.create ~rng:(Rng.create ~seed:5) ~base_ea:0 ~pages:100 ()
  in
  let a = mk () and b = mk () in
  for _ = 1 to 200 do
    Alcotest.(check int) "same stream" (Refgen.next a) (Refgen.next b)
  done

let test_refgen_locality () =
  let rng = Rng.create ~seed:9 in
  let g =
    Refgen.create ~rng ~base_ea:0 ~pages:100 ~hot_fraction:0.1 ~locality:0.9
      ()
  in
  let hot = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    if Refgen.next g < 10 * Addr.page_size then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "hot fraction %.2f near 0.91" frac)
    true
    (frac > 0.85 && frac < 0.97)

let test_measure_delta () =
  let k =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:1 ()
  in
  let d = Measure.perf k (fun () -> Kernel.idle_for k ~cycles:1000) in
  Alcotest.(check bool) "cycles measured" true (d.Perf.cycles >= 1000);
  let c = Measure.cycles k (fun () -> ()) in
  Alcotest.(check int) "empty region is free" 0 c

let boot () =
  Kernel.boot ~machine:Machine.ppc604_133 ~policy:Policy.optimized ~seed:1 ()

let test_null_positive () =
  let us = Lmbench.null_syscall_us (boot ()) in
  Alcotest.(check bool)
    (Printf.sprintf "null %.2fus in a sane band" us)
    true (us > 0.2 && us < 50.0)

let test_ctx_more_procs_costs_more () =
  let c2 = Lmbench.ctx_switch_us (boot ()) ~nprocs:2 in
  let c8 = Lmbench.ctx_switch_us (boot ()) ~nprocs:8 in
  Alcotest.(check bool)
    (Printf.sprintf "ctx8 %.1f >= ctx2 %.1f" c8 c2)
    true (c8 >= c2 *. 0.9)

let test_pipe_latency_exceeds_null () =
  let k = boot () in
  let null = Lmbench.null_syscall_us k in
  let lat = Lmbench.pipe_latency_us (boot ()) in
  Alcotest.(check bool) "pipe latency > syscall" true (lat > null)

let test_pipe_bw_positive () =
  let bw = Lmbench.pipe_bandwidth_mbs (boot ()) in
  Alcotest.(check bool)
    (Printf.sprintf "bw %.1f MB/s sane" bw)
    true
    (bw > 5.0 && bw < 500.0)

let test_benchmarks_clean_up () =
  let k = boot () in
  ignore (Lmbench.pipe_latency_us k : float);
  Alcotest.(check int) "no leaked tasks" 0 (List.length (Kernel.tasks k));
  Alcotest.(check bool) "no current task" true (Kernel.current k = None)

let test_benchmark_determinism () =
  let a = Lmbench.mmap_latency_us (boot ()) in
  let b = Lmbench.mmap_latency_us (boot ()) in
  Alcotest.(check (float 1e-9)) "same seed, same result" a b

let test_pipe_loaded_slower_than_idle () =
  let idle_lat = Lmbench.pipe_latency_us (boot ()) in
  let loaded_lat = Lmbench.pipe_latency_loaded_us (boot ()) in
  Alcotest.(check bool)
    (Printf.sprintf "loaded %.1f >= idle %.1f" loaded_lat idle_lat)
    true
    (loaded_lat >= idle_lat *. 0.95)

let small_multiuser =
  { Workloads.Multiuser.rounds = 6;
    editor_pages = 40;
    compile_pages = 80;
    spool_pages = 12 }

let test_multiuser_runs () =
  let r =
    Workloads.Multiuser.measure ~machine:Machine.ppc604_133
      ~policy:Policy.optimized ~params:small_multiuser ()
  in
  let module Mu = Workloads.Multiuser in
  Alcotest.(check bool) "busy positive" true (r.Mu.busy_us > 0.0);
  Alcotest.(check bool) "keystroke latency positive" true
    (r.Mu.keystroke_us > 0.0);
  Alcotest.(check bool) "utility latency positive" true
    (r.Mu.utility_us > 0.0);
  Alcotest.(check bool) "idle time existed (think time)" true
    (r.Mu.perf.Perf.idle_cycles > 0)

let test_multiuser_optimized_wins () =
  let module Mu = Workloads.Multiuser in
  let busy policy =
    (Mu.measure ~machine:Machine.ppc604_133 ~policy ~params:small_multiuser
       ())
      .Mu.busy_us
  in
  Alcotest.(check bool) "optimized kernel is faster" true
    (busy Policy.baseline > busy Policy.optimized)

let test_multiuser_cleans_up () =
  let k =
    Kernel.boot ~machine:Machine.ppc604_133 ~policy:Policy.optimized ~seed:3 ()
  in
  ignore (Workloads.Multiuser.run k ~params:small_multiuser : float * float);
  Alcotest.(check int) "no tasks left" 0 (List.length (Kernel.tasks k))

let small_kbuild =
  { Kbuild.jobs = 2;
    compute_rounds = 4;
    job_text_pages = 20;
    job_data_pages = 40;
    source_pages = 8;
    header_pages = 16 }

let test_kbuild_runs () =
  let r =
    Kbuild.measure ~machine:Machine.ppc604_185 ~policy:Policy.optimized
      ~params:small_kbuild ()
  in
  Alcotest.(check bool) "wall positive" true (r.Kbuild.wall_us > 0.0);
  Alcotest.(check bool) "busy <= wall" true (r.Kbuild.busy_us <= r.Kbuild.wall_us);
  Alcotest.(check bool) "faults happened" true
    (r.Kbuild.perf.Perf.page_faults > 0);
  Alcotest.(check bool) "syscalls happened" true
    (r.Kbuild.perf.Perf.syscalls > 0)

let test_kbuild_releases_memory () =
  let k =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:1 ()
  in
  let pm = Kernel.physmem k in
  let free0 = Kernel_sim.Physmem.free_frames pm in
  Kbuild.run k ~params:small_kbuild;
  (* page-cache headers stay resident; everything else must come back *)
  Alcotest.(check bool) "most frames released" true
    (Kernel_sim.Physmem.free_frames pm
    >= free0 - small_kbuild.Kbuild.header_pages - 70);
  Alcotest.(check int) "no tasks left" 0 (List.length (Kernel.tasks k))

let test_kbuild_baseline_slower () =
  let wall policy =
    (Kbuild.measure ~machine:Machine.ppc604_185 ~policy ~params:small_kbuild
       ())
      .Kbuild.busy_us
  in
  let base = wall Policy.baseline in
  let opt = wall Policy.optimized in
  Alcotest.(check bool)
    (Printf.sprintf "baseline %.0f > optimized %.0f" base opt)
    true (base > opt)

let test_workload_identical_across_policies () =
  (* with the MMU rng split from the workload rng, two policies at one
     seed must see byte-identical workloads: the workload-driven
     counters (syscalls, faults) coincide even though MMU behaviour
     differs *)
  let run policy =
    (Kbuild.measure ~machine:Machine.ppc604_185 ~policy ~params:small_kbuild
       ~seed:9 ())
      .Kbuild.perf
  in
  let a = run Policy.baseline in
  let b = run Policy.optimized in
  Alcotest.(check int) "same syscall count" a.Perf.syscalls b.Perf.syscalls;
  Alcotest.(check int) "same fault count" a.Perf.page_faults
    b.Perf.page_faults;
  Alcotest.(check bool) "but MMU behaviour differs" true
    (Perf.tlb_misses a <> Perf.tlb_misses b)

let test_interactive_runs () =
  let module I = Workloads.Interactive in
  let small =
    { I.keystrokes = 6; think_cycles = 20_000; editor_pages = 32;
      compile_pages = 80 }
  in
  let r =
    I.measure ~machine:Machine.ppc604_133 ~policy:Policy.optimized
      ~params:small ~seed:4 ()
  in
  Alcotest.(check bool) "mean response positive" true
    (r.I.mean_response_us > 0.0);
  Alcotest.(check bool) "worst >= mean" true
    (r.I.worst_response_us >= r.I.mean_response_us);
  Alcotest.(check bool) "wall covers the session" true
    (r.I.wall_us > r.I.mean_response_us)

let test_interactive_optimized_snappier () =
  let module I = Workloads.Interactive in
  let small =
    { I.keystrokes = 10; think_cycles = 20_000; editor_pages = 48;
      compile_pages = 120 }
  in
  let mean policy =
    (I.measure ~machine:Machine.ppc604_133 ~policy ~params:small ~seed:4 ())
      .I.mean_response_us
  in
  Alcotest.(check bool) "optimized kernel responds faster" true
    (mean Policy.optimized < mean Policy.baseline)

let suite =
  [ Alcotest.test_case "refgen bounds" `Quick test_refgen_bounds;
    Alcotest.test_case "refgen determinism" `Quick test_refgen_determinism;
    Alcotest.test_case "refgen locality" `Quick test_refgen_locality;
    Alcotest.test_case "measure deltas" `Quick test_measure_delta;
    Alcotest.test_case "null syscall sane" `Quick test_null_positive;
    Alcotest.test_case "ctx scales with procs" `Quick
      test_ctx_more_procs_costs_more;
    Alcotest.test_case "pipe latency > syscall" `Quick
      test_pipe_latency_exceeds_null;
    Alcotest.test_case "pipe bandwidth sane" `Quick test_pipe_bw_positive;
    Alcotest.test_case "benchmarks clean up" `Quick test_benchmarks_clean_up;
    Alcotest.test_case "benchmark determinism" `Quick
      test_benchmark_determinism;
    Alcotest.test_case "kbuild runs" `Quick test_kbuild_runs;
    Alcotest.test_case "kbuild releases memory" `Quick
      test_kbuild_releases_memory;
    Alcotest.test_case "kbuild baseline slower" `Slow
      test_kbuild_baseline_slower;
    Alcotest.test_case "loaded pipe latency" `Slow
      test_pipe_loaded_slower_than_idle;
    Alcotest.test_case "multiuser runs" `Quick test_multiuser_runs;
    Alcotest.test_case "multiuser optimized wins" `Slow
      test_multiuser_optimized_wins;
    Alcotest.test_case "multiuser cleans up" `Quick test_multiuser_cleans_up;
    Alcotest.test_case "workloads identical across policies" `Quick
      test_workload_identical_across_policies;
    Alcotest.test_case "interactive workload runs" `Quick
      test_interactive_runs;
    Alcotest.test_case "interactive optimized snappier" `Slow
      test_interactive_optimized_snappier ]
