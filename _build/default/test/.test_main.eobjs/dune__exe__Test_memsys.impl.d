test/test_memsys.ml: Alcotest Cache Machine Memsys Perf Ppc
