(* The benchmark harness: regenerates every table and measured claim of
   "Optimizing the Idle Task and Other MMU Tricks" (OSDI 1999).

   The experiments themselves live in Mmu_tricks.Experiments (one
   function per table/claim, structured results); this driver selects,
   runs and prints them — optionally across worker processes via
   Mmu_tricks.Runner — then runs a bechamel micro-benchmark pass over
   the simulator's hot paths.

   Run everything:          dune exec bench/main.exe
   Run some sections:       dune exec bench/main.exe -- T1 E6 ...
   Across 4 workers:        dune exec bench/main.exe -- --jobs 4
   Machine-readable:        dune exec bench/main.exe -- --json
   Skip the bechamel pass:  dune exec bench/main.exe -- --no-micro
   Throughput micros only:  dune exec bench/main.exe -- --throughput [--json]
                            (the BENCH_throughput.json measurement pass;
                             see docs/PERFORMANCE.md) *)

open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
module Experiments = Mmu_tricks.Experiments
module Report = Mmu_tricks.Report

let seed = 42

(* ------------------------------------------------- bechamel micro-pass *)

(* Micro-benchmarks of the simulator's own hot paths — one Test.make per
   reproduced table — as sanity that the harness is not the bottleneck. *)
let micro () =
  Report.section "Bechamel micro-benchmarks of simulator hot paths";
  let open Bechamel in
  let mk_kernel () =
    let k =
      Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed ()
    in
    let t = Kernel.spawn k () in
    Kernel.switch_to k t;
    Kernel.user_run k ~instrs:2000;
    k
  in
  let data_base = Mm.user_text_base + (16 lsl Addr.page_shift) in
  let k1 = mk_kernel () in
  Kernel.touch k1 Mmu.Store data_base;
  let test_t1 =
    Test.make ~name:"table1-unit: warm MMU access"
      (Staged.stage (fun () -> Kernel.touch k1 Mmu.Load data_base))
  in
  let k2 = mk_kernel () in
  let test_t2 =
    Test.make ~name:"table2-unit: null syscall path"
      (Staged.stage (fun () -> Kernel.sys_null k2))
  in
  let k3 = mk_kernel () in
  let test_t3 =
    Test.make ~name:"table3-unit: idle slice"
      (Staged.stage (fun () -> Kernel.idle_slice k3))
  in
  (* same hot path as table1-unit but with the event trace recording, to
     keep an eye on the observability overhead when it is switched on *)
  let k4 = mk_kernel () in
  Trace.enable ~ring:65536 (Kernel.trace k4);
  Kernel.touch k4 Mmu.Store data_base;
  let test_tr =
    Test.make ~name:"trace-unit: warm MMU access, tracing on"
      (Staged.stage (fun () -> Kernel.touch k4 Mmu.Load data_base))
  in
  (* and again with the attribution profiler charging, so the cost of
     profiling sits next to the cost of tracing in the same table *)
  let k5 = mk_kernel () in
  Profile.enable (Kernel.profile k5);
  Kernel.touch k5 Mmu.Store data_base;
  let test_pr =
    Test.make ~name:"profile-unit: warm MMU access, profiling on"
      (Staged.stage (fun () -> Kernel.touch k5 Mmu.Load data_base))
  in
  (* and with the flight recorder sampling, so all three observability
     layers' armed costs sit side by side *)
  let k6 = mk_kernel () in
  Recorder.enable ~every:1_000_000 ~cap:256 (Kernel.recorder k6);
  Kernel.touch k6 Mmu.Store data_base;
  let test_rc =
    Test.make ~name:"recorder-unit: warm MMU access, recording armed"
      (Staged.stage (fun () -> Kernel.touch k6 Mmu.Load data_base))
  in
  let grouped =
    Test.make_grouped ~name:"simulator"
      [ test_t1; test_t2; test_t3; test_tr; test_pr; test_rc ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      let est =
        match Analyze.OLS.estimates v with
        | Some (e :: _) -> Printf.sprintf "%.1f" e
        | Some [] | None -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Report.table
    ~header:[ "hot path"; "ns/run" ]
    ~rows:(List.sort compare !rows)

(* ------------------------------------------------ throughput micro-pass *)

module Perfstat = Mmu_tricks.Perfstat
module Json = Mmu_tricks.Json

let throughput_machine = Machine.ppc604_185

let throughput_quota = ref 0.5

let throughput_results () =
  Perfstat.run ~quota_s:!throughput_quota ~machine:throughput_machine ~seed ()

let throughput_table results =
  Report.section "Simulator throughput (translations/second as a product)";
  Report.table
    ~header:[ "micro"; "ns/op"; "ops/sec"; "translations/sec" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.Perfstat.r_name;
             Printf.sprintf "%.1f" r.Perfstat.r_ns_per_op;
             Printf.sprintf "%.0f" r.Perfstat.r_ops_per_sec;
             (if r.Perfstat.r_translations_per_op = 0 then "-"
              else Printf.sprintf "%.0f" r.Perfstat.r_translations_per_sec) ])
         results)

(* A fresh measurement in the BENCH_throughput.json document shape: a
   one-entry history, so `mmu_sim check --bench` can read it too. *)
let throughput_doc results =
  Perfstat.doc_to_json
    { Perfstat.b_machine = Machine.slug throughput_machine;
      b_seed = seed;
      b_tolerance = Perfstat.default_tolerance;
      b_history =
        [ { Perfstat.e_label = "fresh measurement";
            e_recorded = "bench --throughput";
            e_results = results } ] }

(* ---------------------------------------------------------------- main *)

(* EX3: the §5.2 tuning-methodology sweep, via Mmu_tricks.Tuning. *)
let ex3 ?(seed = 42) () =
  Mmu_tricks.Tuning.to_table
    (Mmu_tricks.Tuning.sweep ~seed Mmu_tricks.Tuning.default_candidates)

let sections = Experiments.all @ [ ("EX3", ex3) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let no_micro = List.mem "--no-micro" args in
  let json = List.mem "--json" args in
  let throughput = List.mem "--throughput" args in
  let rec parse jobs out wanted = function
    | [] -> (jobs, out, List.rev wanted)
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse j out wanted rest
        | _ -> (prerr_endline "bench: --jobs expects a positive integer"; exit 2))
    | "--jobs" :: [] ->
        prerr_endline "bench: --jobs expects a positive integer";
        exit 2
    | "--out" :: path :: rest -> parse jobs (Some path) wanted rest
    | "--out" :: [] ->
        prerr_endline "bench: --out expects a file name";
        exit 2
    | "--quota" :: q :: rest -> (
        match float_of_string_opt q with
        | Some s when s > 0. ->
            throughput_quota := s;
            parse jobs out wanted rest
        | _ ->
            prerr_endline "bench: --quota expects seconds > 0";
            exit 2)
    | "--quota" :: [] ->
        prerr_endline "bench: --quota expects seconds > 0";
        exit 2
    | ("--no-micro" | "--json" | "--throughput") :: rest ->
        parse jobs out wanted rest
    | name :: rest -> parse jobs out (name :: wanted) rest
  in
  let jobs, out, wanted = parse 1 None [] args in
  let write_out text =
    match out with
    | None -> print_string text
    | Some path ->
        Out_channel.with_open_text path (fun oc -> output_string oc text)
  in
  if throughput then begin
    (* The throughput-only pass: measure the three hot-path micros and
       emit either the human table or a fresh bench document. *)
    let results = throughput_results () in
    if json then
      write_out (Json.to_string (throughput_doc results) ^ "\n")
    else throughput_table results
  end
  else begin
    let chosen =
      if wanted = [] then sections
      else List.filter (fun (name, _) -> List.mem name wanted) sections
    in
    if not json then
      print_endline
        "Reproduction harness: Optimizing the Idle Task and Other MMU Tricks \
         (OSDI 1999)";
    let results = Mmu_tricks.Runner.run ~jobs ~seed chosen in
    let tables =
      List.filter_map
        (fun (id, outcome) ->
          match Mmu_tricks.Runner.table_of_outcome outcome with
          | Some t -> Some (id, t)
          | None ->
              Printf.eprintf "bench: %s: %s\n" id
                (Mmu_tricks.Runner.describe outcome);
              None)
        results
    in
    if json then begin
      (* The bechamel micros ride along in the document (under a key the
         baseline checker never reads) so the throughput gate and human
         readers of the text table see the same numbers. *)
      let doc = Mmu_tricks.Baseline.doc_to_json ~seed tables in
      let doc =
        if no_micro || wanted <> [] then doc
        else
          match doc with
          | Json.Obj fields ->
              Json.Obj
                (fields
                @ [ ("micros", Perfstat.micros_json (throughput_results ())) ])
          | j -> j
      in
      write_out (Json.to_string doc ^ "\n")
    end
    else begin
      List.iter (fun (_, t) -> Experiments.print t) tables;
      if (not no_micro) && wanted = [] then begin
        micro ();
        throughput_table (throughput_results ())
      end;
      print_newline ()
    end;
    if List.length tables < List.length chosen then exit 1
  end
