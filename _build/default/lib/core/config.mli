(** Named configurations for every experiment in the paper.

    Each optimization is one policy axis; the paper evaluates "the
    original version without the optimizations ... versus only the
    specific optimization being discussed" (§4), so most presets here are
    either [baseline] plus one flag or [optimized] minus one flag. *)

module Policy = Kernel_sim.Policy

val baseline : Policy.t
(** The unoptimized kernel (re-export of {!Policy.baseline}). *)

val optimized : Policy.t
(** The fully optimized kernel (re-export of {!Policy.optimized}). *)

(** {1 Baseline plus one optimization (§5, §6.1)} *)

val baseline_with_bat : Policy.t
(** §5.1 / E1: baseline + BAT kernel mapping. *)

val baseline_with_scatter : Policy.t
(** §5.2 / E2: baseline + the tuned VSID multiplier. *)

val baseline_with_fast_reload : Policy.t
(** §6.1 / E3: baseline + hand-optimized miss handlers. *)

val baseline_with_scatter_mult : int -> Policy.t
(** §5.2: baseline with an arbitrary multiplier (used by the tuning
    sweep). *)

(** {1 Optimized minus one optimization (§6.2, §7, §8, §9)} *)

val optimized_no_htab : Policy.t
(** §6.2 / E4: the htab eliminated (603-style machines only). *)

val optimized_precise_flush : Policy.t
(** §7 / E5: optimized but with precise per-page flushing (PID VSIDs, no
    lazy flush, no cutoff, no reclaim) — the left columns of Table 2. *)

val optimized_no_reclaim : Policy.t
(** §7 / E6: lazy flushing without the idle-task zombie reclaim. *)

val optimized_with_cutoff : int option -> Policy.t
(** §7 / E10: optimized with an explicit flush cutoff. *)

val optimized_pt_uncached : Policy.t
(** §8 / E8: optimized + cache-inhibited page-table and htab accesses. *)

(** {1 Proposed / future-work features (§5.1, §10)} *)

val optimized_fb_bat : Policy.t
(** §5.1's proposal / E11: a per-process data BAT dedicated to the frame
    buffer, switched on context switch. *)

val optimized_idle_lock : Policy.t
(** §10.1 / E12: lock both caches while the idle task runs. *)

val optimized_preload : Policy.t
(** §10.2 / E13: prefetch the incoming task's hot kernel lines during a
    context switch. *)

val second_chance_no_reclaim : Policy.t
(** E16 ablation: can smarter (R-bit second-chance) htab replacement
    substitute for the idle-task zombie reclaim?  Lazy flushing with
    reclaim off and second-chance victim selection on. *)

val zombie_aware_no_reclaim : Policy.t
(** E16 ablation: the design §7 rejected — check VSID liveness during
    the reload's eviction (paying the check in the hot path) instead of
    reclaiming zombies from the idle task. *)

(** {1 Idle-task page clearing (§9 / E7)} *)

val clearing_off : Policy.t
(** No idle clearing: get_free_page clears on demand (the control). *)

val clearing_cached_list : Policy.t
(** The failed first attempt: clear through the cache, keep the list. *)

val clearing_uncached_nolist : Policy.t
(** The second control: clear uncached, discard the work. *)

val clearing_uncached_list : Policy.t
(** The winning design: clear uncached, feed the pre-zeroed list. *)

val all_named : (string * Policy.t) list
(** Every preset with a CLI-friendly name. *)

val find : string -> Policy.t option
(** Look a preset up by name. *)
