type t = int array

let n_registers = 16
let kernel_first = 0xC

let create () = Array.make n_registers 0

let get t i = t.(i)

let set t i vsid = t.(i) <- vsid land 0xFFFFFF

let vsid_for t ea = t.(Addr.sr_index ea)

let load_user t f =
  for i = 0 to kernel_first - 1 do
    t.(i) <- f i land 0xFFFFFF
  done

let load_kernel t f =
  for i = kernel_first to n_registers - 1 do
    t.(i) <- f i land 0xFFFFFF
  done

let is_kernel_segment i = i >= kernel_first

let is_kernel_ea ea = Addr.sr_index ea >= kernel_first
