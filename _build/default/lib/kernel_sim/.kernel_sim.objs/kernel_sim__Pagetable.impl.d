lib/kernel_sim/pagetable.ml: Addr Array Physmem Ppc
