lib/ppc/cost.mli:
