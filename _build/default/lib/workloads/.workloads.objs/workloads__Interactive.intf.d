lib/workloads/interactive.mli: Kernel_sim Ppc
