test/test_cache.ml: Alcotest Cache Gen List Ppc QCheck QCheck_alcotest
