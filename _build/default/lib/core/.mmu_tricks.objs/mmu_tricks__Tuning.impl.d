lib/core/tuning.ml: Addr Array Config Experiments Kernel_sim List Machine Metrics Mmu Perf Ppc Report System Workloads
