(** Kernel layout and path-length constants.

    The simulated kernel mirrors the Linux/PPC layout: the kernel owns the
    virtual range [0xC0000000-0xFFFFFFFF]; its text and static data are a
    single contiguous chunk of physical memory linearly mapped at
    [0xC0000000 + physical], which is why one BAT register can cover all
    of it (§5.1).

    Path lengths are instruction counts for the kernel operations the
    benchmarks exercise.  Each has a {e fast} value (the optimized
    hand-written assembly entry/exit paths of the final kernel) and a
    {e slow} value (the original C paths of the unoptimized kernel);
    which one applies is a policy choice.  The constants were calibrated
    so that the baseline and optimized simulations land near the paper's
    measured LmBench values on the corresponding machines; the *shape* of
    every result comes from the simulated mechanism, not from these
    constants (see EXPERIMENTS.md). *)

open Ppc

(** {1 Virtual/physical layout} *)

val kernel_base : Addr.ea
(** [0xC0000000]: kernel virtual base; kernel EA = physical + this. *)

val kernel_virt_of_phys : Addr.pa -> Addr.ea
val kernel_phys_of_virt : Addr.ea -> Addr.pa

val vectors_pa : Addr.pa
(** Exception vectors + handler stack (physical, page 0 region). *)

val text_pa : Addr.pa
(** Kernel text base (physical). *)

val text_bytes : int
(** 1.25 MB of kernel text. *)

val data_pa : Addr.pa
(** Kernel static data base (physical). *)

val data_bytes : int
(** 1 MB of kernel static data. *)

val htab_pa : Addr.pa
(** Hashed page table location (128 KB for 16384 PTEs). *)

val htab_bytes : int

val reserved_bytes : int
(** Physical memory reserved for the kernel image, htab and vectors —
    never handed to the frame allocator. *)

val bat_block_bytes : int
(** Size of the BAT block mapping kernel text+data+htab (4 MB). *)

(** {1 Kernel code footprints}

    Each kernel path fetches instructions from its own region of kernel
    text, so the paths compete for I-TLB and I-cache like the real kernel
    does.  Offsets are from [text_pa]. *)

val off_syscall : int
val off_sched : int
val off_fault : int
val off_pipe : int
val off_vfs : int
val off_mm : int
val off_idle : int
val off_exec : int

(** {1 Path lengths (instructions)} *)

val syscall_fast : int
(** Optimized syscall entry + dispatch + exit. *)

val syscall_slow : int
(** Original C syscall path with full state save/restore. *)

val syscall_slow_stack_refs : int

val switch_fast : int
(** Optimized scheduler + context switch (excluding segment loads). *)

val switch_slow : int

val switch_slow_stack_refs : int

val segment_load_cycles : int
(** Loading the 12 user segment registers on a switch. *)

val fault_service : int
(** Demand-fault service (C) on top of {!Cost.page_fault_instr}'s MMU
    portion: vma lookup, allocation bookkeeping. *)

val mmap_base_cost : int
(** mmap syscall body: vma creation, bookkeeping. *)

val mmap_per_page : int
(** Per-page cost of building the mapping metadata. *)

val munmap_base_cost : int

val munmap_per_mapped_page : int
(** Releasing one mapped page: page-table edit + frame free. *)

val fork_base : int
val fork_per_page : int
(** Copying one mapping during fork. *)

val exec_base : int

val pipe_op : int
(** Pipe read/write body excluding the data copy. *)

val read_op : int
(** File read body per syscall excluding the copy. *)

val vfs_per_page : int
(** Per-page overhead of generic_file_read (page-cache lookup, locking,
    bookkeeping). *)

val copy_cycles_per_word : int
(** Cycles per 4-byte word of bulk copy (load/store pair with its share
    of pipeline stalls). *)

val proc_exit : int

val idle_loop_slice : int
(** Instructions burned per idle-loop iteration when there is no idle
    work configured. *)

val timer_tick_cycles : int
(** Period of the scheduler timer interrupt (10 ms at 133 MHz — the
    classic HZ=100). *)

val tick_fast : int
(** Timer-interrupt entry + accounting + exit, optimized assembly
    entry (§6.1 covers "interrupt entry code" too). *)

val tick_slow : int
(** The original C interrupt path. *)

val tick_slow_stack_refs : int

val clear_page_instr : int
(** Loop overhead for clearing one 4 KB page (on top of the line
    stores). *)

val vsid_wrap_instr : int
(** Kernel bookkeeping when the 20-bit context counter wraps and the §7
    escape hatch fires (full TLB invalidate on every CPU plus an htab
    zombie purge) — on top of the purge's own memory references. *)

val steal_instr : int
(** Run-queue lock + migration bookkeeping when an idle CPU steals a
    runnable task from another CPU's queue. *)

(** {1 Kernel data objects} *)

val task_struct_ea : pid:int -> Addr.ea
(** Virtual address of a task's task_struct in kernel data. *)

val runqueue_ea : Addr.ea
val pipe_buf_ea : index:int -> Addr.ea
(** Kernel virtual address of a pipe's 4 KB buffer. *)

val kstack_ea : pid:int -> Addr.ea
(** Kernel stack area for a task. *)
