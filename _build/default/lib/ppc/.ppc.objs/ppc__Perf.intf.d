lib/ppc/perf.mli: Format
