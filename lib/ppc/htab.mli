(** The PowerPC hashed page table ("htab").

    The htab is an array of PTE groups (PTEGs) of eight entries.  A
    primary hash of (VSID, page index) selects one PTEG; its one's
    complement selects the secondary/overflow PTEG, so a full search
    examines up to 16 PTEs — the "16 memory references" the paper charges
    to every precise flush and hardware reload.

    The structure itself is policy-free: it reports which physical PTE
    slots a search touched (via [on_ref]) so the MMU can drive them
    through the data cache, and it exposes zombie accounting hooks so the
    idle-task reclaim of §7 can be measured.  A "zombie" PTE is one whose
    valid bit is still set but whose VSID belongs to a retired memory
    context; the hardware cannot tell it from a live entry. *)

type t

val create : ?base_pa:Addr.pa -> n_ptes:int -> unit -> t
(** [create ~n_ptes ()] builds an empty table of [n_ptes] entries
    ([n_ptes / 8] PTEGs; must make a power of two).  [base_pa] locates the
    table in physical memory for cache modeling (default [0x00100000]). *)

val n_ptegs : t -> int

val capacity : t -> int
(** Total PTE slots. *)

val base_pa : t -> Addr.pa

val pte_pa : t -> pteg:int -> slot:int -> Addr.pa
(** Physical address of one 8-byte PTE slot. *)

val search :
  t ->
  vsid:int ->
  page_index:int ->
  on_ref:(Addr.pa -> unit) ->
  Pte.t option
(** [search t ~vsid ~page_index ~on_ref] looks through the primary PTEG
    then the secondary PTEG, calling [on_ref] with the physical address of
    every PTE slot examined (matching hardware search order: a hit in slot
    [k] of the primary group costs [k+1] references). *)

val search_counted :
  t ->
  vsid:int ->
  page_index:int ->
  on_ref:(Addr.pa -> unit) ->
  Pte.t option * int
(** [search] plus the number of PTE slots examined (the probe length the
    trace layer charges to its histogram).  Reference behaviour is
    identical: [on_ref] sees the same addresses in the same order. *)

(** Victim selection when both PTEGs are full.

    - [Arbitrary] is the paper's shipped policy ("it chose an arbitrary
      PTE to replace ... not checking if it has a currently valid VSID").
    - [Second_chance] prefers a victim whose R bit is clear; when every
      entry has been referenced it strips the R bits (a second chance)
      and falls back to an arbitrary choice.
    - [Prefer_zombie p] is the design the paper rejected for the hot
      path: consult the VSID-liveness predicate [p] and evict a zombie
      when one exists — correctness-equivalent but paying a software
      check per candidate on every overflow (the cost §7 moved into the
      idle task instead). *)
type replacement =
  | Arbitrary
  | Second_chance
  | Prefer_zombie of (int -> bool)

type insert_outcome =
  | Filled_empty        (** an invalid slot was available *)
  | Replaced of Pte.t   (** a valid entry was displaced (copy of victim) *)

val insert :
  ?policy:replacement ->
  t ->
  rng:Rng.t ->
  vsid:int ->
  page_index:int ->
  rpn:int ->
  wimg:Pte.wimg ->
  protection:Pte.protection ->
  on_ref:(Addr.pa -> unit) ->
  insert_outcome
(** [insert t ~rng ...] places a PTE, preferring an invalid slot in the
    primary PTEG, then in the secondary PTEG; when both groups are full a
    victim is displaced according to [policy] (default [Arbitrary] — the
    paper's non-optimal replacement, which cannot tell a zombie from a
    live entry).  If an entry with the same tag already exists it is
    updated in place ([Filled_empty]). *)

val invalidate_page :
  t -> vsid:int -> page_index:int -> on_ref:(Addr.pa -> unit) -> bool
(** [invalidate_page t ~vsid ~page_index ~on_ref] performs the precise
    per-page flush: search both PTEGs and clear the valid bit if found.
    Returns whether an entry was invalidated. *)

val reclaim_zombies :
  t ->
  is_zombie:(int -> bool) ->
  max_ptes:int ->
  on_ref:(Addr.pa -> unit) ->
  int
(** [reclaim_zombies t ~is_zombie ~max_ptes ~on_ref] is the idle-task
    scan: examine up to [max_ptes] slots starting from a persistent
    cursor, clearing the valid bit of every PTE whose VSID satisfies
    [is_zombie].  Returns the number reclaimed.  The cursor survives
    across calls so repeated idle slices cover the whole table. *)

val occupancy : t -> int
(** Number of valid PTEs (live + zombie: what the hardware sees). *)

val count_valid : t -> f:(Pte.t -> bool) -> int
(** Count valid entries satisfying [f] (e.g. live vs zombie split). *)

val iter_valid : t -> f:(Pte.t -> unit) -> unit

val clear : t -> unit
(** Invalidate every entry. *)

val histogram : t -> int array
(** [histogram t].(k) = number of PTEGs with exactly [k] valid entries
    (k in 0..8) — the hash-miss histogram Linux kept to tune the VSID
    multiplier (§5.2). *)
