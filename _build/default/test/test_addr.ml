(* Address arithmetic: splits, joins, round trips. *)
open Ppc

let test_constants () =
  Alcotest.(check int) "page size" 4096 Addr.page_size;
  Alcotest.(check int) "line size" 32 Addr.line_size;
  Alcotest.(check int) "mask" 0xFFFFFFFF Addr.ea_mask

let test_split () =
  let ea = 0xC0123456 in
  Alcotest.(check int) "sr index" 0xC (Addr.sr_index ea);
  Alcotest.(check int) "page index" 0x0123 (Addr.page_index ea);
  Alcotest.(check int) "offset" 0x456 (Addr.page_offset ea);
  Alcotest.(check int) "page base" 0xC0123000 (Addr.page_base ea);
  Alcotest.(check int) "epn" 0xC0123 (Addr.epn ea)

let test_vpn_roundtrip () =
  let vsid = 0xABCDEF and ea = 0x7FFF8123 in
  let vpn = Addr.vpn_of ~vsid ~ea in
  Alcotest.(check int) "vsid back" vsid (Addr.vsid_of_vpn vpn);
  Alcotest.(check int) "page index back" (Addr.page_index ea)
    (Addr.page_index_of_vpn vpn)

let test_pa_assembly () =
  let rpn = 0x01234 and ea = 0x00000ABC in
  let pa = Addr.pa_of ~rpn ~ea in
  Alcotest.(check int) "pa" ((0x01234 lsl 12) lor 0xABC) pa;
  Alcotest.(check int) "rpn back" rpn (Addr.rpn_of_pa pa)

let test_line_index () =
  Alcotest.(check int) "line 0" 0 (Addr.line_index 31);
  Alcotest.(check int) "line 1" 1 (Addr.line_index 32);
  Alcotest.(check int) "line of page" 128 (Addr.line_index 4096)

let test_alignment () =
  Alcotest.(check bool) "page aligned" true (Addr.is_page_aligned 0x40000000);
  Alcotest.(check bool) "not aligned" false (Addr.is_page_aligned 0x40000004);
  Alcotest.(check int) "round up exact" 2 (Addr.round_up_pages 8192);
  Alcotest.(check int) "round up partial" 3 (Addr.round_up_pages 8193);
  Alcotest.(check int) "round up zero" 0 (Addr.round_up_pages 0)

let prop_vpn_roundtrip =
  QCheck.Test.make ~name:"vpn round-trips vsid and page index" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFFF))
    (fun (vsid, ea) ->
      let vpn = Addr.vpn_of ~vsid ~ea in
      Addr.vsid_of_vpn vpn = vsid
      && Addr.page_index_of_vpn vpn = Addr.page_index ea)

let prop_split_reassemble =
  QCheck.Test.make ~name:"page base + offset reassembles ea" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun ea -> Addr.page_base ea lor Addr.page_offset ea = ea)

let prop_pa_preserves_offset =
  QCheck.Test.make ~name:"translation preserves the byte offset" ~count:500
    QCheck.(pair (int_bound 0xFFFFF) (int_bound 0xFFFFFFF))
    (fun (rpn, ea) ->
      Addr.page_offset (Addr.pa_of ~rpn ~ea) = Addr.page_offset ea)

let suite =
  [ Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "ea split" `Quick test_split;
    Alcotest.test_case "vpn round trip" `Quick test_vpn_roundtrip;
    Alcotest.test_case "pa assembly" `Quick test_pa_assembly;
    Alcotest.test_case "line index" `Quick test_line_index;
    Alcotest.test_case "alignment helpers" `Quick test_alignment;
    QCheck_alcotest.to_alcotest prop_vpn_roundtrip;
    QCheck_alcotest.to_alcotest prop_split_reassemble;
    QCheck_alcotest.to_alcotest prop_pa_preserves_offset ]
