test/test_oracle.ml: Addr Gen Kernel_sim List Machine Mmu Mmu_tricks Option Ppc QCheck QCheck_alcotest
