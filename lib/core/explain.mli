(** Why did a run get slower?  Diff two results documents, rank the
    counter deltas by contribution, and join the winners against the
    attribution the documents embed ([observability.profile], written by
    [experiment --profile]) to name the responsible PID/segment.

    Behind [mmu_sim explain --a old.json --b new.json], and behind
    [check]'s failure output: a tolerance failure prints the top
    explanations instead of only the first mismatching token. *)

(** One numeric token that differs between the two documents. *)
type delta = {
  x_id : string;     (** experiment id *)
  x_row : string;    (** row label (first cell of the row) *)
  x_col : string;    (** column header of the differing cell *)
  x_token : int;     (** index of the numeric token within the cell *)
  x_a : float;       (** value in document A *)
  x_b : float;       (** value in document B *)
  x_rel : float;     (** relative deviation, {!Baseline.rel_dev} *)
}

val diff_tables :
  id:string -> a:Experiments.table -> b:Experiments.table -> delta list
(** Every numeric token that differs between two tables of the same
    shape, in table order.  Tables whose shape differs (row/cell/token
    counts) yield no deltas — [check] reports those structurally. *)

val rank : delta list -> delta list
(** Largest relative deviation first; absolute change breaks ties. *)

val describe : delta -> string
(** One line: ["E12: context switch [misses]: 4100 -> 5900 (+30.5%)"]. *)

val attribution_lines : ?top:int -> Json.t -> id:string -> string list
(** The [top] (default 3) heaviest attribution accounts embedded for
    experiment [id] in a raw results document, as human-readable lines;
    empty when the document carries no profile. *)

val span_tail_lines :
  ?top:int -> a_json:Json.t -> b_json:Json.t -> id:string -> unit ->
  string list
(** When both documents embed [observability.spans] for experiment
    [id] (from [experiment --spans]): the [top] (default 3)
    (config, request class) pairs whose tail latency moved most —
    p999 compared first, p99 where p999 did not move — ranked by the
    relative deviation [check] gates on.  Empty when either document
    carries no spans. *)

(** One ranked delta with the responsible accounts attached. *)
type report = {
  rep_delta : delta;
  rep_attribution : string list;
      (** from whichever document embeds attribution (B preferred) *)
  rep_spans : string list;
      (** {!span_tail_lines} output when both documents embed spans *)
}

val explain_docs :
  ?top:int ->
  a_doc:Baseline.doc ->
  a_json:Json.t ->
  b_doc:Baseline.doc ->
  b_json:Json.t ->
  unit ->
  report list
(** The [top] (default 10) largest deltas across the experiments both
    documents contain, each joined against embedded attribution. *)

val render_report : report -> string
(** {!describe} plus indented attribution lines, newline-terminated. *)
