(** Attribution profiling: who owns every miss, where the htab clusters.

    {!Trace} records what happened; this layer maintains who is
    responsible.  One handle per simulated machine (owned by {!Memsys})
    keeps three running attributions while the MMU services misses:

    - {e miss accounts}: per-(PID, segment-register index, kind) counts
      and reload-cost totals for ITLB, DTLB and htab misses, plus a
      hot-page table per kind (which 4 KB pages drew the cost);
    - a {e kernel-vs-user TLB slot census}: after every profiled reload
      the MMU reports how many TLB slots hold kernel translations — the
      §5.1 footprint claim (33% of slots without BATs, high water ≤ 4
      with them) as a measured artifact;
    - an {e htab bucket-occupancy map}, sampled on the same cadence as
      the {!Perf} timeline: occupancy, PTEG collision-chain length
      histogram and zombie fraction over time — the §5.2 37%/57%/75%
      trajectory.

    Profiling is observation only: charging never costs cycles, touches
    the caches or draws from an RNG, so a profiled run produces exactly
    the Perf counts of an unprofiled run at the same seed.  When
    disabled (the default) the cost is one flag check per instrumented
    site — plus one integer compare on {!Memsys}'s charge path for the
    occupancy sampler — and zero allocation.

    The exporters (folded stacks, JSON, text heatmaps) live in
    [Mmu_tricks.Profile_export], which depends on this module, not the
    other way around. *)

(** Which structure missed. [Htab_miss] charges are a subset of the TLB
    kinds: a reload that also missed the htab is charged twice, once as
    the TLB kind and once as [Htab_miss]. *)
type miss_kind =
  | Itlb
  | Dtlb
  | Htab_miss

val all_kinds : miss_kind list
val kind_name : miss_kind -> string

(** One htab occupancy sample. *)
type htab_sample = {
  h_cycle : int;     (** simulated cycle when taken *)
  h_valid : int;     (** valid PTEs *)
  h_capacity : int;  (** total PTE slots *)
  h_zombie : int;    (** valid PTEs whose VSID is no longer live *)
  h_chains : int array;
      (** [h_chains.(i)] = PTEGs holding exactly [i] valid PTEs *)
}

(** Kernel-vs-user TLB slot census summary. *)
type census = {
  n_samples : int;          (** censuses taken (one per profiled reload) *)
  avg_share_pct : float;    (** mean kernel share of occupied slots, % *)
  kernel_high_water : int;  (** most kernel-owned slots ever held *)
  kernel_now : int;         (** kernel-owned slots at the last census *)
  occupied_now : int;       (** occupied slots at the last census *)
  slot_capacity : int;      (** total TLB slots (I + D) *)
}

(** One account: misses charged and reload cycles attributed to them. *)
type cell = {
  mutable a_count : int;
  mutable a_cost : int;
}

type t = {
  perf : Perf.t;
  mutable enabled : bool;
  attribution : (int, cell) Hashtbl.t;
  hot_pages : (int, cell) Hashtbl.t array;
  mutable census_samples : int;
  mutable census_share_sum : float;
  mutable census_kernel_hw : int;
  mutable census_kernel_now : int;
  mutable census_occupied_now : int;
  mutable tlb_capacity : int;
  mutable sample_every : int;
  mutable next_sample : int;
      (** [max_int] while sampling is off — {!Memsys} compares the cycle
          counter against this on every charge, so the disabled sampler
          costs one integer compare *)
  mutable samples_rev : htab_sample list;
  mutable htab_source : (unit -> htab_sample) option;
}
(** Exposed so the one comparison on {!Memsys.t}'s charge path reads
    [next_sample] directly; treat as read-only outside this module,
    {!Memsys} and {!Mmu}. *)

val create : perf:Perf.t -> t
(** A disabled profiler stamping samples from [perf]'s cycle counter —
    unless {!set_boot_defaults} armed process-wide profiling, in which
    case it starts enabled and is registered for {!drain_registered}. *)

val enable : ?sample_every:int -> t -> unit
(** Start attributing; [sample_every > 0] also arms the htab occupancy
    sampler at that cadence (simulated cycles). *)

val disable : t -> unit
(** Stop attributing and sampling; accumulated data stays readable. *)

val enabled : t -> bool

val set_sampling : t -> every:int -> unit
(** Re-arm or disarm ([every <= 0]) the htab occupancy sampler. *)

(** {1 Boot defaults}

    For drivers that cannot reach the kernels being booted (the
    experiment registry boots its own): arm profiling process-wide,
    run, then collect every profiler created in between — the same
    discipline as {!Trace} and {!Shadow}. *)

val set_boot_defaults : ?sample_every:int -> enabled:bool -> unit -> unit
val drain_registered : unit -> t list

(** {1 Hooks wired by the MMU} *)

val set_htab_source : t -> (unit -> htab_sample) -> unit
(** Install the htab snapshot function the occupancy sampler calls. *)

val set_tlb_capacity : t -> int -> unit
(** Record the machine's total TLB slots (I + D) for census reporting. *)

(** {1 Charging} — call sites must guard on {!enabled}; charging is
    observation-only (no cycles, no cache traffic, no RNG) *)

val charge_miss :
  t -> pid:int -> seg:int -> page:int -> kind:miss_kind -> cost:int -> unit
(** Attribute one miss of [kind] at page-aligned EA [page] in segment
    [seg] to [pid], with [cost] reload cycles. *)

val note_tlb_census : t -> kernel:int -> occupied:int -> unit
(** Record one census: [kernel] of [occupied] valid TLB slots currently
    hold kernel translations. *)

val take_sample : t -> unit
(** Record one htab occupancy sample now (called by {!Memsys} when the
    cycle counter passes [next_sample]). *)

(** {1 Inspection} *)

type attribution_row = {
  r_pid : int;
  r_seg : int;
  r_kind : miss_kind;
  r_count : int;
  r_cost : int;
}

val attribution : t -> attribution_row list
(** All accounts, ordered by (pid, segment, kind). *)

val hot_pages : t -> miss_kind -> top:int -> (int * int * int) list
(** The [top] hottest pages of one kind as [(page EA, count, cost)],
    most attributed cost first. *)

val census : t -> census
val samples : t -> htab_sample list
(** Htab occupancy samples, chronological. *)

val snapshot_htab : t -> htab_sample option
(** The htab's state right now, as a pure read (nothing is recorded and
    the sampling deadline is untouched); [None] when the machine has no
    htab.  Exporters use this for the end-of-run snapshot even when
    periodic sampling was never armed. *)

val total_misses : t -> int
val total_cost : t -> int
