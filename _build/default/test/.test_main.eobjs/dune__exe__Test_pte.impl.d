test/test_pte.ml: Addr Alcotest Ppc Pte QCheck QCheck_alcotest
