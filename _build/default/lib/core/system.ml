open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Pagepool = Kernel_sim.Pagepool
module Physmem = Kernel_sim.Physmem

let boot ~machine ~policy ?(seed = 42) () =
  Kernel.boot ~machine ~policy ~seed ()

let measure k f =
  let before = Perf.snapshot (Kernel.perf k) in
  let result = f () in
  (result, Perf.diff ~after:(Perf.snapshot (Kernel.perf k)) ~before)

type snapshot = {
  tlb_valid : int;
  tlb_capacity : int;
  kernel_tlb : int;
  htab_valid : int;
  htab_live : int;
  htab_zombie : int;
  htab_capacity : int;
  htab_histogram : int array;
  prezeroed_pages : int;
  free_frames : int;
}

let snapshot k =
  let mmu = Kernel.mmu k in
  let live, zombie = Kernel.htab_live_and_zombie k in
  let histogram, capacity =
    match Mmu.htab mmu with
    | None -> ([||], 0)
    | Some h -> (Htab.histogram h, Htab.capacity h)
  in
  { tlb_valid = Mmu.tlb_occupancy mmu;
    tlb_capacity = Tlb.capacity (Mmu.itlb mmu) + Tlb.capacity (Mmu.dtlb mmu);
    kernel_tlb = Kernel.kernel_tlb_entries k;
    htab_valid = live + zombie;
    htab_live = live;
    htab_zombie = zombie;
    htab_capacity = capacity;
    htab_histogram = histogram;
    prezeroed_pages = Pagepool.prezeroed_available (Kernel.pagepool k);
    free_frames = Physmem.free_frames (Kernel.physmem k) }

let pp_snapshot fmt s =
  Format.fprintf fmt
    "@[<v>TLB: %d/%d valid (%d kernel)@,\
     htab: %d/%d valid (%d live, %d zombie)@,\
     pre-zeroed pages: %d; free frames: %d@]"
    s.tlb_valid s.tlb_capacity s.kernel_tlb s.htab_valid s.htab_capacity
    s.htab_live s.htab_zombie s.prezeroed_pages s.free_frames
