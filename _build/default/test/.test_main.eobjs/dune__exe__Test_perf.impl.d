test/test_perf.ml: Alcotest Format Perf Ppc String
