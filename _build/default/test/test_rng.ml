(* Deterministic PRNG tests. *)
open Ppc

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_copy_independent () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.next a : int);
  let b = Rng.copy a in
  let xa = Rng.next a in
  let xb = Rng.next b in
  Alcotest.(check int) "copy continues identically" xa xb;
  ignore (Rng.next a : int);
  (* advancing a does not advance b *)
  let xa2 = Rng.next a and xb2 = Rng.next b in
  Alcotest.(check bool) "independent afterwards" true (xa2 <> xb2 || xa2 = xb2)

let test_int_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_float_bounds () =
  let r = Rng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_next_nonnegative () =
  let r = Rng.create ~seed:17 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "non-negative" true (Rng.next r >= 0)
  done

let test_shuffle_permutation () =
  let r = Rng.create ~seed:5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_geometric () =
  let r = Rng.create ~seed:23 in
  let total = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    let v = Rng.geometric r ~p:0.5 in
    Alcotest.(check bool) "non-negative" true (v >= 0);
    total := !total + v
  done;
  (* mean of geometric(0.5) counting failures is 1 *)
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 1" true (mean > 0.8 && mean < 1.2)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "next non-negative" `Quick test_next_nonnegative;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "geometric distribution" `Quick test_geometric ]
