type source =
  | User
  | Kernel
  | Page_table
  | Htab
  | Idle_clear

let n_sources = 5

let source_index = function
  | User -> 0
  | Kernel -> 1
  | Page_table -> 2
  | Htab -> 3
  | Idle_clear -> 4

let source_name = function
  | User -> "user"
  | Kernel -> "kernel"
  | Page_table -> "page-table"
  | Htab -> "htab"
  | Idle_clear -> "idle-clear"

type result =
  | Hit
  | Miss of { dirty_writeback : bool }
  | Bypass

type t = {
  n_sets : int;
  n_ways : int;
  tags : int array;    (* line index, or -1 when invalid *)
  dirty : bool array;
  stamps : int array;
  mutable tick : int;
  mutable locked : bool;
  allocs : int array;      (* per source *)
  evictions : int array;   (* per source *)
}

let create ~bytes ~ways =
  let lines = bytes / Addr.line_size in
  if lines mod ways <> 0 then invalid_arg "Cache.create: geometry";
  let sets = lines / ways in
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  { n_sets = sets;
    n_ways = ways;
    tags = Array.make lines (-1);
    dirty = Array.make lines false;
    stamps = Array.make lines 0;
    tick = 0;
    locked = false;
    allocs = Array.make n_sources 0;
    evictions = Array.make n_sources 0 }

let capacity_lines t = t.n_sets * t.n_ways

let set_of t line = line land (t.n_sets - 1)

(* The set scans are top-level int recursions — no refs, no returned
   tuple, and no inner [let rec] (which would heap-allocate a closure
   per call without flambda) — so a hit allocates nothing. *)

(* The [int array] annotations matter: an unconstrained [tags] would
   generalize these scans to ['a array], turning every [=] into a
   [caml_equal] C call and every [unsafe_get] into a float-array check. *)
let rec tag_scan (tags : int array) (line : int) base w n =
  if w >= n then -1
  else if tags.(base + w) = line then base + w
  else tag_scan tags line base (w + 1) n

(* Unrolled 4-way probe.  [unsafe_get] is justified by construction:
   callers pass [base = set * n_ways] with [set < n_sets], so
   [base + 3 < n_sets * n_ways = Array.length tags].  Unrolling matters:
   even as a tail call the generic scan costs several ns per way, and
   every simulated memory reference lands here. *)
let[@inline always] scan4 (tags : int array) base (line : int) =
  if Array.unsafe_get tags base = line then base
  else if Array.unsafe_get tags (base + 1) = line then base + 1
  else if Array.unsafe_get tags (base + 2) = line then base + 2
  else if Array.unsafe_get tags (base + 3) = line then base + 3
  else -1

(* Flat slot index of the hit, or -1.  Every machine in [Machine.all]
   has a 4- or 8-way cache; anything else takes the generic scan. *)
let hit_slot t base line =
  match t.n_ways with
  | 4 -> scan4 t.tags base line
  | 8 ->
      let i = scan4 t.tags base line in
      if i >= 0 then i else scan4 t.tags (base + 4) line
  | n -> tag_scan t.tags line base 0 n

(* Way to fill on a miss: the first free way, else the LRU way (strict
   [<] on stamps, first minimal index wins). *)
let rec fill_scan (tags : int array) (stamps : int array) base w n free lru
    lru_way =
  if w >= n then if free >= 0 then free else lru_way
  else begin
    let free = if free < 0 && tags.(base + w) < 0 then w else free in
    let s = stamps.(base + w) in
    if s < lru then fill_scan tags stamps base (w + 1) n free s w
    else fill_scan tags stamps base (w + 1) n free lru lru_way
  end

let fill_way t base =
  fill_scan t.tags t.stamps base 0 t.n_ways (-1) max_int 0

let fill t ~source ~write i line =
  let src = source_index source in
  let dirty_writeback = t.tags.(i) >= 0 && t.dirty.(i) in
  if t.tags.(i) >= 0 then t.evictions.(src) <- t.evictions.(src) + 1;
  t.tags.(i) <- line;
  t.dirty.(i) <- write;
  t.stamps.(i) <- t.tick;
  t.allocs.(src) <- t.allocs.(src) + 1;
  Miss { dirty_writeback }

let access t ~source ~inhibited ~write pa =
  if inhibited then Bypass
  else begin
    let line = Addr.line_index pa in
    let base = set_of t line * t.n_ways in
    let i = hit_slot t base line in
    t.tick <- t.tick + 1;
    if i >= 0 then begin
      t.stamps.(i) <- t.tick;
      if write then t.dirty.(i) <- true;
      Hit
    end
    else if t.locked then Bypass
    else fill t ~source ~write (base + fill_way t base) line
  end

let allocate_zero t ~source pa =
  let line = Addr.line_index pa in
  let base = set_of t line * t.n_ways in
  let i = hit_slot t base line in
  t.tick <- t.tick + 1;
  if i >= 0 then begin
    t.stamps.(i) <- t.tick;
    t.dirty.(i) <- true;
    Hit
  end
  else if t.locked then Bypass
  else fill t ~source ~write:true (base + fill_way t base) line

let contains t pa =
  let line = Addr.line_index pa in
  let base = set_of t line * t.n_ways in
  let rec loop w =
    if w >= t.n_ways then false
    else if t.tags.(base + w) = line then true
    else loop (w + 1)
  in
  loop 0

let set_locked t b = t.locked <- b
let is_locked t = t.locked

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false

let occupancy t =
  Array.fold_left (fun n tag -> if tag >= 0 then n + 1 else n) 0 t.tags

let dirty_lines t =
  let n = ref 0 in
  Array.iteri (fun i tag -> if tag >= 0 && t.dirty.(i) then incr n) t.tags;
  !n

let stats_allocations t source = t.allocs.(source_index source)
let stats_evictions_caused_by t source = t.evictions.(source_index source)

let reset_stats t =
  Array.fill t.allocs 0 n_sources 0;
  Array.fill t.evictions 0 n_sources 0
