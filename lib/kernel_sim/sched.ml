type outcome =
  | Yield
  | Sleep of int
  | Done

type entry = {
  task : Task.t;
  step : Kernel.t -> outcome;
  mutable wake_at : int;  (* absolute cycle; 0 = runnable *)
  mutable finished : bool;
}

(* One run queue per CPU; enrollment deals tasks round-robin across them.
   At one CPU this is exactly the old single-queue scheduler. *)
type t = {
  kernel : Kernel.t;
  queues : entry list array;  (* per-CPU, round-robin order *)
  mutable next_enroll : int;
}

let runnable_count q now =
  List.length
    (List.filter (fun e -> (not e.finished) && e.wake_at <= now) q)

let create kernel =
  let t =
    { kernel;
      queues = Array.make (Kernel.cpus kernel) [];
      next_enroll = 0 }
  in
  (* Per-CPU run-queue depths as a flight-recorder gauge.  Re-installing
     under the same name re-points the gauge at the newest scheduler, so
     a workload that builds several in sequence always samples the live
     one. *)
  Ppc.Recorder.add_source (Kernel.recorder kernel) ~name:"runq" (fun () ->
      let now = Kernel.cycles kernel in
      Array.map (fun q -> runnable_count q now) t.queues);
  t

let add t task step =
  let cpu = t.next_enroll mod Array.length t.queues in
  t.next_enroll <- t.next_enroll + 1;
  t.queues.(cpu) <-
    t.queues.(cpu) @ [ { task; step; wake_at = 0; finished = false } ]

let live t =
  Array.fold_left
    (fun acc q -> acc + List.length (List.filter (fun e -> not e.finished) q))
    0 t.queues

(* The earliest wake-up among unfinished processes on any queue, if any. *)
let next_wake t =
  Array.fold_left
    (fun acc q ->
      List.fold_left
        (fun acc e ->
          if e.finished then acc
          else
            match acc with
            | None -> Some e.wake_at
            | Some w -> Some (min w e.wake_at))
        acc q)
    None t.queues

let same_task a b = a.Task.pid = b.Task.pid

let first_runnable q now =
  List.find_opt (fun e -> (not e.finished) && e.wake_at <= now) q

(* Idle stealing: an empty CPU raids the queue with the most runnable
   work, but never the victim's last runnable task — migrating it buys
   nothing over letting the victim run it, and invites ping-pong. *)
let steal_from t ~thief now =
  let victim = ref (-1) and best = ref 1 in
  Array.iteri
    (fun cpu q ->
      if cpu <> thief then begin
        let n = runnable_count q now in
        if n > !best then begin
          victim := cpu;
          best := n
        end
      end)
    t.queues;
  if !victim < 0 then None
  else
    match first_runnable t.queues.(!victim) now with
    | None -> None
    | Some e ->
        t.queues.(!victim) <-
          List.filter (fun e' -> e' != e) t.queues.(!victim);
        t.queues.(thief) <- t.queues.(thief) @ [ e ];
        Kernel.note_work_steal t.kernel;
        Some e

let run t =
  let k = t.kernel in
  let n_cpus = Array.length t.queues in
  (* one service turn on [cpu]'s queue: rotate the chosen entry to the
     back, switch to it if it is not already current, run one slice *)
  let serve cpu e =
    t.queues.(cpu) <-
      List.filter (fun e' -> e' != e) t.queues.(cpu) @ [ e ];
    (match Kernel.current k with
    | Some cur when same_task cur e.task -> ()
    | Some _ | None -> Kernel.switch_to k e.task);
    let tr = Kernel.trace k in
    let traced = Ppc.Trace.enabled tr in
    let slice_start = if traced then Kernel.cycles k else 0 in
    (match e.step k with
    | Yield -> ()
    | Sleep n -> e.wake_at <- Kernel.cycles k + n
    | Done -> e.finished <- true);
    if traced then
      Ppc.Trace.emit_for tr Ppc.Trace.Run_slice ~pid:e.task.Task.pid ~a:cpu
        ~b:(Kernel.cycles k - slice_start)
  in
  (* each pass gives every CPU one turn; a CPU with nothing runnable
     tries to steal before conceding the turn *)
  let rec loop () =
    let ran = ref false in
    for cpu = 0 to n_cpus - 1 do
      Kernel.set_active_cpu k cpu;
      let now = Kernel.cycles k in
      match first_runnable t.queues.(cpu) now with
      | Some e ->
          ran := true;
          serve cpu e
      | None -> begin
          match
            if n_cpus > 1 then steal_from t ~thief:cpu now else None
          with
          | Some e ->
              ran := true;
              serve cpu e
          | None -> ()
        end
    done;
    if !ran then loop ()
    else
      match next_wake t with
      | None -> ()  (* everyone finished *)
      | Some wake ->
          (* nothing runnable anywhere: the idle task gets the machine *)
          Kernel.idle_for k ~cycles:(max 1 (wake - Kernel.cycles k));
          loop ()
  in
  loop ()
