lib/kernel_sim/kparams.ml: Addr Ppc
