(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a seed.  The generator is the splitmix64
    mixer, which has good statistical properties, is allocation-free per
    draw, and is trivially portable. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val next : t -> int
(** [next t] draws a uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> bool
(** [bool t] draws a uniform boolean. *)

val float : t -> float
(** [float t] draws uniformly in [\[0, 1)]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] draws from a geometric distribution with success
    probability [p] (number of failures before first success).  Used for
    bursty reference-stream lengths. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
