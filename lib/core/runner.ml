type outcome =
  | Done of Experiments.table
  | Failed of string

let attempt ~seed f =
  match f ?seed:(Some seed) () with
  | t -> Done t
  | exception e -> Failed (Printexc.to_string e)

(* The one place job-count bounds live: at least one worker, and no more
   than [max_jobs] — forking beyond that wins nothing for a suite of a
   few dozen experiments and risks fd exhaustion on big machines. *)
let min_jobs = 1
let max_jobs = 16
let clamp_jobs n = max min_jobs (min n max_jobs)

(* First line of [cmd]'s output parsed as a positive int, if any. *)
let probe_int cmd =
  match Unix.open_process_in (cmd ^ " 2>/dev/null") with
  | exception _ -> None
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, int_of_string_opt (String.trim line)) with
      | _, Some n when n >= 1 -> Some n
      | _ -> None)

let default_jobs () =
  (* getconf is POSIX but absent from some minimal images; nproc is the
     coreutils equivalent.  Either failing leaves us serial. *)
  match probe_int "getconf _NPROCESSORS_ONLN" with
  | Some n -> clamp_jobs n
  | None -> (
      match probe_int "nproc" with
      | Some n -> clamp_jobs n
      | None -> min_jobs)

(* One pipe per worker; workers marshal each (index, id, outcome) as it
   completes and the parent drains the pipes to EOF in worker order.
   Results are small (a table of strings), so a worker never fills the
   pipe buffer faster than the parent eventually drains it. *)
let run_forked ~jobs ~seed indexed =
  flush stdout;
  flush stderr;
  let workers =
    List.init jobs (fun w ->
        let mine = List.filter (fun (i, _) -> i mod jobs = w) indexed in
        let rfd, wfd = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
            Unix.close rfd;
            let oc = Unix.out_channel_of_descr wfd in
            List.iter
              (fun (i, (id, f)) ->
                let r = attempt ~seed f in
                Marshal.to_channel oc (i, id, r) [];
                flush oc)
              mine;
            close_out oc;
            (* _exit: skip at_exit (inherited buffers, test reporters) *)
            Unix._exit 0
        | pid ->
            Unix.close wfd;
            (pid, Unix.in_channel_of_descr rfd))
  in
  let results : (int, string * outcome) Hashtbl.t = Hashtbl.create 37 in
  List.iter
    (fun (pid, ic) ->
      (try
         while true do
           let i, id, r = (Marshal.from_channel ic : int * string * outcome) in
           Hashtbl.replace results i (id, r)
         done
       with End_of_file | Failure _ -> ());
      close_in ic;
      ignore (Unix.waitpid [] pid))
    workers;
  List.map
    (fun (i, (id, _)) ->
      match Hashtbl.find_opt results i with
      | Some r -> r
      | None -> (id, Failed "worker exited before delivering a result"))
    indexed

let run ?(jobs = 1) ?(seed = 42) selected =
  let jobs = max min_jobs (min (clamp_jobs jobs) (List.length selected)) in
  if jobs <= 1 then
    List.map (fun (id, f) -> (id, attempt ~seed f)) selected
  else run_forked ~jobs ~seed (List.mapi (fun i x -> (i, x)) selected)
