(* Reproduction regression bands: the headline paper claims, asserted as
   tolerance intervals so a refactor that silently breaks a mechanism
   (rather than a unit) fails the suite.  All marked Slow — each boots
   and runs real benchmarks. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Config = Mmu_tricks.Config
module Metrics = Mmu_tricks.Metrics
module Lmbench = Workloads.Lmbench
module Kbuild = Workloads.Kbuild

let in_band name lo v hi =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" name v lo hi)
    true
    (v >= lo && v <= hi)

(* Table 3 anchors: the calibrated cells must stay put. *)
let test_null_syscall_anchors () =
  let run policy =
    Lmbench.null_syscall_us
      (Kernel.boot ~machine:Machine.ppc604_133 ~policy ~seed:42 ())
  in
  in_band "optimized null (paper 2us)" 1.5 (run Policy.optimized) 2.5;
  in_band "baseline null (paper 18us)" 15.0 (run Policy.baseline) 21.0

(* T2: the ~80x lazy-flush mmap speedup (we accept 40-100x). *)
let test_mmap_speedup_band () =
  let lat policy =
    Lmbench.mmap_latency_us
      (Kernel.boot ~machine:Machine.ppc603_133 ~policy ~seed:42 ())
  in
  let precise = lat Config.optimized_precise_flush in
  let lazy_ = lat Policy.optimized in
  in_band "mmap speedup (paper 79x)" 40.0 (precise /. lazy_) 110.0;
  in_band "lazy mmap latency (paper 41us)" 20.0 lazy_ 60.0

(* E1: BAT mapping cuts TLB misses by ~10% on the compile. *)
let test_bat_tlb_reduction_band () =
  let params = { Kbuild.default_params with Kbuild.jobs = 12 } in
  let misses policy =
    Perf.tlb_misses
      (Kbuild.measure ~machine:Machine.ppc604_185 ~policy ~params ~seed:42 ())
        .Kbuild.perf
  in
  let base = float_of_int (misses Policy.baseline) in
  let bat = float_of_int (misses Config.baseline_with_bat) in
  in_band "TLB miss reduction (paper -10%)" 4.0
    (100.0 *. (base -. bat) /. base)
    16.0

(* E6: without reclaim the evict ratio blows up; with it, collapses. *)
let test_reclaim_evict_ratio_band () =
  let warm = { Kbuild.default_params with Kbuild.jobs = 16 } in
  let measured = { Kbuild.default_params with Kbuild.jobs = 12 } in
  let ratio policy =
    let k = Kernel.boot ~machine:Machine.ppc604_185 ~policy ~seed:42 () in
    Kbuild.run k ~params:warm;
    let p = Workloads.Measure.perf k (fun () -> Kbuild.run k ~params:measured) in
    Metrics.evict_ratio p
  in
  let off = ratio Config.optimized_no_reclaim in
  let on_ = ratio Policy.optimized in
  in_band "evict ratio without reclaim" 0.12 off 1.0;
  in_band "evict ratio with reclaim" 0.0 on_ 0.10;
  Alcotest.(check bool) "reclaim wins decisively" true (off > 3.0 *. on_)

(* E11: the frame-buffer BAT removes most fb TLB traffic. *)
let test_fb_bat_band () =
  let misses policy =
    float_of_int
      (Perf.tlb_misses
         (Workloads.Xserver.measure ~machine:Machine.ppc604_185 ~policy
            ~seed:42 ())
           .Workloads.Xserver.perf)
  in
  let off = misses Policy.optimized in
  let on_ = misses Config.optimized_fb_bat in
  in_band "fb TLB miss reduction" 60.0 (100.0 *. (off -. on_) /. off) 99.0

(* T1: the no-htab 603/180 stays within 15% of the 604/185. *)
let test_603_keeps_pace_band () =
  let s603 =
    Lmbench.pipe_latency_us
      (Kernel.boot ~machine:Machine.ppc603_180
         ~policy:Config.optimized_no_htab ~seed:42 ())
  in
  let s604 =
    Lmbench.pipe_latency_us
      (Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized
         ~seed:42 ())
  in
  in_band "603-no-htab / 604 pipe latency" 0.8 (s603 /. s604) 1.25

let suite =
  [ Alcotest.test_case "null-syscall anchors (T3)" `Slow
      test_null_syscall_anchors;
    Alcotest.test_case "mmap speedup band (T2)" `Slow test_mmap_speedup_band;
    Alcotest.test_case "BAT TLB reduction band (E1)" `Slow
      test_bat_tlb_reduction_band;
    Alcotest.test_case "reclaim evict-ratio band (E6)" `Slow
      test_reclaim_evict_ratio_band;
    Alcotest.test_case "fb BAT band (E11)" `Slow test_fb_bat_band;
    Alcotest.test_case "603 keeps pace band (T1)" `Slow
      test_603_keeps_pace_band ]
