type source =
  | User
  | Kernel
  | Page_table
  | Htab
  | Idle_clear

let n_sources = 5

let source_index = function
  | User -> 0
  | Kernel -> 1
  | Page_table -> 2
  | Htab -> 3
  | Idle_clear -> 4

let source_name = function
  | User -> "user"
  | Kernel -> "kernel"
  | Page_table -> "page-table"
  | Htab -> "htab"
  | Idle_clear -> "idle-clear"

type result =
  | Hit
  | Miss of { dirty_writeback : bool }
  | Bypass

type t = {
  n_sets : int;
  n_ways : int;
  tags : int array;    (* line index, or -1 when invalid *)
  dirty : bool array;
  stamps : int array;
  mutable tick : int;
  mutable locked : bool;
  allocs : int array;      (* per source *)
  evictions : int array;   (* per source *)
}

let create ~bytes ~ways =
  let lines = bytes / Addr.line_size in
  if lines mod ways <> 0 then invalid_arg "Cache.create: geometry";
  let sets = lines / ways in
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  { n_sets = sets;
    n_ways = ways;
    tags = Array.make lines (-1);
    dirty = Array.make lines false;
    stamps = Array.make lines 0;
    tick = 0;
    locked = false;
    allocs = Array.make n_sources 0;
    evictions = Array.make n_sources 0 }

let capacity_lines t = t.n_sets * t.n_ways

let set_of t line = line land (t.n_sets - 1)

(* Find the hit way, a free way and the LRU way of the set in one scan. *)
let scan_set t base line =
  let hit_way = ref (-1) in
  let free_way = ref (-1) in
  let lru = ref max_int in
  let lru_way = ref 0 in
  for w = 0 to t.n_ways - 1 do
    let i = base + w in
    if t.tags.(i) = line then hit_way := w
    else if t.tags.(i) < 0 && !free_way < 0 then free_way := w;
    if t.stamps.(i) < !lru then begin
      lru := t.stamps.(i);
      lru_way := w
    end
  done;
  (!hit_way, !free_way, !lru_way)

let fill t ~source ~write i line =
  let src = source_index source in
  let dirty_writeback = t.tags.(i) >= 0 && t.dirty.(i) in
  if t.tags.(i) >= 0 then t.evictions.(src) <- t.evictions.(src) + 1;
  t.tags.(i) <- line;
  t.dirty.(i) <- write;
  t.stamps.(i) <- t.tick;
  t.allocs.(src) <- t.allocs.(src) + 1;
  Miss { dirty_writeback }

let access t ~source ~inhibited ~write pa =
  if inhibited then Bypass
  else begin
    let line = Addr.line_index pa in
    let base = set_of t line * t.n_ways in
    let hit_way, free_way, lru_way = scan_set t base line in
    t.tick <- t.tick + 1;
    if hit_way >= 0 then begin
      let i = base + hit_way in
      t.stamps.(i) <- t.tick;
      if write then t.dirty.(i) <- true;
      Hit
    end
    else if t.locked then Bypass
    else
      let w = if free_way >= 0 then free_way else lru_way in
      fill t ~source ~write (base + w) line
  end

let allocate_zero t ~source pa =
  let line = Addr.line_index pa in
  let base = set_of t line * t.n_ways in
  let hit_way, free_way, lru_way = scan_set t base line in
  t.tick <- t.tick + 1;
  if hit_way >= 0 then begin
    let i = base + hit_way in
    t.stamps.(i) <- t.tick;
    t.dirty.(i) <- true;
    Hit
  end
  else if t.locked then Bypass
  else
    let w = if free_way >= 0 then free_way else lru_way in
    fill t ~source ~write:true (base + w) line

let contains t pa =
  let line = Addr.line_index pa in
  let base = set_of t line * t.n_ways in
  let rec loop w =
    if w >= t.n_ways then false
    else if t.tags.(base + w) = line then true
    else loop (w + 1)
  in
  loop 0

let set_locked t b = t.locked <- b
let is_locked t = t.locked

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false

let occupancy t =
  Array.fold_left (fun n tag -> if tag >= 0 then n + 1 else n) 0 t.tags

let dirty_lines t =
  let n = ref 0 in
  Array.iteri (fun i tag -> if tag >= 0 && t.dirty.(i) then incr n) t.tags;
  !n

let stats_allocations t source = t.allocs.(source_index source)
let stats_evictions_caused_by t source = t.evictions.(source_index source)

let reset_stats t =
  Array.fill t.allocs 0 n_sources 0;
  Array.fill t.evictions 0 n_sources 0
