(* The experiment harness: Json, Runner, Baseline, CSV escaping. *)
module Experiments = Mmu_tricks.Experiments
module Json = Mmu_tricks.Json
module Runner = Mmu_tricks.Runner
module Baseline = Mmu_tricks.Baseline

(* ------------------------------------------------------------- to_csv *)

let csv t = Experiments.to_csv t

let mk_table ?(title = "t") ?(header = [ "a"; "b" ]) ?(notes = []) rows =
  { Experiments.title; header; rows; notes }

let test_csv_comma () =
  Alcotest.(check string) "comma quoted" "a,b\n\"x,y\",z\n"
    (csv (mk_table [ [ "x,y"; "z" ] ]))

let test_csv_quote () =
  Alcotest.(check string) "quote doubled" "a,b\n\"he said \"\"hi\"\"\",z\n"
    (csv (mk_table [ [ "he said \"hi\""; "z" ] ]))

let test_csv_newline () =
  Alcotest.(check string) "newline quoted" "a,b\n\"two\nlines\",z\n"
    (csv (mk_table [ [ "two\nlines"; "z" ] ]))

let test_csv_mixed () =
  (* all three at once, plus a plain cell left untouched *)
  Alcotest.(check string) "mixed" "a,b\n\"a,\"\"b\"\"\nc\",plain\n"
    (csv (mk_table [ [ "a,\"b\"\nc"; "plain" ] ]))

let test_csv_header_quoted () =
  Alcotest.(check string) "header cells are escaped too"
    "\"x,y\",b\n1,2\n"
    (csv (mk_table ~header:[ "x,y"; "b" ] [ [ "1"; "2" ] ]))

(* --------------------------------------------------------------- json *)

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> x = y
  | Json.Int x, Json.Float y | Json.Float y, Json.Int x ->
      float_of_int x = y
  | Json.String x, Json.String y -> x = y
  | Json.List x, Json.List y ->
      List.length x = List.length y && List.for_all2 json_eq x y
  | Json.Obj x, Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_eq v1 v2)
           x y
  | _ -> false

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.fail e

let test_json_roundtrip_values () =
  let cases =
    [ Json.Null; Json.Bool true; Json.Bool false; Json.Int 0;
      Json.Int (-42); Json.Int 219000000; Json.Float 3.14159;
      Json.Float (-0.001); Json.Float 1e22; Json.String "";
      Json.String "plain"; Json.String "esc \" \\ \n \t \r \b \012 done";
      Json.String "unicode snowman: \xe2\x98\x83"; Json.List [];
      Json.Obj [];
      Json.List [ Json.Int 1; Json.String "two"; Json.List [ Json.Null ] ];
      Json.Obj
        [ ("k", Json.String "v");
          ("nested", Json.Obj [ ("l", Json.List [ Json.Bool false ]) ]) ] ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        ("round trip: " ^ Json.to_string ~compact:true v)
        true
        (json_eq v (roundtrip v)))
    cases;
  (* compact form round-trips too *)
  let v = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5 ]) ] in
  match Json.of_string (Json.to_string ~compact:true v) with
  | Ok v' -> Alcotest.(check bool) "compact" true (json_eq v v')
  | Error e -> Alcotest.fail e

let test_json_parse_escapes () =
  match Json.of_string {|{"s": "aA\n\t\"\\é"}|} with
  | Ok j ->
      Alcotest.(check (option string))
        "escapes decode"
        (Some "aA\n\t\"\\\xc3\xa9")
        (Option.bind (Json.member "s" j) Json.to_string_opt)
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "[1 2]"; "{\"a\" 1}"; "tru"; "\"unterminated";
              "[1] garbage"; "{\"a\":}" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail ("accepted bad JSON: " ^ s)
      | Error _ -> ())
    bad

let test_json_numbers () =
  match Json.of_string "[1, -2, 3.5, 1e3, 219000000, -0.25]" with
  | Ok (Json.List [ a; b; c; d; e; f ]) ->
      Alcotest.(check (option int)) "int" (Some 1) (Json.to_int_opt a);
      Alcotest.(check (option int)) "neg int" (Some (-2)) (Json.to_int_opt b);
      Alcotest.(check (option (float 1e-9))) "float" (Some 3.5)
        (Json.to_float_opt c);
      Alcotest.(check (option (float 1e-9))) "exponent" (Some 1000.0)
        (Json.to_float_opt d);
      Alcotest.(check (option int)) "big int" (Some 219000000)
        (Json.to_int_opt e);
      Alcotest.(check (option (float 1e-9))) "neg float" (Some (-0.25))
        (Json.to_float_opt f)
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_json_nonfinite_floats () =
  (* JSON has no inf/nan tokens: all three serialize as null, and the
     document round-trips (to Null) instead of failing to reparse *)
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "%h emits null" f)
        "null"
        (Json.to_string ~compact:true (Json.Float f)))
    [ infinity; neg_infinity; nan ];
  let doc = Json.Obj [ ("v", Json.Float infinity); ("w", Json.Float nan) ] in
  match Json.of_string (Json.to_string doc) with
  | Ok j ->
      Alcotest.(check bool) "inf round-trips to null" true
        (Json.member "v" j = Some Json.Null
        && Json.member "w" j = Some Json.Null)
  | Error e -> Alcotest.fail e

let test_json_unicode_escapes () =
  (* strict hex: OCaml's underscore-tolerant int_of_string must not
     leak through *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail ("accepted bad \\u escape: " ^ s)
      | Error _ -> ())
    [ {|"\u12_3"|}; {|"\u00G1"|}; {|"\u+123"|}; {|"\ud800"|}; {|"\udc00"|};
      {|"\ud83dx"|}; {|"\ud83dA"|} ];
  (match Json.of_string {|"\u0041\u00e9\u2603"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "BMP escapes decode" "A\xc3\xa9\xe2\x98\x83" s
  | _ -> Alcotest.fail "BMP escapes rejected");
  (* a surrogate pair combines into one 4-byte UTF-8 code point, not
     two 3-byte CESU-8 halves *)
  match Json.of_string {|"\ud83d\ude00"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "surrogate pair is U+1F600" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair rejected"

let test_json_number_grammar () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail ("accepted bad number: " ^ s)
      | Error _ -> ())
    [ "+1"; "-"; "01"; "-01"; "007"; "1."; "-2.e3"; "1e"; "1e+"; "0x10";
      "1_000"; "--1" ];
  List.iter
    (fun (s, expect) ->
      match Json.of_string s with
      | Ok v ->
          Alcotest.(check (option (float 1e-12))) ("accepts " ^ s) (Some expect)
            (Json.to_float_opt v)
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    [ ("0", 0.0); ("-0", 0.0); ("0.5", 0.5); ("10", 10.0); ("1e5", 1e5);
      ("-0.25e-2", -0.0025); ("2E+3", 2000.0) ]

let test_table_json_roundtrip () =
  let t =
    mk_table ~title:"T — with, punctuation\"" ~notes:[ "note 1"; "note 2" ]
      [ [ "603 180MHz (htab)"; "2.08/1.80" ]; [ "-10% (hw 4)"; "x,y\nz" ] ]
  in
  match Experiments.of_json (Experiments.to_json ~id:"T9" t) with
  | Ok t' -> Alcotest.(check bool) "table round trip" true (t = t')
  | Error e -> Alcotest.fail e

let test_results_doc_roundtrip () =
  let entries =
    [ ("A", mk_table [ [ "1"; "2" ] ]);
      ("B", mk_table ~notes:[ "n" ] [ [ "3,000"; "4.5/6" ] ]) ]
  in
  let j = Baseline.doc_to_json ~tolerance:0.05 ~seed:7 entries in
  match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.fail e
  | Ok j' -> (
      match Baseline.doc_of_json j' with
      | Error e -> Alcotest.fail e
      | Ok doc ->
          Alcotest.(check int) "seed" 7 doc.Baseline.d_seed;
          Alcotest.(check (option (float 1e-9))) "tolerance" (Some 0.05)
            doc.Baseline.d_tolerance;
          Alcotest.(check bool) "entries survive" true
            (doc.Baseline.d_entries = entries))

(* ------------------------------------------------------------ baseline *)

let test_numbers_of_cell () =
  let check name expect cell =
    Alcotest.(check (list (float 1e-9))) name expect
      (Baseline.numbers_of_cell cell)
  in
  check "measured/paper" [ 1.63; 1.60 ] "1.63/1.60";
  check "percent" [ -10.0 ] "-10%";
  check "thousands" [ 219000000.0 ] "219,000,000";
  check "ratio" [ 80.3 ] "80.3x";
  check "text with units" [ 66.0; 4.0 ] "66% (hw 4)";
  check "plain text" [] "no numbers here";
  check "label" [ 603.0; 180.0 ] "603 180MHz (htab)";
  check "list comma is not a separator" [ 1.0; 2.0 ] "1, 2";
  check "grouped pair" [ 8192.0; 64.0 ] "8,192 PTEs (64 KB)"

let test_check_table_pass_and_tolerance () =
  let base = mk_table [ [ "r"; "100.0"; "3,000" ] ] in
  let same = mk_table [ [ "r"; "100.0"; "3,000" ] ] in
  let near = mk_table [ [ "r"; "101.0"; "3,000" ] ] in
  let far = mk_table [ [ "r"; "150.0"; "3,000" ] ] in
  let c = Baseline.check_table ~id:"X" ~tol:0.02 ~baseline:base ~current:same in
  Alcotest.(check bool) "identical passes" true c.Baseline.c_ok;
  Alcotest.(check int) "numbers counted" 2 c.Baseline.c_numbers;
  let c = Baseline.check_table ~id:"X" ~tol:0.02 ~baseline:base ~current:near in
  Alcotest.(check bool) "1% within 2% tol" true c.Baseline.c_ok;
  Alcotest.(check bool) "max rel recorded" true (c.Baseline.c_max_rel > 0.009);
  let c = Baseline.check_table ~id:"X" ~tol:0.02 ~baseline:base ~current:far in
  Alcotest.(check bool) "50% fails 2% tol" false c.Baseline.c_ok;
  Alcotest.(check bool) "detail names the cell" true
    (match c.Baseline.c_detail with
    | Some d -> String.length d > 0
    | None -> false)

let test_check_table_structure () =
  let base = mk_table [ [ "r"; "1" ] ] in
  let hdr = mk_table ~header:[ "a"; "c" ] [ [ "r"; "1" ] ] in
  let rows = mk_table [ [ "r"; "1" ]; [ "s"; "2" ] ] in
  let toks = mk_table [ [ "r"; "1/2" ] ] in
  List.iter
    (fun (name, cur) ->
      let c =
        Baseline.check_table ~id:"X" ~tol:0.5 ~baseline:base ~current:cur
      in
      Alcotest.(check bool) name false c.Baseline.c_ok)
    [ ("header change fails", hdr); ("row count change fails", rows);
      ("token count change fails", toks) ]

let test_tolerance_for () =
  let doc =
    { Baseline.d_seed = 42; d_tolerance = Some 0.1;
      d_tolerances = [ ("EX6", 0.3) ]; d_entries = [] }
  in
  Alcotest.(check (float 1e-9)) "per-experiment wins" 0.3
    (Baseline.tolerance_for doc "EX6");
  Alcotest.(check (float 1e-9)) "doc default next" 0.1
    (Baseline.tolerance_for doc "T1");
  let bare = { doc with Baseline.d_tolerance = None; d_tolerances = [] } in
  Alcotest.(check (float 1e-9)) "fallback default" 0.02
    (Baseline.tolerance_for bare "T1")

(* -------------------------------------------------------------- runner *)

let fake id rows : string * (?seed:int -> unit -> Experiments.table) =
  ( id,
    fun ?(seed = 42) () ->
      mk_table ~title:(Printf.sprintf "%s seed %d" id seed) rows )

let test_runner_serial_equals_parallel () =
  let jobs_list = [ 1; 2; 3; 8 ] in
  let work =
    List.init 7 (fun i ->
        fake (Printf.sprintf "W%d" i) [ [ string_of_int i; "x" ] ])
  in
  let serial = Runner.run ~jobs:1 ~seed:9 work in
  List.iter
    (fun jobs ->
      let par = Runner.run ~jobs ~seed:9 work in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d matches serial" jobs)
        true (par = serial))
    jobs_list;
  (* order is input order, and the seed reached the experiments *)
  Alcotest.(check (list string)) "ids in order"
    [ "W0"; "W1"; "W2"; "W3"; "W4"; "W5"; "W6" ]
    (List.map fst serial);
  match List.assoc "W3" serial with
  | Runner.Done t ->
      Alcotest.(check string) "seed plumbed" "W3 seed 9" t.Experiments.title
  | o -> Alcotest.fail (Runner.describe o)

let test_serial_forcers () =
  (* the CLI's non-silent-downgrade authority: every flag whose data
     can't ship over the worker result pipe must be named, so the
     warning (or --strict error) tells the user *why* their --jobs was
     ignored *)
  let f ?(tracing = false) ?(profiled = false) ?(shadow = false) ?(cpus = 1)
      () =
    Runner.serial_forcers ~tracing ~profiled ~shadow ~cpus
  in
  Alcotest.(check (list string)) "nothing forces serial" [] (f ());
  Alcotest.(check (list string)) "trace forces serial"
    [ "--trace/--timeline" ] (f ~tracing:true ());
  Alcotest.(check (list string)) "profile forces serial" [ "--profile" ]
    (f ~profiled:true ());
  Alcotest.(check (list string)) "shadow forces serial" [ "--shadow" ]
    (f ~shadow:true ());
  Alcotest.(check (list string)) "smp forces serial" [ "--cpus" ]
    (f ~cpus:4 ());
  Alcotest.(check (list string)) "all forcers, in flag order"
    [ "--trace/--timeline"; "--profile"; "--shadow"; "--cpus" ]
    (f ~tracing:true ~profiled:true ~shadow:true ~cpus:2 ())

let test_runner_failure_isolation () =
  let boom : string * (?seed:int -> unit -> Experiments.table) =
    ("BOOM", fun ?seed:_ () -> failwith "deliberate") in
  let work = [ fake "OK1" [ [ "1" ] ]; boom; fake "OK2" [ [ "2" ] ] ] in
  List.iter
    (fun jobs ->
      match Runner.run ~jobs ~seed:1 work with
      | [ ("OK1", Runner.Done _); ("BOOM", Runner.Failed msg);
          ("OK2", Runner.Done _) ] ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d carries the exception text" jobs)
            true
            (String.length msg > 0)
      | _ -> Alcotest.fail (Printf.sprintf "jobs=%d: wrong shape" jobs))
    [ 1; 2 ]

let test_runner_real_experiment () =
  (* one real (cheap) experiment through the forked path: identical to
     the in-process run *)
  let sel = [ ("E13", (Option.get (Experiments.find "E13")).Experiments.run) ] in
  let serial = Runner.run ~jobs:1 ~seed:3 sel in
  let forked =
    Runner.run ~jobs:2 ~seed:3 (sel @ [ fake "PAD" [ [ "p" ] ] ])
  in
  match (serial, forked) with
  | [ (_, Runner.Done a) ], (_, Runner.Done b) :: _ ->
      Alcotest.(check bool) "forked result identical" true (a = b)
  | _ -> Alcotest.fail "experiment failed"

(* --------------------------------------------------------- supervision *)

let with_fault spec f =
  Unix.putenv Runner.fault_env spec;
  Fun.protect ~finally:(fun () -> Unix.putenv Runner.fault_env "") f

let tables_of results =
  List.map (fun (id, o) -> (id, Runner.table_of_outcome o)) results

(* One worker _exit(3)s mid-slice and another is SIGKILLed mid-slice;
   the supervisor must retry the lost experiments and converge on
   results byte-identical to a serial run at the same seed. *)
let test_runner_worker_death_retried () =
  let work =
    List.init 8 (fun i ->
        fake (Printf.sprintf "W%d" i) [ [ string_of_int i; "x" ] ])
  in
  let serial = Runner.run ~jobs:1 ~seed:11 work in
  with_fault "exit:W2:3,kill:W5" (fun () ->
      let par = Runner.run ~jobs:3 ~seed:11 work in
      Alcotest.(check bool)
        "retried tables byte-identical to serial" true
        (tables_of par = tables_of serial);
      (* the injected victims were recovered via the retry ladder *)
      List.iter
        (fun id ->
          match List.assoc id par with
          | Runner.Retried (n, Runner.Done _) ->
              Alcotest.(check bool) (id ^ " retry count positive") true (n >= 1)
          | o -> Alcotest.fail (id ^ ": " ^ Runner.describe o))
        [ "W2"; "W5" ];
      (* untouched experiments were not retried *)
      match List.assoc "W0" par with
      | Runner.Done _ -> ()
      | o -> Alcotest.fail ("W0: " ^ Runner.describe o))

(* With the retry budget at 0, the waitpid status must surface as a
   structured Crashed outcome instead of a generic failure string. *)
let test_runner_crash_surfaces_status () =
  let work = List.init 4 (fun i -> fake (Printf.sprintf "C%d" i) [ [ "v" ] ]) in
  (* jobs=2 deals round-robin: C0,C2 to worker 0 and C1,C3 to worker 1,
     so the two faults land on different workers *)
  with_fault "kill:C1,exit:C2:7" (fun () ->
      let r = Runner.run ~jobs:2 ~retries:0 ~seed:5 work in
      (match List.assoc "C1" r with
      | Runner.Crashed (Runner.Signaled s) ->
          Alcotest.(check bool) "killed by SIGKILL" true (s = Sys.sigkill)
      | o -> Alcotest.fail ("C1: " ^ Runner.describe o));
      match List.assoc "C2" r with
      | Runner.Crashed (Runner.Exited 7) -> ()
      | o -> Alcotest.fail ("C2: " ^ Runner.describe o))

(* A hung worker is cut off by the deadline; the hung experiment is
   retried (fault disarmed) and still matches the serial run. *)
let test_runner_hang_timeout_retried () =
  let work = List.init 4 (fun i -> fake (Printf.sprintf "H%d" i) [ [ "v" ] ]) in
  let serial = Runner.run ~jobs:1 ~seed:8 work in
  with_fault "hang:H1" (fun () ->
      let par = Runner.run ~jobs:2 ~timeout:0.4 ~seed:8 work in
      Alcotest.(check bool)
        "tables identical after timeout recovery" true
        (tables_of par = tables_of serial);
      match List.assoc "H1" par with
      | Runner.Retried (_, Runner.Done _) -> ()
      | o -> Alcotest.fail ("H1: " ^ Runner.describe o))

(* No retries: the hang must surface as Timed_out, and an in-process
   (jobs=1) hang must be cut off by SIGALRM the same way. *)
let test_runner_timeout_surfaces () =
  let work = List.init 2 (fun i -> fake (Printf.sprintf "T%d" i) [ [ "v" ] ]) in
  with_fault "hang:T0" (fun () ->
      (match List.assoc "T0" (Runner.run ~jobs:2 ~timeout:0.3 ~retries:0 ~seed:2 work) with
      | Runner.Timed_out t ->
          Alcotest.(check (float 1e-9)) "budget reported" 0.3 t
      | o -> Alcotest.fail ("forked: " ^ Runner.describe o)));
  with_fault "hang:T0" (fun () ->
      match List.assoc "T0" (Runner.run ~jobs:1 ~timeout:0.3 ~retries:0 ~seed:2 work) with
      | Runner.Timed_out _ -> ()
      | o -> Alcotest.fail ("serial: " ^ Runner.describe o))

(* A raising experiment is a clean Failed — delivered, not retried,
   even when faults for other ids are armed. *)
let test_runner_raise_not_retried () =
  let work = [ fake "R0" [ [ "v" ] ]; fake "R1" [ [ "v" ] ] ] in
  with_fault "raise:R1" (fun () ->
      match List.assoc "R1" (Runner.run ~jobs:2 ~seed:4 work) with
      | Runner.Failed m ->
          Alcotest.(check bool) "carries the injected text" true
            (String.length m > 0)
      | o -> Alcotest.fail ("R1: " ^ Runner.describe o))

let test_outcome_helpers () =
  let t = mk_table [ [ "1" ] ] in
  Alcotest.(check bool) "table through Retried" true
    (Runner.table_of_outcome (Runner.Retried (2, Runner.Done t)) = Some t);
  Alcotest.(check bool) "no table from Crashed" true
    (Runner.table_of_outcome (Runner.Crashed (Runner.Exited 3)) = None);
  Alcotest.(check string) "describe names SIGKILL"
    "worker killed by SIGKILL"
    (Runner.describe (Runner.Crashed (Runner.Signaled Sys.sigkill)));
  Alcotest.(check string) "describe wraps retries"
    "timed out after 5s (after 2 retries)"
    (Runner.describe (Runner.Retried (2, Runner.Timed_out 5.0)))

let test_registry_metadata () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Experiments.id ^ " has a name") true
        (String.length s.Experiments.name > 0);
      Alcotest.(check bool) (s.Experiments.id ^ " has a section") true
        (String.length s.Experiments.section > 0);
      Alcotest.(check bool) (s.Experiments.id ^ " has a description") true
        (String.length s.Experiments.what > 0))
    Experiments.registry;
  Alcotest.(check bool) "find is case-insensitive" true
    (match Experiments.find "e13" with
    | Some s -> s.Experiments.id = "E13"
    | None -> false);
  Alcotest.(check bool) "find rejects unknown" true
    (Experiments.find "E99" = None);
  Alcotest.(check int) "all mirrors registry"
    (List.length Experiments.registry)
    (List.length Experiments.all)

let suite =
  [ Alcotest.test_case "csv comma" `Quick test_csv_comma;
    Alcotest.test_case "csv quote" `Quick test_csv_quote;
    Alcotest.test_case "csv newline" `Quick test_csv_newline;
    Alcotest.test_case "csv mixed" `Quick test_csv_mixed;
    Alcotest.test_case "csv header quoted" `Quick test_csv_header_quoted;
    Alcotest.test_case "json value round trips" `Quick
      test_json_roundtrip_values;
    Alcotest.test_case "json escape decoding" `Quick test_json_parse_escapes;
    Alcotest.test_case "json rejects malformed input" `Quick
      test_json_parse_errors;
    Alcotest.test_case "json number forms" `Quick test_json_numbers;
    Alcotest.test_case "json non-finite floats emit null" `Quick
      test_json_nonfinite_floats;
    Alcotest.test_case "json unicode escapes strict" `Quick
      test_json_unicode_escapes;
    Alcotest.test_case "json number grammar strict" `Quick
      test_json_number_grammar;
    Alcotest.test_case "table json round trip" `Quick
      test_table_json_roundtrip;
    Alcotest.test_case "results doc round trip" `Quick
      test_results_doc_roundtrip;
    Alcotest.test_case "numeric cell extraction" `Quick test_numbers_of_cell;
    Alcotest.test_case "check pass and tolerance" `Quick
      test_check_table_pass_and_tolerance;
    Alcotest.test_case "check structural changes" `Quick
      test_check_table_structure;
    Alcotest.test_case "tolerance resolution" `Quick test_tolerance_for;
    Alcotest.test_case "runner parallel = serial" `Quick
      test_runner_serial_equals_parallel;
    Alcotest.test_case "runner failure isolation" `Quick
      test_runner_failure_isolation;
    Alcotest.test_case "runner serial forcers named" `Quick
      test_serial_forcers;
    Alcotest.test_case "runner real experiment (E13)" `Slow
      test_runner_real_experiment;
    Alcotest.test_case "runner worker death retried" `Quick
      test_runner_worker_death_retried;
    Alcotest.test_case "runner crash surfaces waitpid status" `Quick
      test_runner_crash_surfaces_status;
    Alcotest.test_case "runner hang timeout retried" `Quick
      test_runner_hang_timeout_retried;
    Alcotest.test_case "runner timeout surfaces" `Quick
      test_runner_timeout_surfaces;
    Alcotest.test_case "runner raise not retried" `Quick
      test_runner_raise_not_retried;
    Alcotest.test_case "runner outcome helpers" `Quick test_outcome_helpers;
    Alcotest.test_case "registry metadata" `Quick test_registry_metadata ]
