lib/workloads/lmbench.ml: Addr Array Cost Kernel_sim Machine Measure Mmu Ppc Rng
