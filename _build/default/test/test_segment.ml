(* Segment registers. *)
open Ppc

let test_get_set () =
  let s = Segment.create () in
  Segment.set s 5 0x123456;
  Alcotest.(check int) "set/get" 0x123456 (Segment.get s 5);
  Segment.set s 5 0x1FFFFFF;
  Alcotest.(check int) "masked to 24 bits" 0xFFFFFF (Segment.get s 5)

let test_vsid_for () =
  let s = Segment.create () in
  Segment.set s 0x7 0x42;
  Alcotest.(check int) "selects by top nibble" 0x42
    (Segment.vsid_for s 0x7ABCDEF0)

let test_load_user_kernel () =
  let s = Segment.create () in
  Segment.load_user s (fun i -> 100 + i);
  Segment.load_kernel s (fun i -> 200 + i);
  for i = 0 to 11 do
    Alcotest.(check int) "user segment" (100 + i) (Segment.get s i)
  done;
  for i = 12 to 15 do
    Alcotest.(check int) "kernel segment" (200 + i) (Segment.get s i)
  done;
  (* user load must not clobber kernel segments *)
  Segment.load_user s (fun i -> 300 + i);
  Alcotest.(check int) "kernel survives user load" 212 (Segment.get s 12)

let test_kernel_predicates () =
  Alcotest.(check bool) "segment 12 is kernel" true
    (Segment.is_kernel_segment 12);
  Alcotest.(check bool) "segment 11 is user" false
    (Segment.is_kernel_segment 11);
  Alcotest.(check bool) "0xC0000000 is kernel" true
    (Segment.is_kernel_ea 0xC0000000);
  Alcotest.(check bool) "0xBFFFFFFF is user" false
    (Segment.is_kernel_ea 0xBFFFFFFF)

let suite =
  [ Alcotest.test_case "get/set masking" `Quick test_get_set;
    Alcotest.test_case "vsid_for" `Quick test_vsid_for;
    Alcotest.test_case "user/kernel loads" `Quick test_load_user_kernel;
    Alcotest.test_case "kernel predicates" `Quick test_kernel_predicates ]
