(** Interactive responsiveness under contention.

    An editor wakes for a keystroke burst while a compile grinds in the
    background, all under {!Kernel_sim.Sched}.  The measured quantity is
    the {e response time}: from the keystroke's wake-up deadline to the
    burst's completion — scheduling delay plus the burst's own work
    (which includes re-faulting whatever TLB/cache state the compile
    displaced).  This is the latency a user feels, and the number the
    paper's wall-clock claims ultimately cash out as on an interactive
    machine. *)

module Kernel = Kernel_sim.Kernel

type params = {
  keystrokes : int;        (** measured bursts *)
  think_cycles : int;      (** editor sleep between bursts *)
  editor_pages : int;
  compile_pages : int;     (** background compile working set *)
}

val default_params : params

type result = {
  perf : Ppc.Perf.t;
  mean_response_us : float;
  worst_response_us : float;
  wall_us : float;
}

val measure :
  machine:Ppc.Machine.t ->
  policy:Kernel_sim.Policy.t ->
  ?params:params ->
  ?seed:int ->
  unit ->
  result
