lib/workloads/multiuser.ml: Addr Cost Kernel_sim List Machine Mmu Perf Ppc Refgen Rng
