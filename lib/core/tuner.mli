(** The parallel policy auto-tuner.

    The paper tuned its constants by hand: "we tuned the VSID generation
    algorithm by making Linux keep a hash table miss histogram and
    adjusting the constant until hot-spots disappeared" (§5.2).  This
    module is that loop as infrastructure, generalized to every knob the
    {!Policy} layer exposes: enumerate candidate policies over named
    axes, fan them through the fault-tolerant parallel {!Runner} (one
    isolated kernel per candidate x workload), score each candidate on
    translation cost, tail latency and htab hot spots per workload, keep
    the Pareto front, hill-climb from the best point, and emit a
    machine-readable document plus an {!Explain}-backed account of why
    the winner beats (or ties) {!Policy.paper_default}.

    Everything is deterministic in [seed], and results are independent
    of [jobs]: payloads ride the Runner's result pipe, so a [--jobs 4]
    sweep is byte-identical to a serial one. *)

(** {1 Generic fan-out}

    The primitive the legacy §5.2 {!Tuning} sweep is also built on. *)

val fan_out :
  ?jobs:int ->
  ?seed:int ->
  ?timeout:float ->
  ?retries:int ->
  (string * (?seed:int -> unit -> Json.t)) list ->
  (string * (Json.t, string) result) list
(** Run labeled payload-producing tasks under the {!Runner} supervisor
    (fork isolation, deadlines, retries) and return each task's payload
    in input order.  [Error] carries {!Runner.describe} of whatever
    kept a payload from arriving. *)

(** {1 Metrics and workloads} *)

type metric = {
  m_name : string;
  m_value : float;  (** lower is always better *)
  m_unit : string;
}

type workload = {
  w_name : string;
  w_eval : policy:Kernel_sim.Policy.t -> seed:int -> metric list;
      (** boot a fresh kernel under [policy] and measure; must return
          the same metric names in the same order for every policy *)
}

val kbuild : ?params:Workloads.Kbuild.params -> unit -> workload
(** The compile workload (default: {!Workloads.Kbuild.default_params}
    scaled to 12 jobs).  Metrics: [translation_cost] (busy cycles per
    1000 translations), [tail_latency] (wall-clock us — for a batch
    workload the tail is the total), [htab_hot_spots] (full PTEGs at
    end of run + live-PTE evictions en route). *)

val server : ?params:Workloads.Server.params -> Workloads.Server.model -> workload
(** The request-serving workload under the given service model (the
    [model] argument overrides [params.model]).  Metrics as {!kbuild},
    except [tail_latency] is the p99 request-completion latency in
    cycles. *)

val default_workloads : workload list
(** [kbuild], [server-pool], [server-fork_exec] — the three canonical
    shapes a policy must not regress. *)

val smoke_workloads : workload list
(** A small kbuild and a short server-pool run — the CI smoke diet. *)

val all_named : (string * workload) list
(** The workloads the CLI's [--workloads] flag can name. *)

(** {1 Candidates} *)

type axis = {
  a_key : string;          (** a {!Policy} knob key *)
  a_values : string list;  (** candidate values, in [--policy] syntax *)
}

type candidate = {
  c_label : string;  (** ["key=v,key2=v2"], or the base label *)
  c_assignment : (string * string) list;
  c_policy : Kernel_sim.Policy.t;
}

val label_of : (string * string) list -> string
(** ["key=v,key2=v2"] for an assignment list. *)

val base_candidate : ?label:string -> Kernel_sim.Policy.t -> candidate
(** The reference point (default label ["paper_default"]). *)

val candidate_of_assignment :
  base:Kernel_sim.Policy.t -> (string * string) list -> candidate
(** Apply knob assignments over [base].
    @raise Invalid_argument on an unknown key or malformed value. *)

val grid : base:Kernel_sim.Policy.t -> axis list -> candidate list
(** The full cartesian product of the axes over [base], in
    lexicographic axis order.
    @raise Invalid_argument on an unknown key or malformed value. *)

val default_axes : axis list
(** A 3-knob grid over the decisions the paper tuned hardest: the VSID
    scatter multiplier, the precise-flush cutoff, and TLB
    replacement. *)

val smoke_axes : axis list
(** A 2x2x2 grid for CI smoke runs. *)

(** {1 Evaluation} *)

type eval = {
  e_cand : candidate;
  e_metrics : (string * metric list) list;  (** per workload, in order *)
}

val evaluate :
  ?jobs:int ->
  ?seed:int ->
  ?timeout:float ->
  ?retries:int ->
  workloads:workload list ->
  candidate list ->
  eval list * (string * string) list
(** Fan every (candidate x workload) cell through {!fan_out}.
    Candidates are deduplicated by label.  A candidate with any failed
    workload is dropped from the evals (it cannot be compared) and its
    failures are reported as [(task id, detail)]. *)

val vector : eval -> float list
(** The candidate's metric values, concatenated in workload order —
    the coordinates Pareto domination is judged in. *)

val dominates : eval -> eval -> bool
(** [dominates a b]: no metric worse, at least one strictly better. *)

val pareto : eval list -> eval list
(** The non-dominated subset, in input order. *)

val score : base:eval -> eval -> float
(** Scalar summary for ranking within the front: the mean over all
    metrics of [(1 + v) / (1 + v_base)] (the +1 keeps zero-count
    metrics like hot spots stable).  [1.0] means "exactly the base";
    lower is better. *)

(** {1 The whole run} *)

type result = {
  r_base : eval;                        (** the reference evaluation *)
  r_evals : eval list;                  (** everything evaluated *)
  r_front : eval list;                  (** the Pareto front *)
  r_winner : eval;                      (** lowest {!score} on the front *)
  r_failures : (string * string) list;
}

val hill_climb :
  ?jobs:int ->
  ?seed:int ->
  ?timeout:float ->
  ?retries:int ->
  ?rounds:int ->
  workloads:workload list ->
  axes:axis list ->
  base_eval:eval ->
  eval list ->
  eval list * (string * string) list
(** From the best-scoring known point, evaluate the unvisited +-1
    neighbors along every axis; repeat (up to [rounds], default 4)
    while the best score improves.  Returns the accumulated evals. *)

val tune :
  ?jobs:int ->
  ?seed:int ->
  ?timeout:float ->
  ?retries:int ->
  ?rounds:int ->
  ?base:Kernel_sim.Policy.t ->
  ?base_label:string ->
  ?extra:candidate list ->
  workloads:workload list ->
  axes:axis list ->
  unit ->
  result
(** Grid + hill-climb: evaluate the base, the full grid, any [extra]
    candidates (e.g. a policy the caller expects to be dominated), then
    climb.  @raise Failure if the base itself fails to evaluate. *)

val on_front : result -> string -> bool
(** Is the labeled candidate on the Pareto front? *)

val schema : string
(** ["mmu-tricks/tuner-v1"]. *)

val doc : seed:int -> axes:axis list -> workloads:workload list -> result -> Json.t
(** The committed results document: axes, workloads, every candidate
    with assignment/score/metrics/front membership, the front, the
    winner, and any failures.  Deterministic; floats rounded to 6
    decimals. *)

(** {1 Explaining the winner} *)

val explain :
  ?top:int ->
  ?seed:int ->
  workloads:workload list ->
  base:candidate ->
  candidate:candidate ->
  unit ->
  string list
(** Rerun the workloads under both policies with the attribution
    profiler armed, then let {!Explain} rank the metric deltas and name
    the responsible PID/segment accounts — rendered report lines,
    largest relative change first. *)
