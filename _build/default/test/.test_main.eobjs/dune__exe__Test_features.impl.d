test/test_features.ml: Addr Alcotest Bat Cache Kernel_sim List Machine Memsys Mmu Mmu_tricks Perf Ppc Workloads
