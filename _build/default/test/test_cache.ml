(* L1 cache model: hits, misses, bypass, LRU, write-back, locking. *)
open Ppc

let mk () = Cache.create ~bytes:(16 * 1024) ~ways:4

let acc ?(source = Cache.User) ?(inhibited = false) ?(write = false) c pa =
  Cache.access c ~source ~inhibited ~write pa

let is_miss = function Cache.Miss _ -> true | Cache.Hit | Cache.Bypass -> false

let test_miss_then_hit () =
  let c = mk () in
  Alcotest.(check bool) "first access misses" true (is_miss (acc c 0x1000));
  Alcotest.(check bool) "second access hits" true (acc c 0x1000 = Cache.Hit);
  Alcotest.(check bool) "same line hits" true (acc c 0x101F = Cache.Hit);
  Alcotest.(check bool) "next line misses" true (is_miss (acc c 0x1020))

let test_bypass () =
  let c = mk () in
  Alcotest.(check bool) "inhibited bypasses" true
    (acc ~inhibited:true c 0x2000 = Cache.Bypass);
  Alcotest.(check bool) "bypass does not allocate" true
    (is_miss (acc c 0x2000));
  Alcotest.(check int) "nothing allocated by bypass" 1 (Cache.occupancy c)

let test_lru_within_set () =
  (* 16K 4-way: 128 sets; lines mapping to set 0 are 128 lines apart *)
  let c = mk () in
  let line i = i * 128 * 32 in
  for i = 0 to 3 do
    ignore (acc c (line i) : Cache.result)
  done;
  (* touch line 0 so line 1 is LRU *)
  ignore (acc c (line 0) : Cache.result);
  ignore (acc c (line 4) : Cache.result);
  Alcotest.(check bool) "line0 kept" true (Cache.contains c (line 0));
  Alcotest.(check bool) "line1 evicted" false (Cache.contains c (line 1));
  Alcotest.(check bool) "line4 present" true (Cache.contains c (line 4))

let test_writeback_on_dirty_eviction () =
  let c = Cache.create ~bytes:(2 * 32) ~ways:2 in
  (* one set, two ways *)
  ignore (acc ~write:true c 0x0 : Cache.result);
  ignore (acc ~write:false c 0x20 : Cache.result);
  Alcotest.(check int) "two dirty? only first" 1 (Cache.dirty_lines c);
  (* evict the dirty LRU line: must report a write-back *)
  (match acc c 0x40 with
  | Cache.Miss { dirty_writeback } ->
      Alcotest.(check bool) "dirty victim written back" true dirty_writeback
  | Cache.Hit | Cache.Bypass -> Alcotest.fail "expected miss");
  (* evict the clean line: no write-back *)
  match acc c 0x60 with
  | Cache.Miss { dirty_writeback } ->
      Alcotest.(check bool) "clean victim silent" false dirty_writeback
  | Cache.Hit | Cache.Bypass -> Alcotest.fail "expected miss"

let test_write_hit_dirties () =
  let c = mk () in
  ignore (acc c 0x1000 : Cache.result);
  Alcotest.(check int) "clean after read" 0 (Cache.dirty_lines c);
  ignore (acc ~write:true c 0x1004 : Cache.result);
  Alcotest.(check int) "dirty after write hit" 1 (Cache.dirty_lines c)

let test_allocate_zero () =
  let c = mk () in
  (match Cache.allocate_zero c ~source:Cache.Kernel 0x3000 with
  | Cache.Miss { dirty_writeback } ->
      Alcotest.(check bool) "no write-back on empty set" false dirty_writeback
  | Cache.Hit | Cache.Bypass -> Alcotest.fail "expected allocation");
  Alcotest.(check bool) "line resident" true (Cache.contains c 0x3000);
  Alcotest.(check int) "line is dirty" 1 (Cache.dirty_lines c);
  Alcotest.(check bool) "second dcbz hits" true
    (Cache.allocate_zero c ~source:Cache.Kernel 0x3000 = Cache.Hit)

let test_locking () =
  let c = mk () in
  ignore (acc c 0x1000 : Cache.result);
  Cache.set_locked c true;
  Alcotest.(check bool) "locked hit still hits" true
    (acc c 0x1000 = Cache.Hit);
  Alcotest.(check bool) "locked miss bypasses" true
    (acc c 0x5000 = Cache.Bypass);
  Alcotest.(check bool) "locked dcbz bypasses" true
    (Cache.allocate_zero c ~source:Cache.Kernel 0x5000 = Cache.Bypass);
  Alcotest.(check int) "nothing allocated while locked" 1 (Cache.occupancy c);
  Cache.set_locked c false;
  Alcotest.(check bool) "unlocked allocates again" true
    (is_miss (acc c 0x5000))

let test_attribution () =
  let c = mk () in
  ignore (acc ~source:Cache.Htab c 0x3000 : Cache.result);
  ignore (acc ~source:Cache.Htab c 0x3020 : Cache.result);
  ignore (acc ~source:Cache.User c 0x4000 : Cache.result);
  Alcotest.(check int) "htab allocations" 2
    (Cache.stats_allocations c Cache.Htab);
  Alcotest.(check int) "user allocations" 1
    (Cache.stats_allocations c Cache.User);
  Alcotest.(check int) "no evictions yet" 0
    (Cache.stats_evictions_caused_by c Cache.Htab)

let test_eviction_attribution () =
  let c = mk () in
  let line i = i * 128 * 32 in
  for i = 0 to 3 do
    ignore (acc ~source:Cache.User c (line i) : Cache.result)
  done;
  ignore (acc ~source:Cache.Idle_clear c (line 4) : Cache.result);
  Alcotest.(check int) "idle-clear evicted a live line" 1
    (Cache.stats_evictions_caused_by c Cache.Idle_clear)

let test_invalidate_all () =
  let c = mk () in
  ignore (acc ~write:true c 0x1000 : Cache.result);
  ignore (acc c 0x2000 : Cache.result);
  Cache.invalidate_all c;
  Alcotest.(check int) "empty" 0 (Cache.occupancy c);
  Alcotest.(check int) "no dirt" 0 (Cache.dirty_lines c);
  Alcotest.(check bool) "misses again" true (is_miss (acc c 0x1000))

let test_geometry_validation () =
  match Cache.create ~bytes:(3 * 1024) ~ways:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_occupancy_bounded =
  QCheck.Test.make ~name:"cache occupancy never exceeds capacity" ~count:50
    QCheck.(list_of_size (Gen.return 2000) (int_bound 0xFFFFF))
    (fun pas ->
      let c = Cache.create ~bytes:1024 ~ways:2 in
      List.iter (fun pa -> ignore (acc c pa : Cache.result)) pas;
      Cache.occupancy c <= Cache.capacity_lines c)

let prop_hit_after_access =
  QCheck.Test.make ~name:"an access leaves its line resident" ~count:500
    QCheck.(int_bound 0xFFFFFF)
    (fun pa ->
      let c = mk () in
      ignore (acc c pa : Cache.result);
      Cache.contains c pa)

let prop_dirty_bounded_by_occupancy =
  QCheck.Test.make ~name:"dirty lines <= valid lines" ~count:50
    QCheck.(list_of_size (Gen.return 500) (pair (int_bound 0xFFFF) bool))
    (fun ops ->
      let c = Cache.create ~bytes:1024 ~ways:2 in
      List.iter
        (fun (pa, write) -> ignore (acc ~write c pa : Cache.result))
        ops;
      Cache.dirty_lines c <= Cache.occupancy c)

let suite =
  [ Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "cache-inhibited bypass" `Quick test_bypass;
    Alcotest.test_case "LRU within a set" `Quick test_lru_within_set;
    Alcotest.test_case "write-back on dirty eviction" `Quick
      test_writeback_on_dirty_eviction;
    Alcotest.test_case "write hit dirties" `Quick test_write_hit_dirties;
    Alcotest.test_case "allocate_zero (dcbz)" `Quick test_allocate_zero;
    Alcotest.test_case "locking (§10.1)" `Quick test_locking;
    Alcotest.test_case "allocation attribution" `Quick test_attribution;
    Alcotest.test_case "eviction attribution" `Quick
      test_eviction_attribution;
    Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
    Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
    QCheck_alcotest.to_alcotest prop_occupancy_bounded;
    QCheck_alcotest.to_alcotest prop_hit_after_access;
    QCheck_alcotest.to_alcotest prop_dirty_bounded_by_occupancy ]
