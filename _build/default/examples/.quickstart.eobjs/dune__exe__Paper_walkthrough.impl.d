examples/paper_walkthrough.ml: Addr Kernel_sim Machine Mmu Mmu_tricks Perf Ppc Printf String Workloads
