(* Edge cases and stress across the substrate. *)
open Ppc
module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Pipe = Kernel_sim.Pipe
module Physmem = Kernel_sim.Physmem

let test_addr_extremes () =
  Alcotest.(check int) "top of memory sr" 0xF (Addr.sr_index 0xFFFFFFFF);
  Alcotest.(check int) "top page index" 0xFFFF (Addr.page_index 0xFFFFFFFF);
  Alcotest.(check int) "top offset" 0xFFF (Addr.page_offset 0xFFFFFFFF);
  Alcotest.(check int) "zero splits to zero" 0 (Addr.sr_index 0);
  Alcotest.(check int) "page base of top" 0xFFFFF000
    (Addr.page_base 0xFFFFFFFF)

let test_bat_largest_block () =
  let b = Bat.create () in
  Bat.set b ~index:0 ~base_ea:0 ~length:Bat.max_block ~phys_base:0;
  Alcotest.(check (option int)) "256MB block end"
    (Some (Bat.max_block - 1))
    (Bat.translate b (Bat.max_block - 1));
  Alcotest.(check (option int)) "just past" None
    (Bat.translate b Bat.max_block)

let test_direct_mapped_cache () =
  let c = Cache.create ~bytes:1024 ~ways:1 in
  Alcotest.(check int) "32 lines" 32 (Cache.capacity_lines c);
  (* two addresses one cache-size apart conflict in a direct map *)
  ignore (Cache.access c ~source:Cache.User ~inhibited:false ~write:false 0
           : Cache.result);
  ignore (Cache.access c ~source:Cache.User ~inhibited:false ~write:false 1024
           : Cache.result);
  Alcotest.(check bool) "first evicted" false (Cache.contains c 0);
  Alcotest.(check bool) "second resident" true (Cache.contains c 1024)

let test_single_way_tlb () =
  let t = Tlb.create ~sets:1 ~ways:1 () in
  Tlb.insert t { Tlb.vpn = 1; rpn = 1; inhibited = false; writable = true };
  Tlb.insert t { Tlb.vpn = 2; rpn = 2; inhibited = false; writable = true };
  Alcotest.(check int) "only one entry" 1 (Tlb.occupancy t);
  Alcotest.(check bool) "latest wins" true (Tlb.lookup t 2 <> None)

let test_minimal_htab () =
  (* 16 PTEs = 2 PTEGs: primary and secondary are each other's overflow *)
  let h = Htab.create ~n_ptes:16 () in
  Alcotest.(check int) "two PTEGs" 2 (Htab.n_ptegs h);
  let rng = Rng.create ~seed:1 in
  for i = 0 to 31 do
    ignore
      (Htab.insert h ~rng ~vsid:i ~page_index:0 ~rpn:i
         ~wimg:Pte.wimg_default ~protection:Pte.Read_write
         ~on_ref:(fun _ -> ())
        : Htab.insert_outcome)
  done;
  Alcotest.(check int) "full but never over" 16 (Htab.occupancy h)

let test_pipe_index_wraps () =
  (* kernel pipe buffers wrap at 64: two pipes 64 apart share a buffer
     address, which is a modeling choice, not a crash *)
  let k =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:1 ()
  in
  let pipes = List.init 70 (fun _ -> Kernel.new_pipe k) in
  Alcotest.(check int) "seventy pipes created" 70 (List.length pipes);
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  let buf = Kernel_sim.Mm.user_text_base + (16 * Addr.page_size) in
  List.iteri
    (fun i p ->
      if i mod 7 = 0 then begin
        ignore (Kernel.sys_pipe_write k p ~buf ~bytes:32 : int);
        ignore (Kernel.sys_pipe_read k p ~buf ~bytes:32 : int)
      end)
    pipes

let test_zero_byte_pipe_ops () =
  let p = Pipe.create ~index:0 in
  Alcotest.(check int) "zero write" 0 (Pipe.write p ~bytes:0);
  Alcotest.(check int) "zero read" 0 (Pipe.read p ~bytes:0)

let test_repeated_benchmarks_conserve_frames () =
  (* run the pipe benchmark three times on one kernel: no frame leak *)
  let k =
    Kernel.boot ~machine:Machine.ppc604_133 ~policy:Policy.optimized ~seed:2 ()
  in
  let free0 = Physmem.free_frames (Kernel.physmem k) in
  for _ = 1 to 3 do
    ignore (Workloads.Lmbench.pipe_latency_us k : float)
  done;
  Alcotest.(check int) "frames conserved across reruns" free0
    (Physmem.free_frames (Kernel.physmem k))

let test_many_process_generations () =
  (* churn 60 process generations: VSIDs retire, frames recycle *)
  let k =
    Kernel.boot ~machine:Machine.ppc604_185 ~policy:Policy.optimized ~seed:3 ()
  in
  let free0 = Physmem.free_frames (Kernel.physmem k) in
  let data = Kernel_sim.Mm.user_text_base + (16 * Addr.page_size) in
  for _ = 1 to 60 do
    let t = Kernel.spawn k () in
    Kernel.switch_to k t;
    Kernel.user_run k ~instrs:500;
    Kernel.touch k Mmu.Store data;
    Kernel.sys_exit k
  done;
  Alcotest.(check int) "frames conserved over generations" free0
    (Physmem.free_frames (Kernel.physmem k));
  Alcotest.(check int) "no live contexts" 0
    (Kernel_sim.Vsid_alloc.live_contexts (Kernel.vsid_alloc k))

let test_tiny_ram_machine () =
  (* a machine with 8 MB still boots and runs (the reserved 4 MB image
     leaves ~1000 frames) *)
  let machine =
    { Machine.ppc604_185 with
      Machine.name = "tiny";
      ram_bytes = 8 * 1024 * 1024 }
  in
  let k = Kernel.boot ~machine ~policy:Policy.optimized ~seed:4 () in
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  Kernel.user_run k ~instrs:1000;
  Kernel.touch k Mmu.Store (Kernel_sim.Mm.user_text_base + (16 * Addr.page_size));
  Kernel.sys_exit k

(* --- failure injection: OOM in the middle of compound operations --- *)

let tiny_machine =
  { Machine.ppc604_185 with
    Machine.name = "tiny";
    ram_bytes = 5 * 1024 * 1024 (* ~256 usable frames after the image *) }

let test_oom_during_fork () =
  let k = Kernel.boot ~machine:tiny_machine ~policy:Policy.optimized ~seed:5 () in
  let parent = Kernel.spawn k ~data_pages:64 () in
  Kernel.switch_to k parent;
  let data = Kernel_sim.Mm.user_text_base + (16 * Addr.page_size) in
  for i = 0 to 63 do
    Kernel.touch k Mmu.Store (data + (i * Addr.page_size))
  done;
  (* eat almost all remaining frames so the fork's page-table pages (or a
     later COW break) cannot be satisfied *)
  let hog = Kernel.sys_mmap k ~pages:300 ~writable:true in
  (try
     for i = 0 to 299 do
       Kernel.touch k Mmu.Store (hog + (i * Addr.page_size))
     done
   with Kernel_sim.Pagetable.Out_of_frames -> ());
  (* fork itself is cheap under COW; a child write must either succeed or
     fail cleanly with Out_of_frames *)
  (match Kernel.sys_fork k with
  | child -> begin
      Kernel.switch_to k child;
      (match Kernel.touch k Mmu.Store data with
      | () -> ()
      | exception Kernel_sim.Pagetable.Out_of_frames -> ());
      Kernel.sys_exit k;
      Kernel.switch_to k parent
    end
  | exception Kernel_sim.Pagetable.Out_of_frames -> ());
  (* the parent's world is still consistent: it can read its data and
     exit; every non-hog frame comes back *)
  Kernel.touch k Mmu.Load data;
  Kernel.sys_exit k;
  Alcotest.(check bool) "system survives mid-operation OOM" true
    (Physmem.free_frames (Kernel.physmem k) > 0)

let test_oom_during_cow_break_is_clean () =
  let k = Kernel.boot ~machine:tiny_machine ~policy:Policy.optimized ~seed:6 () in
  let parent = Kernel.spawn k ~data_pages:32 () in
  Kernel.switch_to k parent;
  let data = Kernel_sim.Mm.user_text_base + (16 * Addr.page_size) in
  for i = 0 to 31 do
    Kernel.touch k Mmu.Store (data + (i * Addr.page_size))
  done;
  let child = Kernel.sys_fork k in
  (* exhaust memory *)
  let hog = Kernel.sys_mmap k ~pages:400 ~writable:true in
  (try
     for i = 0 to 399 do
       Kernel.touch k Mmu.Store (hog + (i * Addr.page_size))
     done
   with Kernel_sim.Pagetable.Out_of_frames -> ());
  (* now a COW break in the child cannot allocate its private copy *)
  Kernel.switch_to k child;
  (match Kernel.touch k Mmu.Store data with
  | () -> ()  (* a frame happened to be free: fine *)
  | exception Kernel_sim.Pagetable.Out_of_frames ->
      (* reads must still work: the shared frame is intact *)
      Kernel.touch k Mmu.Load data);
  Kernel.sys_exit k;
  Kernel.switch_to k parent;
  (* parent's data is untouched and readable *)
  Kernel.touch k Mmu.Load data;
  Kernel.sys_exit k

(* --- translation edges, through every reload backend --------------- *)

let translation_backends =
  [ ("604 hw-search", Machine.ppc604_185, Mmu.default_knobs);
    ("603 sw-htab", Machine.ppc603_133, Mmu.default_knobs);
    ( "603 sw-direct",
      Machine.ppc603_133,
      { Mmu.default_knobs with Mmu.use_htab = false } ) ]

let check_ok name expected = function
  | Mmu.Ok pa -> Alcotest.(check int) name expected pa
  | Mmu.Fault -> Alcotest.fail (name ^ ": unexpected fault")

let check_fault name = function
  | Mmu.Fault -> ()
  | Mmu.Ok _ -> Alcotest.fail (name ^ ": expected fault")

let test_segment_boundary_translation () =
  (* the 0xB/0xC seam: the last user page and the first kernel page are
     one byte apart but live in different segments with different VSIDs;
     access and probe must agree on both sides, on every backend *)
  List.iter
    (fun (name, machine, knobs) ->
      let mmu, mappings, _, sh = Test_shadow.make_shadowed ~machine ~knobs () in
      let last_user = 0xBFFFF000 and first_kernel = 0xC0000000 in
      Test_mmu.map mappings ~ea:last_user ~rpn:0x111;
      Test_mmu.map mappings ~ea:first_kernel ~rpn:0x222;
      check_ok (name ^ ": last user byte")
        (Addr.pa_of ~rpn:0x111 ~ea:0xBFFFFFFF)
        (Mmu.access mmu Mmu.Load 0xBFFFFFFF);
      check_ok (name ^ ": first kernel byte")
        (Addr.pa_of ~rpn:0x222 ~ea:first_kernel)
        (Mmu.access mmu Mmu.Load first_kernel);
      Alcotest.(check (option int)) (name ^ ": probe last user")
        (Some (Addr.pa_of ~rpn:0x111 ~ea:0xBFFFFFFF))
        (Mmu.probe mmu Mmu.Load 0xBFFFFFFF);
      Alcotest.(check (option int)) (name ^ ": probe first kernel")
        (Some (Addr.pa_of ~rpn:0x222 ~ea:first_kernel))
        (Mmu.probe mmu Mmu.Load first_kernel);
      (* distinct VSIDs: the two sides of the seam must not alias *)
      let seg = Mmu.segments mmu in
      Alcotest.(check bool) (name ^ ": VSIDs differ across the seam") true
        (Segment.vsid_for seg 0xBFFFFFFF <> Segment.vsid_for seg first_kernel);
      Alcotest.(check int) (name ^ ": shadow agrees throughout") 0
        (Shadow.total_divergences sh))
    translation_backends

let test_bat_edge_translation () =
  (* the last byte inside a BAT block translates via the BAT; the first
     byte past it falls through to the page machinery *)
  List.iter
    (fun (name, machine, knobs) ->
      let mmu, mappings, perf, sh = Test_shadow.make_shadowed ~machine ~knobs () in
      let block = 8 * 1024 * 1024 in
      Bat.set (Mmu.dbat mmu) ~index:0 ~base_ea:0xC0000000 ~length:block
        ~phys_base:0x01000000;
      let last = 0xC0000000 + block - 1 in
      check_ok (name ^ ": last BAT byte")
        (0x01000000 + block - 1)
        (Mmu.access mmu Mmu.Load last);
      Alcotest.(check (option int)) (name ^ ": probe last BAT byte")
        (Some (0x01000000 + block - 1))
        (Mmu.probe mmu Mmu.Load last);
      Alcotest.(check int) (name ^ ": BAT bypasses the TLB") 0
        (Perf.tlb_lookups perf);
      (* one page past the block: page-translated, not BAT *)
      let past = 0xC0000000 + block in
      Test_mmu.map mappings ~ea:past ~rpn:0x333;
      check_ok (name ^ ": first byte past the block")
        (Addr.pa_of ~rpn:0x333 ~ea:past)
        (Mmu.access mmu Mmu.Load past);
      Alcotest.(check bool) (name ^ ": past-the-end used the TLB path") true
        (Perf.tlb_lookups perf > 0);
      Alcotest.(check int) (name ^ ": shadow agrees throughout") 0
        (Shadow.total_divergences sh))
    translation_backends

let test_store_to_readonly_per_backend () =
  (* both fault paths — at TLB reload and at a warm TLB hit — and the
     probe oracle, per backend *)
  List.iter
    (fun (name, machine, knobs) ->
      let mmu, mappings, _, sh = Test_shadow.make_shadowed ~machine ~knobs () in
      let ea = 0x01800000 in
      Test_mmu.map_ro mappings ~ea ~rpn:0x9;
      check_fault (name ^ ": store on the reload path")
        (Mmu.access mmu Mmu.Store ea);
      check_ok (name ^ ": load still fine")
        (Addr.pa_of ~rpn:0x9 ~ea)
        (Mmu.access mmu Mmu.Load ea);
      (* TLB is now warm: the protection fault comes from the TLB entry *)
      check_fault (name ^ ": store on the warm-hit path")
        (Mmu.access mmu Mmu.Store ea);
      Alcotest.(check (option int)) (name ^ ": probe predicts the fault")
        None
        (Mmu.probe mmu Mmu.Store ea);
      Alcotest.(check (option int)) (name ^ ": probe allows the load")
        (Some (Addr.pa_of ~rpn:0x9 ~ea))
        (Mmu.probe mmu Mmu.Load ea);
      Alcotest.(check int) (name ^ ": shadow agrees throughout") 0
        (Shadow.total_divergences sh))
    translation_backends

let suite =
  [ Alcotest.test_case "address extremes" `Quick test_addr_extremes;
    Alcotest.test_case "largest BAT block" `Quick test_bat_largest_block;
    Alcotest.test_case "direct-mapped cache" `Quick test_direct_mapped_cache;
    Alcotest.test_case "single-way TLB" `Quick test_single_way_tlb;
    Alcotest.test_case "minimal htab" `Quick test_minimal_htab;
    Alcotest.test_case "pipe index wraps" `Quick test_pipe_index_wraps;
    Alcotest.test_case "zero-byte pipe ops" `Quick test_zero_byte_pipe_ops;
    Alcotest.test_case "reruns conserve frames" `Quick
      test_repeated_benchmarks_conserve_frames;
    Alcotest.test_case "sixty process generations" `Quick
      test_many_process_generations;
    Alcotest.test_case "tiny-RAM machine boots" `Quick test_tiny_ram_machine;
    Alcotest.test_case "OOM during fork" `Quick test_oom_during_fork;
    Alcotest.test_case "OOM during COW break" `Quick
      test_oom_during_cow_break_is_clean;
    Alcotest.test_case "segment boundary (0xB/0xC)" `Quick
      test_segment_boundary_translation;
    Alcotest.test_case "BAT edge translation" `Quick
      test_bat_edge_translation;
    Alcotest.test_case "store-to-readonly per backend" `Quick
      test_store_to_readonly_per_backend ]
