lib/kernel_sim/task.ml: Addr Kparams Mm Ppc
