type entry = {
  mutable valid : bool;
  mutable base_ea : int;
  mutable length : int;
  mutable phys_base : int;
}

type t = entry array

let n_registers = 4
let min_block = 128 * 1024
let max_block = 256 * 1024 * 1024

let create () =
  Array.init n_registers (fun _ ->
      { valid = false; base_ea = 0; length = 0; phys_base = 0 })

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let set t ~index ~base_ea ~length ~phys_base =
  if index < 0 || index >= n_registers then
    invalid_arg "Bat.set: index out of range";
  if not (is_power_of_two length) || length < min_block || length > max_block
  then invalid_arg "Bat.set: length must be a power of two in [128K, 256M]";
  if base_ea land (length - 1) <> 0 || phys_base land (length - 1) <> 0 then
    invalid_arg "Bat.set: bases must be aligned to the block length";
  let e = t.(index) in
  e.valid <- true;
  e.base_ea <- base_ea;
  e.length <- length;
  e.phys_base <- phys_base

let clear t ~index = t.(index).valid <- false

let clear_all t = Array.iter (fun e -> e.valid <- false) t

(* Four entries: a linear scan models the parallel compare.  Returns
   the physical address or -1 — the MMU's hit path uses this form so a
   BAT hit builds no option.  Top-level recursion: an inner loop would
   heap-allocate its closure on every translation without flambda. *)
let[@inline always] entry_match e ea =
  e.valid && ea land lnot (e.length - 1) land Addr.ea_mask = e.base_ea

let[@inline always] entry_pa e ea = e.phys_base lor (ea land (e.length - 1))

let rec scan (t : t) ea i =
  if i >= n_registers then -1
  else
    let e = t.(i) in
    if entry_match e ea then entry_pa e ea else scan t ea (i + 1)

(* [t] always has exactly [n_registers] entries ([create] is the only
   constructor), so the four probes are unrolled with [unsafe_get]; the
   common case on a user access is four [valid = false] loads. *)
let translate_pa (t : t) ea =
  if Array.length t <> n_registers then scan t ea 0
  else
    let e = Array.unsafe_get t 0 in
    if entry_match e ea then entry_pa e ea
    else
      let e = Array.unsafe_get t 1 in
      if entry_match e ea then entry_pa e ea
      else
        let e = Array.unsafe_get t 2 in
        if entry_match e ea then entry_pa e ea
        else
          let e = Array.unsafe_get t 3 in
          if entry_match e ea then entry_pa e ea else -1

let translate t ea =
  let pa = translate_pa t ea in
  if pa < 0 then None else Some pa

let covers t ea = translate_pa t ea >= 0

let valid_count t =
  Array.fold_left (fun acc e -> if e.valid then acc + 1 else acc) 0 t
