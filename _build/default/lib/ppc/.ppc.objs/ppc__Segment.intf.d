lib/ppc/segment.mli: Addr
