(* Attribution profiling: who owns every miss, where the htab clusters.

   Where Trace records a stream of events, this layer maintains running
   *attributions*: per-(PID, segment, kind) miss and reload-cost
   accounts, per-kind hot-page tables, a kernel-vs-user TLB slot census
   with high-water marks, and periodic htab bucket-occupancy samples.

   Everything here is observation only: charging never costs cycles,
   touches the caches, or draws from an RNG, so a profiled run and an
   unprofiled run of the same seed produce byte-identical Perf counts.
   The disabled path is one flag check per instrumented site (plus one
   integer compare on the charge path for the occupancy sampler) and
   allocates nothing. *)

type miss_kind =
  | Itlb
  | Dtlb
  | Htab_miss

let all_kinds = [ Itlb; Dtlb; Htab_miss ]
let n_kinds = List.length all_kinds

let kind_index = function Itlb -> 0 | Dtlb -> 1 | Htab_miss -> 2
let kind_of_index = function 0 -> Itlb | 1 -> Dtlb | _ -> Htab_miss

let kind_name = function
  | Itlb -> "itlb"
  | Dtlb -> "dtlb"
  | Htab_miss -> "htab"

(* One account: misses charged and reload cycles attributed to them. *)
type cell = {
  mutable a_count : int;
  mutable a_cost : int;
}

(* Attribution keys pack (pid, segment, kind) into one int so the table
   is a flat int-keyed hashtable: pid in the high bits, the 4-bit
   segment-register index, then the 2-bit kind. *)
let key ~pid ~seg ~kind = (pid lsl 6) lor (seg lsl 2) lor kind_index kind
let key_pid k = k lsr 6
let key_seg k = (k lsr 2) land 0xF
let key_kind k = kind_of_index (k land 3)

type htab_sample = {
  h_cycle : int;
  h_valid : int;     (* valid PTEs *)
  h_capacity : int;  (* total PTE slots *)
  h_zombie : int;    (* valid PTEs whose VSID is no longer live *)
  h_chains : int array;
      (* h_chains.(i) = PTEGs holding exactly [i] valid PTEs — the
         collision-chain length histogram of §5.2 *)
}

type census = {
  n_samples : int;          (* censuses taken (one per profiled reload) *)
  avg_share_pct : float;    (* mean kernel share of occupied slots, % *)
  kernel_high_water : int;  (* most kernel-owned slots ever held *)
  kernel_now : int;         (* kernel-owned slots at the last census *)
  occupied_now : int;       (* occupied slots at the last census *)
  slot_capacity : int;      (* total TLB slots (I + D) *)
}

type t = {
  perf : Perf.t;  (* cycle source for sample stamps; never written *)
  mutable enabled : bool;
  attribution : (int, cell) Hashtbl.t;
  hot_pages : (int, cell) Hashtbl.t array;  (* per kind: page EA -> cell *)
  (* kernel-vs-user TLB slot census *)
  mutable census_samples : int;
  mutable census_share_sum : float;
  mutable census_kernel_hw : int;
  mutable census_kernel_now : int;
  mutable census_occupied_now : int;
  mutable tlb_capacity : int;
  (* htab bucket-occupancy sampler (Perf timeline cadence) *)
  mutable sample_every : int;
  mutable next_sample : int;  (* max_int while sampling is off *)
  mutable samples_rev : htab_sample list;
  mutable htab_source : (unit -> htab_sample) option;
}

(* --- lifecycle -------------------------------------------------------- *)

let create_plain ~perf =
  { perf;
    enabled = false;
    attribution = Hashtbl.create 64;
    hot_pages = Array.init n_kinds (fun _ -> Hashtbl.create 64);
    census_samples = 0;
    census_share_sum = 0.0;
    census_kernel_hw = 0;
    census_kernel_now = 0;
    census_occupied_now = 0;
    tlb_capacity = 0;
    sample_every = 0;
    next_sample = max_int;
    samples_rev = [];
    htab_source = None }

let set_sampling t ~every =
  if every > 0 then begin
    t.sample_every <- every;
    t.next_sample <- t.perf.Perf.cycles + every
  end
  else begin
    t.sample_every <- 0;
    t.next_sample <- max_int
  end

let enable ?(sample_every = 0) t =
  t.enabled <- true;
  if sample_every > 0 then set_sampling t ~every:sample_every

let disable t =
  t.enabled <- false;
  set_sampling t ~every:0

let enabled t = t.enabled

(* --- process-wide boot defaults -------------------------------------- *)

(* Drivers that cannot reach the kernels being booted (the experiment
   registry boots its own) arm these; every profiler created afterwards
   starts enabled and registers itself for later collection — the same
   discipline as Trace and Shadow. *)
let boot_defaults : int option ref = ref None
let registered_rev : t list ref = ref []

let set_boot_defaults ?(sample_every = 0) ~enabled () =
  boot_defaults := (if enabled then Some sample_every else None)

let drain_registered () =
  let l = List.rev !registered_rev in
  registered_rev := [];
  l

let create ~perf =
  let t = create_plain ~perf in
  (match !boot_defaults with
  | None -> ()
  | Some sample_every ->
      enable ~sample_every t;
      registered_rev := t :: !registered_rev);
  t

(* --- hooks wired by the MMU ------------------------------------------- *)

let set_htab_source t f = t.htab_source <- Some f
let set_tlb_capacity t n = t.tlb_capacity <- n

(* --- charging (call sites guard on [enabled]) ------------------------- *)

let account tbl k ~cost =
  match Hashtbl.find_opt tbl k with
  | Some c ->
      c.a_count <- c.a_count + 1;
      c.a_cost <- c.a_cost + cost
  | None -> Hashtbl.add tbl k { a_count = 1; a_cost = cost }

let charge_miss t ~pid ~seg ~page ~kind ~cost =
  if t.enabled then begin
    account t.attribution (key ~pid ~seg ~kind) ~cost;
    account t.hot_pages.(kind_index kind) page ~cost
  end

let note_tlb_census t ~kernel ~occupied =
  if t.enabled then begin
    t.census_samples <- t.census_samples + 1;
    if occupied > 0 then
      t.census_share_sum <-
        t.census_share_sum
        +. (100.0 *. float_of_int kernel /. float_of_int occupied);
    if kernel > t.census_kernel_hw then t.census_kernel_hw <- kernel;
    t.census_kernel_now <- kernel;
    t.census_occupied_now <- occupied
  end

(* --- htab occupancy sampler ------------------------------------------- *)

let take_sample t =
  (match t.htab_source with
  | None -> ()
  | Some f -> t.samples_rev <- f () :: t.samples_rev);
  t.next_sample <- t.perf.Perf.cycles + t.sample_every

(* --- inspection ------------------------------------------------------- *)

type attribution_row = {
  r_pid : int;
  r_seg : int;
  r_kind : miss_kind;
  r_count : int;
  r_cost : int;
}

let attribution t =
  let rows =
    Hashtbl.fold
      (fun k c acc ->
        { r_pid = key_pid k;
          r_seg = key_seg k;
          r_kind = key_kind k;
          r_count = c.a_count;
          r_cost = c.a_cost }
        :: acc)
      t.attribution []
  in
  (* deterministic order: by pid, then segment, then kind *)
  List.sort
    (fun a b ->
      match compare a.r_pid b.r_pid with
      | 0 -> (
          match compare a.r_seg b.r_seg with
          | 0 -> compare (kind_index a.r_kind) (kind_index b.r_kind)
          | c -> c)
      | c -> c)
    rows

let hot_pages t kind ~top =
  let rows =
    Hashtbl.fold
      (fun page c acc -> (page, c.a_count, c.a_cost) :: acc)
      t.hot_pages.(kind_index kind) []
  in
  let sorted =
    (* hottest (by attributed cost) first; page address breaks ties *)
    List.sort
      (fun (pa, _, ca) (pb, _, cb) ->
        match compare cb ca with 0 -> compare pa pb | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < top) sorted

let census t =
  { n_samples = t.census_samples;
    avg_share_pct =
      (if t.census_samples = 0 then 0.0
       else t.census_share_sum /. float_of_int t.census_samples);
    kernel_high_water = t.census_kernel_hw;
    kernel_now = t.census_kernel_now;
    occupied_now = t.census_occupied_now;
    slot_capacity = t.tlb_capacity }

let samples t = List.rev t.samples_rev

(* A pure read of the current htab state (no sample recorded): exporters
   use this for the end-of-run snapshot even when periodic sampling was
   never armed. *)
let snapshot_htab t = Option.map (fun f -> f ()) t.htab_source

let total_misses t =
  Hashtbl.fold (fun _ c acc -> acc + c.a_count) t.attribution 0

let total_cost t =
  Hashtbl.fold (fun _ c acc -> acc + c.a_cost) t.attribution 0
