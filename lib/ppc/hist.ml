(* Log-bucketed histograms for latency-style quantities. *)

let n_buckets = 63

type t = {
  mutable count : int;
  mutable sum : int;
  mutable max_value : int;
  counts : int array;  (* counts.(i) = observations in bucket i *)
}

let create () =
  { count = 0; sum = 0; max_value = 0; counts = Array.make n_buckets 0 }

(* Bucket 0 holds v <= 0; bucket i >= 1 holds 2^(i-1) <= v < 2^i. *)
let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (bits v 0)
  end

let bucket_bounds i =
  if i <= 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v > t.max_value then t.max_value <- v;
  let i = bucket_index v in
  t.counts.(i) <- t.counts.(i) + 1

let count t = t.count
let sum t = t.sum
let max_value t = t.max_value
let is_empty t = t.count = 0
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      out := (lo, hi, t.counts.(i)) :: !out
    end
  done;
  !out

let percentile t p =
  if t.count = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 1. then 1. else p in
    let target = int_of_float (ceil (p *. float_of_int t.count)) in
    let target = max 1 target in
    let rec walk i seen =
      if i >= n_buckets then t.max_value
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= target then
          (* the top occupied bucket's bound can be tightened to the true
             maximum, which it must contain *)
          if i = bucket_index t.max_value then t.max_value
          else snd (bucket_bounds i)
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

(* [percentile] reports the winning bucket's upper bound, which
   overstates p50/p90 for skewed distributions (a bucket spans a full
   power of two).  This variant interpolates linearly within the bucket:
   the rank's fractional position among the bucket's observations picks
   a proportional point between the bucket bounds (tightened to the true
   maximum in the top occupied bucket). *)
let percentile_interpolated t p =
  if t.count = 0 then 0.0
  else begin
    let p = if p < 0. then 0. else if p > 1. then 1. else p in
    let target = Float.max 1.0 (p *. float_of_int t.count) in
    let rec walk i seen =
      if i >= n_buckets then float_of_int t.max_value
      else begin
        let n = t.counts.(i) in
        if n > 0 && float_of_int (seen + n) >= target then begin
          let lo, hi = bucket_bounds i in
          let hi = if i = bucket_index t.max_value then t.max_value else hi in
          let frac = (target -. float_of_int seen) /. float_of_int n in
          let frac = Float.min 1.0 (Float.max 0.0 frac) in
          float_of_int lo +. (frac *. float_of_int (hi - lo))
        end
        else walk (i + 1) (seen + n)
      end
    in
    walk 0 0
  end

let merge_into ~into t =
  if Array.length into.counts <> Array.length t.counts then
    invalid_arg "Hist.merge_into: bucket geometry mismatch";
  into.count <- into.count + t.count;
  into.sum <- into.sum + t.sum;
  if t.max_value > into.max_value then into.max_value <- t.max_value;
  Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) t.counts

(* Functional bucket-wise sum: the combination step for histograms that
   crossed a process boundary (span/trace payloads from forked Runner
   workers).  Requires identical bucket geometry — all histograms this
   module creates share it, but documents parsed from elsewhere might
   not. *)
let merge a b =
  if Array.length a.counts <> Array.length b.counts then
    invalid_arg "Hist.merge: bucket geometry mismatch";
  let t =
    { count = a.count + b.count;
      sum = a.sum + b.sum;
      max_value = max a.max_value b.max_value;
      counts = Array.make (Array.length a.counts) 0 }
  in
  Array.iteri (fun i n -> t.counts.(i) <- n + b.counts.(i)) a.counts;
  t

let reset t =
  t.count <- 0;
  t.sum <- 0;
  t.max_value <- 0;
  Array.fill t.counts 0 n_buckets 0
