lib/workloads/multiuser.mli: Kernel_sim Ppc
