(** The sixteen segment registers.

    The four high-order bits of every effective address select one of 16
    segment registers, each holding a 24-bit VSID.  A context switch loads
    the user segments (0x0–0xB under the Linux/PPC split) with the new
    task's VSIDs; the kernel segments (0xC–0xF) hold fixed VSIDs for the
    dynamically mapped parts of the kernel. *)

type t

val n_registers : int
(** 16. *)

val kernel_first : int
(** 0xC: first segment of the kernel half of the address space
    (the kernel lives at [0xC0000000]). *)

val create : unit -> t
(** All registers zero. *)

val get : t -> int -> int
(** [get t i] is the VSID in register [i] (0–15). *)

val set : t -> int -> int -> unit
(** [set t i vsid] loads register [i]. *)

val vsid_for : t -> Addr.ea -> int
(** [vsid_for t ea] is the VSID the hardware would use for [ea]. *)

val load_user : t -> (int -> int) -> unit
(** [load_user t f] loads registers 0–11 with [f i] — the per-task segment
    load performed on a context switch. *)

val load_kernel : t -> (int -> int) -> unit
(** [load_kernel t f] loads registers 12–15 with [f i]; done once at
    boot since kernel VSIDs never change. *)

val is_kernel_segment : int -> bool
(** [is_kernel_segment i] holds for registers 12–15. *)

val is_kernel_ea : Addr.ea -> bool
(** [is_kernel_ea ea] holds when [ea >= 0xC0000000]. *)
