(* Block address translation registers. *)
open Ppc

let test_empty () =
  let b = Bat.create () in
  Alcotest.(check (option int)) "no match" None (Bat.translate b 0xC0000000);
  Alcotest.(check int) "no valid entries" 0 (Bat.valid_count b)

let test_basic_translate () =
  let b = Bat.create () in
  Bat.set b ~index:0 ~base_ea:0xC0000000 ~length:(4 * 1024 * 1024)
    ~phys_base:0;
  Alcotest.(check (option int)) "base" (Some 0) (Bat.translate b 0xC0000000);
  Alcotest.(check (option int)) "interior" (Some 0x123456)
    (Bat.translate b 0xC0123456);
  Alcotest.(check (option int)) "last byte"
    (Some 0x3FFFFF)
    (Bat.translate b 0xC03FFFFF);
  Alcotest.(check (option int)) "past end" None (Bat.translate b 0xC0400000);
  Alcotest.(check (option int)) "below" None (Bat.translate b 0xBFFFFFFF)

let test_nonzero_phys () =
  let b = Bat.create () in
  Bat.set b ~index:1 ~base_ea:0xF0000000 ~length:(128 * 1024)
    ~phys_base:0x10000000;
  Alcotest.(check (option int)) "offset preserved" (Some 0x10000ABC)
    (Bat.translate b 0xF0000ABC)

let test_validation () =
  let b = Bat.create () in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "too small" true
    (raises (fun () ->
         Bat.set b ~index:0 ~base_ea:0 ~length:(64 * 1024) ~phys_base:0));
  Alcotest.(check bool) "not power of two" true
    (raises (fun () ->
         Bat.set b ~index:0 ~base_ea:0 ~length:(3 * 128 * 1024) ~phys_base:0));
  Alcotest.(check bool) "misaligned base" true
    (raises (fun () ->
         Bat.set b ~index:0 ~base_ea:0x10000 ~length:(128 * 1024)
           ~phys_base:0));
  Alcotest.(check bool) "bad index" true
    (raises (fun () ->
         Bat.set b ~index:4 ~base_ea:0 ~length:(128 * 1024) ~phys_base:0))

let test_clear () =
  let b = Bat.create () in
  Bat.set b ~index:0 ~base_ea:0 ~length:(128 * 1024) ~phys_base:0;
  Alcotest.(check int) "one valid" 1 (Bat.valid_count b);
  Bat.clear b ~index:0;
  Alcotest.(check (option int)) "cleared" None (Bat.translate b 0);
  Bat.set b ~index:0 ~base_ea:0 ~length:(128 * 1024) ~phys_base:0;
  Bat.set b ~index:3 ~base_ea:0x80000000 ~length:(128 * 1024) ~phys_base:0;
  Bat.clear_all b;
  Alcotest.(check int) "all cleared" 0 (Bat.valid_count b)

let test_covers () =
  let b = Bat.create () in
  Bat.set b ~index:2 ~base_ea:0xC0000000 ~length:(32 * 1024 * 1024)
    ~phys_base:0;
  Alcotest.(check bool) "covers kernel" true (Bat.covers b 0xC1FFFFFF);
  Alcotest.(check bool) "not user" false (Bat.covers b 0x01800000)

let prop_offset_preserved =
  QCheck.Test.make ~name:"bat preserves offset within block" ~count:500
    QCheck.(int_bound (128 * 1024 - 1))
    (fun off ->
      let b = Bat.create () in
      Bat.set b ~index:0 ~base_ea:0xC0000000 ~length:(128 * 1024)
        ~phys_base:0x01000000;
      Bat.translate b (0xC0000000 + off) = Some (0x01000000 + off))

let suite =
  [ Alcotest.test_case "empty bank" `Quick test_empty;
    Alcotest.test_case "basic translate" `Quick test_basic_translate;
    Alcotest.test_case "nonzero phys base" `Quick test_nonzero_phys;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "covers" `Quick test_covers;
    QCheck_alcotest.to_alcotest prop_offset_preserved ]
