lib/ppc/pte.ml: Addr Format
