open Ppc
module Kernel = Kernel_sim.Kernel
module Sched = Kernel_sim.Sched
module Mm = Kernel_sim.Mm

type params = {
  keystrokes : int;
  think_cycles : int;
  editor_pages : int;
  compile_pages : int;
}

let default_params =
  { keystrokes = 30;
    think_cycles = 40_000;
    editor_pages = 64;
    compile_pages = 280 }

type result = {
  perf : Perf.t;
  mean_response_us : float;
  worst_response_us : float;
  wall_us : float;
}

let measure ~machine ~policy ?(params = default_params) ?(seed = 42) () =
  let p = params in
  let k = Kernel.boot ~machine ~policy ~seed () in
  let before = Perf.snapshot (Kernel.perf k) in
  let sched = Sched.create k in
  let rng = Kernel.rng k in
  (* the editor: think, wake, burst, measure wake-to-done *)
  let editor = Kernel.spawn k ~text_pages:32 ~data_pages:p.editor_pages () in
  let editor_data = Mm.user_text_base + (32 lsl Addr.page_shift) in
  let editor_gen =
    Refgen.create ~rng ~base_ea:editor_data ~pages:p.editor_pages
      ~hot_fraction:0.3 ~locality:0.9 ()
  in
  let responses = ref [] in
  let remaining = ref p.keystrokes in
  let due_at = ref 0 in
  let state = ref `Thinking in
  Sched.add sched editor (fun k ->
      match !state with
      | `Thinking ->
          if !remaining = 0 then begin
            Kernel.sys_exit k;
            Sched.Done
          end
          else begin
            state := `Burst;
            due_at := Kernel.cycles k + p.think_cycles;
            Sched.Sleep p.think_cycles
          end
      | `Burst ->
          (* the keystroke burst: redisplay + buffer edits + a write *)
          Kernel.user_run k ~instrs:1200;
          for _ = 1 to 16 do
            Kernel.touch k
              (if Rng.int rng 3 = 0 then Mmu.Store else Mmu.Load)
              (Addr.page_base (Refgen.next editor_gen))
          done;
          Kernel.sys_null k;
          responses := (Kernel.cycles k - !due_at) :: !responses;
          decr remaining;
          state := `Thinking;
          Sched.Yield);
  (* the background compile: always runnable *)
  let compiler =
    Kernel.spawn k ~text_pages:64 ~data_pages:p.compile_pages ()
  in
  let compile_data = Mm.user_text_base + (64 lsl Addr.page_shift) in
  let compile_gen =
    Refgen.create ~rng ~base_ea:compile_data ~pages:p.compile_pages
      ~hot_fraction:0.4 ~locality:0.85 ()
  in
  let editor_done () = !remaining = 0 in
  Sched.add sched compiler (fun k ->
      Kernel.user_run k ~instrs:1500;
      for _ = 1 to 60 do
        Kernel.touch k
          (if Rng.int rng 4 = 0 then Mmu.Store else Mmu.Load)
          (Addr.page_base (Refgen.next compile_gen))
      done;
      if editor_done () then begin
        Kernel.sys_exit k;
        Sched.Done
      end
      else Sched.Yield);
  Sched.run sched;
  let perf = Perf.diff ~after:(Perf.snapshot (Kernel.perf k)) ~before in
  let mhz = machine.Machine.mhz in
  let rs = List.map float_of_int !responses in
  let n = float_of_int (max 1 (List.length rs)) in
  { perf;
    mean_response_us =
      Cost.us_of_cycles ~mhz
        (int_of_float (List.fold_left ( +. ) 0.0 rs /. n));
    worst_response_us =
      Cost.us_of_cycles ~mhz
        (int_of_float (List.fold_left max 0.0 rs));
    wall_us = Cost.us_of_cycles ~mhz perf.Perf.cycles }
