(* The mmu_tricks layer: config presets, metrics, report, os_model. *)
open Ppc
module Config = Mmu_tricks.Config
module Metrics = Mmu_tricks.Metrics
module Report = Mmu_tricks.Report
module System = Mmu_tricks.System
module Os_model = Mmu_tricks.Os_model
module Policy = Kernel_sim.Policy
module Kernel = Kernel_sim.Kernel

let test_presets_distinct () =
  Alcotest.(check bool) "baseline has no bat" false
    Config.baseline.Policy.bat_kernel_mapping;
  Alcotest.(check bool) "optimized has bat" true
    Config.optimized.Policy.bat_kernel_mapping;
  Alcotest.(check bool) "baseline+bat differs only in bat" true
    (Config.baseline_with_bat.Policy.bat_kernel_mapping
    && Config.baseline_with_bat.Policy.fast_reload
       = Config.baseline.Policy.fast_reload);
  Alcotest.(check bool) "no-htab preset" false
    Config.optimized_no_htab.Policy.use_htab;
  Alcotest.(check bool) "precise preset has no cutoff" true
    (Config.optimized_precise_flush.Policy.flush_cutoff = None)

let test_find_by_name () =
  List.iter
    (fun (name, policy) ->
      match Config.find name with
      | Some p -> Alcotest.(check bool) ("found " ^ name) true (p = policy)
      | None -> Alcotest.fail ("missing preset " ^ name))
    Config.all_named;
  Alcotest.(check bool) "unknown is None" true (Config.find "nope" = None)

let test_describe () =
  let s = Policy.describe Config.optimized in
  Alcotest.(check bool) "mentions bat" true
    (String.length s > 0
    && String.index_opt s 'b' <> None)

let test_metrics () =
  let p = Perf.create () in
  p.Perf.itlb_lookups <- 60;
  p.Perf.dtlb_lookups <- 40;
  p.Perf.itlb_misses <- 3;
  p.Perf.dtlb_misses <- 7;
  Alcotest.(check (float 1e-9)) "tlb miss rate" 0.1 (Metrics.tlb_miss_rate p);
  p.Perf.htab_searches <- 50;
  p.Perf.htab_hits <- 45;
  Alcotest.(check (float 1e-9)) "htab hit rate" 0.9 (Metrics.htab_hit_rate p);
  p.Perf.htab_reloads <- 10;
  p.Perf.htab_evicts <- 9;
  Alcotest.(check (float 1e-9)) "evict ratio" 0.9 (Metrics.evict_ratio p);
  p.Perf.cycles <- 1330;
  Alcotest.(check (float 1e-9)) "wall us" 10.0
    (Metrics.wall_us ~machine:Machine.ppc604_133 p);
  Alcotest.(check (float 1e-9)) "pct change" (-50.0)
    (Metrics.pct_change ~from_v:10.0 ~to_v:5.0);
  Alcotest.(check (float 1e-9)) "speedup" 80.0
    (Metrics.speedup ~from_v:3240.0 ~to_v:40.5);
  Alcotest.(check (float 1e-9)) "occupancy pct" 75.0
    (Metrics.occupancy_pct ~occupancy:12288 ~capacity:16384)

let test_metrics_zero_denominators () =
  (* every ratio over a freshly-created (all-zero) Perf.t is 0.0 — a
     run that never touched a subsystem reports zero, not NaN *)
  let p = Perf.create () in
  Alcotest.(check (float 1e-9)) "no lookups" 0.0 (Metrics.tlb_miss_rate p);
  Alcotest.(check (float 1e-9)) "no searches" 0.0 (Metrics.htab_hit_rate p);
  Alcotest.(check (float 1e-9)) "no reloads" 0.0 (Metrics.evict_ratio p);
  Alcotest.(check (float 1e-9)) "no dcache accesses" 0.0
    (Metrics.dcache_miss_rate p);
  Alcotest.(check (float 1e-9)) "no icache accesses" 0.0
    (Metrics.icache_miss_rate p);
  Alcotest.(check (float 1e-9)) "no cycles" 0.0 (Metrics.idle_fraction p);
  Alcotest.(check (float 1e-9)) "zero-capacity htab" 0.0
    (Metrics.occupancy_pct ~occupancy:0 ~capacity:0);
  Alcotest.(check (float 1e-9)) "pct change from zero" 0.0
    (Metrics.pct_change ~from_v:0.0 ~to_v:5.0);
  Alcotest.(check bool) "speedup against zero is infinite" true
    (Metrics.speedup ~from_v:1.0 ~to_v:0.0 = infinity)

let test_empty_hist_degenerate () =
  let h = Hist.create () in
  Alcotest.(check int) "empty percentile is 0" 0 (Hist.percentile h 0.99);
  Alcotest.(check (float 1e-9)) "empty interpolated percentile is 0" 0.0
    (Hist.percentile_interpolated h 0.99);
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check int) "empty max" 0 (Hist.max_value h)

let test_report_formats () =
  Alcotest.(check string) "int separators" "219,000,000"
    (Report.fmt_int 219_000_000);
  Alcotest.(check string) "small int" "41" (Report.fmt_int 41);
  Alcotest.(check string) "ratio" "80.3x" (Report.fmt_ratio 80.3);
  Alcotest.(check string) "pct" "12.5%" (Report.fmt_pct 12.5);
  Alcotest.(check string) "us large" "3240" (Report.fmt_us 3240.0);
  Alcotest.(check string) "us small" "2.00" (Report.fmt_us 2.0)

let test_system_snapshot () =
  let k =
    System.boot ~machine:Machine.ppc604_185 ~policy:Config.optimized ()
  in
  let s = System.snapshot k in
  Alcotest.(check int) "tlb capacity 256" 256 s.System.tlb_capacity;
  Alcotest.(check int) "htab capacity" 16384 s.System.htab_capacity;
  Alcotest.(check int) "boot leaves TLBs empty" 0 s.System.tlb_valid;
  let t = Kernel.spawn k () in
  Kernel.switch_to k t;
  Kernel.touch k Mmu.Store (Kernel_sim.Mm.user_text_base + (16 lsl 12));
  let s' = System.snapshot k in
  Alcotest.(check bool) "activity fills structures" true
    (s'.System.tlb_valid > 0);
  Alcotest.(check bool) "histogram sums to PTEG count" true
    (Array.fold_left ( + ) 0 s'.System.htab_histogram = 2048)

let test_snapshot_no_htab () =
  let k =
    System.boot ~machine:Machine.ppc603_133
      ~policy:Config.optimized_no_htab ()
  in
  let s = System.snapshot k in
  Alcotest.(check int) "no htab capacity" 0 s.System.htab_capacity;
  Alcotest.(check int) "no valid entries" 0 s.System.htab_valid

let test_all_presets_boot_and_run () =
  List.iter
    (fun (name, policy) ->
      let k =
        System.boot ~machine:Machine.ppc604_185 ~policy ~seed:1 ()
      in
      let t = Kernel.spawn k () in
      Kernel.switch_to k t;
      Kernel.user_run k ~instrs:2000;
      Kernel.sys_null k;
      let ea = Kernel.sys_mmap k ~pages:30 ~writable:true in
      Kernel.touch k Mmu.Store ea;
      Kernel.sys_munmap k ~ea ~pages:30;
      Kernel.idle_for k ~cycles:5_000;
      Kernel.sys_exit k;
      Alcotest.(check bool) (name ^ " produced cycles") true
        (Kernel.cycles k > 0))
    Config.all_named

let test_idle_fraction_metric () =
  let p = Perf.create () in
  p.Perf.cycles <- 200;
  p.Perf.idle_cycles <- 50;
  Alcotest.(check (float 1e-9)) "idle fraction" 0.25
    (Metrics.idle_fraction p)

module Experiments = Mmu_tricks.Experiments

let test_experiments_registry () =
  let names = List.map fst Experiments.all in
  Alcotest.(check int) "twenty-five experiments" 25 (List.length names);
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has " ^ expected) true
        (List.mem expected names))
    [ "T1"; "T2"; "T3"; "E1"; "E2"; "E3"; "E6"; "E7"; "E8"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19"; "EX1"; "EX2";
      "EX4"; "EX5"; "EX6"; "EX7" ]

(* the registration-time duplicate-id guard (the E15-E17 drafting slip) *)

let fake_spec id : Experiments.spec =
  { Experiments.id;
    name = "fake " ^ id;
    section = "test";
    what = "fake";
    run =
      (fun ?seed:_ () ->
        { Experiments.title = "t"; header = []; rows = []; notes = [] }) }

let expect_duplicate name specs =
  match Experiments.check_unique specs with
  | () -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (name ^ " names the duplicate") true
        (contains msg "duplicate experiment id")

let test_duplicate_ids_rejected () =
  expect_duplicate "exact duplicate"
    [ fake_spec "E1"; fake_spec "E2"; fake_spec "E1" ];
  (* find is case-insensitive, so the guard must be too *)
  expect_duplicate "case-insensitive duplicate"
    [ fake_spec "e17"; fake_spec "E17" ]

let test_registry_ids_unique () =
  (* the live registry passes the guard it already ran at module load *)
  Experiments.check_unique
    (Experiments.registry @ Experiments.diagnostics);
  Alcotest.(check pass) "registry + diagnostics unique" () ()

let test_csv_export () =
  let t =
    { Experiments.title = "t";
      header = [ "a"; "b" ];
      rows = [ [ "1"; "x,y" ]; [ "2"; "quote\"d" ] ];
      notes = [] }
  in
  let csv = Experiments.to_csv t in
  Alcotest.(check string) "csv escaping"
    "a,b\n1,\"x,y\"\n2,\"quote\"\"d\"\n" csv

let test_experiment_structure () =
  (* run one of the cheaper experiments end to end *)
  let t = Experiments.e13 ~seed:1 () in
  Alcotest.(check int) "three rows" 3 (List.length t.Experiments.rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "row width matches header"
        (List.length t.Experiments.header)
        (List.length row))
    t.Experiments.rows;
  Alcotest.(check bool) "has a title" true
    (String.length t.Experiments.title > 0)

let test_os_model_paper_rows () =
  List.iter
    (fun p ->
      let r = Os_model.paper_row p in
      Alcotest.(check bool) "positive numbers" true
        (r.Os_model.null_us > 0.0 && r.Os_model.pipe_bw_mbs > 0.0))
    Os_model.all;
  Alcotest.(check (float 1e-9)) "linux opt null" 2.0
    (Os_model.paper_row Os_model.linux_opt).Os_model.null_us

let test_os_model_measures () =
  (* one cheap personality end-to-end; the full table runs in the bench *)
  let r = Os_model.measure_row ~machine:Os_model.table3_machine
      Os_model.linux_opt ()
  in
  Alcotest.(check bool) "null in band" true
    (r.Os_model.null_us > 0.5 && r.Os_model.null_us < 10.0);
  Alcotest.(check bool) "bw in band" true
    (r.Os_model.pipe_bw_mbs > 10.0 && r.Os_model.pipe_bw_mbs < 200.0)

let test_os_model_mach_slower () =
  let opt =
    Os_model.measure_row ~machine:Os_model.table3_machine Os_model.linux_opt
      ()
  in
  let mk =
    Os_model.measure_row ~machine:Os_model.table3_machine Os_model.mklinux ()
  in
  Alcotest.(check bool) "mklinux much slower on null" true
    (mk.Os_model.null_us > 4.0 *. opt.Os_model.null_us);
  Alcotest.(check bool) "mklinux much slower on ctxsw" true
    (mk.Os_model.ctxsw_us > 4.0 *. opt.Os_model.ctxsw_us);
  Alcotest.(check bool) "mklinux worse pipe bw" true
    (mk.Os_model.pipe_bw_mbs < opt.Os_model.pipe_bw_mbs /. 2.0)

let suite =
  [ Alcotest.test_case "presets distinct" `Quick test_presets_distinct;
    Alcotest.test_case "find by name" `Quick test_find_by_name;
    Alcotest.test_case "describe" `Quick test_describe;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "metrics zero denominators" `Quick
      test_metrics_zero_denominators;
    Alcotest.test_case "empty hist degenerate" `Quick
      test_empty_hist_degenerate;
    Alcotest.test_case "report formats" `Quick test_report_formats;
    Alcotest.test_case "system snapshot" `Quick test_system_snapshot;
    Alcotest.test_case "all presets boot and run" `Quick
      test_all_presets_boot_and_run;
    Alcotest.test_case "idle fraction metric" `Quick
      test_idle_fraction_metric;
    Alcotest.test_case "snapshot without htab" `Quick test_snapshot_no_htab;
    Alcotest.test_case "experiments registry" `Quick
      test_experiments_registry;
    Alcotest.test_case "experiment structure (E13)" `Slow
      test_experiment_structure;
    Alcotest.test_case "duplicate experiment ids rejected" `Quick
      test_duplicate_ids_rejected;
    Alcotest.test_case "registry ids unique" `Quick test_registry_ids_unique;
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "os model paper rows" `Quick test_os_model_paper_rows;
    Alcotest.test_case "os model measures" `Slow test_os_model_measures;
    Alcotest.test_case "os model mach slower" `Slow test_os_model_mach_slower ]
