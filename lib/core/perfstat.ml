(* Raw simulator throughput, measured: bechamel micros over the three
   hot paths the flattening work targets (warm TLB-hit access, TLB-miss
   reload through the htab, context switch), the committed
   BENCH_throughput.json trajectory document, and the one-sided
   regression gate behind [mmu_sim check --bench].

   The micros are wall-clock measurements of the simulator itself, not
   of the simulated machine — the number that bounds how many simulated
   translations a sweep, a tuner, or a future SMP run can push per
   second of host time.  Everything else in this repo is deterministic
   per seed; these numbers are not, which is why the document keeps a
   history (a trajectory, not a single cell) and the gate is
   tolerance-banded and one-sided: only a throughput *loss* beyond the
   band fails, an improvement just suggests appending a new entry. *)

module Kernel = Kernel_sim.Kernel
module Policy = Kernel_sim.Policy
module Mm = Kernel_sim.Mm
open Ppc

let schema = "mmu-tricks/bench-v1"

(* Committed default: generous enough to absorb shared-CI host variance,
   tight enough to catch the "hot path grew allocations back" class of
   regression (a 2.5x+ slowdown).  PERFORMANCE.md documents the
   reasoning; the document's "tolerance" field overrides it. *)
let default_tolerance = 0.6

type result = {
  r_name : string;
  r_what : string;
  r_ns_per_op : float;
  r_ops_per_sec : float;
  r_translations_per_op : int;
      (* exact Mmu translations one op drives; 0 = not a translation
         micro (the context-switch path is gated on ops/sec only) *)
  r_translations_per_sec : float;  (* 0 when r_translations_per_op = 0 *)
}

(* ------------------------------------------------------------ micros *)

(* Setup mirrors the long-standing bechamel pass in bench/main.ml: boot
   the optimized policy, spawn, run enough user instructions to warm the
   kernel paths, and pre-touch every page an op will visit so the
   steady-state op never takes a demand fault. *)

let data_base = Mm.user_text_base + (16 lsl Addr.page_shift)

let boot ~machine ~seed ?(data_pages = 16) () =
  let k = Kernel.boot ~machine ~policy:Policy.optimized ~seed () in
  let t = Kernel.spawn k ~data_pages () in
  Kernel.switch_to k t;
  Kernel.user_run k ~instrs:2000;
  k

(* Enough pages that a cyclic scan always misses both split TLBs of
   every machine in Machine.all (the largest is 128 data entries). *)
let miss_pages = 512

type micro = {
  m_name : string;
  m_what : string;
  m_translations_per_op : int;
  m_op : unit -> unit;
}

(* Translations per benched op.  The harness costs a few tens of ns per
   op (staged-closure call, clock sampling); a warm translation costs
   about that much itself, so a 1-translation op would be half harness.
   Batching 16 translations into each op pushes the harness share below
   ten percent; [translations_per_sec = ops_per_sec * batch] stays the
   honest product number. *)
let batch = 16

let micros ~machine ~seed =
  let warm =
    let k = boot ~machine ~seed () in
    Kernel.touch k Mmu.Store data_base;
    { m_name = "warm-access";
      m_what =
        "user loads that hit the TLB and the D-cache, 16 per op to \
         amortize harness overhead";
      m_translations_per_op = batch;
      m_op =
        (fun () ->
          for _ = 1 to batch do
            Kernel.touch k Mmu.Load data_base
          done) }
  in
  let warm_recorded =
    (* the same op with the flight recorder armed: the measured cost of
       the per-charge cadence check plus the occasional snapshot — the
       "recorder-armed overhead <= 5%" acceptance number, kept measured
       rather than claimed *)
    let k = boot ~machine ~seed () in
    Recorder.enable ~every:1_000_000 ~cap:256 (Kernel.recorder k);
    Kernel.touch k Mmu.Store data_base;
    { m_name = "warm-access-recorded";
      m_what =
        "warm-access with the flight recorder sampling every 1M cycles: \
         armed observability overhead on the hottest path";
      m_translations_per_op = batch;
      m_op =
        (fun () ->
          for _ = 1 to batch do
            Kernel.touch k Mmu.Load data_base
          done) }
  in
  let miss =
    let k = boot ~machine ~seed ~data_pages:(miss_pages + 32) () in
    for i = 0 to miss_pages - 1 do
      Kernel.touch k Mmu.Store (data_base + (i lsl Addr.page_shift))
    done;
    let cursor = ref 0 in
    { m_name = "tlb-miss-reload";
      m_what =
        "user loads cycling over more pages than the TLB holds (16 per \
         op): every load is a TLB miss serviced by the reload engine \
         (htab search on 604-class machines)";
      m_translations_per_op = batch;
      m_op =
        (fun () ->
          let c = !cursor in
          for i = 0 to batch - 1 do
            Kernel.touch k Mmu.Load
              (data_base + (((c + i) land (miss_pages - 1)) lsl Addr.page_shift))
          done;
          cursor := (c + batch) land (miss_pages - 1)) }
  in
  let ctxsw =
    let k = boot ~machine ~seed () in
    let a =
      match Kernel.current k with
      | Some t -> t
      | None -> Kernel.spawn k ()
    in
    let b = Kernel.spawn k () in
    Kernel.switch_to k b;
    Kernel.user_run k ~instrs:2000;
    let cur = ref b in
    { m_name = "context-switch";
      m_what =
        "one scheduler switch between two resident tasks (segment-register \
         reload, task-struct and stack traffic)";
      m_translations_per_op = 0;
      m_op =
        (fun () ->
          let next = if !cur == a then b else a in
          cur := next;
          Kernel.switch_to k next) }
  in
  [ warm; warm_recorded; miss; ctxsw ]

(* ---------------------------------------------------------- measuring *)

let run ?(quota_s = 0.5) ~machine ~seed () =
  let open Bechamel in
  let ms = micros ~machine ~seed in
  let tests =
    List.map (fun m -> Test.make ~name:m.m_name (Staged.stage m.m_op)) ms
  in
  let grouped = Test.make_grouped ~name:"perfstat" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let estimate_for name =
    let found = ref None in
    Hashtbl.iter
      (fun key v ->
        (* grouped test keys may carry a "group/" prefix *)
        let leaf =
          match String.rindex_opt key '/' with
          | Some i -> String.sub key (i + 1) (String.length key - i - 1)
          | None -> key
        in
        if leaf = name then
          match Analyze.OLS.estimates v with
          | Some (e :: _) -> found := Some e
          | Some [] | None -> ())
      results;
    !found
  in
  List.filter_map
    (fun m ->
      match estimate_for m.m_name with
      | None -> None
      | Some ns ->
          let ns = Float.max ns 0.001 in
          let ops = 1e9 /. ns in
          Some
            { r_name = m.m_name;
              r_what = m.m_what;
              r_ns_per_op = ns;
              r_ops_per_sec = ops;
              r_translations_per_op = m.m_translations_per_op;
              r_translations_per_sec =
                float_of_int m.m_translations_per_op *. ops })
    ms

(* ---------------------------------------------------------- document *)

type entry = {
  e_label : string;
  e_recorded : string;  (* free text: date / commit context *)
  e_results : result list;
}

type doc = {
  b_machine : string;  (* Machine.slug *)
  b_seed : int;
  b_tolerance : float;
  b_history : entry list;  (* oldest first; last entry is the gate *)
}

let round2 f = Float.round (f *. 100.) /. 100.

let result_to_json r =
  Json.Obj
    ([ ("name", Json.String r.r_name);
       ("what", Json.String r.r_what);
       ("ns_per_op", Json.Float (round2 r.r_ns_per_op));
       ("ops_per_sec", Json.Float (Float.round r.r_ops_per_sec)) ]
    @
    if r.r_translations_per_op = 0 then []
    else
      [ ("translations_per_op", Json.Int r.r_translations_per_op);
        ( "translations_per_sec",
          Json.Float (Float.round r.r_translations_per_sec) ) ])

let entry_to_json e =
  Json.Obj
    [ ("label", Json.String e.e_label);
      ("recorded", Json.String e.e_recorded);
      ("micros", Json.List (List.map result_to_json e.e_results)) ]

let doc_to_json d =
  Json.Obj
    [ ("schema", Json.String schema);
      ("machine", Json.String d.b_machine);
      ("seed", Json.Int d.b_seed);
      ("tolerance", Json.Float d.b_tolerance);
      ("history", Json.List (List.map entry_to_json d.b_history)) ]

let micros_json results = Json.List (List.map result_to_json results)

let result_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  match (str "name", num "ns_per_op", num "ops_per_sec") with
  | Some name, Some ns, Some ops ->
      let tpo =
        match Option.bind (Json.member "translations_per_op" j) Json.to_int_opt
        with
        | Some n -> n
        | None -> 0
      in
      Ok
        { r_name = name;
          r_what = (match str "what" with Some w -> w | None -> "");
          r_ns_per_op = ns;
          r_ops_per_sec = ops;
          r_translations_per_op = tpo;
          r_translations_per_sec =
            (match num "translations_per_sec" with
            | Some t -> t
            | None -> 0.) }
  | _ -> Error "micro entry needs \"name\", \"ns_per_op\", \"ops_per_sec\""

let entry_of_json j =
  let ( let* ) r f = Result.bind r f in
  let* micros_j =
    match Json.member "micros" j with
    | Some (Json.List l) -> Ok l
    | _ -> Error "history entry without a \"micros\" list"
  in
  let* results =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        let* r = result_of_json m in
        Ok (r :: acc))
      (Ok []) micros_j
  in
  Ok
    { e_label =
        (match Option.bind (Json.member "label" j) Json.to_string_opt with
        | Some l -> l
        | None -> "unlabeled");
      e_recorded =
        (match Option.bind (Json.member "recorded" j) Json.to_string_opt with
        | Some r -> r
        | None -> "");
      e_results = List.rev results }

let doc_of_json j =
  let ( let* ) r f = Result.bind r f in
  let* history_j =
    match Json.member "history" j with
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "\"history\" is not a list"
    | None -> Error "missing \"history\""
  in
  let* history =
    List.fold_left
      (fun acc (i, e) ->
        let* acc = acc in
        match entry_of_json e with
        | Ok entry -> Ok (entry :: acc)
        | Error msg -> Error (Printf.sprintf "history[%d]: %s" i msg))
      (Ok [])
      (List.mapi (fun i e -> (i, e)) history_j)
  in
  Ok
    { b_machine =
        (match Option.bind (Json.member "machine" j) Json.to_string_opt with
        | Some m -> m
        | None -> "ppc604-185");
      b_seed =
        (match Option.bind (Json.member "seed" j) Json.to_int_opt with
        | Some s -> s
        | None -> 42);
      b_tolerance =
        (match Option.bind (Json.member "tolerance" j) Json.to_float_opt with
        | Some t -> t
        | None -> default_tolerance);
      b_history = List.rev history }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok j -> (
          match doc_of_json j with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok d -> Ok d))

let save path d =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string (doc_to_json d) ^ "\n"))

(* Semantic shape check over every committed history entry, beyond what
   parsing enforces: appending to a document whose history is already
   corrupt (empty micro lists, non-positive or non-finite rates) would
   bury the rot under a fresh valid entry, and the gate only reads the
   last one.  The error names the offending entry's index. *)
let validate_history doc =
  let bad_result r =
    if r.r_name = "" then Some "a micro with an empty name"
    else if (not (Float.is_finite r.r_ns_per_op)) || r.r_ns_per_op <= 0. then
      Some (Printf.sprintf "micro %S: ns_per_op %g is not positive" r.r_name
              r.r_ns_per_op)
    else if
      (not (Float.is_finite r.r_ops_per_sec)) || r.r_ops_per_sec <= 0.
    then
      Some (Printf.sprintf "micro %S: ops_per_sec %g is not positive"
              r.r_name r.r_ops_per_sec)
    else None
  in
  let rec walk i = function
    | [] -> Ok ()
    | e :: rest -> (
        if e.e_results = [] then
          Error (Printf.sprintf "history[%d]: entry has no micros" i)
        else
          match List.filter_map bad_result e.e_results with
          | problem :: _ -> Error (Printf.sprintf "history[%d]: %s" i problem)
          | [] -> walk (i + 1) rest)
  in
  walk 0 doc.b_history

(* -------------------------------------------------------------- gate *)

type verdict = {
  v_name : string;
  v_committed_ops : float;
  v_measured_ops : float;
  v_ratio : float;  (* measured / committed; < 1 is a slowdown *)
  v_floor : float;  (* 1 - tolerance *)
  v_ok : bool;
}

let gate ?tolerance doc results =
  match List.rev doc.b_history with
  | [] -> []
  | last :: _ ->
      let tol =
        match tolerance with Some t -> t | None -> doc.b_tolerance
      in
      let floor = 1.0 -. tol in
      List.filter_map
        (fun committed ->
          match
            List.find_opt (fun r -> r.r_name = committed.r_name)
              results
          with
          | None -> None
          | Some measured ->
              let ratio =
                if committed.r_ops_per_sec <= 0. then 1.0
                else measured.r_ops_per_sec /. committed.r_ops_per_sec
              in
              Some
                { v_name = committed.r_name;
                  v_committed_ops = committed.r_ops_per_sec;
                  v_measured_ops = measured.r_ops_per_sec;
                  v_ratio = ratio;
                  v_floor = floor;
                  v_ok = ratio >= floor })
        last.e_results

let gate_ok verdicts = List.for_all (fun v -> v.v_ok) verdicts
