test/test_tuning.ml: Alcotest Kernel_sim List Mmu_tricks
