type idle_clearing =
  | Clear_off
  | Clear_cached
  | Clear_uncached

type t = {
  bat_kernel_mapping : bool;
  bat_io_mapping : bool;
  vsid_source : Vsid_alloc.id_source;
  vsid_multiplier : int;
  fast_reload : bool;
  fast_paths : bool;
  use_htab : bool;
  lazy_flush : bool;
  flush_cutoff : int option;
  idle_zombie_reclaim : bool;
  reclaim_interval : int;
  reclaim_chunk : int;
  idle_clearing : idle_clearing;
  idle_clear_list : bool;
  prezero_list_limit : int;
  cache_inhibit_pagetables : bool;
  bat_framebuffer : bool;
  idle_cache_lock : bool;
  cache_preload : bool;
  htab_replacement : [ `Arbitrary | `Second_chance | `Zombie_aware ];
  tlb_replacement : Ppc.Tlb.replacement;
  shootdown_batch : bool;
}

let flush_cutoff_pages = 20

(* The zombie-reclaim cadence and pre-zero list depth the paper's idle
   task settled on (previously hardcoded in [Kparams] and [Pagepool]). *)
let reclaim_interval_slices = 16
let reclaim_chunk_ptes = 64
let prezero_list_pages = 64

let baseline =
  { bat_kernel_mapping = false;
    bat_io_mapping = false;
    vsid_source = Vsid_alloc.Pid_based;
    vsid_multiplier = 1;
    fast_reload = false;
    fast_paths = false;
    use_htab = true;
    lazy_flush = false;
    flush_cutoff = None;
    idle_zombie_reclaim = false;
    reclaim_interval = reclaim_interval_slices;
    reclaim_chunk = reclaim_chunk_ptes;
    idle_clearing = Clear_off;
    idle_clear_list = false;
    prezero_list_limit = prezero_list_pages;
    cache_inhibit_pagetables = false;
    bat_framebuffer = false;
    idle_cache_lock = false;
    cache_preload = false;
    htab_replacement = `Arbitrary;
    tlb_replacement = Ppc.Tlb.Lru;
    shootdown_batch = true }

let optimized =
  { bat_kernel_mapping = true;
    bat_io_mapping = false;
    vsid_source = Vsid_alloc.Context_counter;
    vsid_multiplier = Vsid_alloc.scatter_multiplier;
    fast_reload = true;
    fast_paths = true;
    use_htab = true;
    lazy_flush = true;
    flush_cutoff = Some flush_cutoff_pages;
    idle_zombie_reclaim = true;
    reclaim_interval = reclaim_interval_slices;
    reclaim_chunk = reclaim_chunk_ptes;
    idle_clearing = Clear_uncached;
    idle_clear_list = true;
    prezero_list_limit = prezero_list_pages;
    cache_inhibit_pagetables = false;
    bat_framebuffer = false;
    idle_cache_lock = false;
    cache_preload = false;
    htab_replacement = `Arbitrary;
    tlb_replacement = Ppc.Tlb.Lru;
    shootdown_batch = true }

let mmu_knobs t =
  { Ppc.Mmu.use_htab = t.use_htab;
    fast_reload = t.fast_reload;
    cache_inhibit_pagetables = t.cache_inhibit_pagetables;
    htab_replacement = t.htab_replacement;
    tlb_replacement = t.tlb_replacement }

let describe t =
  let flag name b = if b then [ name ] else [] in
  let parts =
    flag "bat" t.bat_kernel_mapping
    @ flag "bat-io" t.bat_io_mapping
    @ (match t.vsid_source with
      | Vsid_alloc.Pid_based -> [ "vsid-pid" ]
      | Vsid_alloc.Context_counter -> [ "vsid-ctr" ])
    @ [ Printf.sprintf "mult=%d" t.vsid_multiplier ]
    @ flag "fast-reload" t.fast_reload
    @ flag "fast-paths" t.fast_paths
    @ flag "htab" t.use_htab
    @ flag "lazy" t.lazy_flush
    @ (match t.flush_cutoff with
      | None -> []
      | Some n -> [ Printf.sprintf "cutoff=%d" n ])
    @ flag "reclaim" t.idle_zombie_reclaim
    @ (if t.reclaim_interval <> reclaim_interval_slices then
         [ Printf.sprintf "reclaim-every=%d" t.reclaim_interval ]
       else [])
    @ (if t.reclaim_chunk <> reclaim_chunk_ptes then
         [ Printf.sprintf "reclaim-chunk=%d" t.reclaim_chunk ]
       else [])
    @ (match t.idle_clearing with
      | Clear_off -> []
      | Clear_cached -> [ "clear-cached" ]
      | Clear_uncached -> [ "clear-uncached" ])
    @ flag "clear-list" t.idle_clear_list
    @ (if t.prezero_list_limit <> prezero_list_pages then
         [ Printf.sprintf "prezero-limit=%d" t.prezero_list_limit ]
       else [])
    @ flag "pt-uncached" t.cache_inhibit_pagetables
    @ flag "fb-bat" t.bat_framebuffer
    @ flag "idle-lock" t.idle_cache_lock
    @ flag "preload" t.cache_preload
    @ (match t.htab_replacement with
      | `Arbitrary -> []
      | `Second_chance -> [ "htab-2nd-chance" ]
      | `Zombie_aware -> [ "htab-zombie-aware" ])
    @ (match t.tlb_replacement with
      | Ppc.Tlb.Lru -> []
      | Ppc.Tlb.Fifo -> [ "tlb-fifo" ]
      | Ppc.Tlb.Rand -> [ "tlb-random" ])
    @ (if t.shootdown_batch then [] else [ "per-page-shootdown" ])
  in
  String.concat "," parts
