open Ppc

type t = {
  physmem : Physmem.t;
  memsys : Memsys.t;
  clearing : Policy.idle_clearing;
  use_list : bool;
  list_limit : int;
  prezeroed : int Queue.t;
  mutable prezeroed_len : int;
}

let create ~physmem ~memsys ~clearing ~use_list ~list_limit () =
  { physmem;
    memsys;
    clearing;
    use_list;
    list_limit;
    prezeroed = Queue.create ();
    prezeroed_len = 0 }

let perf t = Memsys.perf t.memsys

(* The "only overhead is a check" of §9: one load of the list head. *)
let charge_list_check t =
  Memsys.data_ref t.memsys ~source:Cache.Kernel ~inhibited:false ~write:false
    (Kparams.data_pa + 0x40)

(* clear_page: with the cache on, the kernel zeroes a frame with dcbz —
   one line allocated per instruction, no memory fetch, pure pollution;
   with the cache inhibited for the page, plain stores go straight to
   memory and the cache is untouched. *)
let clear_page t ~source ~inhibited rpn =
  let base = rpn lsl Addr.page_shift in
  Memsys.instructions t.memsys Kparams.clear_page_instr;
  let lines = Addr.page_size / Addr.line_size in
  for i = 0 to lines - 1 do
    let pa = base + (i * Addr.line_size) in
    if inhibited then
      Memsys.data_ref t.memsys ~source ~inhibited:true ~write:true pa
    else Memsys.dcbz t.memsys ~source pa
  done

let get_page t =
  (perf t).Perf.get_free_page_calls <-
    (perf t).Perf.get_free_page_calls + 1;
  Physmem.alloc t.physmem

let get_zeroed_page t =
  (perf t).Perf.get_free_page_calls <-
    (perf t).Perf.get_free_page_calls + 1;
  charge_list_check t;
  match Queue.take_opt t.prezeroed with
  | Some rpn ->
      t.prezeroed_len <- t.prezeroed_len - 1;
      (perf t).Perf.prezeroed_hits <- (perf t).Perf.prezeroed_hits + 1;
      Some rpn
  | None -> begin
      match Physmem.alloc t.physmem with
      | None -> None
      | Some rpn ->
          (* Foreground demand clearing goes through the cache. *)
          clear_page t ~source:Cache.Kernel ~inhibited:false rpn;
          Some rpn
    end

let free_page t rpn = Physmem.free t.physmem rpn

let idle_clear_one t =
  match t.clearing with
  | Policy.Clear_off -> false
  | (Policy.Clear_cached | Policy.Clear_uncached) as mode ->
      if t.use_list && t.prezeroed_len >= t.list_limit then false
      else begin
        match Physmem.alloc t.physmem with
        | None -> false
        | Some rpn ->
            let inhibited = mode = Policy.Clear_uncached in
            clear_page t ~source:Cache.Idle_clear ~inhibited rpn;
            (perf t).Perf.pages_cleared_idle <-
              (perf t).Perf.pages_cleared_idle + 1;
            if t.use_list then begin
              Queue.add rpn t.prezeroed;
              t.prezeroed_len <- t.prezeroed_len + 1
            end
            else
              (* control experiment: the work is done, then thrown away *)
              Physmem.free t.physmem rpn;
            let tr = Memsys.trace t.memsys in
            if Trace.enabled tr then
              Trace.emit_for tr Trace.Idle_prezero ~pid:0 ~a:rpn
                ~b:(if t.use_list then 1 else 0);
            true
      end

let prezeroed_available t = t.prezeroed_len
