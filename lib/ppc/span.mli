(** Request-level spans: per-request lifecycles and critical-path cost.

    {!Trace} records what happened and {!Profile} maintains who is
    responsible; this layer follows individual {e requests} through a
    server-shaped workload.  One handle per simulated machine (owned by
    {!Memsys}) records, for every request the workload begins:

    - its {e lifecycle}: arrival cycle (which may predate service, so
      queueing delay is part of latency) and completion cycle;
    - its {e critical-path components}: syscall entry/exit windows, run
      slices, and every TLB-miss reload, htab-missing reload and context
      switch serviced while the machine was working on its behalf;
    - per-class (service model x request kind) and overall completion
      latency {!Hist}s, from which tail percentiles and SLO verdicts are
      derived.

    Recording is observation only: it never costs cycles, touches the
    caches or draws from an RNG, so a span-recorded run produces exactly
    the Perf counts of a bare run at the same seed.  When disabled (the
    default) the cost is one flag check per instrumented site and zero
    allocation; when enabled, request storage lives in preallocated
    growable parallel int arrays.

    Ownership flows through the scheduler: the workload binds the pid
    serving a request ({!bind_pid}), and every context switch rebinds
    the {e current request} from the incoming pid — so MMU- and
    kernel-level charges land on the request the CPU is actually
    serving.  Component costs overlap by design (a reload taken inside a
    syscall is charged to both the reload and the syscall window); they
    are a breakdown of where the latency went, not a partition.

    The exporters (JSON under [observability.spans], Perfetto tracks,
    slowest-request tables) live in [Mmu_tricks.Span_export], which
    depends on this module, not the other way around. *)

type t

val create : perf:Perf.t -> t
(** A disabled recorder stamping cycles from [perf] — unless
    {!set_boot_defaults} armed process-wide spans, in which case it
    starts enabled and is registered for {!drain_registered}. *)

val enable : ?requests:int -> t -> unit
(** Start recording; [requests] sizes the initial per-request arrays
    (they grow by doubling).  Resets any previously recorded data. *)

val disable : t -> unit
(** Stop recording; accumulated data stays readable. *)

val enabled : t -> bool

val set_label : t -> string -> unit
(** Tag the recorder with the configuration it is watching (exporters
    group per-config results by this). *)

val label : t -> string

(** {1 Boot defaults}

    For drivers that cannot reach the kernels being booted (the
    experiment registry boots its own): arm spans process-wide, run,
    then collect every recorder created in between — the same
    discipline as {!Trace}, {!Profile} and {!Shadow}. *)

val set_boot_defaults : ?requests:int -> enabled:bool -> unit -> unit
val boot_enabled : unit -> bool
val drain_registered : unit -> t list

(** {1 Request classes}

    A class is (service model x request kind); the workload names them
    once per run and tags each request with its class index. *)

val set_classes : t -> string array -> unit
(** Install the class-name table and create one latency {!Hist} per
    class.  Call after {!enable} (or under armed boot defaults). *)

val class_names : t -> string array
val class_name : t -> int -> string
(** Falls back to ["class_<i>"] for an unregistered index. *)

val class_hist : t -> int -> Hist.t option

(** {1 Request lifecycle} — driven by the workload *)

val request_begin : t -> cls:int -> arrival:int -> int
(** Open a request of class [cls] that arrived at cycle [arrival]
    (allowed to be earlier than now: queueing delay counts).  Returns
    the request id, or [-1] when disabled — every other call accepts
    that id and does nothing. *)

val request_end : t -> int -> unit
(** Complete a request: stamps the finish cycle and observes
    [finish - arrival] in the class and overall latency histograms.
    Idempotent; ignores [-1]. *)

val bind_pid : t -> pid:int -> rid:int -> unit
(** Declare that task [pid] is serving request [rid] ([-1] unbinds):
    the next context switch to [pid] makes [rid] the current request. *)

val set_current_request : t -> int -> unit
(** Make [rid] the current request immediately — for service that
    continues in the already-running task, where no context switch will
    perform the rebinding. *)

val current_request : t -> int
(** The request the running code is serving; [-1] = none. *)

(** {1 Attribution hooks} — wired into {!Mmu} and the kernel; all
    observation-only and one flag check when disabled *)

val note_context_switch : t -> pid:int -> cost:int -> unit
(** A context switch to [pid] completed, costing [cost] cycles: rebind
    the current request from [pid] and charge the switch to it. *)

val syscall_begin : t -> unit
(** The current request entered the kernel; stamps the entry cycle. *)

val syscall_end : t -> unit
(** The matching syscall return: charges the whole window (entry to
    exit, including any faults and idle waits inside) to the current
    request's syscall cost. *)

val charge_reload : t -> cost:int -> htab_missed:bool -> unit
(** One TLB-miss reload costing [cost] cycles was serviced for the
    current request; [htab_missed] additionally charges it to the
    htab-miss account (a subset, as in {!Profile}). *)

val note_run : t -> cost:int -> unit
(** [cost] cycles of user run slice executed for the current request. *)

(** {1 Inspection} *)

type request = {
  q_rid : int;
  q_cls : int;
  q_arrival : int;
  q_finish : int;  (** -1 while in flight *)
  q_latency : int;  (** [finish - arrival]; -1 while in flight *)
  q_syscalls : int;
  q_syscall_cost : int;
  q_reloads : int;
  q_reload_cost : int;
  q_htab_misses : int;
  q_htab_cost : int;
  q_ctxsw : int;
  q_ctxsw_cost : int;
  q_run_cost : int;
}

type totals = {
  t_syscalls : int;
  t_syscall_cost : int;
  t_reloads : int;
  t_reload_cost : int;
  t_htab_misses : int;
  t_htab_cost : int;
  t_ctxsw : int;
  t_ctxsw_cost : int;
  t_run_cost : int;
}

val requests : t -> int
(** Requests ever begun. *)

val completed : t -> int

val request : t -> int -> request
(** @raise Invalid_argument on an out-of-range id. *)

val iter : t -> (request -> unit) -> unit
(** All requests in id (begin) order. *)

val slowest : t -> top:int -> request list
(** The [top] slowest completed requests, highest latency first
    (request id breaks ties, so the order is deterministic). *)

val totals : t -> totals
(** Component sums across every request. *)

val hist_latency : t -> Hist.t
(** Completion latency across all classes. *)
