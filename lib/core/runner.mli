(** Parallel experiment execution.

    Every experiment is deterministic in its seed and boots its own
    isolated kernel, so a run of the suite is embarrassingly parallel:
    fork N workers, deal the experiments round-robin, marshal each
    finished {!Experiments.table} back over a pipe, and merge in
    registry order.  The merged output is byte-identical to a serial
    run — parallelism changes wall-clock only, never results.

    [jobs = 1] (the default) runs in-process with no fork, so the
    runner is also the one code path the CLI and bench harness use for
    serial runs. *)

type outcome =
  | Done of Experiments.table
  | Failed of string
      (** the experiment raised; the exception text crossed the pipe *)

val run :
  ?jobs:int ->
  ?seed:int ->
  (string * (?seed:int -> unit -> Experiments.table)) list ->
  (string * outcome) list
(** [run ~jobs ~seed selected] executes every [(id, fn)] pair and
    returns [(id, outcome)] in the input's order.  [jobs] is clamped to
    [1 .. length selected].  An experiment that raises becomes [Failed]
    (in-process or in a worker) rather than aborting the batch; a worker
    that dies without delivering marks its remaining experiments
    [Failed]. *)

val default_jobs : unit -> int
(** Number of online cores (from [getconf _NPROCESSORS_ONLN]), clamped
    to [1 .. 16]; 1 when it cannot be determined. *)
