lib/ppc/memsys.mli: Addr Cache Machine Perf
