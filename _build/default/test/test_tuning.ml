(* The §5.2 tuning methodology tool. *)
module Tuning = Mmu_tricks.Tuning
module Experiments = Mmu_tricks.Experiments

(* small, fast configuration for tests *)
let score m = Tuning.score_multiplier ~procs:8 ~pages:128 ~seed:3 m

let test_naive_has_hot_spots () =
  let s = score 1 in
  Alcotest.(check bool) "multiplier 1 leaves hot spots" true
    (s.Tuning.full_ptegs > 0);
  Alcotest.(check int) "reports its multiplier" 1 s.Tuning.multiplier

let test_tuned_is_clean () =
  let s = score Kernel_sim.Vsid_alloc.scatter_multiplier in
  Alcotest.(check int) "897 has no hot spots" 0 s.Tuning.full_ptegs;
  Alcotest.(check int) "and no evictions" 0 s.Tuning.evictions

let test_sweep_ranks_tuned_first () =
  let scores = Tuning.sweep ~procs:8 ~pages:128 ~seed:3 [ 1; 897 ] in
  match scores with
  | best :: _ ->
      Alcotest.(check int) "897 ranks first" 897 best.Tuning.multiplier
  | [] -> Alcotest.fail "expected scores"

let test_sweep_preserves_candidates () =
  let candidates = [ 1; 16; 897 ] in
  let scores = Tuning.sweep ~procs:8 ~pages:128 ~seed:3 candidates in
  Alcotest.(check (list int)) "same multipliers, reordered"
    (List.sort compare candidates)
    (List.sort compare (List.map (fun s -> s.Tuning.multiplier) scores))

let test_table_rendering () =
  let scores = Tuning.sweep ~procs:8 ~pages:128 ~seed:3 [ 1; 897 ] in
  let t = Tuning.to_table scores in
  Alcotest.(check int) "two rows" 2 (List.length t.Experiments.rows);
  Alcotest.(check int) "five columns" 5 (List.length t.Experiments.header)

let suite =
  [ Alcotest.test_case "naive multiplier has hot spots" `Quick
      test_naive_has_hot_spots;
    Alcotest.test_case "tuned multiplier is clean" `Quick test_tuned_is_clean;
    Alcotest.test_case "sweep ranks tuned first" `Quick
      test_sweep_ranks_tuned_first;
    Alcotest.test_case "sweep preserves candidates" `Quick
      test_sweep_preserves_candidates;
    Alcotest.test_case "table rendering" `Quick test_table_rendering ]
