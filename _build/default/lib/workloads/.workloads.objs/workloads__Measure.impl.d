lib/workloads/measure.ml: Cost Kernel_sim Machine Perf Ppc
